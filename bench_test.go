// Package autopilot's benchmark harness regenerates every table and figure
// in the paper's evaluation section (run with `go test -bench=. -benchmem`)
// and adds ablation benchmarks for the design choices called out in
// DESIGN.md §6 (SMS-EGO vs random search, dataflow choice, architectural
// fine-tuning, evaluation worker count) plus micro-benchmarks of the hot
// substrates.
//
// Figure/table benchmarks report domain metrics through b.ReportMetric
// (missions, hypervolume, FPS) so regressions in the *results*, not just the
// runtime, are visible.
package autopilot

import (
	"context"
	"fmt"
	"testing"

	"autopilot/internal/airlearning"
	"autopilot/internal/bayesopt"
	"autopilot/internal/core"
	"autopilot/internal/dse"
	"autopilot/internal/experiments"
	"autopilot/internal/gp"
	"autopilot/internal/pareto"
	"autopilot/internal/policy"
	"autopilot/internal/power"
	"autopilot/internal/rl"
	"autopilot/internal/spa"
	"autopilot/internal/systolic"
	"autopilot/internal/tensor"
	"autopilot/internal/train"
	"autopilot/internal/uav"
)

// benchConfig is the budget used by the figure benchmarks: small enough to
// iterate, large enough to reproduce the paper's shapes.
func benchConfig() experiments.Config {
	bo := bayesopt.DefaultConfig()
	bo.InitSamples, bo.Iterations, bo.ScreenSize = 10, 14, 96
	return experiments.Config{
		Phase2: dse.Config{CandidatePool: 192, BO: bo, Seed: 1, ProbeCorners: true},
		Seed:   1,
	}
}

// --- One benchmark per paper table/figure --------------------------------

func BenchmarkFig2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewSuite(benchConfig()).Fig2b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewSuite(benchConfig()).Fig3b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewSuite(benchConfig()).Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewSuite(benchConfig()).Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewSuite(benchConfig()).Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewSuite(benchConfig()).Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewSuite(benchConfig()).Fig9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewSuite(benchConfig()).Fig10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewSuite(benchConfig()).Fig11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewSuite(benchConfig()).TableV(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullPipeline times one complete AutoPilot run (nano, dense) and
// reports the headline domain metric.
func BenchmarkFullPipeline(b *testing.B) {
	var missions float64
	for i := 0; i < b.N; i++ {
		spec := core.DefaultSpec(uav.ZhangNano(), airlearning.DenseObstacle)
		spec.Phase2 = benchConfig().Phase2
		rep, err := core.Run(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		missions = rep.Selected.Missions()
	}
	b.ReportMetric(missions, "missions")
}

// --- Ablation benchmarks (DESIGN.md §5) ----------------------------------

// BenchmarkAblationBOvsRandom compares the Pareto hypervolume SMS-EGO
// reaches against random search at the same evaluation budget.
func BenchmarkAblationBOvsRandom(b *testing.B) {
	db := airlearning.NewDatabase()
	airlearning.PopulateSurrogate(db)
	space := dse.DefaultSpace()
	makeProblem := func() (bayesopt.Problem, []dse.DesignPoint) {
		cands := space.Sample(512, 3)
		feats := make([][]float64, len(cands))
		for i, d := range cands {
			feats[i] = space.Features(d)
		}
		ev := dse.NewEvaluator(db, airlearning.DenseObstacle, power.Default(), dse.WithTemplate(space.Template))
		return bayesopt.Problem{
			Candidates: feats,
			Evaluate: func(i int) []float64 {
				e, err := ev.Evaluate(cands[i])
				if err != nil {
					b.Fatal(err)
				}
				return e.Objectives()
			},
			NumObjectives: 3,
			Ref:           []float64{0, 30, 1},
		}, cands
	}
	b.Run("sms-ego", func(b *testing.B) {
		var hv float64
		for i := 0; i < b.N; i++ {
			p, _ := makeProblem()
			cfg := bayesopt.DefaultConfig()
			cfg.InitSamples, cfg.Iterations, cfg.ScreenSize = 12, 28, 128
			res, err := bayesopt.Optimize(p, cfg)
			if err != nil {
				b.Fatal(err)
			}
			hv = res.HypervolumeTrace[len(res.HypervolumeTrace)-1]
		}
		b.ReportMetric(hv, "hypervolume")
	})
	b.Run("random", func(b *testing.B) {
		var hv float64
		for i := 0; i < b.N; i++ {
			p, _ := makeProblem()
			res, err := bayesopt.RandomSearch(p, 40, 11)
			if err != nil {
				b.Fatal(err)
			}
			hv = res.HypervolumeTrace[len(res.HypervolumeTrace)-1]
		}
		b.ReportMetric(hv, "hypervolume")
	})
}

// BenchmarkAblationOptimizers compares every Phase-2 search method (the
// paper's §III-B: BO is replaceable with GA/SA) at the same evaluation
// budget, reporting the dominated hypervolume of the resulting front.
func BenchmarkAblationOptimizers(b *testing.B) {
	db := airlearning.NewDatabase()
	airlearning.PopulateSurrogate(db)
	space := dse.DefaultSpace()
	cfg := benchConfig().Phase2
	ref := []float64{0, 30, 1}
	for _, opt := range []dse.Optimizer{dse.OptBayesian, dse.OptGenetic, dse.OptAnnealing, dse.OptReinforce, dse.OptRandom} {
		b.Run(opt.String(), func(b *testing.B) {
			var hv float64
			for i := 0; i < b.N; i++ {
				res, err := dse.Execute(context.Background(), dse.Request{
					Space: space, DB: db, Scenario: airlearning.DenseObstacle,
					Power: power.Default(), Config: cfg, Optimizer: opt,
				})
				if err != nil {
					b.Fatal(err)
				}
				objs := make([][]float64, 0, len(res.ParetoIdx))
				for _, e := range res.Pareto() {
					objs = append(objs, e.Objectives())
				}
				hv = pareto.Hypervolume(objs, ref)
			}
			b.ReportMetric(hv, "hypervolume")
		})
	}
}

// BenchmarkAblationWorkers measures Phase-2 wall-clock scaling across
// evaluation worker counts; the determinism tests guarantee the results
// themselves are identical, so only the runtime should move.
func BenchmarkAblationWorkers(b *testing.B) {
	db := airlearning.NewDatabase()
	airlearning.PopulateSurrogate(db)
	cfg := benchConfig().Phase2
	for _, workers := range []int{1, 2, 4, 0} {
		name := "workers=all"
		if workers > 0 {
			name = "workers=" + string(rune('0'+workers))
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := dse.Execute(context.Background(), dse.Request{
					Space:    dse.DefaultSpace(),
					DB:       db,
					Scenario: airlearning.DenseObstacle,
					Power:    power.Default(),
					Config:   cfg,
					Workers:  workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDataflow compares the three systolic mappings on the
// dense-obstacle policy, reporting achieved FPS.
func BenchmarkAblationDataflow(b *testing.B) {
	net, err := policy.Build(policy.Hyper{Layers: 7, Filters: 48}, policy.DefaultTemplate())
	if err != nil {
		b.Fatal(err)
	}
	for _, df := range []systolic.Dataflow{systolic.OutputStationary, systolic.WeightStationary, systolic.InputStationary} {
		b.Run(df.String(), func(b *testing.B) {
			// generous bandwidth puts the array in the compute-bound regime
			// where the mapping strategy actually matters
			cfg := systolic.Config{
				Rows: 128, Cols: 128, IfmapKB: 256, FilterKB: 256, OfmapKB: 256,
				Dataflow: df, FreqMHz: 500, BandwidthGBps: 64,
			}
			var fps float64
			for i := 0; i < b.N; i++ {
				rep, err := systolic.Simulate(net, cfg)
				if err != nil {
					b.Fatal(err)
				}
				fps = rep.FPS
			}
			b.ReportMetric(fps, "fps")
		})
	}
}

// BenchmarkAblationTuning measures what the architectural fine-tuning stage
// (frequency + node scaling) buys at mission level.
func BenchmarkAblationTuning(b *testing.B) {
	spec := core.DefaultSpec(uav.ZhangNano(), airlearning.DenseObstacle)
	spec.Phase2 = benchConfig().Phase2
	db, err := core.Phase1(context.Background(), spec)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Phase2(context.Background(), spec, db)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("with-tuning", func(b *testing.B) {
		var missions float64
		for i := 0; i < b.N; i++ {
			rep, err := core.Phase3(context.Background(), spec, res)
			if err != nil {
				b.Fatal(err)
			}
			missions = rep.Selected.Missions()
		}
		b.ReportMetric(missions, "missions")
	})
	b.Run("without-tuning", func(b *testing.B) {
		frozen := spec
		// restrict tuning to the identity variant
		frozen.Tuning.FreqScales = []float64{1.0}
		frozen.Tuning.Nodes = []int{28}
		var missions float64
		for i := 0; i < b.N; i++ {
			rep, err := core.Phase3(context.Background(), frozen, res)
			if err != nil {
				b.Fatal(err)
			}
			missions = rep.Selected.Missions()
		}
		b.ReportMetric(missions, "missions")
	})
}

// --- Micro-benchmarks of the substrates -----------------------------------

func BenchmarkSystolicSimulate(b *testing.B) {
	net, err := policy.Build(policy.Hyper{Layers: 7, Filters: 48}, policy.DefaultTemplate())
	if err != nil {
		b.Fatal(err)
	}
	cfg := systolic.Config{Rows: 128, Cols: 128, IfmapKB: 256, FilterKB: 256, OfmapKB: 256,
		Dataflow: systolic.OutputStationary, FreqMHz: 500, BandwidthGBps: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := systolic.Simulate(net, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGPFitPredict(b *testing.B) {
	g := tensor.NewRNG(1)
	n := 64
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{g.Float64(), g.Float64(), g.Float64()}
		y[i] = g.NormFloat64()
	}
	k := gp.SE{Variance: 1, LengthScale: 0.5}
	q := []float64{0.5, 0.5, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := gp.Fit(x, y, k, 1e-6)
		if err != nil {
			b.Fatal(err)
		}
		m.Predict(q)
	}
}

func BenchmarkHypervolume3D(b *testing.B) {
	g := tensor.NewRNG(2)
	pts := make([][]float64, 40)
	for i := range pts {
		pts[i] = []float64{g.Float64(), g.Float64(), g.Float64()}
	}
	ref := []float64{1.5, 1.5, 1.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pareto.Hypervolume(pts, ref)
	}
}

func BenchmarkPolicyForward(b *testing.B) {
	g := tensor.NewRNG(3)
	m, err := policy.NewTrainable(policy.Hyper{Layers: 4, Filters: 48}, policy.DefaultTrainable(), g)
	if err != nil {
		b.Fatal(err)
	}
	img := g.Randn(1, 1, 11, 11)
	st := g.Randn(1, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(img, st)
	}
}

func BenchmarkEnvEpisode(b *testing.B) {
	env := airlearning.NewEnv(airlearning.DenseObstacle, 1)
	expert := airlearning.ExpertPolicy{Env: env}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		airlearning.RunEpisode(env, expert)
	}
}

// BenchmarkTrainRolloutEpisode times one single-episode frozen-policy
// rollout through the engine's shared episode loop — the unit of work the
// evaluation collector repeats.
func BenchmarkTrainRolloutEpisode(b *testing.B) {
	g := tensor.NewRNG(5)
	net, err := policy.NewTrainable(policy.Hyper{Layers: 2, Filters: 32}, policy.DefaultTrainable(), g)
	if err != nil {
		b.Fatal(err)
	}
	pol := rl.GreedyPolicy{Net: net}
	env := airlearning.NewEnv(airlearning.LowObstacle, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		airlearning.RunEpisode(env, pol)
	}
}

// BenchmarkTrainCollector measures the batched evaluation collector's
// throughput at several worker counts; the determinism tests guarantee the
// per-episode results are identical, so only runtime should move.
func BenchmarkTrainCollector(b *testing.B) {
	g := tensor.NewRNG(6)
	net, err := policy.NewTrainable(policy.Hyper{Layers: 2, Filters: 32}, policy.DefaultTrainable(), g)
	if err != nil {
		b.Fatal(err)
	}
	pol := rl.GreedyPolicy{Net: net}
	const episodes = 32
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			col := train.Collector{Scenario: airlearning.LowObstacle, Seed: 3001, Workers: workers}
			for i := 0; i < b.N; i++ {
				if _, err := col.SuccessRate(context.Background(), pol, episodes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDQNTrainingStep(b *testing.B) {
	g := tensor.NewRNG(4)
	h := policy.Hyper{Layers: 2, Filters: 32}
	online, _ := policy.NewTrainable(h, policy.DefaultTrainable(), g)
	target, _ := policy.NewTrainable(h, policy.DefaultTrainable(), g)
	cfg := rl.DefaultDQNConfig()
	cfg.LearnStart, cfg.UpdateEvery, cfg.BatchSize = 1, 1, 8
	agent := rl.NewDQN(online, target, cfg, 1)
	env := airlearning.NewEnv(airlearning.LowObstacle, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Train(env, 1)
	}
}

func BenchmarkExtSensor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewSuite(benchConfig()).ExtSensor(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtOptimizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewSuite(benchConfig()).ExtOptimizer(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPAEpisode(b *testing.B) {
	env := airlearning.NewEnv(airlearning.DenseObstacle, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := spa.NewPipeline(env)
		airlearning.RunEpisode(env, pl)
	}
}

func BenchmarkTraceLayer(b *testing.B) {
	layer := policy.LayerSpec{
		Name: "conv", Kind: policy.KindConv,
		Conv: tensor.ConvDims{InC: 3, InH: 16, InW: 16, OutC: 16, K: 3, Stride: 1, Pad: 1},
	}
	cfg := systolic.Config{Rows: 8, Cols: 8, IfmapKB: 32, FilterKB: 32, OfmapKB: 32,
		Dataflow: systolic.OutputStationary, FreqMHz: 500, BandwidthGBps: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := systolic.TraceLayer(layer, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
