// Nano co-design walkthrough: runs each AutoPilot phase separately for the
// nano-UAV in the dense-obstacle scenario, showing what every stage
// produces — including a small *real* RL training run on the grid-world
// simulator (Phase 1), the Phase-2 Pareto frontier, the F-1 roofline with
// the selected operating point, and the comparison against conventional
// picks and general-purpose baselines.
//
// Run with:
//
//	go run ./examples/nano_codesign
package main

import (
	"context"
	"fmt"
	"log"

	"autopilot/internal/airlearning"
	"autopilot/internal/core"
	"autopilot/internal/plot"
	"autopilot/internal/policy"
	"autopilot/internal/rl"
	"autopilot/internal/uav"
)

func main() {
	ctx := context.Background()
	spec := core.DefaultSpec(uav.ZhangNano(), airlearning.DenseObstacle)

	// ---- Phase 1: train and validate E2E policies -------------------------
	fmt.Println("Phase 1: domain-specific front end")
	fmt.Println("  training one small policy for real on the grid-world simulator...")
	rec, _, err := rl.Engine(
		rl.TrainConfig{Algorithm: rl.AlgDQN, Episodes: 60, EvalEpisodes: 20, Seed: 7},
	).Train(ctx, policy.Hyper{Layers: 2, Filters: 32}, airlearning.DenseObstacle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  trained %s: %.0f%% success after %d env steps\n",
		rec.Hyper, 100*rec.SuccessRate, rec.TrainSteps)

	db, err := core.Phase1(ctx, spec) // full family via the calibrated surrogate
	if err != nil {
		log.Fatal(err)
	}
	best, _ := db.Best(spec.Scenario)
	fmt.Printf("  database: %d validated policies; best for %s is %s (%.0f%%)\n\n",
		db.Len(), spec.Scenario, best.Hyper, 100*best.SuccessRate)

	// ---- Phase 2: multi-objective HW-SW co-design -------------------------
	fmt.Println("Phase 2: domain-agnostic multi-objective DSE (SMS-EGO Bayesian optimization)")
	res, err := core.Phase2(ctx, spec, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  evaluated %d of %d candidate designs; Pareto front holds %d\n",
		len(res.Evaluated), spec.Phase2.CandidatePool, len(res.ParetoIdx))
	fmt.Println("  sample of the frontier:")
	for i, e := range res.Pareto() {
		if i >= 5 {
			break
		}
		fmt.Printf("    %-44s %6.1f FPS %6.2f W\n", e.Design, e.FPS, e.SoCPowerW)
	}
	fmt.Println()

	// ---- Phase 3: domain-specific back end --------------------------------
	fmt.Println("Phase 3: full-system UAV co-design with the F-1 model")
	rep, err := core.Phase3(ctx, spec, res)
	if err != nil {
		log.Fatal(err)
	}
	rep.Database = db
	sel := rep.Selected

	accel := spec.Platform.MaxAccelMS2(sel.PayloadG)
	chart := plot.New("  F-1 roofline with the selected design", "action throughput (Hz)", "safe velocity (m/s)")
	pts := rep.F1.Curve(accel, 120, 60)
	xs, ys := make([]float64, len(pts)), make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.ThroughputHz, p.VSafeMS
	}
	chart.AddLine("v_safe", xs, ys)
	chart.AddPoint("knee", sel.KneeHz, rep.F1.SafeVelocity(sel.KneeHz, accel), 'K')
	chart.AddPoint("selected", sel.ActionHz, sel.VSafeMS, 'A')
	fmt.Print(chart)

	fmt.Printf("\n  selected: %s", sel.Design.Design)
	if sel.Tuned != "" {
		fmt.Printf("  (fine-tuned: %s)", sel.Tuned)
	}
	fmt.Printf("\n  %.1f FPS @ %.2f W, %.1f g payload -> %.2f missions per charge\n\n",
		sel.Design.FPS, sel.Design.SoCPowerW, sel.PayloadG, sel.Missions())

	fmt.Println("Conventional picks on the same UAV:")
	for _, alt := range []struct {
		name string
		s    core.Selection
	}{{"high-throughput", rep.HT}, {"low-power", rep.LP}, {"high-efficiency", rep.HE}} {
		fmt.Printf("  %-16s %6.2f missions (AutoPilot gain %.2fx)\n",
			alt.name, alt.s.Missions(), core.MissionGain(sel, alt.s))
	}
	fmt.Println("General-purpose baselines:")
	for _, b := range uav.Baselines() {
		bs := core.EvaluateBaseline(spec, db, b)
		fmt.Printf("  %-16s %6.2f missions (AutoPilot gain %.2fx)\n",
			b.Name, bs.Missions(), core.MissionGain(sel, bs))
	}
}
