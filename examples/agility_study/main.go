// Agility study (paper §V-C, Fig. 11): how a UAV's thrust-to-weight ratio
// changes the compute-throughput requirement. The study equips the DJI Spark
// and the more agile Zhang nano-UAV with the same 60 FPS sensor, overlays
// their F-1 rooflines, and shows that the agile platform's knee point sits
// at roughly twice the action throughput — so it needs roughly twice the
// accelerator.
//
// Run with:
//
//	go run ./examples/agility_study
package main

import (
	"context"
	"fmt"
	"log"

	"autopilot/internal/airlearning"
	"autopilot/internal/core"
	"autopilot/internal/f1"
	"autopilot/internal/plot"
	"autopilot/internal/thermal"
	"autopilot/internal/uav"
)

func main() {
	model := f1.ForScenario(airlearning.DenseObstacle)
	payload := thermal.Default().ComputeWeightGrams(0.7) // the paper's AP payload

	chart := plot.New("F-1 rooflines: agile nano vs DJI Spark (dense obstacles)",
		"action throughput (Hz)", "safe velocity (m/s)")
	fmt.Println("platform                     accel     knee    required compute")
	for _, plat := range []uav.Platform{uav.DJISpark(), uav.ZhangNano()} {
		accel := plat.MaxAccelMS2(payload)
		knee := model.KneePoint(accel)
		pts := model.Curve(accel, 100, 60)
		xs, ys := make([]float64, len(pts)), make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p.ThroughputHz, p.VSafeMS
		}
		chart.AddLine(fmt.Sprintf("%s (knee %.0f Hz)", plat.Name, knee), xs, ys)
		fmt.Printf("%-26s %5.1f m/s² %5.1f Hz   sensor-compute pipeline at >= %.0f FPS\n",
			plat.Name, accel, knee, knee)
	}
	fmt.Println()
	fmt.Print(chart)

	// Confirm with the full pipeline: AutoPilot should select roughly 2x the
	// compute throughput for the nano (paper: 46 vs 27 Hz knee points).
	fmt.Println("\nfull pipeline selections (dense obstacles, 60 FPS sensor):")
	for _, plat := range []uav.Platform{uav.DJISpark(), uav.ZhangNano()} {
		spec := core.DefaultSpec(plat, airlearning.DenseObstacle)
		spec.SensorFPS = 60
		rep, err := core.Run(context.Background(), spec)
		if err != nil {
			log.Fatal(err)
		}
		s := rep.Selected
		fmt.Printf("  %-26s %6.1f FPS accel (knee %.1f Hz) -> v_safe %.2f m/s, %.2f missions\n",
			plat.Name, s.Design.FPS, s.KneeHz, s.VSafeMS, s.Missions())
	}
}
