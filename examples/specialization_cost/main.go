// Specialization cost study (paper §VI, Table V): what does it cost to skip
// deployment-specific hardware specialization? The study takes the mini-UAV
// on medium-obstacle missions and compares its scenario-optimized DSSoC
// against (a) AutoPilot designs specialized for the *other* scenarios but
// reused here, and (b) general-purpose hardware (Jetson TX2, Intel NCS).
//
// Run with:
//
//	go run ./examples/specialization_cost
package main

import (
	"fmt"
	"log"

	"autopilot/internal/experiments"
)

func main() {
	suite := experiments.NewSuite(experiments.DefaultConfig())
	table, err := suite.TableV()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table)
	fmt.Println(`
Reading the table:
  - the medium-obstacle knee design is the reference (0% degradation);
  - reusing a design specialized for a sparser scenario under-provisions
    compute, so the UAV must fly slower (compute bound lowers Vsafe);
  - reusing a heavier design or flying general-purpose hardware drags the
    roofline down through payload weight;
  - per the paper, specialization is worth 27-67% of mission capacity, but
    reusing a single DSSoC saves design cost if that loss is acceptable.`)
}
