// Quickstart: co-design a DSSoC for a nano-UAV flying dense-obstacle
// missions, in ~20 lines of code.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"autopilot/internal/airlearning"
	"autopilot/internal/core"
	"autopilot/internal/uav"
)

func main() {
	// 1. Describe the task: which UAV, which deployment scenario.
	spec := core.DefaultSpec(uav.ZhangNano(), airlearning.DenseObstacle)

	// 2. Run the three-phase pipeline: train/validate E2E policies (Phase 1),
	//    Bayesian-optimize the model+accelerator space (Phase 2), and select
	//    the mission-optimal design with the F-1 model (Phase 3).
	report, err := core.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Read off the co-designed (algorithm, accelerator) pair.
	sel := report.Selected
	fmt.Printf("selected E2E model:   %s (%.0f%% task success)\n",
		sel.Design.Design.Hyper, 100*sel.Design.SuccessRate)
	fmt.Printf("selected accelerator: %s\n", sel.Design.Design.HW)
	if sel.Tuned != "" {
		fmt.Printf("fine-tuning applied:  %s\n", sel.Tuned)
	}
	fmt.Printf("operating point:      %.1f FPS at %.2f W, %.1f g payload\n",
		sel.Design.FPS, sel.Design.SoCPowerW, sel.PayloadG)
	fmt.Printf("mission performance:  %.2f missions per battery charge (v_safe %.2f m/s)\n",
		sel.Missions(), sel.VSafeMS)
}
