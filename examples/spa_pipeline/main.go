// SPA pipeline extension (paper §VII): runs the Sense-Plan-Act autonomy
// stack — occupancy-grid mapping, A* planning, waypoint control — on the
// same domain-randomized environments as the E2E policies, validates its
// task success, and converts its measured per-decision compute work into an
// F-1 action throughput to show how the AutoPilot back end evaluates SPA
// designs too.
//
// Run with:
//
//	go run ./examples/spa_pipeline
package main

import (
	"fmt"

	"autopilot/internal/airlearning"
	"autopilot/internal/core"
	"autopilot/internal/cpu"
	"autopilot/internal/f1"
	"autopilot/internal/hw"
	"autopilot/internal/spa"
	"autopilot/internal/thermal"
	"autopilot/internal/uav"
)

func main() {
	fmt.Println("Sense-Plan-Act autonomy on the domain-randomized navigation task")
	fmt.Println()
	fmt.Printf("%-16s %8s %10s %12s %9s\n", "scenario", "success", "steps/ep", "ops/decision", "replans")

	opsPerDecision := map[airlearning.Scenario]float64{}
	success := map[airlearning.Scenario]float64{}
	for _, scen := range airlearning.Scenarios {
		st := spa.Measure(scen, 25, 42)
		opsPerDecision[scen] = st.OpsPerDecision
		success[scen] = st.SuccessRate
		fmt.Printf("%-16s %7.0f%% %10.1f %12.0f %9.1f\n",
			scen, 100*st.SuccessRate, st.StepsPerEpisode,
			st.OpsPerDecision, st.ReplansPerEpisode)
	}

	// Map the SPA compute requirement onto the F-1 model: how many ops/s
	// must the onboard computer sustain for the nano-UAV to stay at its
	// knee point in each scenario?
	fmt.Println()
	fmt.Println("required sustained compute for the nano-UAV to reach its F-1 knee:")
	nano := uav.ZhangNano()
	payload := thermal.Default().ComputeWeightGrams(0.7)
	for _, scen := range airlearning.Scenarios {
		model := f1.ForScenario(scen)
		knee := model.KneePoint(nano.MaxAccelMS2(payload))
		ops := opsPerDecision[scen]
		fmt.Printf("  %-16s knee %5.1f Hz x %6.0f ops/decision = %.2f Mops/s\n",
			scen, knee, ops, knee*ops/1e6)
	}
	// Pick the cheapest embedded CPU from the catalog that reaches the knee —
	// the SPA analogue of Phase 3's knee-point selection.
	fmt.Println()
	fmt.Println("cheapest catalog CPU reaching the dense-obstacle knee:")
	pm := cpu.DefaultPowerModel()
	dense := f1.ForScenario(airlearning.DenseObstacle)
	knee := dense.KneePoint(nano.MaxAccelMS2(payload))
	sel, err := cpu.SelectForKnee(opsPerDecision[airlearning.DenseObstacle], knee, pm)
	if err != nil {
		fmt.Println("  none:", err)
	} else {
		fmt.Printf("  %s -> %.0f Hz at %.2f W\n",
			sel, sel.ActionHz(opsPerDecision[airlearning.DenseObstacle]), pm.Power(sel))
	}

	// The same SPA op-count, lowered into the unified hardware cost-model
	// layer: an hw.SPAWorkload priced on every catalog CPU through the same
	// Backend seam and full-system (F-1 + mission) path the systolic designs
	// use.
	fmt.Println()
	fmt.Println("SPA workload through the hw cost-model layer (nano-UAV, dense):")
	wl := hw.SPAWorkload("spa/dense", opsPerDecision[airlearning.DenseObstacle])
	spec := core.DefaultSpec(nano, airlearning.DenseObstacle)
	fmt.Printf("  %-28s %10s %8s %9s %9s\n", "backend", "action Hz", "SoC W", "v_safe", "missions")
	for _, c := range cpu.Catalog() {
		be := hw.SPABackend{Compute: hw.CPUBackend{Config: c, Power: pm}}
		est, err := be.Estimate(wl)
		if err != nil {
			fmt.Printf("  %-28s %v\n", be.Name(), err)
			continue
		}
		full := core.EvaluateEstimate(spec, est, success[airlearning.DenseObstacle], dense)
		fmt.Printf("  %-28s %10.1f %8.2f %9.2f %9.2f\n",
			be.Name(), full.ActionHz, full.Design.SoCPowerW, full.VSafeMS, full.Missions())
	}

	fmt.Println()
	fmt.Println("per the paper's taxonomy, a MAVBench-style simulator would replace Air")
	fmt.Println("Learning in Phase 1 and SLAM/planning accelerator templates would replace")
	fmt.Println("the systolic array in Phase 2; the F-1 back end is unchanged.")
}
