// Command gridworker joins a distributed Phase-2 sweep as one worker
// process: it fetches the co-design request from the coordinator (a cmd/dse
// run started with -grid-listen), rebuilds the exact evaluator a local run
// would use, and evaluates leased design points until the sweep completes.
//
// Usage:
//
//	gridworker -coordinator http://127.0.0.1:7070 [-id w0] [-batch 4]
//	    [-parallel 1] [-chaos-seed 1 -chaos-drop 0.1 -chaos-dup 0.05
//	     -chaos-stale 0.05 -chaos-delay 0.1 -chaos-delay-for 20ms]
//	    [-estimate-addr 127.0.0.1:0] [-debug-addr 127.0.0.1:0]
//
// The -chaos-* flags deterministically inject network faults into this
// worker's RPCs (dropped, delayed, duplicated, and stale-attempt
// deliveries); because they corrupt delivery and never payloads, the merged
// sweep result stays bitwise identical to a fault-free run. -estimate-addr
// additionally serves this worker's hardware backend over HTTP
// (hw.EstimateHandler) so it can double as a cost-model fleet node for
// hw.RemoteBackend clients, and -debug-addr serves the worker's live metrics
// (including /debug/prometheus in text exposition format).
//
// When the coordinator runs with telemetry on, the worker also ships its
// evaluation spans and metrics snapshots back piggybacked on its existing
// RPCs, so the coordinator's merged trace and /grid/v1/fleet endpoint show
// this worker's lane.
//
// The worker exits 0 when the coordinator reports the sweep done, and
// non-zero when the coordinator stays unreachable.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"autopilot/internal/dse"
	"autopilot/internal/fault"
	"autopilot/internal/grid"
	"autopilot/internal/hw"
	"autopilot/internal/obs"
	"autopilot/internal/power"
	"autopilot/internal/systolic"
)

func main() {
	coordinator := flag.String("coordinator", "", "coordinator base URL (required), e.g. http://127.0.0.1:7070")
	id := flag.String("id", fmt.Sprintf("worker-%d", os.Getpid()), "worker id (must be unique per coordinator)")
	batch := flag.Int("batch", 0, "jobs requested per lease call (0 = coordinator default)")
	parallel := flag.Int("parallel", 1, "concurrent evaluations")
	heartbeat := flag.Duration("heartbeat", 0, "lease-renewal period (0 = coordinator's grid block)")
	poll := flag.Duration("poll", 100*time.Millisecond, "idle backoff between empty lease calls")
	chaosSeed := flag.Int64("chaos-seed", 1, "network-chaos decision seed")
	chaosDrop := flag.Float64("chaos-drop", 0, "probability an RPC is dropped on the wire")
	chaosDup := flag.Float64("chaos-dup", 0, "probability an RPC is delivered twice")
	chaosStale := flag.Float64("chaos-stale", 0, "probability a result is re-delivered with a stale attempt rank")
	chaosDelay := flag.Float64("chaos-delay", 0, "probability an RPC is delayed")
	chaosDelayFor := flag.Duration("chaos-delay-for", 20*time.Millisecond, "injected RPC delay duration")
	estimateAddr := flag.String("estimate-addr", "", "also serve this worker's hw backend over HTTP on this address")
	debugAddr := flag.String("debug-addr", "", "serve live metrics, /debug/prometheus, expvar, and pprof on this HTTP address")
	flag.Parse()

	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "gridworker: -coordinator is required")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var net_ *fault.Injector
	if *chaosDrop > 0 || *chaosDup > 0 || *chaosStale > 0 || *chaosDelay > 0 {
		net_ = &fault.Injector{
			Seed:      *chaosSeed,
			DropRate:  *chaosDrop,
			DupRate:   *chaosDup,
			StaleRate: *chaosStale,
			DelayRate: *chaosDelay,
			Delay:     *chaosDelayFor,
		}
	}

	observer := &obs.Observer{Metrics: obs.NewRegistry()}

	if *debugAddr != "" {
		addr, stopDbg, err := obs.ServeDebug(*debugAddr, observer.Metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridworker:", err)
			os.Exit(1)
		}
		defer stopDbg() //nolint:errcheck // best-effort shutdown
		fmt.Fprintf(os.Stderr, "gridworker: debug endpoint on http://%s/debug/prometheus\n", addr)
	}

	if *estimateAddr != "" {
		// A fixed mid-grid accelerator config: the wire workload carries the
		// network recipe, and this node prices it on this configuration.
		backend := hw.SystolicBackend{
			Config: systolic.Config{
				Rows: 16, Cols: 16, IfmapKB: 64, FilterKB: 64, OfmapKB: 64,
				FreqMHz: 500, BandwidthGBps: dse.Bandwidth(16 * 16),
			},
			Power: power.Default(),
		}
		ln, err := net.Listen("tcp", *estimateAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridworker:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gridworker: estimate backend on http://%s\n", ln.Addr())
		srv := &http.Server{Handler: http.NewServeMux()}
		srv.Handler.(*http.ServeMux).Handle("/grid/v1/estimate", hw.ObservedEstimateHandler(backend, observer))
		go srv.Serve(ln) //nolint:errcheck // closed with the process
		defer srv.Close()
	}

	err := grid.Run(ctx, grid.WorkerConfig{
		URL:       *coordinator,
		ID:        *id,
		Batch:     *batch,
		Parallel:  *parallel,
		Heartbeat: *heartbeat,
		Poll:      *poll,
		Net:       net_,
		Obs:       observer,
	})
	if err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "gridworker:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gridworker: %s done\n", *id)
}
