// Command experiments regenerates every table and figure from the paper's
// evaluation section and prints them in order. Use -only to select one
// experiment by id (e.g. -only Fig7).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"autopilot/internal/experiments"
	"autopilot/internal/taxonomy"
)

func main() {
	only := flag.String("only", "", "regenerate only the experiment with this id (e.g. Fig7, TableV)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown instead of aligned text")
	qualitative := flag.Bool("qualitative", false, "also print the qualitative tables (Table I, Table VI)")
	plots := flag.Bool("plots", false, "also render the ASCII Pareto scatter and F-1 roofline")
	flag.Parse()
	if *qualitative {
		fmt.Println(taxonomy.Render())
	}
	suite := experiments.NewSuite(experiments.DefaultConfig())
	if *markdown && *only == "" {
		if err := suite.WriteAllMarkdown(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	tables, err := suite.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	for _, t := range tables {
		if *only != "" && !strings.EqualFold(t.ID, *only) {
			continue
		}
		if *markdown {
			if err := t.WriteMarkdown(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			continue
		}
		fmt.Println(t)
	}
	if *plots {
		pareto, err := suite.ParetoPlot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(pareto)
		roof, err := suite.RooflinePlot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(roof)
	}
}
