// Command trainsim runs AutoPilot's Phase 1 for real: it trains an E2E
// policy with reinforcement learning on the grid-world navigation simulator,
// validates its success rate over domain-randomized episodes, and appends
// the record to an Air Learning database file.
//
// Usage:
//
//	trainsim -layers 4 -filters 48 -scenario medium -episodes 300 -db policies.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"autopilot/internal/airlearning"
	"autopilot/internal/policy"
	"autopilot/internal/rl"
)

func main() {
	layers := flag.Int("layers", 4, "E2E template depth (2-10)")
	filters := flag.Int("filters", 48, "E2E template width (32|48|64)")
	scenName := flag.String("scenario", "medium", "deployment scenario: low|medium|dense")
	episodes := flag.Int("episodes", 300, "training episodes")
	evalEps := flag.Int("eval", 50, "validation episodes")
	algo := flag.String("algo", "dqn", "training algorithm: dqn|reinforce")
	seed := flag.Int64("seed", 1, "random seed")
	dbPath := flag.String("db", "", "Air Learning database file to update (optional)")
	flag.Parse()

	var scen airlearning.Scenario
	switch strings.ToLower(*scenName) {
	case "low":
		scen = airlearning.LowObstacle
	case "medium", "med":
		scen = airlearning.MediumObstacle
	case "dense":
		scen = airlearning.DenseObstacle
	default:
		fmt.Fprintf(os.Stderr, "trainsim: unknown scenario %q\n", *scenName)
		os.Exit(2)
	}
	var algorithm rl.Algorithm
	switch strings.ToLower(*algo) {
	case "dqn":
		algorithm = rl.AlgDQN
	case "reinforce":
		algorithm = rl.AlgReinforce
	default:
		fmt.Fprintf(os.Stderr, "trainsim: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	h := policy.Hyper{Layers: *layers, Filters: *filters}
	if err := h.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "trainsim:", err)
		os.Exit(2)
	}
	cfg := rl.TrainConfig{Algorithm: algorithm, Episodes: *episodes, EvalEpisodes: *evalEps, Seed: *seed}
	fmt.Printf("training %s on %s with %s for %d episodes...\n", h, scen, algorithm, *episodes)
	rec, pol, err := rl.TrainPolicy(h, scen, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trainsim:", err)
		os.Exit(1)
	}
	ciEnv := airlearning.NewEnv(scen, *seed+5000)
	_, lo, hi := airlearning.SuccessRateCI(ciEnv, pol, *evalEps)
	fmt.Printf("validated success rate: %.0f%% over %d episodes (95%% CI %.0f-%.0f%%; %d env steps, %d deployment params)\n",
		100*rec.SuccessRate, *evalEps, 100*lo, 100*hi, rec.TrainSteps, rec.Params)

	if *dbPath != "" {
		db, err := airlearning.Load(*dbPath)
		if err != nil {
			db = airlearning.NewDatabase()
		}
		db.Put(rec)
		if err := db.Save(*dbPath); err != nil {
			fmt.Fprintln(os.Stderr, "trainsim:", err)
			os.Exit(1)
		}
		fmt.Printf("database %s now holds %d records\n", *dbPath, db.Len())
	}
}
