// Command trainsim runs AutoPilot's Phase 1 for real: it trains E2E
// policies with reinforcement learning on the grid-world navigation
// simulator through the unified training engine (internal/train), validates
// their success rates over domain-randomized episodes, and records them in
// an Air Learning database file.
//
// Single run:
//
//	trainsim -layers 4 -filters 48 -scenario medium -episodes 300 -db policies.json
//
// Resumable sweep over the full Table II family — interrupt with Ctrl-C and
// rerun the same command to pick up where it left off:
//
//	trainsim -all -scenario medium -workers 8 -db policies.json
//
// Observability: -trace writes a Chrome trace_event JSON of per-run training
// spans, -manifest a machine-readable run manifest, and -debug-addr serves
// live metrics/expvar/pprof over HTTP. The -progress output is unchanged: it
// now rides the obs event stream through a writer-sink adapter.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"flag"

	"autopilot/internal/airlearning"
	"autopilot/internal/api"
	"autopilot/internal/fault"
	"autopilot/internal/obs"
	"autopilot/internal/policy"
	"autopilot/internal/rl"
	"autopilot/internal/train"
)

func main() {
	layers := flag.Int("layers", 4, "E2E template depth (2-10)")
	filters := flag.Int("filters", 48, "E2E template width (32|48|64)")
	scenName := flag.String("scenario", "medium", "deployment scenario: low|medium|dense")
	episodes := flag.Int("episodes", 300, "training episodes per policy")
	evalEps := flag.Int("eval", 50, "validation episodes")
	algo := flag.String("algo", "dqn", "training algorithm: dqn|reinforce")
	seed := flag.Int64("seed", 1, "base random seed")
	workers := flag.Int("workers", 0, "sweep/evaluation workers (0 = all CPUs)")
	all := flag.Bool("all", false, "sweep the full Table II template family (resumable via -db)")
	progress := flag.Int("progress", 0, "report training progress every N episodes (0 = per-run only)")
	dbPath := flag.String("db", "", "Air Learning database file to update; with -all it doubles as the resume checkpoint")
	retries := flag.Int("retries", 1, "attempt budget per training job (1 = no retries)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-attempt timeout for training jobs (0 = unbounded)")
	failureBudget := flag.Float64("failure-budget", 0, "fraction of sweep jobs allowed to fail after retries (0 = fail-fast)")
	var obsFlags obs.Flags
	obsFlags.Register()
	flag.Parse()

	// Scenario and algorithm names resolve through the shared api contract,
	// so trainsim accepts exactly the spellings cmd/autopilot and the job
	// server do.
	scen, err := api.ParseScenario(*scenName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trainsim:", err)
		os.Exit(2)
	}
	algorithm, err := api.ParseAlgorithm(*algo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trainsim:", err)
		os.Exit(2)
	}
	cfg := rl.TrainConfig{Algorithm: algorithm, Episodes: *episodes, EvalEpisodes: *evalEps, Seed: *seed}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	run, err := obsFlags.Start("trainsim")
	if err != nil {
		fmt.Fprintln(os.Stderr, "trainsim:", err)
		os.Exit(1)
	}
	finish := func(runErr error) {
		if s := run.Summary(); s != "" {
			fmt.Fprintln(os.Stderr, s)
		}
		if cerr := run.Close(runErr); cerr != nil && runErr == nil {
			os.Exit(1)
		}
	}
	run.SetSeed("seed", *seed)
	run.SetConfig("scenario", *scenName)
	run.SetConfig("algo", *algo)
	run.SetConfig("episodes", *episodes)
	run.SetConfig("eval_episodes", *evalEps)
	run.SetConfig("workers", *workers)
	run.SetConfig("all", *all)
	run.SetConfig("retries", *retries)
	run.SetConfig("failure_budget", *failureBudget)

	// The retry policy comes from the shared contract; restore the exact
	// duration afterwards since the wire field is millisecond-granular.
	retry := api.Constraints{Retries: *retries, JobTimeoutMS: jobTimeout.Milliseconds()}.RetryPolicy()
	if retry.Attempts > 0 && *jobTimeout > 0 {
		retry.Timeout = *jobTimeout
	}

	if *all {
		runSweep(ctx, run, finish, scen, cfg, *workers, *progress, *dbPath, retry, *failureBudget)
		return
	}

	h := policy.Hyper{Layers: *layers, Filters: *filters}
	if err := h.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "trainsim:", err)
		os.Exit(2)
	}
	// Progress rides the obs event stream; the writer sink renders it to
	// stdout alongside whatever the -trace/-manifest flags attached.
	run.Obs.Events = obs.MultiSink(run.Obs.Events, train.SinkEvents(train.NewWriterSink(os.Stdout)))
	eng := train.New(rl.Factory(cfg), train.Config{
		Episodes:      cfg.Episodes,
		EvalEpisodes:  cfg.EvalEpisodes,
		Seed:          cfg.Seed,
		Workers:       *workers,
		ProgressEvery: *progress,
		Obs:           run.Obs,
	})
	fmt.Printf("training %s on %s with %s for %d episodes...\n", h, scen, algorithm, *episodes)
	rec, pol, err := eng.Train(ctx, h, scen)
	if err != nil {
		finish(err)
		fmt.Fprintln(os.Stderr, "trainsim:", err)
		os.Exit(1)
	}
	ciEnv := airlearning.NewEnv(scen, *seed+5000)
	_, lo, hi := airlearning.SuccessRateCI(ciEnv, pol, *evalEps)
	fmt.Printf("validated success rate: %.0f%% over %d episodes (95%% CI %.0f-%.0f%%; %d env steps, %d deployment params)\n",
		100*rec.SuccessRate, *evalEps, 100*lo, 100*hi, rec.TrainSteps, rec.Params)

	if *dbPath != "" {
		db, err := airlearning.Load(*dbPath)
		if err != nil {
			db = airlearning.NewDatabase()
		}
		db.Put(rec)
		if err := db.Save(*dbPath); err != nil {
			finish(err)
			fmt.Fprintln(os.Stderr, "trainsim:", err)
			os.Exit(1)
		}
		fmt.Printf("database %s now holds %d records\n", *dbPath, db.Len())
	}
	finish(nil)
}

// runSweep trains the full template family through the engine's resumable
// sweep: with -db set, every completed record is snapshotted there and a
// rerun skips the points the snapshot already holds. Jobs run under the
// retry policy; a positive failure budget lets the sweep finish with a
// failure report instead of aborting on the first exhausted job.
func runSweep(ctx context.Context, run *obs.Run, finish func(error), scen airlearning.Scenario, cfg rl.TrainConfig, workers, progress int, dbPath string, retry fault.Policy, failureBudget float64) {
	run.Obs.Events = obs.MultiSink(run.Obs.Events, train.SinkEvents(train.NewWriterSink(os.Stdout)))
	eng := train.New(rl.Factory(cfg), train.Config{
		Episodes:      cfg.Episodes,
		EvalEpisodes:  cfg.EvalEpisodes,
		Seed:          cfg.Seed,
		Workers:       workers,
		Checkpoint:    dbPath,
		ProgressEvery: progress,
		Retry:         retry,
		FailureBudget: failureBudget,
		Obs:           run.Obs,
	})
	hypers := policy.AllHypers()
	fmt.Printf("sweeping %d template points on %s with %s (%d episodes each)...\n",
		len(hypers), scen, cfg.Algorithm, cfg.Episodes)
	db := airlearning.NewDatabase()
	rep, err := eng.Sweep(ctx, hypers, scen, db)
	if rep != nil {
		run.AddFailures(fault.Records(rep.Failures)...)
		if rep.CheckpointQuarantined != "" {
			run.AddEvent("checkpoint-quarantined", rep.CheckpointQuarantined)
		}
	}
	if err != nil {
		finish(err)
		fmt.Fprintln(os.Stderr, "trainsim:", err)
		if dbPath != "" {
			fmt.Fprintf(os.Stderr, "trainsim: partial results checkpointed in %s; rerun to resume\n", dbPath)
		}
		os.Exit(1)
	}
	if rep.CheckpointQuarantined != "" {
		fmt.Fprintf(os.Stderr, "trainsim: corrupt checkpoint quarantined to %s; sweep restarted from scratch\n",
			rep.CheckpointQuarantined)
	}
	if len(rep.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "trainsim: %d job(s) failed within the %.0f%% budget:\n%s\n",
			len(rep.Failures), 100*failureBudget, fault.Summarize(rep.Failures))
	}
	if best, ok := db.Best(scen); ok {
		fmt.Printf("sweep complete: %d records (%d trained, %d resumed); best for %s is %s (%.0f%%)\n",
			db.Len(), rep.Trained, rep.Skipped, scen, best.Hyper, 100*best.SuccessRate)
	}
	if dbPath != "" {
		if err := db.Save(dbPath); err != nil {
			finish(err)
			fmt.Fprintln(os.Stderr, "trainsim:", err)
			os.Exit(1)
		}
		fmt.Printf("database saved to %s\n", dbPath)
	}
	finish(nil)
}
