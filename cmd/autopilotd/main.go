// Command autopilotd serves AutoPilot co-design as a service: a long-lived
// HTTP job server over the three-phase pipeline, speaking the typed
// api.CoDesignRequest/api.Result contract that cmd/autopilot accepts as
// flags. A job submitted over HTTP is bitwise identical to the same run via
// the CLI.
//
// Usage:
//
//	autopilotd -addr :8080 [-job-workers 2] [-queue 64] [-tenant-quota 4]
//	           [-cache 0] [-state-dir results/] [-drain-timeout 30s]
//
// SIGTERM/SIGINT triggers a graceful shutdown: new submissions are refused
// with 503 while queued and running jobs get -drain-timeout to finish (and
// persist their results), after which stragglers are cancelled.
//
// Submit a job and poll it:
//
//	curl -s -XPOST localhost:8080/v1/jobs -d '{"uav":"nano","scenario":"dense"}'
//	curl -s localhost:8080/v1/jobs/job-1
//	curl -s localhost:8080/v1/jobs/job-1/events     # NDJSON progress stream
//	curl -s -XDELETE localhost:8080/v1/jobs/job-1   # cancel
//
// A request may carry an explicit search-space block — including the
// categorical algorithm axis that turns Phase 2 into an algorithm–SoC
// co-search; the Pareto points then report which training algorithm each
// design uses:
//
//	curl -s -XPOST localhost:8080/v1/jobs -d '{"uav":"nano","scenario":"dense",
//	  "space":{"axes":[{"name":"algorithm","choices":["dqn","reinforce"]}]}}'
//
// Identical requests (any tenant, any worker count) are answered from the
// process-wide content-addressed result cache; -state-dir persists computed
// results across restarts. Live metrics — including cache hits/misses —
// are at /debug/metrics, with expvar and pprof alongside.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autopilot/internal/obs"
	"autopilot/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "HTTP listen address")
	jobWorkers := flag.Int("job-workers", 2, "jobs executing concurrently")
	queue := flag.Int("queue", 64, "job queue capacity (full = 503)")
	tenantQuota := flag.Int("tenant-quota", 4, "live jobs per tenant (exceeded = 429)")
	cacheCap := flag.Int("cache", 0, "result cache capacity in entries (0 = unbounded, <0 = disabled)")
	stateDir := flag.String("state-dir", "", "persist computed results here and reload them on start")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "on SIGTERM/SIGINT, let running jobs finish this long before cancelling them")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	svc, err := server.New(server.Config{
		Queue:       *queue,
		JobWorkers:  *jobWorkers,
		TenantQuota: *tenantQuota,
		CacheCap:    *cacheCap,
		StateDir:    *stateDir,
		Metrics:     obs.NewRegistry(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "autopilotd:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autopilotd:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("autopilotd: serving on http://%s (POST /v1/jobs)\n", ln.Addr())

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "autopilotd: draining (new jobs refused; running jobs get", *drainTimeout, "to finish)")
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "autopilotd:", err)
		svc.Close()
		os.Exit(1)
	}
	// Graceful shutdown: refuse new submissions immediately, let queued and
	// running jobs complete within the drain budget (their results are
	// persisted to -state-dir as they finish), cancel stragglers, then close
	// the HTTP listener.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()
	if err := svc.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "autopilotd: drain deadline hit; remaining jobs cancelled")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx) //nolint:errcheck // best-effort drain
}
