// Command dse runs AutoPilot's Phase 2 in isolation: multi-objective
// Bayesian design-space exploration over the Table II model/accelerator
// space for one deployment scenario, printing the Pareto frontier and the
// conventional HT/LP/HE picks.
//
// Usage:
//
//	dse -scenario dense [-pool 2048] [-iters 72] [-seed 1] [-workers 0]
//	    [-db policies.json] [-algorithms dqn,reinforce] [-axis layers=2,4,7]
//	    [-vehicle-axes battery,sensor] [-catalog]
//
// -algorithms widens the sweep into an algorithm–SoC co-search (the
// training algorithm becomes a categorical axis); -axis overrides any
// numeric axis of the Table II grid (layers, filters, pe_rows, pe_cols,
// sram_kb).
//
// -vehicle-axes opens catalog components (airframe, battery, sensor) as
// additional categorical axes: each design flies on its own loadout,
// objectives switch to the full-vehicle metrics (success, vehicle power,
// missions per charge), and loadouts failing the SWaP feasibility check are
// reported as typed skips, never scored. -catalog prints the component
// catalog and exits.
//
// -grid-workers N shards the sweep across N in-process grid workers through
// the lease-based coordinator (internal/grid); -grid-listen ADDR serves the
// coordinator for external cmd/gridworker processes instead. Either way the
// optimizer loop stays in this process and the result is bitwise identical
// to the single-process run at any worker count or kill schedule.
//
// The flags assemble an api.CoDesignRequest and run its Phase-2 projection,
// so flag validation and request wiring are shared with cmd/autopilot and
// the cmd/autopilotd job server.
//
// Evaluations fan out over -workers goroutines (0 = all CPUs); the result is
// bitwise deterministic for a given seed regardless of the worker count.
// Ctrl-C cancels the sweep cleanly.
//
// Observability: -trace writes a Chrome trace_event JSON of the search and
// evaluation spans, -manifest a machine-readable run manifest, and
// -debug-addr serves live metrics/expvar/pprof over HTTP. A one-line metrics
// summary (cache hits/misses, simulations, retries) is printed on exit.
//
// In grid mode the trace is fleet-merged: workers ship their evaluation
// spans back over the grid protocol and each worker renders on its own pid
// lane; the manifest gains a grid topology section (who did what, at what
// cost); and the grid listener additionally serves /grid/v1/fleet (per-worker
// health and federated metrics) plus /debug/prometheus (text exposition of
// the coordinator registry and the per-worker-labeled fleet series).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"autopilot/internal/airlearning"
	"autopilot/internal/api"
	"autopilot/internal/catalog"
	"autopilot/internal/dse"
	"autopilot/internal/fault"
	"autopilot/internal/grid"
	"autopilot/internal/obs"
)

// multiFlag collects repeated flag occurrences.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	scenName := flag.String("scenario", "dense", "deployment scenario: low|medium|dense")
	pool := flag.Int("pool", 2048, "candidate pool size")
	iters := flag.Int("iters", 72, "Bayesian-optimization iterations")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "evaluation worker pool size (0 = all CPUs)")
	dbPath := flag.String("db", "", "Air Learning database file (default: built-in surrogate)")
	retries := flag.Int("retries", 1, "attempt budget per design evaluation (1 = no retries)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-attempt evaluation timeout (0 = unbounded)")
	failureBudget := flag.Float64("failure-budget", 0, "fraction of evaluations allowed to fail after retries (0 = fail-fast)")
	algorithms := flag.String("algorithms", "", "comma-separated training algorithms to co-search (e.g. dqn,reinforce)")
	var axes multiFlag
	flag.Var(&axes, "axis", "override a search-space axis as name=v1,v2,... (repeatable; axes: layers, filters, pe_rows, pe_cols, sram_kb)")
	vehicleAxes := flag.String("vehicle-axes", "", "comma-separated catalog components to co-search (airframe, battery, sensor)")
	printCatalog := flag.Bool("catalog", false, "print the component catalog and exit")
	gridWorkers := flag.Int("grid-workers", 0, "shard the sweep across N in-process grid workers (0 = single-process)")
	gridListen := flag.String("grid-listen", "", "serve the grid coordinator on this address for external gridworker processes (implies grid mode)")
	gridBatch := flag.Int("grid-batch", 0, "grid: jobs granted per lease call (0 = default)")
	gridLeaseTTL := flag.Duration("grid-lease-ttl", 0, "grid: lease deadline before a lost job is reclaimed (0 = default 10s)")
	gridHeartbeat := flag.Duration("grid-heartbeat", 0, "grid: worker heartbeat period (0 = lease TTL / 4)")
	gridMaxLeases := flag.Int("grid-max-leases", 0, "grid: max concurrent leases per job, the work-stealing width (0 = default 2)")
	gridMaxAttempts := flag.Int("grid-max-attempts", 0, "grid: lease attempts per job before it fails (0 = default 6)")
	var obsFlags obs.Flags
	obsFlags.Register()
	flag.Parse()

	if *printCatalog {
		if err := catalog.WriteTable(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dse:", err)
			os.Exit(1)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	req := api.CoDesignRequest{
		Scenario: *scenName,
		Seed:     *seed,
		Constraints: api.Constraints{
			CandidatePool: *pool,
			BOIterations:  *iters,
			Workers:       *workers,
			Retries:       *retries,
			JobTimeoutMS:  jobTimeout.Milliseconds(),
			FailureBudget: *failureBudget,
		},
	}
	space, err := api.ParseSpaceFlags(*algorithms, axes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dse:", err)
		os.Exit(2)
	}
	req.Space = space
	vehicle, err := api.ParseVehicleFlags(*vehicleAxes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dse:", err)
		os.Exit(2)
	}
	req.Vehicle = vehicle
	gridMode := *gridWorkers > 0 || *gridListen != ""
	if gridMode {
		req.Grid = &api.GridSpec{
			Workers:     *gridWorkers,
			BatchSize:   *gridBatch,
			LeaseTTLMS:  gridLeaseTTL.Milliseconds(),
			HeartbeatMS: gridHeartbeat.Milliseconds(),
			MaxLeases:   *gridMaxLeases,
			MaxAttempts: *gridMaxAttempts,
		}
		if *gridWorkers == 0 {
			// External-worker mode: the normalized default (3) is only a
			// sizing hint, the coordinator serves however many connect.
			req.Grid.Workers = 1
		}
	}
	if err := req.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "dse:", err)
		os.Exit(2)
	}
	if *gridListen != "" && *dbPath != "" {
		fmt.Fprintln(os.Stderr, "dse: -db is unsupported with -grid-listen: external grid workers rebuild the built-in surrogate database")
		os.Exit(2)
	}

	var db *airlearning.Database
	if *dbPath != "" {
		loaded, err := airlearning.Load(*dbPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dse:", err)
			os.Exit(1)
		}
		db = loaded
	} else {
		db = airlearning.NewDatabase()
		airlearning.PopulateSurrogate(db)
	}

	run, err := obsFlags.Start("dse")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dse:", err)
		os.Exit(1)
	}
	finish := func(runErr error) {
		if s := run.Summary(); s != "" {
			fmt.Fprintln(os.Stderr, s)
		}
		if cerr := run.Close(runErr); cerr != nil && runErr == nil {
			os.Exit(1)
		}
	}
	for k, v := range req.ManifestSeeds() {
		run.SetSeed(k, v)
	}
	for k, v := range req.ManifestConfig() {
		run.SetConfig(k, v)
	}

	p2, err := req.Phase2Request(db)
	if err != nil {
		finish(err)
		fmt.Fprintln(os.Stderr, "dse:", err)
		os.Exit(1)
	}
	p2.Obs = run.Obs
	// Preserve sub-millisecond precision the duration flag allows but the
	// millisecond-granular wire contract rounds away.
	if *jobTimeout > 0 {
		p2.JobTimeout = *jobTimeout
		p2.Retry.Timeout = *jobTimeout
	}
	fmt.Printf("design space: %d joint points; exploring %d candidates with %d+%d evaluations\n",
		p2.Space.Size(), p2.Config.CandidatePool, p2.Config.BO.InitSamples, p2.Config.BO.Iterations)

	// Grid mode: the optimizer loop stays in this process; every uncached
	// evaluation is delegated to the coordinator's lease pool and scored by
	// grid workers — in-process goroutines here, external gridworker
	// processes via -grid-listen. Grid status goes to stderr so stdout stays
	// byte-comparable with a single-process run.
	gridShutdown := func() {}
	if gridMode {
		cfg := grid.ConfigFromSpec(req.Normalized().Grid)
		cfg.Obs = run.Obs
		coord := grid.NewCoordinator(req, cfg)
		addr := *gridListen
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		ln, lerr := net.Listen("tcp", addr)
		if lerr != nil {
			finish(lerr)
			fmt.Fprintln(os.Stderr, "dse:", lerr)
			os.Exit(1)
		}
		// The grid listener also serves live telemetry: the standard debug
		// tree, plus a Prometheus exposition that merges this process's
		// registry with the fleet's per-worker-labeled series.
		mux := http.NewServeMux()
		mux.Handle("/", coord.Handler())
		mux.Handle("/debug/", obs.DebugMux(run.Obs.Metrics))
		mux.Handle("/debug/prometheus", obs.PrometheusHandler(func() []obs.Snapshot {
			return []obs.Snapshot{run.Obs.Metrics.Snapshot(), coord.Fleet().Labeled()}
		}))
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln) //nolint:errcheck // closed on shutdown
		url := "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "dse: grid coordinator listening on %s\n", url)
		p2.Delegate = coord.Evaluate
		var wg sync.WaitGroup
		for i := 0; i < *gridWorkers; i++ {
			id := fmt.Sprintf("w%d", i)
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				wcfg := grid.WorkerConfig{
					URL: url, ID: id, DB: db,
					// Each in-process worker gets its own registry so the
					// fleet endpoint and manifest attribute metrics per
					// worker exactly as with external worker processes.
					Obs: &obs.Observer{Metrics: obs.NewRegistry()},
				}
				if werr := grid.Run(ctx, wcfg); werr != nil && ctx.Err() == nil {
					fmt.Fprintf(os.Stderr, "dse: grid worker %s: %v\n", id, werr)
				}
			}(id)
		}
		gridShutdown = func() {
			// Close the job table first so workers see Done on their next
			// lease or heartbeat and exit cleanly; only then tear the
			// listener down.
			coord.Close()
			wg.Wait()
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(sctx) //nolint:errcheck // best-effort drain
			run.SetGrid(coord.Manifest())
		}
	}

	res, err := dse.Execute(ctx, p2)
	gridShutdown()
	if err != nil {
		finish(err)
		fmt.Fprintln(os.Stderr, "dse:", err)
		os.Exit(1)
	}

	run.AddFailures(fault.Records(res.Failures)...)
	if len(res.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "dse: %d evaluation(s) failed within the %.0f%% budget:\n%s\n",
			len(res.Failures), 100**failureBudget, fault.Summarize(res.Failures))
	}
	if len(res.Skips) > 0 {
		fmt.Printf("\ninfeasible loadouts skipped (%d):\n", len(res.Skips))
		for _, s := range res.Skips {
			fmt.Printf("  %-44s %s: %s\n", s.Design, s.Reason, s.Detail)
		}
	}
	fmt.Printf("\nPareto frontier (%d of %d evaluated designs):\n", len(res.ParetoIdx), len(res.Evaluated))
	fmt.Printf("%-44s %8s %8s %8s %8s\n", "design", "success", "FPS", "SoC W", "FPS/W")
	for _, e := range res.Pareto() {
		fmt.Printf("%-44s %7.0f%% %8.1f %8.2f %8.1f\n",
			e.Design.String(), 100*e.SuccessRate, e.FPS, e.SoCPowerW, e.EfficiencyFPSW())
	}
	fmt.Println("\nconventional-DSE picks (top-success designs):")
	for _, pick := range []struct {
		name string
		idx  int
	}{{"HT", res.HT}, {"LP", res.LP}, {"HE", res.HE}} {
		if pick.idx < 0 {
			continue
		}
		e := res.Evaluated[pick.idx]
		fmt.Printf("  %-2s  %-44s %6.1f FPS %6.2f W %6.1f FPS/W\n",
			pick.name, e.Design.String(), e.FPS, e.SoCPowerW, e.EfficiencyFPSW())
	}
	finish(nil)
}
