package main

import (
	"testing"
	"time"

	"autopilot/internal/core"
)

// TestOptionsRequest pins the flag→contract translation: defaults produce
// the canonical default request, aliases are accepted, and unknown values
// are rejected through the shared api surface.
func TestOptionsRequest(t *testing.T) {
	defaults := options{UAV: "nano", Scenario: "dense", Pool: 2048, BOIters: 72, Seed: 1, Retries: 1}
	req := defaults.request()
	if err := req.Validate(); err != nil {
		t.Fatalf("default flags invalid: %v", err)
	}
	if req.Train != nil {
		t.Fatal("default flags must not train")
	}

	alias := defaults
	alias.UAV, alias.Scenario = "Pelican", "MED"
	n := alias.request().Normalized()
	if n.UAVClass != "mini" || n.Scenario != "medium" {
		t.Fatalf("aliases normalized to uav=%q scenario=%q", n.UAVClass, n.Scenario)
	}
	if alias.request().Validate() != nil {
		t.Fatal("alias flags rejected")
	}

	bad := defaults
	bad.UAV = "blimp"
	if bad.request().Validate() == nil {
		t.Fatal("unknown uav accepted")
	}
	bad = defaults
	bad.Scenario = "urban"
	if bad.request().Validate() == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestOptionsTrainSpec pins the trained-run wiring the CLI has always had:
// -train enables Phase1Train with the episode budget, checkpoint path, and
// the shared representative hyper slice.
func TestOptionsTrainSpec(t *testing.T) {
	o := options{UAV: "nano", Scenario: "dense", Pool: 2048, BOIters: 72, Seed: 1, Retries: 1,
		Train: true, Episodes: 40, TrainDB: "ckpt.json", JobTimeout: 2 * time.Second}
	spec, err := o.request().Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Phase1Mode != core.Phase1Train {
		t.Fatal("-train did not enable Phase1Train")
	}
	if spec.TrainCfg.Episodes != 40 || spec.TrainCheckpoint != "ckpt.json" {
		t.Fatalf("train wiring: cfg=%+v checkpoint=%q", spec.TrainCfg, spec.TrainCheckpoint)
	}
	if len(spec.TrainHypers) == 0 {
		t.Fatal("no train hypers")
	}
	if spec.JobTimeout != 2*time.Second {
		t.Fatalf("job timeout = %v", spec.JobTimeout)
	}
}
