package main

import (
	"testing"
	"time"

	"autopilot/internal/api"
	"autopilot/internal/core"
)

// TestOptionsRequest pins the flag→contract translation: defaults produce
// the canonical default request, aliases are accepted, and unknown values
// are rejected through the shared api surface.
func TestOptionsRequest(t *testing.T) {
	defaults := options{UAV: "nano", Scenario: "dense", Pool: 2048, BOIters: 72, Seed: 1, Retries: 1}
	req := mustRequest(t, defaults)
	if err := req.Validate(); err != nil {
		t.Fatalf("default flags invalid: %v", err)
	}
	if req.Train != nil {
		t.Fatal("default flags must not train")
	}
	if req.Space != nil {
		t.Fatal("default flags must not set a space block")
	}

	alias := defaults
	alias.UAV, alias.Scenario = "Pelican", "MED"
	n := mustRequest(t, alias).Normalized()
	if n.UAVClass != "mini" || n.Scenario != "medium" {
		t.Fatalf("aliases normalized to uav=%q scenario=%q", n.UAVClass, n.Scenario)
	}
	if mustRequest(t, alias).Validate() != nil {
		t.Fatal("alias flags rejected")
	}

	bad := defaults
	bad.UAV = "blimp"
	if mustRequest(t, bad).Validate() == nil {
		t.Fatal("unknown uav accepted")
	}
	bad = defaults
	bad.Scenario = "urban"
	if mustRequest(t, bad).Validate() == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func mustRequest(t *testing.T, o options) api.CoDesignRequest {
	t.Helper()
	req, err := o.request()
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// TestOptionsSpaceFlags pins the co-search flag wiring: -algorithms and
// -axis assemble the request's space block, and malformed axes are rejected
// before the request is built.
func TestOptionsSpaceFlags(t *testing.T) {
	o := options{UAV: "nano", Scenario: "dense", Pool: 2048, BOIters: 72, Seed: 1, Retries: 1,
		Algorithms: "dqn,reinforce", Axes: multiFlag{"layers=2,4,7"}}
	req := mustRequest(t, o)
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	sp, err := req.SearchSpace()
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Algorithms) != 2 {
		t.Fatalf("algorithms = %v", sp.Algorithms)
	}
	if len(sp.Layers) != 3 || sp.Layers[0] != 2 {
		t.Fatalf("layers = %v", sp.Layers)
	}

	bad := o
	bad.Axes = multiFlag{"layers"}
	if _, err := bad.request(); err == nil {
		t.Fatal("malformed -axis accepted")
	}
}

// TestOptionsTrainSpec pins the trained-run wiring the CLI has always had:
// -train enables Phase1Train with the episode budget, checkpoint path, and
// the shared representative hyper slice.
func TestOptionsTrainSpec(t *testing.T) {
	o := options{UAV: "nano", Scenario: "dense", Pool: 2048, BOIters: 72, Seed: 1, Retries: 1,
		Train: true, Episodes: 40, TrainDB: "ckpt.json", JobTimeout: 2 * time.Second}
	spec, err := mustRequest(t, o).Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Phase1Mode != core.Phase1Train {
		t.Fatal("-train did not enable Phase1Train")
	}
	if spec.TrainCfg.Episodes != 40 || spec.TrainCheckpoint != "ckpt.json" {
		t.Fatalf("train wiring: cfg=%+v checkpoint=%q", spec.TrainCfg, spec.TrainCheckpoint)
	}
	if len(spec.TrainHypers) == 0 {
		t.Fatal("no train hypers")
	}
	if spec.JobTimeout != 2*time.Second {
		t.Fatalf("job timeout = %v", spec.JobTimeout)
	}
}
