package main

import (
	"testing"

	"autopilot/internal/airlearning"
	"autopilot/internal/uav"
)

func TestParseUAV(t *testing.T) {
	cases := map[string]uav.Class{
		"mini": uav.Mini, "Pelican": uav.Mini,
		"micro": uav.Micro, "spark": uav.Micro,
		"NANO": uav.Nano,
	}
	for in, want := range cases {
		p, err := parseUAV(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		if p.Class != want {
			t.Errorf("%q -> %v, want %v", in, p.Class, want)
		}
	}
	if _, err := parseUAV("blimp"); err == nil {
		t.Error("expected error for unknown UAV")
	}
}

func TestParseScenario(t *testing.T) {
	cases := map[string]airlearning.Scenario{
		"low": airlearning.LowObstacle, "medium": airlearning.MediumObstacle,
		"med": airlearning.MediumObstacle, "DENSE": airlearning.DenseObstacle,
	}
	for in, want := range cases {
		s, err := parseScenario(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		if s != want {
			t.Errorf("%q -> %v, want %v", in, s, want)
		}
	}
	if _, err := parseScenario("urban"); err == nil {
		t.Error("expected error for unknown scenario")
	}
}
