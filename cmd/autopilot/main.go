// Command autopilot runs the full three-phase AutoPilot pipeline for one
// (UAV, scenario) specification and prints the selected DSSoC design, the
// conventional-DSE alternatives, and the mission-level comparison against
// the general-purpose baselines.
//
// Usage:
//
//	autopilot -uav nano -scenario dense [-sensor-fps 60] [-pool 2048]
//	          [-bo-iters 72] [-seed 1] [-workers 0] [-train] [-train-db f] [-json]
//	          [-algorithms dqn,reinforce] [-axis layers=2,4,7] [-axis pe_rows=8,16,32]
//	          [-vehicle-axes battery,sensor] [-catalog]
//
// -algorithms widens Phase 2 into an algorithm–SoC co-search: the training
// algorithm becomes a categorical search axis and the Pareto front reports
// which algorithm each design trains with. -axis overrides any numeric axis
// of the Table II grid (layers, filters, pe_rows, pe_cols, sram_kb).
//
// -vehicle-axes opens catalog components (airframe, battery, sensor) as
// additional categorical axes, turning the run into a SWaP-constrained
// full-vehicle co-design: every design flies on its own loadout, infeasible
// loadouts (overweight, under-thrust, over the battery's discharge limit)
// are reported as typed skips rather than scored, and the selection carries
// loadout columns. -catalog prints the component catalog and exits.
//
// The flags assemble an api.CoDesignRequest — the same typed contract the
// cmd/autopilotd job server accepts over HTTP — so a CLI run and a server
// job with equivalent parameters are bitwise identical.
//
// The Phase-1 training sweep and Phase-2 evaluations fan out over -workers
// goroutines (0 = all CPUs); results are bitwise deterministic for a given
// seed regardless of the worker count. Ctrl-C cancels a long run cleanly;
// with -train and -train-db the Phase-1 sweep checkpoints each completed
// policy, so rerunning the same command resumes instead of retraining.
//
// Observability: -trace writes a Chrome trace_event JSON of the phase and
// job spans (load it in chrome://tracing or Perfetto), -manifest writes a
// machine-readable run manifest (config, seeds, phase durations, metric
// snapshot, failure summary), and -debug-addr serves live metrics, expvar,
// and pprof over HTTP while the run is in flight. A one-line metrics summary
// is printed on exit. None of this perturbs results: instrumented runs are
// bitwise identical to uninstrumented ones.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"autopilot/internal/api"
	"autopilot/internal/catalog"
	"autopilot/internal/core"
	"autopilot/internal/dse"
	"autopilot/internal/fault"
	"autopilot/internal/obs"
	"autopilot/internal/uav"
)

// options mirrors the command's flags; request translates them onto the
// shared API contract.
type options struct {
	UAV, Scenario string
	SensorFPS     float64
	Pool, BOIters int
	Seed          int64
	Workers       int
	Train         bool
	Episodes      int
	TrainDB       string
	Retries       int
	JobTimeout    time.Duration
	FailureBudget float64
	Algorithms    string
	Axes          multiFlag
	VehicleAxes   string
}

// multiFlag collects repeated flag occurrences.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func (o options) request() (api.CoDesignRequest, error) {
	req := api.CoDesignRequest{
		UAVClass: o.UAV,
		Scenario: o.Scenario,
		Seed:     o.Seed,
		Constraints: api.Constraints{
			CandidatePool: o.Pool,
			BOIterations:  o.BOIters,
			SensorFPS:     o.SensorFPS,
			Workers:       o.Workers,
			Retries:       o.Retries,
			JobTimeoutMS:  o.JobTimeout.Milliseconds(),
			FailureBudget: o.FailureBudget,
		},
	}
	if o.Train {
		req.Train = &api.TrainSpec{Episodes: o.Episodes, Checkpoint: o.TrainDB}
	}
	space, err := api.ParseSpaceFlags(o.Algorithms, o.Axes)
	if err != nil {
		return api.CoDesignRequest{}, err
	}
	req.Space = space
	vehicle, err := api.ParseVehicleFlags(o.VehicleAxes)
	if err != nil {
		return api.CoDesignRequest{}, err
	}
	req.Vehicle = vehicle
	return req, nil
}

func describe(name string, s core.Selection) {
	if !s.Liftable {
		fmt.Printf("%-3s  cannot be lifted by this UAV (payload %.0f g)\n", name, s.PayloadG)
		return
	}
	fmt.Printf("%-3s  %s\n", name, s.Design.Design)
	if s.Tuned != "" {
		fmt.Printf("     fine-tuned: %s\n", s.Tuned)
	}
	if s.Loadout != (dse.VehicleRef{}) {
		fmt.Printf("     loadout: %s (%.0f g all-up)\n", s.Loadout, s.Design.Vehicle.TotalWeightG)
	}
	fmt.Printf("     success %.0f%%  %.1f FPS  %.2f W SoC  %.1f g payload\n",
		100*s.Design.SuccessRate, s.Design.FPS, s.Design.SoCPowerW, s.PayloadG)
	fmt.Printf("     action %.1f Hz (knee %.1f Hz, %s, %s)  v_safe %.2f m/s\n",
		s.ActionHz, s.KneeHz, s.Bound, s.Provisioning, s.VSafeMS)
	fmt.Printf("     %.2f missions per charge (%.1f s, %.0f J each)\n",
		s.Missions(), s.Profile.MissionTime, s.Profile.MissionJ)
}

func main() {
	var o options
	flag.StringVar(&o.UAV, "uav", "nano", "UAV class: mini|micro|nano")
	flag.StringVar(&o.Scenario, "scenario", "dense", "deployment scenario: low|medium|dense")
	flag.Float64Var(&o.SensorFPS, "sensor-fps", 0, "sensor frame rate (0 = platform maximum)")
	flag.IntVar(&o.Pool, "pool", 2048, "Phase-2 candidate pool size")
	flag.IntVar(&o.BOIters, "bo-iters", 72, "Phase-2 Bayesian-optimization iterations")
	flag.Int64Var(&o.Seed, "seed", 1, "random seed")
	flag.IntVar(&o.Workers, "workers", 0, "evaluation/training worker pool size (0 = all CPUs)")
	flag.BoolVar(&o.Train, "train", false, "Phase 1: actually train policies with RL instead of the surrogate (slow)")
	flag.IntVar(&o.Episodes, "episodes", 150, "RL episodes per policy with -train")
	flag.StringVar(&o.TrainDB, "train-db", "", "with -train: checkpoint file making the Phase-1 sweep resumable")
	flag.IntVar(&o.Retries, "retries", 1, "attempt budget per training job / evaluation (1 = no retries)")
	flag.DurationVar(&o.JobTimeout, "job-timeout", 0, "per-attempt timeout (0 = unbounded)")
	flag.Float64Var(&o.FailureBudget, "failure-budget", 0, "fraction of jobs allowed to fail after retries (0 = fail-fast)")
	flag.StringVar(&o.Algorithms, "algorithms", "", "comma-separated training algorithms to co-search (e.g. dqn,reinforce)")
	flag.Var(&o.Axes, "axis", "override a search-space axis as name=v1,v2,... (repeatable; axes: layers, filters, pe_rows, pe_cols, sram_kb)")
	flag.StringVar(&o.VehicleAxes, "vehicle-axes", "", "comma-separated catalog components to co-search (airframe, battery, sensor)")
	printCatalog := flag.Bool("catalog", false, "print the component catalog and exit")
	asJSON := flag.Bool("json", false, "emit the selected design as JSON")
	var obsFlags obs.Flags
	obsFlags.Register()
	flag.Parse()

	if *printCatalog {
		if err := catalog.WriteTable(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "autopilot:", err)
			os.Exit(1)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	req, err := o.request()
	if err != nil {
		fmt.Fprintln(os.Stderr, "autopilot:", err)
		os.Exit(2)
	}
	spec, err := req.Spec()
	if err != nil {
		fmt.Fprintln(os.Stderr, "autopilot:", err)
		os.Exit(2)
	}

	run, err := obsFlags.Start("autopilot")
	if err != nil {
		fmt.Fprintln(os.Stderr, "autopilot:", err)
		os.Exit(1)
	}
	// finish prints the metrics one-liner and writes the trace/manifest
	// outputs; every exit path below goes through it exactly once.
	finish := func(runErr error) {
		if s := run.Summary(); s != "" {
			fmt.Fprintln(os.Stderr, s)
		}
		if cerr := run.Close(runErr); cerr != nil && runErr == nil {
			os.Exit(1)
		}
	}
	for k, v := range req.ManifestSeeds() {
		run.SetSeed(k, v)
	}
	for k, v := range req.ManifestConfig() {
		run.SetConfig(k, v)
	}
	spec.Obs = run.Obs

	rep, err := core.Run(ctx, spec)
	if err != nil {
		finish(err)
		fmt.Fprintln(os.Stderr, "autopilot:", err)
		os.Exit(1)
	}
	if rep.Phase1 != nil {
		run.AddFailures(fault.Records(rep.Phase1.Failures)...)
		if rep.Phase1.CheckpointQuarantined != "" {
			run.AddEvent("checkpoint-quarantined", rep.Phase1.CheckpointQuarantined)
		}
	}
	run.AddFailures(fault.Records(rep.Phase2.Failures)...)

	if *asJSON {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			finish(err)
			fmt.Fprintln(os.Stderr, "autopilot:", err)
			os.Exit(1)
		}
		finish(nil)
		return
	}

	fmt.Printf("AutoPilot DSSoC co-design: %s, %s scenario\n", spec.Platform.Name, spec.Scenario)
	fmt.Printf("Phase 1: %d validated policies in the Air Learning database\n", rep.Database.Len())
	fmt.Printf("Phase 2: %d designs evaluated, %d on the Pareto front\n",
		len(rep.Phase2.Evaluated), len(rep.Phase2.ParetoIdx))
	if n := len(rep.Phase2.Failures); n > 0 {
		fmt.Printf("Phase 2: %d evaluation(s) failed within the %.0f%% budget:\n%s\n",
			n, 100*spec.FailureBudget, fault.Summarize(rep.Phase2.Failures))
	}
	if n := len(rep.Phase2.Skips); n > 0 {
		fmt.Printf("Phase 2: %d infeasible loadout(s) skipped\n", n)
	}
	fmt.Println()
	describe("AP", rep.Selected)
	fmt.Println()
	describe("HT", rep.HT)
	describe("LP", rep.LP)
	describe("HE", rep.HE)
	fmt.Println()
	fmt.Println("Baselines on this UAV:")
	baselines := uav.AllBaselines()
	sels, err := core.EvaluateBaselines(ctx, spec, rep.Database, baselines)
	if err != nil {
		finish(err)
		fmt.Fprintln(os.Stderr, "autopilot:", err)
		os.Exit(1)
	}
	for i, b := range baselines {
		sel := sels[i]
		gain := core.MissionGain(rep.Selected, sel)
		if sel.Missions() > 0 {
			fmt.Printf("  %-12s %6.2f missions  (AutoPilot gain %.2fx)\n", b.Name, sel.Missions(), gain)
		} else {
			fmt.Printf("  %-12s grounded (%.0f g exceeds lift capacity)\n", b.Name, b.WeightG)
		}
	}
	finish(nil)
}
