// Command f1plot renders the F-1 cyber-physical roofline for a UAV and
// deployment scenario as an ASCII chart, with the knee point and optional
// design operating points marked — the tool behind the paper's Fig. 4 and
// the F-1 panels of Figs. 8–11.
//
// Usage:
//
//	f1plot -uav nano -scenario dense -payload 24 [-design-fps 46 -design-fps 205]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"autopilot/internal/airlearning"
	"autopilot/internal/f1"
	"autopilot/internal/plot"
	"autopilot/internal/uav"
)

type fpsList []float64

func (l *fpsList) String() string { return fmt.Sprint(*l) }

func (l *fpsList) Set(s string) error {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}

func main() {
	uavName := flag.String("uav", "nano", "UAV class: mini|micro|nano")
	scenName := flag.String("scenario", "dense", "deployment scenario: low|medium|dense")
	payload := flag.Float64("payload", 24, "compute payload in grams")
	maxHz := flag.Float64("max-hz", 100, "x-axis extent in Hz")
	var designs fpsList
	flag.Var(&designs, "design-fps", "mark a design operating point (repeatable)")
	flag.Parse()

	var plat uav.Platform
	switch strings.ToLower(*uavName) {
	case "mini", "pelican":
		plat = uav.AscTecPelican()
	case "micro", "spark":
		plat = uav.DJISpark()
	case "nano":
		plat = uav.ZhangNano()
	default:
		fmt.Fprintf(os.Stderr, "f1plot: unknown uav %q\n", *uavName)
		os.Exit(2)
	}
	var scen airlearning.Scenario
	switch strings.ToLower(*scenName) {
	case "low":
		scen = airlearning.LowObstacle
	case "medium", "med":
		scen = airlearning.MediumObstacle
	case "dense":
		scen = airlearning.DenseObstacle
	default:
		fmt.Fprintf(os.Stderr, "f1plot: unknown scenario %q\n", *scenName)
		os.Exit(2)
	}

	model := f1.ForScenario(scen)
	accel := plat.MaxAccelMS2(*payload)
	if accel <= 0 {
		fmt.Fprintf(os.Stderr, "f1plot: %s cannot lift %.0f g\n", plat.Name, *payload)
		os.Exit(1)
	}
	knee := model.KneePoint(accel)

	chart := plot.New(
		fmt.Sprintf("F-1 roofline: %s, %s, %.0f g payload (a=%.1f m/s²)", plat.Name, scen, *payload, accel),
		"action throughput (Hz)", "safe velocity (m/s)")
	pts := model.Curve(accel, *maxHz, 64)
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.ThroughputHz, p.VSafeMS
	}
	chart.AddLine("v_safe", xs, ys)
	chart.AddPoint(fmt.Sprintf("knee %.1f Hz", knee), knee, model.SafeVelocity(knee, accel), 'K')
	for _, fps := range designs {
		v := model.SafeVelocity(fps, accel)
		label := fmt.Sprintf("design %.0f FPS (%s)", fps, model.Classify(fps, accel))
		chart.AddPoint(label, fps, v, 'D')
	}
	fmt.Print(chart)
	fmt.Printf("\nceiling %.2f m/s, knee %.1f Hz\n", model.CeilingVelocity(accel), knee)
}
