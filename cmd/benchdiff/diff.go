package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Benchmark is one benchmark line of a BENCH_<pr>.json record.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Record is the committed benchmark record of one PR.
type Record struct {
	PR         int         `json:"pr"`
	Package    string      `json:"package"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// LoadRecord reads and validates one record file.
func LoadRecord(path string) (Record, error) {
	var r Record
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return r, fmt.Errorf("%s: no benchmarks", path)
	}
	for _, b := range r.Benchmarks {
		if b.Name == "" || b.NsPerOp <= 0 {
			return r, fmt.Errorf("%s: malformed benchmark entry %+v", path, b)
		}
	}
	return r, nil
}

// Delta is one shared benchmark's comparison.
type Delta struct {
	Name      string
	OldNs     float64
	NewNs     float64
	Change    float64 // fractional ns/op change; +0.10 = 10% slower
	Regressed bool
}

// Report is the full comparison of two records.
type Report struct {
	OldPR, NewPR int
	Threshold    float64
	Shared       []Delta
	OnlyOld      []string // benchmarks retired in the new record
	OnlyNew      []string // benchmarks introduced in the new record
}

// Compare diffs every benchmark shared by name; threshold is the allowed
// fractional ns/op regression (0.25 = fail beyond +25%).
func Compare(oldRec, newRec Record, threshold float64) Report {
	rep := Report{OldPR: oldRec.PR, NewPR: newRec.PR, Threshold: threshold}
	oldByName := map[string]Benchmark{}
	for _, b := range oldRec.Benchmarks {
		oldByName[b.Name] = b
	}
	seen := map[string]bool{}
	for _, nb := range newRec.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldByName[nb.Name]
		if !ok {
			rep.OnlyNew = append(rep.OnlyNew, nb.Name)
			continue
		}
		change := nb.NsPerOp/ob.NsPerOp - 1
		rep.Shared = append(rep.Shared, Delta{
			Name: nb.Name, OldNs: ob.NsPerOp, NewNs: nb.NsPerOp,
			Change: change, Regressed: change > threshold,
		})
	}
	for _, ob := range oldRec.Benchmarks {
		if !seen[ob.Name] {
			rep.OnlyOld = append(rep.OnlyOld, ob.Name)
		}
	}
	sort.Slice(rep.Shared, func(i, j int) bool { return rep.Shared[i].Name < rep.Shared[j].Name })
	sort.Strings(rep.OnlyOld)
	sort.Strings(rep.OnlyNew)
	return rep
}

// Failed reports whether any shared benchmark regressed past the threshold.
func (r Report) Failed() bool {
	for _, d := range r.Shared {
		if d.Regressed {
			return true
		}
	}
	return false
}

// String renders the human-readable gate report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchdiff: PR %d vs PR %d (threshold +%.0f%% ns/op)\n",
		r.OldPR, r.NewPR, 100*r.Threshold)
	if len(r.Shared) == 0 {
		b.WriteString("  no shared benchmarks; nothing to gate\n")
	}
	for _, d := range r.Shared {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSION"
		}
		fmt.Fprintf(&b, "  %-40s %10.0f -> %10.0f ns/op  %+6.1f%%  %s\n",
			d.Name, d.OldNs, d.NewNs, 100*d.Change, verdict)
	}
	for _, name := range r.OnlyOld {
		fmt.Fprintf(&b, "  %-40s retired\n", name)
	}
	for _, name := range r.OnlyNew {
		fmt.Fprintf(&b, "  %-40s new (no history)\n", name)
	}
	return b.String()
}
