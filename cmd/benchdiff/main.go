// Command benchdiff is the bench regression gate: it compares two committed
// BENCH_<pr>.json records and fails (exit 1) when any benchmark present in
// both regressed by more than the threshold in ns/op.
//
// Usage:
//
//	benchdiff -old BENCH_9.json -new BENCH_10.json [-threshold 0.25]
//
// Only benchmarks shared by name are compared — PRs add and retire
// benchmarks freely, and the gate only guards the ones with history. Two
// files with no shared benchmarks pass with a note. Records are expected in
// the repo's BENCH_<pr>.json shape (see any committed file); benchmarks
// measured on different machines drift, so the default threshold is a
// deliberately loose 25%.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	oldPath := flag.String("old", "", "previous BENCH_<pr>.json (required)")
	newPath := flag.String("new", "", "current BENCH_<pr>.json (required)")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional ns/op regression before failing")
	flag.Parse()

	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	oldRec, err := LoadRecord(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRec, err := LoadRecord(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	report := Compare(oldRec, newRec, *threshold)
	fmt.Print(report.String())
	if report.Failed() {
		os.Exit(1)
	}
}
