package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rec(pr int, benches ...Benchmark) Record {
	return Record{PR: pr, Package: "test", Benchmarks: benches}
}

func bench(name string, ns float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1000, NsPerOp: ns}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	r := Compare(
		rec(9, bench("BenchmarkA", 1000), bench("BenchmarkB", 2000)),
		rec(10, bench("BenchmarkA", 1200), bench("BenchmarkB", 1500)),
		0.25)
	if r.Failed() {
		t.Fatalf("20%% slower within a 25%% threshold must pass:\n%s", r)
	}
	if len(r.Shared) != 2 {
		t.Fatalf("shared = %d, want 2", len(r.Shared))
	}
}

func TestCompareRegressionFails(t *testing.T) {
	r := Compare(
		rec(9, bench("BenchmarkA", 1000)),
		rec(10, bench("BenchmarkA", 1300)),
		0.25)
	if !r.Failed() {
		t.Fatalf("30%% slower past a 25%% threshold must fail:\n%s", r)
	}
	if !strings.Contains(r.String(), "REGRESSION") {
		t.Fatalf("report must flag the regression:\n%s", r)
	}
}

func TestCompareOnlySharedBenchmarksGate(t *testing.T) {
	// A 10x regression in a benchmark that no longer exists, and a brand-new
	// benchmark with no history, must both be ignored by the gate.
	r := Compare(
		rec(9, bench("BenchmarkRetired", 100), bench("BenchmarkA", 1000)),
		rec(10, bench("BenchmarkNew", 1000000), bench("BenchmarkA", 1000)),
		0.25)
	if r.Failed() {
		t.Fatalf("unshared benchmarks must not gate:\n%s", r)
	}
	if len(r.OnlyOld) != 1 || r.OnlyOld[0] != "BenchmarkRetired" {
		t.Fatalf("OnlyOld = %v", r.OnlyOld)
	}
	if len(r.OnlyNew) != 1 || r.OnlyNew[0] != "BenchmarkNew" {
		t.Fatalf("OnlyNew = %v", r.OnlyNew)
	}
}

func TestCompareNoSharedPassesWithNote(t *testing.T) {
	r := Compare(rec(9, bench("BenchmarkA", 1)), rec(10, bench("BenchmarkB", 1)), 0.25)
	if r.Failed() {
		t.Fatalf("disjoint records must pass:\n%s", r)
	}
	if !strings.Contains(r.String(), "no shared benchmarks") {
		t.Fatalf("report must note the empty intersection:\n%s", r)
	}
}

func TestCompareImprovementNeverFails(t *testing.T) {
	r := Compare(rec(9, bench("BenchmarkA", 1000)), rec(10, bench("BenchmarkA", 10)), 0.25)
	if r.Failed() {
		t.Fatalf("a 100x speedup must pass:\n%s", r)
	}
}

func TestLoadRecordRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	data := `{"pr": 9, "package": "p", "benchmarks": [
		{"name": "BenchmarkA", "iterations": 10, "ns_per_op": 123, "bytes_per_op": 4, "allocs_per_op": 1}
	]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.PR != 9 || len(r.Benchmarks) != 1 || r.Benchmarks[0].NsPerOp != 123 {
		t.Fatalf("LoadRecord = %+v", r)
	}
}

func TestLoadRecordRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	for name, data := range map[string]string{
		"empty.json":  `{"pr": 1, "benchmarks": []}`,
		"noname.json": `{"pr": 1, "benchmarks": [{"ns_per_op": 5}]}`,
		"nons.json":   `{"pr": 1, "benchmarks": [{"name": "BenchmarkA"}]}`,
		"junk.json":   `]`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadRecord(path); err == nil {
			t.Errorf("%s: LoadRecord accepted malformed record", name)
		}
	}
}

func TestCompareCommittedRecords(t *testing.T) {
	// The real committed trajectory must load and pass its own gate — this is
	// exactly what CI runs.
	old, err := LoadRecord("../../BENCH_8.json")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := LoadRecord("../../BENCH_9.json")
	if err != nil {
		t.Fatal(err)
	}
	r := Compare(old, cur, 0.25)
	t.Logf("\n%s", r)
	if r.Failed() {
		t.Fatalf("committed records fail their own gate:\n%s", r)
	}
}
