module autopilot

go 1.22
