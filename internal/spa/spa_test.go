package spa

import (
	"math"
	"testing"

	"autopilot/internal/airlearning"
)

func TestStageStrings(t *testing.T) {
	for _, s := range []Stage{Sense, Plan, Act} {
		if s.String() == "" {
			t.Errorf("empty name for %d", int(s))
		}
	}
}

func TestOccupancyGridUnknownPrior(t *testing.T) {
	g := NewOccupancyGrid(5, 5)
	p := airlearning.Point{X: 2, Y: 2}
	if g.Occupied(p) {
		t.Fatal("unknown cells must be optimistically traversable")
	}
	if g.KnownFraction() != 0 {
		t.Fatal("fresh grid must be fully unknown")
	}
}

func TestOccupancyGridObserve(t *testing.T) {
	g := NewOccupancyGrid(5, 5)
	p := airlearning.Point{X: 1, Y: 3}
	g.Observe(p, true)
	if !g.Occupied(p) {
		t.Fatal("observed obstacle must block")
	}
	g.Observe(p, false)
	if g.Occupied(p) {
		t.Fatal("re-observed free cell must clear")
	}
	if g.KnownFraction() != 1.0/25 {
		t.Fatalf("known fraction = %g", g.KnownFraction())
	}
}

func TestOccupancyGridBounds(t *testing.T) {
	g := NewOccupancyGrid(3, 3)
	out := airlearning.Point{X: -1, Y: 0}
	if !g.Occupied(out) {
		t.Fatal("out-of-bounds must be blocked")
	}
	g.Observe(out, false) // must not panic
}

func TestAStarStraightLine(t *testing.T) {
	g := NewOccupancyGrid(10, 10)
	path, expanded, ok := AStar(g, airlearning.Point{X: 0, Y: 0}, airlearning.Point{X: 9, Y: 9})
	if !ok {
		t.Fatal("path not found on empty grid")
	}
	if len(path) != 10 { // pure diagonal
		t.Fatalf("path length = %d, want 10", len(path))
	}
	if expanded <= 0 {
		t.Fatal("no work accounted")
	}
}

func TestAStarAvoidsWall(t *testing.T) {
	g := NewOccupancyGrid(10, 10)
	// vertical wall at x=5 with a gap at y=9
	for y := 0; y < 9; y++ {
		g.Observe(airlearning.Point{X: 5, Y: y}, true)
	}
	path, _, ok := AStar(g, airlearning.Point{X: 0, Y: 0}, airlearning.Point{X: 9, Y: 0})
	if !ok {
		t.Fatal("path through the gap not found")
	}
	for _, p := range path {
		if g.Occupied(p) {
			t.Fatalf("path crosses obstacle at %v", p)
		}
	}
	// must detour down to the gap
	maxY := 0
	for _, p := range path {
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	if maxY < 8 {
		t.Fatalf("path did not reach the gap (maxY=%d)", maxY)
	}
}

func TestAStarNoPath(t *testing.T) {
	g := NewOccupancyGrid(7, 7)
	for y := 0; y < 7; y++ {
		g.Observe(airlearning.Point{X: 3, Y: y}, true)
	}
	if _, _, ok := AStar(g, airlearning.Point{X: 0, Y: 0}, airlearning.Point{X: 6, Y: 0}); ok {
		t.Fatal("found a path through a full wall")
	}
}

func TestAStarBlockedEndpoints(t *testing.T) {
	g := NewOccupancyGrid(5, 5)
	p := airlearning.Point{X: 2, Y: 2}
	g.Observe(p, true)
	if _, _, ok := AStar(g, p, airlearning.Point{X: 4, Y: 4}); ok {
		t.Fatal("path from a blocked start")
	}
	if _, _, ok := AStar(g, airlearning.Point{X: 0, Y: 0}, p); ok {
		t.Fatal("path to a blocked goal")
	}
}

func TestAStarOptimalLength(t *testing.T) {
	// cost on an empty grid must equal the octile distance
	g := NewOccupancyGrid(12, 12)
	path, _, ok := AStar(g, airlearning.Point{X: 0, Y: 0}, airlearning.Point{X: 7, Y: 3})
	if !ok {
		t.Fatal("no path")
	}
	cost := 0.0
	for i := 1; i < len(path); i++ {
		dx, dy := path[i].X-path[i-1].X, path[i].Y-path[i-1].Y
		if dx != 0 && dy != 0 {
			cost += math.Sqrt2
		} else {
			cost += 1
		}
	}
	want := 4 + 3*math.Sqrt2 // 4 straight + 3 diagonal
	if math.Abs(cost-want) > 1e-9 {
		t.Fatalf("path cost = %g, want optimal %g", cost, want)
	}
}

func TestPipelineNavigatesAllScenarios(t *testing.T) {
	for _, scen := range airlearning.Scenarios {
		env := airlearning.NewEnv(scen, 5)
		wins := 0
		const episodes = 15
		for ep := 0; ep < episodes; ep++ {
			pl := NewPipeline(env)
			res := airlearning.RunEpisode(env, pl)
			if res.Outcome == airlearning.Success {
				wins++
			}
		}
		rate := float64(wins) / episodes
		if rate < 0.8 {
			t.Errorf("%v: SPA success rate %.2f, want >= 0.8", scen, rate)
		}
	}
}

func TestPipelineAccountsWork(t *testing.T) {
	env := airlearning.NewEnv(airlearning.MediumObstacle, 9)
	pl := NewPipeline(env)
	res := airlearning.RunEpisode(env, pl)
	if pl.SenseOps <= 0 || pl.PlanOps <= 0 || pl.ActOps <= 0 {
		t.Fatalf("work counters: sense=%d plan=%d act=%d", pl.SenseOps, pl.PlanOps, pl.ActOps)
	}
	if pl.TotalOps() != pl.SenseOps+pl.PlanOps+pl.ActOps {
		t.Fatal("TotalOps must sum the stages")
	}
	if pl.Replans < 1 {
		t.Fatal("pipeline never planned")
	}
	if pl.OpsPerDecision(res.Steps) <= 0 {
		t.Fatal("per-decision ops must be positive")
	}
	if pl.Grid().KnownFraction() <= 0 {
		t.Fatal("mapper learned nothing")
	}
}

func TestPipelinePlansDominateCompute(t *testing.T) {
	// the SPA premise the paper cites: mapping+planning dwarf the control
	// stage computationally
	env := airlearning.NewEnv(airlearning.DenseObstacle, 11)
	pl := NewPipeline(env)
	airlearning.RunEpisode(env, pl)
	if pl.ActOps*10 > pl.SenseOps+pl.PlanOps {
		t.Fatalf("act ops %d not negligible vs sense+plan %d", pl.ActOps, pl.SenseOps+pl.PlanOps)
	}
}

func TestThroughputHz(t *testing.T) {
	if got := ThroughputHz(1e6, 50e6); math.Abs(got-50) > 1e-9 {
		t.Fatalf("throughput = %g, want 50", got)
	}
	if ThroughputHz(0, 1e6) != 0 || ThroughputHz(1e6, 0) != 0 {
		t.Fatal("degenerate inputs must give 0")
	}
}

func TestOpsPerDecisionDegenerate(t *testing.T) {
	pl := NewPipeline(airlearning.NewEnv(airlearning.LowObstacle, 1))
	if pl.OpsPerDecision(0) != 0 {
		t.Fatal("zero decisions must give 0")
	}
}
