// Package spa implements the Sense-Plan-Act autonomy paradigm the paper
// contrasts with E2E learning (§II) and describes as the first extension of
// the AutoPilot methodology (§VII, "UAV with SPA Autonomy Algorithms"): an
// occupancy-grid mapper fed by a simulated range sensor, an A* motion
// planner over the map, and a waypoint-following controller. The pipeline
// runs as a drop-in airlearning.Policy, and every stage carries an
// operation-count model so a compute budget translates into an SPA action
// throughput for the F-1 back end — mirroring how MAVBench-style stacks
// would replace Air Learning in Phase 1 and SLAM/planning accelerator
// templates would replace the systolic array in Phase 2.
package spa

import (
	"container/heap"
	"fmt"
	"math"

	"autopilot/internal/airlearning"
)

// Stage identifies one SPA pipeline stage.
type Stage int

// SPA pipeline stages.
const (
	Sense Stage = iota
	Plan
	Act
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case Sense:
		return "sense"
	case Plan:
		return "plan"
	case Act:
		return "act"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// OccupancyGrid is the mapper's belief over arena cells.
type OccupancyGrid struct {
	W, H    int
	cells   []float64 // occupancy probability estimate
	visited []bool
}

// NewOccupancyGrid returns an unknown map with the pessimistic prior that
// unvisited space may be occupied with probability 0.5.
func NewOccupancyGrid(w, h int) *OccupancyGrid {
	g := &OccupancyGrid{W: w, H: h, cells: make([]float64, w*h), visited: make([]bool, w*h)}
	for i := range g.cells {
		g.cells[i] = 0.5
	}
	return g
}

func (g *OccupancyGrid) idx(p airlearning.Point) int { return p.Y*g.W + p.X }

// InBounds reports whether the cell lies inside the grid.
func (g *OccupancyGrid) InBounds(p airlearning.Point) bool {
	return p.X >= 0 && p.X < g.W && p.Y >= 0 && p.Y < g.H
}

// Observe fuses one cell observation (occupied or free) into the map.
func (g *OccupancyGrid) Observe(p airlearning.Point, occupied bool) {
	if !g.InBounds(p) {
		return
	}
	i := g.idx(p)
	g.visited[i] = true
	if occupied {
		g.cells[i] = 1
	} else {
		g.cells[i] = 0
	}
}

// Occupied reports whether the planner should treat the cell as blocked:
// known-occupied cells are blocked; unknown cells are traversable (optimistic
// planning, standard for exploration).
func (g *OccupancyGrid) Occupied(p airlearning.Point) bool {
	if !g.InBounds(p) {
		return true
	}
	i := g.idx(p)
	return g.visited[i] && g.cells[i] > 0.5
}

// KnownFraction returns the explored fraction of the arena.
func (g *OccupancyGrid) KnownFraction() float64 {
	n := 0
	for _, v := range g.visited {
		if v {
			n++
		}
	}
	return float64(n) / float64(len(g.visited))
}

// dirs8 are the 8-connected moves matching the airlearning action space.
var dirs8 = [8]airlearning.Point{
	{X: 0, Y: -1}, {X: 1, Y: -1}, {X: 1, Y: 0}, {X: 1, Y: 1},
	{X: 0, Y: 1}, {X: -1, Y: 1}, {X: -1, Y: 0}, {X: -1, Y: -1},
}

// AStar plans a shortest path on the occupancy grid from start to goal using
// octile-distance heuristics. It returns the path including both endpoints,
// the number of nodes expanded (the planner's work metric), and false if no
// path exists.
func AStar(grid *OccupancyGrid, start, goal airlearning.Point) (path []airlearning.Point, expanded int, ok bool) {
	if grid.Occupied(start) || grid.Occupied(goal) {
		return nil, 0, false
	}
	type node struct {
		p airlearning.Point
		f float64
	}
	h := func(p airlearning.Point) float64 {
		dx := math.Abs(float64(p.X - goal.X))
		dy := math.Abs(float64(p.Y - goal.Y))
		return math.Max(dx, dy) + (math.Sqrt2-1)*math.Min(dx, dy)
	}
	dist := map[airlearning.Point]float64{start: 0}
	prev := map[airlearning.Point]airlearning.Point{}
	pq := &nodeHeap{}
	heap.Push(pq, heapNode{p: start, f: h(start)})
	closed := map[airlearning.Point]bool{}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(heapNode)
		if closed[cur.p] {
			continue
		}
		closed[cur.p] = true
		expanded++
		if cur.p == goal {
			p := goal
			for {
				path = append([]airlearning.Point{p}, path...)
				if p == start {
					return path, expanded, true
				}
				p = prev[p]
			}
		}
		for _, d := range dirs8 {
			next := airlearning.Point{X: cur.p.X + d.X, Y: cur.p.Y + d.Y}
			if grid.Occupied(next) || closed[next] {
				continue
			}
			step := 1.0
			if d.X != 0 && d.Y != 0 {
				step = math.Sqrt2
			}
			nd := dist[cur.p] + step
			if old, seen := dist[next]; !seen || nd < old {
				dist[next] = nd
				prev[next] = cur.p
				heap.Push(pq, heapNode{p: next, f: nd + h(next)})
			}
		}
	}
	return nil, expanded, false
}

type heapNode struct {
	p airlearning.Point
	f float64
}

type nodeHeap []heapNode

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].f < h[j].f }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(heapNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Pipeline is the SPA policy with per-stage work accounting.
type Pipeline struct {
	env  *airlearning.Env
	grid *OccupancyGrid

	// work counters, accumulated over the episode
	SenseOps, PlanOps, ActOps int64
	Replans                   int

	path []airlearning.Point
}

// NewPipeline builds an SPA policy for an environment. The mapper starts
// blank and is filled from the egocentric observations as the UAV flies.
func NewPipeline(env *airlearning.Env) *Pipeline {
	cfg := env.Config()
	return &Pipeline{env: env, grid: NewOccupancyGrid(cfg.ArenaW, cfg.ArenaH)}
}

// Grid exposes the mapper state.
func (pl *Pipeline) Grid() *OccupancyGrid { return pl.grid }

// Act implements airlearning.Policy: sense (fuse the observation window into
// the map), plan (A*, replanned when the current path is invalidated), act
// (emit the move along the path).
func (pl *Pipeline) Act(obs airlearning.Observation) int {
	pos := pl.env.Pos()
	// --- Sense: fuse the egocentric window into the occupancy grid.
	half := airlearning.ObsWindow / 2
	for dy := -half; dy <= half; dy++ {
		for dx := -half; dx <= half; dx++ {
			p := airlearning.Point{X: pos.X + dx, Y: pos.Y + dy}
			if !pl.grid.InBounds(p) {
				continue
			}
			pl.grid.Observe(p, obs.Image.At(0, dy+half, dx+half) > 0.5)
			pl.SenseOps += 4 // fuse: read, compare, write, mark
		}
	}
	// --- Plan: replan when off-path, path empty, or path now blocked.
	if !pl.pathValid(pos) {
		path, expanded, ok := AStar(pl.grid, pos, pl.env.Goal())
		pl.PlanOps += int64(expanded) * 24 // per-expansion cost: heap + 8 neighbors
		pl.Replans++
		if !ok {
			pl.path = nil
		} else {
			pl.path = path
		}
	}
	// --- Act: follow the path.
	pl.ActOps += 8
	if len(pl.path) < 2 {
		return 0 // trapped; any move ends the episode or times out
	}
	step := airlearning.Point{X: pl.path[1].X - pos.X, Y: pl.path[1].Y - pos.Y}
	pl.path = pl.path[1:]
	for i, d := range dirs8 {
		if d == step {
			return i
		}
	}
	return 0
}

// pathValid reports whether the current path still starts at pos and is
// collision-free on the updated map.
func (pl *Pipeline) pathValid(pos airlearning.Point) bool {
	if len(pl.path) < 2 || pl.path[0] != pos {
		return false
	}
	for _, p := range pl.path[1:] {
		if pl.grid.Occupied(p) {
			return false
		}
	}
	return true
}

// TotalOps returns the pipeline's accumulated work.
func (pl *Pipeline) TotalOps() int64 { return pl.SenseOps + pl.PlanOps + pl.ActOps }

// OpsPerDecision returns the mean per-decision work over `decisions` steps.
func (pl *Pipeline) OpsPerDecision(decisions int) float64 {
	if decisions <= 0 {
		return 0
	}
	return float64(pl.TotalOps()) / float64(decisions)
}

// ThroughputHz converts a per-decision operation count into an SPA action
// throughput on a processor with the given sustained ops/s — the quantity
// Phase 3's F-1 model consumes when the autonomy stack is SPA instead of E2E.
func ThroughputHz(opsPerDecision, sustainedOpsPerSec float64) float64 {
	if opsPerDecision <= 0 || sustainedOpsPerSec <= 0 {
		return 0
	}
	return sustainedOpsPerSec / opsPerDecision
}

// Stats summarizes the measured SPA pipeline behaviour over a batch of
// episodes: the validated task success (the SPA analogue of the Phase-1
// database entry) and the per-decision compute work that lowers into an
// hw.SPAWorkload for the cost-model layer.
type Stats struct {
	Scenario          airlearning.Scenario
	Episodes          int
	SuccessRate       float64
	StepsPerEpisode   float64
	OpsPerDecision    float64
	ReplansPerEpisode float64
}

// Measure runs the SPA pipeline for a number of episodes on a scenario and
// returns its aggregate work statistics. Results are deterministic for a
// given seed.
func Measure(scen airlearning.Scenario, episodes int, seed int64) Stats {
	env := airlearning.NewEnv(scen, seed)
	st := Stats{Scenario: scen, Episodes: episodes}
	wins, steps := 0, 0
	var ops float64
	var replans int
	for ep := 0; ep < episodes; ep++ {
		pl := NewPipeline(env)
		res := airlearning.RunEpisode(env, pl)
		if res.Outcome == airlearning.Success {
			wins++
		}
		steps += res.Steps
		ops += float64(pl.TotalOps())
		replans += pl.Replans
	}
	if episodes > 0 {
		st.SuccessRate = float64(wins) / float64(episodes)
		st.StepsPerEpisode = float64(steps) / float64(episodes)
		st.ReplansPerEpisode = float64(replans) / float64(episodes)
	}
	if steps > 0 {
		st.OpsPerDecision = ops / float64(steps)
	}
	return st
}
