package moea

import (
	"fmt"
	"math"

	"autopilot/internal/pareto"
	"autopilot/internal/tensor"
)

// RLConfig controls the reinforcement-learning optimizer.
type RLConfig struct {
	BatchSize int     // genomes sampled per policy update
	Updates   int     // policy-gradient updates
	LR        float64 // logit learning rate
	Entropy   float64 // entropy bonus keeping exploration alive
	MaxEvals  int
	Seed      int64
}

// DefaultRLConfig returns settings sized like the Phase-2 BO budget.
func DefaultRLConfig() RLConfig {
	return RLConfig{BatchSize: 12, Updates: 8, LR: 0.35, Entropy: 0.01, MaxEvals: 96, Seed: 1}
}

// Reinforce runs the RL-based design-space search the paper lists as a BO
// alternative (§III-B, citing Sutton & Barto): a factored categorical policy
// over the choice dimensions is sampled in batches and updated with
// REINFORCE, where a genome's reward is the hypervolume improvement its
// objectives contribute over the front discovered so far.
func Reinforce(p Problem, cfg RLConfig) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.BatchSize < 2 || cfg.Updates < 1 {
		return nil, fmt.Errorf("moea: bad RL budget %+v", cfg)
	}
	rng := tensor.NewRNG(cfg.Seed)
	t := &tracker{p: p, seen: map[string][]float64{}, res: &Result{}, limit: cfg.MaxEvals}

	// factored policy: independent logits per dimension
	logits := make([][]float64, len(p.Dims))
	for i, d := range p.Dims {
		logits[i] = make([]float64, d)
	}
	softmax := func(l []float64) []float64 {
		mx := math.Inf(-1)
		for _, v := range l {
			mx = math.Max(mx, v)
		}
		out := make([]float64, len(l))
		sum := 0.0
		for i, v := range l {
			out[i] = math.Exp(v - mx)
			sum += out[i]
		}
		for i := range out {
			out[i] /= sum
		}
		return out
	}
	sample := func(probs []float64) int {
		u := rng.Float64()
		acc := 0.0
		for i, v := range probs {
			acc += v
			if u < acc {
				return i
			}
		}
		return len(probs) - 1
	}

	for upd := 0; upd < cfg.Updates && !t.exhausted(); upd++ {
		probs := make([][]float64, len(logits))
		for i := range logits {
			probs[i] = softmax(logits[i])
		}
		type rollout struct {
			genome []int
			reward float64
		}
		var batch []rollout
		for b := 0; b < cfg.BatchSize && !t.exhausted(); b++ {
			g := make([]int, len(p.Dims))
			for i := range g {
				g[i] = sample(probs[i])
			}
			before := 0.0
			if n := len(t.res.HypervolumeTrace); n > 0 {
				before = t.res.HypervolumeTrace[n-1]
			}
			t.eval(g)
			after := t.res.HypervolumeTrace[len(t.res.HypervolumeTrace)-1]
			batch = append(batch, rollout{genome: g, reward: after - before})
		}
		if len(batch) == 0 {
			break
		}
		// baseline: batch mean reward
		mean := 0.0
		for _, r := range batch {
			mean += r.reward
		}
		mean /= float64(len(batch))
		for _, r := range batch {
			adv := r.reward - mean
			for i, choice := range r.genome {
				for j := range logits[i] {
					grad := -probs[i][j]
					if j == choice {
						grad += 1
					}
					logits[i][j] += cfg.LR * (adv*grad + cfg.Entropy*(-probs[i][j]*math.Log(probs[i][j]+1e-12)))
				}
			}
		}
	}
	t.finish()
	return t.res, nil
}

// FrontObjectives extracts the objective vectors of a result's front.
func (r *Result) FrontObjectives() [][]float64 {
	out := make([][]float64, len(r.Front))
	for i, ind := range r.Front {
		out[i] = ind.Objectives
	}
	return out
}

// Hypervolume returns the dominated hypervolume of the final front.
func (r *Result) Hypervolume(ref []float64) float64 {
	return pareto.Hypervolume(r.FrontObjectives(), ref)
}
