// Package moea provides the alternative multi-objective optimizers the paper
// names as drop-in replacements for Bayesian optimization in Phase 2
// (§III-B / Table VI: "the bayesian optimization method can be replaced with
// reinforcement learning, evolutionary algorithms, simulated annealing"):
// an NSGA-II-style genetic algorithm and a scalarized simulated annealer.
//
// Both operate on a discrete choice-vector genome — one index per design
// dimension — so they plug directly into the dse.Space encoding.
package moea

import (
	"fmt"
	"math"
	"sort"

	"autopilot/internal/pareto"
	"autopilot/internal/tensor"
)

// Problem is a discrete multi-objective minimization problem over choice
// vectors: genome[i] ∈ [0, Dims[i]).
type Problem struct {
	Dims          []int // cardinality of each design dimension
	Evaluate      func(genome []int) []float64
	NumObjectives int
	Ref           []float64 // hypervolume reference point
}

// Validate checks the problem definition.
func (p Problem) Validate() error {
	if len(p.Dims) == 0 {
		return fmt.Errorf("moea: empty genome")
	}
	for i, d := range p.Dims {
		if d <= 0 {
			return fmt.Errorf("moea: dimension %d has cardinality %d", i, d)
		}
	}
	if p.Evaluate == nil {
		return fmt.Errorf("moea: nil evaluator")
	}
	if p.NumObjectives <= 0 || len(p.Ref) != p.NumObjectives {
		return fmt.Errorf("moea: bad objective spec (%d objectives, ref dim %d)", p.NumObjectives, len(p.Ref))
	}
	return nil
}

// Individual is one evaluated genome.
type Individual struct {
	Genome     []int
	Objectives []float64
}

// Result is the optimizer output, mirroring bayesopt.Result.
type Result struct {
	Evaluations      []Individual
	Front            []Individual
	HypervolumeTrace []float64
	EvalCount        int // total evaluator calls (memoized duplicates excluded)
}

// tracker memoizes evaluations and maintains the hypervolume trace.
type tracker struct {
	p     Problem
	seen  map[string][]float64
	objs  [][]float64
	res   *Result
	limit int
}

func key(g []int) string {
	b := make([]byte, 0, len(g)*3)
	for _, v := range g {
		b = append(b, byte(v), byte(v>>8), '|')
	}
	return string(b)
}

func (t *tracker) eval(g []int) []float64 {
	k := key(g)
	if y, ok := t.seen[k]; ok {
		return y
	}
	y := t.p.Evaluate(g)
	t.seen[k] = y
	genome := append([]int(nil), g...)
	t.res.Evaluations = append(t.res.Evaluations, Individual{Genome: genome, Objectives: y})
	t.objs = append(t.objs, y)
	t.res.HypervolumeTrace = append(t.res.HypervolumeTrace, pareto.Hypervolume(t.objs, t.p.Ref))
	t.res.EvalCount++
	return y
}

func (t *tracker) exhausted() bool { return t.res.EvalCount >= t.limit }

func (t *tracker) finish() {
	for _, i := range pareto.NonDominated(t.objs) {
		t.res.Front = append(t.res.Front, t.res.Evaluations[i])
	}
}

// GAConfig controls the genetic algorithm.
type GAConfig struct {
	Population  int
	Generations int
	CrossoverP  float64
	MutationP   float64 // per-gene mutation probability
	TournamentK int
	MaxEvals    int // hard budget on evaluator calls
	Seed        int64
}

// DefaultGAConfig returns settings sized like the Phase-2 BO budget.
func DefaultGAConfig() GAConfig {
	return GAConfig{
		Population: 24, Generations: 12,
		CrossoverP: 0.9, MutationP: 0.15, TournamentK: 2,
		MaxEvals: 96, Seed: 1,
	}
}

// NSGA2 runs an NSGA-II-style multi-objective genetic algorithm: fast
// non-dominated sorting plus crowding-distance environmental selection.
func NSGA2(p Problem, cfg GAConfig) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.Population < 4 || cfg.Generations < 1 {
		return nil, fmt.Errorf("moea: bad GA budget %+v", cfg)
	}
	rng := tensor.NewRNG(cfg.Seed)
	t := &tracker{p: p, seen: map[string][]float64{}, res: &Result{}, limit: cfg.MaxEvals}

	randomGenome := func() []int {
		g := make([]int, len(p.Dims))
		for i, d := range p.Dims {
			g[i] = rng.Intn(d)
		}
		return g
	}
	pop := make([]Individual, cfg.Population)
	for i := range pop {
		g := randomGenome()
		pop[i] = Individual{Genome: g, Objectives: t.eval(g)}
		if t.exhausted() {
			break
		}
	}

	for gen := 0; gen < cfg.Generations && !t.exhausted(); gen++ {
		ranks, crowd := rankAndCrowd(pop)
		tournament := func() Individual {
			best := rng.Intn(len(pop))
			for k := 1; k < cfg.TournamentK; k++ {
				c := rng.Intn(len(pop))
				if ranks[c] < ranks[best] || (ranks[c] == ranks[best] && crowd[c] > crowd[best]) {
					best = c
				}
			}
			return pop[best]
		}
		var offspring []Individual
		for len(offspring) < cfg.Population && !t.exhausted() {
			a, b := tournament(), tournament()
			child := append([]int(nil), a.Genome...)
			if rng.Float64() < cfg.CrossoverP {
				for i := range child {
					if rng.Float64() < 0.5 {
						child[i] = b.Genome[i]
					}
				}
			}
			for i := range child {
				if rng.Float64() < cfg.MutationP {
					child[i] = rng.Intn(p.Dims[i])
				}
			}
			offspring = append(offspring, Individual{Genome: child, Objectives: t.eval(child)})
		}
		pop = environmentalSelect(append(pop, offspring...), cfg.Population)
	}
	t.finish()
	return t.res, nil
}

// rankAndCrowd computes non-domination ranks and crowding distances.
func rankAndCrowd(pop []Individual) (ranks []int, crowd []float64) {
	n := len(pop)
	ranks = make([]int, n)
	crowd = make([]float64, n)
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	rank := 0
	for len(remaining) > 0 {
		var front, rest []int
		for _, i := range remaining {
			dominated := false
			for _, j := range remaining {
				if i != j && pareto.Dominates(pop[j].Objectives, pop[i].Objectives) {
					dominated = true
					break
				}
			}
			if dominated {
				rest = append(rest, i)
			} else {
				front = append(front, i)
			}
		}
		for _, i := range front {
			ranks[i] = rank
		}
		assignCrowding(pop, front, crowd)
		remaining = rest
		rank++
	}
	return ranks, crowd
}

// assignCrowding adds crowding distances for one front.
func assignCrowding(pop []Individual, front []int, crowd []float64) {
	if len(front) == 0 {
		return
	}
	m := len(pop[front[0]].Objectives)
	for obj := 0; obj < m; obj++ {
		sort.Slice(front, func(a, b int) bool {
			return pop[front[a]].Objectives[obj] < pop[front[b]].Objectives[obj]
		})
		lo := pop[front[0]].Objectives[obj]
		hi := pop[front[len(front)-1]].Objectives[obj]
		crowd[front[0]] = math.Inf(1)
		crowd[front[len(front)-1]] = math.Inf(1)
		if hi == lo {
			continue
		}
		for k := 1; k < len(front)-1; k++ {
			gap := pop[front[k+1]].Objectives[obj] - pop[front[k-1]].Objectives[obj]
			crowd[front[k]] += gap / (hi - lo)
		}
	}
}

// environmentalSelect keeps the best n individuals by (rank, crowding).
func environmentalSelect(pop []Individual, n int) []Individual {
	ranks, crowd := rankAndCrowd(pop)
	idx := make([]int, len(pop))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if ranks[idx[a]] != ranks[idx[b]] {
			return ranks[idx[a]] < ranks[idx[b]]
		}
		return crowd[idx[a]] > crowd[idx[b]]
	})
	out := make([]Individual, 0, n)
	for _, i := range idx[:n] {
		out = append(out, pop[i])
	}
	return out
}

// SAConfig controls the simulated annealer.
type SAConfig struct {
	Chains   int     // independent chains with random scalarization weights
	Steps    int     // annealing steps per chain
	TempHi   float64 // initial temperature
	TempLo   float64 // final temperature
	MaxEvals int
	Seed     int64
}

// DefaultSAConfig returns settings sized like the Phase-2 BO budget.
func DefaultSAConfig() SAConfig {
	return SAConfig{Chains: 4, Steps: 24, TempHi: 1.0, TempLo: 0.01, MaxEvals: 96, Seed: 1}
}

// Anneal runs weighted-sum simulated annealing: each chain draws a random
// weight vector over the (normalized) objectives and anneals a single
// genome; together the chains trace out the Pareto front.
func Anneal(p Problem, cfg SAConfig) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.Chains < 1 || cfg.Steps < 1 {
		return nil, fmt.Errorf("moea: bad SA budget %+v", cfg)
	}
	rng := tensor.NewRNG(cfg.Seed)
	t := &tracker{p: p, seen: map[string][]float64{}, res: &Result{}, limit: cfg.MaxEvals}

	scalar := func(w, y []float64) float64 {
		s := 0.0
		for i := range y {
			// normalize by the reference point so objectives are comparable
			s += w[i] * y[i] / math.Max(math.Abs(p.Ref[i]), 1e-9)
		}
		return s
	}
	for chain := 0; chain < cfg.Chains && !t.exhausted(); chain++ {
		w := make([]float64, p.NumObjectives)
		sum := 0.0
		for i := range w {
			w[i] = rng.Float64() + 1e-3
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
		cur := make([]int, len(p.Dims))
		for i, d := range p.Dims {
			cur[i] = rng.Intn(d)
		}
		curE := scalar(w, t.eval(cur))
		for step := 0; step < cfg.Steps && !t.exhausted(); step++ {
			denom := float64(cfg.Steps - 1)
			if denom < 1 {
				denom = 1
			}
			temp := cfg.TempHi * math.Pow(cfg.TempLo/cfg.TempHi, float64(step)/denom)
			next := append([]int(nil), cur...)
			i := rng.Intn(len(next))
			next[i] = rng.Intn(p.Dims[i])
			nextE := scalar(w, t.eval(next))
			if nextE < curE || rng.Float64() < math.Exp((curE-nextE)/math.Max(temp, 1e-12)) {
				cur, curE = next, nextE
			}
		}
	}
	t.finish()
	return t.res, nil
}
