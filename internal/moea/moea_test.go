package moea

import (
	"math"
	"testing"
)

// biObjective builds a small two-objective problem on a 2-D grid with a
// known front at gene1 = 0: f1 = a, f2 = b + (1-a)².
func biObjective(n int) Problem {
	return Problem{
		Dims: []int{n, n},
		Evaluate: func(g []int) []float64 {
			a := float64(g[0]) / float64(n-1)
			b := float64(g[1]) / float64(n-1)
			return []float64{a, b + (1-a)*(1-a)}
		},
		NumObjectives: 2,
		Ref:           []float64{2, 3},
	}
}

func TestProblemValidate(t *testing.T) {
	good := biObjective(5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Problem{
		{},
		{Dims: []int{0}, Evaluate: good.Evaluate, NumObjectives: 2, Ref: []float64{1, 1}},
		{Dims: []int{3}, NumObjectives: 2, Ref: []float64{1, 1}},
		{Dims: []int{3}, Evaluate: good.Evaluate, NumObjectives: 2, Ref: []float64{1}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestNSGA2FindsTrueFront(t *testing.T) {
	p := biObjective(16)
	cfg := DefaultGAConfig()
	cfg.MaxEvals = 120
	res, err := NSGA2(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	onTrue := 0
	for _, ind := range res.Front {
		if ind.Genome[1] == 0 {
			onTrue++
		}
	}
	if onTrue < 3 {
		t.Fatalf("only %d true-front points found", onTrue)
	}
}

func TestNSGA2BudgetRespected(t *testing.T) {
	p := biObjective(32)
	cfg := DefaultGAConfig()
	cfg.MaxEvals = 30
	res, err := NSGA2(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EvalCount > 30 {
		t.Fatalf("evals = %d, budget 30", res.EvalCount)
	}
}

func TestNSGA2Memoizes(t *testing.T) {
	calls := 0
	p := Problem{
		Dims: []int{2, 2}, // only 4 genomes
		Evaluate: func(g []int) []float64 {
			calls++
			return []float64{float64(g[0]), float64(g[1])}
		},
		NumObjectives: 2,
		Ref:           []float64{2, 2},
	}
	cfg := DefaultGAConfig()
	cfg.MaxEvals = 1000
	cfg.Generations = 5
	if _, err := NSGA2(p, cfg); err != nil {
		t.Fatal(err)
	}
	if calls > 4 {
		t.Fatalf("evaluator called %d times for a 4-genome space", calls)
	}
}

func TestNSGA2Errors(t *testing.T) {
	if _, err := NSGA2(Problem{}, DefaultGAConfig()); err == nil {
		t.Fatal("expected validation error")
	}
	cfg := DefaultGAConfig()
	cfg.Population = 1
	if _, err := NSGA2(biObjective(4), cfg); err == nil {
		t.Fatal("expected budget error")
	}
}

func TestNSGA2Deterministic(t *testing.T) {
	cfg := DefaultGAConfig()
	cfg.MaxEvals = 60
	a, err := NSGA2(biObjective(10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NSGA2(biObjective(10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.EvalCount != b.EvalCount {
		t.Fatal("same seed must evaluate the same points")
	}
	last := len(a.HypervolumeTrace) - 1
	if a.HypervolumeTrace[last] != b.HypervolumeTrace[last] {
		t.Fatal("hypervolume differs for identical seeds")
	}
}

func TestAnnealFindsGoodPoints(t *testing.T) {
	p := biObjective(16)
	cfg := DefaultSAConfig()
	cfg.MaxEvals = 120
	cfg.Steps = 30
	res, err := Anneal(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	// the scalarized chains should push at least one point onto (or near)
	// the true front
	best := math.Inf(1)
	for _, ind := range res.Evaluations {
		if v := ind.Objectives[0] + ind.Objectives[1]; v < best {
			best = v
		}
	}
	if best > 1.3 {
		t.Fatalf("best scalarized objective %.2f; annealer failed to descend", best)
	}
}

func TestAnnealBudgetRespected(t *testing.T) {
	cfg := DefaultSAConfig()
	cfg.MaxEvals = 25
	res, err := Anneal(biObjective(32), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EvalCount > 25 {
		t.Fatalf("evals = %d, budget 25", res.EvalCount)
	}
}

func TestAnnealErrors(t *testing.T) {
	if _, err := Anneal(Problem{}, DefaultSAConfig()); err == nil {
		t.Fatal("expected validation error")
	}
	cfg := DefaultSAConfig()
	cfg.Chains = 0
	if _, err := Anneal(biObjective(4), cfg); err == nil {
		t.Fatal("expected budget error")
	}
}

func TestHypervolumeTraceMonotoneBothOptimizers(t *testing.T) {
	check := func(name string, trace []float64) {
		for i := 1; i < len(trace); i++ {
			if trace[i] < trace[i-1]-1e-12 {
				t.Fatalf("%s: hypervolume trace decreased at %d", name, i)
			}
		}
	}
	ga, err := NSGA2(biObjective(12), DefaultGAConfig())
	if err != nil {
		t.Fatal(err)
	}
	check("ga", ga.HypervolumeTrace)
	sa, err := Anneal(biObjective(12), DefaultSAConfig())
	if err != nil {
		t.Fatal(err)
	}
	check("sa", sa.HypervolumeTrace)
}

func TestFrontIsNonDominated(t *testing.T) {
	res, err := NSGA2(biObjective(12), DefaultGAConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Front {
		for j, b := range res.Front {
			if i == j {
				continue
			}
			dom, strict := true, false
			for k := range a.Objectives {
				if a.Objectives[k] > b.Objectives[k] {
					dom = false
				}
				if a.Objectives[k] < b.Objectives[k] {
					strict = true
				}
			}
			if dom && strict {
				t.Fatal("front contains a dominated individual")
			}
		}
	}
}

func TestReinforceOptimizerDescends(t *testing.T) {
	p := biObjective(16)
	cfg := DefaultRLConfig()
	cfg.MaxEvals = 120
	res, err := Reinforce(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	best := math.Inf(1)
	for _, ind := range res.Evaluations {
		if v := ind.Objectives[0] + ind.Objectives[1]; v < best {
			best = v
		}
	}
	if best > 1.5 {
		t.Fatalf("best scalarized objective %.2f; RL optimizer failed to descend", best)
	}
}

func TestReinforceBudgetRespected(t *testing.T) {
	cfg := DefaultRLConfig()
	cfg.MaxEvals = 20
	res, err := Reinforce(biObjective(32), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EvalCount > 20 {
		t.Fatalf("evals = %d, budget 20", res.EvalCount)
	}
}

func TestReinforceErrors(t *testing.T) {
	if _, err := Reinforce(Problem{}, DefaultRLConfig()); err == nil {
		t.Fatal("expected validation error")
	}
	cfg := DefaultRLConfig()
	cfg.BatchSize = 1
	if _, err := Reinforce(biObjective(4), cfg); err == nil {
		t.Fatal("expected budget error")
	}
}

func TestResultHypervolumeHelpers(t *testing.T) {
	res, err := NSGA2(biObjective(8), DefaultGAConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FrontObjectives()) != len(res.Front) {
		t.Fatal("FrontObjectives length mismatch")
	}
	if res.Hypervolume([]float64{2, 3}) <= 0 {
		t.Fatal("zero hypervolume on a non-empty front")
	}
}
