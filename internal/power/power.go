// Package power estimates DSSoC power the way the paper does (§III-B): the
// accelerator's dynamic energy comes from per-access SRAM energy (CACTI-like
// capacity scaling), DRAM transfer energy (Micron-style pJ/byte plus
// interface power), and per-MAC PE energy; static power comes from PE-array
// and SRAM leakage. Fixed SoC components (ULP MCU, camera sensor, MIPI
// interface) are added per Table III. Constants are for a 28 nm node and are
// calibrated against the paper's anchor designs (see DESIGN.md §4);
// technology-node scaling is provided for the fine-tuning stage.
package power

import (
	"fmt"
	"math"

	"autopilot/internal/systolic"
)

// Fixed SoC component powers (paper Table III).
const (
	MCUPowerW    = 0.00038 // ARMv8-M Cortex-M33 @ 100 MHz, 28 nm
	SensorPowerW = 0.100   // OV9755 RGB camera
	MIPIPowerW   = 0.022   // MIPI CSI camera interface
)

// FixedComponentsW is the total always-on power of the non-accelerator SoC
// components.
const FixedComponentsW = MCUPowerW + SensorPowerW + MIPIPowerW

// Model holds the 28 nm energy/leakage coefficients.
type Model struct {
	MACEnergyPJ     float64 // energy per 8-bit MAC
	PEStaticW       float64 // leakage + clock power per PE
	SRAMLeakWPerKB  float64 // scratchpad leakage per KB
	SRAMEnergyBase  float64 // pJ/byte floor for tiny arrays
	SRAMEnergySlope float64 // pJ/byte growth with sqrt(capacity KB)
	DRAMEnergyPJB   float64 // DRAM transfer energy per byte
	DRAMStaticW     float64 // DRAM device + PHY background power
	DRAMPerGBps2W   float64 // interface power per (GB/s)² provisioned — wide PHYs cost superlinearly
}

// Default returns the calibrated 28 nm model.
func Default() Model {
	return Model{
		MACEnergyPJ:     0.4,
		PEStaticW:       12e-6,
		SRAMLeakWPerKB:  0.12e-3,
		SRAMEnergyBase:  0.3,
		SRAMEnergySlope: 0.035,
		DRAMEnergyPJB:   100,
		DRAMStaticW:     0.250,
		DRAMPerGBps2W:   0.028,
	}
}

// SRAMEnergyPerBytePJ returns the per-byte access energy for a scratchpad of
// the given capacity, following CACTI's sqrt-capacity trend (a 32 KB array
// costs ~0.5 pJ/B, a 4 MB array ~2.5 pJ/B).
func (m Model) SRAMEnergyPerBytePJ(capacityKB int) float64 {
	if capacityKB <= 0 {
		return m.SRAMEnergyBase
	}
	return m.SRAMEnergyBase + m.SRAMEnergySlope*math.Sqrt(float64(capacityKB))
}

// Breakdown itemizes accelerator power in watts.
type Breakdown struct {
	PEDynamic   float64
	PEStatic    float64
	SRAMDynamic float64
	SRAMStatic  float64
	DRAMDynamic float64
	DRAMStatic  float64
}

// Total returns the summed accelerator power.
func (b Breakdown) Total() float64 {
	return b.PEDynamic + b.PEStatic + b.SRAMDynamic + b.SRAMStatic + b.DRAMDynamic + b.DRAMStatic
}

// String renders the breakdown for reports.
func (b Breakdown) String() string {
	return fmt.Sprintf("PE %.3f+%.3fW SRAM %.3f+%.3fW DRAM %.3f+%.3fW = %.3fW",
		b.PEDynamic, b.PEStatic, b.SRAMDynamic, b.SRAMStatic, b.DRAMDynamic, b.DRAMStatic, b.Total())
}

// Accelerator converts a systolic simulation report into a power breakdown
// at the report's achieved frame rate.
func (m Model) Accelerator(rep *systolic.Report) Breakdown {
	cfg := rep.Config
	fps := rep.FPS
	var macs, sramBytesWeighted, dramBytes float64
	// weight SRAM accesses by the per-bank energy they hit
	eIf := m.SRAMEnergyPerBytePJ(cfg.IfmapKB)
	eF := m.SRAMEnergyPerBytePJ(cfg.FilterKB)
	eOf := m.SRAMEnergyPerBytePJ(cfg.OfmapKB)
	for _, l := range rep.Layers {
		macs += float64(l.MACs)
		// reads split between ifmap and filter banks; writes hit ofmap
		sramBytesWeighted += float64(l.SRAMReads)/2*(eIf+eF) + float64(l.SRAMWrites)*eOf
		dramBytes += float64(l.DRAMReads + l.DRAMWrites)
	}
	return Breakdown{
		PEDynamic:   macs * m.MACEnergyPJ * 1e-12 * fps,
		PEStatic:    float64(cfg.PEs()) * m.PEStaticW,
		SRAMDynamic: sramBytesWeighted * 1e-12 * fps,
		SRAMStatic:  float64(cfg.IfmapKB+cfg.FilterKB+cfg.OfmapKB) * m.SRAMLeakWPerKB,
		DRAMDynamic: dramBytes * m.DRAMEnergyPJB * 1e-12 * fps,
		DRAMStatic:  m.DRAMStaticW + m.DRAMPerGBps2W*cfg.BandwidthGBps*cfg.BandwidthGBps,
	}
}

// SoCTotal returns total SoC power for an accelerator breakdown: the
// breakdown total plus the fixed Table III components. Every consumer must
// go through this helper so the SoC-power arithmetic cannot drift between
// the evaluator, the fine-tuner, and the reports.
func SoCTotal(b Breakdown) float64 {
	return b.Total() + FixedComponentsW
}

// SoCWithSensor returns total SoC power with a catalog sensor in place of the
// Table III OV9755. The default sensor routes through SoCTotal so legacy
// runs stay bitwise identical; only a genuinely different sensor power
// changes the arithmetic.
func SoCWithSensor(b Breakdown, sensorW float64) float64 {
	if sensorW == SensorPowerW {
		return SoCTotal(b)
	}
	return b.Total() + MCUPowerW + sensorW + MIPIPowerW
}

// SoC returns total SoC power: accelerator plus the fixed Table III
// components.
func (m Model) SoC(rep *systolic.Report) float64 {
	return SoCTotal(m.Accelerator(rep))
}

// NodeScale holds dynamic-energy and leakage multipliers relative to 28 nm.
type NodeScale struct {
	Dynamic float64
	Static  float64
}

// nodeScales approximates published CMOS scaling trends; leakage improves
// more slowly than dynamic energy at FinFET nodes.
var nodeScales = map[int]NodeScale{
	40: {Dynamic: 1.7, Static: 1.5},
	28: {Dynamic: 1.0, Static: 1.0},
	16: {Dynamic: 0.55, Static: 0.65},
	7:  {Dynamic: 0.30, Static: 0.45},
}

// Nodes lists the supported technology nodes in nm, largest first.
func Nodes() []int { return []int{40, 28, 16, 7} }

// AtNode returns the model rescaled to a different technology node, for the
// architectural fine-tuning stage. It returns an error for unsupported nodes.
func (m Model) AtNode(nm int) (Model, error) {
	s, ok := nodeScales[nm]
	if !ok {
		return Model{}, fmt.Errorf("power: unsupported node %dnm (have %v)", nm, Nodes())
	}
	out := m
	out.MACEnergyPJ *= s.Dynamic
	out.SRAMEnergyBase *= s.Dynamic
	out.SRAMEnergySlope *= s.Dynamic
	out.PEStaticW *= s.Static
	out.SRAMLeakWPerKB *= s.Static
	// DRAM is off-chip: unaffected by the logic node.
	return out, nil
}
