package power

import (
	"math"
	"testing"

	"autopilot/internal/policy"
	"autopilot/internal/systolic"
)

func simulate(t *testing.T, c systolic.Config) *systolic.Report {
	t.Helper()
	n, err := policy.Build(policy.Hyper{Layers: 7, Filters: 48}, policy.DefaultTemplate())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := systolic.Simulate(n, c)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func midConfig() systolic.Config {
	return systolic.Config{
		Rows: 128, Cols: 128,
		IfmapKB: 256, FilterKB: 256, OfmapKB: 256,
		Dataflow: systolic.OutputStationary, FreqMHz: 500, BandwidthGBps: 2,
	}
}

func TestFixedComponentsMatchTableIII(t *testing.T) {
	if MCUPowerW != 0.00038 {
		t.Errorf("MCU = %g", MCUPowerW)
	}
	if SensorPowerW != 0.1 {
		t.Errorf("sensor = %g", SensorPowerW)
	}
	if MIPIPowerW != 0.022 {
		t.Errorf("MIPI = %g", MIPIPowerW)
	}
	want := 0.00038 + 0.1 + 0.022
	if math.Abs(FixedComponentsW-want) > 1e-12 {
		t.Errorf("fixed total = %g, want %g", FixedComponentsW, want)
	}
}

func TestSRAMEnergyGrowsWithCapacity(t *testing.T) {
	m := Default()
	prev := 0.0
	for _, kb := range []int{32, 64, 128, 256, 512, 1024, 2048, 4096} {
		e := m.SRAMEnergyPerBytePJ(kb)
		if e <= prev {
			t.Fatalf("%d KB: energy %g not increasing", kb, e)
		}
		prev = e
	}
	// CACTI-like anchor points
	if e := m.SRAMEnergyPerBytePJ(32); e < 0.3 || e > 0.8 {
		t.Errorf("32KB energy = %g pJ/B, want ~0.5", e)
	}
	if e := m.SRAMEnergyPerBytePJ(4096); e < 1.8 || e > 3.2 {
		t.Errorf("4MB energy = %g pJ/B, want ~2.5", e)
	}
}

func TestSRAMEnergyDegenerateCapacity(t *testing.T) {
	m := Default()
	if m.SRAMEnergyPerBytePJ(0) != m.SRAMEnergyBase {
		t.Fatal("zero capacity should return the base energy")
	}
}

func TestBreakdownTotalSumsComponents(t *testing.T) {
	b := Breakdown{PEDynamic: 1, PEStatic: 2, SRAMDynamic: 3, SRAMStatic: 4, DRAMDynamic: 5, DRAMStatic: 6}
	if b.Total() != 21 {
		t.Fatalf("Total = %g", b.Total())
	}
	if b.String() == "" {
		t.Fatal("empty String")
	}
}

func TestAcceleratorPowerPositiveComponents(t *testing.T) {
	m := Default()
	b := m.Accelerator(simulate(t, midConfig()))
	if b.PEDynamic <= 0 || b.PEStatic <= 0 || b.SRAMDynamic <= 0 ||
		b.SRAMStatic <= 0 || b.DRAMDynamic <= 0 || b.DRAMStatic <= 0 {
		t.Fatalf("non-positive component: %+v", b)
	}
}

func TestBiggerArrayMoreStaticPower(t *testing.T) {
	m := Default()
	small := midConfig()
	small.Rows, small.Cols = 16, 16
	big := midConfig()
	big.Rows, big.Cols = 512, 512
	bs := m.Accelerator(simulate(t, small))
	bb := m.Accelerator(simulate(t, big))
	if bb.PEStatic <= bs.PEStatic {
		t.Fatalf("PE static small %g >= big %g", bs.PEStatic, bb.PEStatic)
	}
}

func TestMoreSRAMMoreLeakage(t *testing.T) {
	m := Default()
	small := midConfig()
	big := midConfig()
	big.IfmapKB, big.FilterKB, big.OfmapKB = 4096, 4096, 4096
	bs := m.Accelerator(simulate(t, small))
	bb := m.Accelerator(simulate(t, big))
	if bb.SRAMStatic <= bs.SRAMStatic {
		t.Fatal("SRAM leakage must grow with capacity")
	}
}

func TestSoCAddsFixedComponents(t *testing.T) {
	m := Default()
	rep := simulate(t, midConfig())
	soc := m.SoC(rep)
	accel := m.Accelerator(rep).Total()
	if math.Abs(soc-accel-FixedComponentsW) > 1e-12 {
		t.Fatalf("SoC = %g, accel = %g", soc, accel)
	}
}

func TestPowerInPaperOperatingRange(t *testing.T) {
	// Table III: the E2E NPU spans ~0.7 W to ~8.24 W across the design space.
	m := Default()
	lo := systolic.Config{Rows: 8, Cols: 8, IfmapKB: 32, FilterKB: 32, OfmapKB: 32,
		Dataflow: systolic.OutputStationary, FreqMHz: 500, BandwidthGBps: 0.8}
	hi := systolic.Config{Rows: 512, Cols: 512, IfmapKB: 4096, FilterKB: 4096, OfmapKB: 4096,
		Dataflow: systolic.OutputStationary, FreqMHz: 500, BandwidthGBps: 12}
	pl := m.SoC(simulate(t, lo))
	ph := m.SoC(simulate(t, hi))
	if pl > 1.0 {
		t.Errorf("low-end SoC power %.2f W, want under ~1 W", pl)
	}
	if ph < 4 || ph > 14 {
		t.Errorf("high-end SoC power %.2f W, want in [4,14] W", ph)
	}
	if ph <= pl {
		t.Error("high-end design must burn more than low-end")
	}
}

func TestAtNodeScaling(t *testing.T) {
	m := Default()
	m16, err := m.AtNode(16)
	if err != nil {
		t.Fatal(err)
	}
	if m16.MACEnergyPJ >= m.MACEnergyPJ || m16.PEStaticW >= m.PEStaticW {
		t.Fatal("16nm must be more efficient than 28nm")
	}
	if m16.DRAMEnergyPJB != m.DRAMEnergyPJB {
		t.Fatal("DRAM energy must not scale with the logic node")
	}
	m40, err := m.AtNode(40)
	if err != nil {
		t.Fatal(err)
	}
	if m40.MACEnergyPJ <= m.MACEnergyPJ {
		t.Fatal("40nm must be less efficient than 28nm")
	}
	if _, err := m.AtNode(5); err == nil {
		t.Fatal("expected error for unsupported node")
	}
}

func TestAtNode28Identity(t *testing.T) {
	m := Default()
	m28, err := m.AtNode(28)
	if err != nil {
		t.Fatal(err)
	}
	if m28 != m {
		t.Fatalf("28nm scaling must be identity: %+v vs %+v", m28, m)
	}
}

func TestNodesList(t *testing.T) {
	ns := Nodes()
	if len(ns) != 4 || ns[0] != 40 || ns[3] != 7 {
		t.Fatalf("Nodes = %v", ns)
	}
	m := Default()
	for _, n := range ns {
		if _, err := m.AtNode(n); err != nil {
			t.Errorf("node %d: %v", n, err)
		}
	}
}
