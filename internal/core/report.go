package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"autopilot/internal/dse"
	"autopilot/internal/uav"
)

// SelectionSummary is the JSON-friendly digest of a full-system evaluation.
type SelectionSummary struct {
	Model        string  `json:"model"`
	Algorithm    string  `json:"algorithm,omitempty"`
	Hardware     string  `json:"hardware"`
	NodeNM       int     `json:"node_nm"`
	Tuned        string  `json:"tuned,omitempty"`
	SuccessRate  float64 `json:"success_rate"`
	FPS          float64 `json:"fps"`
	SoCPowerW    float64 `json:"soc_w"`
	PayloadG     float64 `json:"payload_g"`
	ActionHz     float64 `json:"action_hz"`
	KneeHz       float64 `json:"knee_hz"`
	Bound        string  `json:"bound"`
	Provisioning string  `json:"provisioning"`
	VSafeMS      float64 `json:"v_safe_ms"`
	Missions     float64 `json:"missions"`
	Liftable     bool    `json:"liftable"`

	// Loadout columns: present only for full-vehicle co-design runs, so
	// legacy summaries stay byte-identical.
	Airframe     string  `json:"airframe,omitempty"`
	Battery      string  `json:"battery,omitempty"`
	Sensor       string  `json:"sensor,omitempty"`
	TotalWeightG float64 `json:"total_weight_g,omitempty"`
}

// Summary converts a selection to its digest form.
func (s Selection) Summary() SelectionSummary {
	sum := SelectionSummary{
		Model:        s.Design.Design.Hyper.String(),
		Algorithm:    s.Design.Design.Algo,
		Hardware:     s.Design.Design.HW.String(),
		NodeNM:       s.NodeNM,
		Tuned:        s.Tuned,
		SuccessRate:  s.Design.SuccessRate,
		FPS:          s.Design.FPS,
		SoCPowerW:    s.Design.SoCPowerW,
		PayloadG:     s.PayloadG,
		ActionHz:     s.ActionHz,
		KneeHz:       s.KneeHz,
		Bound:        s.Bound.String(),
		Provisioning: s.Provisioning.String(),
		VSafeMS:      s.VSafeMS,
		Missions:     s.Missions(),
		Liftable:     s.Liftable,
	}
	if v := s.Loadout; v != (dse.VehicleRef{}) {
		sum.Airframe, sum.Battery, sum.Sensor = v.Airframe, v.Battery, v.Sensor
		sum.TotalWeightG = s.Design.Vehicle.TotalWeightG
	}
	return sum
}

// ReportSummary is the JSON-friendly digest of a pipeline run.
type ReportSummary struct {
	UAV       string            `json:"uav"`
	Scenario  string            `json:"scenario"`
	Policies  int               `json:"phase1_policies"`
	Evaluated int               `json:"phase2_evaluated"`
	Front     int               `json:"phase2_front"`
	Selected  SelectionSummary  `json:"selected"`
	HT        SelectionSummary  `json:"ht"`
	LP        SelectionSummary  `json:"lp"`
	HE        SelectionSummary  `json:"he"`
	Baselines []BaselineSummary `json:"baselines,omitempty"`
}

// BaselineSummary is one general-purpose board evaluated at mission level.
type BaselineSummary struct {
	Name     string  `json:"name"`
	Missions float64 `json:"missions"`
	Gain     float64 `json:"autopilot_gain"`
	Liftable bool    `json:"liftable"`
}

// Summary converts the report, including the Fig. 5 baseline comparison.
func (r *Report) Summary() ReportSummary {
	out := ReportSummary{
		UAV:       r.Spec.Platform.Name,
		Scenario:  r.Spec.Scenario.String(),
		Evaluated: len(r.Phase2.Evaluated),
		Front:     len(r.Phase2.ParetoIdx),
		Selected:  r.Selected.Summary(),
		HT:        r.HT.Summary(),
		LP:        r.LP.Summary(),
		HE:        r.HE.Summary(),
	}
	if r.Database != nil {
		out.Policies = r.Database.Len()
		baselines := uav.AllBaselines()
		// EvaluateBaselines never returns an error with an uncancelled ctx.
		sels, _ := EvaluateBaselines(context.Background(), r.Spec, r.Database, baselines)
		for i, b := range baselines {
			sel := sels[i]
			out.Baselines = append(out.Baselines, BaselineSummary{
				Name:     b.Name,
				Missions: sel.Missions(),
				Gain:     MissionGain(r.Selected, sel),
				Liftable: sel.Liftable,
			})
		}
	}
	return out
}

// WriteJSON emits the report summary as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Summary()); err != nil {
		return fmt.Errorf("core: encode report: %w", err)
	}
	return nil
}

// WriteText renders the report for terminals.
func (r *Report) WriteText(w io.Writer) error {
	s := r.Summary()
	_, err := fmt.Fprintf(w, `AutoPilot DSSoC co-design: %s, %s scenario
Phase 1: %d validated policies
Phase 2: %d designs evaluated, %d on the Pareto front
Selected (AP): %s on %s%s
  %.1f FPS @ %.2f W, %.1f g payload, action %.1f Hz (knee %.1f Hz, %s, %s)
  v_safe %.2f m/s -> %.2f missions per charge
Conventional picks: HT %.2f | LP %.2f | HE %.2f missions
`,
		s.UAV, s.Scenario, s.Policies, s.Evaluated, s.Front,
		s.Selected.Model, s.Selected.Hardware, tunedSuffix(s.Selected.Tuned),
		s.Selected.FPS, s.Selected.SoCPowerW, s.Selected.PayloadG,
		s.Selected.ActionHz, s.Selected.KneeHz, s.Selected.Bound, s.Selected.Provisioning,
		s.Selected.VSafeMS, s.Selected.Missions,
		s.HT.Missions, s.LP.Missions, s.HE.Missions)
	if err != nil {
		return fmt.Errorf("core: write report: %w", err)
	}
	for _, b := range s.Baselines {
		if b.Liftable {
			_, err = fmt.Fprintf(w, "Baseline %-12s %6.2f missions (gain %.2fx)\n", b.Name, b.Missions, b.Gain)
		} else {
			_, err = fmt.Fprintf(w, "Baseline %-12s grounded\n", b.Name)
		}
		if err != nil {
			return fmt.Errorf("core: write report: %w", err)
		}
	}
	return nil
}

func tunedSuffix(t string) string {
	if t == "" {
		return ""
	}
	return " (tuned: " + t + ")"
}
