package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"autopilot/internal/airlearning"
	"autopilot/internal/policy"
	"autopilot/internal/rl"
	"autopilot/internal/uav"
)

// trainSpec is a tiny Phase-1 training sweep: three hypers, few episodes.
func trainSpec(workers int) Spec {
	spec := DefaultSpec(uav.ZhangNano(), airlearning.LowObstacle)
	spec.Phase1Mode = Phase1Train
	spec.TrainHypers = []policy.Hyper{
		{Layers: 2, Filters: 32}, {Layers: 4, Filters: 48}, {Layers: 7, Filters: 48},
	}
	spec.TrainCfg = rl.TrainConfig{Algorithm: rl.AlgDQN, Episodes: 4, EvalEpisodes: 3, Seed: 1}
	spec.Workers = workers
	return spec
}

func TestPhase1TrainDeterministicAcrossWorkerCounts(t *testing.T) {
	seq, err := Phase1(context.Background(), trainSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Phase1(context.Background(), trainSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != par.Len() {
		t.Fatalf("record counts differ: %d vs %d", seq.Len(), par.Len())
	}
	a, b := seq.All(), par.All()
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("record %d differs between workers=1 and workers=4:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, fastSpec(uav.ZhangNano(), airlearning.DenseObstacle)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *Report {
		spec := fastSpec(uav.ZhangNano(), airlearning.DenseObstacle)
		spec.Workers = workers
		rep, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	seq, par := run(1), run(8)
	if !reflect.DeepEqual(seq.Phase2.ParetoIdx, par.Phase2.ParetoIdx) {
		t.Fatalf("Pareto fronts differ across worker counts:\n%v\n%v",
			seq.Phase2.ParetoIdx, par.Phase2.ParetoIdx)
	}
	if seq.Selected.Design.Design != par.Selected.Design.Design {
		t.Fatalf("selected designs differ:\n%v\n%v",
			seq.Selected.Design.Design, par.Selected.Design.Design)
	}
}

func TestEvaluateBaselinesMatchesSequential(t *testing.T) {
	spec := fastSpec(uav.AscTecPelican(), airlearning.DenseObstacle)
	db, err := Phase1(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	baselines := uav.Baselines()
	spec.Workers = 4
	sels, err := EvaluateBaselines(context.Background(), spec, db, baselines)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != len(baselines) {
		t.Fatalf("got %d selections, want %d", len(sels), len(baselines))
	}
	for i, b := range baselines {
		want := EvaluateBaseline(spec, db, b)
		if !reflect.DeepEqual(sels[i], want) {
			t.Fatalf("baseline %s differs from sequential evaluation", b.Name)
		}
	}
}
