// Package core is the AutoPilot orchestrator (paper Fig. 1): it wires the
// three phases together. Phase 1 populates the Air Learning database with
// validated E2E policies (trained with RL, or via the calibrated surrogate
// for experiment-scale runs). Phase 2 runs multi-objective Bayesian DSE over
// the joint model/accelerator space. Phase 3 is the domain-specific back
// end: it filters top-success designs, maps them onto the F-1 model with
// their thermal payload weight, evaluates mission-level performance
// (Eq. 1–4), applies architectural fine-tuning, and selects the design that
// maximizes the number of missions.
package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"autopilot/internal/airlearning"
	"autopilot/internal/dse"
	"autopilot/internal/f1"
	"autopilot/internal/fault"
	"autopilot/internal/hw"
	"autopilot/internal/mission"
	"autopilot/internal/obs"
	"autopilot/internal/policy"
	"autopilot/internal/pool"
	"autopilot/internal/power"
	"autopilot/internal/rl"
	"autopilot/internal/thermal"
	"autopilot/internal/train"
	"autopilot/internal/tuning"
	"autopilot/internal/uav"
)

// Phase1Mode selects how the policy database is produced.
type Phase1Mode int

// Phase-1 modes.
const (
	// Phase1Surrogate fills the database from the calibrated success-rate
	// surrogate (laptop-scale substitute for the multi-day RL sweep).
	Phase1Surrogate Phase1Mode = iota
	// Phase1Train actually trains each model with RL on the grid-world
	// simulator.
	Phase1Train
)

// Spec is the high-level task specification the user hands AutoPilot
// (paper §III-A): the UAV, the deployment scenario, and budgets.
type Spec struct {
	Platform uav.Platform
	Scenario airlearning.Scenario

	// SensorFPS of 0 selects the platform's fastest sensor mode.
	SensorFPS float64

	Mission       mission.Spec
	MissionParams mission.Params
	Thermal       thermal.Params
	PowerModel    power.Model

	Phase1Mode Phase1Mode
	// TrainHypers limits Phase1Train to a subset of the template family
	// (nil = the full Table II family, which is slow).
	TrainHypers []policy.Hyper
	TrainCfg    rl.TrainConfig
	// TrainCheckpoint makes the Phase-1 training sweep resumable: when
	// non-empty the policy database is snapshotted there after every
	// completed record, and a restarted run skips points the snapshot
	// already holds. Empty disables checkpointing.
	TrainCheckpoint string

	Space  dse.Space
	Phase2 dse.Config

	Tuning tuning.Options

	// Workers bounds the evaluation worker pool shared by the Phase-1
	// training sweep, the Phase-2 search, and the baseline evaluations;
	// <= 0 selects runtime.NumCPU(). Results are bitwise deterministic
	// regardless of the worker count: per-policy training seeds derive from
	// the hyper-parameter identity, and parallel evaluations are
	// re-assembled in submission order.
	Workers int

	// Retries is the total attempt budget per Phase-1 training job and
	// Phase-2 evaluation; values <= 1 mean a single attempt (identical to
	// the pre-retry pipeline). Retried attempts derive fresh seeds from the
	// job identity and attempt index, so results stay deterministic.
	Retries int
	// JobTimeout bounds each attempt; 0 means unbounded.
	JobTimeout time.Duration
	// FailureBudget is the fraction of jobs a phase may lose (after
	// retries) before it errors. 0 preserves fail-fast; a positive budget
	// lets sweeps complete with the failures reported.
	FailureBudget float64
	// ChaosInjector deterministically injects faults into training jobs and
	// hardware evaluations for chaos testing; nil injects nothing.
	ChaosInjector *fault.Injector

	// Obs, when non-nil, instruments the whole pipeline: the three phases
	// become trace spans (cat "phase" — what run manifests report as phase
	// durations), and every layer underneath (train, dse, pool, fault, hw)
	// records its counters and spans through the same observer. nil runs
	// uninstrumented at zero cost; all results are bitwise identical.
	Obs *obs.Observer
}

// retryPolicy assembles the spec's fault.Policy: the default backoff
// schedule clipped to the spec's attempt budget and per-attempt timeout.
func (s Spec) retryPolicy() fault.Policy {
	if s.Retries <= 1 && s.JobTimeout <= 0 {
		return fault.Policy{}
	}
	p := fault.DefaultPolicy()
	p.Attempts = s.Retries
	p.Timeout = s.JobTimeout
	return p
}

// DefaultSpec returns a complete specification for a platform and scenario
// using surrogate Phase 1 and the default budgets.
func DefaultSpec(p uav.Platform, s airlearning.Scenario) Spec {
	return Spec{
		Platform:      p,
		Scenario:      s,
		Mission:       mission.DefaultSpec(),
		MissionParams: mission.DefaultParams(),
		Thermal:       thermal.Default(),
		PowerModel:    power.Default(),
		Phase1Mode:    Phase1Surrogate,
		TrainCfg:      rl.DefaultTrainConfig(),
		Space:         dse.DefaultSpace(),
		Phase2:        dse.DefaultConfig(),
		Tuning:        tuning.DefaultOptions(),
	}
}

// Validate checks the specification.
func (s Spec) Validate() error {
	if err := s.Platform.Validate(); err != nil {
		return err
	}
	if err := s.Space.Validate(); err != nil {
		return err
	}
	if err := s.Thermal.Validate(); err != nil {
		return err
	}
	if s.Mission.DistanceM <= 0 {
		return fmt.Errorf("core: non-positive mission distance")
	}
	return nil
}

// Selection is one design evaluated at the full-UAV level.
type Selection struct {
	Design   dse.Evaluated
	NodeNM   int
	Tuned    string // human-readable tuning description, "" if untouched
	PayloadG float64
	// Loadout names the catalog loadout the design flew on; the zero value
	// means the spec's fixed platform (the legacy pipeline).
	Loadout dse.VehicleRef

	ActionHz     float64
	Bound        f1.Bound
	Provisioning f1.Provisioning
	KneeHz       float64
	VSafeMS      float64

	Profile  mission.Profile
	Liftable bool
}

// Missions returns the mission count, 0 when the UAV cannot lift the design.
func (s Selection) Missions() float64 {
	if !s.Liftable {
		return 0
	}
	return s.Profile.Missions
}

// Report is the full AutoPilot output for one (UAV, scenario) specification.
type Report struct {
	Spec     Spec
	Database *airlearning.Database
	// Phase1 is the training sweep's fault-tolerance report (trained/skipped
	// counts, failures, checkpoint quarantine); nil in surrogate mode.
	Phase1 *train.SweepReport
	Phase2 *dse.Result
	F1     f1.Model

	// Selected is AutoPilot's pick (the "AP" design).
	Selected Selection
	// HT, LP, HE are the conventional-DSE picks evaluated at mission level.
	HT, LP, HE Selection
	// Candidates are all top-success designs evaluated at mission level.
	Candidates []Selection
}

// Run executes the full three-phase pipeline. Long sweeps are cancellable:
// when ctx is cancelled the active phase drains its worker pool and Run
// returns an error wrapping ctx.Err().
func Run(ctx context.Context, spec Spec) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ctx = obs.NewContext(ctx, spec.Obs)
	root := obs.StartStep(ctx, "autopilot "+spec.Scenario.String(), "run")
	defer root.End()
	ctx = obs.ContextWithSpan(ctx, root)
	db, p1, err := Phase1Report(ctx, spec)
	if err != nil {
		return nil, fmt.Errorf("core: phase 1: %w", err)
	}
	res, err := Phase2(ctx, spec, db)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2: %w", err)
	}
	rep, err := Phase3(ctx, spec, res)
	if err != nil {
		return nil, fmt.Errorf("core: phase 3: %w", err)
	}
	rep.Database = db
	rep.Phase1 = p1
	return rep, nil
}

// Phase1 produces the validated-policy database for the scenario. It is
// Phase1Report without the sweep report.
func Phase1(ctx context.Context, spec Spec) (*airlearning.Database, error) {
	db, _, err := Phase1Report(ctx, spec)
	return db, err
}

// Phase1Report produces the validated-policy database for the scenario plus
// the training sweep's fault-tolerance report. In Phase1Train mode the
// per-model training runs go through the unified training engine
// (internal/train): they fan out over the spec's worker pool with
// hyper-identity-derived seeds, honor cancellation between episodes, run
// under the spec's retry policy and failure budget, and — with
// TrainCheckpoint set — snapshot the database after every completed record
// so an interrupted sweep resumes where it left off (a corrupt checkpoint is
// quarantined and reported, not fatal). The report is nil in surrogate mode.
func Phase1Report(ctx context.Context, spec Spec) (*airlearning.Database, *train.SweepReport, error) {
	ctx = obs.NewContext(ctx, spec.Obs)
	sp := obs.StartStep(ctx, "phase1", "phase")
	defer sp.End()
	ctx = obs.ContextWithSpan(ctx, sp)
	db := airlearning.NewDatabase()
	switch spec.Phase1Mode {
	case Phase1Surrogate:
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("core: cancelled: %w", err)
		}
		airlearning.PopulateSurrogate(db)
		return db, nil, nil
	case Phase1Train:
		hypers := spec.TrainHypers
		if hypers == nil {
			hypers = policy.AllHypers()
		}
		eng := train.New(rl.Factory(spec.TrainCfg), train.Config{
			Episodes:      spec.TrainCfg.Episodes,
			EvalEpisodes:  spec.TrainCfg.EvalEpisodes,
			Seed:          spec.TrainCfg.Seed,
			Workers:       spec.Workers,
			Checkpoint:    spec.TrainCheckpoint,
			Retry:         spec.retryPolicy(),
			FailureBudget: spec.FailureBudget,
			Injector:      spec.ChaosInjector,
			Obs:           spec.Obs,
		})
		rep, err := eng.Sweep(ctx, hypers, spec.Scenario, db)
		if err != nil {
			return nil, rep, err
		}
		return db, rep, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown phase-1 mode %d", int(spec.Phase1Mode))
	}
}

// Phase2 runs the multi-objective DSE against the database under the spec's
// retry policy and failure budget.
func Phase2(ctx context.Context, spec Spec, db *airlearning.Database) (*dse.Result, error) {
	ctx = obs.NewContext(ctx, spec.Obs)
	sp := obs.StartStep(ctx, "phase2", "phase")
	defer sp.End()
	ctx = obs.ContextWithSpan(ctx, sp)
	return dse.Execute(ctx, dse.Request{
		Space:         spec.Space,
		DB:            db,
		Scenario:      spec.Scenario,
		Power:         spec.PowerModel,
		Config:        spec.Phase2,
		Workers:       spec.Workers,
		Vehicle:       dse.VehicleParams{Mission: spec.Mission, Params: spec.MissionParams, Thermal: spec.Thermal},
		Retry:         spec.retryPolicy(),
		JobTimeout:    spec.JobTimeout,
		FailureBudget: spec.FailureBudget,
		Injector:      spec.ChaosInjector,
		Obs:           spec.Obs,
	})
}

// sensorFPS resolves the spec's sensor rate.
func (s Spec) sensorFPS() float64 {
	if s.SensorFPS > 0 {
		return s.SensorFPS
	}
	return s.Platform.MaxSensorFPS()
}

// evaluateFullSystemOn is the single Phase-3 full-system path: it maps one
// hardware cost-model estimate, flown at the given payload weight on the
// given platform, onto the F-1 roofline (knee point, effective action
// throughput, safe velocity) and the Eq. 1–4 mission model. Every consumer —
// searched designs, fine-tuned variants, baseline boards, and catalog
// loadouts — goes through this function, so any future hw.Backend gets the
// Fig. 5-style comparison for free. Designs the platform cannot lift come
// back with Liftable=false.
func evaluateFullSystemOn(spec Spec, plat uav.Platform, sensorFPS float64, est hw.Estimate, payloadG float64, model f1.Model) Selection {
	sel := Selection{NodeNM: 28, PayloadG: payloadG}
	if !plat.CanLift(payloadG) {
		return sel
	}
	sel.Liftable = true
	accel := plat.MaxAccelMS2(payloadG)
	sel.KneeHz = model.KneePoint(accel)
	sel.ActionHz, sel.Bound = model.EffectiveThroughput(est.FPS, sensorFPS, accel)
	sel.Provisioning = model.Classify(sel.ActionHz, accel)
	sel.VSafeMS = model.SafeVelocity(sel.ActionHz, accel)
	prof, err := mission.Evaluate(plat, spec.MissionParams, spec.Mission,
		payloadG, est.SoCPowerW, sel.VSafeMS)
	if err != nil {
		sel.Liftable = false
		return sel
	}
	sel.Profile = prof
	return sel
}

// evaluateFullSystem runs the full-system path on the spec's fixed platform.
func evaluateFullSystem(spec Spec, est hw.Estimate, payloadG float64, model f1.Model) Selection {
	return evaluateFullSystemOn(spec, spec.Platform, spec.sensorFPS(), est, payloadG, model)
}

// payloadFor resolves the flown compute weight for an estimate: boards
// flown as-is carry their weight hint; everything else derives motherboard,
// packaging, and heatsinking from the accelerator TDP via the thermal model.
func payloadFor(spec Spec, est hw.Estimate) float64 {
	if est.FlownWeightG > 0 {
		return est.FlownWeightG
	}
	return spec.Thermal.ComputeWeightGrams(est.AccelPowerW)
}

// EvaluateEstimate runs the Phase-3 full-system evaluation for a raw
// hardware cost-model estimate — the entry point for new backends (SPA
// stacks on embedded CPUs, future accelerator templates) that never pass
// through the Phase-2 design space.
func EvaluateEstimate(spec Spec, est hw.Estimate, success float64, model f1.Model) Selection {
	sel := evaluateFullSystem(spec, est, payloadFor(spec, est), model)
	sel.Design = dse.FromEstimate(dse.DesignPoint{}, success, est)
	return sel
}

// EvaluateOnPlatform performs the Phase-3 full-system evaluation of one
// scored design: payload weight from the accelerator TDP, F-1 safe velocity
// at the effective action throughput, and Eq. 1–4 mission metrics. Designs
// carrying a loadout reference fly on that catalog loadout (its platform
// view, its sensor, its SoC sensor power) instead of the spec's fixed
// platform — fine-tuned variants resolve the same loadout through the design
// point, so tuning never silently reverts the vehicle. Designs the vehicle
// cannot lift come back with Liftable=false.
func EvaluateOnPlatform(spec Spec, e dse.Evaluated, model f1.Model) Selection {
	est := hw.Estimate{FPS: e.FPS, RuntimeSec: e.RuntimeSec,
		AccelPowerW: e.AccelPowerW, SoCPowerW: e.SoCPowerW, Breakdown: e.Breakdown}
	plat, sensorFPS := spec.Platform, spec.sensorFPS()
	if v := e.Design.Vehicle; v != (dse.VehicleRef{}) {
		lo, err := v.Loadout()
		if err != nil {
			return Selection{NodeNM: 28, Design: e, Loadout: v}
		}
		plat = uav.FromLoadout(lo)
		sensorFPS = lo.Sensor.MaxFPS()
		if spec.SensorFPS > 0 {
			sensorFPS = spec.SensorFPS
		}
		// Re-derive SoC power from the breakdown with the loadout's sensor,
		// so fine-tuned estimates (built with the Table III sensor) score
		// consistently with the searched design.
		est.SoCPowerW = power.SoCWithSensor(e.Breakdown, lo.Sensor.PowerW)
		sel := evaluateFullSystemOn(spec, plat, sensorFPS, est, spec.Thermal.ComputeWeightGrams(e.AccelPowerW), model)
		sel.Design = e
		sel.Design.SoCPowerW = est.SoCPowerW
		// Rebuild the vehicle-eval block from this evaluation: fine-tuned
		// variants arrive with it zeroed, and a tuned accelerator changes the
		// payload weight anyway.
		sel.Design.Vehicle = dse.VehicleEval{Loadout: v, PayloadG: sel.PayloadG,
			TotalWeightG: lo.BaseWeightG() + sel.PayloadG, TotalPowerW: sel.Profile.TotalW,
			VSafeMS: sel.VSafeMS, Missions: sel.Profile.Missions}
		sel.Loadout = v
		return sel
	}
	sel := evaluateFullSystemOn(spec, plat, sensorFPS, est, spec.Thermal.ComputeWeightGrams(e.AccelPowerW), model)
	sel.Design = e
	return sel
}

// Phase3 is the domain-specific back end: filter top-success designs, map
// them to the F-1 model, fine-tune, and select the mission-optimal design.
// The per-candidate full-system evaluations fan out over the spec's worker
// pool and are re-assembled in candidate order before selection.
func Phase3(ctx context.Context, spec Spec, res *dse.Result) (*Report, error) {
	ctx = obs.NewContext(ctx, spec.Obs)
	sp := obs.StartStep(ctx, "phase3", "phase")
	defer sp.End()
	ctx = obs.ContextWithSpan(ctx, sp)
	model := f1.ForScenario(spec.Scenario)
	rep := &Report{Spec: spec, Phase2: res, F1: model}

	top := res.TopSuccess(0.02)
	if len(top) == 0 {
		return nil, fmt.Errorf("core: phase 2 produced no designs")
	}
	sels, err := pool.Map(ctx, spec.Workers, top, func(_ context.Context, i int) (Selection, error) {
		return EvaluateOnPlatform(spec, res.Evaluated[i], model), nil
	})
	if err != nil {
		return nil, err
	}
	best := Selection{}
	for _, sel := range sels {
		rep.Candidates = append(rep.Candidates, sel)
		if preferable(sel, best) {
			best = sel
		}
	}
	if !best.Liftable {
		return nil, fmt.Errorf("core: %s cannot lift any top-success design", spec.Platform.Name)
	}

	// Architectural fine-tuning: try frequency/node variants of the winner
	// and keep whichever maximizes missions.
	tuned, err := FineTune(spec, best, model)
	if err != nil {
		return nil, err
	}
	rep.Selected = tuned

	if res.HT >= 0 {
		rep.HT = EvaluateOnPlatform(spec, res.Evaluated[res.HT], model)
	}
	if res.LP >= 0 {
		rep.LP = EvaluateOnPlatform(spec, res.Evaluated[res.LP], model)
	}
	if res.HE >= 0 {
		rep.HE = EvaluateOnPlatform(spec, res.Evaluated[res.HE], model)
	}
	return rep, nil
}

// FineTune searches frequency/node variants of a selection and returns the
// best mission performer (possibly the untouched design).
func FineTune(spec Spec, sel Selection, model f1.Model) (Selection, error) {
	variants, err := tuning.Variants(sel.Design.Design, spec.Tuning)
	if err != nil {
		return Selection{}, err
	}
	net, err := policy.Build(sel.Design.Design.Hyper, spec.Space.Template)
	if err != nil {
		return Selection{}, err
	}
	best := sel
	wl := hw.NetworkWorkload(sel.Design.Design.Hyper.String(), net)
	for _, v := range variants {
		pm, err := spec.PowerModel.AtNode(v.NodeNM)
		if err != nil {
			return Selection{}, err
		}
		be := hw.SystolicBackend{Config: v.Design.HW, Power: pm}
		est, err := be.Estimate(wl)
		if err != nil {
			continue // a variant clock may be invalid; skip it
		}
		e := dse.FromEstimate(v.Design, sel.Design.SuccessRate, est)
		cand := EvaluateOnPlatform(spec, e, model)
		cand.NodeNM = v.NodeNM
		if v.NodeNM != 28 || v.FreqScale != 1.0 {
			cand.Tuned = v.Describe()
		}
		if preferable(cand, best) {
			best = cand
		}
	}
	return best, nil
}

// EvaluateBaseline evaluates a fixed compute platform (TX2, NX, PULP, NCS)
// carrying the scenario's best E2E model on the spec's UAV — the Fig. 5
// comparison points. The board goes through the same hw.Backend seam and
// full-system path as searched designs; its flown weight hint replaces the
// thermal-model payload.
func EvaluateBaseline(spec Spec, db *airlearning.Database, b uav.ComputeBaseline) Selection {
	model := f1.ForScenario(spec.Scenario)
	success := 0.0
	wl := hw.Workload{Name: b.Name + "/no-model", Kind: hw.WorkloadNetwork}
	if rec, ok := db.Best(spec.Scenario); ok {
		success = rec.SuccessRate
		if net, err := policy.Build(rec.Hyper, spec.Space.Template); err == nil {
			wl = hw.NetworkWorkload(rec.Hyper.String(), net)
		}
	}
	est, err := hw.BoardBackend{Board: b}.Estimate(wl)
	if err != nil {
		return Selection{NodeNM: 28, PayloadG: b.WeightG}
	}
	return EvaluateEstimate(spec, est, success, model)
}

// EvaluateBaselines scores every baseline board concurrently on the spec's
// worker pool, returning selections in the same order as the input slice.
func EvaluateBaselines(ctx context.Context, spec Spec, db *airlearning.Database, baselines []uav.ComputeBaseline) ([]Selection, error) {
	return pool.Map(ctx, spec.Workers, baselines,
		func(_ context.Context, b uav.ComputeBaseline) (Selection, error) {
			return EvaluateBaseline(spec, db, b), nil
		})
}

// MissionGain returns how many times more missions `a` achieves than `b`,
// guarding against division by zero.
func MissionGain(a, b Selection) float64 {
	if b.Missions() <= 0 {
		return math.Inf(1)
	}
	return a.Missions() / b.Missions()
}

// preferable implements the paper's Phase-3 selection rule: maximize
// missions, and among mission-equivalent designs (within 5%) prefer the one
// closest to the F-1 knee point, then the lower-power one — "the design
// point closest to the knee-point can be selected" (§III-C).
func preferable(a, b Selection) bool {
	am, bm := a.Missions(), b.Missions()
	if am <= 0 {
		return false
	}
	if bm <= 0 {
		return true
	}
	if am > bm*1.05 {
		return true
	}
	if bm > am*1.05 {
		return false
	}
	ad, bd := kneeDistance(a), kneeDistance(b)
	if math.Abs(ad-bd) > 1e-9 {
		return ad < bd
	}
	return a.Design.SoCPowerW < b.Design.SoCPowerW
}

// kneeDistance is the log-scale distance of the action throughput from the
// knee; over-provisioning counts the same as under-provisioning.
func kneeDistance(s Selection) float64 {
	if s.ActionHz <= 0 || s.KneeHz <= 0 {
		return math.Inf(1)
	}
	return math.Abs(math.Log(s.ActionHz / s.KneeHz))
}
