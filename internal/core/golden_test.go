package core

import (
	"context"
	"strconv"
	"testing"

	"autopilot/internal/airlearning"
	"autopilot/internal/dse"
	"autopilot/internal/f1"
	"autopilot/internal/policy"
	"autopilot/internal/power"
	"autopilot/internal/systolic"
	"autopilot/internal/uav"
)

// The hex-float golden values in this file were captured from the
// pre-refactor Phase-3 code path (direct systolic/power calls inside core),
// before hw.Backend existed. Comparisons are bitwise (==): the refactor must
// not perturb a single floating-point operation.

func gx(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad golden literal %q: %v", s, err)
	}
	return v
}

func goldenHW(rows, cols, ifKB, fKB, ofKB int) systolic.Config {
	return systolic.Config{
		Rows: rows, Cols: cols, IfmapKB: ifKB, FilterKB: fKB, OfmapKB: ofKB,
		Dataflow: systolic.OutputStationary, FreqMHz: 500,
		BandwidthGBps: dse.Bandwidth(rows * cols),
	}
}

// TestGoldenEvaluateOnPlatform pins the nano-UAV/dense mission metrics for
// five fixed design points across the hw-layer refactor.
func TestGoldenEvaluateOnPlatform(t *testing.T) {
	db := airlearning.NewDatabase()
	airlearning.PopulateSurrogate(db)
	space := dse.DefaultSpace()
	ev := dse.NewEvaluator(db, airlearning.DenseObstacle, power.Default(), dse.WithTemplate(space.Template))
	spec := DefaultSpec(uav.ZhangNano(), airlearning.DenseObstacle)
	model := f1.ForScenario(spec.Scenario)

	cases := []struct {
		d                                        dse.DesignPoint
		payload, actionHz, knee, vsafe, missions string
	}{
		{
			d:       dse.DesignPoint{Hyper: policy.Hyper{Layers: 2, Filters: 32}, HW: goldenHW(8, 8, 32, 32, 32)},
			payload: "0x1.5f9fdca43c84p+04", actionHz: "0x1.ae3cdf032d4a7p+04",
			knee: "0x1.76c2779dc0886p+05", vsafe: "0x1.d725faad0ebbfp+02", missions: "0x1.3bfae75a1aa3fp+02",
		},
		{
			d:       dse.DesignPoint{Hyper: policy.Hyper{Layers: 7, Filters: 48}, HW: goldenHW(64, 64, 256, 256, 256)},
			payload: "0x1.6d5f3a16dad07p+04", actionHz: "0x1.59748cbcc019dp+04",
			knee: "0x1.735e20790fd32p+05", vsafe: "0x1.8d38c4ccb8326p+02", missions: "0x1.01fb0257d7befp+02",
		},
		{
			d:       dse.DesignPoint{Hyper: policy.Hyper{Layers: 10, Filters: 64}, HW: goldenHW(1024, 1024, 4096, 4096, 4096)},
			payload: "0x1.fc50c39909d8cp+06", actionHz: "0x1.ep+05",
			knee: "0x1.1c39a62acc6e6p+04", vsafe: "0x1.67ca6a29d6ff2p+02", missions: "0x1.57f65e3b1aec9p-01",
		},
		{
			d:       dse.DesignPoint{Hyper: policy.Hyper{Layers: 5, Filters: 32}, HW: goldenHW(128, 32, 512, 128, 64)},
			payload: "0x1.6cae352f6a0b8p+04", actionHz: "0x1.03cebd236466cp+05",
			knee: "0x1.738979cddbf98p+05", vsafe: "0x1.128a6ddefe25p+03", missions: "0x1.652d2230eb293p+02",
		},
		{
			d:       dse.DesignPoint{Hyper: policy.Hyper{Layers: 4, Filters: 48}, HW: goldenHW(16, 256, 64, 1024, 128)},
			payload: "0x1.72119e47ca688p+04", actionHz: "0x1.5ed18dc2d916ap+04",
			knee: "0x1.7238966537672p+05", vsafe: "0x1.91e5f7b7aee31p+02", missions: "0x1.023940ac1934p+02",
		},
	}
	for _, c := range cases {
		e, err := ev.Evaluate(c.d)
		if err != nil {
			t.Fatalf("%v: %v", c.d, err)
		}
		sel := EvaluateOnPlatform(spec, e, model)
		if !sel.Liftable {
			t.Errorf("%v: not liftable", c.d)
		}
		check := func(name string, got float64, want string) {
			if got != gx(t, want) {
				t.Errorf("%v: %s = %x, want %s", c.d, name, got, want)
			}
		}
		check("PayloadG", sel.PayloadG, c.payload)
		check("ActionHz", sel.ActionHz, c.actionHz)
		check("KneeHz", sel.KneeHz, c.knee)
		check("VSafeMS", sel.VSafeMS, c.vsafe)
		check("Missions", sel.Missions(), c.missions)
	}
}

// TestGoldenEvaluateBaseline pins the off-the-shelf board evaluation (now
// routed through hw.BoardBackend) for all four baselines on two
// platform/scenario pairs.
func TestGoldenEvaluateBaseline(t *testing.T) {
	db := airlearning.NewDatabase()
	airlearning.PopulateSurrogate(db)
	boards := uav.AllBaselines()
	if len(boards) != 4 {
		t.Fatalf("AllBaselines() = %d boards, want 4", len(boards))
	}

	type bg struct{ fps, soc, payload, actionHz, vsafe, missions string }
	cases := []struct {
		spec   Spec
		golden []bg
	}{
		{
			spec: DefaultSpec(uav.AscTecPelican(), airlearning.MediumObstacle),
			golden: []bg{
				{"0x1.109f78191fe6p+06", "0x1.83ea897635e74p+03", "0x1.72p+07", "0x1.ep+05", "0x1.88976e1146bcp+02", "0x1.a8f85f2912f4cp+02"},
				{"0x1.98ef3425afd9p+06", "0x1.e3ea897635e74p+03", "0x1.2cp+07", "0x1.ep+05", "0x1.90e83b92170cep+02", "0x1.b8031ab0b18dp+02"},
				{"0x1.8p+02", "0x1.7db4cc2507208p-03", "0x1.4p+02", "0x1.8p+02", "0x1.75fff738ab052p+01", "0x1.f19c384beeadfp+01"},
				{"0x1.4725c351597a6p+03", "0x1.52877ee4e26d4p+00", "0x1.ep+04", "0x1.4725c351597a6p+03", "0x1.f61bbcda90be4p+01", "0x1.44c398a95750cp+02"},
			},
		},
		{
			spec: DefaultSpec(uav.ZhangNano(), airlearning.DenseObstacle),
			golden: []bg{
				{"0x1.103cbef76d381p+06", "0x1.83ea897635e74p+03", "0x1.72p+07", "0x1.ep+05", "0x1.c1ed75ae3e667p+01", "0x1.652a1a582b3cfp-02"},
				{"0x1.985b1e7323d41p+06", "0x1.e3ea897635e74p+03", "0x1.2cp+07", "0x1.ep+05", "0x1.30f5802a2555dp+02", "0x1.168a54abdf369p-01"},
				{"0x1.8p+02", "0x1.7db4cc2507208p-03", "0x1.4p+02", "0x1.8p+02", "0x1.676a5ffd5a9b2p+01", "0x1.6da8f111ab28fp+01"},
				{"0x1.46af4b8f4fdcep+03", "0x1.52877ee4e26d4p+00", "0x1.ep+04", "0x1.46af4b8f4fdcep+03", "0x1.dcdacc7d831f7p+01", "0x1.00d1eeb6dcf32p+01"},
			},
		},
	}
	for _, c := range cases {
		for i, b := range boards {
			sel := EvaluateBaseline(c.spec, db, b)
			g := c.golden[i]
			if !sel.Liftable {
				t.Errorf("%s/%s: not liftable", c.spec.Platform.Name, b.Name)
			}
			check := func(name string, got float64, want string) {
				if got != gx(t, want) {
					t.Errorf("%s/%s: %s = %x, want %s", c.spec.Platform.Name, b.Name, name, got, want)
				}
			}
			check("FPS", sel.Design.FPS, g.fps)
			check("SoCPowerW", sel.Design.SoCPowerW, g.soc)
			check("PayloadG", sel.PayloadG, g.payload)
			check("ActionHz", sel.ActionHz, g.actionHz)
			check("VSafeMS", sel.VSafeMS, g.vsafe)
			check("Missions", sel.Missions(), g.missions)
		}
	}
}

func goldenPipelineSpec(workers int) Spec {
	spec := DefaultSpec(uav.ZhangNano(), airlearning.DenseObstacle)
	spec.Phase2.CandidatePool = 192
	spec.Phase2.BO.InitSamples = 10
	spec.Phase2.BO.Iterations = 14
	spec.Phase2.BO.ScreenSize = 96
	spec.Workers = workers
	return spec
}

// TestGoldenPipeline pins a small end-to-end run: the Phase-2 front, the
// Phase-3 knee-point selection, the process-node fine-tune, and the HT/LP/HE
// corner picks, all against pre-refactor values.
func TestGoldenPipeline(t *testing.T) {
	rep, err := Run(context.Background(), goldenPipelineSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rep.Phase2.Evaluated), 48; got != want {
		t.Errorf("evaluated = %d, want %d", got, want)
	}
	if got, want := len(rep.Phase2.ParetoIdx), 13; got != want {
		t.Errorf("front size = %d, want %d", got, want)
	}
	if rep.Phase2.HT != 42 || rep.Phase2.LP != 24 || rep.Phase2.HE != 39 {
		t.Errorf("corner indices = %d/%d/%d, want 42/24/39", rep.Phase2.HT, rep.Phase2.LP, rep.Phase2.HE)
	}
	if got, want := rep.Selected.Design.Design.String(), "L7F48 on 256x256/os if32K f32K of32K @250MHz 3.75GB/s"; got != want {
		t.Errorf("selected = %q, want %q", got, want)
	}
	if got, want := rep.Selected.Tuned, "7nm 0.5x clock"; got != want {
		t.Errorf("tuned = %q, want %q", got, want)
	}
	if got, want := rep.Selected.NodeNM, 7; got != want {
		t.Errorf("node = %d, want %d", got, want)
	}
	check := func(name string, got float64, want string) {
		if got != gx(t, want) {
			t.Errorf("%s = %x, want %s", name, got, want)
		}
	}
	check("selected missions", rep.Selected.Missions(), "0x1.8fa09b1d30144p+02")
	check("selected v_safe", rep.Selected.VSafeMS, "0x1.696ba136f1fb4p+03")
	check("selected action Hz", rep.Selected.ActionHz, "0x1.ep+05")
	check("HT missions", rep.HT.Missions(), "0x1.f9dc753c72d6cp+00")
	check("LP missions", rep.LP.Missions(), "0x1.c9efd92916d1ep+01")
	check("HE missions", rep.HE.Missions(), "0x1.6b8073c23b719p+02")
	check("front checksum", frontChecksum(rep), "0x1.d58415c3f6b1fp+04")
}

// TestGoldenPipelineWorkerInvariance proves the Phase-2 front and Phase-3
// selection are bitwise identical whether the evaluator fans out over one
// worker or eight — determinism survives both the refactor and parallelism.
func TestGoldenPipelineWorkerInvariance(t *testing.T) {
	rep1, err := Run(context.Background(), goldenPipelineSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	rep8, err := Run(context.Background(), goldenPipelineSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := len(rep1.Phase2.Evaluated), len(rep8.Phase2.Evaluated); a != b {
		t.Fatalf("evaluated count differs: workers=1 %d, workers=8 %d", a, b)
	}
	for i := range rep1.Phase2.Evaluated {
		if rep1.Phase2.Evaluated[i] != rep8.Phase2.Evaluated[i] {
			t.Errorf("evaluated[%d] differs across worker counts:\n  w1: %+v\n  w8: %+v",
				i, rep1.Phase2.Evaluated[i], rep8.Phase2.Evaluated[i])
		}
	}
	if a, b := frontChecksum(rep1), frontChecksum(rep8); a != b {
		t.Errorf("front checksum differs: workers=1 %x, workers=8 %x", a, b)
	}
	if a, b := rep1.Selected.Design.Design.String(), rep8.Selected.Design.Design.String(); a != b {
		t.Errorf("selected design differs: workers=1 %q, workers=8 %q", a, b)
	}
	if a, b := rep1.Selected.Missions(), rep8.Selected.Missions(); a != b {
		t.Errorf("selected missions differ: workers=1 %x, workers=8 %x", a, b)
	}
}

func frontChecksum(rep *Report) float64 {
	var sum float64
	for _, i := range rep.Phase2.ParetoIdx {
		e := rep.Phase2.Evaluated[i]
		sum += e.SoCPowerW + e.RuntimeSec + e.SuccessRate
	}
	return sum
}
