package core

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"autopilot/internal/airlearning"
	"autopilot/internal/bayesopt"
	"autopilot/internal/dse"
	"autopilot/internal/f1"
	"autopilot/internal/policy"
	"autopilot/internal/rl"
	"autopilot/internal/uav"
)

// fastSpec shrinks the Phase-2 budget so pipeline tests stay quick.
func fastSpec(p uav.Platform, s airlearning.Scenario) Spec {
	spec := DefaultSpec(p, s)
	bo := bayesopt.DefaultConfig()
	bo.InitSamples, bo.Iterations, bo.ScreenSize = 12, 16, 96
	spec.Phase2 = dse.Config{CandidatePool: 256, BO: bo, Seed: 1, ProbeCorners: true}
	return spec
}

func runNanoDense(t *testing.T) *Report {
	t.Helper()
	rep, err := Run(context.Background(), fastSpec(uav.ZhangNano(), airlearning.DenseObstacle))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSpecValidate(t *testing.T) {
	spec := DefaultSpec(uav.ZhangNano(), airlearning.DenseObstacle)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := spec
	bad.Mission.DistanceM = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero distance")
	}
	bad = spec
	bad.Platform = uav.Platform{}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for empty platform")
	}
}

func TestPhase1Surrogate(t *testing.T) {
	spec := DefaultSpec(uav.ZhangNano(), airlearning.DenseObstacle)
	db, err := Phase1(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 81 {
		t.Fatalf("db records = %d, want 81", db.Len())
	}
}

func TestPhase1Train(t *testing.T) {
	spec := DefaultSpec(uav.ZhangNano(), airlearning.LowObstacle)
	spec.Phase1Mode = Phase1Train
	spec.TrainHypers = []policy.Hyper{{Layers: 2, Filters: 32}}
	spec.TrainCfg = rl.TrainConfig{Algorithm: rl.AlgDQN, Episodes: 3, EvalEpisodes: 3, Seed: 1}
	db, err := Phase1(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := db.Get(policy.Hyper{Layers: 2, Filters: 32}, airlearning.LowObstacle)
	if !ok || rec.TrainSteps <= 0 {
		t.Fatalf("trained record = %+v, ok=%v", rec, ok)
	}
}

func TestPhase1UnknownMode(t *testing.T) {
	spec := DefaultSpec(uav.ZhangNano(), airlearning.LowObstacle)
	spec.Phase1Mode = Phase1Mode(99)
	if _, err := Phase1(context.Background(), spec); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunFullPipelineNanoDense(t *testing.T) {
	rep := runNanoDense(t)
	if !rep.Selected.Liftable {
		t.Fatal("selected design must be liftable")
	}
	if rep.Selected.Missions() <= 0 {
		t.Fatal("selected design must fly missions")
	}
	if rep.Selected.Design.SuccessRate < 0.7 {
		t.Fatalf("selected success = %g, expected a top model", rep.Selected.Design.SuccessRate)
	}
	// the selected model for dense obstacles should be the surrogate winner
	if h := rep.Selected.Design.Design.Hyper; h.Layers != 7 || h.Filters != 48 {
		t.Fatalf("selected model = %v, want L7F48 (paper §V-A dense winner)", h)
	}
	if len(rep.Candidates) == 0 {
		t.Fatal("no candidates recorded")
	}
}

func TestAutoPilotBeatsConventionalPicks(t *testing.T) {
	// the core claim of Figs. 8-10: the mission-optimal (AP) design beats
	// HT, LP and HE on mission count
	rep := runNanoDense(t)
	for _, alt := range []struct {
		name string
		sel  Selection
	}{{"HT", rep.HT}, {"LP", rep.LP}, {"HE", rep.HE}} {
		if gain := MissionGain(rep.Selected, alt.sel); gain < 1 {
			t.Errorf("AP does not beat %s: gain %.2f", alt.name, gain)
		}
	}
}

func TestNanoDenseMissionRatiosInPaperBands(t *testing.T) {
	// paper §V-B1: AP beats HT/LP/HE by ≈2.25×/1.8×/1.3×. Our calibrated
	// reproduction must land in the same regime (see EXPERIMENTS.md for the
	// measured values).
	rep := runNanoDense(t)
	if g := MissionGain(rep.Selected, rep.HT); g < 1.8 || g > 4.5 {
		t.Errorf("AP/HT = %.2f, want within [1.8, 4.5] (paper 2.25)", g)
	}
	if g := MissionGain(rep.Selected, rep.LP); g < 1.3 || g > 2.6 {
		t.Errorf("AP/LP = %.2f, want within [1.3, 2.6] (paper 1.8)", g)
	}
	if g := MissionGain(rep.Selected, rep.HE); g < 1.0 || g > 1.9 {
		t.Errorf("AP/HE = %.2f, want within [1.0, 1.9] (paper 1.3)", g)
	}
}

func TestHTDesignMatchesPaperProfile(t *testing.T) {
	// paper: HT ≈ 205 FPS @ 8.24 W with ~65 g payload
	rep := runNanoDense(t)
	ht := rep.HT
	if ht.Design.FPS < 150 || ht.Design.FPS > 350 {
		t.Errorf("HT FPS = %.0f, want ~205", ht.Design.FPS)
	}
	if ht.Design.SoCPowerW < 6 || ht.Design.SoCPowerW > 11 {
		t.Errorf("HT power = %.2f W, want ~8.24", ht.Design.SoCPowerW)
	}
	if ht.PayloadG < 50 || ht.PayloadG > 85 {
		t.Errorf("HT payload = %.0f g, want ~65", ht.PayloadG)
	}
}

func TestLPDesignMatchesPaperProfile(t *testing.T) {
	// paper: LP action throughput ≈ 18.4 Hz, ~2.5× under the ~46 Hz knee
	rep := runNanoDense(t)
	lp := rep.LP
	if lp.ActionHz < 12 || lp.ActionHz > 25 {
		t.Errorf("LP action throughput = %.1f Hz, want ~18.4", lp.ActionHz)
	}
	if lp.Provisioning != f1.UnderProvisioned {
		t.Errorf("LP provisioning = %v, want under-provisioned", lp.Provisioning)
	}
	if ratio := lp.KneeHz / lp.ActionHz; ratio < 1.8 || ratio > 3.5 {
		t.Errorf("knee/LP ratio = %.1f, paper reports ~2.5", ratio)
	}
}

func TestSelectedDesignNearKnee(t *testing.T) {
	rep := runNanoDense(t)
	sel := rep.Selected
	if sel.Provisioning == f1.UnderProvisioned {
		t.Errorf("AP selection is under-provisioned (%.1f Hz vs knee %.1f)", sel.ActionHz, sel.KneeHz)
	}
}

func TestEvaluateOnPlatformUnliftable(t *testing.T) {
	spec := fastSpec(uav.ZhangNano(), airlearning.DenseObstacle)
	e := dse.Evaluated{AccelPowerW: 100, FPS: 100, SoCPowerW: 100} // ~566 g heatsink
	sel := EvaluateOnPlatform(spec, e, f1.ForScenario(spec.Scenario))
	if sel.Liftable || sel.Missions() != 0 {
		t.Fatal("unliftable design must report zero missions")
	}
}

func TestEvaluateBaselinePULP(t *testing.T) {
	spec := fastSpec(uav.ZhangNano(), airlearning.DenseObstacle)
	db, err := Phase1(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	sel := EvaluateBaseline(spec, db, uav.PULPDroNet())
	if !sel.Liftable {
		t.Fatal("nano must lift the 5 g PULP chip")
	}
	if sel.ActionHz != 6 {
		t.Fatalf("PULP action throughput = %g, want its pinned 6 FPS", sel.ActionHz)
	}
	if sel.Bound != f1.ComputeBound {
		t.Fatalf("PULP bound = %v, want compute-bound", sel.Bound)
	}
}

func TestEvaluateBaselineTX2CrushesNano(t *testing.T) {
	spec := fastSpec(uav.ZhangNano(), airlearning.DenseObstacle)
	db, _ := Phase1(context.Background(), spec)
	tx2 := EvaluateBaseline(spec, db, uav.JetsonTX2())
	pulp := EvaluateBaseline(spec, db, uav.PULPDroNet())
	if tx2.Liftable && tx2.Missions() >= pulp.Missions() {
		t.Fatal("a 185 g TX2 on a 50 g nano must be worse than PULP")
	}
}

func TestAutoPilotBeatsAllBaselinesOnNano(t *testing.T) {
	// Fig. 5c: AutoPilot achieves ~2.3× the baseline mean on the nano
	rep := runNanoDense(t)
	spec := rep.Spec
	for _, b := range uav.Baselines() {
		sel := EvaluateBaseline(spec, rep.Database, b)
		if gain := MissionGain(rep.Selected, sel); gain < 1.5 {
			t.Errorf("AP gain over %s = %.2f, want > 1.5", b.Name, gain)
		}
	}
}

func TestFineTuneNeverWorse(t *testing.T) {
	rep := runNanoDense(t)
	// the selected design went through FineTune inside Phase3; re-running
	// FineTune must not degrade it
	tuned, err := FineTune(rep.Spec, rep.Selected, rep.F1)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Missions() < rep.Selected.Missions()-1e-9 {
		t.Fatalf("fine-tuning degraded missions: %g -> %g", rep.Selected.Missions(), tuned.Missions())
	}
}

func TestMissionGainGuards(t *testing.T) {
	a := Selection{Liftable: true}
	a.Profile.Missions = 4
	b := Selection{Liftable: true}
	b.Profile.Missions = 2
	if got := MissionGain(a, b); math.Abs(got-2) > 1e-12 {
		t.Fatalf("gain = %g", got)
	}
	if !math.IsInf(MissionGain(a, Selection{}), 1) {
		t.Fatal("gain over a grounded design must be +Inf")
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	spec := fastSpec(uav.ZhangNano(), airlearning.DenseObstacle)
	spec.Mission.DistanceM = -1
	if _, err := Run(context.Background(), spec); err == nil {
		t.Fatal("expected error")
	}
}

func TestMiniUAVPipeline(t *testing.T) {
	rep, err := Run(context.Background(), fastSpec(uav.AscTecPelican(), airlearning.MediumObstacle))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Selected.Liftable || rep.Selected.Missions() <= 0 {
		t.Fatal("mini-UAV selection must fly")
	}
	// medium scenario winner is L4F48 per §V-A
	if h := rep.Selected.Design.Design.Hyper; h.Layers != 4 || h.Filters != 48 {
		t.Fatalf("selected model = %v, want L4F48", h)
	}
}

func TestSensorFPSOverride(t *testing.T) {
	spec := fastSpec(uav.ZhangNano(), airlearning.DenseObstacle)
	spec.SensorFPS = 30
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Selected.ActionHz > 30 {
		t.Fatalf("action throughput %g exceeds the 30 FPS sensor", rep.Selected.ActionHz)
	}
}

func TestReportSummaryAndWriters(t *testing.T) {
	rep := runNanoDense(t)
	s := rep.Summary()
	if s.UAV == "" || s.Scenario == "" || s.Policies != 81 {
		t.Fatalf("summary header = %+v", s)
	}
	if s.Selected.Missions <= 0 || !s.Selected.Liftable {
		t.Fatalf("selected summary = %+v", s.Selected)
	}
	if len(s.Baselines) != 4 {
		t.Fatalf("baselines = %d, want 4 (Fig. 5 trio + Intel NCS)", len(s.Baselines))
	}

	var jsonBuf bytes.Buffer
	if err := rep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded ReportSummary
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if decoded.Selected.Model != s.Selected.Model {
		t.Fatal("JSON round trip lost the selected model")
	}

	var txt bytes.Buffer
	if err := rep.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"AutoPilot DSSoC co-design", "Selected (AP)", "missions per charge", "Baseline"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, txt.String())
		}
	}
}

func TestPipelineDeterministicForSeed(t *testing.T) {
	a, err := Run(context.Background(), fastSpec(uav.DJISpark(), airlearning.LowObstacle))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), fastSpec(uav.DJISpark(), airlearning.LowObstacle))
	if err != nil {
		t.Fatal(err)
	}
	if a.Selected.Design.Design.String() != b.Selected.Design.Design.String() {
		t.Fatalf("same seed selected different designs:\n%v\n%v",
			a.Selected.Design.Design, b.Selected.Design.Design)
	}
	if a.Selected.Missions() != b.Selected.Missions() {
		t.Fatal("same seed produced different mission counts")
	}
}
