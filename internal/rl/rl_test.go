package rl

import (
	"context"
	"errors"
	"testing"
	"time"

	"autopilot/internal/airlearning"
	"autopilot/internal/policy"
	"autopilot/internal/tensor"
)

func TestReplayBufferBasics(t *testing.T) {
	b := NewReplayBuffer(3)
	if b.Len() != 0 {
		t.Fatalf("empty Len = %d", b.Len())
	}
	for i := 0; i < 5; i++ {
		b.Add(Transition{Action: i})
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", b.Len())
	}
	// after wrap, actions 2,3,4 remain
	g := tensor.NewRNG(1)
	seen := map[int]bool{}
	for _, tr := range b.Sample(g, 100) {
		seen[tr.Action] = true
	}
	for a := range seen {
		if a < 2 {
			t.Fatalf("evicted transition %d still sampled", a)
		}
	}
}

func TestReplayBufferEmptySample(t *testing.T) {
	b := NewReplayBuffer(2)
	if got := b.Sample(tensor.NewRNG(1), 4); got != nil {
		t.Fatalf("Sample on empty = %v, want nil", got)
	}
}

func TestReplayBufferZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReplayBuffer(0)
}

func TestEpsilonDecay(t *testing.T) {
	g := tensor.NewRNG(1)
	online, err := policy.NewTrainable(policy.Hyper{Layers: 2, Filters: 32}, policy.DefaultTrainable(), g)
	if err != nil {
		t.Fatal(err)
	}
	target, err := policy.NewTrainable(policy.Hyper{Layers: 2, Filters: 32}, policy.DefaultTrainable(), g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultDQNConfig()
	cfg.EpsDecaySteps = 100
	d := NewDQN(online, target, cfg, 1)
	if d.Epsilon() != cfg.EpsStart {
		t.Fatalf("initial epsilon = %g", d.Epsilon())
	}
	d.steps = 50
	mid := d.Epsilon()
	if mid >= cfg.EpsStart || mid <= cfg.EpsEnd {
		t.Fatalf("mid epsilon = %g, want strictly between end and start", mid)
	}
	d.steps = 1000
	if diff := d.Epsilon() - cfg.EpsEnd; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("final epsilon = %g, want %g", d.Epsilon(), cfg.EpsEnd)
	}
}

func TestDQNTargetSyncOnConstruction(t *testing.T) {
	g := tensor.NewRNG(2)
	h := policy.Hyper{Layers: 3, Filters: 32}
	online, _ := policy.NewTrainable(h, policy.DefaultTrainable(), g)
	target, _ := policy.NewTrainable(h, policy.DefaultTrainable(), g)
	d := NewDQN(online, target, DefaultDQNConfig(), 1)
	env := airlearning.NewEnv(airlearning.LowObstacle, 1)
	obs := env.Reset()
	a := d.Online.Forward(obs.Image, obs.State)
	b := d.Target.Forward(obs.Image, obs.State)
	if !tensor.Equal(a, b, 1e-12) {
		t.Fatal("target must equal online after construction")
	}
}

func TestDQNTrainSmoke(t *testing.T) {
	g := tensor.NewRNG(3)
	h := policy.Hyper{Layers: 2, Filters: 32}
	online, _ := policy.NewTrainable(h, policy.DefaultTrainable(), g)
	target, _ := policy.NewTrainable(h, policy.DefaultTrainable(), g)
	cfg := DefaultDQNConfig()
	cfg.BatchSize = 4
	cfg.UpdateEvery = 8
	d := NewDQN(online, target, cfg, 3)
	env := airlearning.NewEnv(airlearning.LowObstacle, 3)
	stats := d.Train(env, 10)
	if stats.Episodes != 10 || stats.Steps <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestReinforceTrainEpisodeUpdatesParams(t *testing.T) {
	g := tensor.NewRNG(4)
	h := policy.Hyper{Layers: 2, Filters: 32}
	model, _ := policy.NewTrainable(h, policy.DefaultTrainable(), g)
	before := model.Params()[0].Clone()
	agent := NewReinforce(model, DefaultReinforceConfig(), 4)
	env := airlearning.NewEnv(airlearning.LowObstacle, 4)
	agent.TrainEpisode(env)
	if tensor.Equal(before, model.Params()[0], 0) {
		t.Fatal("training episode did not change parameters")
	}
}

func TestReinforcePolicySamplesValidActions(t *testing.T) {
	g := tensor.NewRNG(5)
	model, _ := policy.NewTrainable(policy.Hyper{Layers: 2, Filters: 32}, policy.DefaultTrainable(), g)
	agent := NewReinforce(model, DefaultReinforceConfig(), 5)
	env := airlearning.NewEnv(airlearning.LowObstacle, 5)
	obs := env.Reset()
	for i := 0; i < 50; i++ {
		a := agent.SamplingPolicy().Act(obs)
		if a < 0 || a >= airlearning.NumActions {
			t.Fatalf("sampled action %d out of range", a)
		}
		if g := agent.Policy().Act(obs); g < 0 || g >= airlearning.NumActions {
			t.Fatalf("greedy action %d out of range", g)
		}
	}
}

func TestDQNLearnsOnNavigationTask(t *testing.T) {
	if testing.Short() {
		t.Skip("training run; skipped with -short")
	}
	// A small arena keeps the task learnable in a few hundred episodes.
	cfg := airlearning.LowObstacle.Config()
	cfg.ArenaW, cfg.ArenaH = 13, 13
	cfg.RandomMax = 2
	cfg.MaxSteps = 50
	env := airlearning.NewEnvWithConfig(airlearning.LowObstacle, cfg, 6)

	g := tensor.NewRNG(6)
	h := policy.Hyper{Layers: 2, Filters: 32}
	online, _ := policy.NewTrainable(h, policy.DefaultTrainable(), g)
	target, _ := policy.NewTrainable(h, policy.DefaultTrainable(), g)
	dcfg := DefaultDQNConfig()
	dcfg.EpsDecaySteps = 2500
	agent := NewDQN(online, target, dcfg, 6)

	evalEnv := airlearning.NewEnvWithConfig(airlearning.LowObstacle, cfg, 1006)
	before := airlearning.SuccessRate(evalEnv, agent.Policy(), 30)
	agent.Train(env, 250)
	after := airlearning.SuccessRate(evalEnv, agent.Policy(), 30)
	if after <= before && after < 0.4 {
		t.Fatalf("DQN did not learn: success before %.2f, after %.2f", before, after)
	}
}

func TestEngineTrainProducesValidRecord(t *testing.T) {
	cfg := TrainConfig{Algorithm: AlgDQN, Episodes: 5, EvalEpisodes: 5, Seed: 7}
	rec, pol, err := Engine(cfg).Train(context.Background(), policy.Hyper{Layers: 3, Filters: 32}, airlearning.MediumObstacle)
	if err != nil {
		t.Fatal(err)
	}
	if pol == nil {
		t.Fatal("nil policy")
	}
	if rec.Params <= 0 || rec.TrainSteps <= 0 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.SuccessRate < 0 || rec.SuccessRate > 1 {
		t.Fatalf("success rate %g outside [0,1]", rec.SuccessRate)
	}
}

func TestEngineTrainReinforce(t *testing.T) {
	cfg := TrainConfig{Algorithm: AlgReinforce, Episodes: 3, EvalEpisodes: 3, Seed: 8}
	rec, _, err := Engine(cfg).Train(context.Background(), policy.Hyper{Layers: 2, Filters: 32}, airlearning.LowObstacle)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Scenario != airlearning.LowObstacle {
		t.Fatalf("record scenario = %v", rec.Scenario)
	}
}

func TestEngineTrainRejectsBadConfig(t *testing.T) {
	ctx := context.Background()
	if _, _, err := Engine(TrainConfig{}).Train(ctx, policy.Hyper{Layers: 2, Filters: 32}, airlearning.LowObstacle); err == nil {
		t.Fatal("expected error for zero budget")
	}
	bad := TrainConfig{Algorithm: Algorithm(99), Episodes: 1, EvalEpisodes: 1}
	if _, _, err := Engine(bad).Train(ctx, policy.Hyper{Layers: 2, Filters: 32}, airlearning.LowObstacle); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestEngineTrainHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A budget far beyond what could finish promptly: only cancellation
	// between episodes can make this return quickly.
	cfg := TrainConfig{Algorithm: AlgDQN, Episodes: 1_000_000, EvalEpisodes: 10, Seed: 9}
	start := time.Now()
	_, _, err := Engine(cfg).Train(ctx, policy.Hyper{Layers: 2, Filters: 32}, airlearning.LowObstacle)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run took %v, want prompt return", elapsed)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if AlgDQN.String() != "dqn" || AlgReinforce.String() != "reinforce" {
		t.Fatal("bad algorithm names")
	}
}

func TestDoubleDQNTrainsAndDiffersFromVanilla(t *testing.T) {
	run := func(double bool) float64 {
		g := tensor.NewRNG(21)
		h := policy.Hyper{Layers: 2, Filters: 32}
		online, _ := policy.NewTrainable(h, policy.DefaultTrainable(), g)
		target, _ := policy.NewTrainable(h, policy.DefaultTrainable(), g)
		cfg := DefaultDQNConfig()
		cfg.Double = double
		cfg.BatchSize, cfg.UpdateEvery = 4, 2
		cfg.LearnStart = 4
		cfg.TargetSync = 20
		agent := NewDQN(online, target, cfg, 21)
		env := airlearning.NewEnv(airlearning.LowObstacle, 21)
		agent.Train(env, 20)
		// fingerprint the resulting parameters
		sum := 0.0
		for _, p := range agent.Online.Params() {
			sum += p.Sum()
		}
		return sum
	}
	vanilla, double := run(false), run(true)
	if vanilla == double {
		t.Fatal("Double DQN must produce different updates than vanilla DQN")
	}
}
