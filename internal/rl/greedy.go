package rl

import (
	"autopilot/internal/airlearning"
	"autopilot/internal/nn"
	"autopilot/internal/tensor"
)

// GreedyPolicy is the frozen-network deployment policy: the argmax action
// under the network's values/logits, evaluated through the cache-free
// batched forward. One instance is safe for concurrent rollout workers, and
// it implements airlearning.BatchPolicy so the training engine's collector
// prices a whole lockstep batch of action selections in a single pass.
type GreedyPolicy struct {
	Net *nn.MultiModal
}

// Act returns the argmax action for one observation.
func (g GreedyPolicy) Act(obs airlearning.Observation) int {
	return g.Net.ForwardBatch(
		[]*tensor.Tensor{obs.Image}, []*tensor.Tensor{obs.State})[0].ArgMax()
}

// ActBatch returns the argmax action for every observation via one batched
// forward.
func (g GreedyPolicy) ActBatch(obs []airlearning.Observation) []int {
	imgs := make([]*tensor.Tensor, len(obs))
	states := make([]*tensor.Tensor, len(obs))
	for i, o := range obs {
		imgs[i], states[i] = o.Image, o.State
	}
	outs := g.Net.ForwardBatch(imgs, states)
	acts := make([]int, len(outs))
	for i, q := range outs {
		acts[i] = q.ArgMax()
	}
	return acts
}
