package rl

import (
	"math"

	"autopilot/internal/airlearning"
	"autopilot/internal/nn"
	"autopilot/internal/tensor"
	"autopilot/internal/train"
)

// ReinforceConfig holds REINFORCE hyper-parameters.
type ReinforceConfig struct {
	Gamma       float64
	LR          float64
	Baseline    float64 // EMA smoothing for the return baseline
	MaxGradNorm float64
}

// DefaultReinforceConfig returns settings tuned for the grid-world task.
func DefaultReinforceConfig() ReinforceConfig {
	return ReinforceConfig{Gamma: 0.97, LR: 5e-4, Baseline: 0.9, MaxGradNorm: 5}
}

// step is one on-policy trajectory entry.
type step struct {
	obs    airlearning.Observation
	action int
	reward float64
}

// Reinforce is a Monte-Carlo policy-gradient agent with an exponential
// moving-average return baseline. It accumulates the on-policy trajectory
// transition by transition (Observe) and applies the policy-gradient update
// at the episode boundary (EndEpisode).
type Reinforce struct {
	Model *nn.MultiModal

	cfg      ReinforceConfig
	opt      *nn.Adam
	rng      *tensor.RNG
	baseline float64
	primed   bool
	traj     []step
}

// NewReinforce wraps a policy network.
func NewReinforce(model *nn.MultiModal, cfg ReinforceConfig, seed int64) *Reinforce {
	return &Reinforce{Model: model, cfg: cfg, opt: nn.NewAdam(cfg.LR), rng: tensor.NewRNG(seed)}
}

// Name identifies the algorithm for the training engine's progress reports.
func (r *Reinforce) Name() string { return AlgReinforce.String() }

// sampleAction draws from the softmax policy.
func (r *Reinforce) sampleAction(obs airlearning.Observation) int {
	p := nn.Softmax(r.Model.Forward(obs.Image, obs.State))
	u := r.rng.Float64()
	acc := 0.0
	for i, v := range p.Data() {
		acc += v
		if u < acc {
			return i
		}
	}
	return p.Len() - 1
}

// Act samples the behavior-policy action.
func (r *Reinforce) Act(obs airlearning.Observation) int { return r.sampleAction(obs) }

// Observe appends the transition to the current on-policy trajectory.
func (r *Reinforce) Observe(t Transition) {
	r.traj = append(r.traj, step{obs: t.Obs, action: t.Action, reward: t.Reward})
}

// EndEpisode applies the policy-gradient update over the completed
// trajectory: discounted returns-to-go against the EMA baseline, one
// clipped Adam step.
func (r *Reinforce) EndEpisode(airlearning.EpisodeResult) {
	if len(r.traj) == 0 {
		return
	}
	// discounted returns-to-go
	G := make([]float64, len(r.traj))
	g := 0.0
	for i := len(r.traj) - 1; i >= 0; i-- {
		g = r.traj[i].reward + r.cfg.Gamma*g
		G[i] = g
	}
	if !r.primed {
		r.baseline, r.primed = G[0], true
	} else {
		r.baseline = r.cfg.Baseline*r.baseline + (1-r.cfg.Baseline)*G[0]
	}
	r.Model.ZeroGrads()
	scale := 1.0 / float64(len(r.traj))
	for i, s := range r.traj {
		logits := r.Model.Forward(s.obs.Image, s.obs.State)
		adv := G[i] - r.baseline*math.Pow(r.cfg.Gamma, float64(i))
		_, grad := nn.PolicyGradientLoss(logits, s.action, adv*scale)
		r.Model.Backward(grad)
	}
	nn.ClipGrads(r.Model.Grads(), r.cfg.MaxGradNorm)
	r.opt.Step(r.Model.Params(), r.Model.Grads())
	r.traj = r.traj[:0]
}

// SamplingPolicy returns the stochastic softmax policy — the behavior
// policy, for callers that want exploration at evaluation time.
func (r *Reinforce) SamplingPolicy() airlearning.Policy {
	return airlearning.PolicyFunc(func(obs airlearning.Observation) int { return r.sampleAction(obs) })
}

// Policy returns the frozen greedy (argmax) deployment policy, safe for
// concurrent batched evaluation rollouts.
func (r *Reinforce) Policy() airlearning.Policy {
	return GreedyPolicy{Net: r.Model}
}

// TrainEpisode rolls out one episode through the engine's shared loop and
// applies the policy-gradient update. It returns the undiscounted episode
// return.
func (r *Reinforce) TrainEpisode(env *airlearning.Env) float64 {
	return train.RunTrainingEpisode(env, r).Return
}

// Train runs the agent for the given number of episodes.
func (r *Reinforce) Train(env *airlearning.Env, episodes int) TrainStats {
	return runEpisodes(env, r, episodes)
}
