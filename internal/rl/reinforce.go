package rl

import (
	"math"

	"autopilot/internal/airlearning"
	"autopilot/internal/nn"
	"autopilot/internal/tensor"
)

// ReinforceConfig holds REINFORCE hyper-parameters.
type ReinforceConfig struct {
	Gamma       float64
	LR          float64
	Baseline    float64 // EMA smoothing for the return baseline
	MaxGradNorm float64
}

// DefaultReinforceConfig returns settings tuned for the grid-world task.
func DefaultReinforceConfig() ReinforceConfig {
	return ReinforceConfig{Gamma: 0.97, LR: 5e-4, Baseline: 0.9, MaxGradNorm: 5}
}

// Reinforce is a Monte-Carlo policy-gradient agent with an exponential
// moving-average return baseline.
type Reinforce struct {
	Model *nn.MultiModal

	cfg      ReinforceConfig
	opt      *nn.Adam
	rng      *tensor.RNG
	baseline float64
	primed   bool
}

// NewReinforce wraps a policy network.
func NewReinforce(model *nn.MultiModal, cfg ReinforceConfig, seed int64) *Reinforce {
	return &Reinforce{Model: model, cfg: cfg, opt: nn.NewAdam(cfg.LR), rng: tensor.NewRNG(seed)}
}

// sampleAction draws from the softmax policy.
func (r *Reinforce) sampleAction(obs airlearning.Observation) int {
	p := nn.Softmax(r.Model.Forward(obs.Image, obs.State))
	u := r.rng.Float64()
	acc := 0.0
	for i, v := range p.Data() {
		acc += v
		if u < acc {
			return i
		}
	}
	return p.Len() - 1
}

// Policy returns the stochastic policy for evaluation.
func (r *Reinforce) Policy() airlearning.Policy {
	return airlearning.PolicyFunc(func(obs airlearning.Observation) int { return r.sampleAction(obs) })
}

// GreedyPolicy returns the argmax policy for evaluation.
func (r *Reinforce) GreedyPolicy() airlearning.Policy {
	return airlearning.PolicyFunc(func(obs airlearning.Observation) int {
		return r.Model.Forward(obs.Image, obs.State).ArgMax()
	})
}

// TrainEpisode rolls out one episode and applies the policy-gradient update.
// It returns the undiscounted episode return.
func (r *Reinforce) TrainEpisode(env *airlearning.Env) float64 {
	type step struct {
		obs    airlearning.Observation
		action int
		reward float64
	}
	var traj []step
	obs := env.Reset()
	ret := 0.0
	for {
		a := r.sampleAction(obs)
		next, rew, done := env.Step(a)
		traj = append(traj, step{obs, a, rew})
		ret += rew
		obs = next
		if done {
			break
		}
	}
	// discounted returns-to-go
	G := make([]float64, len(traj))
	g := 0.0
	for i := len(traj) - 1; i >= 0; i-- {
		g = traj[i].reward + r.cfg.Gamma*g
		G[i] = g
	}
	if !r.primed {
		r.baseline, r.primed = G[0], true
	} else {
		r.baseline = r.cfg.Baseline*r.baseline + (1-r.cfg.Baseline)*G[0]
	}
	r.Model.ZeroGrads()
	scale := 1.0 / float64(len(traj))
	for i, s := range traj {
		logits := r.Model.Forward(s.obs.Image, s.obs.State)
		adv := G[i] - r.baseline*math.Pow(r.cfg.Gamma, float64(i))
		_, grad := nn.PolicyGradientLoss(logits, s.action, adv*scale)
		r.Model.Backward(grad)
	}
	nn.ClipGrads(r.Model.Grads(), r.cfg.MaxGradNorm)
	r.opt.Step(r.Model.Params(), r.Model.Grads())
	return ret
}

// Train runs the agent for the given number of episodes.
func (r *Reinforce) Train(env *airlearning.Env, episodes int) TrainStats {
	var stats TrainStats
	tail := episodes / 5
	if tail == 0 {
		tail = 1
	}
	var tailReturn float64
	var tailWins int
	for ep := 0; ep < episodes; ep++ {
		ret := r.TrainEpisode(env)
		if ep >= episodes-tail {
			tailReturn += ret
			if env.OutcomeNow() == airlearning.Success {
				tailWins++
			}
		}
	}
	stats.Episodes = episodes
	stats.MeanReturn = tailReturn / float64(tail)
	stats.SuccessRate = float64(tailWins) / float64(tail)
	return stats
}
