package rl

import (
	"math"

	"autopilot/internal/airlearning"
	"autopilot/internal/nn"
	"autopilot/internal/tensor"
)

// DQNConfig holds the DQN hyper-parameters.
type DQNConfig struct {
	Gamma         float64 // discount factor
	LR            float64 // Adam learning rate
	EpsStart      float64 // initial exploration rate
	EpsEnd        float64 // final exploration rate
	EpsDecaySteps int     // env steps over which epsilon anneals linearly
	BufferSize    int     // replay capacity
	BatchSize     int     // transitions per update
	TargetSync    int     // env steps between target-network syncs
	LearnStart    int     // env steps before updates begin
	UpdateEvery   int     // env steps between gradient updates
	MaxGradNorm   float64 // gradient clipping threshold
	Double        bool    // Double DQN: online net selects, target net evaluates
}

// DefaultDQNConfig returns settings tuned for the grid-world navigation task.
func DefaultDQNConfig() DQNConfig {
	return DQNConfig{
		Gamma:         0.97,
		LR:            1e-3,
		EpsStart:      1.0,
		EpsEnd:        0.05,
		EpsDecaySteps: 4000,
		BufferSize:    5000,
		BatchSize:     16,
		TargetSync:    250,
		LearnStart:    200,
		UpdateEvery:   2,
		MaxGradNorm:   5,
	}
}

// DQN is a Deep Q-Network agent over the multi-modal policy template.
type DQN struct {
	Online *nn.MultiModal
	Target *nn.MultiModal

	cfg    DQNConfig
	opt    *nn.Adam
	buffer *ReplayBuffer
	rng    *tensor.RNG
	steps  int
}

// NewDQN wraps an online/target network pair. The target is immediately
// synchronized to the online network.
func NewDQN(online, target *nn.MultiModal, cfg DQNConfig, seed int64) *DQN {
	target.CopyParamsFrom(online)
	return &DQN{
		Online: online,
		Target: target,
		cfg:    cfg,
		opt:    nn.NewAdam(cfg.LR),
		buffer: NewReplayBuffer(cfg.BufferSize),
		rng:    tensor.NewRNG(seed),
	}
}

// Epsilon returns the current exploration rate.
func (d *DQN) Epsilon() float64 {
	frac := float64(d.steps) / float64(d.cfg.EpsDecaySteps)
	if frac > 1 {
		frac = 1
	}
	return d.cfg.EpsStart + frac*(d.cfg.EpsEnd-d.cfg.EpsStart)
}

// Act selects an epsilon-greedy action.
func (d *DQN) Act(obs airlearning.Observation) int {
	if d.rng.Float64() < d.Epsilon() {
		return d.rng.Intn(airlearning.NumActions)
	}
	return d.Greedy(obs)
}

// Greedy returns the argmax-Q action.
func (d *DQN) Greedy(obs airlearning.Observation) int {
	return d.Online.Forward(obs.Image, obs.State).ArgMax()
}

// Name identifies the algorithm for the training engine's progress reports.
func (d *DQN) Name() string { return AlgDQN.String() }

// Policy returns the frozen greedy deployment policy, safe for concurrent
// batched evaluation rollouts.
func (d *DQN) Policy() airlearning.Policy {
	return GreedyPolicy{Net: d.Online}
}

// Observe records a transition and runs updates on schedule — the hook the
// training engine streams rollout transitions into.
func (d *DQN) Observe(t Transition) {
	d.buffer.Add(t)
	d.steps++
	if d.steps >= d.cfg.LearnStart && d.steps%d.cfg.UpdateEvery == 0 {
		d.update()
	}
	if d.steps%d.cfg.TargetSync == 0 {
		d.Target.CopyParamsFrom(d.Online)
	}
}

// EndEpisode is a no-op: DQN updates on its per-step schedule.
func (d *DQN) EndEpisode(airlearning.EpisodeResult) {}

// update performs one minibatch Q-learning step.
func (d *DQN) update() {
	batch := d.buffer.Sample(d.rng, d.cfg.BatchSize)
	d.Online.ZeroGrads()
	for _, t := range batch {
		target := t.Reward
		if !t.Done {
			tq := d.Target.Forward(t.Next.Image, t.Next.State)
			if d.cfg.Double {
				// Double DQN: decouple action selection (online) from value
				// estimation (target) to curb maximization bias.
				a := d.Online.Forward(t.Next.Image, t.Next.State).ArgMax()
				target += d.cfg.Gamma * tq.Data()[a]
			} else {
				best, _ := tq.Max()
				target += d.cfg.Gamma * best
			}
		}
		q := d.Online.Forward(t.Obs.Image, t.Obs.State)
		// gradient only on the taken action, Huber-style
		grad := tensor.New(q.Len())
		diff := q.Data()[t.Action] - target
		grad.Data()[t.Action] = clamp(diff, -1, 1) / float64(len(batch))
		d.Online.Backward(grad)
	}
	nn.ClipGrads(d.Online.Grads(), d.cfg.MaxGradNorm)
	d.opt.Step(d.Online.Params(), d.Online.Grads())
}

// TrainStats summarizes a training run.
type TrainStats struct {
	Episodes    int
	Steps       int
	MeanReturn  float64 // mean return over the last 20% of episodes
	SuccessRate float64 // success over the last 20% of episodes
}

// Train runs the agent for the given number of episodes and returns stats.
// The episode loop is the engine's shared one (train.RunTrainingEpisode);
// Train remains for direct, single-run use.
func (d *DQN) Train(env *airlearning.Env, episodes int) TrainStats {
	return runEpisodes(env, d, episodes)
}

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}
