// Package rl implements the reinforcement-learning algorithms Phase 1 uses
// to train E2E navigation policies on the airlearning simulator: DQN with a
// replay buffer and target network, and REINFORCE with a baseline. Both
// operate on the multi-modal policy template and plug into the Phase-1
// training engine (internal/train) behind its Algorithm interface, via
// Factory.
package rl

import (
	"autopilot/internal/airlearning"
	"autopilot/internal/tensor"
)

// Transition is one (s, a, r, s', done) tuple. It is an alias for the
// environment-level airlearning.Transition the training engine streams.
type Transition = airlearning.Transition

// ReplayBuffer is a fixed-capacity ring buffer of transitions.
type ReplayBuffer struct {
	data []Transition
	idx  int
	n    int
}

// NewReplayBuffer returns a buffer holding at most capacity transitions.
func NewReplayBuffer(capacity int) *ReplayBuffer {
	if capacity <= 0 {
		panic("rl: replay buffer capacity must be positive")
	}
	return &ReplayBuffer{data: make([]Transition, capacity)}
}

// Add appends a transition, evicting the oldest once full.
func (b *ReplayBuffer) Add(t Transition) {
	b.data[b.idx] = t
	b.idx = (b.idx + 1) % len(b.data)
	if b.n < len(b.data) {
		b.n++
	}
}

// Len returns the number of stored transitions.
func (b *ReplayBuffer) Len() int { return b.n }

// Sample draws n transitions uniformly with replacement.
func (b *ReplayBuffer) Sample(g *tensor.RNG, n int) []Transition {
	if b.n == 0 {
		return nil
	}
	out := make([]Transition, n)
	for i := range out {
		out[i] = b.data[g.Intn(b.n)]
	}
	return out
}
