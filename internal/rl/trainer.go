package rl

import (
	"fmt"

	"autopilot/internal/airlearning"
	"autopilot/internal/policy"
	"autopilot/internal/tensor"
	"autopilot/internal/train"
)

// Algorithm selects the RL method for Phase 1 training.
type Algorithm int

// Supported training algorithms.
const (
	AlgDQN Algorithm = iota
	AlgReinforce
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgDQN:
		return "dqn"
	case AlgReinforce:
		return "reinforce"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// TrainConfig parameterizes one Phase-1 training run.
type TrainConfig struct {
	Algorithm    Algorithm
	Episodes     int
	EvalEpisodes int
	Seed         int64
}

// DefaultTrainConfig returns a laptop-scale training budget.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Algorithm: AlgDQN, Episodes: 300, EvalEpisodes: 50, Seed: 1}
}

// Factory adapts cfg.Algorithm into the training engine's constructor seam:
// the returned train.Factory builds a fresh agent for each (hyper, seed)
// run. Construction is deterministic in the arguments alone — the same
// (hyper, seed) yields a bitwise-identical agent on any worker.
func Factory(cfg TrainConfig) train.Factory {
	return func(h policy.Hyper, seed int64) (train.Algorithm, error) {
		rng := tensor.NewRNG(seed)
		tcfg := policy.DefaultTrainable()
		switch cfg.Algorithm {
		case AlgDQN:
			online, err := policy.NewTrainable(h, tcfg, rng)
			if err != nil {
				return nil, err
			}
			target, err := policy.NewTrainable(h, tcfg, rng)
			if err != nil {
				return nil, err
			}
			return NewDQN(online, target, DefaultDQNConfig(), seed), nil
		case AlgReinforce:
			model, err := policy.NewTrainable(h, tcfg, rng)
			if err != nil {
				return nil, err
			}
			return NewReinforce(model, DefaultReinforceConfig(), seed), nil
		default:
			return nil, fmt.Errorf("rl: unknown algorithm %v", cfg.Algorithm)
		}
	}
}

// Engine returns a single-worker training engine for cfg — the common
// wiring behind cmd/trainsim's single-run path. Call Train on it for one
// (hyper, scenario) run, or build a custom train.Config with Factory for
// sweeps.
func Engine(cfg TrainConfig) *train.Engine {
	return train.New(Factory(cfg), train.Config{
		Episodes:     cfg.Episodes,
		EvalEpisodes: cfg.EvalEpisodes,
		Seed:         cfg.Seed,
		Workers:      1,
	})
}

// runEpisodes drives an agent through the engine's shared episode loop and
// summarizes the run, keeping the historical Train tail statistics: mean
// return and success rate over the final 20% of episodes.
func runEpisodes(env *airlearning.Env, alg train.Algorithm, episodes int) TrainStats {
	var stats TrainStats
	tail := episodes / 5
	if tail == 0 {
		tail = 1
	}
	var tailReturn float64
	var tailWins int
	for ep := 0; ep < episodes; ep++ {
		res := train.RunTrainingEpisode(env, alg)
		stats.Steps += res.Steps
		if ep >= episodes-tail {
			tailReturn += res.Return
			if res.Outcome == airlearning.Success {
				tailWins++
			}
		}
	}
	stats.Episodes = episodes
	stats.MeanReturn = tailReturn / float64(tail)
	stats.SuccessRate = float64(tailWins) / float64(tail)
	return stats
}
