package rl

import (
	"fmt"

	"autopilot/internal/airlearning"
	"autopilot/internal/policy"
	"autopilot/internal/tensor"
)

// Algorithm selects the RL method for Phase 1 training.
type Algorithm int

// Supported training algorithms.
const (
	AlgDQN Algorithm = iota
	AlgReinforce
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgDQN:
		return "dqn"
	case AlgReinforce:
		return "reinforce"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// TrainConfig parameterizes one Phase-1 training run.
type TrainConfig struct {
	Algorithm    Algorithm
	Episodes     int
	EvalEpisodes int
	Seed         int64
}

// DefaultTrainConfig returns a laptop-scale training budget.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Algorithm: AlgDQN, Episodes: 300, EvalEpisodes: 50, Seed: 1}
}

// TrainPolicy trains one E2E model variant on a scenario and returns the
// validated database record plus the greedy policy — the unit of work Phase 1
// launches for each template point.
func TrainPolicy(h policy.Hyper, s airlearning.Scenario, cfg TrainConfig) (airlearning.Record, airlearning.Policy, error) {
	if cfg.Episodes <= 0 || cfg.EvalEpisodes <= 0 {
		return airlearning.Record{}, nil, fmt.Errorf("rl: non-positive training budget %+v", cfg)
	}
	rng := tensor.NewRNG(cfg.Seed)
	tcfg := policy.DefaultTrainable()
	env := airlearning.NewEnv(s, cfg.Seed)

	var pol airlearning.Policy
	var steps int
	switch cfg.Algorithm {
	case AlgDQN:
		online, err := policy.NewTrainable(h, tcfg, rng)
		if err != nil {
			return airlearning.Record{}, nil, err
		}
		target, err := policy.NewTrainable(h, tcfg, rng)
		if err != nil {
			return airlearning.Record{}, nil, err
		}
		agent := NewDQN(online, target, DefaultDQNConfig(), cfg.Seed)
		stats := agent.Train(env, cfg.Episodes)
		steps = stats.Steps
		pol = agent.Policy()
	case AlgReinforce:
		model, err := policy.NewTrainable(h, tcfg, rng)
		if err != nil {
			return airlearning.Record{}, nil, err
		}
		agent := NewReinforce(model, DefaultReinforceConfig(), cfg.Seed)
		agent.Train(env, cfg.Episodes)
		steps = cfg.Episodes
		pol = agent.GreedyPolicy()
	default:
		return airlearning.Record{}, nil, fmt.Errorf("rl: unknown algorithm %v", cfg.Algorithm)
	}

	evalEnv := airlearning.NewEnv(s, cfg.Seed+1000)
	rate := airlearning.SuccessRate(evalEnv, pol, cfg.EvalEpisodes)
	params := int64(0)
	if n, err := policy.Build(h, policy.DefaultTemplate()); err == nil {
		params = n.Params()
	}
	rec := airlearning.Record{
		Hyper:       h,
		Scenario:    s,
		SuccessRate: rate,
		Params:      params,
		TrainSteps:  steps,
	}
	return rec, pol, nil
}
