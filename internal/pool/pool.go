// Package pool provides the bounded worker pool behind AutoPilot's parallel
// evaluation engine. Every fan-out in the pipeline — the Phase-1 training
// sweep, the Phase-2 initial-sample batch, the deterministic probe sweep and
// the baseline evaluations — funnels through Map, which guarantees:
//
//   - bounded concurrency (default runtime.NumCPU());
//   - results re-assembled in submission order, so downstream consumers
//     (Pareto extraction, hypervolume traces) see exactly the sequence a
//     sequential run would have produced;
//   - prompt drain on context cancellation, returning an error that wraps
//     ctx.Err().
//
// Work functions must be deterministic in their input alone (derive any
// seeds from item identity, never from goroutine or completion order) for
// the bitwise-determinism guarantee to hold across worker counts.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.NumCPU().
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// Map applies fn to every item on at most `workers` goroutines (<= 0 means
// runtime.NumCPU()) and returns the outputs in submission order. The first
// error cancels the remaining work, drains the pool, and is returned; if the
// context is cancelled first, the returned error wraps ctx.Err().
func Map[I, O any](ctx context.Context, workers int, items []I, fn func(context.Context, I) (O, error)) ([]O, error) {
	out := make([]O, len(items))
	if len(items) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("pool: cancelled: %w", err)
		}
		return out, nil
	}
	workers = Workers(workers)
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 1 {
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("pool: cancelled: %w", err)
			}
			o, err := fn(ctx, item)
			if err != nil {
				return nil, err
			}
			out[i] = o
		}
		return out, nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if wctx.Err() != nil {
					return
				}
				o, err := fn(wctx, items[i])
				if err != nil {
					fail(err)
					return
				}
				out[i] = o // distinct slot per item: no lock needed
			}
		}()
	}
	for i := range items {
		if wctx.Err() != nil {
			break
		}
		select {
		case idx <- i:
		case <-wctx.Done():
		}
	}
	close(idx)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pool: cancelled: %w", err)
	}
	return out, nil
}

// ForEach is Map for side-effecting work without a result value.
func ForEach[I any](ctx context.Context, workers int, items []I, fn func(context.Context, I) error) error {
	_, err := Map(ctx, workers, items, func(ctx context.Context, item I) (struct{}, error) {
		return struct{}{}, fn(ctx, item)
	})
	return err
}
