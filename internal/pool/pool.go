// Package pool provides the bounded worker pool behind AutoPilot's parallel
// evaluation engine. Every fan-out in the pipeline — the Phase-1 training
// sweep, the Phase-2 initial-sample batch, the deterministic probe sweep and
// the baseline evaluations — funnels through Map, which guarantees:
//
//   - bounded concurrency (default runtime.NumCPU());
//   - results re-assembled in submission order, so downstream consumers
//     (Pareto extraction, hypervolume traces) see exactly the sequence a
//     sequential run would have produced;
//   - prompt drain on context cancellation, returning an error that wraps
//     ctx.Err();
//   - panic isolation: a worker panic is recovered into a typed
//     *fault.PanicError carrying the stack and item index, so a crashing job
//     becomes an error — never a process death that discards the batch.
//
// Map is fail-fast (the first error cancels the batch); MapEach isolates
// per-item failures for sweeps that degrade gracefully instead of aborting.
//
// Work functions must be deterministic in their input alone (derive any
// seeds from item identity, never from goroutine or completion order) for
// the bitwise-determinism guarantee to hold across worker counts.
package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"autopilot/internal/fault"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.NumCPU().
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// call runs fn on one item with panic isolation: a panic is recovered into a
// *fault.PanicError recording the item index and stack.
func call[I, O any](ctx context.Context, i int, item I, fn func(context.Context, I) (O, error)) (o O, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("pool: item %d panicked: %w",
				i, &fault.PanicError{Value: v, Stack: debug.Stack(), Index: i})
		}
	}()
	return fn(ctx, item)
}

// finish resolves Map's terminal error: when a worker failed *and* the
// parent context was cancelled, the worker's error wins (it is the root
// cause — cancellation may merely be its consequence) but the context error
// is attached so errors.Is(err, context.Canceled) still reports correctly.
func finish(ctx context.Context, firstErr error) error {
	ctxErr := ctx.Err()
	if firstErr != nil {
		if ctxErr != nil && !errors.Is(firstErr, ctxErr) {
			return fmt.Errorf("%w (context also cancelled: %w)", firstErr, ctxErr)
		}
		return firstErr
	}
	if ctxErr != nil {
		return fmt.Errorf("pool: cancelled: %w", ctxErr)
	}
	return nil
}

// Map applies fn to every item on at most `workers` goroutines (<= 0 means
// runtime.NumCPU()) and returns the outputs in submission order. The first
// error (a worker panic counts, as a *fault.PanicError) cancels the
// remaining work, drains the pool, and is returned; if the context is
// cancelled first, the returned error wraps ctx.Err().
func Map[I, O any](ctx context.Context, workers int, items []I, fn func(context.Context, I) (O, error)) ([]O, error) {
	out := make([]O, len(items))
	if len(items) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("pool: cancelled: %w", err)
		}
		return out, nil
	}
	workers = Workers(workers)
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 1 {
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("pool: cancelled: %w", err)
			}
			o, err := call(ctx, i, item, fn)
			if err != nil {
				return nil, finish(ctx, err)
			}
			out[i] = o
		}
		return out, nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if wctx.Err() != nil {
					return
				}
				o, err := call(wctx, i, items[i], fn)
				if err != nil {
					fail(err)
					return
				}
				out[i] = o // distinct slot per item: no lock needed
			}
		}()
	}
	for i := range items {
		if wctx.Err() != nil {
			break
		}
		select {
		case idx <- i:
		case <-wctx.Done():
		}
	}
	close(idx)
	wg.Wait()

	if err := finish(ctx, firstErr); err != nil {
		return nil, err
	}
	return out, nil
}

// MapEach applies fn to every item like Map, but isolates failures instead
// of failing fast: a failing (or panicking) item records its error in the
// returned error slice and the rest of the batch keeps running. Outputs and
// errors are index-aligned with items — errs[i] == nil means out[i] is
// valid. Only context cancellation stops the batch early; the terminal
// error is non-nil exactly in that case and wraps ctx.Err(). This is the
// fan-out graceful-degradation sweeps build on.
func MapEach[I, O any](ctx context.Context, workers int, items []I, fn func(context.Context, I) (O, error)) ([]O, []error, error) {
	out := make([]O, len(items))
	errs := make([]error, len(items))
	if len(items) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("pool: cancelled: %w", err)
		}
		return out, errs, nil
	}
	workers = Workers(workers)
	if workers > len(items) {
		workers = len(items)
	}
	run := func(i int) {
		out[i], errs[i] = call(ctx, i, items[i], fn)
	}
	if workers == 1 {
		for i := range items {
			if err := ctx.Err(); err != nil {
				return nil, nil, fmt.Errorf("pool: cancelled: %w", err)
			}
			run(i)
		}
		return out, errs, nil
	}

	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					return
				}
				run(i)
			}
		}()
	}
	for i := range items {
		if ctx.Err() != nil {
			break
		}
		select {
		case idx <- i:
		case <-ctx.Done():
		}
	}
	close(idx)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("pool: cancelled: %w", err)
	}
	return out, errs, nil
}

// ForEach is Map for side-effecting work without a result value.
func ForEach[I any](ctx context.Context, workers int, items []I, fn func(context.Context, I) error) error {
	_, err := Map(ctx, workers, items, func(ctx context.Context, item I) (struct{}, error) {
		return struct{}{}, fn(ctx, item)
	})
	return err
}
