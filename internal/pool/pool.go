// Package pool provides the bounded worker pool behind AutoPilot's parallel
// evaluation engine. Every fan-out in the pipeline — the Phase-1 training
// sweep, the Phase-2 initial-sample batch, the deterministic probe sweep and
// the baseline evaluations — funnels through Map, which guarantees:
//
//   - bounded concurrency (default runtime.NumCPU());
//   - results re-assembled in submission order, so downstream consumers
//     (Pareto extraction, hypervolume traces) see exactly the sequence a
//     sequential run would have produced;
//   - prompt drain on context cancellation, returning an error that wraps
//     ctx.Err();
//   - panic isolation: a worker panic is recovered into a typed
//     *fault.PanicError carrying the stack and item index, so a crashing job
//     becomes an error — never a process death that discards the batch.
//
// Map is fail-fast (the first error cancels the batch); MapEach isolates
// per-item failures for sweeps that degrade gracefully instead of aborting.
//
// When the context carries an obs.Observer the pool reports per-batch
// telemetry — completed jobs, recovered panics, and per-worker busy/idle
// time — under the pool.* instruments; without one, no clocks are read.
//
// Work functions must be deterministic in their input alone (derive any
// seeds from item identity, never from goroutine or completion order) for
// the bitwise-determinism guarantee to hold across worker counts.
package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"autopilot/internal/fault"
	"autopilot/internal/obs"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.NumCPU().
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// metrics are the pool's per-batch instruments, resolved once per Map call
// from the context's observer. The zero value (no observer) no-ops and skips
// the clock reads entirely, keeping the uninstrumented fan-out path free of
// timing overhead.
type metrics struct {
	jobs   *obs.Counter // completed work items
	panics *obs.Counter // worker panics recovered into errors
	busyNS *obs.Counter // worker time spent inside fn
	idleNS *obs.Counter // worker time spent waiting for items
	on     bool
}

// poolMetrics resolves the pool instruments carried by ctx.
func poolMetrics(ctx context.Context) metrics {
	o := obs.FromContext(ctx)
	if o == nil || o.Metrics == nil {
		return metrics{}
	}
	return metrics{
		jobs:   o.Counter("pool.jobs"),
		panics: o.Counter("pool.panics"),
		busyNS: o.Counter("pool.busy_ns"),
		idleNS: o.Counter("pool.idle_ns"),
		on:     true,
	}
}

// timed runs one item through call under the batch's instruments; with no
// observer it is exactly call.
func timed[I, O any](ctx context.Context, m metrics, i int, item I, fn func(context.Context, I) (O, error)) (O, error) {
	if !m.on {
		return call(ctx, i, item, fn)
	}
	start := time.Now()
	o, err := call(ctx, i, item, fn)
	m.busyNS.Add(time.Since(start).Nanoseconds())
	m.jobs.Inc()
	var pe *fault.PanicError
	if errors.As(err, &pe) {
		m.panics.Inc()
	}
	return o, err
}

// call runs fn on one item with panic isolation: a panic is recovered into a
// *fault.PanicError recording the item index and stack.
func call[I, O any](ctx context.Context, i int, item I, fn func(context.Context, I) (O, error)) (o O, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("pool: item %d panicked: %w",
				i, &fault.PanicError{Value: v, Stack: debug.Stack(), Index: i})
		}
	}()
	return fn(ctx, item)
}

// finish resolves Map's terminal error: when a worker failed *and* the
// parent context was cancelled, the worker's error wins (it is the root
// cause — cancellation may merely be its consequence) but the context error
// is attached so errors.Is(err, context.Canceled) still reports correctly.
func finish(ctx context.Context, firstErr error) error {
	ctxErr := ctx.Err()
	if firstErr != nil {
		if ctxErr != nil && !errors.Is(firstErr, ctxErr) {
			return fmt.Errorf("%w (context also cancelled: %w)", firstErr, ctxErr)
		}
		return firstErr
	}
	if ctxErr != nil {
		return fmt.Errorf("pool: cancelled: %w", ctxErr)
	}
	return nil
}

// Map applies fn to every item on at most `workers` goroutines (<= 0 means
// runtime.NumCPU()) and returns the outputs in submission order. The first
// error (a worker panic counts, as a *fault.PanicError) cancels the
// remaining work, drains the pool, and is returned; if the context is
// cancelled first, the returned error wraps ctx.Err().
func Map[I, O any](ctx context.Context, workers int, items []I, fn func(context.Context, I) (O, error)) ([]O, error) {
	out := make([]O, len(items))
	if len(items) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("pool: cancelled: %w", err)
		}
		return out, nil
	}
	workers = Workers(workers)
	if workers > len(items) {
		workers = len(items)
	}
	m := poolMetrics(ctx)
	if workers == 1 {
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("pool: cancelled: %w", err)
			}
			o, err := timed(ctx, m, i, item, fn)
			if err != nil {
				return nil, finish(ctx, err)
			}
			out[i] = o
		}
		return out, nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var idleStart time.Time
			if m.on {
				idleStart = time.Now()
			}
			for i := range idx {
				if m.on {
					m.idleNS.Add(time.Since(idleStart).Nanoseconds())
				}
				if wctx.Err() != nil {
					return
				}
				o, err := timed(wctx, m, i, items[i], fn)
				if m.on {
					idleStart = time.Now()
				}
				if err != nil {
					fail(err)
					return
				}
				out[i] = o // distinct slot per item: no lock needed
			}
		}()
	}
	for i := range items {
		if wctx.Err() != nil {
			break
		}
		select {
		case idx <- i:
		case <-wctx.Done():
		}
	}
	close(idx)
	wg.Wait()

	if err := finish(ctx, firstErr); err != nil {
		return nil, err
	}
	return out, nil
}

// MapEach applies fn to every item like Map, but isolates failures instead
// of failing fast: a failing (or panicking) item records its error in the
// returned error slice and the rest of the batch keeps running. Outputs and
// errors are index-aligned with items — errs[i] == nil means out[i] is
// valid. Only context cancellation stops the batch early; the terminal
// error is non-nil exactly in that case and wraps ctx.Err(). This is the
// fan-out graceful-degradation sweeps build on.
func MapEach[I, O any](ctx context.Context, workers int, items []I, fn func(context.Context, I) (O, error)) ([]O, []error, error) {
	out := make([]O, len(items))
	errs := make([]error, len(items))
	if len(items) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("pool: cancelled: %w", err)
		}
		return out, errs, nil
	}
	workers = Workers(workers)
	if workers > len(items) {
		workers = len(items)
	}
	m := poolMetrics(ctx)
	run := func(i int) {
		out[i], errs[i] = timed(ctx, m, i, items[i], fn)
	}
	if workers == 1 {
		for i := range items {
			if err := ctx.Err(); err != nil {
				return nil, nil, fmt.Errorf("pool: cancelled: %w", err)
			}
			run(i)
		}
		return out, errs, nil
	}

	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var idleStart time.Time
			if m.on {
				idleStart = time.Now()
			}
			for i := range idx {
				if m.on {
					m.idleNS.Add(time.Since(idleStart).Nanoseconds())
				}
				if ctx.Err() != nil {
					return
				}
				run(i)
				if m.on {
					idleStart = time.Now()
				}
			}
		}()
	}
	for i := range items {
		if ctx.Err() != nil {
			break
		}
		select {
		case idx <- i:
		case <-ctx.Done():
		}
	}
	close(idx)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("pool: cancelled: %w", err)
	}
	return out, errs, nil
}

// ForEach is Map for side-effecting work without a result value.
func ForEach[I any](ctx context.Context, workers int, items []I, fn func(context.Context, I) error) error {
	_, err := Map(ctx, workers, items, func(ctx context.Context, item I) (struct{}, error) {
		return struct{}{}, fn(ctx, item)
	})
	return err
}
