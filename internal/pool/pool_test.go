package pool

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"autopilot/internal/fault"
)

func TestMapPreservesSubmissionOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 8, 200} {
		out, err := Map(context.Background(), workers, items, func(_ context.Context, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyInput(t *testing.T) {
	out, err := Map(context.Background(), 4, nil, func(_ context.Context, v int) (int, error) {
		return v, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("out = %v, err = %v", out, err)
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must default to at least one")
	}
	if Workers(7) != 7 {
		t.Fatalf("Workers(7) = %d", Workers(7))
	}
}

func TestMapFirstErrorWinsAndDrains(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	_, err := Map(context.Background(), 4, items, func(_ context.Context, v int) (int, error) {
		calls.Add(1)
		if v == 10 {
			return 0, fmt.Errorf("item %d: %w", v, boom)
		}
		return v, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n := calls.Load(); n == 500 {
		t.Error("error did not cancel remaining work")
	}
}

func TestMapCancellationWrapsCtxErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 64)
	started := make(chan struct{}, len(items))
	_, err := Map(ctx, 4, items, func(ctx context.Context, v int) (int, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		cancel()
		select {
		case <-ctx.Done():
		case <-time.After(5 * time.Second):
			t.Error("worker not cancelled")
		}
		return v, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestMapPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 1, []int{1, 2, 3}, func(_ context.Context, v int) (int, error) {
		return v, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	items := []int{1, 2, 3, 4, 5}
	if err := ForEach(context.Background(), 3, items, func(_ context.Context, v int) error {
		sum.Add(int64(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 15 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestMapPanicBecomesTypedError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), workers, []int{0, 1, 2}, func(_ context.Context, v int) (int, error) {
			if v == 1 {
				panic("kaboom")
			}
			return v, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic did not surface as error", workers)
		}
		var pe *fault.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *fault.PanicError", workers, err)
		}
		if pe.Index != 1 || pe.Value != "kaboom" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: PanicError = {Index:%d Value:%v stack:%d bytes}", workers, pe.Index, pe.Value, len(pe.Stack))
		}
	}
}

// TestMapEachIsolatesPanics is the panic-isolation determinism check: a
// seeded subset of jobs panics, the survivors' results come back in
// submission order, and the output is identical at workers=1 and workers=8.
func TestMapEachIsolatesPanics(t *testing.T) {
	const n = 64
	in := &fault.Injector{Seed: 99, PanicRate: 0.25}
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	run := func(workers int) ([]int, []error) {
		t.Helper()
		out, errs, err := MapEach(context.Background(), workers, items, func(_ context.Context, v int) (int, error) {
			if in.Decide(fmt.Sprintf("job%d", v)) == fault.InjectPanic {
				panic(v)
			}
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out, errs
	}
	out1, errs1 := run(1)
	out8, errs8 := run(8)
	panics := 0
	for i := range items {
		if (errs1[i] == nil) != (errs8[i] == nil) {
			t.Fatalf("item %d: workers=1 err %v, workers=8 err %v", i, errs1[i], errs8[i])
		}
		if errs1[i] != nil {
			panics++
			var pe *fault.PanicError
			if !errors.As(errs1[i], &pe) || pe.Index != i {
				t.Fatalf("item %d: err = %v, want *fault.PanicError at that index", i, errs1[i])
			}
			continue
		}
		if out1[i] != i*i || out8[i] != i*i {
			t.Fatalf("item %d: survivors differ: %d vs %d (want %d)", i, out1[i], out8[i], i*i)
		}
	}
	if panics == 0 || panics == n {
		t.Fatalf("injected panics = %d of %d, want a proper subset", panics, n)
	}
}

// TestMapWorkerErrorWinsOverCancellation is the lost-cancellation
// regression: when a worker fails and the parent context is cancelled, the
// worker's error must surface as the cause while errors.Is still reports the
// cancellation.
func TestMapWorkerErrorWinsOverCancellation(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	_, err := Map(ctx, 4, []int{0, 1, 2, 3}, func(_ context.Context, v int) (int, error) {
		if v == 0 {
			cancel()
			return 0, boom
		}
		<-ctx.Done()
		return v, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the worker's error as cause", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, must still report context.Canceled", err)
	}
}

func TestMapEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := MapEach(ctx, 2, []int{1, 2, 3}, func(_ context.Context, v int) (int, error) {
		return v, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestMapEachEmpty(t *testing.T) {
	out, errs, err := MapEach(context.Background(), 2, nil, func(_ context.Context, v int) (int, error) {
		return v, nil
	})
	if err != nil || len(out) != 0 || len(errs) != 0 {
		t.Fatalf("MapEach(nil) = %v, %v, %v", out, errs, err)
	}
}
