package pool

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesSubmissionOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 8, 200} {
		out, err := Map(context.Background(), workers, items, func(_ context.Context, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyInput(t *testing.T) {
	out, err := Map(context.Background(), 4, nil, func(_ context.Context, v int) (int, error) {
		return v, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("out = %v, err = %v", out, err)
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must default to at least one")
	}
	if Workers(7) != 7 {
		t.Fatalf("Workers(7) = %d", Workers(7))
	}
}

func TestMapFirstErrorWinsAndDrains(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	_, err := Map(context.Background(), 4, items, func(_ context.Context, v int) (int, error) {
		calls.Add(1)
		if v == 10 {
			return 0, fmt.Errorf("item %d: %w", v, boom)
		}
		return v, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n := calls.Load(); n == 500 {
		t.Error("error did not cancel remaining work")
	}
}

func TestMapCancellationWrapsCtxErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 64)
	started := make(chan struct{}, len(items))
	_, err := Map(ctx, 4, items, func(ctx context.Context, v int) (int, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		cancel()
		select {
		case <-ctx.Done():
		case <-time.After(5 * time.Second):
			t.Error("worker not cancelled")
		}
		return v, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestMapPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 1, []int{1, 2, 3}, func(_ context.Context, v int) (int, error) {
		return v, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	items := []int{1, 2, 3, 4, 5}
	if err := ForEach(context.Background(), 3, items, func(_ context.Context, v int) error {
		sum.Add(int64(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 15 {
		t.Fatalf("sum = %d", sum.Load())
	}
}
