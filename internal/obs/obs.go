// Package obs is AutoPilot's observability layer: metrics, span tracing,
// run manifests, and a debug HTTP endpoint for the three-phase pipeline.
// After the parallel-evaluation, fault-tolerance, and training-engine layers
// the system runs hours-long sweeps with no way to see inside them; this
// package provides the instruments every layer (pool, train, dse, hw, fault,
// bayesopt, core) threads through:
//
//   - a metrics Registry of named atomic counters, gauges, and fixed-bucket
//     histograms (rollout episodes, batched network forwards, hw-backend
//     estimate latency, cache hits/misses/dedups, retries, panics,
//     injections, worker busy/idle time);
//   - lightweight span tracing: a Tracer records monotonic begin/end spans
//     with parent/child nesting and exports them as a Chrome
//     `trace_event`-format JSON file (chrome://tracing, Perfetto);
//   - a structured Event stream that generalizes train's progress Sink;
//   - a machine-readable run Manifest capturing config, seeds, phase
//     durations, metric snapshots, and failure summaries, so runs are
//     comparable across commits;
//   - an optional debug HTTP endpoint serving live metrics JSON, expvar,
//     and net/http/pprof.
//
// Everything is nil-safe: a nil *Observer, *Registry, *Tracer, *Counter,
// *Gauge, *Histogram, or *Span no-ops on every method, so instrumented code
// never branches on "is observability on" and — critical for the rollout hot
// path — the disabled path performs zero allocations (verified by benchmark
// and by TestNoopZeroAlloc). Instrumentation is purely observational: it
// draws no randomness and reorders no work, so golden bitwise-determinism
// contracts hold with observability on or off.
//
// The package depends only on the standard library, so any internal package
// may import it without cycles.
package obs

import "context"

// Observer bundles the three observability surfaces a pipeline run carries:
// metrics, tracing, and the structured event stream. A nil *Observer (and
// any nil field) is valid and disables that surface.
type Observer struct {
	// Metrics is the run's instrument registry; nil disables metrics.
	Metrics *Registry
	// Trace records spans for the Chrome trace export; nil disables tracing.
	Trace *Tracer
	// Events receives structured pipeline events (training progress,
	// checkpoint quarantines); nil discards them.
	Events EventSink
}

// Counter returns the named counter from the observer's registry; nil-safe.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge returns the named gauge from the observer's registry; nil-safe.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram returns the named histogram from the observer's registry;
// nil-safe.
func (o *Observer) Histogram(name string, bounds []float64) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name, bounds)
}

// Span starts a root span on the observer's tracer; nil-safe.
func (o *Observer) Span(name, cat string) *Span {
	if o == nil {
		return nil
	}
	return o.Trace.Span(name, cat)
}

// Emit sends an event to the observer's sink; nil-safe.
func (o *Observer) Emit(e Event) {
	if o == nil || o.Events == nil {
		return
	}
	o.Events.Emit(e)
}

// Event is one structured pipeline occurrence: a category, a name, and an
// optional typed payload (e.g. train.Progress). Producers emit events
// through Observer.Emit; consumers type-assert the payload they understand.
type Event struct {
	// Cat groups related events ("train", "checkpoint").
	Cat string
	// Name identifies the event within its category ("progress",
	// "quarantined").
	Name string
	// Payload carries the producer's typed record; may be nil.
	Payload any
}

// EventSink receives pipeline events. Producers serialize their own Emit
// calls where ordering matters (the train engine does), so simple sinks need
// no locking.
type EventSink interface {
	Emit(Event)
}

// EventFunc adapts a plain function to the EventSink interface.
type EventFunc func(Event)

// Emit calls f.
func (f EventFunc) Emit(e Event) { f(e) }

// MultiSink fans events out to several sinks in order, skipping nils.
func MultiSink(sinks ...EventSink) EventSink {
	var live []EventSink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return EventFunc(func(e Event) {
		for _, s := range live {
			s.Emit(e)
		}
	})
}

// observerKey and spanKey carry the observer and the current parent span
// through context, so deeply nested layers (worker pools, the optimizer)
// pick up instrumentation without new parameters on every signature.
type observerKey struct{}
type spanKey struct{}

// NewContext returns ctx carrying the observer. A nil observer returns ctx
// unchanged, so the disabled path allocates nothing.
func NewContext(ctx context.Context, o *Observer) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, observerKey{}, o)
}

// FromContext returns the observer carried by ctx, or nil.
func FromContext(ctx context.Context) *Observer {
	o, _ := ctx.Value(observerKey{}).(*Observer)
	return o
}

// ContextWithSpan returns ctx carrying s as the current parent span. A nil
// span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the current parent span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Tracing reports whether StartStep/StartJob on ctx would record a span —
// call sites use it to skip building span names on the disabled path.
func Tracing(ctx context.Context) bool {
	if SpanFromContext(ctx) != nil {
		return true
	}
	o := FromContext(ctx)
	return o != nil && o.Trace != nil
}

// StartStep starts a span that is a sequential child of the context's
// current span (same trace lane — for phases and steps that do not overlap
// their siblings). Without a parent span it falls back to a root span on the
// context observer's tracer, and to nil when neither is present.
func StartStep(ctx context.Context, name, cat string) *Span {
	if p := SpanFromContext(ctx); p != nil {
		return p.Child(name, cat)
	}
	return FromContext(ctx).Span(name, cat)
}

// StartJob starts a span for one unit of fanned-out work: it forks off the
// context's current span onto its own trace lane, so concurrent jobs render
// side by side under their parent phase. Without a parent span it falls back
// like StartStep.
func StartJob(ctx context.Context, name, cat string) *Span {
	if p := SpanFromContext(ctx); p != nil {
		return p.Fork(name, cat)
	}
	return FromContext(ctx).Span(name, cat)
}
