package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for Snapshots, stdlib
// only. Series names are sanitized to the metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* (dots become underscores), and the ";k=v" label
// suffixes obs.Fleet attaches ("hw.estimate_seconds;worker=w1") render as
// label pairs ({worker="w1"}). Counters and gauges emit one sample each;
// histograms emit the standard cumulative _bucket/_sum/_count family.

// promContentType is the Content-Type the text exposition format declares.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promSample is one rendered sample line body (labels + value), grouped under
// a family.
type promSample struct {
	suffix string // appended to the family name ("", "_bucket", ...)
	labels string // rendered {...} block, "" for none
	value  string
}

// promFamily is one metric family: every sample sharing a base name, emitted
// under a single TYPE header.
type promFamily struct {
	typ     string
	samples []promSample
}

// WritePrometheus renders the snapshots in Prometheus text exposition format
// 0.0.4. Later snapshots append samples to the families of earlier ones, so
// a process can expose its own registry alongside a fleet's per-worker
// labeled series in one scrape.
func WritePrometheus(w io.Writer, snaps ...Snapshot) error {
	fams := map[string]*promFamily{}
	family := func(name, typ string) (*promFamily, string) {
		base, labels := splitSeries(name)
		f, ok := fams[base]
		if !ok {
			f = &promFamily{typ: typ}
			fams[base] = f
		}
		return f, labels
	}
	for _, s := range snaps {
		for _, name := range sortedCounterNames(s.Counters) {
			f, labels := family(name, "counter")
			f.samples = append(f.samples, promSample{labels: labels, value: strconv.FormatInt(s.Counters[name], 10)})
		}
		for _, name := range sortedGaugeNames(s.Gauges) {
			f, labels := family(name, "gauge")
			f.samples = append(f.samples, promSample{labels: labels, value: formatPromValue(s.Gauges[name])})
		}
		for _, name := range sortedHistogramNames(s.Histograms) {
			f, labels := family(name, "histogram")
			h := s.Histograms[name]
			cum := int64(0)
			for i, c := range h.Counts {
				cum += c
				le := "+Inf"
				if i < len(h.Bounds) {
					le = formatPromValue(h.Bounds[i])
				}
				f.samples = append(f.samples, promSample{
					suffix: "_bucket",
					labels: addLabel(labels, "le", le),
					value:  strconv.FormatInt(cum, 10),
				})
			}
			f.samples = append(f.samples,
				promSample{suffix: "_sum", labels: labels, value: formatPromValue(h.Sum)},
				promSample{suffix: "_count", labels: labels, value: strconv.FormatInt(h.Count, 10)})
		}
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		for _, smp := range f.samples {
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n", name, smp.suffix, smp.labels, smp.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// PrometheusHandler serves the snapshots returned by snap on each scrape
// with the exposition Content-Type.
func PrometheusHandler(snap func() []Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", promContentType)
		var snaps []Snapshot
		if snap != nil {
			snaps = snap()
		}
		_ = WritePrometheus(w, snaps...)
	})
}

// splitSeries splits a registry series name into its sanitized metric name
// and a rendered label block: "hw.estimate_seconds;worker=w1" becomes
// ("hw_estimate_seconds", `{worker="w1"}`).
func splitSeries(series string) (name, labels string) {
	parts := strings.Split(series, ";")
	name = sanitizeMetricName(parts[0])
	if len(parts) == 1 {
		return name, ""
	}
	var b strings.Builder
	for _, p := range parts[1:] {
		k, v, ok := strings.Cut(p, "=")
		if !ok || k == "" {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", sanitizeLabelName(k), escapeLabelValue(v))
	}
	if b.Len() == 0 {
		return name, ""
	}
	return name, "{" + b.String() + "}"
}

// addLabel inserts k=v into a rendered label block (possibly empty).
func addLabel(labels, k, v string) string {
	pair := fmt.Sprintf("%s=%q", k, escapeLabelValue(v))
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// sanitizeMetricName maps a series name onto [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeLabelName maps a label key onto [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(name string) string {
	s := sanitizeMetricName(name)
	return strings.ReplaceAll(s, ":", "_")
}

// escapeLabelValue leaves the value ready for %q rendering — Go's quoting is
// a superset of the exposition format's (\\, \", \n), so no extra work.
func escapeLabelValue(v string) string { return v }

// formatPromValue renders a float the way the exposition format expects,
// including the +Inf/-Inf/NaN spellings.
func formatPromValue(v float64) string {
	switch {
	case v != v:
		return "NaN"
	case v > 1.7976931348623157e308:
		return "+Inf"
	case v < -1.7976931348623157e308:
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedCounterNames(m map[string]int64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func sortedGaugeNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func sortedHistogramNames(m map[string]HistogramSnapshot) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
