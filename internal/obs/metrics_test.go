package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(1.5)
	g.Add(2.5)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
}

// TestHistogramBucketBoundaries pins the le-semantics: bucket i counts v with
// v <= bounds[i], values above the last bound land in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.0000001, 10, 99, 100, 101, 1e9} {
		h.Observe(v)
	}
	s := h.snapshot()
	// 0.5 and 1 -> bucket 0; 1.0000001 and 10 -> bucket 1; 99 and 100 ->
	// bucket 2; 101 and 1e9 -> overflow.
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.0000001+10+99+100+101+1e9; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 8))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 300))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(99)
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	s := a.snapshot()
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("merged counts = %v, want [1 1 1]", s.Counts)
	}
	if a.Count() != 3 || a.Sum() != 0.5+1.5+99 {
		t.Fatalf("merged count/sum = %d/%v", a.Count(), a.Sum())
	}
}

func TestHistogramMergeMismatch(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	if err := a.Merge(NewHistogram([]float64{1, 2, 3})); err == nil {
		t.Fatal("merge of different bucket counts succeeded")
	}
	if err := a.Merge(NewHistogram([]float64{1, 3})); err == nil {
		t.Fatal("merge of different bounds succeeded")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merge with nil errored: %v", err)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1e-6, 4, 3)
	want := []float64{1e-6, 4e-6, 1.6e-5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestRegistrySameInstance pins the resolve-once contract: repeated lookups
// return the identical instrument pointer.
func TestRegistrySameInstance(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter lookup returned different instances")
	}
	if r.Histogram("h", []float64{1}) != r.Histogram("h", []float64{2}) {
		t.Fatal("histogram lookup returned different instances")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge lookup returned different instances")
	}
}

func TestRegistrySnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs").Add(3)
	r.Gauge("temp").Set(1.25)
	r.Histogram("lat", []float64{1, 2}).Observe(1.5)
	s := r.Snapshot()
	if s.Counters["jobs"] != 3 || s.Gauges["temp"] != 1.25 || s.Histograms["lat"].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("registry JSON does not parse: %v\n%s", err, buf.String())
	}
	if back.Counters["jobs"] != 3 {
		t.Fatalf("round-tripped counters = %v", back.Counters)
	}
}

func TestRegistrySummary(t *testing.T) {
	r := NewRegistry()
	if r.Summary() != "" {
		t.Fatalf("empty registry summary = %q", r.Summary())
	}
	r.Counter("b.zero") // stays zero: must be elided
	r.Counter("a.jobs").Add(2)
	r.Counter("c.hits").Add(7)
	r.Histogram("lat", []float64{1}).Observe(0.5)
	got := r.Summary()
	if want := "a.jobs=2 c.hits=7 lat.count=1 lat.mean=0.5"; got != want {
		t.Fatalf("summary = %q, want %q", got, want)
	}
	if strings.Contains(got, "zero") {
		t.Fatalf("zero counter not elided: %q", got)
	}
}
