package obs

import (
	"context"
	"testing"
)

// TestNilInstrumentsNoop pins the layer's core contract: every method on
// every nil instrument is a safe no-op, so instrumented code never branches
// on "is observability on".
func TestNilInstrumentsNoop(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}

	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}

	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram has observations")
	}
	if err := h.Merge(NewHistogram([]float64{1})); err != nil {
		t.Fatalf("nil histogram merge errored: %v", err)
	}

	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x", []float64{1}).Observe(1)
	if s := r.Summary(); s != "" {
		t.Fatalf("nil registry summary = %q", s)
	}

	var o *Observer
	o.Counter("x").Inc()
	o.Gauge("x").Set(1)
	o.Histogram("x", []float64{1}).Observe(1)
	o.Span("x", "y").End()
	o.Emit(Event{Cat: "test", Name: "e"})
}

// TestNoopZeroAlloc verifies the disabled hot path allocates nothing: nil
// instruments, and the context helpers on a bare context (no observer).
func TestNoopZeroAlloc(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var s *Span
	var o *Observer
	var b *SpanBuffer
	var rs *RemoteSpan
	var f *Fleet
	ctx := context.Background()

	cases := map[string]func(){
		"counter.Inc":     func() { c.Inc() },
		"counter.Add":     func() { c.Add(3) },
		"gauge.Set":       func() { g.Set(1.5) },
		"histogram":       func() { h.Observe(2.5) },
		"span.End":        func() { s.End() },
		"span.Arg":        func() { s.Arg("k", "v") },
		"span.Child":      func() { s.Child("c", "t").End() },
		"span.Fork":       func() { s.Fork("f", "t").End() },
		"observer.Emit":   func() { o.Emit(Event{}) },
		"FromContext":     func() { FromContext(ctx) },
		"SpanFromContext": func() { SpanFromContext(ctx) },
		"Tracing":         func() { _ = Tracing(ctx) },
		"StartStep":       func() { StartStep(ctx, "s", "t").End() },
		"StartJob":        func() { StartJob(ctx, "j", "t").End() },
		"NewContext(nil)": func() { NewContext(ctx, nil) },
		"buffer.Start":    func() { b.Start("s", "t", 0, SpanContext{}) },
		"buffer.Pending":  func() { b.Pending() },
		"buffer.Ack":      func() { b.Ack(1) },
		"remoteSpan.Arg":  func() { rs.Arg("k", "v") },
		"remoteSpan.End":  func() { rs.End() },
		"span.Context":    func() { _ = s.Context() },
		"fleet.Update":    func() { f.Update("w", 1, Snapshot{}) },
		"fleet.Merged":    func() { _ = f.Merged() },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op on the disabled path, want 0", name, allocs)
		}
	}
}

func TestContextPlumbing(t *testing.T) {
	o := &Observer{Metrics: NewRegistry(), Trace: NewTracer()}
	ctx := NewContext(context.Background(), o)
	if FromContext(ctx) != o {
		t.Fatal("FromContext did not return the stored observer")
	}
	if !Tracing(ctx) {
		t.Fatal("Tracing false with a tracer-bearing observer")
	}

	// StartStep without a parent span falls back to a root span.
	root := StartStep(ctx, "phase1", "phase")
	if root == nil {
		t.Fatal("StartStep returned nil with observer present")
	}
	ctx2 := ContextWithSpan(ctx, root)
	if SpanFromContext(ctx2) != root {
		t.Fatal("SpanFromContext did not return the stored span")
	}

	// With a parent in context, StartStep nests and StartJob forks.
	step := StartStep(ctx2, "step", "phase")
	if step.tid != root.tid {
		t.Fatalf("step tid %d != parent tid %d", step.tid, root.tid)
	}
	job := StartJob(ctx2, "job", "train")
	if job.tid < laneBase {
		t.Fatalf("job tid %d not on a fork lane", job.tid)
	}
	step.End()
	job.End()
	root.End()

	// A metrics-only observer does not claim to be tracing.
	mOnly := NewContext(context.Background(), &Observer{Metrics: NewRegistry()})
	if Tracing(mOnly) {
		t.Fatal("Tracing true without a tracer")
	}
	if Tracing(context.Background()) {
		t.Fatal("Tracing true on a bare context")
	}
}

func TestMultiSink(t *testing.T) {
	var a, b []string
	sa := EventFunc(func(e Event) { a = append(a, e.Name) })
	sb := EventFunc(func(e Event) { b = append(b, e.Name) })

	if MultiSink() != nil || MultiSink(nil, nil) != nil {
		t.Fatal("empty MultiSink not nil")
	}
	one := MultiSink(nil, sa)
	one.Emit(Event{Name: "solo"})
	if len(a) != 1 || a[0] != "solo" {
		t.Fatalf("single-sink fanout: %v", a)
	}

	a = nil
	both := MultiSink(sa, nil, sb)
	both.Emit(Event{Name: "x"})
	both.Emit(Event{Name: "y"})
	if len(a) != 2 || len(b) != 2 || a[1] != "y" || b[0] != "x" {
		t.Fatalf("fanout a=%v b=%v", a, b)
	}
}

func TestObserverEmit(t *testing.T) {
	var got []Event
	o := &Observer{Events: EventFunc(func(e Event) { got = append(got, e) })}
	o.Emit(Event{Cat: "train", Name: "progress", Payload: 7})
	if len(got) != 1 || got[0].Cat != "train" || got[0].Payload.(int) != 7 {
		t.Fatalf("emitted = %+v", got)
	}
}
