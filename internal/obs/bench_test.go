package obs

import (
	"context"
	"testing"
)

// The enabled-vs-noop pairs below pin the cost model the rest of the stack
// relies on: disabled instruments are a nil check, enabled counters are one
// atomic add, enabled histogram observes are a binary search plus two
// atomics. Run with:
//
//	go test ./internal/obs -bench . -benchmem

func BenchmarkCounterEnabled(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterNoop(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	h := NewHistogram(LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkHistogramNoop(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer()
	root := tr.Span("bench", "bench")
	defer root.End()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root.Child("step", "bench").End()
	}
}

func BenchmarkSpanNoop(b *testing.B) {
	var root *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root.Child("step", "bench").End()
	}
}

func BenchmarkStartStepNoop(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartStep(ctx, "step", "bench").End()
	}
}
