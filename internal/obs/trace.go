package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// Tracer records spans against one monotonic clock and exports them in the
// Chrome trace_event JSON format, loadable in chrome://tracing or Perfetto.
// Spans are cheap (one mutex acquisition at start and one at end) and the
// tracer is safe for concurrent use; a nil *Tracer no-ops everywhere.
//
// Lane model: spans carry a "tid" so the viewer stacks them into rows.
// Child spans share their parent's lane — sequential steps nest by time
// containment — while Fork assigns a fanned-out job the lowest free lane, so
// a sweep at concurrency N renders as exactly N job rows under its phase.
type Tracer struct {
	base time.Time
	// id identifies this tracer in serialized SpanContexts, so a worker can
	// tell which coordinator trace a parent span belongs to.
	id uint64

	mu    sync.Mutex
	spans []spanRecord
	// roots is the next root-span lane; forked job lanes live above
	// laneBase and are reused once their previous occupant ends.
	roots int64
	lanes []time.Duration // lane -> busy-until (laneForever while open)
	// nextID numbers spans so a SpanContext can name its parent across
	// process boundaries.
	nextID int64
	// procs names the non-default pid lanes remote span ingestion creates
	// (pid -> process name, rendered as trace metadata).
	procs map[int]string
}

// laneBase offsets forked job lanes away from root/step lanes so phase rows
// sort above job rows in the viewer.
const laneBase = 1000

// laneForever marks a lane occupied by a still-open span.
const laneForever = time.Duration(math.MaxInt64)

// LocalPID is the trace pid of spans recorded in this process; remote span
// ingestion places each worker on its own pid above it.
const LocalPID = 1

// spanRecord is one completed span.
type spanRecord struct {
	name  string
	cat   string
	pid   int // 0 renders as LocalPID
	tid   int64
	start time.Duration
	dur   time.Duration
	args  []spanArg
}

type spanArg struct{ k, v string }

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer {
	now := time.Now()
	return &Tracer{base: now, id: uint64(now.UnixNano())}
}

// Span is one in-flight timed operation. End records it; a nil *Span no-ops
// on every method, so disabled tracing costs nothing on instrumented paths.
type Span struct {
	tr    *Tracer
	name  string
	cat   string
	id    int64
	tid   int64
	lane  int // forked lane index to release on End; -1 otherwise
	start time.Duration
	args  []spanArg

	mu    sync.Mutex
	ended bool
}

// Span starts a root span on its own lane; nil-safe.
func (t *Tracer) Span(name, cat string) *Span {
	if t == nil {
		return nil
	}
	start := time.Since(t.base)
	t.mu.Lock()
	t.roots++
	tid := t.roots
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{tr: t, name: name, cat: cat, id: id, tid: tid, lane: -1, start: start}
}

// Child starts a span nested under s on the same lane — for sequential
// sub-steps, which the trace viewer nests by time containment. Nil-safe.
func (s *Span) Child(name, cat string) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{tr: t, name: name, cat: cat, id: id, tid: s.tid, lane: -1, start: time.Since(t.base)}
}

// Fork starts a span for work running concurrently with s's other children:
// it claims the lowest lane that is free at its start time, so parallel jobs
// render side by side instead of falsely nesting. Nil-safe.
func (s *Span) Fork(name, cat string) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	start := time.Since(t.base)
	t.mu.Lock()
	lane := -1
	for i, busy := range t.lanes {
		if busy <= start {
			lane = i
			break
		}
	}
	if lane < 0 {
		lane = len(t.lanes)
		t.lanes = append(t.lanes, 0)
	}
	t.lanes[lane] = laneForever
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{tr: t, name: name, cat: cat, id: id, tid: laneBase + int64(lane), lane: lane, start: start}
}

// Arg attaches a key/value annotation rendered in the trace viewer's span
// details; it returns s for chaining. Nil-safe.
func (s *Span) Arg(k, v string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.args = append(s.args, spanArg{k: k, v: v})
	s.mu.Unlock()
	return s
}

// End records the span. Ending a span twice records it once; ending a nil
// span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	args := s.args
	s.mu.Unlock()

	t := s.tr
	end := time.Since(t.base)
	t.mu.Lock()
	t.spans = append(t.spans, spanRecord{
		name: s.name, cat: s.cat, tid: s.tid,
		start: s.start, dur: end - s.start, args: args,
	})
	if s.lane >= 0 {
		t.lanes[s.lane] = end
	}
	t.mu.Unlock()
}

// SpanDuration is one completed span's name and wall time — what run
// manifests record for phases.
type SpanDuration struct {
	Name     string  `json:"name"`
	StartSec float64 `json:"start_sec"`
	Seconds  float64 `json:"seconds"`
}

// Durations returns the completed spans of one category in end order. A nil
// tracer returns nil.
func (t *Tracer) Durations(cat string) []SpanDuration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanDuration
	for _, r := range t.spans {
		if r.cat == cat {
			out = append(out, SpanDuration{
				Name:     r.name,
				StartSec: r.start.Seconds(),
				Seconds:  r.dur.Seconds(),
			})
		}
	}
	return out
}

// SetProcessName labels a trace pid lane (rendered as a process_name
// metadata event), so a merged fleet trace shows "coordinator", "worker w1",
// … instead of bare pid numbers. Nil-safe.
func (t *Tracer) SetProcessName(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.procs == nil {
		t.procs = map[int]string{}
	}
	t.procs[pid] = name
	t.mu.Unlock()
}

// BaseUnixNano is the wall-clock instant of the tracer's time zero — the
// reference remote spans (stamped in wall-clock nanoseconds) are converted
// against when ingested. 0 for a nil tracer.
func (t *Tracer) BaseUnixNano() int64 {
	if t == nil {
		return 0
	}
	return t.base.UnixNano()
}

// Ingest merges externally completed spans — shipped from another process as
// WireSpans — into the trace on the given pid lane. Start times are wall
// clock (the sender aligned them to the coordinator's clock at hello) and
// convert to trace-relative offsets against the tracer's base; spans that
// began before the trace did clamp to zero rather than rendering off-screen.
// Nil-safe, so an untraced coordinator discards remote buffers for free.
func (t *Tracer) Ingest(pid int, spans ...WireSpan) {
	if t == nil || len(spans) == 0 {
		return
	}
	base := t.base.UnixNano()
	t.mu.Lock()
	for _, ws := range spans {
		rel := time.Duration(ws.StartUnixNano - base)
		if rel < 0 {
			rel = 0
		}
		var args []spanArg
		if len(ws.Args) > 0 {
			args = make([]spanArg, 0, len(ws.Args))
			for _, k := range sortedKeys(ws.Args) {
				args = append(args, spanArg{k: k, v: ws.Args[k]})
			}
		}
		if ws.Parent.Span != 0 {
			args = append(args, spanArg{k: "parent_span", v: fmt.Sprintf("%d", ws.Parent.Span)})
		}
		t.spans = append(t.spans, spanRecord{
			name: ws.Name, cat: ws.Cat, pid: pid, tid: ws.TID,
			start: rel, dur: time.Duration(ws.DurNanos), args: args,
		})
	}
	t.mu.Unlock()
}

// sortedKeys returns m's keys in sorted order so ingested args render
// deterministically.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// traceEvent is one Chrome trace_event object. We emit complete ("X")
// events: begin timestamp plus duration, both in microseconds — plus "M"
// process_name metadata for named pid lanes.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the JSON-object flavor of the trace format, which lets us
// set the display unit.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON exports every completed span as Chrome trace_event JSON. Spans
// still open at export time are not included. A nil tracer writes an empty
// trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	file := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	if t != nil {
		t.mu.Lock()
		for _, pid := range sortedPIDs(t.procs) {
			file.TraceEvents = append(file.TraceEvents, traceEvent{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]string{"name": t.procs[pid]},
			})
		}
		for _, r := range t.spans {
			pid := r.pid
			if pid == 0 {
				pid = LocalPID
			}
			ev := traceEvent{
				Name: r.name, Cat: r.cat, Ph: "X",
				TS:  float64(r.start.Nanoseconds()) / 1e3,
				Dur: float64(r.dur.Nanoseconds()) / 1e3,
				PID: pid, TID: r.tid,
			}
			if len(r.args) > 0 {
				ev.Args = make(map[string]string, len(r.args))
				for _, a := range r.args {
					ev.Args[a.k] = a.v
				}
			}
			file.TraceEvents = append(file.TraceEvents, ev)
		}
		t.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// sortedPIDs returns the named pid lanes in ascending order.
func sortedPIDs(procs map[int]string) []int {
	pids := make([]int, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	return pids
}
