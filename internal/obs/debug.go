package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// DebugMux returns the live-telemetry handler tree: the registry snapshot,
// expvar, and pprof under /debug/. It is exported so long-lived servers
// (cmd/autopilotd) can graft the same endpoints onto their own mux instead
// of running a second listener.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
	mux.Handle("/debug/prometheus", PrometheusHandler(func() []Snapshot {
		return []Snapshot{r.Snapshot()}
	}))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the live-telemetry HTTP endpoint on addr and returns
// the bound address (useful with ":0") and a close function. It serves:
//
//	/debug/metrics     the registry snapshot as JSON (live counters)
//	/debug/prometheus  the same snapshot in Prometheus text exposition 0.0.4
//	/debug/vars        the standard expvar dump (memstats, cmdline)
//	/debug/pprof/      the standard net/http/pprof handlers
//
// The server runs until closed. The returned close function is idempotent:
// every call after the first is a no-op returning the first call's error,
// so defer-plus-explicit-close call patterns are safe.
func ServeDebug(addr string, r *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: debug endpoint: %w", err)
	}
	srv := &http.Server{Handler: DebugMux(r), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // shutdown error is ErrServerClosed
	var once sync.Once
	var closeErr error
	closeFn := func() error {
		once.Do(func() { closeErr = srv.Close() })
		return closeErr
	}
	return ln.Addr().String(), closeFn, nil
}
