package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServeDebug starts the live-telemetry HTTP endpoint on addr and returns
// the bound address (useful with ":0") and a close function. It serves:
//
//	/debug/metrics  the registry snapshot as JSON (live counters)
//	/debug/vars     the standard expvar dump (memstats, cmdline)
//	/debug/pprof/   the standard net/http/pprof handlers
//
// The server runs until closed; Serve errors after close are swallowed.
func ServeDebug(addr string, r *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: debug endpoint: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // shutdown error is ErrServerClosed
	return ln.Addr().String(), srv.Close, nil
}
