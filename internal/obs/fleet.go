package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// This file is the fleet half of the observability layer: the pieces that
// let one coordinator process assemble a single attributable view of a sweep
// sharded across workers.
//
//   - SpanContext serializes a live span's identity so a worker-side
//     evaluation span can name the coordinator-side job span it belongs to;
//   - SpanBuffer accumulates completed spans worker-side as WireSpans,
//     stamped on the coordinator's clock and sequence-numbered so shipping
//     them piggybacked on at-least-once RPCs (result posts, heartbeats)
//     stays idempotent under drops and duplicates;
//   - Fleet federates worker metrics snapshots coordinator-side: cumulative
//     snapshots replace (never re-add) per worker, mismatched histogram
//     layouts are skipped and counted per instrument instead of poisoning
//     the worker's whole snapshot, and the merged or per-worker-labeled
//     views feed /grid/v1/fleet and the Prometheus exposition.
//
// Everything here keeps the package's two core contracts: nil receivers
// no-op with zero allocations, and nothing draws randomness or reorders
// work, so fleet telemetry is bitwise-invisible to sweep results.

// SpanContext is the serializable identity of a span, carried across process
// boundaries so remote children can name their parent. The zero value means
// "no parent" (tracing off).
type SpanContext struct {
	// Trace identifies the originating tracer, Span the span within it.
	Trace uint64 `json:"trace,omitempty"`
	Span  int64  `json:"span,omitempty"`
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.Span != 0 }

// Context returns the span's serializable identity; the zero SpanContext for
// a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.tr.id, Span: s.id}
}

// WireSpan is one completed span in transit between processes. Start times
// are wall-clock nanoseconds already aligned to the receiving tracer's clock
// (the sender learned the offset at handshake), and Seq orders a sender's
// spans so receivers can deduplicate at-least-once delivery.
type WireSpan struct {
	Seq           int64             `json:"seq"`
	Name          string            `json:"name"`
	Cat           string            `json:"cat,omitempty"`
	TID           int64             `json:"tid,omitempty"`
	StartUnixNano int64             `json:"start_unix_nano"`
	DurNanos      int64             `json:"dur_nanos"`
	Parent        SpanContext       `json:"parent,omitempty"`
	Args          map[string]string `json:"args,omitempty"`
}

// maxBufferedSpans bounds a SpanBuffer that is never acknowledged (a
// coordinator that stopped ingesting); the oldest spans are dropped first,
// which degrades the trace but never the sweep.
const maxBufferedSpans = 4096

// SpanBuffer accumulates completed spans on a worker for piggybacked
// shipping. A nil *SpanBuffer no-ops everywhere, so workers joined to an
// untraced coordinator record nothing and allocate nothing.
type SpanBuffer struct {
	// offset converts this process's wall clock to the consumer's:
	// consumerNow ≈ localNow + offset.
	offset int64

	mu      sync.Mutex
	next    int64
	pending []WireSpan
	dropped int64
}

// NewSpanBuffer returns a buffer whose spans are stamped with the given
// clock offset (consumer wall clock minus local wall clock, nanoseconds).
func NewSpanBuffer(offsetNanos int64) *SpanBuffer {
	return &SpanBuffer{offset: offsetNanos}
}

// RemoteSpan is one in-flight worker-side operation destined for a remote
// trace. End completes it into the buffer; a nil *RemoteSpan no-ops.
type RemoteSpan struct {
	b      *SpanBuffer
	name   string
	cat    string
	tid    int64
	parent SpanContext
	start  time.Time

	mu    sync.Mutex
	args  map[string]string
	ended bool
}

// Start opens a span on the buffer. tid groups related spans onto one lane
// in the merged trace (grid workers use the job id); parent names the
// consumer-side span this work belongs to. Nil-safe.
func (b *SpanBuffer) Start(name, cat string, tid int64, parent SpanContext) *RemoteSpan {
	if b == nil {
		return nil
	}
	return &RemoteSpan{b: b, name: name, cat: cat, tid: tid, parent: parent, start: time.Now()}
}

// Arg attaches a key/value annotation; nil-safe, chainable.
func (r *RemoteSpan) Arg(k, v string) *RemoteSpan {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if r.args == nil {
		r.args = map[string]string{}
	}
	r.args[k] = v
	r.mu.Unlock()
	return r
}

// End completes the span into its buffer. Ending twice records once; ending
// a nil span is a no-op.
func (r *RemoteSpan) End() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.ended {
		r.mu.Unlock()
		return
	}
	r.ended = true
	args := r.args
	r.mu.Unlock()

	end := time.Now()
	b := r.b
	b.mu.Lock()
	b.next++
	b.pending = append(b.pending, WireSpan{
		Seq:           b.next,
		Name:          r.name,
		Cat:           r.cat,
		TID:           r.tid,
		StartUnixNano: r.start.UnixNano() + b.offset,
		DurNanos:      end.Sub(r.start).Nanoseconds(),
		Parent:        r.parent,
		Args:          args,
	})
	if over := len(b.pending) - maxBufferedSpans; over > 0 {
		b.pending = append(b.pending[:0:0], b.pending[over:]...)
		b.dropped += int64(over)
	}
	b.mu.Unlock()
}

// Pending returns a copy of every unacknowledged span in sequence order.
// Senders attach it to each outgoing RPC; because acknowledgment is by
// sequence number, re-sending the same window under at-least-once delivery
// is harmless. Nil-safe (returns nil).
func (b *SpanBuffer) Pending() []WireSpan {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.pending) == 0 {
		return nil
	}
	return append([]WireSpan(nil), b.pending...)
}

// Ack discards buffered spans with Seq <= seq — the receiver has durably
// ingested them. Nil-safe.
func (b *SpanBuffer) Ack(seq int64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	i := 0
	for i < len(b.pending) && b.pending[i].Seq <= seq {
		i++
	}
	if i > 0 {
		b.pending = append(b.pending[:0:0], b.pending[i:]...)
	}
	b.mu.Unlock()
}

// Dropped reports spans lost to the buffer cap; 0 for a nil buffer.
func (b *SpanBuffer) Dropped() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Fleet federates worker metrics snapshots on the coordinator. Workers ship
// cumulative Registry.Snapshot()s (idempotent under duplicated or dropped
// heartbeats — the newest sequence number wins, nothing is re-added), and
// the fleet serves merged and per-worker-labeled views of them.
type Fleet struct {
	mu      sync.Mutex
	workers map[string]*fleetWorker
	// layouts pins the first-seen bucket layout per histogram name; later
	// snapshots disagreeing with it have that one instrument skipped.
	layouts map[string][]float64
	skipped int64
}

type fleetWorker struct {
	snap Snapshot
	seq  int64
	last time.Time
}

// NewFleet returns an empty fleet registry.
func NewFleet() *Fleet {
	return &Fleet{workers: map[string]*fleetWorker{}, layouts: map[string][]float64{}}
}

// Update stores a worker's cumulative snapshot. seq orders a worker's
// snapshots — stale (re-delivered or reordered) snapshots are ignored, so
// at-least-once shipping cannot double-count. Histograms whose bucket layout
// disagrees with the fleet's first-seen layout for that name are dropped
// from the stored snapshot one instrument at a time and returned as typed
// *MergeErrors (mirrored into Skipped), never failing the whole snapshot.
// Nil-safe.
func (f *Fleet) Update(worker string, seq int64, s Snapshot) []*MergeError {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	w := f.workers[worker]
	if w == nil {
		w = &fleetWorker{}
		f.workers[worker] = w
	}
	w.last = time.Now()
	if seq <= w.seq {
		return nil
	}
	var skipped []*MergeError
	for name, h := range s.Histograms {
		layout, ok := f.layouts[name]
		if !ok {
			f.layouts[name] = append([]float64(nil), h.Bounds...)
			continue
		}
		if err := boundsMismatch(layout, h.Bounds); err != nil {
			err.Instrument = name
			skipped = append(skipped, err)
			delete(s.Histograms, name)
		}
	}
	f.skipped += int64(len(skipped))
	w.seq, w.snap = seq, s
	return skipped
}

// boundsMismatch compares two bucket layouts, returning a typed error on the
// first disagreement.
func boundsMismatch(want, got []float64) *MergeError {
	if len(want) != len(got) {
		return &MergeError{Index: -1, WantBounds: len(want), GotBounds: len(got)}
	}
	for i := range want {
		if want[i] != got[i] {
			return &MergeError{Index: i, WantBounds: len(want), GotBounds: len(got), WantBound: want[i], GotBound: got[i]}
		}
	}
	return nil
}

// Skipped reports the cumulative count of instrument snapshots skipped for
// layout mismatch; 0 for a nil fleet.
func (f *Fleet) Skipped() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.skipped
}

// Workers returns the known worker ids in sorted order.
func (f *Fleet) Workers() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]string, 0, len(f.workers))
	for id := range f.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Worker returns a worker's latest snapshot and last-contact time.
func (f *Fleet) Worker(id string) (Snapshot, time.Time, bool) {
	if f == nil {
		return Snapshot{}, time.Time{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[id]
	if !ok {
		return Snapshot{}, time.Time{}, false
	}
	return w.snap, w.last, true
}

// Merged returns the fleet-wide aggregate: counters and histogram series
// summed across workers (histogram folding reuses the Histogram.Merge bucket
// semantics via Snapshot.Merge), gauges per-worker-last-wins. Layout
// mismatches were already pruned at Update, so the merge itself is total.
func (f *Fleet) Merged() Snapshot {
	if f == nil {
		return Snapshot{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var out Snapshot
	for _, id := range f.sortedLocked() {
		out.Merge(f.workers[id].snap)
	}
	return out
}

// Labeled returns every worker's snapshot as one flat snapshot whose series
// names carry a worker label ("name;worker=w1") — the form the Prometheus
// encoder renders as {worker="w1"} label pairs.
func (f *Fleet) Labeled() Snapshot {
	if f == nil {
		return Snapshot{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var out Snapshot
	for _, id := range f.sortedLocked() {
		snap := f.workers[id].snap
		if len(snap.Counters) > 0 && out.Counters == nil {
			out.Counters = map[string]int64{}
		}
		for name, v := range snap.Counters {
			out.Counters[labelWorker(name, id)] = v
		}
		if len(snap.Gauges) > 0 && out.Gauges == nil {
			out.Gauges = map[string]float64{}
		}
		for name, v := range snap.Gauges {
			out.Gauges[labelWorker(name, id)] = v
		}
		if len(snap.Histograms) > 0 && out.Histograms == nil {
			out.Histograms = map[string]HistogramSnapshot{}
		}
		for name, h := range snap.Histograms {
			out.Histograms[labelWorker(name, id)] = h
		}
	}
	return out
}

// labelWorker appends the worker label to a series name in the ";k=v" form
// the exposition encoder understands.
func labelWorker(name, worker string) string {
	return fmt.Sprintf("%s;worker=%s", name, worker)
}

func (f *Fleet) sortedLocked() []string {
	ids := make([]string, 0, len(f.workers))
	for id := range f.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
