package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServeDebugCloseIdempotent pins the shutdown contract long-lived
// servers rely on: closing twice (defer plus explicit close) is safe, and
// requests after close fail.
func TestServeDebugCloseIdempotent(t *testing.T) {
	addr, closeFn, err := ServeDebug("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(addr, ":") || strings.HasSuffix(addr, ":0") {
		t.Fatalf("bound address %q not concrete", addr)
	}
	if err := closeFn(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := closeFn(); err != nil {
			t.Fatalf("close #%d after close: %v", i+2, err)
		}
	}
	if _, err := http.Get("http://" + addr + "/debug/metrics"); err == nil {
		t.Fatal("server still serving after close")
	}
}

// TestDebugMuxStandalone checks the exported mux serves the metrics
// snapshot when mounted on a caller-owned server.
func TestDebugMuxStandalone(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs").Add(4)
	rec := httptest.NewRecorder()
	DebugMux(r).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "jobs") {
		t.Fatalf("status %d body %q", rec.Code, rec.Body.String())
	}
}
