package obs

import (
	"fmt"
	"math"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

// Exposition-format line grammar (text format 0.0.4): a TYPE comment or a
// sample line "name{labels} value". This is what the CI smoke validates scraped
// output against, so the encoder tests share it.
var (
	promTypeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	promSampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]Inf|[-+0-9.eE]+)$`)
)

// checkPromGrammar fails on any line that is neither a valid TYPE comment nor
// a valid sample.
func checkPromGrammar(t *testing.T, text string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if promTypeRe.MatchString(line) || promSampleRe.MatchString(line) {
			continue
		}
		t.Errorf("line violates exposition grammar: %q", line)
	}
}

func promText(t *testing.T, snaps ...Snapshot) string {
	t.Helper()
	var b strings.Builder
	if err := WritePrometheus(&b, snaps...); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestPrometheusCountersAndGauges(t *testing.T) {
	text := promText(t, Snapshot{
		Counters: map[string]int64{"grid.jobs.completed": 64},
		Gauges:   map[string]float64{"queue.depth": 2.5},
	})
	checkPromGrammar(t, text)
	for _, want := range []string{
		"# TYPE grid_jobs_completed counter\n",
		"grid_jobs_completed 64\n",
		"# TYPE queue_depth gauge\n",
		"queue_depth 2.5\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestPrometheusHistogramCumulative(t *testing.T) {
	text := promText(t, Snapshot{
		Histograms: map[string]HistogramSnapshot{
			"hw.estimate_seconds": {Bounds: []float64{0.1, 1}, Counts: []int64{3, 2, 1}, Count: 6, Sum: 4.5},
		},
	})
	checkPromGrammar(t, text)
	// Buckets must be cumulative with +Inf last, per the format spec.
	for _, want := range []string{
		"# TYPE hw_estimate_seconds histogram\n",
		`hw_estimate_seconds_bucket{le="0.1"} 3` + "\n",
		`hw_estimate_seconds_bucket{le="1"} 5` + "\n",
		`hw_estimate_seconds_bucket{le="+Inf"} 6` + "\n",
		"hw_estimate_seconds_sum 4.5\n",
		"hw_estimate_seconds_count 6\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

// TestPrometheusWorkerLabels pins the fleet convention: a ";worker=w1" series
// suffix renders as a label pair, and the same base name from many workers
// shares one TYPE header.
func TestPrometheusWorkerLabels(t *testing.T) {
	f := NewFleet()
	f.Update("w1", 1, Snapshot{Counters: map[string]int64{"grid.worker.jobs": 4}})
	f.Update("w2", 1, Snapshot{Counters: map[string]int64{"grid.worker.jobs": 6}})
	text := promText(t, f.Labeled())
	checkPromGrammar(t, text)
	if got := strings.Count(text, "# TYPE grid_worker_jobs counter"); got != 1 {
		t.Errorf("TYPE headers for one family = %d, want 1:\n%s", got, text)
	}
	for _, want := range []string{
		`grid_worker_jobs{worker="w1"} 4` + "\n",
		`grid_worker_jobs{worker="w2"} 6` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestPrometheusMultipleSnapshotsOneScrape(t *testing.T) {
	local := Snapshot{Counters: map[string]int64{"grid.jobs.completed": 10}}
	fleet := Snapshot{Counters: map[string]int64{"grid.worker.jobs;worker=w1": 10}}
	text := promText(t, local, fleet)
	checkPromGrammar(t, text)
	if !strings.Contains(text, "grid_jobs_completed 10\n") || !strings.Contains(text, `grid_worker_jobs{worker="w1"} 10`+"\n") {
		t.Errorf("combined scrape lost a snapshot:\n%s", text)
	}
}

func TestPrometheusSpecialValues(t *testing.T) {
	text := promText(t, Snapshot{Gauges: map[string]float64{
		"nan": math.NaN(), "pinf": math.Inf(1), "ninf": math.Inf(-1),
	}})
	checkPromGrammar(t, text)
	for _, want := range []string{"nan NaN\n", "pinf +Inf\n", "ninf -Inf\n"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestPrometheusNameSanitization(t *testing.T) {
	text := promText(t, Snapshot{Counters: map[string]int64{
		"hw.estimate-calls": 1,
		"9lives":            2,
		"weird name;bad-key=v;=skipme;label=a\"b": 3,
	}})
	checkPromGrammar(t, text)
	for _, want := range []string{
		"hw_estimate_calls 1\n",
		"_9lives 2\n",
		`weird_name{bad_key="v",label="a\"b"} 3` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestPrometheusDeterministicOrder(t *testing.T) {
	snap := Snapshot{
		Counters: map[string]int64{"b": 1, "a": 2, "c": 3},
		Gauges:   map[string]float64{"z": 1, "m": 2},
	}
	first := promText(t, snap)
	for i := 0; i < 10; i++ {
		if again := promText(t, snap); again != first {
			t.Fatalf("non-deterministic exposition:\n%s\nvs\n%s", first, again)
		}
	}
}

func TestPrometheusHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("scrapes").Add(7)
	h := PrometheusHandler(func() []Snapshot { return []Snapshot{reg.Snapshot()} })
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/prometheus", nil))
	if ct := rr.Header().Get("Content-Type"); ct != promContentType {
		t.Errorf("Content-Type = %q, want %q", ct, promContentType)
	}
	if !strings.Contains(rr.Body.String(), "scrapes 7\n") {
		t.Errorf("body missing counter:\n%s", rr.Body.String())
	}
	checkPromGrammar(t, rr.Body.String())

	// A nil snapshot func serves an empty (but valid) exposition.
	rr2 := httptest.NewRecorder()
	PrometheusHandler(nil).ServeHTTP(rr2, httptest.NewRequest("GET", "/", nil))
	if rr2.Code != 200 {
		t.Errorf("nil-snap handler status = %d", rr2.Code)
	}
}

func TestDebugMuxServesPrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("grid.jobs.completed").Add(64)
	ts := httptest.NewServer(DebugMux(reg))
	defer ts.Close()
	rr := httptest.NewRecorder()
	DebugMux(reg).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/prometheus", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "grid_jobs_completed 64\n") {
		t.Errorf("debug mux exposition missing counter:\n%s", rr.Body.String())
	}
	checkPromGrammar(t, rr.Body.String())
}

// BenchmarkWritePrometheus keeps an eye on scrape cost for a realistically
// sized registry.
func BenchmarkWritePrometheus(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 30; i++ {
		reg.Counter(fmt.Sprintf("c%d", i)).Add(int64(i))
		reg.Histogram(fmt.Sprintf("h%d", i), LatencyBuckets).Observe(float64(i))
	}
	snap := reg.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := WritePrometheus(&sb, snap); err != nil {
			b.Fatal(err)
		}
	}
}
