package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"
)

// Manifest is the machine-readable record of one pipeline invocation: what
// ran, with which configuration and seeds, how long each phase took, what
// the instruments counted, and what failed. Written as JSON next to a run's
// outputs, manifests make runs comparable across commits — the convergence
// and evaluation-cost numbers the AutoPilot/AutoSoC papers report per phase
// come straight out of this file.
type Manifest struct {
	// Tool names the producing command ("autopilot", "dse", "trainsim").
	Tool string `json:"tool"`
	// Args is the raw command line.
	Args []string `json:"args,omitempty"`

	Start       time.Time `json:"start"`
	End         time.Time `json:"end"`
	DurationSec float64   `json:"duration_sec"`

	// Status is "ok" or "error"; Error carries the terminal error text.
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	// Config records the resolved run configuration (flag values).
	Config map[string]any `json:"config,omitempty"`
	// Seeds records every named random seed the run consumed.
	Seeds map[string]int64 `json:"seeds,omitempty"`

	// Phases are the completed phase spans (name, start, duration).
	Phases []SpanDuration `json:"phases,omitempty"`
	// Metrics is the final registry snapshot.
	Metrics Snapshot `json:"metrics"`

	// Failures lists jobs that terminally failed within a failure budget.
	Failures []FailureRecord `json:"failures,omitempty"`
	// Events records notable run occurrences (checkpoint quarantines,
	// resume skips) in emission order.
	Events []RunEvent `json:"events,omitempty"`

	// Grid records distributed-sweep topology when the run sharded Phase 2
	// across grid workers: which worker did what, and at what cost.
	Grid *GridManifest `json:"grid,omitempty"`
}

// GridManifest is the manifest's record of one distributed sweep: fleet-wide
// job accounting plus a per-worker attribution table.
type GridManifest struct {
	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed,omitempty"`
	// JobsExhausted counts jobs that burned every retry attempt.
	JobsExhausted int64 `json:"jobs_exhausted,omitempty"`
	// MergeSkipped counts worker metric instruments dropped from federation
	// for bucket-layout mismatch (see obs.Fleet).
	MergeSkipped int64 `json:"merge_skipped,omitempty"`

	Workers []GridWorkerManifest `json:"workers,omitempty"`
}

// GridWorkerManifest attributes one worker's share of a distributed sweep.
type GridWorkerManifest struct {
	ID string `json:"id"`
	// PID is the worker's lane in the merged Chrome trace.
	PID int `json:"pid,omitempty"`
	// Jobs counts results this worker delivered and the coordinator accepted.
	Jobs int64 `json:"jobs"`
	// Steals counts leases this worker took over from a slower holder;
	// Reclaims counts this worker's leases that expired and were reissued.
	Steals   int64 `json:"steals,omitempty"`
	Reclaims int64 `json:"reclaims,omitempty"`
	// BusySec is coordinator-clock wall time attributed to this worker:
	// the sum over accepted results of delivery minus lease grant.
	BusySec float64 `json:"busy_sec"`
}

// FailureRecord mirrors a fault-layer failure into the manifest without
// importing the fault package (which itself imports obs).
type FailureRecord struct {
	Job      string `json:"job"`
	Kind     string `json:"kind"`
	Attempts int    `json:"attempts"`
	Cause    string `json:"cause"`
}

// RunEvent is one notable occurrence during a run.
type RunEvent struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// WriteFile writes the manifest as indented JSON via a temp-file rename, so
// a crash mid-write never leaves a truncated manifest behind.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
