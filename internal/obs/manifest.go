package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"
)

// Manifest is the machine-readable record of one pipeline invocation: what
// ran, with which configuration and seeds, how long each phase took, what
// the instruments counted, and what failed. Written as JSON next to a run's
// outputs, manifests make runs comparable across commits — the convergence
// and evaluation-cost numbers the AutoPilot/AutoSoC papers report per phase
// come straight out of this file.
type Manifest struct {
	// Tool names the producing command ("autopilot", "dse", "trainsim").
	Tool string `json:"tool"`
	// Args is the raw command line.
	Args []string `json:"args,omitempty"`

	Start       time.Time `json:"start"`
	End         time.Time `json:"end"`
	DurationSec float64   `json:"duration_sec"`

	// Status is "ok" or "error"; Error carries the terminal error text.
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	// Config records the resolved run configuration (flag values).
	Config map[string]any `json:"config,omitempty"`
	// Seeds records every named random seed the run consumed.
	Seeds map[string]int64 `json:"seeds,omitempty"`

	// Phases are the completed phase spans (name, start, duration).
	Phases []SpanDuration `json:"phases,omitempty"`
	// Metrics is the final registry snapshot.
	Metrics Snapshot `json:"metrics"`

	// Failures lists jobs that terminally failed within a failure budget.
	Failures []FailureRecord `json:"failures,omitempty"`
	// Events records notable run occurrences (checkpoint quarantines,
	// resume skips) in emission order.
	Events []RunEvent `json:"events,omitempty"`
}

// FailureRecord mirrors a fault-layer failure into the manifest without
// importing the fault package (which itself imports obs).
type FailureRecord struct {
	Job      string `json:"job"`
	Kind     string `json:"kind"`
	Attempts int    `json:"attempts"`
	Cause    string `json:"cause"`
}

// RunEvent is one notable occurrence during a run.
type RunEvent struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// WriteFile writes the manifest as indented JSON via a temp-file rename, so
// a crash mid-write never leaves a truncated manifest behind.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
