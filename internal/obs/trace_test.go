package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSpanChildSharesLane(t *testing.T) {
	tr := NewTracer()
	root := tr.Span("phase1", "phase")
	child := root.Child("step", "phase")
	child.End()
	root.End()

	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(tr.spans))
	}
	c, r := tr.spans[0], tr.spans[1]
	if c.tid != r.tid {
		t.Fatalf("child tid %d != parent tid %d", c.tid, r.tid)
	}
	// The viewer nests by time containment: the child's interval must lie
	// inside the parent's.
	if c.start < r.start || c.start+c.dur > r.start+r.dur {
		t.Fatalf("child [%v,+%v] not contained in parent [%v,+%v]", c.start, c.dur, r.start, r.dur)
	}
}

func TestSpanRootsGetDistinctLanes(t *testing.T) {
	tr := NewTracer()
	a := tr.Span("a", "run")
	b := tr.Span("b", "run")
	if a.tid == b.tid {
		t.Fatalf("two root spans share tid %d", a.tid)
	}
	a.End()
	b.End()
}

func TestSpanForkLanes(t *testing.T) {
	tr := NewTracer()
	root := tr.Span("sweep", "phase")

	// Two concurrent forks must land on distinct lanes above laneBase.
	j1 := root.Fork("job1", "job")
	j2 := root.Fork("job2", "job")
	if j1.tid < laneBase || j2.tid < laneBase {
		t.Fatalf("fork tids %d/%d below laneBase %d", j1.tid, j2.tid, laneBase)
	}
	if j1.tid == j2.tid {
		t.Fatalf("concurrent forks share lane tid %d", j1.tid)
	}

	// After both end, the next fork reuses the lowest freed lane.
	j1.End()
	j2.End()
	time.Sleep(time.Millisecond) // ensure the new start time is past busy-until
	j3 := root.Fork("job3", "job")
	if j3.tid != j1.tid {
		t.Fatalf("fork after drain got tid %d, want reused lane %d", j3.tid, j1.tid)
	}
	j3.End()
	root.End()
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer()
	s := tr.Span("once", "test")
	s.End()
	s.End()
	s.End()
	if got := len(tr.Durations("test")); got != 1 {
		t.Fatalf("span recorded %d times, want 1", got)
	}
}

func TestDurationsEndOrder(t *testing.T) {
	tr := NewTracer()
	outer := tr.Span("outer", "phase")
	inner := outer.Child("inner", "phase")
	other := tr.Span("other", "misc")
	inner.End()
	other.End()
	outer.End()

	ds := tr.Durations("phase")
	if len(ds) != 2 || ds[0].Name != "inner" || ds[1].Name != "outer" {
		t.Fatalf("durations = %+v, want [inner outer]", ds)
	}
	if ds[1].Seconds < ds[0].Seconds {
		t.Fatalf("outer (%v s) shorter than inner (%v s)", ds[1].Seconds, ds[0].Seconds)
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer()
	root := tr.Span("phase1", "phase").Arg("scenario", "dense")
	job := root.Fork("job", "train")
	job.End()
	root.End()
	open := tr.Span("open", "phase") // still open: must be excluded
	defer open.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var file struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  int64             `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace output does not parse: %v\n%s", err, buf.String())
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", file.DisplayTimeUnit)
	}
	if len(file.TraceEvents) != 2 {
		t.Fatalf("exported %d events, want 2 (open span must be excluded)", len(file.TraceEvents))
	}
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" || ev.PID != 1 {
			t.Fatalf("event %+v: want ph=X pid=1", ev)
		}
		if ev.Name == "open" {
			t.Fatal("open span leaked into the export")
		}
	}
	// End order: the forked job ends first.
	if file.TraceEvents[0].Name != "job" || file.TraceEvents[0].TID != laneBase {
		t.Fatalf("first event = %+v, want job on lane %d", file.TraceEvents[0], laneBase)
	}
	if file.TraceEvents[1].Args["scenario"] != "dense" {
		t.Fatalf("root args = %v, want scenario=dense", file.TraceEvents[1].Args)
	}
}

func TestNilTracerWritesEmptyTrace(t *testing.T) {
	var tr *Tracer
	s := tr.Span("x", "y")
	s.Child("c", "y").End()
	s.Fork("f", "y").Arg("k", "v").End()
	s.End()
	if tr.Durations("y") != nil {
		t.Fatal("nil tracer returned durations")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("nil trace output does not parse: %v", err)
	}
	if evs, ok := file["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Fatalf("nil trace events = %v, want empty array", file["traceEvents"])
	}
}

func TestManifestWriteFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.manifest.json")
	m := &Manifest{
		Tool:        "autopilot",
		Args:        []string{"-scenario", "dense"},
		Start:       time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC),
		End:         time.Date(2026, 8, 6, 12, 0, 5, 0, time.UTC),
		DurationSec: 5,
		Status:      "ok",
		Config:      map[string]any{"pool": 2048},
		Seeds:       map[string]int64{"seed": 1},
		Phases:      []SpanDuration{{Name: "phase1", Seconds: 2.5}},
		Failures:    []FailureRecord{{Job: "train 4L", Kind: "panic", Attempts: 3, Cause: "boom"}},
		Events:      []RunEvent{{Kind: "checkpoint-quarantined", Detail: "db.corrupt"}},
	}
	if err := m.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("manifest does not parse: %v\n%s", err, data)
	}
	if back.Tool != m.Tool || back.Status != m.Status || back.DurationSec != m.DurationSec {
		t.Fatalf("round trip = %+v", back)
	}
	if len(back.Phases) != 1 || back.Phases[0].Name != "phase1" {
		t.Fatalf("phases = %+v", back.Phases)
	}
	if len(back.Failures) != 1 || back.Failures[0].Kind != "panic" {
		t.Fatalf("failures = %+v", back.Failures)
	}
	if len(back.Events) != 1 || back.Events[0].Kind != "checkpoint-quarantined" {
		t.Fatalf("events = %+v", back.Events)
	}
	// No stray temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries after write, want 1", len(entries))
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs").Add(9)
	addr, closeFn, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer closeFn() //nolint:errcheck

	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/debug/metrics"), &snap); err != nil {
		t.Fatalf("/debug/metrics does not parse: %v", err)
	}
	if snap.Counters["jobs"] != 9 {
		t.Fatalf("/debug/metrics counters = %v", snap.Counters)
	}
	var vars map[string]any
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars does not parse: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatal("/debug/vars missing memstats")
	}
	get("/debug/pprof/")
}
