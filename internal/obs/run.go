package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Flags are the shared observability flags of the autopilot, dse, and
// trainsim commands.
type Flags struct {
	// Trace is the Chrome trace_event JSON output path; "" disables tracing.
	Trace string
	// Manifest is the run-manifest JSON output path; "" disables it.
	Manifest string
	// DebugAddr is the live-telemetry HTTP address (e.g. "localhost:6060");
	// "" disables the endpoint.
	DebugAddr string
}

// Register installs the -trace, -manifest, and -debug-addr flags on the
// default flag set.
func (f *Flags) Register() {
	flag.StringVar(&f.Trace, "trace", "", "write a Chrome trace_event JSON file of phase/job spans")
	flag.StringVar(&f.Manifest, "manifest", "", "write a machine-readable run-manifest JSON file")
	flag.StringVar(&f.DebugAddr, "debug-addr", "", "serve live metrics, expvar, and pprof on this HTTP address")
}

// Run is one observed CLI invocation: the Observer the pipeline threads
// through, plus the bookkeeping needed to write the trace and manifest at
// exit. Construct it with Flags.Start and finish with Close.
type Run struct {
	// Obs is the run's observer: metrics always on, tracing on when the
	// trace or manifest output was requested.
	Obs *Observer

	flags    Flags
	tool     string
	start    time.Time
	stopSrv  func() error
	warnings io.Writer

	mu       sync.Mutex
	config   map[string]any
	seeds    map[string]int64
	failures []FailureRecord
	events   []RunEvent
	grid     *GridManifest
}

// Start builds the run's observer from the parsed flags: the metrics
// registry is always live (counters are cheap and feed the exit summary),
// the tracer only when -trace or -manifest asked for span output, and the
// debug HTTP endpoint only when -debug-addr was set.
func (f Flags) Start(tool string) (*Run, error) {
	r := &Run{
		flags: f, tool: tool, start: time.Now(),
		warnings: os.Stderr,
		config:   map[string]any{},
		seeds:    map[string]int64{},
		Obs:      &Observer{Metrics: NewRegistry()},
	}
	if f.Trace != "" || f.Manifest != "" {
		r.Obs.Trace = NewTracer()
	}
	if f.DebugAddr != "" {
		addr, stop, err := ServeDebug(f.DebugAddr, r.Obs.Metrics)
		if err != nil {
			return nil, err
		}
		r.stopSrv = stop
		fmt.Fprintf(r.warnings, "%s: debug endpoint on http://%s/debug/metrics\n", tool, addr)
	}
	return r, nil
}

// SetConfig records one resolved configuration value for the manifest.
func (r *Run) SetConfig(key string, value any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.config[key] = value
}

// SetSeed records one named random seed for the manifest.
func (r *Run) SetSeed(name string, seed int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seeds[name] = seed
}

// AddFailures appends terminally failed jobs to the manifest's failure
// summary.
func (r *Run) AddFailures(fs ...FailureRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failures = append(r.failures, fs...)
}

// SetGrid records the distributed-sweep topology section for the manifest.
func (r *Run) SetGrid(g *GridManifest) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.grid = g
}

// AddEvent records one notable run occurrence (checkpoint quarantine,
// resume) for the manifest.
func (r *Run) AddEvent(kind, detail string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, RunEvent{Kind: kind, Detail: detail})
}

// Summary returns the registry's one-line metrics summary, prefixed for CLI
// output; "" when nothing was counted.
func (r *Run) Summary() string {
	s := r.Obs.Metrics.Summary()
	if s == "" {
		return ""
	}
	return "obs: " + s
}

// Close finishes the run: it stops the debug endpoint and writes the trace
// and manifest files that were requested, stamping the manifest with the
// run's terminal status. File-write problems are reported on stderr and via
// the returned error, but never mask runErr — callers exit on their own
// pipeline error first.
func (r *Run) Close(runErr error) error {
	if r.stopSrv != nil {
		r.stopSrv() //nolint:errcheck // best-effort shutdown
	}
	var firstErr error
	report := func(err error) {
		if err != nil {
			fmt.Fprintf(r.warnings, "%s: %v\n", r.tool, err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if r.flags.Trace != "" {
		f, err := os.Create(r.flags.Trace)
		if err == nil {
			err = r.Obs.Trace.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		report(err)
	}
	if r.flags.Manifest != "" {
		end := time.Now()
		r.mu.Lock()
		m := &Manifest{
			Tool: r.tool, Args: os.Args[1:],
			Start: r.start, End: end, DurationSec: end.Sub(r.start).Seconds(),
			Status: "ok",
			Config: r.config, Seeds: r.seeds,
			Phases:   r.Obs.Trace.Durations("phase"),
			Metrics:  r.Obs.Metrics.Snapshot(),
			Failures: r.failures, Events: r.events,
			Grid: r.grid,
		}
		r.mu.Unlock()
		if runErr != nil {
			m.Status = "error"
			m.Error = runErr.Error()
		}
		report(m.WriteFile(r.flags.Manifest))
	}
	return firstErr
}
