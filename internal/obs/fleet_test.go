package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
)

// exportEvents round-trips the tracer through its JSON export and returns the
// decoded events.
func exportEvents(t *testing.T, tr *Tracer) []traceEvent {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file traceFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	return file.TraceEvents
}

func TestSpanContextIdentity(t *testing.T) {
	if (SpanContext{}).Valid() {
		t.Error("zero SpanContext claims validity")
	}
	var nilSpan *Span
	if sc := nilSpan.Context(); sc.Valid() {
		t.Errorf("nil span produced a valid context: %+v", sc)
	}

	tr := NewTracer()
	a := tr.Span("a", "t")
	b := tr.Span("b", "t")
	ca, cb := a.Context(), b.Context()
	if !ca.Valid() || !cb.Valid() {
		t.Fatalf("live spans produced invalid contexts: %+v %+v", ca, cb)
	}
	if ca.Span == cb.Span {
		t.Error("two spans share one context id")
	}
	if ca.Trace != cb.Trace {
		t.Errorf("one tracer, two trace ids: %d vs %d", ca.Trace, cb.Trace)
	}
	a.End()
	b.End()
}

func TestSpanBufferSequencedShipping(t *testing.T) {
	const offset = int64(5e9) // pretend the consumer's clock is 5s ahead
	b := NewSpanBuffer(offset)

	b.Start("first", "grid", 7, SpanContext{Trace: 1, Span: 42}).Arg("k", "v").End()
	b.Start("second", "grid", 8, SpanContext{}).End()

	p := b.Pending()
	if len(p) != 2 {
		t.Fatalf("pending = %d spans, want 2", len(p))
	}
	if p[0].Seq != 1 || p[1].Seq != 2 {
		t.Errorf("sequence numbers %d,%d, want 1,2", p[0].Seq, p[1].Seq)
	}
	if p[0].Name != "first" || p[0].TID != 7 || p[0].Parent.Span != 42 || p[0].Args["k"] != "v" {
		t.Errorf("span fields lost: %+v", p[0])
	}
	// The stamped start must carry the consumer-clock offset: both spans just
	// happened locally, so consumer-clock-now (local now + offset) minus the
	// stamp should be far under the 5s offset itself.
	if p[0].StartUnixNano <= p[0].StartUnixNano-offset {
		t.Error("offset not applied")
	}

	// Pending is a stable re-readable window (at-least-once resend), not a drain.
	if again := b.Pending(); len(again) != 2 || again[0].Seq != 1 {
		t.Errorf("second Pending read differs: %+v", again)
	}

	// Ack prunes by sequence; re-acking old sequences is harmless.
	b.Ack(1)
	if p := b.Pending(); len(p) != 1 || p[0].Seq != 2 {
		t.Errorf("after Ack(1): %+v", p)
	}
	b.Ack(1)
	b.Ack(0)
	if p := b.Pending(); len(p) != 1 {
		t.Errorf("stale acks pruned live spans: %+v", p)
	}
	b.Ack(2)
	if b.Pending() != nil {
		t.Error("fully acked buffer still pending")
	}

	// New spans after a full ack keep climbing the sequence.
	b.Start("third", "grid", 9, SpanContext{}).End()
	if p := b.Pending(); len(p) != 1 || p[0].Seq != 3 {
		t.Errorf("post-ack span: %+v", p)
	}
}

func TestSpanBufferCapDropsOldest(t *testing.T) {
	b := NewSpanBuffer(0)
	for i := 0; i < maxBufferedSpans+10; i++ {
		b.Start(fmt.Sprintf("s%d", i), "t", 0, SpanContext{}).End()
	}
	p := b.Pending()
	if len(p) != maxBufferedSpans {
		t.Fatalf("pending = %d, want cap %d", len(p), maxBufferedSpans)
	}
	if b.Dropped() != 10 {
		t.Errorf("dropped = %d, want 10", b.Dropped())
	}
	if p[0].Seq != 11 {
		t.Errorf("oldest surviving seq = %d, want 11 (oldest dropped first)", p[0].Seq)
	}
	if p[len(p)-1].Name != fmt.Sprintf("s%d", maxBufferedSpans+9) {
		t.Errorf("newest span lost: %q", p[len(p)-1].Name)
	}
}

func TestSpanBufferNilSafe(t *testing.T) {
	var b *SpanBuffer
	sp := b.Start("x", "y", 0, SpanContext{})
	if sp != nil {
		t.Fatal("nil buffer returned a live span")
	}
	sp.Arg("k", "v").End() // must not panic
	b.Ack(5)
	if b.Pending() != nil || b.Dropped() != 0 {
		t.Error("nil buffer has state")
	}
}

func TestRemoteSpanEndIdempotent(t *testing.T) {
	b := NewSpanBuffer(0)
	sp := b.Start("once", "t", 0, SpanContext{})
	sp.End()
	sp.End()
	if p := b.Pending(); len(p) != 1 {
		t.Errorf("double End recorded %d spans", len(p))
	}
}

func workerSnap(c int64) Snapshot {
	return Snapshot{
		Counters:   map[string]int64{"jobs": c},
		Gauges:     map[string]float64{"queue": float64(c)},
		Histograms: map[string]HistogramSnapshot{"lat": {Bounds: []float64{1, 2}, Counts: []int64{c, 0, 0}, Count: c, Sum: float64(c)}},
	}
}

func TestFleetLatestSnapshotWins(t *testing.T) {
	f := NewFleet()
	if sk := f.Update("w1", 1, workerSnap(5)); len(sk) != 0 {
		t.Fatalf("clean update skipped: %v", sk)
	}
	f.Update("w1", 3, workerSnap(9))

	// A duplicated (re-delivered) older heartbeat must not roll state back or
	// double-count.
	f.Update("w1", 2, workerSnap(7))
	f.Update("w1", 3, workerSnap(999))

	snap, _, ok := f.Worker("w1")
	if !ok {
		t.Fatal("worker unknown after updates")
	}
	if snap.Counters["jobs"] != 9 {
		t.Errorf("jobs = %d, want 9 (latest seq wins, stale ignored)", snap.Counters["jobs"])
	}

	// Cumulative replace, never re-add: merged equals the per-worker sums.
	f.Update("w2", 1, workerSnap(4))
	m := f.Merged()
	if m.Counters["jobs"] != 13 {
		t.Errorf("merged jobs = %d, want 13", m.Counters["jobs"])
	}
	if m.Histograms["lat"].Count != 13 {
		t.Errorf("merged histogram count = %d, want 13", m.Histograms["lat"].Count)
	}
	if got := f.Workers(); len(got) != 2 || got[0] != "w1" || got[1] != "w2" {
		t.Errorf("Workers() = %v", got)
	}
}

func TestFleetSkipsMismatchedLayouts(t *testing.T) {
	f := NewFleet()
	f.Update("w1", 1, workerSnap(1)) // pins lat's layout to bounds {1,2}

	bad := workerSnap(1)
	bad.Histograms["lat"] = HistogramSnapshot{Bounds: []float64{1, 5}, Counts: []int64{1, 0, 0}, Count: 1, Sum: 1}
	skipped := f.Update("w2", 1, bad)
	if len(skipped) != 1 {
		t.Fatalf("skipped = %v, want exactly the mismatched instrument", skipped)
	}
	me := skipped[0]
	if me.Instrument != "lat" || me.Index != 1 || me.WantBound != 2 || me.GotBound != 5 {
		t.Errorf("MergeError fields = %+v", me)
	}
	if f.Skipped() != 1 {
		t.Errorf("Skipped() = %d, want 1", f.Skipped())
	}

	// The rest of w2's snapshot survives — skip one instrument, not the worker.
	snap, _, _ := f.Worker("w2")
	if snap.Counters["jobs"] != 1 {
		t.Error("counter lost alongside the skipped histogram")
	}
	if _, ok := snap.Histograms["lat"]; ok {
		t.Error("mismatched histogram kept in the stored snapshot")
	}
	// And the merge stays total: no layout conflict can reach Merged().
	m := f.Merged()
	if m.Histograms["lat"].Count != 1 {
		t.Errorf("merged count = %d, want w1's 1", m.Histograms["lat"].Count)
	}
}

func TestFleetLabeledSeries(t *testing.T) {
	f := NewFleet()
	f.Update("w1", 1, workerSnap(2))
	f.Update("w2", 1, workerSnap(3))
	l := f.Labeled()
	if l.Counters["jobs;worker=w1"] != 2 || l.Counters["jobs;worker=w2"] != 3 {
		t.Errorf("labeled counters = %v", l.Counters)
	}
	if _, ok := l.Histograms["lat;worker=w1"]; !ok {
		t.Errorf("labeled histograms = %v", l.Histograms)
	}
}

func TestFleetNilSafe(t *testing.T) {
	var f *Fleet
	if sk := f.Update("w", 1, workerSnap(1)); sk != nil {
		t.Error("nil fleet returned skips")
	}
	if f.Workers() != nil || f.Skipped() != 0 {
		t.Error("nil fleet has workers")
	}
	if _, _, ok := f.Worker("w"); ok {
		t.Error("nil fleet knows a worker")
	}
	m := f.Merged()
	if len(m.Counters) != 0 {
		t.Error("nil fleet merged non-empty")
	}
}

// TestHistogramMergeTypedError pins the typed contract: a layout mismatch
// surfaces as *MergeError through errors.As, carrying the disagreeing bound.
func TestHistogramMergeTypedError(t *testing.T) {
	a := NewHistogram([]float64{1, 2, 3})
	b := NewHistogram([]float64{1, 2.5, 3})
	err := a.Merge(b)
	if err == nil {
		t.Fatal("mismatched layouts merged")
	}
	var me *MergeError
	if !errors.As(err, &me) {
		t.Fatalf("error %T is not *MergeError", err)
	}
	if me.Index != 1 || me.WantBound != 2 || me.GotBound != 2.5 {
		t.Errorf("MergeError = %+v", me)
	}
	if me.Error() == "" {
		t.Error("empty error string")
	}

	c := NewHistogram([]float64{1, 2})
	if err := a.Merge(c); err == nil {
		t.Fatal("different bucket counts merged")
	} else if !errors.As(err, &me) || me.Index != -1 || me.WantBounds != 3 || me.GotBounds != 2 {
		t.Errorf("count-mismatch MergeError = %+v", me)
	}
}

func TestTracerIngestAndMergedExport(t *testing.T) {
	tr := NewTracer()
	tr.SetProcessName(LocalPID, "coordinator")
	tr.SetProcessName(2, "worker w0")
	root := tr.Span("sweep", "phase")
	root.End()

	// A remote span that started before the trace's base clamps to zero
	// instead of rendering at a negative timestamp.
	tr.Ingest(2,
		WireSpan{Seq: 1, Name: "early", Cat: "grid", TID: 3, StartUnixNano: tr.BaseUnixNano() - 1e9, DurNanos: 10, Parent: root.Context()},
		WireSpan{Seq: 2, Name: "late", Cat: "grid", TID: 4, StartUnixNano: tr.BaseUnixNano() + 1e6, DurNanos: 20, Args: map[string]string{"b": "2", "a": "1"}},
	)

	evs := exportEvents(t, tr)
	byName := map[string]traceEvent{}
	procs := 0
	for _, e := range evs {
		if e.Ph == "M" {
			procs++
			continue
		}
		byName[e.Name] = e
	}
	if procs != 2 {
		t.Errorf("process_name events = %d, want 2", procs)
	}
	early, ok := byName["early"]
	if !ok {
		t.Fatal("ingested span missing from export")
	}
	if early.PID != 2 || early.TS != 0 {
		t.Errorf("early span pid=%d ts=%v, want pid 2 ts clamped to 0", early.PID, early.TS)
	}
	if early.Args["parent_span"] == "" {
		t.Error("cross-process parent annotation missing")
	}
	if late := byName["late"]; late.Args["a"] != "1" || late.Args["b"] != "2" {
		t.Errorf("ingested args lost: %v", late.Args)
	}
	if local := byName["sweep"]; local.PID != LocalPID {
		t.Errorf("local span pid = %d, want %d", local.PID, LocalPID)
	}
}
