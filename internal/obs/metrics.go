package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter
// no-ops, so call sites resolved from a nil registry cost one predictable
// branch and zero allocations.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone counter not bound to any registry — for
// components (the dse evaluator's cache stats) that count unconditionally
// and mirror into a registry only when observability is on.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n; nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one; nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 for a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 last-value instrument. A nil *Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v; nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds v to the gauge atomically; nil-safe.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value; 0 for a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative-less histogram: bucket i counts
// observations v with v <= Bounds[i] (and greater than the previous bound);
// one implicit overflow bucket counts everything above the last bound.
// Observations are lock-free atomic adds, so hot paths can observe
// concurrently; a nil *Histogram no-ops.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram returns a standalone histogram with the given strictly
// increasing upper bounds. It panics on unsorted or empty bounds — bucket
// layouts are static configuration, not runtime input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// ExpBuckets returns n strictly increasing bounds starting at start and
// multiplying by factor — the standard latency-histogram layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic(fmt.Sprintf("obs: bad exponential buckets (start %v, factor %v, n %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets spans 1µs to ~4s in powers of four — the default layout
// for the pipeline's seconds-valued latency histograms.
var LatencyBuckets = ExpBuckets(1e-6, 4, 12)

// Observe records v; nil-safe and allocation-free.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucket(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// bucket returns the index of the bucket counting v: the smallest i with
// v <= bounds[i], or the overflow bucket.
func (h *Histogram) bucket(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of observations; 0 for a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations; 0 for a nil histogram.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// MergeError is the typed rejection of a histogram merge whose bucket
// layouts disagree. Federation paths (obs.Fleet) use the type to skip and
// count the single mismatched instrument instead of dropping a whole worker
// snapshot.
type MergeError struct {
	// Instrument names the mismatched series when the merge ran inside a
	// snapshot federation; empty for a direct Histogram.Merge.
	Instrument string
	// Index is the first disagreeing bound index (-1 when the bucket counts
	// themselves differ).
	Index                 int
	WantBounds, GotBounds int
	WantBound, GotBound   float64
}

func (e *MergeError) Error() string {
	name := ""
	if e.Instrument != "" {
		name = " " + e.Instrument
	}
	if e.Index < 0 {
		return fmt.Sprintf("obs: merge%s of mismatched histograms (%d vs %d buckets)", name, e.WantBounds+1, e.GotBounds+1)
	}
	return fmt.Sprintf("obs: merge%s of mismatched histogram bounds at %d (%v vs %v)", name, e.Index, e.WantBound, e.GotBound)
}

// Merge folds other's observations into h. Both histograms must share the
// same bucket bounds — a mismatch is a typed *MergeError; merging into or
// from nil is a no-op.
func (h *Histogram) Merge(other *Histogram) error {
	if h == nil || other == nil {
		return nil
	}
	if len(h.bounds) != len(other.bounds) {
		return &MergeError{Index: -1, WantBounds: len(h.bounds), GotBounds: len(other.bounds)}
	}
	for i, b := range other.bounds {
		if h.bounds[i] != b {
			return &MergeError{Index: i, WantBounds: len(h.bounds), GotBounds: len(other.bounds), WantBound: h.bounds[i], GotBound: b}
		}
	}
	for i := range other.counts {
		h.counts[i].Add(other.counts[i].Load())
	}
	h.count.Add(other.count.Load())
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+other.Sum())) {
			return nil
		}
	}
}

// HistogramSnapshot is the JSON-marshalable state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Merge folds other's observations into s. Like Histogram.Merge it demands
// identical bucket layouts, reported as a typed *MergeError; an empty
// receiver adopts other's layout.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) error {
	if len(s.Bounds) == 0 {
		s.Bounds = append([]float64(nil), other.Bounds...)
		s.Counts = make([]int64, len(other.Counts))
	}
	if len(s.Bounds) != len(other.Bounds) {
		return &MergeError{Index: -1, WantBounds: len(s.Bounds), GotBounds: len(other.Bounds)}
	}
	for i, b := range other.Bounds {
		if s.Bounds[i] != b {
			return &MergeError{Index: i, WantBounds: len(s.Bounds), GotBounds: len(other.Bounds), WantBound: s.Bounds[i], GotBound: b}
		}
	}
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	s.Count += other.Count
	s.Sum += other.Sum
	return nil
}

// Registry holds a run's named instruments. Lookups create instruments on
// first use and always return the same instance for a name, so call sites
// can resolve instruments once and hold the pointers across a run. A nil
// *Registry returns nil instruments, which no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty instrument registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use; nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use; nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds on first
// use; later lookups return the existing instrument regardless of bounds.
// Nil-safe.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time, JSON-marshalable copy of a registry's
// instruments.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Merge folds other into s: counters and histogram series sum, gauges take
// other's value (last writer wins — gauges are point-in-time). A histogram
// whose bucket layout disagrees with s's is skipped and returned in the
// mismatch list (typed *MergeError per series) rather than poisoning the
// whole merge — the skip-and-count contract snapshot federation relies on.
func (s *Snapshot) Merge(other Snapshot) []*MergeError {
	var skipped []*MergeError
	if len(other.Counters) > 0 && s.Counters == nil {
		s.Counters = make(map[string]int64, len(other.Counters))
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	if len(other.Gauges) > 0 && s.Gauges == nil {
		s.Gauges = make(map[string]float64, len(other.Gauges))
	}
	for name, v := range other.Gauges {
		s.Gauges[name] = v
	}
	if len(other.Histograms) > 0 && s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot, len(other.Histograms))
	}
	for name, h := range other.Histograms {
		dst := s.Histograms[name]
		if err := dst.Merge(h); err != nil {
			me := &MergeError{Index: -1}
			errors.As(err, &me)
			me.Instrument = name
			skipped = append(skipped, me)
			continue
		}
		s.Histograms[name] = dst
	}
	return skipped
}

// Snapshot captures every instrument's current value. A nil registry yields
// a zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// WriteJSON renders the registry snapshot as indented JSON — what the debug
// endpoint's /debug/metrics serves.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Summary renders the registry as a single "name=value"-per-instrument line
// in sorted name order — the one-line exit report the CLIs print. Zero
// counters are elided; histograms report count and mean. An empty (or nil)
// registry yields "".
func (r *Registry) Summary() string {
	s := r.Snapshot()
	var parts []string
	for name, v := range s.Counters {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	for name, v := range s.Gauges {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", name, v))
		}
	}
	for name, h := range s.Histograms {
		if h.Count > 0 {
			parts = append(parts, fmt.Sprintf("%s.count=%d", name, h.Count),
				fmt.Sprintf("%s.mean=%.3g", name, h.Sum/float64(h.Count)))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}
