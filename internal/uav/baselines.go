package uav

import "fmt"

// ComputeBaseline is a fixed compute platform the paper compares against.
// The E2E workloads in this study are dominated by streaming tens of MB of
// weights per frame, so throughput on a given model is characterized by a
// sustained memory bandwidth; FPS on a model follows from its weight
// footprint. PULP-DroNet is the exception: the paper takes its published
// 6 FPS @ 64 mW operating point as-is (an optimistic assumption, §V-A), so
// its FPS is pinned.
type ComputeBaseline struct {
	Name            string
	PowerW          float64 // board power while running the workload
	WeightG         float64 // module + carrier + cooling as flown
	SustainedGBps   float64 // effective weight-streaming bandwidth
	PinnedFPS       float64 // if > 0, FPS is fixed regardless of model
	NeedsActiveCool bool
}

// FPSFor returns the achievable inference rate for a model with the given
// weight footprint in bytes.
func (b ComputeBaseline) FPSFor(modelWeightBytes int64) float64 {
	if b.PinnedFPS > 0 {
		return b.PinnedFPS
	}
	if modelWeightBytes <= 0 {
		return 0
	}
	return b.SustainedGBps * 1e9 / float64(modelWeightBytes)
}

// Validate checks the baseline definition.
func (b ComputeBaseline) Validate() error {
	if b.PowerW <= 0 || b.WeightG <= 0 || (b.SustainedGBps <= 0 && b.PinnedFPS <= 0) {
		return fmt.Errorf("uav: implausible baseline %+v", b)
	}
	return nil
}

// JetsonTX2 is the NVIDIA Jetson TX2 as flown (module + carrier + heatsink).
func JetsonTX2() ComputeBaseline {
	return ComputeBaseline{Name: "Jetson TX2", PowerW: 12, WeightG: 185, SustainedGBps: 3.0, NeedsActiveCool: true}
}

// XavierNX is the NVIDIA Xavier NX in a stripped flight configuration
// (module + minimal carrier + heatsink).
func XavierNX() ComputeBaseline {
	return ComputeBaseline{Name: "Xavier NX", PowerW: 15, WeightG: 150, SustainedGBps: 4.5, NeedsActiveCool: true}
}

// PULPDroNet is the 64 mW PULP visual-navigation chip; the paper reports its
// published 6 FPS as-is even for the much larger AutoPilot models.
func PULPDroNet() ComputeBaseline {
	return ComputeBaseline{Name: "PULP-DroNet", PowerW: 0.064, WeightG: 5, PinnedFPS: 6}
}

// IntelNCS is the Intel Neural Compute Stick (Table V).
func IntelNCS() ComputeBaseline {
	return ComputeBaseline{Name: "Intel NCS", PowerW: 1.2, WeightG: 30, SustainedGBps: 0.45}
}

// Baselines returns the Fig. 5 comparison platforms (TX2, NX, PULP).
func Baselines() []ComputeBaseline {
	return []ComputeBaseline{JetsonTX2(), XavierNX(), PULPDroNet()}
}

// AllBaselines returns every baseline compute platform: the Fig. 5 trio
// plus the Intel NCS (Table V).
func AllBaselines() []ComputeBaseline {
	return append(Baselines(), IntelNCS())
}
