package uav

import (
	"fmt"

	"autopilot/internal/catalog"
)

// ComputeBaseline is a fixed compute platform the paper compares against.
// The E2E workloads in this study are dominated by streaming tens of MB of
// weights per frame, so throughput on a given model is characterized by a
// sustained memory bandwidth; FPS on a model follows from its weight
// footprint. PULP-DroNet is the exception: the paper takes its published
// 6 FPS @ 64 mW operating point as-is (an optimistic assumption, §V-A), so
// its FPS is pinned.
type ComputeBaseline struct {
	Name            string
	PowerW          float64 // board power while running the workload
	WeightG         float64 // module + carrier + cooling as flown
	SustainedGBps   float64 // effective weight-streaming bandwidth
	PinnedFPS       float64 // if > 0, FPS is fixed regardless of model
	NeedsActiveCool bool
}

// board reconstructs the catalog view of the baseline so throughput and
// validation share the catalog's single implementation.
func (b ComputeBaseline) board() catalog.ComputeBoard {
	return catalog.ComputeBoard{
		Name: b.Name, Label: b.Name,
		PowerW: b.PowerW, WeightG: b.WeightG,
		SustainedGBps: b.SustainedGBps, PinnedFPS: b.PinnedFPS,
		NeedsActiveCool: b.NeedsActiveCool,
	}
}

// FPSFor returns the achievable inference rate for a model with the given
// weight footprint in bytes. The degenerate-model guard (non-positive
// footprint yields 0 FPS, never +Inf) lives in the shared catalog board.
func (b ComputeBaseline) FPSFor(modelWeightBytes int64) float64 {
	return b.board().FPSFor(modelWeightBytes)
}

// Validate checks the baseline definition via the shared catalog validation.
func (b ComputeBaseline) Validate() error {
	if err := b.board().Validate(); err != nil {
		return fmt.Errorf("uav: %w", err)
	}
	return nil
}

// FromBoard materializes the legacy baseline view of a catalog board.
func FromBoard(b catalog.ComputeBoard) ComputeBaseline {
	return ComputeBaseline{
		Name: b.Label, PowerW: b.PowerW, WeightG: b.WeightG,
		SustainedGBps: b.SustainedGBps, PinnedFPS: b.PinnedFPS,
		NeedsActiveCool: b.NeedsActiveCool,
	}
}

// fromBoardName builds the baseline view for a catalog board key.
func fromBoardName(name string) ComputeBaseline {
	b, err := catalog.BoardByName(name)
	if err != nil {
		panic(err) // the baseline boards are always in the catalog
	}
	return FromBoard(b)
}

// JetsonTX2 is the NVIDIA Jetson TX2 as flown (module + carrier + heatsink).
func JetsonTX2() ComputeBaseline { return fromBoardName("jetson-tx2") }

// XavierNX is the NVIDIA Xavier NX in a stripped flight configuration
// (module + minimal carrier + heatsink).
func XavierNX() ComputeBaseline { return fromBoardName("xavier-nx") }

// PULPDroNet is the 64 mW PULP visual-navigation chip; the paper reports its
// published 6 FPS as-is even for the much larger AutoPilot models.
func PULPDroNet() ComputeBaseline { return fromBoardName("pulp-dronet") }

// IntelNCS is the Intel Neural Compute Stick (Table V).
func IntelNCS() ComputeBaseline { return fromBoardName("intel-ncs") }

// Baselines returns the Fig. 5 comparison platforms (TX2, NX, PULP).
func Baselines() []ComputeBaseline {
	return []ComputeBaseline{JetsonTX2(), XavierNX(), PULPDroNet()}
}

// AllBaselines returns every baseline compute platform: the Fig. 5 trio
// plus the Intel NCS (Table V).
func AllBaselines() []ComputeBaseline {
	return append(Baselines(), IntelNCS())
}
