package uav

import (
	"math"
	"testing"
)

func TestPlatformsMatchTableIV(t *testing.T) {
	ps := Platforms()
	if len(ps) != 3 {
		t.Fatalf("platforms = %d", len(ps))
	}
	mini, micro, nano := ps[0], ps[1], ps[2]
	if mini.BatteryCapacitymAh != 6250 || mini.BaseWeightG != 1650 || mini.Class != Mini {
		t.Errorf("Pelican = %+v", mini)
	}
	if micro.BatteryCapacitymAh != 1480 || micro.BaseWeightG != 300 || micro.Class != Micro {
		t.Errorf("Spark = %+v", micro)
	}
	if nano.BatteryCapacitymAh != 500 || nano.BaseWeightG != 50 || nano.Class != Nano {
		t.Errorf("nano = %+v", nano)
	}
}

func TestAllPlatformsValid(t *testing.T) {
	for _, p := range Platforms() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejectsBadPlatform(t *testing.T) {
	if err := (Platform{}).Validate(); err == nil {
		t.Error("empty platform must be invalid")
	}
	heavy := ZhangNano()
	heavy.BaseWeightG = 100000
	if err := heavy.Validate(); err == nil {
		t.Error("platform that cannot lift itself must be invalid")
	}
}

func TestByClass(t *testing.T) {
	for _, c := range []Class{Mini, Micro, Nano} {
		p, err := ByClass(c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if p.Class != c {
			t.Fatalf("ByClass(%v) returned %v", c, p.Class)
		}
	}
	if _, err := ByClass(Class(9)); err == nil {
		t.Fatal("expected error for unknown class")
	}
}

func TestClassStrings(t *testing.T) {
	if Mini.String() != "mini" || Micro.String() != "micro" || Nano.String() != "nano" {
		t.Fatal("bad class names")
	}
}

func TestBatteryEnergy(t *testing.T) {
	// nano: 500 mAh × 3.7 V × 3.6 = 6660 J
	if got := ZhangNano().BatteryJ(); math.Abs(got-6660) > 1 {
		t.Fatalf("nano battery = %g J, want 6660", got)
	}
	// Pelican ~250 kJ
	if got := AscTecPelican().BatteryJ(); got < 200e3 || got > 300e3 {
		t.Fatalf("Pelican battery = %g J", got)
	}
}

func TestMaxAccelDecreasesWithPayload(t *testing.T) {
	for _, p := range Platforms() {
		if a0, a50 := p.MaxAccelMS2(0), p.MaxAccelMS2(50); a50 >= a0 {
			t.Errorf("%s: payload did not reduce acceleration", p.Name)
		}
	}
}

func TestMaxAccelZeroWhenOverloaded(t *testing.T) {
	n := ZhangNano()
	// nano max thrust 2.9 N lifts ~296 g total
	if a := n.MaxAccelMS2(500); a != 0 {
		t.Fatalf("overloaded accel = %g, want 0", a)
	}
	if n.CanLift(500) {
		t.Fatal("nano must not lift 500 g")
	}
	if !n.CanLift(24) {
		t.Fatal("nano must lift a 24 g compute payload")
	}
}

func TestNanoMoreAgileThanSpark(t *testing.T) {
	// paper §V-C: the nano has a higher thrust-to-weight ratio than the Spark
	payload := 24.0
	if ZhangNano().MaxAccelMS2(payload) <= DJISpark().MaxAccelMS2(payload) {
		t.Fatal("nano must out-accelerate the Spark")
	}
}

func TestMaxSensorFPS(t *testing.T) {
	if got := ZhangNano().MaxSensorFPS(); got != 60 {
		t.Fatalf("max sensor FPS = %g, want 60 (Table IV: 30/60)", got)
	}
}

func TestBaselinesValid(t *testing.T) {
	for _, b := range append(Baselines(), IntelNCS()) {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
	if err := (ComputeBaseline{}).Validate(); err == nil {
		t.Error("empty baseline must be invalid")
	}
}

func TestPULPPinnedAtSixFPS(t *testing.T) {
	p := PULPDroNet()
	// paper §V-A: optimistic assumption of 6 FPS at 64 mW regardless of
	// model size
	if p.FPSFor(1e6) != 6 || p.FPSFor(100e6) != 6 {
		t.Fatal("PULP FPS must be pinned at 6")
	}
	if p.PowerW != 0.064 {
		t.Fatalf("PULP power = %g, want 0.064", p.PowerW)
	}
}

func TestBaselineFPSScalesWithModelSize(t *testing.T) {
	tx2 := JetsonTX2()
	small := tx2.FPSFor(10e6)
	big := tx2.FPSFor(50e6)
	if small <= big {
		t.Fatal("smaller models must run faster")
	}
	if math.Abs(small/big-5) > 1e-9 {
		t.Fatalf("FPS must scale inversely with weights: ratio %g", small/big)
	}
	if tx2.FPSFor(0) != 0 {
		t.Fatal("degenerate model size must give 0 FPS")
	}
}

func TestTX2HeavierThanNanoCanCarryComfortably(t *testing.T) {
	// the Fig. 5 story: general-purpose boards crush small UAVs
	n := ZhangNano()
	tx2 := JetsonTX2()
	if a := n.MaxAccelMS2(tx2.WeightG); a > 3 {
		t.Fatalf("nano with TX2 accel = %.1f m/s², should be crippled (< 3)", a)
	}
}

func TestOV9755MatchesTableIII(t *testing.T) {
	s := OV9755()
	if s.PowerW != 0.1 {
		t.Errorf("power = %g, want 0.1 (Table III: 100 mW)", s.PowerW)
	}
	if s.MaxFPS() != 90 {
		t.Errorf("max FPS = %g, want 90 (Table III: 30-90 FPS)", s.MaxFPS())
	}
	if len(s.Modes) != 3 {
		t.Errorf("modes = %d", len(s.Modes))
	}
}

func TestSensorModeAt(t *testing.T) {
	s := OV9755()
	m, err := s.ModeAt(60)
	if err != nil {
		t.Fatal(err)
	}
	if m.Width != 1280 || m.Height != 720 {
		t.Fatalf("60 FPS mode = %+v", m)
	}
	if _, err := s.ModeAt(120); err == nil {
		t.Fatal("expected error for missing mode")
	}
}

func TestSensorPixelRate(t *testing.T) {
	m := SensorMode{Width: 100, Height: 10, FPS: 30}
	if m.PixelRate() != 30000 {
		t.Fatalf("pixel rate = %g", m.PixelRate())
	}
	// faster modes must push more pixels unless the resolution drops
	s := OV9755()
	m30, _ := s.ModeAt(30)
	m60, _ := s.ModeAt(60)
	if m60.PixelRate() <= m30.PixelRate() {
		t.Fatal("60 FPS 720p must out-stream 30 FPS 720p")
	}
}
