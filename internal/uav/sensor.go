package uav

import (
	"fmt"

	"autopilot/internal/catalog"
)

// Sensor is an onboard camera (paper Table III: the OV9755 RGB sensor with
// its 30–90 FPS operating modes). Sensors are fixed components of the DSSoC
// spec; AutoPilot selects a mode, not a sensor.
type Sensor struct {
	Name    string
	PowerW  float64
	WeightG float64
	Modes   []SensorMode
}

// SensorMode is one (resolution, frame-rate) operating point.
type SensorMode struct {
	Width, Height int
	FPS           float64
}

// FromCatalogSensor materializes the legacy sensor view of a catalog entry.
func FromCatalogSensor(s catalog.Sensor) Sensor {
	out := Sensor{Name: s.Label, PowerW: s.PowerW, WeightG: s.WeightG}
	for _, m := range s.Modes {
		out.Modes = append(out.Modes, SensorMode{Width: m.Width, Height: m.Height, FPS: m.FPS})
	}
	return out
}

// OV9755 is the paper's camera: 720p HD at 30/60 FPS and a reduced-field
// 90 FPS mode, 100 mW, 6.24 mm × 3.84 mm module.
func OV9755() Sensor {
	s, err := catalog.SensorByName("ov9755")
	if err != nil {
		panic(err) // the Table III sensor is always in the catalog
	}
	return FromCatalogSensor(s)
}

// ModeAt returns the sensor mode with the given frame rate.
func (s Sensor) ModeAt(fps float64) (SensorMode, error) {
	for _, m := range s.Modes {
		if m.FPS == fps {
			return m, nil
		}
	}
	return SensorMode{}, fmt.Errorf("uav: %s has no %g FPS mode", s.Name, fps)
}

// MaxFPS returns the fastest mode's frame rate.
func (s Sensor) MaxFPS() float64 {
	best := 0.0
	for _, m := range s.Modes {
		if m.FPS > best {
			best = m.FPS
		}
	}
	return best
}

// PixelRate returns pixels per second in a mode, the quantity the MIPI
// interface must sustain.
func (m SensorMode) PixelRate() float64 {
	return float64(m.Width) * float64(m.Height) * m.FPS
}
