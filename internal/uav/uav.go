// Package uav defines the base UAV platforms from the paper's Table IV
// (AscTec Pelican mini-UAV, DJI Spark micro-UAV, and the Zhang et al. nano
// quadrotor), their physics parameters (battery, thrust, rotor geometry),
// the onboard sensors, and the baseline compute platforms the paper compares
// against (Jetson TX2, Xavier NX, PULP-DroNet, Intel NCS).
package uav

import (
	"fmt"

	"autopilot/internal/catalog"
)

// Class is the UAV size category.
type Class int

// UAV classes (paper Table IV).
const (
	Mini Class = iota
	Micro
	Nano
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Mini:
		return "mini"
	case Micro:
		return "micro"
	case Nano:
		return "nano"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Gravity is standard gravitational acceleration (m/s²), shared with the
// component-catalog layer so the lift arithmetic cannot drift.
const Gravity = catalog.Gravity

// Platform is one base UAV system (frame + rotors + battery + flight
// controller), fixed per Table IV; only the autonomy components (compute,
// algorithm) are co-designed.
type Platform struct {
	Name  string
	Class Class

	BatteryCapacitymAh float64
	BatteryVoltage     float64
	BaseWeightG        float64 // frame, rotors, battery, flight controller

	MaxThrustN      float64 // total motor thrust at full throttle
	RotorDiscAreaM2 float64 // summed propeller disc area (for hover power)
	OtherPowerW     float64 // ESC, radio, and other electronics

	ControllerHz float64   // PID inner loop rate (Table IV: 100 kHz commanded, 1 kHz closed loop)
	SensorFPS    []float64 // available RGB sensor frame rates
}

// BatteryJ returns the battery energy in joules, via the catalog's single
// battery-energy conversion.
func (p Platform) BatteryJ() float64 {
	return catalog.Battery{CapacitymAh: p.BatteryCapacitymAh, VoltageV: p.BatteryVoltage}.EnergyJ()
}

// TotalMassKg returns the all-up mass with a compute payload in grams.
func (p Platform) TotalMassKg(payloadG float64) float64 {
	return (p.BaseWeightG + payloadG) / 1000
}

// MaxAccelMS2 returns the maximum lateral acceleration with the payload,
// from the thrust-to-weight ratio: a = g·(T/(m·g) − 1). Zero means the
// platform cannot carry the payload.
func (p Platform) MaxAccelMS2(payloadG float64) float64 {
	m := p.TotalMassKg(payloadG)
	a := Gravity * (p.MaxThrustN/(m*Gravity) - 1)
	if a < 0 {
		return 0
	}
	return a
}

// CanLift reports whether the platform can hover with the payload with at
// least 15% thrust margin for control authority (the catalog's shared
// thrust-to-weight floor).
func (p Platform) CanLift(payloadG float64) bool {
	return catalog.LiftOK(p.MaxThrustN, p.TotalMassKg(payloadG))
}

// MaxSensorFPS returns the fastest available sensor mode.
func (p Platform) MaxSensorFPS() float64 {
	best := 0.0
	for _, f := range p.SensorFPS {
		if f > best {
			best = f
		}
	}
	return best
}

// Validate checks the platform definition.
func (p Platform) Validate() error {
	if p.BatteryCapacitymAh <= 0 || p.BatteryVoltage <= 0 || p.BaseWeightG <= 0 ||
		p.MaxThrustN <= 0 || p.RotorDiscAreaM2 <= 0 || len(p.SensorFPS) == 0 {
		return fmt.Errorf("uav: implausible platform %+v", p)
	}
	if !p.CanLift(0) {
		return fmt.Errorf("uav: %s cannot lift its own base weight", p.Name)
	}
	return nil
}

// ClassFromString resolves a catalog class name to the Table IV class.
func ClassFromString(s string) (Class, error) {
	switch s {
	case "mini":
		return Mini, nil
	case "micro":
		return Micro, nil
	case "nano":
		return Nano, nil
	default:
		return 0, fmt.Errorf("uav: unknown class %q", s)
	}
}

// FromLoadout materializes the legacy Platform view of a catalog loadout:
// the base weight is the loadout's (frame + battery + sensor), the battery
// is the loadout's pack, and everything else comes from the airframe. For
// the Table IV airframes with their default loadouts this reproduces the
// historical platforms bitwise.
func FromLoadout(lo catalog.Loadout) Platform {
	class, err := ClassFromString(lo.Airframe.Class)
	if err != nil {
		class = Nano // catalog entries validate their class; unreachable
	}
	return Platform{
		Name: lo.Airframe.Label, Class: class,
		BatteryCapacitymAh: lo.Battery.CapacitymAh, BatteryVoltage: lo.Battery.VoltageV,
		BaseWeightG: lo.BaseWeightG(),
		MaxThrustN:  lo.Airframe.MaxThrustN, RotorDiscAreaM2: lo.Airframe.RotorDiscAreaM2,
		OtherPowerW:  lo.Airframe.OtherPowerW,
		ControllerHz: lo.Airframe.ControllerHz,
		SensorFPS:    append([]float64(nil), lo.Airframe.SensorFPS...),
	}
}

// fromAirframe builds the default-loadout platform for a catalog airframe.
func fromAirframe(name string) Platform {
	lo, err := catalog.DefaultLoadout(name)
	if err != nil {
		panic(err) // the Table IV airframes are always in the catalog
	}
	return FromLoadout(lo)
}

// AscTecPelican is the mini-UAV (Table IV): 6250 mAh, 1650 g base weight.
func AscTecPelican() Platform { return fromAirframe("pelican") }

// DJISpark is the micro-UAV (Table IV): 1480 mAh, 300 g base weight.
func DJISpark() Platform { return fromAirframe("spark") }

// ZhangNano is the nano-UAV from Zhang et al. (Table IV): 500 mAh, 50 g base
// weight, high thrust-to-weight (the agile platform of Fig. 11).
func ZhangNano() Platform { return fromAirframe("nano") }

// Platforms returns the three Table IV UAVs in mini/micro/nano order.
func Platforms() []Platform {
	return []Platform{AscTecPelican(), DJISpark(), ZhangNano()}
}

// ByClass returns the Table IV platform of the given class.
func ByClass(c Class) (Platform, error) {
	for _, p := range Platforms() {
		if p.Class == c {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("uav: no platform for class %v", c)
}
