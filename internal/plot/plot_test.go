package plot

import (
	"strings"
	"testing"
)

func TestEmptyChart(t *testing.T) {
	c := New("t", "x", "y")
	if !strings.Contains(c.String(), "(no data)") {
		t.Fatal("empty chart must say so")
	}
}

func TestLineAppears(t *testing.T) {
	c := New("roofline", "Hz", "m/s")
	c.AddLine("v", []float64{0, 1, 2, 3}, []float64{0, 1, 2, 3})
	s := c.String()
	if !strings.Contains(s, "roofline") || !strings.Contains(s, "*") {
		t.Fatalf("missing title or marker:\n%s", s)
	}
	if !strings.Contains(s, "v") {
		t.Fatal("legend missing")
	}
}

func TestPointMarkerUsed(t *testing.T) {
	c := New("", "", "")
	c.AddLine("l", []float64{0, 10}, []float64{0, 10})
	c.AddPoint("p", 5, 5, 'P')
	if !strings.Contains(c.String(), "P") {
		t.Fatal("custom marker missing")
	}
}

func TestConstantSeriesNoPanic(t *testing.T) {
	c := New("", "", "")
	c.AddLine("flat", []float64{1, 2, 3}, []float64{5, 5, 5})
	if c.String() == "" {
		t.Fatal("empty render")
	}
}

func TestAxisExtremesPrinted(t *testing.T) {
	c := New("", "", "")
	c.AddLine("l", []float64{2, 50}, []float64{1, 9})
	s := c.String()
	for _, want := range []string{"2", "50", "1", "9"} {
		if !strings.Contains(s, want) {
			t.Errorf("axis label %q missing:\n%s", want, s)
		}
	}
}

func TestTinyDimensionsClamped(t *testing.T) {
	c := New("", "", "")
	c.Width, c.Height = 1, 1
	c.AddLine("l", []float64{0, 1}, []float64{0, 1})
	if c.String() == "" {
		t.Fatal("empty render")
	}
}

func TestMultipleSeriesDistinctMarkers(t *testing.T) {
	c := New("", "", "")
	c.AddLine("a", []float64{0, 1}, []float64{0, 1})
	c.AddLine("b", []float64{0, 1}, []float64{1, 0})
	s := c.String()
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Fatalf("default markers missing:\n%s", s)
	}
}
