// Package plot renders small ASCII charts for the CLI tools and examples:
// line plots for F-1 rooflines and scatter plots for Pareto fronts. It is a
// terminal stand-in for the paper's matplotlib figures.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line or point set.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte // rendering character; 0 defaults per series index
}

// Chart is a fixed-size ASCII canvas.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	Series []Series
}

// markers cycles through distinguishable glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// New returns a chart with a sensible terminal size.
func New(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 72, Height: 20}
}

// Add appends a series.
func (c *Chart) Add(s Series) *Chart {
	c.Series = append(c.Series, s)
	return c
}

// AddLine is a convenience for y = f(x) samples.
func (c *Chart) AddLine(name string, x, y []float64) *Chart {
	return c.Add(Series{Name: name, X: x, Y: y})
}

// AddPoint marks a single labelled point.
func (c *Chart) AddPoint(name string, x, y float64, marker byte) *Chart {
	return c.Add(Series{Name: name, X: []float64{x}, Y: []float64{y}, Marker: marker})
}

// bounds returns the data extents with a small margin.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64, ok bool) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return 0, 0, 0, 0, false
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax, true
}

// String renders the chart.
func (c *Chart) String() string {
	w, h := c.Width, c.Height
	if w < 16 {
		w = 16
	}
	if h < 6 {
		h = 6
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	xmin, xmax, ymin, ymax, ok := c.bounds()
	if !ok {
		b.WriteString("(no data)\n")
		return b.String()
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		m := s.Marker
		if m == 0 {
			m = markers[si%len(markers)]
		}
		for i := range s.X {
			col := int(float64(w-1) * (s.X[i] - xmin) / (xmax - xmin))
			row := h - 1 - int(float64(h-1)*(s.Y[i]-ymin)/(ymax-ymin))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = m
			}
		}
	}
	fmt.Fprintf(&b, "%10.3g ┤%s\n", ymax, string(grid[0]))
	for i := 1; i < h-1; i++ {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&b, "%10.3g ┤%s\n", ymin, string(grid[h-1]))
	fmt.Fprintf(&b, "%10s └%s\n", "", strings.Repeat("─", w))
	fmt.Fprintf(&b, "%11s%-*.3g%*.3g\n", "", w/2, xmin, w-w/2, xmax)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%11sx: %s   y: %s\n", "", c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		m := s.Marker
		if m == 0 {
			m = markers[si%len(markers)]
		}
		fmt.Fprintf(&b, "%11s%c %s\n", "", m, s.Name)
	}
	return b.String()
}
