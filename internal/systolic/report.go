package systolic

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"autopilot/internal/policy"
)

// SimulateBestDataflow evaluates every dataflow per layer and assembles a
// report where each layer uses its fastest mapping — the per-layer mapping
// freedom real compilers for systolic accelerators exploit, and the upper
// bound the fixed-dataflow ablation compares against.
func SimulateBestDataflow(n *policy.Network, c Config) (*Report, map[string]Dataflow, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	flows := []Dataflow{OutputStationary, WeightStationary, InputStationary}
	reports := make([]*Report, len(flows))
	for i, df := range flows {
		cfg := c
		cfg.Dataflow = df
		rep, err := Simulate(n, cfg)
		if err != nil {
			return nil, nil, err
		}
		reports[i] = rep
	}
	best := &Report{Config: c}
	choice := make(map[string]Dataflow, len(n.Specs))
	var utilWeighted float64
	for li := range n.Specs {
		sel := 0
		for i := 1; i < len(flows); i++ {
			if reports[i].Layers[li].Cycles < reports[sel].Layers[li].Cycles {
				sel = i
			}
		}
		lr := reports[sel].Layers[li]
		choice[lr.Name] = flows[sel]
		best.Layers = append(best.Layers, lr)
		best.Cycles += lr.Cycles
		best.ComputeCycles += lr.ComputeCycles
		best.DRAMCycles += lr.DRAMCycles
		best.SRAMReads += lr.SRAMReads
		best.SRAMWrites += lr.SRAMWrites
		best.DRAMReads += lr.DRAMReads
		best.DRAMWrites += lr.DRAMWrites
		utilWeighted += lr.Utilization * float64(lr.MACs)
	}
	best.RuntimeSec = float64(best.Cycles) / (c.FreqMHz * 1e6)
	best.FPS = 1 / best.RuntimeSec
	best.Utilization = utilWeighted / float64(n.MACs())
	return best, choice, nil
}

// WriteCSV emits the per-layer simulation results as CSV — the trace format
// downstream power/analysis tooling consumes (SCALE-Sim's report style).
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"layer", "macs", "compute_cycles", "dram_cycles", "cycles",
		"utilization", "sram_reads", "sram_writes", "dram_reads", "dram_writes",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("systolic: write csv header: %w", err)
	}
	itoa := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, l := range r.Layers {
		rec := []string{
			l.Name, itoa(l.MACs), itoa(l.ComputeCycles), itoa(l.DRAMCycles), itoa(l.Cycles),
			strconv.FormatFloat(l.Utilization, 'f', 4, 64),
			itoa(l.SRAMReads), itoa(l.SRAMWrites), itoa(l.DRAMReads), itoa(l.DRAMWrites),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("systolic: write csv row: %w", err)
		}
	}
	total := []string{
		"total", itoa(sumMACs(r)), itoa(r.ComputeCycles), itoa(r.DRAMCycles), itoa(r.Cycles),
		strconv.FormatFloat(r.Utilization, 'f', 4, 64),
		itoa(r.SRAMReads), itoa(r.SRAMWrites), itoa(r.DRAMReads), itoa(r.DRAMWrites),
	}
	if err := cw.Write(total); err != nil {
		return fmt.Errorf("systolic: write csv total: %w", err)
	}
	cw.Flush()
	return cw.Error()
}

// SRAMBytes returns the total on-chip scratchpad traffic per inference.
func (r *Report) SRAMBytes() int64 { return r.SRAMReads + r.SRAMWrites }

// DRAMBytes returns the total off-chip traffic per inference.
func (r *Report) DRAMBytes() int64 { return r.DRAMReads + r.DRAMWrites }

func sumMACs(r *Report) int64 {
	var s int64
	for _, l := range r.Layers {
		s += l.MACs
	}
	return s
}

// Summary renders a one-line human-readable digest of the report.
func (r *Report) Summary() string {
	return fmt.Sprintf("%s: %.1f FPS (%.2f ms), util %.1f%%, DRAM %.1f MB/frame",
		r.Config, r.FPS, r.RuntimeSec*1e3, 100*r.Utilization,
		float64(r.DRAMReads+r.DRAMWrites)/1e6)
}
