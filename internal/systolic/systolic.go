// Package systolic is the SCALE-Sim substitute: an analytical performance
// model of a systolic-array neural-network accelerator. Given an E2E model's
// layer geometry and a hardware configuration (PE array shape, SRAM sizes,
// dataflow, clock, DRAM bandwidth), it reports per-layer and whole-network
// cycle counts, SRAM/DRAM access counts, runtime and frames per second —
// exactly the quantities AutoPilot's Phase 2 consumes (paper §III-B).
//
// The model follows SCALE-Sim's analytical mode: each layer is lowered to a
// GEMM of shape M×K×N (filters × window × output pixels); the array
// processes it in tiles with fill/drain overheads per the dataflow, and
// double-buffered DRAM transfers overlap compute, so the layer time is
// max(compute cycles, DRAM cycles).
package systolic

import (
	"fmt"

	"autopilot/internal/policy"
)

// Dataflow selects the systolic mapping strategy.
type Dataflow int

// Supported dataflows (the three SCALE-Sim mappings).
const (
	OutputStationary Dataflow = iota
	WeightStationary
	InputStationary
)

// String names the dataflow.
func (d Dataflow) String() string {
	switch d {
	case OutputStationary:
		return "os"
	case WeightStationary:
		return "ws"
	case InputStationary:
		return "is"
	default:
		return fmt.Sprintf("Dataflow(%d)", int(d))
	}
}

// Config is the accelerator hardware configuration (paper Table II search
// dimensions plus the fixed system-integration parameters).
type Config struct {
	Rows, Cols int // PE array shape

	IfmapKB  int // input feature-map scratchpad
	FilterKB int // filter scratchpad
	OfmapKB  int // output feature-map scratchpad

	Dataflow      Dataflow
	FreqMHz       float64 // accelerator clock
	BandwidthGBps float64 // DRAM bandwidth available to the accelerator
}

// PEs returns the number of processing elements.
func (c Config) PEs() int { return c.Rows * c.Cols }

// SRAMBytesTotal returns the total scratchpad capacity in bytes.
func (c Config) SRAMBytesTotal() int64 {
	return int64(c.IfmapKB+c.FilterKB+c.OfmapKB) * 1024
}

// Validate checks the configuration for physical plausibility.
func (c Config) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("systolic: non-positive array %dx%d", c.Rows, c.Cols)
	}
	if c.IfmapKB <= 0 || c.FilterKB <= 0 || c.OfmapKB <= 0 {
		return fmt.Errorf("systolic: non-positive SRAM sizes %d/%d/%d KB", c.IfmapKB, c.FilterKB, c.OfmapKB)
	}
	if c.FreqMHz <= 0 {
		return fmt.Errorf("systolic: non-positive frequency %g MHz", c.FreqMHz)
	}
	if c.BandwidthGBps <= 0 {
		return fmt.Errorf("systolic: non-positive bandwidth %g GB/s", c.BandwidthGBps)
	}
	return nil
}

// String renders the configuration compactly.
func (c Config) String() string {
	return fmt.Sprintf("%dx%d/%s if%dK f%dK of%dK @%.0fMHz %.2fGB/s",
		c.Rows, c.Cols, c.Dataflow, c.IfmapKB, c.FilterKB, c.OfmapKB, c.FreqMHz, c.BandwidthGBps)
}

// gemm is the lowered shape of one layer: out = W(M×K) · X(K×N).
type gemm struct {
	M, K, N int64
}

func lower(l policy.LayerSpec) gemm {
	switch l.Kind {
	case policy.KindConv:
		d := l.Conv
		return gemm{
			M: int64(d.OutC),
			K: int64(d.InC) * int64(d.K) * int64(d.K),
			N: int64(d.OutH()) * int64(d.OutW()),
		}
	default:
		return gemm{M: int64(l.Out), K: int64(l.In), N: 1}
	}
}

// LayerReport is the simulator output for one layer.
type LayerReport struct {
	Name          string
	MACs          int64
	ComputeCycles int64
	DRAMCycles    int64
	Cycles        int64 // max(compute, DRAM) — double buffered
	Utilization   float64

	SRAMReads  int64 // bytes read from scratchpads
	SRAMWrites int64 // bytes written to scratchpads
	DRAMReads  int64 // bytes read from DRAM
	DRAMWrites int64 // bytes written to DRAM
}

// Report is the simulator output for a whole network on a configuration.
type Report struct {
	Config Config
	Layers []LayerReport

	Cycles        int64
	ComputeCycles int64
	DRAMCycles    int64
	RuntimeSec    float64
	FPS           float64
	Utilization   float64 // MAC-weighted mean array utilization

	SRAMReads, SRAMWrites int64
	DRAMReads, DRAMWrites int64
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("systolic: ceilDiv by non-positive")
	}
	return (a + b - 1) / b
}

// computeCycles returns the compute-cycle count and average utilization for
// one GEMM under the dataflow.
func computeCycles(g gemm, c Config) (int64, float64) {
	r, cl := int64(c.Rows), int64(c.Cols)
	var cycles int64
	switch c.Dataflow {
	case OutputStationary:
		// rows ↔ output pixels (N), cols ↔ filters (M); each tile streams K
		// operands plus fill/drain of the array diagonals.
		tiles := ceilDiv(g.N, r) * ceilDiv(g.M, cl)
		perTile := g.K + r + cl - 2
		cycles = tiles * perTile
	case WeightStationary:
		// rows ↔ window (K), cols ↔ filters (M); weights preloaded (r cycles),
		// then N activations stream through.
		folds := ceilDiv(g.K, r) * ceilDiv(g.M, cl)
		perFold := g.N + r + cl - 2 + r
		cycles = folds * perFold
	case InputStationary:
		// rows ↔ window (K), cols ↔ output pixels (N); inputs preloaded, M
		// filter rows stream through.
		folds := ceilDiv(g.K, r) * ceilDiv(g.N, cl)
		perFold := g.M + r + cl - 2 + r
		cycles = folds * perFold
	default:
		panic(fmt.Sprintf("systolic: unknown dataflow %d", int(c.Dataflow)))
	}
	ideal := ceilDiv(g.M*g.K*g.N, r*cl)
	util := float64(ideal) / float64(cycles)
	if util > 1 {
		util = 1
	}
	return cycles, util
}

// traffic returns SRAM and DRAM byte counts for one GEMM. Operands are 8-bit;
// partial sums are 4 bytes. The DRAM model is a two-level tiled-GEMM
// analysis: the operand that fits on-chip is read once from DRAM, the
// streamed operand is re-read once per resident-operand block, and the
// scheduler picks whichever loop order moves fewer bytes.
func traffic(g gemm, c Config, weightsResident bool) (sramR, sramW, dramR, dramW int64) {
	wBytes := g.M * g.K
	inBytes := g.K * g.N // im2col footprint; upper-bounds unique input bytes
	outBytes := g.M * g.N

	// SRAM traffic: the operand mapped onto the array is read once per fold
	// of the opposing dimension; the stationary operand is read once. Outputs
	// are written once, plus partial-sum round trips when K must be folded
	// (WS/IS dataflows).
	switch c.Dataflow {
	case OutputStationary:
		sramR = inBytes*ceilDiv(g.M, int64(c.Cols)) + wBytes*ceilDiv(g.N, int64(c.Rows))
	case WeightStationary:
		sramR = inBytes*ceilDiv(g.M, int64(c.Cols)) + wBytes
	default: // InputStationary
		sramR = inBytes + wBytes*ceilDiv(g.N, int64(c.Cols))
	}
	sramW = outBytes
	kFolds := int64(1)
	if c.Dataflow != OutputStationary {
		kFolds = ceilDiv(g.K, int64(c.Rows))
	}
	if kFolds > 1 {
		psum := outBytes * 4 * (kFolds - 1)
		sramR += psum
		sramW += psum
	}

	// DRAM traffic: weights arrive from DRAM unless the whole network is
	// resident (handled by the caller via weightsResident).
	filterCap := int64(c.FilterKB) * 1024
	ifmapCap := int64(c.IfmapKB) * 1024
	// order A: weights resident in blocks, inputs streamed per block
	blocksW := ceilDiv(wBytes, filterCap)
	costA := wBytes + inBytes*blocksW
	// order B: inputs resident in blocks, weights streamed per block
	blocksI := ceilDiv(inBytes, ifmapCap)
	costB := inBytes + wBytes*blocksI
	cost := costA
	if costB < cost {
		cost = costB
	}
	if weightsResident {
		// weights pinned on-chip: only activations move
		cost = inBytes
	}
	dramR = cost
	dramW = outBytes
	// spilled partial sums when the output tile exceeds the ofmap scratchpad
	if outBytes*4 > int64(c.OfmapKB)*1024 && kFolds > 1 {
		spill := outBytes * 4 * (kFolds - 1)
		dramR += spill
		dramW += spill
	}
	return sramR, sramW, dramR, dramW
}

// Simulate runs the network through the accelerator model.
func Simulate(n *policy.Network, c Config) (*Report, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if n == nil || len(n.Specs) == 0 {
		return nil, fmt.Errorf("systolic: empty network")
	}
	// Weights stay resident across frames only when the entire network fits
	// in the filter scratchpad ("loaded as a one-time operation", Table III).
	var totalWeights int64
	for _, l := range n.Specs {
		totalWeights += lower(l).M * lower(l).K
	}
	resident := totalWeights <= int64(c.FilterKB)*1024

	bytesPerCycle := c.BandwidthGBps * 1e9 / (c.FreqMHz * 1e6)
	rep := &Report{Config: c}
	var utilWeighted float64
	for _, l := range n.Specs {
		g := lower(l)
		cc, util := computeCycles(g, c)
		sr, sw, dr, dw := traffic(g, c, resident)
		dramCycles := int64(float64(dr+dw)/bytesPerCycle) + 1
		cycles := cc
		if dramCycles > cycles {
			cycles = dramCycles
		}
		lr := LayerReport{
			Name: l.Name, MACs: g.M * g.K * g.N,
			ComputeCycles: cc, DRAMCycles: dramCycles, Cycles: cycles,
			Utilization: util,
			SRAMReads:   sr, SRAMWrites: sw, DRAMReads: dr, DRAMWrites: dw,
		}
		rep.Layers = append(rep.Layers, lr)
		rep.Cycles += cycles
		rep.ComputeCycles += cc
		rep.DRAMCycles += dramCycles
		rep.SRAMReads += sr
		rep.SRAMWrites += sw
		rep.DRAMReads += dr
		rep.DRAMWrites += dw
		utilWeighted += util * float64(lr.MACs)
	}
	rep.RuntimeSec = float64(rep.Cycles) / (c.FreqMHz * 1e6)
	rep.FPS = 1 / rep.RuntimeSec
	rep.Utilization = utilWeighted / float64(n.MACs())
	return rep, nil
}
