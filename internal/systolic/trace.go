package systolic

import (
	"fmt"

	"autopilot/internal/policy"
)

// Access is one scratchpad/DRAM access event in a cycle-level trace — the
// output format of SCALE-Sim's trace mode, which the paper's power flow
// feeds to CACTI and the Micron DRAM model.
type Access struct {
	Cycle int64
	Unit  AccessUnit
	Addr  int64
	Write bool
}

// AccessUnit identifies the memory a trace event touches.
type AccessUnit int

// Trace units.
const (
	IfmapSRAM AccessUnit = iota
	FilterSRAM
	OfmapSRAM
)

// String names the unit.
func (u AccessUnit) String() string {
	switch u {
	case IfmapSRAM:
		return "ifmap"
	case FilterSRAM:
		return "filter"
	case OfmapSRAM:
		return "ofmap"
	default:
		return fmt.Sprintf("AccessUnit(%d)", int(u))
	}
}

// TraceStats aggregates a generated trace.
type TraceStats struct {
	Cycles      int64
	MACs        int64
	IfmapReads  int64
	FilterReads int64
	OfmapWrites int64
}

// TraceLayer generates the cycle-level output-stationary schedule for one
// layer and streams every scratchpad access to emit (which may be nil when
// only the stats are wanted). The schedule matches the analytical model's
// OS timing: tiles of Rows×Cols outputs, each streaming K operand pairs
// plus array fill/drain.
//
// Trace generation is O(MACs); guard calls with a size check for large
// layers (the analytical mode exists precisely because full traces of a
// 40M-parameter dense layer are impractical).
func TraceLayer(l policy.LayerSpec, c Config, emit func(Access)) (TraceStats, error) {
	if err := c.Validate(); err != nil {
		return TraceStats{}, err
	}
	if c.Dataflow != OutputStationary {
		return TraceStats{}, fmt.Errorf("systolic: trace mode implements the output-stationary schedule only, got %v", c.Dataflow)
	}
	g := lower(l)
	var st TraceStats
	rows, cols := int64(c.Rows), int64(c.Cols)
	cycle := int64(0)
	for tn := int64(0); tn < g.N; tn += rows {
		nEnd := min64(tn+rows, g.N)
		for tm := int64(0); tm < g.M; tm += cols {
			mEnd := min64(tm+cols, g.M)
			// stream K operand pairs through the tile
			for k := int64(0); k < g.K; k++ {
				// one ifmap byte per active row, one filter byte per active column
				for n := tn; n < nEnd; n++ {
					if emit != nil {
						emit(Access{Cycle: cycle, Unit: IfmapSRAM, Addr: k*g.N + n})
					}
					st.IfmapReads++
				}
				for m := tm; m < mEnd; m++ {
					if emit != nil {
						emit(Access{Cycle: cycle, Unit: FilterSRAM, Addr: m*g.K + k})
					}
					st.FilterReads++
				}
				st.MACs += (nEnd - tn) * (mEnd - tm)
				cycle++
			}
			// drain: every output leaves through the ofmap scratchpad
			for n := tn; n < nEnd; n++ {
				for m := tm; m < mEnd; m++ {
					if emit != nil {
						emit(Access{Cycle: cycle, Unit: OfmapSRAM, Addr: m*g.N + n, Write: true})
					}
					st.OfmapWrites++
				}
			}
			// fill/drain latency of the systolic diagonals
			cycle += rows + cols - 2
		}
	}
	st.Cycles = cycle
	return st, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
