package systolic

import (
	"testing"

	"autopilot/internal/policy"
	"autopilot/internal/tensor"
)

func smallConvLayer() policy.LayerSpec {
	return policy.LayerSpec{
		Name: "conv", Kind: policy.KindConv,
		Conv: tensor.ConvDims{InC: 3, InH: 8, InW: 8, OutC: 8, K: 3, Stride: 1, Pad: 1},
	}
}

func smallDenseLayer() policy.LayerSpec {
	return policy.LayerSpec{Name: "fc", Kind: policy.KindDense, In: 40, Out: 12}
}

func traceConfig() Config {
	return Config{Rows: 4, Cols: 4, IfmapKB: 32, FilterKB: 32, OfmapKB: 32,
		Dataflow: OutputStationary, FreqMHz: 500, BandwidthGBps: 2}
}

func TestTraceMACCountExact(t *testing.T) {
	for _, l := range []policy.LayerSpec{smallConvLayer(), smallDenseLayer()} {
		st, err := TraceLayer(l, traceConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.MACs != l.MACs() {
			t.Fatalf("%s: trace MACs %d, want %d", l.Name, st.MACs, l.MACs())
		}
	}
}

func TestTraceCyclesMatchAnalyticalModel(t *testing.T) {
	// the analytical OS model: ceil(N/R)·ceil(M/C)·(K + R + C − 2)
	l := smallConvLayer()
	c := traceConfig()
	st, err := TraceLayer(l, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := lower(l)
	tiles := ceilDiv(g.N, int64(c.Rows)) * ceilDiv(g.M, int64(c.Cols))
	want := tiles * (g.K + int64(c.Rows) + int64(c.Cols) - 2)
	if st.Cycles != want {
		t.Fatalf("trace cycles %d, analytical %d", st.Cycles, want)
	}
}

func TestTraceOfmapWritesExact(t *testing.T) {
	l := smallDenseLayer()
	st, err := TraceLayer(l, traceConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// every output element written exactly once: M·N
	if st.OfmapWrites != int64(l.Out) {
		t.Fatalf("ofmap writes %d, want %d", st.OfmapWrites, l.Out)
	}
}

func TestTraceEventsConsistentWithStats(t *testing.T) {
	l := smallConvLayer()
	var ifr, fr, ow int64
	var lastCycle int64 = -1
	monotone := true
	st, err := TraceLayer(l, traceConfig(), func(a Access) {
		switch a.Unit {
		case IfmapSRAM:
			ifr++
		case FilterSRAM:
			fr++
		case OfmapSRAM:
			ow++
			if !a.Write {
				monotone = false
			}
		}
		if a.Cycle < lastCycle {
			monotone = false
		}
		lastCycle = a.Cycle
		if a.Addr < 0 {
			monotone = false
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if ifr != st.IfmapReads || fr != st.FilterReads || ow != st.OfmapWrites {
		t.Fatalf("event counts (%d,%d,%d) != stats (%d,%d,%d)",
			ifr, fr, ow, st.IfmapReads, st.FilterReads, st.OfmapWrites)
	}
	if !monotone {
		t.Fatal("trace must be cycle-ordered with valid addresses and write flags")
	}
}

func TestTraceOperandReadsMatchReuseModel(t *testing.T) {
	// OS schedule: ifmap re-read once per column tile, filters once per row
	// tile — the exact reuse structure the analytical SRAM model assumes.
	l := smallConvLayer()
	c := traceConfig()
	g := lower(l)
	st, err := TraceLayer(l, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantIf := g.K * g.N * ceilDiv(g.M, int64(c.Cols))
	wantF := g.M * g.K * ceilDiv(g.N, int64(c.Rows))
	if st.IfmapReads != wantIf {
		t.Fatalf("ifmap reads %d, want %d", st.IfmapReads, wantIf)
	}
	if st.FilterReads != wantF {
		t.Fatalf("filter reads %d, want %d", st.FilterReads, wantF)
	}
}

func TestTraceRejectsNonOSDataflow(t *testing.T) {
	c := traceConfig()
	c.Dataflow = WeightStationary
	if _, err := TraceLayer(smallDenseLayer(), c, nil); err == nil {
		t.Fatal("expected error for non-OS trace")
	}
}

func TestTraceRejectsBadConfig(t *testing.T) {
	if _, err := TraceLayer(smallDenseLayer(), Config{}, nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestAccessUnitStrings(t *testing.T) {
	for _, u := range []AccessUnit{IfmapSRAM, FilterSRAM, OfmapSRAM} {
		if u.String() == "" {
			t.Errorf("empty name for %d", int(u))
		}
	}
}

func TestTraceCrossValidatesAnalyticalSRAMModel(t *testing.T) {
	// The paper's power flow feeds SRAM traces to CACTI. Our analytical
	// model must agree exactly with the generated trace on OS reads and
	// writes, so the power numbers are trace-faithful.
	for _, l := range []policy.LayerSpec{smallConvLayer(), smallDenseLayer()} {
		c := traceConfig()
		st, err := TraceLayer(l, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		net := &policy.Network{Specs: []policy.LayerSpec{l}}
		rep, err := Simulate(net, c)
		if err != nil {
			t.Fatal(err)
		}
		lr := rep.Layers[0]
		if got, want := st.IfmapReads+st.FilterReads, lr.SRAMReads; got != want {
			t.Fatalf("%s: trace reads %d != analytical %d", l.Name, got, want)
		}
		if got, want := st.OfmapWrites, lr.SRAMWrites; got != want {
			t.Fatalf("%s: trace writes %d != analytical %d", l.Name, got, want)
		}
		if st.Cycles != lr.ComputeCycles {
			t.Fatalf("%s: trace cycles %d != analytical compute cycles %d", l.Name, st.Cycles, lr.ComputeCycles)
		}
	}
}
