package systolic

import (
	"bytes"
	"strings"
	"testing"

	"autopilot/internal/policy"
)

func TestSimulateBestDataflowNeverWorse(t *testing.T) {
	n := buildNet(t, policy.Hyper{Layers: 6, Filters: 48})
	c := testConfig()
	c.BandwidthGBps = 64 // compute-bound so dataflows differ
	best, choice, err := SimulateBestDataflow(n, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(choice) != len(n.Specs) {
		t.Fatalf("choice covers %d layers, want %d", len(choice), len(n.Specs))
	}
	for _, df := range []Dataflow{OutputStationary, WeightStationary, InputStationary} {
		cfg := c
		cfg.Dataflow = df
		rep, err := Simulate(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if best.Cycles > rep.Cycles {
			t.Fatalf("best-dataflow cycles %d worse than fixed %v (%d)", best.Cycles, df, rep.Cycles)
		}
	}
	if best.FPS <= 0 || best.Utilization <= 0 {
		t.Fatalf("degenerate best report %+v", best)
	}
}

func TestSimulateBestDataflowMixesMappings(t *testing.T) {
	// the E2E stack has both conv GEMMs (large N) and dense GEMMs (N=1);
	// with a compute-bound budget their best mappings should differ
	n := buildNet(t, policy.Hyper{Layers: 6, Filters: 48})
	c := testConfig()
	c.BandwidthGBps = 64
	_, choice, err := SimulateBestDataflow(n, c)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Dataflow]bool{}
	for _, df := range choice {
		seen[df] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all layers chose the same dataflow %v; expected a mix", choice)
	}
}

func TestSimulateBestDataflowBadConfig(t *testing.T) {
	n := buildNet(t, policy.Hyper{Layers: 2, Filters: 32})
	if _, _, err := SimulateBestDataflow(n, Config{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestWriteCSV(t *testing.T) {
	n := buildNet(t, policy.Hyper{Layers: 3, Filters: 32})
	rep, err := Simulate(n, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// header + one row per layer + total
	if len(lines) != 1+len(n.Specs)+1 {
		t.Fatalf("csv lines = %d, want %d", len(lines), 2+len(n.Specs))
	}
	if !strings.HasPrefix(lines[0], "layer,macs,") {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.HasPrefix(lines[len(lines)-1], "total,") {
		t.Fatalf("missing total row: %q", lines[len(lines)-1])
	}
	for _, l := range lines[1:] {
		if len(strings.Split(l, ",")) != 10 {
			t.Fatalf("row has wrong column count: %q", l)
		}
	}
}

func TestReportSummary(t *testing.T) {
	n := buildNet(t, policy.Hyper{Layers: 2, Filters: 32})
	rep, err := Simulate(n, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	if !strings.Contains(s, "FPS") || !strings.Contains(s, "MB/frame") {
		t.Fatalf("summary = %q", s)
	}
}
