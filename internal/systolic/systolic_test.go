package systolic

import (
	"testing"

	"autopilot/internal/policy"
)

func testConfig() Config {
	return Config{
		Rows: 32, Cols: 32,
		IfmapKB: 256, FilterKB: 256, OfmapKB: 256,
		Dataflow: OutputStationary, FreqMHz: 500, BandwidthGBps: 4,
	}
}

func buildNet(t *testing.T, h policy.Hyper) *policy.Network {
	t.Helper()
	n, err := policy.Build(h, policy.DefaultTemplate())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Rows: 0, Cols: 8, IfmapKB: 32, FilterKB: 32, OfmapKB: 32, FreqMHz: 500, BandwidthGBps: 4},
		{Rows: 8, Cols: 8, IfmapKB: 0, FilterKB: 32, OfmapKB: 32, FreqMHz: 500, BandwidthGBps: 4},
		{Rows: 8, Cols: 8, IfmapKB: 32, FilterKB: 32, OfmapKB: 32, FreqMHz: 0, BandwidthGBps: 4},
		{Rows: 8, Cols: 8, IfmapKB: 32, FilterKB: 32, OfmapKB: 32, FreqMHz: 500, BandwidthGBps: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestConfigAccessors(t *testing.T) {
	c := testConfig()
	if c.PEs() != 1024 {
		t.Errorf("PEs = %d", c.PEs())
	}
	if c.SRAMBytesTotal() != 3*256*1024 {
		t.Errorf("SRAM total = %d", c.SRAMBytesTotal())
	}
	if c.String() == "" {
		t.Error("empty String")
	}
}

func TestDataflowStrings(t *testing.T) {
	if OutputStationary.String() != "os" || WeightStationary.String() != "ws" || InputStationary.String() != "is" {
		t.Fatal("bad dataflow names")
	}
}

func TestSimulateBasicSanity(t *testing.T) {
	n := buildNet(t, policy.Hyper{Layers: 5, Filters: 32})
	rep, err := Simulate(n, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Layers) != len(n.Specs) {
		t.Fatalf("layers = %d, want %d", len(rep.Layers), len(n.Specs))
	}
	if rep.Cycles <= 0 || rep.FPS <= 0 || rep.RuntimeSec <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Utilization <= 0 || rep.Utilization > 1 {
		t.Fatalf("utilization = %g", rep.Utilization)
	}
	var macSum int64
	for _, l := range rep.Layers {
		if l.Cycles < l.ComputeCycles || l.Cycles < l.DRAMCycles {
			t.Fatalf("layer %s: cycles %d below max(compute %d, dram %d)",
				l.Name, l.Cycles, l.ComputeCycles, l.DRAMCycles)
		}
		macSum += l.MACs
	}
	if macSum != n.MACs() {
		t.Fatalf("MAC sum %d != network MACs %d", macSum, n.MACs())
	}
}

func TestSimulateErrors(t *testing.T) {
	n := buildNet(t, policy.Hyper{Layers: 2, Filters: 32})
	if _, err := Simulate(n, Config{}); err == nil {
		t.Fatal("expected config error")
	}
	if _, err := Simulate(nil, testConfig()); err == nil {
		t.Fatal("expected empty-network error")
	}
}

func TestMorePEsNeverSlowerCompute(t *testing.T) {
	n := buildNet(t, policy.Hyper{Layers: 7, Filters: 48})
	prev := int64(1 << 62)
	for _, side := range []int{8, 16, 32, 64, 128, 256} {
		c := testConfig()
		c.Rows, c.Cols = side, side
		rep, err := Simulate(n, c)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ComputeCycles > prev {
			t.Fatalf("%dx%d: compute cycles %d > previous %d", side, side, rep.ComputeCycles, prev)
		}
		prev = rep.ComputeCycles
	}
}

func TestDiminishingReturnsFromHugeArrays(t *testing.T) {
	// once the array exceeds the layer dimensions, extra PEs only add
	// fill/drain cost: utilization must collapse.
	n := buildNet(t, policy.Hyper{Layers: 4, Filters: 32})
	small := testConfig()
	small.Rows, small.Cols = 16, 16
	huge := testConfig()
	huge.Rows, huge.Cols = 1024, 1024
	rs, err := Simulate(n, small)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Simulate(n, huge)
	if err != nil {
		t.Fatal(err)
	}
	if rh.Utilization >= rs.Utilization {
		t.Fatalf("utilization small %g, huge %g: want collapse on huge array",
			rs.Utilization, rh.Utilization)
	}
}

func TestSmallerSRAMMoreDRAMTraffic(t *testing.T) {
	n := buildNet(t, policy.Hyper{Layers: 7, Filters: 64})
	big := testConfig()
	big.IfmapKB, big.FilterKB, big.OfmapKB = 4096, 4096, 4096
	small := testConfig()
	small.IfmapKB, small.FilterKB, small.OfmapKB = 32, 32, 32
	rb, err := Simulate(n, big)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Simulate(n, small)
	if err != nil {
		t.Fatal(err)
	}
	if rs.DRAMReads <= rb.DRAMReads {
		t.Fatalf("DRAM reads small-SRAM %d <= big-SRAM %d", rs.DRAMReads, rb.DRAMReads)
	}
}

func TestMoreBandwidthNeverSlower(t *testing.T) {
	n := buildNet(t, policy.Hyper{Layers: 7, Filters: 48})
	prev := int64(1 << 62)
	for _, bw := range []float64{0.5, 1, 2, 4, 8, 16} {
		c := testConfig()
		c.BandwidthGBps = bw
		rep, err := Simulate(n, c)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cycles > prev {
			t.Fatalf("bw %g: cycles grew", bw)
		}
		prev = rep.Cycles
	}
}

func TestLargeModelIsDRAMBound(t *testing.T) {
	// the fc1 layer is tens of MB of weights: with modest bandwidth the
	// network must be memory bound, the regime the paper's designs sit in.
	n := buildNet(t, policy.Hyper{Layers: 7, Filters: 48})
	c := testConfig()
	c.Rows, c.Cols = 128, 128
	c.BandwidthGBps = 2
	rep, err := Simulate(n, c)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DRAMCycles <= rep.ComputeCycles {
		t.Fatalf("expected DRAM bound: dram %d, compute %d", rep.DRAMCycles, rep.ComputeCycles)
	}
}

func TestResidentWeightsCutDRAMTraffic(t *testing.T) {
	// a tiny network whose weights fit in a 4 MB filter scratchpad should
	// move far fewer DRAM bytes than with a 32 KB scratchpad.
	cfg := policy.TemplateConfig{InputH: 21, InputW: 21, InputC: 1, StateDim: 4, Hidden1: 64, Hidden2: 32, Actions: 8}
	n, err := policy.Build(policy.Hyper{Layers: 2, Filters: 32}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	big := testConfig()
	big.FilterKB = 4096
	small := testConfig()
	small.FilterKB = 32
	rb, _ := Simulate(n, big)
	rs, _ := Simulate(n, small)
	if rb.DRAMReads >= rs.DRAMReads {
		t.Fatalf("resident weights should cut DRAM reads: big %d, small %d", rb.DRAMReads, rs.DRAMReads)
	}
}

func TestDataflowsAllProduceValidReports(t *testing.T) {
	n := buildNet(t, policy.Hyper{Layers: 5, Filters: 48})
	for _, df := range []Dataflow{OutputStationary, WeightStationary, InputStationary} {
		c := testConfig()
		c.Dataflow = df
		rep, err := Simulate(n, c)
		if err != nil {
			t.Fatalf("%v: %v", df, err)
		}
		if rep.Cycles <= 0 || rep.SRAMReads <= 0 {
			t.Fatalf("%v: degenerate report", df)
		}
	}
}

func TestComputeCyclesLowerBoundedByIdeal(t *testing.T) {
	n := buildNet(t, policy.Hyper{Layers: 6, Filters: 48})
	for _, df := range []Dataflow{OutputStationary, WeightStationary, InputStationary} {
		c := testConfig()
		c.Dataflow = df
		rep, err := Simulate(n, c)
		if err != nil {
			t.Fatal(err)
		}
		ideal := n.MACs() / int64(c.PEs())
		if rep.ComputeCycles < ideal {
			t.Fatalf("%v: compute cycles %d below ideal %d", df, rep.ComputeCycles, ideal)
		}
	}
}

func TestHigherFrequencyFasterRuntime(t *testing.T) {
	n := buildNet(t, policy.Hyper{Layers: 4, Filters: 32})
	slow := testConfig()
	slow.FreqMHz = 100
	fast := testConfig()
	fast.FreqMHz = 1000
	// hold bytes-per-second constant: bandwidth stays in GB/s terms
	rSlow, _ := Simulate(n, slow)
	rFast, _ := Simulate(n, fast)
	if rFast.RuntimeSec >= rSlow.RuntimeSec {
		t.Fatalf("1 GHz (%gs) not faster than 100 MHz (%gs)", rFast.RuntimeSec, rSlow.RuntimeSec)
	}
}

func TestFPSInPaperOperatingRange(t *testing.T) {
	// Table III: the E2E NPU spans roughly 22–200+ FPS across the template
	// space. Check a mid-size design lands inside a sane band for the
	// dense-obstacle policy.
	n := buildNet(t, policy.Hyper{Layers: 7, Filters: 48})
	c := Config{Rows: 128, Cols: 128, IfmapKB: 512, FilterKB: 512, OfmapKB: 512,
		Dataflow: OutputStationary, FreqMHz: 500, BandwidthGBps: 2.5}
	rep, err := Simulate(n, c)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FPS < 10 || rep.FPS > 400 {
		t.Fatalf("FPS = %.1f, want within [10,400]", rep.FPS)
	}
}
