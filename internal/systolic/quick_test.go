package systolic

import (
	"testing"
	"testing/quick"

	"autopilot/internal/policy"
	"autopilot/internal/tensor"
)

// TestSimulateInvariantsOnRandomConfigs property-checks the simulator over
// random (model, hardware) points from the Table II space.
func TestSimulateInvariantsOnRandomConfigs(t *testing.T) {
	rng := tensor.NewRNG(99)
	layers := []int{2, 3, 4, 5, 6, 7, 8, 9, 10}
	filters := []int{32, 48, 64}
	pes := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	srams := []int{32, 64, 128, 256, 512, 1024, 2048, 4096}
	flows := []Dataflow{OutputStationary, WeightStationary, InputStationary}
	nets := map[policy.Hyper]*policy.Network{}

	f := func(seed uint16) bool {
		_ = seed
		h := policy.Hyper{Layers: layers[rng.Intn(len(layers))], Filters: filters[rng.Intn(len(filters))]}
		net, ok := nets[h]
		if !ok {
			var err error
			net, err = policy.Build(h, policy.DefaultTemplate())
			if err != nil {
				return false
			}
			nets[h] = net
		}
		c := Config{
			Rows: pes[rng.Intn(len(pes))], Cols: pes[rng.Intn(len(pes))],
			IfmapKB: srams[rng.Intn(len(srams))], FilterKB: srams[rng.Intn(len(srams))],
			OfmapKB:  srams[rng.Intn(len(srams))],
			Dataflow: flows[rng.Intn(len(flows))],
			FreqMHz:  100 + rng.Float64()*900, BandwidthGBps: 0.5 + rng.Float64()*16,
		}
		rep, err := Simulate(net, c)
		if err != nil {
			return false
		}
		if rep.FPS <= 0 || rep.RuntimeSec <= 0 {
			return false
		}
		if rep.Utilization <= 0 || rep.Utilization > 1 {
			return false
		}
		ideal := net.MACs() / int64(c.PEs())
		if rep.ComputeCycles < ideal {
			return false
		}
		var cycles int64
		for _, l := range rep.Layers {
			if l.Cycles < l.ComputeCycles || l.Cycles < l.DRAMCycles {
				return false
			}
			if l.SRAMReads <= 0 || l.DRAMReads < 0 || l.DRAMWrites <= 0 {
				return false
			}
			cycles += l.Cycles
		}
		return cycles == rep.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
