package cpu

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	for _, c := range Catalog() {
		if err := c.Validate(); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
	bad := []Config{
		{},
		{Cores: 4, FreqMHz: 1000, IPC: 1, Efficiency: 0},
		{Cores: 4, FreqMHz: 1000, IPC: 1, Efficiency: 1.5},
		{Cores: -1, FreqMHz: 1000, IPC: 1, Efficiency: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSustainedOpsScaling(t *testing.T) {
	c := Config{Cores: 4, FreqMHz: 1000, IPC: 1.2, Efficiency: 0.5}
	want := 4.0 * 1000e6 * 1.2 * 0.5
	if math.Abs(c.SustainedOpsPerSec()-want) > 1 {
		t.Fatalf("ops = %g, want %g", c.SustainedOpsPerSec(), want)
	}
	double := c
	double.Cores = 8
	if double.SustainedOpsPerSec() != 2*c.SustainedOpsPerSec() {
		t.Fatal("ops must scale linearly with cores")
	}
}

func TestPowerModelCalibration(t *testing.T) {
	pm := DefaultPowerModel()
	a53 := Config{Cores: 4, FreqMHz: 1000, IPC: 1.2, Efficiency: 0.55}
	if p := pm.Power(a53); p < 1.0 || p > 2.5 {
		t.Fatalf("quad A53 power = %.2f W, want ~1.5", p)
	}
	mcu := Catalog()[0]
	if pm.Power(mcu) >= pm.Power(a53) {
		t.Fatal("MCU class must draw less than application class")
	}
}

func TestActionHz(t *testing.T) {
	c := Catalog()[2]
	hz := c.ActionHz(1e6)
	if hz <= 0 {
		t.Fatal("non-positive action rate")
	}
	if c.ActionHz(0) != 0 {
		t.Fatal("degenerate ops must give 0")
	}
	// halving the work doubles the rate
	if math.Abs(c.ActionHz(0.5e6)-2*hz) > 1e-6 {
		t.Fatal("action rate must scale inversely with work")
	}
}

func TestSelectForKneePicksCheapestSufficient(t *testing.T) {
	pm := DefaultPowerModel()
	// light SPA workload: even the MCU reaches 46 Hz
	sel, err := SelectForKnee(500, 46, pm)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Cores != 1 {
		t.Fatalf("selected %v; the MCU suffices for 500 ops/decision", sel)
	}
	// heavy workload: needs an application-class part
	sel, err = SelectForKnee(50e6, 46, pm)
	if err != nil {
		t.Fatal(err)
	}
	if sel.ActionHz(50e6) < 46 {
		t.Fatalf("selected %v cannot reach the knee", sel)
	}
	// impossible workload
	if _, err := SelectForKnee(1e12, 46, pm); err == nil {
		t.Fatal("expected error for impossible workload")
	}
}

func TestCatalogOrderedByCapability(t *testing.T) {
	cat := Catalog()
	for i := 1; i < len(cat); i++ {
		if cat[i].SustainedOpsPerSec() <= cat[i-1].SustainedOpsPerSec() {
			t.Fatalf("catalog entry %d not more capable than %d", i, i-1)
		}
	}
}

func TestString(t *testing.T) {
	if Catalog()[0].String() == "" {
		t.Fatal("empty String")
	}
}
