// Package cpu models the embedded multicore processor that runs
// Sense-Plan-Act autonomy stacks — the hardware template that replaces the
// systolic array when AutoPilot is instantiated for the SPA paradigm
// (paper §VII): a core count, clock, and effective IPC determine sustained
// operation throughput, and a simple per-core power model determines the
// TDP the thermal/weight back end consumes.
package cpu

import "fmt"

// Config is one embedded CPU operating point.
type Config struct {
	Cores      int
	FreqMHz    float64
	IPC        float64 // sustained instructions per cycle per core
	Efficiency float64 // fraction of peak achieved on branchy robotics code
}

// Validate checks plausibility.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.FreqMHz <= 0 || c.IPC <= 0 {
		return fmt.Errorf("cpu: implausible config %+v", c)
	}
	if c.Efficiency <= 0 || c.Efficiency > 1 {
		return fmt.Errorf("cpu: efficiency %g outside (0,1]", c.Efficiency)
	}
	return nil
}

// String renders the configuration.
func (c Config) String() string {
	return fmt.Sprintf("%d-core @%.0fMHz IPC %.1f", c.Cores, c.FreqMHz, c.IPC)
}

// SustainedOpsPerSec returns the throughput available to a well-parallelized
// SPA pipeline.
func (c Config) SustainedOpsPerSec() float64 {
	return float64(c.Cores) * c.FreqMHz * 1e6 * c.IPC * c.Efficiency
}

// PowerModel converts a configuration into watts.
type PowerModel struct {
	BaseW       float64 // uncore + memory controller
	PerCoreMHzW float64 // dynamic power per core per MHz
}

// DefaultPowerModel is calibrated to embedded-class cores (a quad-core
// Cortex-A53 at 1 GHz lands near 1.5 W).
func DefaultPowerModel() PowerModel {
	return PowerModel{BaseW: 0.3, PerCoreMHzW: 0.0003}
}

// Power returns the configuration's power draw.
func (m PowerModel) Power(c Config) float64 {
	return m.BaseW + m.PerCoreMHzW*float64(c.Cores)*c.FreqMHz
}

// Catalog returns representative embedded operating points spanning
// microcontroller-class to application-class processors.
func Catalog() []Config {
	return []Config{
		{Cores: 1, FreqMHz: 200, IPC: 0.8, Efficiency: 0.7},   // MCU class (Cortex-M7)
		{Cores: 2, FreqMHz: 400, IPC: 1.0, Efficiency: 0.6},   // small dual core
		{Cores: 4, FreqMHz: 1000, IPC: 1.2, Efficiency: 0.55}, // Cortex-A53 class
		{Cores: 8, FreqMHz: 1500, IPC: 2.0, Efficiency: 0.5},  // application class
	}
}

// ActionHz returns the SPA decision rate a configuration sustains for a
// pipeline needing opsPerDecision operations.
func (c Config) ActionHz(opsPerDecision float64) float64 {
	if opsPerDecision <= 0 {
		return 0
	}
	return c.SustainedOpsPerSec() / opsPerDecision
}

// SelectForKnee returns the cheapest catalog configuration whose SPA action
// rate reaches the F-1 knee — the SPA analogue of the Phase-3 knee-point
// selection — or an error if none reaches it.
func SelectForKnee(opsPerDecision, kneeHz float64, pm PowerModel) (Config, error) {
	var best Config
	found := false
	for _, c := range Catalog() {
		if c.ActionHz(opsPerDecision) < kneeHz {
			continue
		}
		if !found || pm.Power(c) < pm.Power(best) {
			best = c
			found = true
		}
	}
	if !found {
		return Config{}, fmt.Errorf("cpu: no catalog config reaches %.1f Hz at %.0f ops/decision", kneeHz, opsPerDecision)
	}
	return best, nil
}
