package gp

import (
	"math"
	"testing"

	"autopilot/internal/tensor"
)

func TestSEKernelProperties(t *testing.T) {
	k := SE{Variance: 2, LengthScale: 1}
	a, b := []float64{0, 0}, []float64{1, 1}
	if got := k.Eval(a, a); math.Abs(got-2) > 1e-12 {
		t.Fatalf("k(a,a) = %g, want variance 2", got)
	}
	if k.Eval(a, b) != k.Eval(b, a) {
		t.Fatal("kernel must be symmetric")
	}
	far := []float64{100, 100}
	if k.Eval(a, far) > 1e-10 {
		t.Fatal("kernel must vanish at long range")
	}
	if k.Eval(a, b) >= k.Eval(a, a) {
		t.Fatal("off-diagonal must be below the diagonal")
	}
}

func TestSEKernelDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SE{Variance: 1, LengthScale: 1}.Eval([]float64{1}, []float64{1, 2})
}

func TestCholeskyKnownMatrix(t *testing.T) {
	a := [][]float64{{4, 2}, {2, 3}}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2, 0}, {1, math.Sqrt(2)}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(l[i][j]-want[i][j]) > 1e-12 {
				t.Fatalf("L[%d][%d] = %g, want %g", i, j, l[i][j], want[i][j])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	if _, err := Cholesky([][]float64{{1, 2}, {2, 1}}); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	g := tensor.NewRNG(1)
	n := 6
	// random SPD: A = B·Bᵀ + n·I
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, n)
		for j := range b[i] {
			b[i][j] = g.NormFloat64()
		}
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			for p := 0; p < n; p++ {
				a[i][j] += b[i][p] * b[j][p]
			}
		}
		a[i][i] += float64(n)
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rec := 0.0
			for p := 0; p < n; p++ {
				rec += l[i][p] * l[j][p]
			}
			if math.Abs(rec-a[i][j]) > 1e-9 {
				t.Fatalf("LLᵀ[%d][%d] = %g, want %g", i, j, rec, a[i][j])
			}
		}
	}
}

func TestSolveCholesky(t *testing.T) {
	a := [][]float64{{4, 2}, {2, 3}}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := SolveCholesky(l, []float64{10, 8})
	// verify A·x = b
	if got := 4*x[0] + 2*x[1]; math.Abs(got-10) > 1e-10 {
		t.Fatalf("A·x row0 = %g", got)
	}
	if got := 2*x[0] + 3*x[1]; math.Abs(got-8) > 1e-10 {
		t.Fatalf("A·x row1 = %g", got)
	}
}

func trainGP(t *testing.T) (*GP, [][]float64, []float64) {
	t.Helper()
	var x [][]float64
	var y []float64
	for i := 0; i <= 10; i++ {
		xi := float64(i) / 10 * 2 * math.Pi
		x = append(x, []float64{xi})
		y = append(y, math.Sin(xi))
	}
	g, err := Fit(x, y, SE{Variance: 1, LengthScale: 1}, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	return g, x, y
}

func TestGPInterpolatesTrainingPoints(t *testing.T) {
	g, x, y := trainGP(t)
	for i := range x {
		m, v := g.Predict(x[i])
		if math.Abs(m-y[i]) > 1e-3 {
			t.Fatalf("mean at train point %v = %g, want %g", x[i], m, y[i])
		}
		if v > 1e-4 {
			t.Fatalf("variance at train point = %g, want ~0", v)
		}
	}
}

func TestGPGeneralizesBetweenPoints(t *testing.T) {
	g, _, _ := trainGP(t)
	for _, xq := range []float64{0.55, 1.7, 3.33, 5.01} {
		m, _ := g.Predict([]float64{xq})
		if math.Abs(m-math.Sin(xq)) > 0.05 {
			t.Fatalf("mean at %g = %g, want ~%g", xq, m, math.Sin(xq))
		}
	}
}

func TestGPVarianceGrowsAwayFromData(t *testing.T) {
	g, _, _ := trainGP(t)
	_, nearVar := g.Predict([]float64{1.0})
	_, farVar := g.Predict([]float64{20.0})
	if farVar <= nearVar {
		t.Fatalf("far variance %g <= near variance %g", farVar, nearVar)
	}
	if farVar > 1.0+1e-9 {
		t.Fatalf("far variance %g exceeds prior variance", farVar)
	}
}

func TestFitErrors(t *testing.T) {
	k := SE{Variance: 1, LengthScale: 1}
	if _, err := Fit(nil, nil, k, 1e-6); err == nil {
		t.Fatal("expected error for empty data")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, k, 1e-6); err == nil {
		t.Fatal("expected error for length mismatch")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1}, k, 0); err == nil {
		t.Fatal("expected error for zero noise")
	}
}

func TestFitDuplicatePointsStableWithNoise(t *testing.T) {
	k := SE{Variance: 1, LengthScale: 1}
	x := [][]float64{{1}, {1}, {2}}
	y := []float64{0.9, 1.1, 2}
	g, err := Fit(x, y, k, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := g.Predict([]float64{1})
	if math.Abs(m-1.0) > 0.1 {
		t.Fatalf("duplicate-point mean = %g, want ~1.0", m)
	}
}

func TestGPCopiesTrainingInputs(t *testing.T) {
	k := SE{Variance: 1, LengthScale: 1}
	x := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	g, err := Fit(x, y, k, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := g.Predict([]float64{1})
	x[0][0] = 100 // mutate the caller's slice
	after, _ := g.Predict([]float64{1})
	if before != after {
		t.Fatal("GP must defensively copy training inputs")
	}
}

func TestLogMarginalLikelihoodPrefersTrueScale(t *testing.T) {
	// data from a smooth function: a moderate length scale must beat an
	// absurdly tiny one
	var x [][]float64
	var y []float64
	for i := 0; i <= 20; i++ {
		xi := float64(i) / 20 * 2 * math.Pi
		x = append(x, []float64{xi})
		y = append(y, math.Sin(xi))
	}
	fit := func(scale float64) float64 {
		g, err := Fit(x, y, SE{Variance: 1, LengthScale: scale}, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		return g.LogMarginalLikelihood(y)
	}
	if fit(1.0) <= fit(0.01) {
		t.Fatal("length scale 1.0 must have higher evidence than 0.01 on sin(x)")
	}
}

func TestSelectLengthScale(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i <= 20; i++ {
		xi := float64(i) / 20 * 2 * math.Pi
		x = append(x, []float64{xi})
		y = append(y, math.Sin(xi))
	}
	got, err := SelectLengthScale(x, y, 1, 1e-6, []float64{0.01, 0.1, 1.0, 10.0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1.0 {
		t.Fatalf("selected scale %g, want 1.0", got)
	}
	if _, err := SelectLengthScale(x, y, 1, 1e-6, nil); err == nil {
		t.Fatal("expected error for empty scale list")
	}
	if _, err := SelectLengthScale(x, y, 1, 1e-6, []float64{-1}); err == nil {
		t.Fatal("expected error for negative scale")
	}
}

func TestLogMarginalLikelihoodLengthMismatchPanics(t *testing.T) {
	g, _, y := trainGP(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.LogMarginalLikelihood(y[:3])
}
