package gp

import (
	"math"
	"testing"
)

// TestFitRejectsNonFiniteTargets pins the numerical guardrail: a NaN or Inf
// target must fail Fit up front instead of poisoning the solve.
func TestFitRejectsNonFiniteTargets(t *testing.T) {
	k := SE{Variance: 1, LengthScale: 1}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := Fit([][]float64{{0}, {1}}, []float64{0, bad}, k, 1e-6); err == nil {
			t.Fatalf("Fit accepted target %g", bad)
		}
	}
}

// TestFitJitterRescuesNearSingularCovariance builds a covariance that is
// numerically rank deficient — five identical inputs with vanishing noise —
// and checks the escalating diagonal jitter turns the failing Cholesky into
// a usable fit whose posterior still interpolates the data.
func TestFitJitterRescuesNearSingularCovariance(t *testing.T) {
	k := SE{Variance: 1, LengthScale: 1}
	x := [][]float64{{1}, {1}, {1}, {1}, {1}}
	y := []float64{2, 2, 2, 2, 2}
	noise := 1e-18 // positive but far below float64 resolution at K[i][i]=1

	// The raw covariance must actually be beyond Cholesky without the
	// jitter — otherwise this test exercises nothing.
	n := len(x)
	raw := make([][]float64, n)
	for i := range raw {
		raw[i] = make([]float64, n)
		for j := range raw[i] {
			raw[i][j] = k.Eval(x[i], x[j])
		}
		raw[i][i] += noise
	}
	if _, err := Cholesky(raw); err == nil {
		t.Skip("covariance factorizes without jitter on this platform; nothing to rescue")
	}

	g, err := Fit(x, y, k, noise)
	if err != nil {
		t.Fatalf("jitter escalation did not rescue the fit: %v", err)
	}
	m, v := g.Predict([]float64{1})
	if math.Abs(m-2) > 1e-3 {
		t.Fatalf("rescued posterior mean = %g, want ~2", m)
	}
	if math.IsNaN(v) || v < -1e-9 {
		t.Fatalf("rescued posterior variance = %g", v)
	}
}

// TestFitJitterGivesUpOnIndefinite checks the schedule is bounded: a truly
// indefinite "kernel" still fails cleanly after the last escalation.
func TestFitJitterGivesUpOnIndefinite(t *testing.T) {
	if _, err := Fit([][]float64{{0}, {3}}, []float64{0, 1}, indefiniteKernel{}, 1e-6); err == nil {
		t.Fatal("Fit accepted an indefinite covariance")
	}
}

// indefiniteKernel yields a strongly indefinite matrix (off-diagonal far
// exceeding the diagonal) that no small jitter can repair.
type indefiniteKernel struct{}

func (indefiniteKernel) Eval(a, b []float64) float64 {
	if a[0] == b[0] {
		return 1
	}
	return 100
}
