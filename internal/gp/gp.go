// Package gp implements Gaussian-process regression with the squared
// exponential kernel — the statistical model the paper's Bayesian optimizer
// builds per objective (§III-B: "the widely-used squared exponential (SE)
// kernel is used due to its simplicity").
package gp

import (
	"fmt"
	"math"
)

// Kernel is a positive-definite covariance function.
type Kernel interface {
	Eval(a, b []float64) float64
}

// SE is the squared exponential (RBF) kernel
// k(a,b) = Variance · exp(-½ Σ ((aᵢ-bᵢ)/LengthScale)²).
type SE struct {
	Variance    float64
	LengthScale float64
}

// Eval computes the kernel value.
func (k SE) Eval(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("gp: kernel input dims %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		d := (a[i] - b[i]) / k.LengthScale
		s += d * d
	}
	return k.Variance * math.Exp(-0.5*s)
}

// GP is a fitted Gaussian-process posterior.
type GP struct {
	kernel Kernel
	noise  float64
	x      [][]float64
	l      [][]float64 // Cholesky factor of K + noise·I
	alpha  []float64   // (K + noise·I)⁻¹ y
}

// jitterSchedule holds the escalating diagonal jitter magnitudes tried when
// an initial Cholesky factorization fails: each is added to the covariance
// diagonal (scaled by its mean magnitude) and the factorization retried. A
// factorization that succeeds without jitter is never perturbed, so
// well-conditioned fits stay bitwise identical to the unguarded path.
var jitterSchedule = []float64{1e-10, 1e-8, 1e-6, 1e-4}

// Fit conditions a GP on observations (X, y). noise is the observation
// noise variance added to the kernel diagonal; it must be positive to keep
// the system well conditioned. Targets must be finite. If the covariance is
// numerically indefinite (near-duplicate inputs, extreme length scales), Fit
// escalates through a small diagonal-jitter schedule before giving up.
func Fit(x [][]float64, y []float64, kernel Kernel, noise float64) (*GP, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("gp: no training points")
	}
	if len(y) != n {
		return nil, fmt.Errorf("gp: %d inputs but %d targets", n, len(y))
	}
	if noise <= 0 {
		return nil, fmt.Errorf("gp: noise variance must be positive, got %g", noise)
	}
	for i, yi := range y {
		if math.IsNaN(yi) || math.IsInf(yi, 0) {
			return nil, fmt.Errorf("gp: target %d is non-finite (%g)", i, yi)
		}
	}
	k := make([][]float64, n)
	meanDiag := 0.0
	for i := range k {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := kernel.Eval(x[i], x[j])
			k[i][j] = v
			k[j][i] = v
		}
		k[i][i] += noise
		meanDiag += k[i][i]
	}
	meanDiag /= float64(n)
	l, err := Cholesky(k)
	for _, jitter := range jitterSchedule {
		if err == nil {
			break
		}
		eps := jitter * meanDiag
		for i := 0; i < n; i++ {
			k[i][i] += eps
		}
		l, err = Cholesky(k)
	}
	if err != nil {
		return nil, fmt.Errorf("gp: covariance not positive definite: %w", err)
	}
	alpha := SolveCholesky(l, y)
	xs := make([][]float64, n)
	for i, xi := range x {
		xs[i] = append([]float64(nil), xi...)
	}
	return &GP{kernel: kernel, noise: noise, x: xs, l: l, alpha: alpha}, nil
}

// Predict returns the posterior mean and variance at a query point. The
// variance is the latent-function variance (it excludes observation noise)
// and is clamped at zero against round-off.
func (g *GP) Predict(q []float64) (mean, variance float64) {
	n := len(g.x)
	ks := make([]float64, n)
	for i := range ks {
		ks[i] = g.kernel.Eval(g.x[i], q)
	}
	for i := range ks {
		mean += ks[i] * g.alpha[i]
	}
	v := forwardSolve(g.l, ks)
	variance = g.kernel.Eval(q, q)
	for _, vi := range v {
		variance -= vi * vi
	}
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// LogMarginalLikelihood returns the GP's log marginal likelihood
// log p(y | X, θ) = -½ yᵀα - Σ log Lᵢᵢ - (n/2) log 2π, used to select
// kernel hyper-parameters.
func (g *GP) LogMarginalLikelihood(y []float64) float64 {
	n := len(g.x)
	if len(y) != n {
		panic(fmt.Sprintf("gp: %d targets for %d training points", len(y), n))
	}
	ll := 0.0
	for i := range y {
		ll -= 0.5 * y[i] * g.alpha[i]
	}
	for i := 0; i < n; i++ {
		ll -= math.Log(g.l[i][i])
	}
	ll -= float64(n) / 2 * math.Log(2*math.Pi)
	return ll
}

// SelectLengthScale fits one GP per candidate length scale and returns the
// scale maximizing the log marginal likelihood — the standard type-II
// maximum-likelihood model selection, over a grid because the spaces here
// are small.
func SelectLengthScale(x [][]float64, y []float64, variance, noise float64, scales []float64) (float64, error) {
	if len(scales) == 0 {
		return 0, fmt.Errorf("gp: no candidate length scales")
	}
	best, bestLL := scales[0], math.Inf(-1)
	for _, s := range scales {
		if s <= 0 {
			return 0, fmt.Errorf("gp: non-positive length scale %g", s)
		}
		m, err := Fit(x, y, SE{Variance: variance, LengthScale: s}, noise)
		if err != nil {
			continue // ill-conditioned at this scale; skip
		}
		if ll := m.LogMarginalLikelihood(y); ll > bestLL {
			best, bestLL = s, ll
		}
	}
	if math.IsInf(bestLL, -1) {
		return 0, fmt.Errorf("gp: no length scale produced a valid fit")
	}
	return best, nil
}

// Cholesky returns the lower-triangular factor L with A = L·Lᵀ, or an error
// if A is not positive definite.
func Cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for p := 0; p < j; p++ {
				sum -= l[i][p] * l[j][p]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("gp: pivot %d is %g", i, sum)
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// SolveCholesky solves (L·Lᵀ)·x = b given the Cholesky factor L.
func SolveCholesky(l [][]float64, b []float64) []float64 {
	y := forwardSolve(l, b)
	return backSolve(l, y)
}

func forwardSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l[i][j] * y[j]
		}
		y[i] = s / l[i][i]
	}
	return y
}

func backSolve(l [][]float64, y []float64) []float64 {
	n := len(y)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= l[j][i] * x[j]
		}
		x[i] = s / l[i][i]
	}
	return x
}
