package bayesopt

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestEvaluateBatchMatchesSequential pins the batch hook's contract: routing
// the initial samples through EvaluateBatch must leave the evaluation
// sequence, hypervolume trace and final front bit-identical to the
// sequential Evaluate path.
func TestEvaluateBatchMatchesSequential(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitSamples, cfg.Iterations, cfg.ScreenSize = 8, 12, 32

	seq, err := Optimize(zdt1Grid(12), cfg)
	if err != nil {
		t.Fatal(err)
	}

	p := zdt1Grid(12)
	batchCalls := 0
	p.EvaluateBatch = func(indices []int) [][]float64 {
		batchCalls++
		out := make([][]float64, len(indices))
		for j, i := range indices {
			out[j] = p.Evaluate(i)
		}
		return out
	}
	bat, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if batchCalls != 1 {
		t.Fatalf("EvaluateBatch called %d times, want exactly once (init phase)", batchCalls)
	}
	if !reflect.DeepEqual(seq.Evaluations, bat.Evaluations) {
		t.Fatal("evaluation sequences diverge between batch and sequential paths")
	}
	if !reflect.DeepEqual(seq.HypervolumeTrace, bat.HypervolumeTrace) {
		t.Fatal("hypervolume traces diverge")
	}
	if !reflect.DeepEqual(seq.FrontIndices, bat.FrontIndices) {
		t.Fatal("final fronts diverge")
	}
}

func TestEvaluateBatchSizeMismatchRejected(t *testing.T) {
	p := zdt1Grid(8)
	p.EvaluateBatch = func(indices []int) [][]float64 {
		return nil // wrong length
	}
	cfg := DefaultConfig()
	cfg.InitSamples, cfg.Iterations = 4, 0
	if _, err := Optimize(p, cfg); err == nil {
		t.Fatal("expected error for short batch result")
	}
}

func TestOptimizeContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig()
	cfg.InitSamples, cfg.Iterations = 4, 4
	if _, err := OptimizeContext(ctx, zdt1Grid(8), cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}

	// cancel mid-run: after the init phase, before guided iterations finish
	ctx2, cancel2 := context.WithCancel(context.Background())
	p := zdt1Grid(8)
	n := 0
	inner := p.Evaluate
	p.Evaluate = func(i int) []float64 {
		n++
		if n == cfg.InitSamples {
			cancel2()
		}
		return inner(i)
	}
	if _, err := OptimizeContext(ctx2, p, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run err = %v, want wrapped context.Canceled", err)
	}
}
