package bayesopt

import (
	"math"
	"testing"
)

// zdt1Grid builds a discrete two-objective problem with a known Pareto front:
// x = (a, b) on a grid, f1 = a, f2 = b + (1-a)²; front at b = 0.
func zdt1Grid(n int) Problem {
	var cands [][]float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cands = append(cands, []float64{float64(i) / float64(n-1), float64(j) / float64(n-1)})
		}
	}
	return Problem{
		Candidates: cands,
		Evaluate: func(i int) []float64 {
			a, b := cands[i][0], cands[i][1]
			return []float64{a, b + (1-a)*(1-a)}
		},
		NumObjectives: 2,
		Ref:           []float64{2, 3},
	}
}

func TestOptimizeValidation(t *testing.T) {
	p := zdt1Grid(5)
	if _, err := Optimize(Problem{}, DefaultConfig()); err == nil {
		t.Error("expected error for empty problem")
	}
	bad := p
	bad.Ref = []float64{1}
	if _, err := Optimize(bad, DefaultConfig()); err == nil {
		t.Error("expected error for ref dim mismatch")
	}
	cfg := DefaultConfig()
	cfg.InitSamples = 0
	if _, err := Optimize(p, cfg); err == nil {
		t.Error("expected error for zero init samples")
	}
}

func TestOptimizeEvaluatesEachCandidateOnce(t *testing.T) {
	p := zdt1Grid(6)
	calls := map[int]int{}
	inner := p.Evaluate
	p.Evaluate = func(i int) []float64 {
		calls[i]++
		return inner(i)
	}
	cfg := DefaultConfig()
	cfg.InitSamples, cfg.Iterations, cfg.ScreenSize = 8, 12, 16
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluations) != 20 {
		t.Fatalf("evaluations = %d, want 20", len(res.Evaluations))
	}
	for i, c := range calls {
		if c != 1 {
			t.Fatalf("candidate %d evaluated %d times", i, c)
		}
	}
}

func TestOptimizeBudgetCappedBySpace(t *testing.T) {
	p := zdt1Grid(3) // 9 candidates
	cfg := DefaultConfig()
	cfg.InitSamples, cfg.Iterations = 5, 50
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluations) != 9 {
		t.Fatalf("evaluations = %d, want all 9", len(res.Evaluations))
	}
}

func TestHypervolumeTraceMonotone(t *testing.T) {
	p := zdt1Grid(8)
	cfg := DefaultConfig()
	cfg.InitSamples, cfg.Iterations, cfg.ScreenSize = 6, 20, 32
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.HypervolumeTrace); i++ {
		if res.HypervolumeTrace[i] < res.HypervolumeTrace[i-1]-1e-12 {
			t.Fatalf("trace decreased at %d: %g -> %g", i, res.HypervolumeTrace[i-1], res.HypervolumeTrace[i])
		}
	}
}

func TestFrontIsNonDominatedAndOnTrueFront(t *testing.T) {
	p := zdt1Grid(10)
	cfg := DefaultConfig()
	cfg.InitSamples, cfg.Iterations, cfg.ScreenSize = 10, 40, 64
	cfg.Seed = 3
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := res.Front()
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	for i, a := range front {
		for j, b := range front {
			if i == j {
				continue
			}
			dom := true
			strict := false
			for k := range a {
				if a[k] > b[k] {
					dom = false
				}
				if a[k] < b[k] {
					strict = true
				}
			}
			if dom && strict {
				t.Fatalf("front point %v dominates front point %v", a, b)
			}
		}
	}
	// with 50 evaluations on a 100-point grid, BO should discover at least
	// a few of the 10 true-front points (b = 0)
	trueFront := 0
	for _, idx := range res.FrontIndices {
		if p.Candidates[idx][1] == 0 {
			trueFront++
		}
	}
	if trueFront < 3 {
		t.Fatalf("only %d true-front points found", trueFront)
	}
}

func TestBOBeatsRandomSearchOnBudget(t *testing.T) {
	p := zdt1Grid(20) // 400 candidates
	budget := 40
	cfg := DefaultConfig()
	cfg.InitSamples, cfg.Iterations, cfg.ScreenSize = 10, budget-10, 128
	cfg.Seed = 7
	bo, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// mean over a few random seeds to avoid flakiness
	var randHV float64
	const seeds = 5
	for s := int64(0); s < seeds; s++ {
		r, err := RandomSearch(p, budget, 100+s)
		if err != nil {
			t.Fatal(err)
		}
		randHV += r.HypervolumeTrace[len(r.HypervolumeTrace)-1]
	}
	randHV /= seeds
	boHV := bo.HypervolumeTrace[len(bo.HypervolumeTrace)-1]
	if boHV < randHV {
		t.Fatalf("BO hypervolume %.4f below mean random-search %.4f", boHV, randHV)
	}
}

func TestRandomSearchValidation(t *testing.T) {
	if _, err := RandomSearch(Problem{}, 10, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestRandomSearchBudgetCap(t *testing.T) {
	p := zdt1Grid(3)
	res, err := RandomSearch(p, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluations) != 9 {
		t.Fatalf("evaluations = %d, want 9", len(res.Evaluations))
	}
}

func TestOptimizeDeterministicForSeed(t *testing.T) {
	p := zdt1Grid(8)
	cfg := DefaultConfig()
	cfg.InitSamples, cfg.Iterations, cfg.ScreenSize = 6, 10, 32
	a, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(zdt1Grid(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Evaluations) != len(b.Evaluations) {
		t.Fatal("lengths differ")
	}
	for i := range a.Evaluations {
		if a.Evaluations[i].Index != b.Evaluations[i].Index {
			t.Fatalf("evaluation %d differs: %d vs %d", i, a.Evaluations[i].Index, b.Evaluations[i].Index)
		}
	}
}

func TestAcquisitionPrefersNonDominatedRegion(t *testing.T) {
	// direct unit check on the acquisition machinery via a 1-candidate run:
	// a constant-objective problem must not crash the GP (zero variance path)
	cands := [][]float64{{0}, {0.5}, {1}}
	p := Problem{
		Candidates:    cands,
		Evaluate:      func(i int) []float64 { return []float64{1, 1} },
		NumObjectives: 2,
		Ref:           []float64{2, 2},
	}
	cfg := DefaultConfig()
	cfg.InitSamples, cfg.Iterations = 2, 1
	if _, err := Optimize(p, cfg); err != nil {
		t.Fatalf("constant objectives: %v", err)
	}
}

func TestOptimizeSingleObjectiveFindsMinimum(t *testing.T) {
	// 1-objective degenerate case: BO should find the global minimum of a
	// smooth function on a line.
	n := 50
	var cands [][]float64
	for i := 0; i < n; i++ {
		cands = append(cands, []float64{float64(i) / float64(n-1)})
	}
	f := func(x float64) float64 { return (x - 0.37) * (x - 0.37) }
	p := Problem{
		Candidates:    cands,
		Evaluate:      func(i int) []float64 { return []float64{f(cands[i][0])} },
		NumObjectives: 1,
		Ref:           []float64{2},
	}
	cfg := DefaultConfig()
	cfg.InitSamples, cfg.Iterations, cfg.ScreenSize = 5, 15, 50
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	for _, e := range res.Evaluations {
		if e.Objectives[0] < best {
			best = e.Objectives[0]
		}
	}
	if best > 0.01 {
		t.Fatalf("best objective %.4f, want near 0 (20 evals on 50 points)", best)
	}
}

func TestAcquisitionStrings(t *testing.T) {
	if AcqSMSEGO.String() != "sms-ego" || AcqScalarizedEI.String() != "scalarized-ei" {
		t.Fatal("bad acquisition names")
	}
}

func TestScalarizedEIOptimizes(t *testing.T) {
	p := zdt1Grid(12)
	cfg := DefaultConfig()
	cfg.Acquisition = AcqScalarizedEI
	cfg.InitSamples, cfg.Iterations, cfg.ScreenSize = 8, 24, 64
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FrontIndices) == 0 {
		t.Fatal("empty front from EI")
	}
	// EI must still beat pure luck on average over a fair budget
	final := res.HypervolumeTrace[len(res.HypervolumeTrace)-1]
	if final <= 0 {
		t.Fatalf("EI hypervolume %g", final)
	}
}

func TestStdNormalHelpers(t *testing.T) {
	if math.Abs(stdNormalCDF(0)-0.5) > 1e-12 {
		t.Fatalf("Phi(0) = %g", stdNormalCDF(0))
	}
	if stdNormalCDF(5) < 0.999 || stdNormalCDF(-5) > 0.001 {
		t.Fatal("CDF tails wrong")
	}
	if math.Abs(stdNormalPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Fatalf("phi(0) = %g", stdNormalPDF(0))
	}
}
