// Package bayesopt implements the paper's Phase-2 optimizer: multi-objective
// Bayesian optimization over a discrete design space with the
// S-Metric-Selection Efficient Global Optimization (SMS-EGO) acquisition
// function (§III-B). One Gaussian process is fit per objective; candidates
// are scored by the hypervolume contribution of their lower-confidence-bound
// estimate over the current Pareto front, with a penalty for
// epsilon-dominated candidates.
package bayesopt

import (
	"context"
	"fmt"
	"math"

	"autopilot/internal/gp"
	"autopilot/internal/obs"
	"autopilot/internal/pareto"
	"autopilot/internal/tensor"
)

// Problem is a discrete multi-objective minimization problem.
type Problem struct {
	// Candidates are normalized feature encodings of each design point.
	Candidates [][]float64
	// Evaluate returns the objective vector (minimization) of candidate i.
	// It is called at most once per candidate. A nil return marks the
	// evaluation as failed: the candidate is consumed but recorded nowhere,
	// so the models and hypervolume trace are built from survivors only.
	Evaluate func(i int) []float64
	// EvaluateBatch, when non-nil, scores a batch of candidates and returns
	// one objective vector per index, in index-slice order. The optimizer
	// uses it for the initial random samples — whose identities don't depend
	// on each other — so a caller can score them concurrently without the
	// optimizer knowing about goroutines. Results are recorded in
	// submission order, so traces stay identical to the sequential path.
	EvaluateBatch func(indices []int) [][]float64
	// NumObjectives is the length of every objective vector.
	NumObjectives int
	// Ref is the hypervolume reference point; every reachable objective
	// vector should be component-wise below it.
	Ref []float64
}

// Acquisition selects the candidate-scoring strategy. The paper uses
// SMS-EGO and notes it outperforms "other acquisition strategies such as
// expected improvement" for multi-objective DSE; the scalarized-EI
// alternative is provided for that comparison.
type Acquisition int

// Available acquisition functions.
const (
	AcqSMSEGO Acquisition = iota
	AcqScalarizedEI
)

// String names the acquisition function.
func (a Acquisition) String() string {
	switch a {
	case AcqSMSEGO:
		return "sms-ego"
	case AcqScalarizedEI:
		return "scalarized-ei"
	default:
		return fmt.Sprintf("Acquisition(%d)", int(a))
	}
}

// Config controls the optimization loop.
type Config struct {
	InitSamples int     // random evaluations before the model-guided phase
	Iterations  int     // model-guided evaluations
	ScreenSize  int     // candidates scored per iteration (subsampled)
	Gain        float64 // LCB gain (how optimistic the acquisition is)
	Noise       float64 // GP observation noise
	LengthScale float64 // SE kernel length scale in normalized feature space
	Acquisition Acquisition
	Seed        int64
}

// DefaultConfig returns settings that work well on the DSSoC space.
func DefaultConfig() Config {
	return Config{
		InitSamples: 16,
		Iterations:  48,
		ScreenSize:  1024,
		Gain:        1.0,
		Noise:       1e-6,
		LengthScale: 0.35,
		Seed:        1,
	}
}

// Evaluation is one evaluated design point.
type Evaluation struct {
	Index      int
	Objectives []float64
}

// Result is the optimizer output.
type Result struct {
	// Evaluations in the order they were performed.
	Evaluations []Evaluation
	// FrontIndices are candidate indices on the final Pareto front.
	FrontIndices []int
	// HypervolumeTrace[i] is the dominated hypervolume after evaluation i.
	HypervolumeTrace []float64
}

// Front returns the objective vectors of the final Pareto front.
func (r *Result) Front() [][]float64 {
	byIdx := map[int][]float64{}
	for _, e := range r.Evaluations {
		byIdx[e.Index] = e.Objectives
	}
	out := make([][]float64, 0, len(r.FrontIndices))
	for _, i := range r.FrontIndices {
		out = append(out, byIdx[i])
	}
	return out
}

func (p Problem) validate() error {
	if len(p.Candidates) == 0 {
		return fmt.Errorf("bayesopt: empty candidate set")
	}
	if p.Evaluate == nil {
		return fmt.Errorf("bayesopt: nil evaluator")
	}
	if p.NumObjectives <= 0 {
		return fmt.Errorf("bayesopt: non-positive objective count")
	}
	if len(p.Ref) != p.NumObjectives {
		return fmt.Errorf("bayesopt: ref dim %d, want %d", len(p.Ref), p.NumObjectives)
	}
	return nil
}

// Optimize runs SMS-EGO Bayesian optimization and returns the evaluated
// designs, the final Pareto front and the hypervolume trace.
//
// Deprecated: use OptimizeContext, which supports cancellation. Optimize is
// equivalent to OptimizeContext(context.Background(), p, cfg).
func Optimize(p Problem, cfg Config) (*Result, error) {
	return OptimizeContext(context.Background(), p, cfg)
}

// OptimizeContext runs SMS-EGO Bayesian optimization and returns the
// evaluated designs, the final Pareto front and the hypervolume trace. The
// context is checked before every evaluation; on cancellation the optimizer
// stops and returns an error wrapping ctx.Err().
func OptimizeContext(ctx context.Context, p Problem, cfg Config) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if cfg.InitSamples <= 0 || cfg.Iterations < 0 {
		return nil, fmt.Errorf("bayesopt: bad budget %+v", cfg)
	}
	rng := tensor.NewRNG(cfg.Seed)
	total := cfg.InitSamples + cfg.Iterations
	if total > len(p.Candidates) {
		total = len(p.Candidates)
	}

	res := &Result{}
	evaluated := map[int]bool{}
	var objs [][]float64 // objective vectors of evaluated points
	var feats [][]float64

	// Instrumentation (from the caller's observer, if any): evaluation and
	// iteration counters plus phase spans. All nil-safe no-ops when absent,
	// and purely observational — the search trajectory is unchanged.
	o := obs.FromContext(ctx)
	cEvals := o.Counter("bo.evaluations")
	cFailed := o.Counter("bo.failed_evals")
	cIters := o.Counter("bo.iterations")

	record := func(i int, y []float64) {
		evaluated[i] = true
		cEvals.Inc()
		if y == nil {
			// Failed evaluation (graceful degradation): the candidate is
			// consumed — never re-screened — but contributes no observation,
			// no model-fit point and no hypervolume-trace entry.
			cFailed.Inc()
			return
		}
		if len(y) != p.NumObjectives {
			panic(fmt.Sprintf("bayesopt: evaluator returned %d objectives, want %d", len(y), p.NumObjectives))
		}
		objs = append(objs, y)
		feats = append(feats, p.Candidates[i])
		res.Evaluations = append(res.Evaluations, Evaluation{Index: i, Objectives: y})
		res.HypervolumeTrace = append(res.HypervolumeTrace, pareto.Hypervolume(objs, p.Ref))
	}

	// Phase A: random initialization. The initial indices are fixed up front
	// by the seeded permutation, so when the caller supplies EvaluateBatch
	// they can all be scored in one concurrent batch; recording stays in
	// permutation order either way, keeping the hypervolume trace and the
	// downstream model fits bit-identical to the sequential path.
	perm := rng.Perm(len(p.Candidates))
	nInit := cfg.InitSamples
	if nInit > total {
		nInit = total
	}
	init := perm[:nInit]
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("bayesopt: cancelled: %w", err)
	}
	isp := obs.StartStep(ctx, "bo.init", "bayesopt")
	defer isp.End() // idempotent; covers the early error returns below
	if p.EvaluateBatch != nil {
		ys := p.EvaluateBatch(init)
		if len(ys) != len(init) {
			return nil, fmt.Errorf("bayesopt: batch evaluator returned %d vectors, want %d", len(ys), len(init))
		}
		for j, i := range init {
			record(i, ys[j])
		}
	} else {
		for _, i := range init {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("bayesopt: cancelled: %w", err)
			}
			record(i, p.Evaluate(i))
		}
	}

	isp.End()

	if len(objs) == 0 {
		return nil, fmt.Errorf("bayesopt: all %d initial samples failed to evaluate", len(init))
	}

	// Phase B: model-guided SMS-EGO iterations.
	kernel := gp.SE{Variance: 1, LengthScale: cfg.LengthScale}
	for len(res.Evaluations) < total {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("bayesopt: cancelled: %w", err)
		}
		it := obs.StartStep(ctx, "bo.iter", "bayesopt")
		cIters.Inc()
		models, scales, err := fitModels(feats, objs, p.NumObjectives, kernel, cfg.Noise)
		if err != nil {
			it.End()
			return nil, err
		}
		front := pareto.Filter(objs)
		pool := screen(rng, len(p.Candidates), evaluated, cfg.ScreenSize)
		if len(pool) == 0 {
			it.End()
			break
		}
		var weights []float64
		var bestScalar float64
		if cfg.Acquisition == AcqScalarizedEI {
			weights, bestScalar = eiSetup(rng, objs, p.Ref, p.NumObjectives)
		}
		best, bestScore := -1, math.Inf(-1)
		for _, ci := range pool {
			var score float64
			if cfg.Acquisition == AcqScalarizedEI {
				score = expectedImprovement(models, scales, p.Candidates[ci], weights, bestScalar, p.Ref)
			} else {
				score = acquisition(models, scales, p.Candidates[ci], front, p.Ref, cfg.Gain)
			}
			if score > bestScore {
				best, bestScore = ci, score
			}
		}
		record(best, p.Evaluate(best))
		it.End()
	}

	// Final Pareto front over everything evaluated.
	nd := pareto.NonDominated(objs)
	for _, i := range nd {
		res.FrontIndices = append(res.FrontIndices, res.Evaluations[i].Index)
	}
	return res, nil
}

// fitModels fits one standardized-output GP per objective and returns the
// models plus per-objective (mean, std) used to de-standardize predictions.
func fitModels(feats [][]float64, objs [][]float64, m int, kernel gp.SE, noise float64) ([]*gp.GP, [][2]float64, error) {
	models := make([]*gp.GP, m)
	scales := make([][2]float64, m)
	for j := 0; j < m; j++ {
		y := make([]float64, len(objs))
		mean, sd := 0.0, 0.0
		for i, o := range objs {
			y[i] = o[j]
			mean += o[j]
		}
		mean /= float64(len(y))
		for _, v := range y {
			sd += (v - mean) * (v - mean)
		}
		sd = math.Sqrt(sd / float64(len(y)))
		if sd < 1e-12 {
			sd = 1
		}
		for i := range y {
			y[i] = (y[i] - mean) / sd
		}
		g, err := gp.Fit(feats, y, kernel, noise+1e-9)
		if err != nil {
			return nil, nil, err
		}
		models[j] = g
		scales[j] = [2]float64{mean, sd}
	}
	return models, scales, nil
}

// screen returns up to n unevaluated candidate indices sampled without
// replacement.
func screen(rng *tensor.RNG, total int, evaluated map[int]bool, n int) []int {
	remaining := total - len(evaluated)
	if remaining <= 0 {
		return nil
	}
	if remaining <= n {
		out := make([]int, 0, remaining)
		for i := 0; i < total; i++ {
			if !evaluated[i] {
				out = append(out, i)
			}
		}
		return out
	}
	out := make([]int, 0, n)
	seen := map[int]bool{}
	for len(out) < n {
		i := rng.Intn(total)
		if evaluated[i] || seen[i] {
			continue
		}
		seen[i] = true
		out = append(out, i)
	}
	return out
}

// acquisition is the SMS-EGO score of a candidate: the hypervolume
// contribution of its LCB estimate, with a dominance penalty when the LCB
// point is epsilon-dominated by the current front.
func acquisition(models []*gp.GP, scales [][2]float64, x []float64, front [][]float64, ref []float64, gain float64) float64 {
	lcb := make([]float64, len(models))
	for j, g := range models {
		mu, v := g.Predict(x)
		mu = mu*scales[j][1] + scales[j][0]
		sd := math.Sqrt(v) * scales[j][1]
		lcb[j] = mu - gain*sd
	}
	// dominance penalty: distance by which the closest front point beats lcb
	penalty := 0.0
	for _, f := range front {
		if pareto.WeaklyDominates(f, lcb) {
			slack := 0.0
			for j := range f {
				d := (lcb[j] - f[j]) / math.Max(math.Abs(ref[j]), 1e-9)
				if d > slack {
					slack = d
				}
			}
			if penalty == 0 || slack < penalty {
				penalty = slack
			}
		}
	}
	if penalty > 0 {
		return -penalty
	}
	return pareto.Contribution(front, lcb, ref)
}

// eiSetup draws a random scalarization weight vector (normalized by the
// reference point) and returns it with the best scalarized observation.
func eiSetup(rng *tensor.RNG, objs [][]float64, ref []float64, m int) ([]float64, float64) {
	w := make([]float64, m)
	sum := 0.0
	for i := range w {
		w[i] = rng.Float64() + 1e-3
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	best := math.Inf(1)
	for _, y := range objs {
		if s := scalarize(w, y, ref); s < best {
			best = s
		}
	}
	return w, best
}

func scalarize(w, y, ref []float64) float64 {
	s := 0.0
	for i := range y {
		s += w[i] * y[i] / math.Max(math.Abs(ref[i]), 1e-9)
	}
	return s
}

// expectedImprovement is the classic single-objective EI applied to the
// weighted scalarization of the per-objective GP posteriors (independence
// assumed across objectives).
func expectedImprovement(models []*gp.GP, scales [][2]float64, x, w []float64, best float64, ref []float64) float64 {
	mu, varSum := 0.0, 0.0
	for j, g := range models {
		m, v := g.Predict(x)
		m = m*scales[j][1] + scales[j][0]
		sd := math.Sqrt(v) * scales[j][1]
		norm := math.Max(math.Abs(ref[j]), 1e-9)
		mu += w[j] * m / norm
		varSum += (w[j] * sd / norm) * (w[j] * sd / norm)
	}
	sd := math.Sqrt(varSum)
	if sd < 1e-12 {
		if mu < best {
			return best - mu
		}
		return 0
	}
	z := (best - mu) / sd
	return (best-mu)*stdNormalCDF(z) + sd*stdNormalPDF(z)
}

func stdNormalPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

func stdNormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// RandomSearch evaluates `budget` random candidates — the baseline the
// ablation benchmarks compare SMS-EGO against.
func RandomSearch(p Problem, budget int, seed int64) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(seed)
	if budget > len(p.Candidates) {
		budget = len(p.Candidates)
	}
	res := &Result{}
	var objs [][]float64
	for _, i := range rng.Perm(len(p.Candidates))[:budget] {
		y := p.Evaluate(i)
		objs = append(objs, y)
		res.Evaluations = append(res.Evaluations, Evaluation{Index: i, Objectives: y})
		res.HypervolumeTrace = append(res.HypervolumeTrace, pareto.Hypervolume(objs, p.Ref))
	}
	for _, i := range pareto.NonDominated(objs) {
		res.FrontIndices = append(res.FrontIndices, res.Evaluations[i].Index)
	}
	return res, nil
}
