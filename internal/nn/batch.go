package nn

import (
	"fmt"
	"math"

	"autopilot/internal/tensor"
)

// BatchLayer is implemented by layers that can evaluate a whole batch of
// inputs in one inference-only pass. ForwardBatch must be pure — it reads
// parameters but writes none of the caches Backward depends on — so a frozen
// network can be evaluated concurrently from many rollout workers, and each
// output must be bitwise identical to calling Forward on that input alone.
// Backward after ForwardBatch is undefined; it exists for evaluation, not
// training.
type BatchLayer interface {
	ForwardBatch(xs []*tensor.Tensor) []*tensor.Tensor
}

// ForwardBatch computes W·x + b for every input with the exact per-sample
// accumulation order of Forward, without touching the input cache.
func (d *Dense) ForwardBatch(xs []*tensor.Tensor) []*tensor.Tensor {
	in, out := d.W.Dim(1), d.W.Dim(0)
	wd, bd := d.W.Data(), d.B.Data()
	ys := make([]*tensor.Tensor, len(xs))
	for bi, x := range xs {
		if x.Len() != in {
			panic(fmt.Sprintf("nn: Dense batch input len %d, want %d", x.Len(), in))
		}
		xd := x.Data()
		y := tensor.New(out)
		yd := y.Data()
		for o := 0; o < out; o++ {
			s := bd[o]
			row := wd[o*in : (o+1)*in]
			for i, xv := range xd {
				s += row[i] * xv
			}
			yd[o] = s
		}
		ys[bi] = y
	}
	return ys
}

// ForwardBatch convolves every input in one GEMM: the per-sample im2col
// matrices are concatenated column-wise and multiplied against the filter
// bank together, so each sample's output columns see exactly the arithmetic
// Forward performs on them alone. The im2col cache is left untouched.
func (c *Conv2D) ForwardBatch(xs []*tensor.Tensor) []*tensor.Tensor {
	if len(xs) == 0 {
		return nil
	}
	oh, ow := c.Dims.OutH(), c.Dims.OutW()
	hw := oh * ow
	cols := make([]*tensor.Tensor, len(xs))
	widths := make([]int, len(xs))
	for i, x := range xs {
		cols[i] = tensor.Im2col(x, c.Dims)
		widths[i] = hw
	}
	y := tensor.MatMul(c.W, tensor.ConcatCols(cols...)) // (OutC, B*hw)
	yd := y.Data()
	total := len(xs) * hw
	for oc := 0; oc < c.Dims.OutC; oc++ {
		b := c.B.At(oc)
		if b == 0 {
			continue
		}
		row := yd[oc*total : (oc+1)*total]
		for i := range row {
			row[i] += b
		}
	}
	blocks := tensor.SplitCols(y, widths...)
	ys := make([]*tensor.Tensor, len(xs))
	for i, blk := range blocks {
		ys[i] = blk.Reshape(c.Dims.OutC, oh, ow)
	}
	return ys
}

// ForwardBatch applies max(0, x) to every input without caching the
// activation pattern.
func (r *ReLU) ForwardBatch(xs []*tensor.Tensor) []*tensor.Tensor {
	ys := make([]*tensor.Tensor, len(xs))
	for i, x := range xs {
		ys[i] = tensor.Apply(x, func(v float64) float64 {
			if v > 0 {
				return v
			}
			return 0
		})
	}
	return ys
}

// ForwardBatch applies tanh to every input without caching the output.
func (t *Tanh) ForwardBatch(xs []*tensor.Tensor) []*tensor.Tensor {
	ys := make([]*tensor.Tensor, len(xs))
	for i, x := range xs {
		ys[i] = tensor.Apply(x, math.Tanh)
	}
	return ys
}

// ForwardBatch flattens every input to a vector without caching the shape.
func (f *Flatten) ForwardBatch(xs []*tensor.Tensor) []*tensor.Tensor {
	ys := make([]*tensor.Tensor, len(xs))
	for i, x := range xs {
		ys[i] = x.Reshape(x.Len())
	}
	return ys
}

// ForwardBatch runs a whole batch through every layer, using the cache-free
// batched path where a layer provides one and falling back to per-sample
// Forward otherwise. With the stock layers (Dense, Conv2D, ReLU, Tanh,
// Flatten) the whole pass is pure: safe for concurrent use on a frozen
// network and bitwise identical to per-sample Forward.
func (s *Sequential) ForwardBatch(xs []*tensor.Tensor) []*tensor.Tensor {
	xs = append([]*tensor.Tensor(nil), xs...)
	for _, l := range s.Layers {
		if bl, ok := l.(BatchLayer); ok {
			xs = bl.ForwardBatch(xs)
			continue
		}
		for i, x := range xs {
			xs[i] = l.Forward(x)
		}
	}
	return xs
}

// ForwardBatch evaluates the two-branch network on a batch of observations
// without touching the branch-length caches Backward uses: both trunks run
// batched, the per-sample outputs are concatenated, and the head runs
// batched over the joints. Pure for stock layers — the rollout collector
// evaluates one frozen policy from many workers through this path.
func (m *MultiModal) ForwardBatch(imgs, states []*tensor.Tensor) []*tensor.Tensor {
	if len(imgs) != len(states) {
		panic(fmt.Sprintf("nn: MultiModal batch size mismatch %d vs %d", len(imgs), len(states)))
	}
	if len(imgs) == 0 {
		return nil
	}
	vs := m.Vision.ForwardBatch(imgs)
	ss := m.State.ForwardBatch(states)
	joints := make([]*tensor.Tensor, len(imgs))
	for i := range joints {
		vLen, sLen := vs[i].Len(), ss[i].Len()
		joint := tensor.New(vLen + sLen)
		copy(joint.Data(), vs[i].Data())
		copy(joint.Data()[vLen:], ss[i].Data())
		joints[i] = joint
	}
	return m.Head.ForwardBatch(joints)
}
