package nn

import (
	"testing"

	"autopilot/internal/tensor"
)

func buildMM(g *tensor.RNG) *MultiModal {
	vision := NewSequential(
		NewConv2D(tensor.ConvDims{InC: 1, InH: 6, InW: 6, OutC: 2, K: 3, Stride: 1, Pad: 0}, g),
		NewReLU(),
		NewFlatten(),
	)
	state := NewSequential(NewDense(3, 4, g), NewTanh())
	head := NewSequential(NewDense(2*4*4+4, 8, g), NewReLU(), NewDense(8, 5, g))
	return NewMultiModal(vision, state, head)
}

func TestMultiModalForwardShape(t *testing.T) {
	g := tensor.NewRNG(1)
	m := buildMM(g)
	out := m.Forward(g.Randn(1, 1, 6, 6), g.Randn(1, 3))
	if out.Len() != 5 {
		t.Fatalf("output len = %d, want 5", out.Len())
	}
}

func TestMultiModalBackwardBeforeForwardPanics(t *testing.T) {
	g := tensor.NewRNG(2)
	m := buildMM(g)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Backward(tensor.New(5))
}

func TestMultiModalGradCheck(t *testing.T) {
	g := tensor.NewRNG(3)
	m := buildMM(g)
	img := g.Randn(1, 1, 6, 6)
	st := g.Randn(1, 3)
	loss := func() float64 {
		y := m.Forward(img, st)
		s := 0.0
		for _, v := range y.Data() {
			s += 0.5 * v * v
		}
		return s
	}
	y := m.Forward(img, st)
	m.ZeroGrads()
	m.Backward(y.Clone())
	params, grads := m.Params(), m.Grads()
	if len(params) != len(grads) {
		t.Fatalf("params %d vs grads %d", len(params), len(grads))
	}
	for pi, p := range params {
		num := numericalGrad(p, loss)
		if !tensor.Equal(num, grads[pi], 1e-3) {
			t.Fatalf("multimodal param %d gradient mismatch", pi)
		}
	}
}

func TestMultiModalParamCountConsistent(t *testing.T) {
	g := tensor.NewRNG(4)
	m := buildMM(g)
	want := m.Vision.ParamCount() + m.State.ParamCount() + m.Head.ParamCount()
	if m.ParamCount() != want {
		t.Fatalf("ParamCount = %d, want %d", m.ParamCount(), want)
	}
}

func TestMultiModalCopyParamsFrom(t *testing.T) {
	g := tensor.NewRNG(5)
	a, b := buildMM(g), buildMM(g)
	b.CopyParamsFrom(a)
	img := g.Randn(1, 1, 6, 6)
	st := g.Randn(1, 3)
	if !tensor.Equal(a.Forward(img, st), b.Forward(img, st), 1e-12) {
		t.Fatal("copied networks must agree")
	}
	b.Params()[0].Data()[0] += 1
	if tensor.Equal(a.Forward(img, st), b.Forward(img, st), 1e-12) {
		t.Fatal("copy must not alias")
	}
}

func TestMultiModalGradientsFlowToBothBranches(t *testing.T) {
	g := tensor.NewRNG(6)
	m := buildMM(g)
	out := m.Forward(g.Randn(1, 1, 6, 6), g.Randn(1, 3))
	m.ZeroGrads()
	m.Backward(out.Clone())
	visionNorm, stateNorm := 0.0, 0.0
	for _, gr := range m.Vision.Grads() {
		visionNorm += gr.Norm2()
	}
	for _, gr := range m.State.Grads() {
		stateNorm += gr.Norm2()
	}
	if visionNorm == 0 || stateNorm == 0 {
		t.Fatalf("gradients missing: vision %g, state %g", visionNorm, stateNorm)
	}
}
