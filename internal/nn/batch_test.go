// Batched forward vs per-sample forward: the training engine's determinism
// contract requires ForwardBatch to be bitwise identical to Forward, pure
// (no cached state written), and therefore safe for concurrent frozen-policy
// evaluation. The tests run from an external package so they can build real
// policy-template networks and environment observations.
package nn_test

import (
	"testing"

	"autopilot/internal/airlearning"
	"autopilot/internal/nn"
	"autopilot/internal/policy"
	"autopilot/internal/tensor"
)

// gatherObs rolls the expert policy through the environment to collect a
// varied batch of real observations.
func gatherObs(t *testing.T, n int) []airlearning.Observation {
	t.Helper()
	env := airlearning.NewEnv(airlearning.MediumObstacle, 11)
	expert := airlearning.ExpertPolicy{Env: env}
	obs := env.Reset()
	out := make([]airlearning.Observation, 0, n)
	for len(out) < n {
		out = append(out, obs)
		next, _, done := env.Step(expert.Act(obs))
		obs = next
		if done {
			obs = env.Reset()
		}
	}
	return out
}

func bitwiseEqual(a, b *tensor.Tensor) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i, v := range a.Data() {
		if v != b.Data()[i] {
			return false
		}
	}
	return true
}

func TestMultiModalForwardBatchBitwiseMatchesForward(t *testing.T) {
	for _, h := range []policy.Hyper{
		{Layers: 2, Filters: 32},
		{Layers: 4, Filters: 48},
		{Layers: 7, Filters: 64},
	} {
		net, err := policy.NewTrainable(h, policy.DefaultTrainable(), tensor.NewRNG(3))
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range []int{1, 3, 8} {
			obs := gatherObs(t, batch)
			imgs := make([]*tensor.Tensor, batch)
			states := make([]*tensor.Tensor, batch)
			for i, o := range obs {
				imgs[i], states[i] = o.Image, o.State
			}
			got := net.ForwardBatch(imgs, states)
			for i, o := range obs {
				want := net.Forward(o.Image, o.State)
				if !bitwiseEqual(got[i], want) {
					t.Fatalf("%s batch=%d sample %d: ForwardBatch = %v, Forward = %v",
						h, batch, i, got[i].Data(), want.Data())
				}
			}
		}
	}
}

// TestForwardBatchIsPure checks ForwardBatch leaves no trace in the
// network's cached activations: a Forward/Backward cycle after a batched
// call must behave exactly as if the batched call never happened.
func TestForwardBatchIsPure(t *testing.T) {
	h := policy.Hyper{Layers: 3, Filters: 32}
	mk := func() *nn.MultiModal {
		net, err := policy.NewTrainable(h, policy.DefaultTrainable(), tensor.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	withBatch, clean := mk(), mk()
	obs := gatherObs(t, 4)

	// Prime both with one forward, run a batched pass only on one, then
	// backprop the same gradient through both and compare parameter grads.
	ref := obs[0]
	outA := withBatch.Forward(ref.Image, ref.State)
	outB := clean.Forward(ref.Image, ref.State)
	if !bitwiseEqual(outA, outB) {
		t.Fatal("identical nets disagree on Forward")
	}
	imgs := make([]*tensor.Tensor, len(obs))
	states := make([]*tensor.Tensor, len(obs))
	for i, o := range obs {
		imgs[i], states[i] = o.Image, o.State
	}
	withBatch.ForwardBatch(imgs, states)

	grad := tensor.New(outA.Len())
	grad.Data()[0] = 1
	withBatch.ZeroGrads()
	clean.ZeroGrads()
	withBatch.Backward(grad)
	clean.Backward(grad.Clone())
	ga, gb := withBatch.Grads(), clean.Grads()
	if len(ga) != len(gb) {
		t.Fatalf("grad count %d != %d", len(ga), len(gb))
	}
	for i := range ga {
		if !bitwiseEqual(ga[i], gb[i]) {
			t.Fatalf("grad %d differs after ForwardBatch: batched pass wrote cached state", i)
		}
	}
}

func TestSequentialForwardBatchFallback(t *testing.T) {
	// A Sequential of plain layers must batch through the per-layer
	// BatchLayer implementations and match single-sample forwards bitwise.
	g := tensor.NewRNG(9)
	seq := nn.NewSequential(nn.NewDense(6, 4, g), &nn.ReLU{}, nn.NewDense(4, 2, g))
	xs := make([]*tensor.Tensor, 5)
	for i := range xs {
		xs[i] = g.Randn(1, 6)
	}
	got := seq.ForwardBatch(xs)
	for i, x := range xs {
		if want := seq.Forward(x); !bitwiseEqual(got[i], want) {
			t.Fatalf("sample %d: %v != %v", i, got[i].Data(), want.Data())
		}
	}
}
