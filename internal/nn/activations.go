package nn

import (
	"math"

	"autopilot/internal/tensor"
)

// ReLU is the rectified linear activation.
type ReLU struct {
	in *tensor.Tensor
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies max(0, x) element-wise.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	r.in = x
	return tensor.Apply(x, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
}

// Backward masks the incoming gradient by the activation pattern.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	od, id := out.Data(), r.in.Data()
	for i := range od {
		if id[i] <= 0 {
			od[i] = 0
		}
	}
	return out
}

// Params returns no tensors: ReLU has no parameters.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads returns no tensors: ReLU has no parameters.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	out *tensor.Tensor
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x *tensor.Tensor) *tensor.Tensor {
	t.out = tensor.Apply(x, math.Tanh)
	return t.out
}

// Backward scales the gradient by 1 - tanh².
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	od, yd := out.Data(), t.out.Data()
	for i := range od {
		od[i] *= 1 - yd[i]*yd[i]
	}
	return out
}

// Params returns no tensors: Tanh has no parameters.
func (t *Tanh) Params() []*tensor.Tensor { return nil }

// Grads returns no tensors: Tanh has no parameters.
func (t *Tanh) Grads() []*tensor.Tensor { return nil }

// Flatten reshapes any input to rank 1, remembering the original shape so the
// gradient can be restored on the way back.
type Flatten struct {
	shape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens x to a vector.
func (f *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	f.shape = append(f.shape[:0], x.Shape()...)
	return x.Reshape(x.Len())
}

// Backward restores the cached input shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.shape...)
}

// Params returns no tensors: Flatten has no parameters.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads returns no tensors: Flatten has no parameters.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }

// Softmax returns the softmax of a vector, computed stably.
func Softmax(x *tensor.Tensor) *tensor.Tensor {
	mx, _ := x.Max()
	out := tensor.Apply(x, func(v float64) float64 { return math.Exp(v - mx) })
	s := out.Sum()
	out.ScaleInPlace(1 / s)
	return out
}
