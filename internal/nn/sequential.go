package nn

import "autopilot/internal/tensor"

// Sequential chains layers; output of one feeds the next.
type Sequential struct {
	Layers []Layer
}

// NewSequential returns a network composed of the given layers in order.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs the input through every layer.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates the output gradient through every layer in reverse,
// accumulating parameter gradients, and returns the input gradient.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable tensors in layer order.
func (s *Sequential) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Grads returns all gradient tensors, parallel to Params.
func (s *Sequential) Grads() []*tensor.Tensor {
	var gs []*tensor.Tensor
	for _, l := range s.Layers {
		gs = append(gs, l.Grads()...)
	}
	return gs
}

// ZeroGrads clears all accumulated gradients.
func (s *Sequential) ZeroGrads() {
	for _, g := range s.Grads() {
		g.Zero()
	}
}

// ParamCount returns the total number of trainable scalars.
func (s *Sequential) ParamCount() int {
	n := 0
	for _, p := range s.Params() {
		n += p.Len()
	}
	return n
}

// CopyParamsFrom overwrites this network's parameters with src's. The two
// networks must have identical architecture. Used for DQN target networks.
func (s *Sequential) CopyParamsFrom(src *Sequential) {
	dst, from := s.Params(), src.Params()
	if len(dst) != len(from) {
		panic("nn: CopyParamsFrom architecture mismatch")
	}
	for i := range dst {
		copy(dst[i].Data(), from[i].Data())
	}
}
