package nn

import (
	"math"
	"testing"

	"autopilot/internal/tensor"
)

func TestDenseForwardKnown(t *testing.T) {
	g := tensor.NewRNG(1)
	d := NewDense(2, 2, g)
	copy(d.W.Data(), []float64{1, 2, 3, 4})
	copy(d.B.Data(), []float64{0.5, -0.5})
	y := d.Forward(tensor.FromSlice([]float64{1, 1}, 2))
	want := tensor.FromSlice([]float64{3.5, 6.5}, 2)
	if !tensor.Equal(y, want, 1e-12) {
		t.Fatalf("Forward = %v, want %v", y, want)
	}
}

func TestDenseDims(t *testing.T) {
	d := NewDense(7, 3, tensor.NewRNG(1))
	if d.InDim() != 7 || d.OutDim() != 3 {
		t.Fatalf("dims = (%d,%d)", d.InDim(), d.OutDim())
	}
}

func TestDenseInputMismatchPanics(t *testing.T) {
	d := NewDense(3, 2, tensor.NewRNG(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Forward(tensor.New(4))
}

// numericalGrad computes dLoss/dTheta for a scalar loss via central differences.
func numericalGrad(theta *tensor.Tensor, loss func() float64) *tensor.Tensor {
	const h = 1e-5
	g := tensor.New(theta.Shape()...)
	td, gd := theta.Data(), g.Data()
	for i := range td {
		orig := td[i]
		td[i] = orig + h
		lp := loss()
		td[i] = orig - h
		lm := loss()
		td[i] = orig
		gd[i] = (lp - lm) / (2 * h)
	}
	return g
}

// checkLayerGrads verifies all parameter gradients and the input gradient of
// a layer against finite differences, using 0.5·||y||² as the loss.
func checkLayerGrads(t *testing.T, layer Layer, x *tensor.Tensor) {
	t.Helper()
	loss := func() float64 {
		y := layer.Forward(x)
		s := 0.0
		for _, v := range y.Data() {
			s += 0.5 * v * v
		}
		return s
	}
	// analytic
	y := layer.Forward(x)
	for _, g := range layer.Grads() {
		g.Zero()
	}
	dx := layer.Backward(y.Clone())
	for pi, p := range layer.Params() {
		num := numericalGrad(p, loss)
		ana := layer.Grads()[pi]
		if !tensor.Equal(num, ana, 1e-4) {
			t.Fatalf("param %d gradient mismatch:\n analytic %v\n numeric  %v", pi, ana, num)
		}
	}
	numX := numericalGrad(x, loss)
	if !tensor.Equal(numX.Reshape(dx.Len()), dx.Reshape(dx.Len()), 1e-4) {
		t.Fatalf("input gradient mismatch:\n analytic %v\n numeric  %v", dx, numX)
	}
}

func TestDenseGradCheck(t *testing.T) {
	g := tensor.NewRNG(2)
	layer := NewDense(4, 3, g)
	checkLayerGrads(t, layer, g.Randn(1, 4))
}

func TestConv2DGradCheck(t *testing.T) {
	g := tensor.NewRNG(3)
	d := tensor.ConvDims{InC: 2, InH: 5, InW: 5, OutC: 3, K: 3, Stride: 2, Pad: 1}
	layer := NewConv2D(d, g)
	checkLayerGrads(t, layer, g.Randn(1, 2, 5, 5))
}

func TestReLUGradCheck(t *testing.T) {
	g := tensor.NewRNG(4)
	// keep inputs away from 0 where ReLU is non-differentiable
	x := g.Randn(1, 6)
	for i, v := range x.Data() {
		if math.Abs(v) < 0.1 {
			x.Data()[i] = 0.5
		}
	}
	checkLayerGrads(t, NewReLU(), x)
}

func TestTanhGradCheck(t *testing.T) {
	g := tensor.NewRNG(5)
	checkLayerGrads(t, NewTanh(), g.Randn(1, 6))
}

func TestSequentialGradCheck(t *testing.T) {
	g := tensor.NewRNG(6)
	net := NewSequential(
		NewConv2D(tensor.ConvDims{InC: 1, InH: 6, InW: 6, OutC: 2, K: 3, Stride: 1, Pad: 0}, g),
		NewReLU(),
		NewFlatten(),
		NewDense(2*4*4, 3, g),
	)
	x := g.Randn(1, 1, 6, 6)
	loss := func() float64 {
		y := net.Forward(x)
		s := 0.0
		for _, v := range y.Data() {
			s += 0.5 * v * v
		}
		return s
	}
	y := net.Forward(x)
	net.ZeroGrads()
	net.Backward(y.Clone())
	params, grads := net.Params(), net.Grads()
	for pi, p := range params {
		num := numericalGrad(p, loss)
		if !tensor.Equal(num, grads[pi], 1e-4) {
			t.Fatalf("sequential param %d gradient mismatch", pi)
		}
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	g := tensor.NewRNG(7)
	for i := 0; i < 10; i++ {
		p := Softmax(g.Randn(3, 5))
		if math.Abs(p.Sum()-1) > 1e-12 {
			t.Fatalf("softmax sums to %g", p.Sum())
		}
		for _, v := range p.Data() {
			if v < 0 || v > 1 {
				t.Fatalf("softmax component %g outside [0,1]", v)
			}
		}
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	x := tensor.FromSlice([]float64{1, 2, 3}, 3)
	shifted := tensor.Apply(x, func(v float64) float64 { return v + 1000 })
	if !tensor.Equal(Softmax(x), Softmax(shifted), 1e-9) {
		t.Fatal("softmax must be shift invariant")
	}
}

func TestMSELoss(t *testing.T) {
	pred := tensor.FromSlice([]float64{1, 2}, 2)
	targ := tensor.FromSlice([]float64{0, 4}, 2)
	loss, grad := MSELoss(pred, targ)
	if math.Abs(loss-2.5) > 1e-12 {
		t.Fatalf("loss = %g, want 2.5", loss)
	}
	if !tensor.Equal(grad, tensor.FromSlice([]float64{1, -2}, 2), 1e-12) {
		t.Fatalf("grad = %v", grad)
	}
}

func TestHuberLossQuadraticRegionMatchesMSE(t *testing.T) {
	pred := tensor.FromSlice([]float64{0.5, -0.3}, 2)
	targ := tensor.New(2)
	hl, hg := HuberLoss(pred, targ, 1.0)
	ml, mg := MSELoss(pred, targ)
	if math.Abs(hl-ml) > 1e-12 || !tensor.Equal(hg, mg, 1e-12) {
		t.Fatal("Huber must equal MSE inside delta")
	}
}

func TestHuberLossClipsGradient(t *testing.T) {
	pred := tensor.FromSlice([]float64{10, -10}, 2)
	targ := tensor.New(2)
	_, grad := HuberLoss(pred, targ, 1.0)
	if !tensor.Equal(grad, tensor.FromSlice([]float64{1, -1}, 2), 1e-12) {
		t.Fatalf("grad = %v, want clipped to ±1", grad)
	}
}

func TestCrossEntropyGradCheck(t *testing.T) {
	g := tensor.NewRNG(8)
	logits := g.Randn(1, 4)
	class := 2
	loss := func() float64 {
		l, _ := CrossEntropyLoss(logits, class)
		return l
	}
	_, ana := CrossEntropyLoss(logits, class)
	num := numericalGrad(logits, loss)
	if !tensor.Equal(num, ana, 1e-5) {
		t.Fatalf("CE gradient mismatch: ana %v num %v", ana, num)
	}
}

func TestPolicyGradientLossSign(t *testing.T) {
	logits := tensor.FromSlice([]float64{0, 0, 0}, 3)
	_, gPos := PolicyGradientLoss(logits, 1, 1.0)
	// positive advantage should push probability of action 1 up: grad[1] < 0
	if gPos.Data()[1] >= 0 {
		t.Fatalf("grad[action] = %g, want negative for positive advantage", gPos.Data()[1])
	}
	_, gNeg := PolicyGradientLoss(logits, 1, -1.0)
	if gNeg.Data()[1] <= 0 {
		t.Fatalf("grad[action] = %g, want positive for negative advantage", gNeg.Data()[1])
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// minimize 0.5(w-3)² with SGD
	w := tensor.FromSlice([]float64{0}, 1)
	grad := tensor.New(1)
	opt := NewSGD(0.1, 0.0)
	for i := 0; i < 200; i++ {
		grad.Data()[0] = w.Data()[0] - 3
		opt.Step([]*tensor.Tensor{w}, []*tensor.Tensor{grad})
	}
	if math.Abs(w.Data()[0]-3) > 1e-6 {
		t.Fatalf("w = %g, want 3", w.Data()[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	w := tensor.FromSlice([]float64{-5}, 1)
	grad := tensor.New(1)
	opt := NewAdam(0.1)
	for i := 0; i < 2000; i++ {
		grad.Data()[0] = w.Data()[0] - 3
		opt.Step([]*tensor.Tensor{w}, []*tensor.Tensor{grad})
	}
	if math.Abs(w.Data()[0]-3) > 1e-3 {
		t.Fatalf("w = %g, want 3", w.Data()[0])
	}
}

func TestSGDMomentumAccelerates(t *testing.T) {
	run := func(mom float64) float64 {
		w := tensor.FromSlice([]float64{10}, 1)
		grad := tensor.New(1)
		opt := NewSGD(0.01, mom)
		for i := 0; i < 50; i++ {
			grad.Data()[0] = w.Data()[0]
			opt.Step([]*tensor.Tensor{w}, []*tensor.Tensor{grad})
		}
		return math.Abs(w.Data()[0])
	}
	if run(0.9) >= run(0.0) {
		t.Fatal("momentum should reach the optimum faster on a well-conditioned quadratic")
	}
}

func TestClipGrads(t *testing.T) {
	g := tensor.FromSlice([]float64{3, 4}, 2) // norm 5
	ClipGrads([]*tensor.Tensor{g}, 1)
	if math.Abs(g.Norm2()-1) > 1e-12 {
		t.Fatalf("clipped norm = %g, want 1", g.Norm2())
	}
	h := tensor.FromSlice([]float64{0.3, 0.4}, 2)
	ClipGrads([]*tensor.Tensor{h}, 1)
	if !tensor.Equal(h, tensor.FromSlice([]float64{0.3, 0.4}, 2), 0) {
		t.Fatal("grads under the limit must be untouched")
	}
}

func TestCopyParamsFrom(t *testing.T) {
	g := tensor.NewRNG(9)
	a := NewSequential(NewDense(3, 2, g), NewReLU(), NewDense(2, 1, g))
	b := NewSequential(NewDense(3, 2, g), NewReLU(), NewDense(2, 1, g))
	b.CopyParamsFrom(a)
	x := g.Randn(1, 3)
	if !tensor.Equal(a.Forward(x), b.Forward(x), 1e-12) {
		t.Fatal("networks must agree after CopyParamsFrom")
	}
	// modifying b must not affect a
	b.Params()[0].Data()[0] += 1
	if tensor.Equal(a.Params()[0], b.Params()[0], 1e-12) {
		t.Fatal("CopyParamsFrom must deep-copy")
	}
}

func TestParamCount(t *testing.T) {
	g := tensor.NewRNG(10)
	net := NewSequential(NewDense(4, 3, g), NewDense(3, 2, g))
	want := (4*3 + 3) + (3*2 + 2)
	if net.ParamCount() != want {
		t.Fatalf("ParamCount = %d, want %d", net.ParamCount(), want)
	}
}

func TestTrainingReducesLossOnRegression(t *testing.T) {
	// learn y = 2x1 - x2 with a small MLP
	g := tensor.NewRNG(11)
	net := NewSequential(NewDense(2, 8, g), NewTanh(), NewDense(8, 1, g))
	opt := NewAdam(0.01)
	sample := func() (*tensor.Tensor, *tensor.Tensor) {
		x := g.Uniform(-1, 1, 2)
		y := tensor.FromSlice([]float64{2*x.At(0) - x.At(1)}, 1)
		return x, y
	}
	meanLoss := func(n int) float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			x, y := sample()
			l, _ := MSELoss(net.Forward(x), y)
			s += l
		}
		return s / float64(n)
	}
	before := meanLoss(100)
	for i := 0; i < 1500; i++ {
		x, y := sample()
		net.ZeroGrads()
		_, grad := MSELoss(net.Forward(x), y)
		net.Backward(grad)
		opt.Step(net.Params(), net.Grads())
	}
	after := meanLoss(100)
	if after > before/10 {
		t.Fatalf("training did not reduce loss: before %g after %g", before, after)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	g := tensor.NewRNG(12)
	f := NewFlatten()
	x := g.Randn(1, 2, 3, 4)
	y := f.Forward(x)
	if y.Rank() != 1 || y.Len() != 24 {
		t.Fatalf("flatten shape = %v", y.Shape())
	}
	back := f.Backward(y)
	if back.Rank() != 3 || back.Dim(0) != 2 || back.Dim(1) != 3 || back.Dim(2) != 4 {
		t.Fatalf("backward shape = %v", back.Shape())
	}
}
