// Package nn implements the small neural-network substrate used to train and
// run the end-to-end (E2E) UAV autonomy policies: dense and convolutional
// layers with hand-derived backward passes, common activations, losses, and
// SGD/Adam optimizers. It processes one sample at a time, which is all the
// reinforcement-learning trainer needs.
package nn

import (
	"fmt"
	"math"

	"autopilot/internal/tensor"
)

// Layer is a differentiable network stage. Forward caches whatever Backward
// needs; Backward receives dLoss/dOutput and returns dLoss/dInput while
// accumulating parameter gradients.
type Layer interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*tensor.Tensor
	Grads() []*tensor.Tensor
}

// Dense is a fully connected layer: y = W·x + b.
type Dense struct {
	W, B   *tensor.Tensor // W: (out, in), B: (out)
	gw, gb *tensor.Tensor
	in     *tensor.Tensor // cached input (flattened view)
}

// NewDense returns a Dense layer with He-style initialization.
func NewDense(in, out int, g *tensor.RNG) *Dense {
	std := 1.0
	if in > 0 {
		std = sqrtf(2.0 / float64(in))
	}
	return &Dense{
		W:  g.Randn(std, out, in),
		B:  tensor.New(out),
		gw: tensor.New(out, in),
		gb: tensor.New(out),
	}
}

// InDim returns the input width.
func (d *Dense) InDim() int { return d.W.Dim(1) }

// OutDim returns the output width.
func (d *Dense) OutDim() int { return d.W.Dim(0) }

// Forward computes W·x + b for a flattened input.
func (d *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	in := d.W.Dim(1)
	if x.Len() != in {
		panic(fmt.Sprintf("nn: Dense input len %d, want %d", x.Len(), in))
	}
	d.in = x.Reshape(in)
	out := d.W.Dim(0)
	y := tensor.New(out)
	wd, xd, yd := d.W.Data(), d.in.Data(), y.Data()
	for o := 0; o < out; o++ {
		s := d.B.At(o)
		row := wd[o*in : (o+1)*in]
		for i, xv := range xd {
			s += row[i] * xv
		}
		yd[o] = s
	}
	return y
}

// Backward accumulates dW, dB and returns dX.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out, in := d.W.Dim(0), d.W.Dim(1)
	if grad.Len() != out {
		panic(fmt.Sprintf("nn: Dense grad len %d, want %d", grad.Len(), out))
	}
	gd, xd := grad.Data(), d.in.Data()
	gwd, wd := d.gw.Data(), d.W.Data()
	gbd := d.gb.Data()
	for o := 0; o < out; o++ {
		gbd[o] += gd[o]
	}
	dx := tensor.New(in)
	dxv := dx.Data()
	for o := 0; o < out; o++ {
		g := gd[o]
		if g == 0 {
			continue
		}
		grow := gwd[o*in : (o+1)*in]
		wrow := wd[o*in : (o+1)*in]
		for i := 0; i < in; i++ {
			grow[i] += g * xd[i]
			dxv[i] += g * wrow[i]
		}
	}
	return dx
}

// Params returns the trainable tensors.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads returns the accumulated gradients, parallel to Params.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.gw, d.gb} }

// Conv2D is a 2-D convolution over a CHW input, implemented via im2col.
type Conv2D struct {
	Dims   tensor.ConvDims
	W, B   *tensor.Tensor // W: (OutC, InC*K*K), B: (OutC)
	gw, gb *tensor.Tensor
	cols   *tensor.Tensor // cached im2col matrix
}

// NewConv2D returns a Conv2D layer with He-style initialization.
func NewConv2D(d tensor.ConvDims, g *tensor.RNG) *Conv2D {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	fanIn := d.InC * d.K * d.K
	std := sqrtf(2.0 / float64(fanIn))
	return &Conv2D{
		Dims: d,
		W:    g.Randn(std, d.OutC, fanIn),
		B:    tensor.New(d.OutC),
		gw:   tensor.New(d.OutC, fanIn),
		gb:   tensor.New(d.OutC),
	}
}

// Forward convolves a flattened CHW input and returns a (OutC, OutH, OutW) tensor.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	c.cols = tensor.Im2col(x, c.Dims)
	y := tensor.MatMul(c.W, c.cols) // (OutC, OutH*OutW)
	oh, ow := c.Dims.OutH(), c.Dims.OutW()
	yd := y.Data()
	hw := oh * ow
	for oc := 0; oc < c.Dims.OutC; oc++ {
		b := c.B.At(oc)
		if b == 0 {
			continue
		}
		row := yd[oc*hw : (oc+1)*hw]
		for i := range row {
			row[i] += b
		}
	}
	return y.Reshape(c.Dims.OutC, oh, ow)
}

// Backward accumulates dW, dB and returns the gradient w.r.t. the input.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	hw := c.Dims.OutH() * c.Dims.OutW()
	g2 := grad.Reshape(c.Dims.OutC, hw)
	// dW += g2 · colsᵀ
	c.gw.AddInPlace(tensor.MatMul(g2, tensor.Transpose(c.cols)))
	// dB += row sums of g2
	gd := g2.Data()
	for oc := 0; oc < c.Dims.OutC; oc++ {
		s := 0.0
		for _, v := range gd[oc*hw : (oc+1)*hw] {
			s += v
		}
		c.gb.Data()[oc] += s
	}
	// dX = col2im(Wᵀ · g2)
	dcols := tensor.MatMul(tensor.Transpose(c.W), g2)
	return tensor.Col2im(dcols, c.Dims)
}

// Params returns the trainable tensors.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads returns the accumulated gradients, parallel to Params.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gw, c.gb} }

func sqrtf(x float64) float64 { return math.Sqrt(x) }
