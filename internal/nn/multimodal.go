package nn

import (
	"fmt"

	"autopilot/internal/tensor"
)

// MultiModal is the two-branch network shape used by the Air Learning E2E
// policy template (paper Fig. 2a): an image trunk (convolutions) and a state
// trunk (IMU/goal vector through dense layers) whose outputs are concatenated
// and fed to a dense head that produces action values or logits.
type MultiModal struct {
	Vision *Sequential
	State  *Sequential
	Head   *Sequential

	vLen, sLen int // cached branch output lengths from the last Forward
}

// NewMultiModal combines the three sub-networks.
func NewMultiModal(vision, state, head *Sequential) *MultiModal {
	return &MultiModal{Vision: vision, State: state, Head: head}
}

// Forward runs both branches, concatenates their outputs, and applies the head.
func (m *MultiModal) Forward(img, state *tensor.Tensor) *tensor.Tensor {
	v := m.Vision.Forward(img)
	s := m.State.Forward(state)
	m.vLen, m.sLen = v.Len(), s.Len()
	joint := tensor.New(m.vLen + m.sLen)
	copy(joint.Data(), v.Data())
	copy(joint.Data()[m.vLen:], s.Data())
	return m.Head.Forward(joint)
}

// Backward propagates the output gradient through the head and splits it
// across the two branches. Forward must have been called first.
func (m *MultiModal) Backward(grad *tensor.Tensor) {
	if m.vLen == 0 && m.sLen == 0 {
		panic("nn: MultiModal.Backward before Forward")
	}
	joint := m.Head.Backward(grad)
	if joint.Len() != m.vLen+m.sLen {
		panic(fmt.Sprintf("nn: joint grad len %d, want %d", joint.Len(), m.vLen+m.sLen))
	}
	jd := joint.Data()
	vGrad := tensor.FromSlice(append([]float64(nil), jd[:m.vLen]...), m.vLen)
	sGrad := tensor.FromSlice(append([]float64(nil), jd[m.vLen:]...), m.sLen)
	m.Vision.Backward(vGrad)
	m.State.Backward(sGrad)
}

// Params returns all trainable tensors across the three sub-networks.
func (m *MultiModal) Params() []*tensor.Tensor {
	ps := append([]*tensor.Tensor(nil), m.Vision.Params()...)
	ps = append(ps, m.State.Params()...)
	return append(ps, m.Head.Params()...)
}

// Grads returns all gradient tensors, parallel to Params.
func (m *MultiModal) Grads() []*tensor.Tensor {
	gs := append([]*tensor.Tensor(nil), m.Vision.Grads()...)
	gs = append(gs, m.State.Grads()...)
	return append(gs, m.Head.Grads()...)
}

// ZeroGrads clears all accumulated gradients.
func (m *MultiModal) ZeroGrads() {
	for _, g := range m.Grads() {
		g.Zero()
	}
}

// ParamCount returns the total number of trainable scalars.
func (m *MultiModal) ParamCount() int {
	n := 0
	for _, p := range m.Params() {
		n += p.Len()
	}
	return n
}

// CopyParamsFrom overwrites this network's parameters with src's.
func (m *MultiModal) CopyParamsFrom(src *MultiModal) {
	dst, from := m.Params(), src.Params()
	if len(dst) != len(from) {
		panic("nn: MultiModal.CopyParamsFrom architecture mismatch")
	}
	for i := range dst {
		copy(dst[i].Data(), from[i].Data())
	}
}
