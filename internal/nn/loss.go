package nn

import (
	"math"

	"autopilot/internal/tensor"
)

// MSELoss returns 0.5·Σ(pred-target)² and the gradient w.r.t. pred.
func MSELoss(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	grad := tensor.Sub(pred, target)
	loss := 0.0
	for _, v := range grad.Data() {
		loss += 0.5 * v * v
	}
	return loss, grad
}

// HuberLoss returns the Huber loss with threshold delta and its gradient
// w.r.t. pred. It behaves like MSE near zero and like L1 for large errors,
// which stabilizes DQN training.
func HuberLoss(pred, target *tensor.Tensor, delta float64) (float64, *tensor.Tensor) {
	grad := tensor.Sub(pred, target)
	loss := 0.0
	gd := grad.Data()
	for i, v := range gd {
		if a := math.Abs(v); a <= delta {
			loss += 0.5 * v * v
		} else {
			loss += delta * (a - 0.5*delta)
			if v > 0 {
				gd[i] = delta
			} else {
				gd[i] = -delta
			}
		}
	}
	return loss, grad
}

// CrossEntropyLoss treats logits as unnormalized log-probabilities, returns
// -log p(class) and the gradient w.r.t. the logits (softmax - onehot).
func CrossEntropyLoss(logits *tensor.Tensor, class int) (float64, *tensor.Tensor) {
	p := Softmax(logits)
	loss := -math.Log(math.Max(p.Data()[class], 1e-12))
	grad := p.Clone()
	grad.Data()[class] -= 1
	return loss, grad
}

// PolicyGradientLoss returns the REINFORCE gradient w.r.t. logits for taking
// `action` with advantage `adv`: grad = adv · (softmax - onehot(action)).
// (The "loss" is -adv·log π(a), returned for monitoring.)
func PolicyGradientLoss(logits *tensor.Tensor, action int, adv float64) (float64, *tensor.Tensor) {
	p := Softmax(logits)
	loss := -adv * math.Log(math.Max(p.Data()[action], 1e-12))
	grad := tensor.Scale(adv, p)
	grad.Data()[action] -= adv
	return loss, grad
}
