package nn

import (
	"math"

	"autopilot/internal/tensor"
)

// Optimizer updates parameters from accumulated gradients.
type Optimizer interface {
	Step(params, grads []*tensor.Tensor)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      [][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum}
}

// Step applies one SGD update.
func (o *SGD) Step(params, grads []*tensor.Tensor) {
	if o.vel == nil {
		o.vel = make([][]float64, len(params))
		for i, p := range params {
			o.vel[i] = make([]float64, p.Len())
		}
	}
	for i, p := range params {
		pd, gd, v := p.Data(), grads[i].Data(), o.vel[i]
		for j := range pd {
			v[j] = o.Momentum*v[j] - o.LR*gd[j]
			pd[j] += v[j]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  [][]float64
}

// NewAdam returns an Adam optimizer with standard defaults for the betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update.
func (o *Adam) Step(params, grads []*tensor.Tensor) {
	if o.m == nil {
		o.m = make([][]float64, len(params))
		o.v = make([][]float64, len(params))
		for i, p := range params {
			o.m[i] = make([]float64, p.Len())
			o.v[i] = make([]float64, p.Len())
		}
	}
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i, p := range params {
		pd, gd := p.Data(), grads[i].Data()
		m, v := o.m[i], o.v[i]
		for j := range pd {
			g := gd[j]
			m[j] = o.Beta1*m[j] + (1-o.Beta1)*g
			v[j] = o.Beta2*v[j] + (1-o.Beta2)*g*g
			mh := m[j] / c1
			vh := v[j] / c2
			pd[j] -= o.LR * mh / (math.Sqrt(vh) + o.Eps)
		}
	}
}

// ClipGrads scales gradients in place so their global L2 norm is at most maxNorm.
func ClipGrads(grads []*tensor.Tensor, maxNorm float64) {
	total := 0.0
	for _, g := range grads {
		for _, v := range g.Data() {
			total += v * v
		}
	}
	norm := math.Sqrt(total)
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := maxNorm / norm
	for _, g := range grads {
		g.ScaleInPlace(scale)
	}
}
