// Package mission implements the paper's domain-specific evaluation metrics
// (§IV, Eq. 1–4): mission energy and the number of missions per battery
// charge, built on a momentum-theory rotor hover-power model. The number of
// missions is
//
//	N = E_battery · V_safe / ((P_rotors + P_compute + P_others) · D_operation)
package mission

import (
	"fmt"
	"math"

	"autopilot/internal/catalog"
	"autopilot/internal/uav"
)

// Params holds the rotor power-model constants.
type Params struct {
	AirDensityKgM3 float64 // ρ
	FigureOfMerit  float64 // rotor + drivetrain efficiency

	// PeukertExponent models capacity derating at high discharge rates:
	// effective energy = rated energy · (P_rated / P_draw)^(k−1) when the
	// draw exceeds the rated power. 1.0 (the default) is an ideal battery;
	// LiPo packs are typically 1.02–1.10.
	PeukertExponent float64
	// RatedDischargeW is the draw at which the battery delivers its rated
	// energy; 0 disables derating.
	RatedDischargeW float64
}

// DefaultParams returns standard sea-level air, a typical small-rotor
// figure of merit, and an ideal battery.
func DefaultParams() Params {
	return Params{AirDensityKgM3: 1.225, FigureOfMerit: 0.5, PeukertExponent: 1.0}
}

// EffectiveBatteryJ applies Peukert-style capacity derating to the rated
// battery energy for a given power draw.
func (p Params) EffectiveBatteryJ(ratedJ, drawW float64) float64 {
	if p.PeukertExponent <= 1.0 || p.RatedDischargeW <= 0 || drawW <= p.RatedDischargeW {
		return ratedJ
	}
	return ratedJ * math.Pow(p.RatedDischargeW/drawW, p.PeukertExponent-1)
}

// RotorHoverPowerW returns the electrical power to hover at the given all-up
// mass, from momentum theory: P = T^1.5 / (FM · sqrt(2·ρ·A)) with T = m·g.
func (p Params) RotorHoverPowerW(massKg, discAreaM2 float64) float64 {
	if massKg <= 0 || discAreaM2 <= 0 {
		return 0
	}
	thrust := massKg * uav.Gravity
	return math.Pow(thrust, 1.5) / (p.FigureOfMerit * math.Sqrt(2*p.AirDensityKgM3*discAreaM2))
}

// Spec describes a mission.
type Spec struct {
	DistanceM float64 // D_operation: distance flown per mission
}

// DefaultSpec is a representative short-range autonomous sortie.
func DefaultSpec() Spec { return Spec{DistanceM: 1000} }

// Profile is the full mission-level evaluation of one (UAV, compute payload,
// safe velocity) combination.
type Profile struct {
	VSafeMS     float64
	RotorPowerW float64
	ComputeW    float64
	OthersW     float64
	TotalW      float64
	MissionTime float64 // seconds per mission
	MissionJ    float64 // Eq. 3
	Missions    float64 // Eq. 4
}

// Evaluate computes Eq. 1–4 for a platform carrying payloadG grams of
// compute that draws computeW watts and sustains safe velocity vSafe.
func Evaluate(p uav.Platform, params Params, spec Spec, payloadG, computeW, vSafe float64) (Profile, error) {
	if spec.DistanceM <= 0 {
		return Profile{}, fmt.Errorf("mission: non-positive distance %g", spec.DistanceM)
	}
	if vSafe <= 0 {
		return Profile{}, fmt.Errorf("mission: non-positive safe velocity %g", vSafe)
	}
	if !p.CanLift(payloadG) {
		return Profile{}, fmt.Errorf("mission: %s cannot lift %.0f g payload", p.Name, payloadG)
	}
	rotor := params.RotorHoverPowerW(p.TotalMassKg(payloadG), p.RotorDiscAreaM2)
	return profileFor(params, spec, p.BatteryJ(), rotor, computeW, p.OtherPowerW, vSafe), nil
}

// profileFor assembles Eq. 1–4 from the already-resolved power terms. Both
// the legacy platform path and the catalog loadout path end here, so the
// mission arithmetic (and its float expression order) lives in one place.
func profileFor(params Params, spec Spec, batteryJ, rotor, computeW, othersW, vSafe float64) Profile {
	total := rotor + computeW + othersW
	t := spec.DistanceM / vSafe
	e := total * t
	return Profile{
		VSafeMS:     vSafe,
		RotorPowerW: rotor,
		ComputeW:    computeW,
		OthersW:     othersW,
		TotalW:      total,
		MissionTime: t,
		MissionJ:    e,
		Missions:    params.EffectiveBatteryJ(batteryJ, total) / e,
	}
}

// EvaluateLoadout computes Eq. 1–4 for a catalog loadout carrying payloadG
// grams of compute drawing computeW watts at safe velocity vSafe. Unlike the
// legacy platform path it runs the catalog's full feasibility check — weight
// budget, thrust floor, and battery discharge limit against the total draw —
// and returns a typed *catalog.InfeasibleError when the loadout cannot fly.
func EvaluateLoadout(lo catalog.Loadout, params Params, spec Spec, payloadG, computeW, vSafe float64) (Profile, error) {
	if spec.DistanceM <= 0 {
		return Profile{}, fmt.Errorf("mission: non-positive distance %g", spec.DistanceM)
	}
	if vSafe <= 0 {
		return Profile{}, fmt.Errorf("mission: non-positive safe velocity %g", vSafe)
	}
	rotor := params.RotorHoverPowerW(lo.TotalMassKg(payloadG), lo.Airframe.RotorDiscAreaM2)
	total := rotor + computeW + lo.Airframe.OtherPowerW
	if err := lo.Feasible(payloadG, total); err != nil {
		return Profile{}, err
	}
	return profileFor(params, spec, lo.Battery.EnergyJ(), rotor, computeW, lo.Airframe.OtherPowerW, vSafe), nil
}

// FlightTimeMin returns the hover endurance in minutes for the platform with
// the payload, a convenient sanity metric.
func FlightTimeMin(p uav.Platform, params Params, payloadG, computeW float64) float64 {
	rotor := params.RotorHoverPowerW(p.TotalMassKg(payloadG), p.RotorDiscAreaM2)
	total := rotor + computeW + p.OtherPowerW
	if total <= 0 {
		return 0
	}
	return p.BatteryJ() / total / 60
}

// EnduranceMin returns the hover endurance in minutes for a catalog loadout
// with the payload — the loadout analog of FlightTimeMin.
func EnduranceMin(lo catalog.Loadout, params Params, payloadG, computeW float64) float64 {
	rotor := params.RotorHoverPowerW(lo.TotalMassKg(payloadG), lo.Airframe.RotorDiscAreaM2)
	total := rotor + computeW + lo.Airframe.OtherPowerW
	if total <= 0 {
		return 0
	}
	return lo.Battery.EnergyJ() / total / 60
}
