package mission

import (
	"math"
	"testing"

	"autopilot/internal/uav"
)

func TestRotorPowerMomentumTheory(t *testing.T) {
	p := DefaultParams()
	// doubling mass raises hover power by 2^1.5
	a := p.RotorHoverPowerW(0.1, 0.01)
	b := p.RotorHoverPowerW(0.2, 0.01)
	if math.Abs(b/a-math.Pow(2, 1.5)) > 1e-9 {
		t.Fatalf("power ratio = %g, want 2^1.5", b/a)
	}
	// doubling disc area cuts power by sqrt(2)
	c := p.RotorHoverPowerW(0.1, 0.02)
	if math.Abs(a/c-math.Sqrt2) > 1e-9 {
		t.Fatalf("area scaling ratio = %g, want sqrt(2)", a/c)
	}
}

func TestRotorPowerDegenerateInputs(t *testing.T) {
	p := DefaultParams()
	if p.RotorHoverPowerW(0, 0.01) != 0 || p.RotorHoverPowerW(0.1, 0) != 0 {
		t.Fatal("degenerate inputs must give zero power")
	}
}

func TestFlightTimesMatchRealDrones(t *testing.T) {
	// sanity anchors: Spark ~16 min, Pelican ~20 min, Crazyflie-class nano
	// ~7-12 min with a small payload
	p := DefaultParams()
	cases := []struct {
		plat   uav.Platform
		lo, hi float64
	}{
		{uav.ZhangNano(), 6, 14},
		{uav.DJISpark(), 12, 24},
		{uav.AscTecPelican(), 15, 28},
	}
	for _, c := range cases {
		min := FlightTimeMin(c.plat, p, 24, 0.7)
		if min < c.lo || min > c.hi {
			t.Errorf("%s: flight time %.1f min outside [%g, %g]", c.plat.Name, min, c.lo, c.hi)
		}
	}
}

func TestEvaluateEquationConsistency(t *testing.T) {
	p := DefaultParams()
	nano := uav.ZhangNano()
	prof, err := Evaluate(nano, p, Spec{DistanceM: 500}, 24, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 2/3: E = P·t with t = D/v
	if math.Abs(prof.MissionTime-100) > 1e-9 {
		t.Fatalf("mission time = %g, want 100 s", prof.MissionTime)
	}
	if math.Abs(prof.MissionJ-prof.TotalW*prof.MissionTime) > 1e-9 {
		t.Fatal("E != P·t")
	}
	// Eq. 1/4: N = E_batt / E_mission
	if math.Abs(prof.Missions-nano.BatteryJ()/prof.MissionJ) > 1e-9 {
		t.Fatal("N != E_batt / E_mission")
	}
	if math.Abs(prof.TotalW-(prof.RotorPowerW+prof.ComputeW+prof.OthersW)) > 1e-9 {
		t.Fatal("total power must sum components")
	}
}

func TestEvaluateErrors(t *testing.T) {
	p := DefaultParams()
	nano := uav.ZhangNano()
	if _, err := Evaluate(nano, p, Spec{}, 24, 0.7, 5); err == nil {
		t.Error("expected error for zero distance")
	}
	if _, err := Evaluate(nano, p, DefaultSpec(), 24, 0.7, 0); err == nil {
		t.Error("expected error for zero velocity")
	}
	if _, err := Evaluate(nano, p, DefaultSpec(), 5000, 0.7, 5); err == nil {
		t.Error("expected error for unliftable payload")
	}
}

func TestFasterIsMoreMissionsAtSamePower(t *testing.T) {
	p := DefaultParams()
	nano := uav.ZhangNano()
	slow, err := Evaluate(nano, p, DefaultSpec(), 24, 0.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Evaluate(nano, p, DefaultSpec(), 24, 0.7, 9)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Missions <= slow.Missions {
		t.Fatal("higher safe velocity must yield more missions (Eq. 4)")
	}
	if math.Abs(fast.Missions/slow.Missions-3) > 1e-9 {
		t.Fatalf("missions must scale linearly with v: ratio %g", fast.Missions/slow.Missions)
	}
}

func TestHeavierPayloadFewerMissions(t *testing.T) {
	p := DefaultParams()
	nano := uav.ZhangNano()
	light, err := Evaluate(nano, p, DefaultSpec(), 24, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Evaluate(nano, p, DefaultSpec(), 65, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Missions >= light.Missions {
		t.Fatal("heavier payload must cost missions via rotor power")
	}
}

func TestRotorsDominateSoCPower(t *testing.T) {
	// MAVBench observation the paper cites: ~95% of power goes to rotors on
	// conventional UAVs; verify our Pelican profile has the same structure.
	p := DefaultParams()
	prof, err := Evaluate(uav.AscTecPelican(), p, DefaultSpec(), 24, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if frac := prof.RotorPowerW / prof.TotalW; frac < 0.9 {
		t.Fatalf("rotor fraction = %.2f, want > 0.9 for the mini-UAV", frac)
	}
}

func TestFlightTimeDegeneratePower(t *testing.T) {
	p := Params{}
	if FlightTimeMin(uav.ZhangNano(), p, 0, 0) != 0 {
		// zero-FM params give zero rotor power; with zero compute and the
		// small OtherPowerW the time is finite — just ensure no panic and
		// non-negative
		t.Log("degenerate flight time computed without panic")
	}
}

func TestPeukertDeratingReducesEffectiveCapacity(t *testing.T) {
	p := DefaultParams()
	p.PeukertExponent = 1.1
	p.RatedDischargeW = 10
	rated := 1000.0
	if got := p.EffectiveBatteryJ(rated, 5); got != rated {
		t.Fatalf("below-rated draw must not derate: %g", got)
	}
	high := p.EffectiveBatteryJ(rated, 40)
	if high >= rated {
		t.Fatalf("high draw must derate: %g", high)
	}
	// ratio (10/40)^0.1 ≈ 0.871
	if math.Abs(high/rated-math.Pow(0.25, 0.1)) > 1e-12 {
		t.Fatalf("derating = %g", high/rated)
	}
}

func TestPeukertDisabledByDefault(t *testing.T) {
	p := DefaultParams()
	if p.EffectiveBatteryJ(500, 1e6) != 500 {
		t.Fatal("default params must behave as an ideal battery")
	}
}

func TestPeukertLowersMissions(t *testing.T) {
	ideal := DefaultParams()
	real := DefaultParams()
	real.PeukertExponent = 1.08
	real.RatedDischargeW = 5 // nano draws ~10 W: derating bites
	nano := uav.ZhangNano()
	a, err := Evaluate(nano, ideal, DefaultSpec(), 24, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(nano, real, DefaultSpec(), 24, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b.Missions >= a.Missions {
		t.Fatalf("Peukert derating must cost missions: %g vs %g", b.Missions, a.Missions)
	}
}
