package mission

import (
	"errors"
	"testing"

	"autopilot/internal/catalog"
	"autopilot/internal/uav"
)

// TestLoadoutMatchesLegacyPlatformBitwise: for the three Table IV airframes
// with their default battery and sensor, EvaluateLoadout must reproduce the
// legacy Evaluate-on-uav.Platform profile bitwise — the thin-view contract
// of the catalog refactor.
func TestLoadoutMatchesLegacyPlatformBitwise(t *testing.T) {
	params, spec := DefaultParams(), DefaultSpec()
	for name, plat := range map[string]uav.Platform{
		"pelican": uav.AscTecPelican(),
		"spark":   uav.DJISpark(),
		"nano":    uav.ZhangNano(),
	} {
		lo, err := catalog.DefaultLoadout(name)
		if err != nil {
			t.Fatal(err)
		}
		const payloadG, computeW, vSafe = 20, 1.5, 4.0
		legacy, err := Evaluate(plat, params, spec, payloadG, computeW, vSafe)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvaluateLoadout(lo, params, spec, payloadG, computeW, vSafe)
		if err != nil {
			t.Fatal(err)
		}
		if got != legacy {
			t.Errorf("%s: loadout profile %+v != legacy %+v", name, got, legacy)
		}
	}
}

// TestPayloadWeightMonotonicity: adding compute payload can never help the
// vehicle — maximum acceleration, hover endurance, and missions per charge
// are all non-increasing in payload weight.
func TestPayloadWeightMonotonicity(t *testing.T) {
	params, spec := DefaultParams(), DefaultSpec()
	for _, name := range catalog.AirframeNames() {
		lo, err := catalog.DefaultLoadout(name)
		if err != nil {
			t.Fatal(err)
		}
		const computeW, vSafe = 1.0, 3.0
		prevAccel, prevEnd, prevMissions := 0.0, 0.0, 0.0
		first := true
		for payloadG := 0.0; payloadG <= 200; payloadG += 10 {
			accel := lo.MaxAccelMS2(payloadG)
			end := EnduranceMin(lo, params, payloadG, computeW)
			prof, err := EvaluateLoadout(lo, params, spec, payloadG, computeW, vSafe)
			if err != nil {
				// Heavier payloads may become infeasible; that only
				// strengthens the property — but the error must be the typed
				// kind, checked elsewhere. Stop the sweep here.
				break
			}
			if !first {
				if accel > prevAccel {
					t.Errorf("%s: accel rose %.4f -> %.4f at %g g", name, prevAccel, accel, payloadG)
				}
				if end > prevEnd {
					t.Errorf("%s: endurance rose %.4f -> %.4f min at %g g", name, prevEnd, end, payloadG)
				}
				if prof.Missions > prevMissions {
					t.Errorf("%s: missions rose %.4f -> %.4f at %g g", name, prevMissions, prof.Missions, payloadG)
				}
			}
			prevAccel, prevEnd, prevMissions = accel, end, prof.Missions
			first = false
		}
	}
}

// TestEvaluateLoadoutInfeasibleTyped: an overloaded loadout comes back as a
// typed *catalog.InfeasibleError, not an untyped arithmetic failure.
func TestEvaluateLoadoutInfeasibleTyped(t *testing.T) {
	lo, err := catalog.DefaultLoadout("nano")
	if err != nil {
		t.Fatal(err)
	}
	_, err = EvaluateLoadout(lo, DefaultParams(), DefaultSpec(), 300, 1.0, 3.0)
	if err == nil {
		t.Fatal("300 g on a nano should be infeasible")
	}
	var inf *catalog.InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("untyped infeasibility: %v", err)
	}
	if inf.Reason != catalog.ReasonWeight && inf.Reason != catalog.ReasonThrust {
		t.Errorf("reason = %s, want weight or thrust", inf.Reason)
	}
}

// TestEnduranceMonotoneInComputePower: more compute draw always shortens
// hover endurance.
func TestEnduranceMonotoneInComputePower(t *testing.T) {
	lo, err := catalog.DefaultLoadout("spark")
	if err != nil {
		t.Fatal(err)
	}
	prev := EnduranceMin(lo, DefaultParams(), 50, 0.1)
	for w := 1.0; w <= 20; w += 1 {
		end := EnduranceMin(lo, DefaultParams(), 50, w)
		if end >= prev {
			t.Fatalf("endurance did not fall at %g W: %.4f >= %.4f", w, end, prev)
		}
		prev = end
	}
}
