// Package space is AutoPilot's typed, extensible parameter-space layer: an
// ordered list of named axes — integer-valued (layers, filters, PE array
// shape, scratchpad sizes) or categorical (training algorithm) — with
// deterministic enumeration order, an index↔point bijection, seeded
// sampling, a stable content-addressed encoding for cache keys, and
// per-axis vectorization hooks for the GP/BO layer.
//
// The package generalizes the paper's fixed Table II grid (layers × filters
// × PE array × scratchpads) so new search dimensions — the AutoSoC-style
// algorithm–SoC co-search, scenario knobs, component catalogs — plug in as
// axes instead of hand-edits through every layer. internal/dse builds its
// Table II space on top of this package; the sampling and enumeration here
// reproduce the historical dse sequences bit for bit when the axis list
// matches the legacy grid.
package space

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"

	"autopilot/internal/tensor"
)

// Kind discriminates axis value types.
type Kind int

// Axis kinds.
const (
	// KindInt is an ordered integer axis (e.g. layers, PE rows).
	KindInt Kind = iota
	// KindCat is an unordered categorical axis (e.g. training algorithm).
	KindCat
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindCat:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Scale selects the feature transform applied to an integer axis before
// normalization.
type Scale int

// Axis feature scales.
const (
	// ScaleLinear normalizes raw values.
	ScaleLinear Scale = iota
	// ScaleLog2 normalizes log2 of the values — the natural scale for
	// power-of-two hardware dimensions.
	ScaleLog2
)

// Axis is one named search dimension. Exactly one of Ints/Cats holds the
// admissible values, matching Kind. For integer axes, Scale and the Lo/Hi
// normalization bounds (in transformed units) control Feature; Lo == Hi
// derives the bounds from the value range.
type Axis struct {
	Name string
	Kind Kind

	Ints []int    // KindInt values, in enumeration order
	Cats []string // KindCat choices, in enumeration order

	Scale  Scale   // feature transform for KindInt
	Lo, Hi float64 // normalization bounds in transformed units; Lo == Hi derives them
}

// IntAxis builds an integer axis with linear feature scaling and derived
// normalization bounds.
func IntAxis(name string, values ...int) Axis {
	return Axis{Name: name, Kind: KindInt, Ints: values}
}

// CatAxis builds a categorical axis.
func CatAxis(name string, choices ...string) Axis {
	return Axis{Name: name, Kind: KindCat, Cats: choices}
}

// Len returns the number of admissible values.
func (a Axis) Len() int {
	if a.Kind == KindCat {
		return len(a.Cats)
	}
	return len(a.Ints)
}

// ValueString renders the i-th value.
func (a Axis) ValueString(i int) string {
	if a.Kind == KindCat {
		return a.Cats[i]
	}
	return strconv.Itoa(a.Ints[i])
}

// bounds resolves the normalization bounds in transformed units.
func (a Axis) bounds() (lo, hi float64) {
	if a.Lo != a.Hi {
		return a.Lo, a.Hi
	}
	if len(a.Ints) == 0 {
		return 0, 0
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range a.Ints {
		t := a.transform(float64(v))
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return lo, hi
}

// transform applies the axis scale.
func (a Axis) transform(v float64) float64 {
	if a.Scale == ScaleLog2 {
		return math.Log2(v)
	}
	return v
}

// Normalize maps a raw integer-axis value onto the [0,1] feature scale the
// GP kernels consume. Values outside the configured bounds extrapolate
// linearly beyond [0,1].
func (a Axis) Normalize(v float64) float64 {
	t := a.transform(v)
	lo, hi := a.bounds()
	if hi == lo {
		return 0.5
	}
	return (t - lo) / (hi - lo)
}

// CatFeature maps a categorical choice onto the feature scale: the
// normalized choice index, 0.5 for single-choice axes, and -1 for choices
// the axis does not contain.
func (a Axis) CatFeature(choice string) float64 {
	for i, c := range a.Cats {
		if c == choice {
			return a.Feature(i)
		}
	}
	return -1
}

// Feature returns the normalized feature of the i-th value.
func (a Axis) Feature(i int) float64 {
	if a.Kind == KindCat {
		if len(a.Cats) <= 1 {
			return 0.5
		}
		return float64(i) / float64(len(a.Cats)-1)
	}
	return a.Normalize(float64(a.Ints[i]))
}

// ValidationError reports an invalid axis definition.
type ValidationError struct {
	Axis   string
	Reason string
}

func (e *ValidationError) Error() string {
	if e.Axis == "" {
		return "space: " + e.Reason
	}
	return fmt.Sprintf("space: axis %q: %s", e.Axis, e.Reason)
}

// validate checks one axis definition.
func (a Axis) validate() error {
	if a.Name == "" {
		return &ValidationError{Reason: "unnamed axis"}
	}
	if strings.ContainsAny(a.Name, "=;") {
		return &ValidationError{Axis: a.Name, Reason: "name contains an encoding separator"}
	}
	switch a.Kind {
	case KindInt:
		if len(a.Cats) > 0 {
			return &ValidationError{Axis: a.Name, Reason: "int axis with categorical choices"}
		}
		if len(a.Ints) == 0 {
			return &ValidationError{Axis: a.Name, Reason: "empty axis"}
		}
		seen := map[int]bool{}
		for _, v := range a.Ints {
			if seen[v] {
				return &ValidationError{Axis: a.Name, Reason: fmt.Sprintf("duplicate value %d", v)}
			}
			seen[v] = true
			if a.Scale == ScaleLog2 && v <= 0 {
				return &ValidationError{Axis: a.Name, Reason: fmt.Sprintf("non-positive value %d on a log2 axis", v)}
			}
		}
	case KindCat:
		if len(a.Ints) > 0 {
			return &ValidationError{Axis: a.Name, Reason: "categorical axis with int values"}
		}
		if len(a.Cats) == 0 {
			return &ValidationError{Axis: a.Name, Reason: "empty axis"}
		}
		seen := map[string]bool{}
		for _, c := range a.Cats {
			if c == "" {
				return &ValidationError{Axis: a.Name, Reason: "empty choice"}
			}
			if strings.ContainsAny(c, "=;") {
				return &ValidationError{Axis: a.Name, Reason: fmt.Sprintf("choice %q contains an encoding separator", c)}
			}
			if seen[c] {
				return &ValidationError{Axis: a.Name, Reason: fmt.Sprintf("duplicate choice %q", c)}
			}
			seen[c] = true
		}
	default:
		return &ValidationError{Axis: a.Name, Reason: fmt.Sprintf("unknown kind %d", int(a.Kind))}
	}
	return nil
}

// Point identifies one joint design: the value index chosen on each axis,
// in axis order.
type Point []int

// Clone returns an independent copy of the point.
func (p Point) Clone() Point {
	out := make(Point, len(p))
	copy(out, p)
	return out
}

// Space is an ordered list of axes. The zero value is an empty space; build
// one with New and check it with Validate before use.
type Space struct {
	Axes []Axis
}

// New assembles a space from axes in search order.
func New(axes ...Axis) Space {
	return Space{Axes: axes}
}

// Validate checks every axis and rejects duplicate axis names with a typed
// *ValidationError.
func (s Space) Validate() error {
	if len(s.Axes) == 0 {
		return &ValidationError{Reason: "no axes"}
	}
	seen := map[string]bool{}
	for _, a := range s.Axes {
		if err := a.validate(); err != nil {
			return err
		}
		if seen[a.Name] {
			return &ValidationError{Axis: a.Name, Reason: "duplicate axis"}
		}
		seen[a.Name] = true
	}
	return nil
}

// NumAxes returns the number of axes.
func (s Space) NumAxes() int { return len(s.Axes) }

// AxisIndex returns the position of the named axis, or -1.
func (s Space) AxisIndex(name string) int {
	for i, a := range s.Axes {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Dims returns the cardinality of every axis — the genome layout the
// evolutionary optimizers consume.
func (s Space) Dims() []int {
	out := make([]int, len(s.Axes))
	for i, a := range s.Axes {
		out[i] = a.Len()
	}
	return out
}

// Size returns the number of joint points.
func (s Space) Size() int64 {
	n := int64(1)
	for _, a := range s.Axes {
		n *= int64(a.Len())
	}
	return n
}

// At returns the i-th point of the deterministic enumeration order: mixed
// radix with the last axis varying fastest, matching nested loops over the
// axes in order.
func (s Space) At(i int64) Point {
	p := make(Point, len(s.Axes))
	for k := len(s.Axes) - 1; k >= 0; k-- {
		n := int64(s.Axes[k].Len())
		p[k] = int(i % n)
		i /= n
	}
	return p
}

// Index inverts At: the enumeration position of a point.
func (s Space) Index(p Point) (int64, error) {
	if len(p) != len(s.Axes) {
		return 0, fmt.Errorf("space: point has %d coordinates, want %d", len(p), len(s.Axes))
	}
	var idx int64
	for k, a := range s.Axes {
		if p[k] < 0 || p[k] >= a.Len() {
			return 0, fmt.Errorf("space: axis %q index %d outside [0,%d)", a.Name, p[k], a.Len())
		}
		idx = idx*int64(a.Len()) + int64(p[k])
	}
	return idx, nil
}

// Contains reports whether p is a well-formed point of the space.
func (s Space) Contains(p Point) bool {
	_, err := s.Index(p)
	return err == nil
}

// Enumerate materializes every point in enumeration order. It refuses
// spaces above the limit — exhaustive sweeps are only tractable on pinned
// or reduced spaces. A limit of 0 defaults to 65536 points.
func (s Space) Enumerate(limit int64) ([]Point, error) {
	if limit <= 0 {
		limit = 1 << 16
	}
	if s.Size() > limit {
		return nil, fmt.Errorf("space: %d points exceeds enumeration limit %d", s.Size(), limit)
	}
	out := make([]Point, 0, s.Size())
	for i := int64(0); i < s.Size(); i++ {
		out = append(out, s.At(i))
	}
	return out, nil
}

// maxCornerCombos bounds the categorical cross product seeded as corners.
const maxCornerCombos = 64

// corners returns the seeded corner points: for every combination of
// categorical choices (up to maxCornerCombos, else just the global pair),
// the all-minimum and all-maximum integer corner. With no categorical axes
// this is exactly the historical two-corner seeding.
func (s Space) corners() []Point {
	var catIdx []int
	combos := int64(1)
	for i, a := range s.Axes {
		if a.Kind == KindCat {
			catIdx = append(catIdx, i)
			combos *= int64(a.Len())
		}
	}
	if combos > maxCornerCombos {
		catIdx, combos = nil, 1
	}
	out := make([]Point, 0, 2*combos)
	for c := int64(0); c < combos; c++ {
		lo := make(Point, len(s.Axes))
		hi := make(Point, len(s.Axes))
		for i, a := range s.Axes {
			hi[i] = a.Len() - 1
		}
		// Spread the combo index over the categorical axes, last fastest.
		rem := c
		for k := len(catIdx) - 1; k >= 0; k-- {
			i := catIdx[k]
			n := int64(s.Axes[i].Len())
			v := int(rem % n)
			rem /= n
			lo[i], hi[i] = v, v
		}
		out = append(out, lo, hi)
	}
	return out
}

// Sample draws n distinct points uniformly from the space, always including
// the corner points so downstream optimizers see the full dynamic range.
// The draw sequence — one rng.Intn per axis in axis order per attempt, with
// encoding-keyed dedup and a 200·n miss budget — reproduces the historical
// dse sampling bit for bit on the legacy axis list.
func (s Space) Sample(n int, seed int64) []Point {
	rng := tensor.NewRNG(seed)
	seen := map[string]bool{}
	var out []Point
	add := func(p Point) {
		k := s.Encode(p)
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	for _, p := range s.corners() {
		add(p)
	}
	if int64(n) > s.Size() {
		n = int(s.Size())
	}
	misses := 0
	for len(out) < n && misses < 200*n {
		before := len(out)
		p := make(Point, len(s.Axes))
		for i, a := range s.Axes {
			p[i] = rng.Intn(a.Len())
		}
		add(p)
		if len(out) == before {
			misses++
		}
	}
	return out
}

// Encode renders a point as a stable, injective "name=value" string — the
// canonical cache-key form. Two points encode equally iff they select the
// same value on every axis.
func (s Space) Encode(p Point) string {
	var b strings.Builder
	for i, a := range s.Axes {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(a.Name)
		b.WriteByte('=')
		b.WriteString(a.ValueString(p[i]))
	}
	return b.String()
}

// Vector encodes a point as the normalized feature vector the GP/BO layer
// consumes: one dimension per axis, in axis order.
func (s Space) Vector(p Point) []float64 {
	out := make([]float64, len(s.Axes))
	for i, a := range s.Axes {
		out[i] = a.Feature(p[i])
	}
	return out
}

// Fingerprint returns the space's content address: the hex sha256 of the
// canonical axis description (names, kinds, values, scales, bounds). Two
// spaces fingerprint equally iff they define the same search problem.
func (s Space) Fingerprint() string {
	var b strings.Builder
	for _, a := range s.Axes {
		fmt.Fprintf(&b, "%s|%s|%d|%g|%g|", a.Name, a.Kind, int(a.Scale), a.Lo, a.Hi)
		for i := 0; i < a.Len(); i++ {
			b.WriteString(a.ValueString(i))
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
