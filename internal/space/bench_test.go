package space

import "testing"

// benchSpace mirrors the Table II grid plus the algorithm axis — the shape
// the dse layer enumerates, samples, and encodes on every Phase-2 run.
func benchSpace() Space {
	return New(
		CatAxis("algorithm", "dqn", "reinforce"),
		Axis{Name: "layers", Kind: KindInt, Ints: []int{2, 3, 4, 5, 6, 7, 8, 9, 10}, Lo: 2, Hi: 10},
		Axis{Name: "filters", Kind: KindInt, Ints: []int{32, 48, 64}, Lo: 32, Hi: 64},
		Axis{Name: "pe_rows", Kind: KindInt, Ints: []int{8, 16, 32, 64, 128, 256, 512, 1024}, Scale: ScaleLog2, Lo: 3, Hi: 10},
		Axis{Name: "pe_cols", Kind: KindInt, Ints: []int{8, 16, 32, 64, 128, 256, 512, 1024}, Scale: ScaleLog2, Lo: 3, Hi: 10},
		Axis{Name: "sram_kb", Kind: KindInt, Ints: []int{32, 64, 128, 256, 512, 1024, 2048, 4096}, Scale: ScaleLog2, Lo: 5, Hi: 12},
	)
}

func BenchmarkEnumerate(b *testing.B) {
	s := New(benchSpace().Axes[:4]...) // 2*9*3*8 = 432 points
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := s.Enumerate(0)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 432 {
			b.Fatal("bad enumeration")
		}
	}
}

func BenchmarkSample(b *testing.B) {
	s := benchSpace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if pts := s.Sample(256, int64(i)+1); len(pts) != 256 {
			b.Fatal("short sample")
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	s := benchSpace()
	p := s.At(s.Size() / 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.Encode(p) == "" {
			b.Fatal("empty encoding")
		}
	}
}

func BenchmarkIndexRoundTrip(b *testing.B) {
	s := benchSpace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx := int64(i) % s.Size()
		j, err := s.Index(s.At(idx))
		if err != nil || j != idx {
			b.Fatal("round trip failed")
		}
	}
}

func BenchmarkVector(b *testing.B) {
	s := benchSpace()
	p := s.At(s.Size() / 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(s.Vector(p)) != 6 {
			b.Fatal("bad vector")
		}
	}
}
