package space

import (
	"math"
	"reflect"
	"testing"
)

func testSpace() Space {
	return New(
		CatAxis("algorithm", "dqn", "reinforce"),
		IntAxis("layers", 2, 4, 7),
		Axis{Name: "pe", Kind: KindInt, Ints: []int{8, 16, 32, 64}, Scale: ScaleLog2, Lo: 3, Hi: 10},
	)
}

func TestValidate(t *testing.T) {
	if err := testSpace().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		s    Space
	}{
		{"no axes", New()},
		{"unnamed", New(IntAxis("", 1))},
		{"empty int axis", New(IntAxis("a"))},
		{"empty cat axis", New(CatAxis("a"))},
		{"duplicate axis", New(IntAxis("a", 1), IntAxis("a", 2))},
		{"duplicate value", New(IntAxis("a", 1, 1))},
		{"duplicate choice", New(CatAxis("a", "x", "x"))},
		{"empty choice", New(CatAxis("a", ""))},
		{"separator in name", New(IntAxis("a=b", 1))},
		{"separator in choice", New(CatAxis("a", "x;y"))},
		{"mixed kinds", New(Axis{Name: "a", Kind: KindInt, Ints: []int{1}, Cats: []string{"x"}})},
		{"log2 of zero", New(Axis{Name: "a", Kind: KindInt, Ints: []int{0}, Scale: ScaleLog2})},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if _, ok := err.(*ValidationError); !ok {
			t.Errorf("%s: error %T is not *ValidationError", c.name, err)
		}
	}
}

// TestEnumerationDeterministic pins the enumeration order: last axis
// fastest, repeated calls identical.
func TestEnumerationDeterministic(t *testing.T) {
	s := testSpace()
	a, err := s.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Enumerate(0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("enumeration order not deterministic")
	}
	if int64(len(a)) != s.Size() {
		t.Fatalf("enumerated %d of %d points", len(a), s.Size())
	}
	// Last axis varies fastest.
	if !reflect.DeepEqual(a[0], Point{0, 0, 0}) || !reflect.DeepEqual(a[1], Point{0, 0, 1}) {
		t.Fatalf("unexpected head order: %v, %v", a[0], a[1])
	}
	if !reflect.DeepEqual(a[len(a)-1], Point{1, 2, 3}) {
		t.Fatalf("unexpected tail point: %v", a[len(a)-1])
	}
}

// TestIndexRoundTrip checks Index(At(i)) == i over the full grid.
func TestIndexRoundTrip(t *testing.T) {
	s := testSpace()
	for i := int64(0); i < s.Size(); i++ {
		p := s.At(i)
		j, err := s.Index(p)
		if err != nil {
			t.Fatal(err)
		}
		if j != i {
			t.Fatalf("Index(At(%d)) = %d", i, j)
		}
	}
	if _, err := s.Index(Point{0, 0}); err == nil {
		t.Fatal("short point accepted")
	}
	if _, err := s.Index(Point{0, 0, 99}); err == nil {
		t.Fatal("out-of-range coordinate accepted")
	}
}

func TestEnumerateLimit(t *testing.T) {
	s := testSpace()
	if _, err := s.Enumerate(s.Size() - 1); err == nil {
		t.Fatal("limit not enforced")
	}
}

// TestSampleReproducible checks seeded sampling: same seed same sequence,
// different seed different sequence, all points distinct and in-space,
// corners always present.
func TestSampleReproducible(t *testing.T) {
	s := testSpace()
	a := s.Sample(10, 42)
	b := s.Sample(10, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different samples")
	}
	c := s.Sample(10, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical samples")
	}
	seen := map[string]bool{}
	for _, p := range a {
		if !s.Contains(p) {
			t.Fatalf("sampled point %v outside space", p)
		}
		k := s.Encode(p)
		if seen[k] {
			t.Fatalf("duplicate sample %s", k)
		}
		seen[k] = true
	}
	// Per-algorithm corners: all-min and all-max for each categorical choice.
	for _, want := range []Point{{0, 0, 0}, {0, 2, 3}, {1, 0, 0}, {1, 2, 3}} {
		if !seen[s.Encode(want)] {
			t.Fatalf("corner %v missing from sample", want)
		}
	}
}

func TestSampleClampsToSize(t *testing.T) {
	s := New(IntAxis("a", 1, 2), IntAxis("b", 3, 4))
	pts := s.Sample(100, 1)
	if int64(len(pts)) != s.Size() {
		t.Fatalf("sampled %d of %d points", len(pts), s.Size())
	}
}

// TestEncodeInjective checks the cache-key encoding is injective across the
// full grid and stable across calls.
func TestEncodeInjective(t *testing.T) {
	s := testSpace()
	seen := map[string]int64{}
	for i := int64(0); i < s.Size(); i++ {
		k := s.Encode(s.At(i))
		if prev, dup := seen[k]; dup {
			t.Fatalf("points %d and %d encode equally: %s", prev, i, k)
		}
		seen[k] = i
	}
	if got := s.Encode(Point{1, 2, 0}); got != "algorithm=reinforce;layers=7;pe=8" {
		t.Fatalf("encoding = %q", got)
	}
}

func TestFingerprint(t *testing.T) {
	a, b := testSpace(), testSpace()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal spaces fingerprint differently")
	}
	c := testSpace()
	c.Axes[1].Ints = []int{2, 4, 8}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different spaces share a fingerprint")
	}
	d := testSpace()
	d.Axes[2].Scale = ScaleLinear
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("scale change did not change the fingerprint")
	}
}

// TestVector pins the feature arithmetic the GP kernels were calibrated on:
// linear and log2 normalization with explicit or derived bounds, and
// categorical features spread over [0,1].
func TestVector(t *testing.T) {
	s := testSpace()
	v := s.Vector(Point{1, 1, 2})
	want := []float64{
		1.0,                            // reinforce: index 1 of 2
		(4.0 - 2.0) / (7.0 - 2.0),      // layers: derived bounds 2..7
		(math.Log2(32) - 3) / (10 - 3), // pe: log2 with explicit bounds
	}
	if len(v) != len(want) {
		t.Fatalf("vector length %d, want %d", len(v), len(want))
	}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("dim %d = %v, want %v", i, v[i], want[i])
		}
	}
	one := Axis{Name: "a", Kind: KindCat, Cats: []string{"only"}}
	if one.CatFeature("only") != 0.5 {
		t.Fatal("single-choice categorical feature != 0.5")
	}
	if one.CatFeature("missing") != -1 {
		t.Fatal("unknown choice feature != -1")
	}
}

func TestCornersWithoutCatAxes(t *testing.T) {
	s := New(IntAxis("a", 1, 2, 3), IntAxis("b", 4, 5))
	pts := s.Sample(2, 7)
	if !reflect.DeepEqual(pts[0], Point{0, 0}) || !reflect.DeepEqual(pts[1], Point{2, 1}) {
		t.Fatalf("corners = %v, %v", pts[0], pts[1])
	}
}

func TestAxisIndexAndDims(t *testing.T) {
	s := testSpace()
	if s.AxisIndex("layers") != 1 || s.AxisIndex("missing") != -1 {
		t.Fatal("AxisIndex lookup broken")
	}
	if !reflect.DeepEqual(s.Dims(), []int{2, 3, 4}) {
		t.Fatalf("Dims = %v", s.Dims())
	}
}
