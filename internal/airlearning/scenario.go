// Package airlearning is the Air Learning substitute: a deterministic
// grid-world UAV navigation simulator with the paper's domain-randomization
// structure (configurable arena, fixed + randomly placed obstacles, random
// goal every episode), an episode/rollout harness, a policy database, and a
// calibrated success-rate surrogate used by the experiment harness in place
// of multi-day RL training.
package airlearning

import "fmt"

// Scenario is a deployment complexity class (paper §V-A).
type Scenario int

// The three deployment scenarios evaluated in the paper.
const (
	LowObstacle Scenario = iota
	MediumObstacle
	DenseObstacle
)

// Scenarios lists all deployment scenarios in paper order.
var Scenarios = []Scenario{LowObstacle, MediumObstacle, DenseObstacle}

// String returns the paper's name for the scenario.
func (s Scenario) String() string {
	switch s {
	case LowObstacle:
		return "low-obstacle"
	case MediumObstacle:
		return "medium-obstacle"
	case DenseObstacle:
		return "dense-obstacle"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// EnvConfig describes one domain-randomized environment family.
type EnvConfig struct {
	ArenaW, ArenaH int // arena size in cells
	FixedObstacles int // obstacles at deterministic positions
	RandomMax      int // up to this many randomly placed obstacles per episode
	ObstacleSize   int // obstacles are ObstacleSize×ObstacleSize cell blocks
	MaxSteps       int // episode step budget
	Dynamic        int // moving single-cell obstacles that bounce around the arena
}

// Config returns the environment-generator parameters for the scenario,
// matching §V-A: low = 4 randomly placed obstacles with a random goal each
// episode; medium = 4 fixed + up to 3 random; dense = 4 fixed + up to 5
// random.
func (s Scenario) Config() EnvConfig {
	base := EnvConfig{ArenaW: 21, ArenaH: 21, ObstacleSize: 2, MaxSteps: 120}
	switch s {
	case LowObstacle:
		base.FixedObstacles = 0
		base.RandomMax = 4
	case MediumObstacle:
		base.FixedObstacles = 4
		base.RandomMax = 3
	case DenseObstacle:
		base.FixedObstacles = 4
		base.RandomMax = 5
	default:
		panic(fmt.Sprintf("airlearning: unknown scenario %d", int(s)))
	}
	return base
}

// ObstacleDensity returns the mean fraction of arena cells covered by
// obstacles for the scenario, used by the F-1 decision-spacing model.
func (s Scenario) ObstacleDensity() float64 {
	cfg := s.Config()
	mean := float64(cfg.FixedObstacles) + float64(cfg.RandomMax)/2
	cells := float64(cfg.ObstacleSize * cfg.ObstacleSize)
	return mean * cells / float64(cfg.ArenaW*cfg.ArenaH)
}
