package airlearning

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"autopilot/internal/policy"
)

// TestDatabaseConcurrentAccess hammers the database from many goroutines —
// writers inserting records, readers issuing Get/Best/All/Len — so
// `go test -race` proves the RWMutex covers every path the parallel
// evaluation engine exercises.
func TestDatabaseConcurrentAccess(t *testing.T) {
	db := NewDatabase()
	hypers := policy.AllHypers()
	const writers, readers, rounds = 4, 4, 50

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				h := hypers[(w*rounds+r)%len(hypers)]
				for _, s := range Scenarios {
					db.Put(Record{
						Hyper:       h,
						Scenario:    s,
						SuccessRate: float64((w+r)%100) / 100,
					})
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				h := hypers[(g*rounds+r)%len(hypers)]
				db.Get(h, DenseObstacle)
				db.Best(Scenarios[r%len(Scenarios)])
				db.All()
				db.Len()
			}
		}(g)
	}
	wg.Wait()

	if db.Len() == 0 {
		t.Fatal("no records survived the hammering")
	}
	// All must stay sorted by ID whatever the interleaving was.
	recs := db.All()
	for i := 1; i < len(recs); i++ {
		if recs[i-1].ID > recs[i].ID {
			t.Fatalf("All() not sorted: %q before %q", recs[i-1].ID, recs[i].ID)
		}
	}
}

// TestDatabaseConcurrentSnapshots interleaves concurrent writers with
// checkpoint snapshots — the access pattern of the training engine's
// resumable sweep, where every worker that completes a record re-snapshots
// the shared database. Under -race this proves Snapshot's read path is safe
// against in-flight Puts, and every snapshot written must itself be a
// loadable, internally consistent database.
func TestDatabaseConcurrentSnapshots(t *testing.T) {
	db := NewDatabase()
	hypers := policy.AllHypers()
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	const writers, snapshotters, rounds = 4, 3, 40

	// Seed one record so even the earliest snapshot is non-empty.
	db.Put(Record{Hyper: hypers[0], Scenario: LowObstacle, SuccessRate: 0.5})

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				h := hypers[(w*rounds+r)%len(hypers)]
				db.Put(Record{
					Hyper:       h,
					Scenario:    Scenarios[r%len(Scenarios)],
					SuccessRate: float64((w+r)%100) / 100,
				})
			}
		}(w)
	}
	for s := 0; s < snapshotters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := db.Snapshot(path); err != nil {
					t.Errorf("Snapshot: %v", err)
					return
				}
				// Each snapshot is written atomically (temp file + rename),
				// so a concurrent reader must always see a complete database.
				loaded, err := Load(path)
				if err != nil {
					t.Errorf("Load mid-write: %v", err)
					return
				}
				if loaded.Len() == 0 {
					t.Error("snapshot lost all records")
					return
				}
			}
		}()
	}
	wg.Wait()

	final, err := Load(path)
	if err != nil {
		t.Fatalf("final Load: %v", err)
	}
	// The last snapshot is a subset of the final database: every record it
	// holds must round-trip exactly.
	for _, rec := range final.All() {
		got, ok := db.Get(rec.Hyper, rec.Scenario)
		if !ok {
			t.Fatalf("snapshot record %q missing from database", rec.ID)
		}
		if got.ID != rec.ID || got.Params != rec.Params {
			t.Fatalf("snapshot record %q diverged: %+v vs %+v", rec.ID, rec, got)
		}
	}
}

// TestBestDeterministicTieBreak pins the documented tie rule: among records
// with equal success, Best returns the lexicographically smallest ID
// regardless of insertion order.
func TestBestDeterministicTieBreak(t *testing.T) {
	mk := func(order []policy.Hyper) Record {
		db := NewDatabase()
		for _, h := range order {
			db.Put(Record{Hyper: h, Scenario: LowObstacle, SuccessRate: 0.5})
		}
		best, ok := db.Best(LowObstacle)
		if !ok {
			t.Fatal("no best record")
		}
		return best
	}
	a := mk([]policy.Hyper{{Layers: 2, Filters: 32}, {Layers: 9, Filters: 64}, {Layers: 4, Filters: 48}})
	b := mk([]policy.Hyper{{Layers: 9, Filters: 64}, {Layers: 4, Filters: 48}, {Layers: 2, Filters: 32}})
	if a.ID != b.ID {
		t.Fatalf("tie-break depends on insertion order: %q vs %q", a.ID, b.ID)
	}
	want := Key(policy.Hyper{Layers: 2, Filters: 32}, LowObstacle)
	if a.ID != fmt.Sprint(want) {
		t.Fatalf("Best = %q, want smallest ID %q", a.ID, want)
	}
}
