package airlearning

import (
	"fmt"
	"sync"
	"testing"

	"autopilot/internal/policy"
)

// TestDatabaseConcurrentAccess hammers the database from many goroutines —
// writers inserting records, readers issuing Get/Best/All/Len — so
// `go test -race` proves the RWMutex covers every path the parallel
// evaluation engine exercises.
func TestDatabaseConcurrentAccess(t *testing.T) {
	db := NewDatabase()
	hypers := policy.AllHypers()
	const writers, readers, rounds = 4, 4, 50

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				h := hypers[(w*rounds+r)%len(hypers)]
				for _, s := range Scenarios {
					db.Put(Record{
						Hyper:       h,
						Scenario:    s,
						SuccessRate: float64((w+r)%100) / 100,
					})
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				h := hypers[(g*rounds+r)%len(hypers)]
				db.Get(h, DenseObstacle)
				db.Best(Scenarios[r%len(Scenarios)])
				db.All()
				db.Len()
			}
		}(g)
	}
	wg.Wait()

	if db.Len() == 0 {
		t.Fatal("no records survived the hammering")
	}
	// All must stay sorted by ID whatever the interleaving was.
	recs := db.All()
	for i := 1; i < len(recs); i++ {
		if recs[i-1].ID > recs[i].ID {
			t.Fatalf("All() not sorted: %q before %q", recs[i-1].ID, recs[i].ID)
		}
	}
}

// TestBestDeterministicTieBreak pins the documented tie rule: among records
// with equal success, Best returns the lexicographically smallest ID
// regardless of insertion order.
func TestBestDeterministicTieBreak(t *testing.T) {
	mk := func(order []policy.Hyper) Record {
		db := NewDatabase()
		for _, h := range order {
			db.Put(Record{Hyper: h, Scenario: LowObstacle, SuccessRate: 0.5})
		}
		best, ok := db.Best(LowObstacle)
		if !ok {
			t.Fatal("no best record")
		}
		return best
	}
	a := mk([]policy.Hyper{{Layers: 2, Filters: 32}, {Layers: 9, Filters: 64}, {Layers: 4, Filters: 48}})
	b := mk([]policy.Hyper{{Layers: 9, Filters: 64}, {Layers: 4, Filters: 48}, {Layers: 2, Filters: 32}})
	if a.ID != b.ID {
		t.Fatalf("tie-break depends on insertion order: %q vs %q", a.ID, b.ID)
	}
	want := Key(policy.Hyper{Layers: 2, Filters: 32}, LowObstacle)
	if a.ID != fmt.Sprint(want) {
		t.Fatalf("Best = %q, want smallest ID %q", a.ID, want)
	}
}
