package airlearning

import "strings"

// Render draws the current arena as ASCII art for debugging and the example
// programs: '#' obstacle, 'U' the UAV, 'G' the goal, '.' free space.
func (e *Env) Render() string {
	var b strings.Builder
	b.Grow((e.cfg.ArenaW + 1) * e.cfg.ArenaH)
	for y := 0; y < e.cfg.ArenaH; y++ {
		for x := 0; x < e.cfg.ArenaW; x++ {
			p := Point{x, y}
			switch {
			case p == e.pos:
				b.WriteByte('U')
			case p == e.goal:
				b.WriteByte('G')
			case e.Blocked(p):
				b.WriteByte('#')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
