package airlearning

import (
	"math"

	"autopilot/internal/policy"
)

// SurrogateDB is the calibrated success-rate model used by the experiment
// harness in place of multi-day RL training (see DESIGN.md §1). It
// reproduces the structure the paper reports:
//
//   - success rates span roughly 60%–91% over the template family (Fig. 2b);
//   - the best model per scenario matches §V-A: low-obstacle 5 layers / 32
//     filters, medium 4 layers / 48 filters, dense 7 layers / 48 filters;
//   - harder scenarios have lower peak success (denser clutter is harder).
//
// It is deterministic so every experiment is exactly reproducible.
type SurrogateDB struct{}

// surrogate anchor points per scenario.
type surrogateAnchor struct {
	bestLayers  int
	bestFilters int
	peak        float64 // success rate of the best model
	layerSigma  float64 // how quickly success falls off with |layers - best|
	filterSigma float64
}

func anchorFor(s Scenario) surrogateAnchor {
	switch s {
	case LowObstacle:
		return surrogateAnchor{bestLayers: 5, bestFilters: 32, peak: 0.91, layerSigma: 4.5, filterSigma: 40}
	case MediumObstacle:
		return surrogateAnchor{bestLayers: 4, bestFilters: 48, peak: 0.84, layerSigma: 4.0, filterSigma: 30}
	case DenseObstacle:
		return surrogateAnchor{bestLayers: 7, bestFilters: 48, peak: 0.78, layerSigma: 3.5, filterSigma: 25}
	default:
		panic("airlearning: unknown scenario")
	}
}

// SuccessRate returns the surrogate task success rate for an E2E model on a
// scenario. Models that are too small underfit (steeper penalty) and models
// that are too large train less reliably (shallower penalty), producing the
// Fig. 2b capacity/success trade-off with a unique argmax per scenario.
func (SurrogateDB) SuccessRate(h policy.Hyper, s Scenario) float64 {
	if err := h.Validate(); err != nil {
		return 0
	}
	a := anchorFor(s)
	dl := float64(h.Layers - a.bestLayers)
	df := float64(h.Filters - a.bestFilters)
	penalty := 0.0
	if dl < 0 { // underfit: missing depth hurts more
		penalty += 1.6 * (dl / a.layerSigma) * (dl / a.layerSigma)
	} else {
		penalty += (dl / a.layerSigma) * (dl / a.layerSigma)
	}
	if df < 0 {
		penalty += 1.6 * (df / a.filterSigma) * (df / a.filterSigma)
	} else {
		penalty += (df / a.filterSigma) * (df / a.filterSigma)
	}
	rate := a.peak * math.Exp(-penalty)
	if rate < 0.55 {
		rate = 0.55 // floor: even small validated policies clear ~55-60%
	}
	return rate
}

// PopulateSurrogate fills a database with surrogate records for every model
// in the Table II family across all scenarios — the state Phase 1 would
// leave behind after training and validating the full sweep.
func PopulateSurrogate(db *Database) {
	var sur SurrogateDB
	for _, s := range Scenarios {
		for _, h := range policy.AllHypers() {
			params := int64(0)
			if n, err := policy.Build(h, policy.DefaultTemplate()); err == nil {
				params = n.Params()
			}
			db.Put(Record{
				Hyper:       h,
				Scenario:    s,
				SuccessRate: sur.SuccessRate(h, s),
				Params:      params,
			})
		}
	}
}
