package airlearning

import (
	"strings"
	"testing"

	"autopilot/internal/policy"
)

func TestScenarioConfigsMatchPaper(t *testing.T) {
	low := LowObstacle.Config()
	if low.RandomMax != 4 || low.FixedObstacles != 0 {
		t.Errorf("low = %+v", low)
	}
	med := MediumObstacle.Config()
	if med.FixedObstacles != 4 || med.RandomMax != 3 {
		t.Errorf("medium = %+v", med)
	}
	dense := DenseObstacle.Config()
	if dense.FixedObstacles != 4 || dense.RandomMax != 5 {
		t.Errorf("dense = %+v", dense)
	}
}

func TestScenarioStrings(t *testing.T) {
	for _, s := range Scenarios {
		if s.String() == "" {
			t.Errorf("empty name for %d", int(s))
		}
	}
}

func TestObstacleDensityOrdering(t *testing.T) {
	if !(LowObstacle.ObstacleDensity() < MediumObstacle.ObstacleDensity()) {
		// low has 4 random (mean 4), medium has 4 fixed + mean 1.5 random = 5.5
		t.Error("medium must be denser than low")
	}
	if !(MediumObstacle.ObstacleDensity() < DenseObstacle.ObstacleDensity()) {
		t.Error("dense must be denser than medium")
	}
}

func TestResetProducesSolvableEpisodes(t *testing.T) {
	for _, s := range Scenarios {
		env := NewEnv(s, 7)
		for ep := 0; ep < 20; ep++ {
			obs := env.Reset()
			if env.Blocked(env.Pos()) {
				t.Fatalf("%v: start blocked", s)
			}
			if env.Blocked(env.Goal()) {
				t.Fatalf("%v: goal blocked", s)
			}
			if path := env.ShortestPath(env.Pos(), env.Goal()); len(path) == 0 {
				t.Fatalf("%v: unreachable goal", s)
			}
			if obs.Image.Len() != ObsWindow*ObsWindow {
				t.Fatalf("obs image len = %d", obs.Image.Len())
			}
			if obs.State.Len() != StateDim {
				t.Fatalf("obs state len = %d", obs.State.Len())
			}
		}
	}
}

func TestGoalRandomizedEachEpisode(t *testing.T) {
	env := NewEnv(LowObstacle, 3)
	goals := map[Point]bool{}
	for i := 0; i < 10; i++ {
		env.Reset()
		goals[env.Goal()] = true
	}
	if len(goals) < 3 {
		t.Fatalf("only %d distinct goals over 10 episodes; domain randomization broken", len(goals))
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	a, b := NewEnv(DenseObstacle, 42), NewEnv(DenseObstacle, 42)
	for i := 0; i < 5; i++ {
		a.Reset()
		b.Reset()
		if a.Goal() != b.Goal() || a.Pos() != b.Pos() {
			t.Fatal("same seed must reproduce the same episodes")
		}
	}
}

func TestStepIntoWallCollides(t *testing.T) {
	env := NewEnv(LowObstacle, 1)
	env.Reset()
	// start is at (1, H-2); move SW repeatedly to leave the arena
	done := false
	var reward float64
	for i := 0; i < 5 && !done; i++ {
		_, reward, done = env.Step(5) // SW
	}
	if !done || env.OutcomeNow() != Collision {
		t.Fatalf("outcome = %v, want collision", env.OutcomeNow())
	}
	if reward >= 0 {
		t.Fatalf("collision reward = %g, want negative", reward)
	}
}

func TestReachGoalGivesSuccessAndPositiveReward(t *testing.T) {
	env := NewEnv(LowObstacle, 5)
	env.Reset()
	expert := ExpertPolicy{Env: env}
	var reward float64
	done := false
	obs := env.observe()
	for !done {
		obs, reward, done = env.Step(expert.Act(obs))
	}
	if env.OutcomeNow() != Success {
		t.Fatalf("outcome = %v, want success", env.OutcomeNow())
	}
	if reward <= 0 {
		t.Fatalf("terminal reward = %g, want positive", reward)
	}
}

func TestTimeoutOutcome(t *testing.T) {
	env := NewEnv(LowObstacle, 9)
	env.Reset()
	// oscillate E/W forever (legal moves from the start region)
	done := false
	i := 0
	for !done {
		a := 2
		if i%2 == 1 {
			a = 6
		}
		_, _, done = env.Step(a)
		i++
		if i > env.Config().MaxSteps+2 {
			t.Fatal("episode did not time out")
		}
	}
	if env.OutcomeNow() != Timeout && env.OutcomeNow() != Collision {
		t.Fatalf("outcome = %v", env.OutcomeNow())
	}
}

func TestStepAfterDonePanics(t *testing.T) {
	env := NewEnv(LowObstacle, 1)
	env.Reset()
	done := false
	for !done {
		_, _, done = env.Step(5)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	env.Step(0)
}

func TestBadActionPanics(t *testing.T) {
	env := NewEnv(LowObstacle, 1)
	env.Reset()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	env.Step(8)
}

func TestExpertPolicyHighSuccess(t *testing.T) {
	for _, s := range Scenarios {
		env := NewEnv(s, 11)
		rate := SuccessRate(env, ExpertPolicy{Env: env}, 30)
		if rate < 0.95 {
			t.Errorf("%v: expert success %.2f, want >= 0.95", s, rate)
		}
	}
}

func TestRandomPolicyWorseThanExpert(t *testing.T) {
	env := NewEnv(LowObstacle, 13)
	i := 0
	random := PolicyFunc(func(Observation) int {
		i = (i*7 + 3) % NumActions
		return i
	})
	randRate := SuccessRate(env, random, 30)
	expertRate := SuccessRate(env, ExpertPolicy{Env: env}, 30)
	if randRate >= expertRate {
		t.Fatalf("random %.2f >= expert %.2f", randRate, expertRate)
	}
}

func TestRunEpisodeResultConsistency(t *testing.T) {
	env := NewEnv(MediumObstacle, 17)
	res := RunEpisode(env, ExpertPolicy{Env: env})
	if res.Steps <= 0 {
		t.Fatal("episode took no steps")
	}
	if res.Outcome == Running {
		t.Fatal("RunEpisode returned while still running")
	}
}

func TestSuccessRateZeroEpisodes(t *testing.T) {
	env := NewEnv(LowObstacle, 1)
	if got := SuccessRate(env, ExpertPolicy{Env: env}, 0); got != 0 {
		t.Fatalf("SuccessRate(0 eps) = %g", got)
	}
}

func TestObservationEgocentricWalls(t *testing.T) {
	env := NewEnv(LowObstacle, 21)
	obs := env.Reset()
	// start near the bottom-left corner: the left edge of the window must
	// show out-of-arena cells as blocked
	blockedLeft := 0.0
	for y := 0; y < ObsWindow; y++ {
		blockedLeft += obs.Image.At(0, y, 0)
	}
	if blockedLeft == 0 {
		t.Fatal("expected wall cells visible in egocentric crop near the corner")
	}
}

func TestDatabasePutGetBest(t *testing.T) {
	db := NewDatabase()
	db.Put(Record{Hyper: policy.Hyper{Layers: 4, Filters: 48}, Scenario: MediumObstacle, SuccessRate: 0.8})
	db.Put(Record{Hyper: policy.Hyper{Layers: 2, Filters: 32}, Scenario: MediumObstacle, SuccessRate: 0.6})
	db.Put(Record{Hyper: policy.Hyper{Layers: 9, Filters: 64}, Scenario: DenseObstacle, SuccessRate: 0.7})
	if db.Len() != 3 {
		t.Fatalf("Len = %d", db.Len())
	}
	r, ok := db.Get(policy.Hyper{Layers: 4, Filters: 48}, MediumObstacle)
	if !ok || r.SuccessRate != 0.8 {
		t.Fatalf("Get = %+v, %v", r, ok)
	}
	best, ok := db.Best(MediumObstacle)
	if !ok || best.Hyper.Layers != 4 {
		t.Fatalf("Best = %+v", best)
	}
	if _, ok := db.Best(LowObstacle); ok {
		t.Fatal("Best on empty scenario must report !ok")
	}
}

func TestDatabaseSaveLoadRoundTrip(t *testing.T) {
	db := NewDatabase()
	PopulateSurrogate(db)
	path := t.TempDir() + "/db.json"
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("loaded %d records, want %d", loaded.Len(), db.Len())
	}
	for _, r := range db.All() {
		lr, ok := loaded.Get(r.Hyper, r.Scenario)
		if !ok || lr.SuccessRate != r.SuccessRate {
			t.Fatalf("record %s lost in round trip", r.ID)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(t.TempDir() + "/nope.json"); err == nil {
		t.Fatal("expected error")
	}
}

func TestSurrogateBestModelsMatchPaper(t *testing.T) {
	var sur SurrogateDB
	wants := map[Scenario]policy.Hyper{
		LowObstacle:    {Layers: 5, Filters: 32},
		MediumObstacle: {Layers: 4, Filters: 48},
		DenseObstacle:  {Layers: 7, Filters: 48},
	}
	for s, want := range wants {
		best, bestRate := policy.Hyper{}, -1.0
		for _, h := range policy.AllHypers() {
			if r := sur.SuccessRate(h, s); r > bestRate {
				best, bestRate = h, r
			}
		}
		if best != want {
			t.Errorf("%v: best = %v, want %v", s, best, want)
		}
	}
}

func TestSurrogateRatesInPaperBand(t *testing.T) {
	var sur SurrogateDB
	for _, s := range Scenarios {
		for _, h := range policy.AllHypers() {
			r := sur.SuccessRate(h, s)
			if r < 0.55 || r > 0.915 {
				t.Errorf("%v %v: rate %.3f outside paper band [0.55, 0.915]", s, h, r)
			}
		}
	}
}

func TestSurrogateInvalidHyperZero(t *testing.T) {
	var sur SurrogateDB
	if sur.SuccessRate(policy.Hyper{Layers: 0, Filters: 0}, LowObstacle) != 0 {
		t.Fatal("invalid hyper must score 0")
	}
}

func TestPopulateSurrogateCoversSpace(t *testing.T) {
	db := NewDatabase()
	PopulateSurrogate(db)
	if db.Len() != 27*3 {
		t.Fatalf("Len = %d, want 81", db.Len())
	}
	for _, r := range db.All() {
		if r.Params <= 0 {
			t.Fatalf("record %s missing params", r.ID)
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{Running, Success, Collision, Timeout} {
		if o.String() == "" {
			t.Errorf("empty string for %d", int(o))
		}
	}
}

func TestRenderContainsActors(t *testing.T) {
	env := NewEnv(MediumObstacle, 3)
	env.Reset()
	s := env.Render()
	for _, want := range []string{"U", "G", "#", "."} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != env.Config().ArenaH {
		t.Fatalf("render has %d lines, want %d", len(lines), env.Config().ArenaH)
	}
	if strings.Count(s, "U") != 1 || strings.Count(s, "G") != 1 {
		t.Fatal("render must show exactly one UAV and one goal")
	}
}

func TestDynamicObstaclesSpawnAndMove(t *testing.T) {
	cfg := LowObstacle.Config()
	cfg.Dynamic = 3
	env := NewEnvWithConfig(LowObstacle, cfg, 31)
	env.Reset()
	before := env.Movers()
	if len(before) != 3 {
		t.Fatalf("movers = %d, want 3", len(before))
	}
	for i := 0; i < 6; i++ {
		if env.OutcomeNow() != Running {
			env.Reset()
		}
		env.Step(2) // move E if possible
	}
	after := env.Movers()
	moved := false
	for i := range after {
		if after[i] != before[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("dynamic obstacles never moved")
	}
}

func TestDynamicObstaclesBlockCells(t *testing.T) {
	cfg := LowObstacle.Config()
	cfg.Dynamic = 2
	env := NewEnvWithConfig(LowObstacle, cfg, 33)
	env.Reset()
	for _, p := range env.Movers() {
		if !env.Blocked(p) {
			t.Fatalf("mover cell %v not blocked", p)
		}
	}
}

func TestExpertHandlesDynamicObstacles(t *testing.T) {
	cfg := LowObstacle.Config()
	cfg.Dynamic = 2
	env := NewEnvWithConfig(LowObstacle, cfg, 35)
	rate := SuccessRate(env, ExpertPolicy{Env: env}, 25)
	if rate < 0.5 {
		t.Fatalf("expert success with dynamic obstacles = %.2f, want >= 0.5", rate)
	}
}

func TestStaticScenariosHaveNoMovers(t *testing.T) {
	env := NewEnv(DenseObstacle, 1)
	env.Reset()
	if len(env.Movers()) != 0 {
		t.Fatal("paper scenarios are static; no movers expected")
	}
}

func TestSuccessRateCI(t *testing.T) {
	env := NewEnv(LowObstacle, 41)
	rate, lo, hi := SuccessRateCI(env, ExpertPolicy{Env: env}, 30)
	if !(lo <= rate && rate <= hi) {
		t.Fatalf("CI [%g, %g] does not bracket rate %g", lo, hi, rate)
	}
	if lo < 0 || hi > 1 {
		t.Fatalf("CI [%g, %g] outside [0,1]", lo, hi)
	}
	// expert is near-perfect: the interval must sit high
	if lo < 0.6 {
		t.Fatalf("expert lower bound %g suspiciously low", lo)
	}
	if r, l, h := SuccessRateCI(env, ExpertPolicy{Env: env}, 0); r != 0 || l != 0 || h != 0 {
		t.Fatal("zero episodes must give a zero CI")
	}
}

func TestSuccessRateCIWiderWithFewerEpisodes(t *testing.T) {
	envA := NewEnv(LowObstacle, 43)
	_, loA, hiA := SuccessRateCI(envA, ExpertPolicy{Env: envA}, 10)
	envB := NewEnv(LowObstacle, 43)
	_, loB, hiB := SuccessRateCI(envB, ExpertPolicy{Env: envB}, 100)
	if hiA-loA <= hiB-loB {
		t.Fatalf("10-episode CI width %.3f should exceed 100-episode width %.3f", hiA-loA, hiB-loB)
	}
}
