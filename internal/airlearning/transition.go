package airlearning

// Transition is one (s, a, r, s', done) tuple — the unit of experience a
// training algorithm consumes from a rollout. It lives next to the
// environment (rather than in any one algorithm package) so the Phase-1
// training engine, the RL algorithms, and replay buffers all speak the same
// currency.
type Transition struct {
	Obs    Observation
	Action int
	Reward float64
	Next   Observation
	Done   bool
}
