package airlearning

import (
	"fmt"
	"math"

	"autopilot/internal/tensor"
)

// Point is a cell coordinate in the arena.
type Point struct{ X, Y int }

// ObsWindow is the side length of the egocentric observation crop.
const ObsWindow = 11

// StateDim is the width of the state (goal/odometry) vector.
const StateDim = 4

// NumActions is the discrete action count (8 compass moves).
const NumActions = 8

var dirs = [NumActions]Point{
	{0, -1},  // N
	{1, -1},  // NE
	{1, 0},   // E
	{1, 1},   // SE
	{0, 1},   // S
	{-1, 1},  // SW
	{-1, 0},  // W
	{-1, -1}, // NW
}

// Observation is what the policy sees: an egocentric occupancy image and a
// normalized goal vector — the two branches of the multi-modal template.
type Observation struct {
	Image *tensor.Tensor // (1, ObsWindow, ObsWindow) occupancy, 1 = blocked
	State *tensor.Tensor // (StateDim): dx, dy (normalized), distance, step fraction
}

// Outcome describes how an episode ended.
type Outcome int

// Episode outcomes.
const (
	Running Outcome = iota
	Success
	Collision
	Timeout
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Running:
		return "running"
	case Success:
		return "success"
	case Collision:
		return "collision"
	case Timeout:
		return "timeout"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Env is one domain-randomized navigation environment instance. Each Reset
// draws a fresh obstacle layout and goal per the scenario's randomization.
type Env struct {
	Scenario Scenario
	cfg      EnvConfig
	rng      *tensor.RNG
	seed     int64 // construction seed, kept for layout-rescue re-derivation
	resets   int   // episode ordinal, part of the rescue-seed identity

	grid       []bool // true = blocked (static)
	pos, goal  Point
	steps      int
	outcome    Outcome
	totalDist0 float64

	movers []mover // dynamic obstacles
}

// mover is a bouncing single-cell dynamic obstacle.
type mover struct {
	pos Point
	vel Point
}

// NewEnv returns an environment for the scenario seeded deterministically.
func NewEnv(s Scenario, seed int64) *Env {
	return NewEnvWithConfig(s, s.Config(), seed)
}

// NewEnvWithConfig returns an environment with explicit parameters, e.g. a
// smaller arena for fast training runs.
func NewEnvWithConfig(s Scenario, cfg EnvConfig, seed int64) *Env {
	if cfg.ArenaW < ObsWindow || cfg.ArenaH < ObsWindow {
		panic(fmt.Sprintf("airlearning: arena %dx%d smaller than observation window %d",
			cfg.ArenaW, cfg.ArenaH, ObsWindow))
	}
	return &Env{
		Scenario: s,
		cfg:      cfg,
		rng:      tensor.NewRNG(seed),
		seed:     seed,
		grid:     make([]bool, cfg.ArenaW*cfg.ArenaH),
	}
}

// Config exposes the environment parameters.
func (e *Env) Config() EnvConfig { return e.cfg }

// Pos returns the UAV's current cell.
func (e *Env) Pos() Point { return e.pos }

// Goal returns this episode's goal cell.
func (e *Env) Goal() Point { return e.goal }

// OutcomeNow returns the current episode outcome.
func (e *Env) OutcomeNow() Outcome { return e.outcome }

// Blocked reports whether a cell is outside the arena or occupied by a
// static or dynamic obstacle.
func (e *Env) Blocked(p Point) bool {
	if e.staticBlocked(p) {
		return true
	}
	for _, m := range e.movers {
		if m.pos == p {
			return true
		}
	}
	return false
}

func (e *Env) staticBlocked(p Point) bool {
	if p.X < 0 || p.X >= e.cfg.ArenaW || p.Y < 0 || p.Y >= e.cfg.ArenaH {
		return true
	}
	return e.grid[p.Y*e.cfg.ArenaW+p.X]
}

// Movers returns the current dynamic-obstacle positions.
func (e *Env) Movers() []Point {
	out := make([]Point, len(e.movers))
	for i, m := range e.movers {
		out[i] = m.pos
	}
	return out
}

// stepMovers advances the dynamic obstacles one cell along their velocity,
// bouncing off walls, static obstacles and each other.
func (e *Env) stepMovers() {
	for i := range e.movers {
		m := &e.movers[i]
		next := Point{m.pos.X + m.vel.X, m.pos.Y + m.vel.Y}
		blocked := e.staticBlocked(next) || next == e.goal
		for j := range e.movers {
			if j != i && e.movers[j].pos == next {
				blocked = true
				break
			}
		}
		if blocked {
			m.vel = Point{-m.vel.X, -m.vel.Y}
			continue
		}
		m.pos = next
	}
}

func (e *Env) placeBlock(topLeft Point) {
	for dy := 0; dy < e.cfg.ObstacleSize; dy++ {
		for dx := 0; dx < e.cfg.ObstacleSize; dx++ {
			x, y := topLeft.X+dx, topLeft.Y+dy
			if x >= 0 && x < e.cfg.ArenaW && y >= 0 && y < e.cfg.ArenaH {
				e.grid[y*e.cfg.ArenaW+x] = true
			}
		}
	}
}

// fixedObstaclePositions spreads the fixed obstacles over the arena interior
// deterministically (quarter points), as in the paper's fixed layouts.
func (e *Env) fixedObstaclePositions() []Point {
	w, h := e.cfg.ArenaW, e.cfg.ArenaH
	all := []Point{
		{w / 4, h / 4}, {3 * w / 4, h / 4},
		{w / 4, 3 * h / 4}, {3 * w / 4, 3 * h / 4},
		{w / 2, h / 2}, {w / 2, h / 4}, {w / 4, h / 2}, {3 * w / 4, h / 2},
	}
	if e.cfg.FixedObstacles > len(all) {
		panic("airlearning: too many fixed obstacles requested")
	}
	return all[:e.cfg.FixedObstacles]
}

// Layout-generation attempt budgets: the first maxLayoutAttempts draws come
// from the env's live seed stream (bitwise identical to the historical
// behavior whenever a solvable layout exists there); the rescue attempts
// each re-derive a fresh seed from the (env seed, episode, attempt) identity
// to escape a pathological stream before giving up.
const (
	maxLayoutAttempts    = 100
	rescueLayoutAttempts = 8
)

// LayoutError reports that Reset exhausted its attempt budget without
// producing a solvable domain-randomized layout — typically a scenario
// configuration whose obstacle density leaves no reachable goal.
type LayoutError struct {
	Scenario Scenario
	Attempts int
}

// Error renders the exhausted layout budget.
func (e *LayoutError) Error() string {
	return fmt.Sprintf("airlearning: could not generate a solvable %s layout in %d attempts",
		e.Scenario, e.Attempts)
}

// layoutSeed derives the deterministic rescue seed for one layout attempt
// (splitmix64-style finalizer over the env seed, episode ordinal, attempt).
func layoutSeed(seed int64, episode, attempt int) int64 {
	z := uint64(seed) + uint64(episode)*0x9E3779B97F4A7C15 + uint64(attempt)*0xD1B54A32D192ED03
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// tryLayout draws one candidate layout (grid, start, goal) from rng and
// reports whether the goal was placeable and reachable. The draw order is
// the single source of the episode's layout randomness, so identical rng
// state always yields an identical layout.
func (e *Env) tryLayout(rng *tensor.RNG) bool {
	for i := range e.grid {
		e.grid[i] = false
	}
	for _, p := range e.fixedObstaclePositions() {
		e.placeBlock(p)
	}
	n := 0
	if e.cfg.RandomMax > 0 {
		n = rng.Intn(e.cfg.RandomMax + 1)
		if e.Scenario == LowObstacle {
			n = e.cfg.RandomMax // low scenario: exactly 4 obstacles, random positions
		}
	}
	for i := 0; i < n; i++ {
		e.placeBlock(Point{rng.Intn(e.cfg.ArenaW - 1), rng.Intn(e.cfg.ArenaH - 1)})
	}
	e.pos = Point{1, e.cfg.ArenaH - 2}
	e.grid[e.pos.Y*e.cfg.ArenaW+e.pos.X] = false
	// random goal, re-drawn every episode, away from the start
	ok := false
	for tries := 0; tries < 50; tries++ {
		g := Point{rng.Intn(e.cfg.ArenaW), rng.Intn(e.cfg.ArenaH)}
		if e.Blocked(g) || manhattan(g, e.pos) < (e.cfg.ArenaW+e.cfg.ArenaH)/3 {
			continue
		}
		e.goal = g
		ok = true
		break
	}
	if !ok {
		return false
	}
	e.movers = e.movers[:0]
	return e.reachable(e.pos, e.goal)
}

// Reset draws a new domain-randomized layout and returns the first
// observation. It guarantees the goal is reachable from the start.
//
// Reset panics with a *LayoutError if the bounded attempt budget is
// exhausted; fault-tolerant callers should prefer TryReset, which returns
// the typed error instead.
func (e *Env) Reset() Observation {
	obs, err := e.TryReset()
	if err != nil {
		panic(err)
	}
	return obs
}

// TryReset is Reset with a typed error path: layout generation is bounded
// (maxLayoutAttempts draws from the live seed stream, then
// rescueLayoutAttempts on per-attempt re-derived seeds), and exhaustion
// returns a *LayoutError instead of panicking or spinning forever.
func (e *Env) TryReset() (Observation, error) {
	e.resets++
	solved := false
	for attempt := 0; attempt < maxLayoutAttempts+rescueLayoutAttempts; attempt++ {
		rng := e.rng
		if attempt >= maxLayoutAttempts {
			rng = tensor.NewRNG(layoutSeed(e.seed, e.resets, attempt))
		}
		if e.tryLayout(rng) {
			solved = true
			break
		}
	}
	if !solved {
		return Observation{}, &LayoutError{Scenario: e.Scenario, Attempts: maxLayoutAttempts + rescueLayoutAttempts}
	}
	// spawn dynamic obstacles on free cells away from the start and goal
	for i := 0; i < e.cfg.Dynamic; i++ {
		for tries := 0; tries < 50; tries++ {
			p := Point{e.rng.Intn(e.cfg.ArenaW), e.rng.Intn(e.cfg.ArenaH)}
			if e.Blocked(p) || p == e.goal || manhattan(p, e.pos) < 4 {
				continue
			}
			vel := dirs[e.rng.Intn(4)*2] // N/E/S/W
			e.movers = append(e.movers, mover{pos: p, vel: vel})
			break
		}
	}
	e.steps = 0
	e.outcome = Running
	e.totalDist0 = euclid(e.pos, e.goal)
	return e.observe(), nil
}

// reachable runs BFS over 8-connected moves.
func (e *Env) reachable(from, to Point) bool {
	return len(e.ShortestPath(from, to)) > 0
}

// ShortestPath returns a BFS shortest path from `from` to `to` inclusive of
// both endpoints, or nil if unreachable. Exposed for the scripted expert
// policy and tests.
func (e *Env) ShortestPath(from, to Point) []Point {
	w, h := e.cfg.ArenaW, e.cfg.ArenaH
	prev := make([]int, w*h)
	for i := range prev {
		prev[i] = -2
	}
	idx := func(p Point) int { return p.Y*w + p.X }
	queue := []Point{from}
	prev[idx(from)] = -1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == to {
			var path []Point
			for p := to; ; {
				path = append([]Point{p}, path...)
				pi := prev[idx(p)]
				if pi == -1 {
					return path
				}
				p = Point{pi % w, pi / w}
			}
		}
		for _, d := range dirs {
			nxt := Point{cur.X + d.X, cur.Y + d.Y}
			if e.Blocked(nxt) || prev[idx(nxt)] != -2 {
				continue
			}
			prev[idx(nxt)] = idx(cur)
			queue = append(queue, nxt)
		}
	}
	return nil
}

// Step applies a discrete action. It returns the next observation, the
// shaped reward, and whether the episode ended.
func (e *Env) Step(action int) (Observation, float64, bool) {
	if e.outcome != Running {
		panic("airlearning: Step on a finished episode; call Reset")
	}
	if action < 0 || action >= NumActions {
		panic(fmt.Sprintf("airlearning: action %d outside [0,%d)", action, NumActions))
	}
	e.steps++
	prev := euclid(e.pos, e.goal)
	next := Point{e.pos.X + dirs[action].X, e.pos.Y + dirs[action].Y}
	if e.Blocked(next) {
		e.outcome = Collision
		return e.observe(), -1.0, true
	}
	e.pos = next
	if e.pos == e.goal {
		e.outcome = Success
		return e.observe(), 10.0, true
	}
	e.stepMovers()
	for _, m := range e.movers {
		if m.pos == e.pos {
			e.outcome = Collision
			return e.observe(), -1.0, true
		}
	}
	if e.steps >= e.cfg.MaxSteps {
		e.outcome = Timeout
		return e.observe(), -0.5, true
	}
	reward := (prev-euclid(e.pos, e.goal))*0.2 - 0.01
	return e.observe(), reward, false
}

func (e *Env) observe() Observation {
	img := tensor.New(1, ObsWindow, ObsWindow)
	half := ObsWindow / 2
	for dy := -half; dy <= half; dy++ {
		for dx := -half; dx <= half; dx++ {
			p := Point{e.pos.X + dx, e.pos.Y + dy}
			if e.Blocked(p) {
				img.Set(1, 0, dy+half, dx+half)
			}
		}
	}
	st := tensor.New(StateDim)
	dx := float64(e.goal.X-e.pos.X) / float64(e.cfg.ArenaW)
	dy := float64(e.goal.Y-e.pos.Y) / float64(e.cfg.ArenaH)
	st.Set(dx, 0)
	st.Set(dy, 1)
	st.Set(euclid(e.pos, e.goal)/e.totalDist0, 2)
	st.Set(float64(e.steps)/float64(e.cfg.MaxSteps), 3)
	return Observation{Image: img, State: st}
}

func manhattan(a, b Point) int {
	return iabs(a.X-b.X) + iabs(a.Y-b.Y)
}

func euclid(a, b Point) float64 {
	dx, dy := float64(a.X-b.X), float64(a.Y-b.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

func iabs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
