package airlearning

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"autopilot/internal/policy"
)

func checkpointDB() *Database {
	db := NewDatabase()
	db.Put(Record{ID: "a", Hyper: policy.Hyper{Layers: 2, Filters: 32}, Scenario: LowObstacle, SuccessRate: 0.5, Params: 100, TrainSteps: 10})
	db.Put(Record{ID: "b", Hyper: policy.Hyper{Layers: 4, Filters: 48}, Scenario: DenseObstacle, SuccessRate: 0.75, Params: 200, TrainSteps: 20})
	return db
}

// TestCheckpointChecksumRoundTrip pins the v2 format: snapshots carry the
// checksum header and load back to the identical record set.
func TestCheckpointChecksumRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.json")
	db := checkpointDB()
	if err := db.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), checkpointMagic) {
		t.Fatalf("snapshot lacks the v2 checksum header: %q", data[:40])
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(db.All(), loaded.All()) {
		t.Fatalf("round trip changed records:\n%+v\n%+v", db.All(), loaded.All())
	}
}

// TestCheckpointLegacyJSONLoads keeps pre-checksum checkpoints (plain JSON,
// no header) loadable.
func TestCheckpointLegacyJSONLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.json")
	db := checkpointDB()
	payload, err := encodeCheckpoint(db.All())
	if err != nil {
		t.Fatal(err)
	}
	// Strip the header to reconstruct the legacy format.
	body := payload[strings.IndexByte(string(payload), '\n')+1:]
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("legacy checkpoint rejected: %v", err)
	}
	if !reflect.DeepEqual(db.All(), loaded.All()) {
		t.Fatal("legacy load changed records")
	}
}

// TestCheckpointCorruptionQuarantined damages a snapshot in several ways and
// checks each one is detected, quarantined to <path>.corrupt with its bytes
// intact, and reported as a *CorruptError.
func TestCheckpointCorruptionQuarantined(t *testing.T) {
	clean, err := encodeCheckpoint(checkpointDB().All())
	if err != nil {
		t.Fatal(err)
	}
	damage := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)*2/3] },
		"bitflip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		},
		"bad-header-sum": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			copy(c[len(checkpointMagic):], "00000000")
			return c
		},
		"garbage": func([]byte) []byte { return []byte("{not json") },
	}
	for name, corrupt := range damage {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "db.json")
			bad := corrupt(clean)
			if err := os.WriteFile(path, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Load(path)
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Load = %v, want *CorruptError", err)
			}
			if ce.Quarantined != path+".corrupt" {
				t.Fatalf("Quarantined = %q, want %q", ce.Quarantined, path+".corrupt")
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("corrupt file still at original path (stat err %v)", err)
			}
			kept, err := os.ReadFile(ce.Quarantined)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(kept, bad) {
				t.Fatal("quarantine altered the damaged bytes (forensics lost)")
			}
			// The path is now free: a fresh snapshot must succeed and load.
			if err := checkpointDB().Snapshot(path); err != nil {
				t.Fatal(err)
			}
			if _, err := Load(path); err != nil {
				t.Fatalf("rewritten checkpoint rejected: %v", err)
			}
		})
	}
}

// TestTryResetUnsolvableLayout drives layout generation into a configuration
// with (effectively) no solvable episodes: giant random obstacles that bury
// the arena every draw. TryReset must stop after its bounded budget with a
// typed *LayoutError, and Reset must surface the same error as a panic.
func TestTryResetUnsolvableLayout(t *testing.T) {
	cfg := EnvConfig{ArenaW: 11, ArenaH: 11, ObstacleSize: 22, RandomMax: 2000, MaxSteps: 10}
	env := NewEnvWithConfig(LowObstacle, cfg, 7)
	_, err := env.TryReset()
	var le *LayoutError
	if !errors.As(err, &le) {
		t.Fatalf("TryReset = %v, want *LayoutError", err)
	}
	if le.Scenario != LowObstacle || le.Attempts != 108 {
		t.Fatalf("LayoutError = %+v, want low scenario after 108 bounded attempts", le)
	}

	defer func() {
		v := recover()
		if _, ok := v.(*LayoutError); !ok {
			t.Fatalf("Reset panicked with %v, want *LayoutError", v)
		}
	}()
	NewEnvWithConfig(LowObstacle, cfg, 7).Reset()
	t.Fatal("Reset returned from an unsolvable configuration")
}

// TestTryResetDeterministic checks that bounded layout generation stays a
// pure function of (seed, episode): two envs with the same seed draw the
// same start and goal every episode.
func TestTryResetDeterministic(t *testing.T) {
	a := NewEnv(DenseObstacle, 3)
	b := NewEnv(DenseObstacle, 3)
	for ep := 0; ep < 5; ep++ {
		if _, err := a.TryReset(); err != nil {
			t.Fatal(err)
		}
		if _, err := b.TryReset(); err != nil {
			t.Fatal(err)
		}
		if a.Pos() != b.Pos() || a.Goal() != b.Goal() {
			t.Fatalf("episode %d: layouts diverged: %v/%v vs %v/%v", ep, a.Pos(), a.Goal(), b.Pos(), b.Goal())
		}
	}
}
