package airlearning

import (
	"autopilot/internal/policy"
)

// Algorithm-aware success surrogate. The validated-policy database is
// calibrated against the paper's DQN agent; co-searching the training
// algorithm (the AutoSoC direction) needs success rates for the other
// members of the train.Algorithm family without multi-day retraining. The
// adjustment below is a deterministic calibrated delta applied on top of
// the DQN base rate, mirroring how SurrogateDB stands in for Phase-1
// training (DESIGN.md §1):
//
//   - "dqn" (and the legacy empty name) is the identity — the database IS
//     the DQN calibration;
//   - "reinforce" reflects the on-policy trade-off Air Learning reports:
//     Monte-Carlo policy gradients train small policies well (lower bias
//     on short-horizon credit assignment) but degrade with depth as
//     gradient variance grows — better than DQN at 2–3 layers, worse past
//     ~6.
//
// The deltas keep every rate inside the paper's observed band, so Pareto
// structure downstream stays physically plausible.

// KnownAlgorithm reports whether name is a searchable training algorithm.
func KnownAlgorithm(name string) bool {
	switch name {
	case "", AlgorithmDQN, AlgorithmReinforce:
		return true
	}
	return false
}

// Training-algorithm names, matching rl.Algorithm.String (rl imports this
// package, so the names are declared here and pinned by tests there).
const (
	AlgorithmDQN       = "dqn"
	AlgorithmReinforce = "reinforce"
)

// Algorithms lists the searchable training-algorithm names in canonical
// order.
func Algorithms() []string {
	return []string{AlgorithmDQN, AlgorithmReinforce}
}

// AlgorithmSuccess maps a DQN-calibrated base success rate onto the named
// training algorithm for a model. A zero base (untrained/unknown model)
// stays zero, and unknown algorithm names score zero so they can never win
// a search by accident.
func AlgorithmSuccess(alg string, h policy.Hyper, base float64) float64 {
	if base <= 0 {
		return 0
	}
	switch alg {
	case "", AlgorithmDQN:
		return base
	case AlgorithmReinforce:
		rate := base + 0.08 - 0.02*float64(h.Layers-2)
		if rate < 0 {
			rate = 0
		}
		if rate > 0.97 {
			rate = 0.97
		}
		return rate
	}
	return 0
}

// BestHyperFor returns the hyper-parameters with the highest
// algorithm-adjusted success rate for a scenario — the per-algorithm
// analogue of Database.Best. Iteration runs over the ID-sorted record list
// with strictly-greater replacement, so ties break toward the
// lexicographically smallest ID and the result is deterministic however
// the database was populated.
func BestHyperFor(db *Database, s Scenario, alg string) (policy.Hyper, float64, bool) {
	var best policy.Hyper
	bestRate := 0.0
	found := false
	for _, r := range db.All() {
		if r.Scenario != s {
			continue
		}
		rate := AlgorithmSuccess(alg, r.Hyper, r.SuccessRate)
		if !found || rate > bestRate {
			best, bestRate, found = r.Hyper, rate, true
		}
	}
	return best, bestRate, found
}
