package airlearning

import "math"

// Policy selects a discrete action from an observation.
type Policy interface {
	Act(obs Observation) int
}

// PolicyFunc adapts a plain function to the Policy interface.
type PolicyFunc func(Observation) int

// Act calls f.
func (f PolicyFunc) Act(obs Observation) int { return f(obs) }

// BatchPolicy is implemented by policies that can act on many observations
// at once — one batched network forward instead of len(obs) single ones.
// Implementations must be pure (safe for concurrent use from parallel
// rollout workers) and must return exactly the action Act would pick for
// each observation alone, so batched and sequential rollouts are bitwise
// identical.
type BatchPolicy interface {
	ActBatch(obs []Observation) []int
}

// EpisodeResult summarizes one rollout.
type EpisodeResult struct {
	Outcome Outcome
	Steps   int
	Return  float64
}

// RunEpisode rolls the policy out in the environment until termination.
func RunEpisode(env *Env, p Policy) EpisodeResult {
	obs := env.Reset()
	var res EpisodeResult
	for {
		next, reward, done := env.Step(p.Act(obs))
		res.Return += reward
		res.Steps++
		if done {
			res.Outcome = env.OutcomeNow()
			return res
		}
		obs = next
	}
}

// SuccessRate validates a policy over n domain-randomized episodes and
// returns the fraction that reach the goal — the metric Phase 1 stores in
// the Air Learning database.
func SuccessRate(env *Env, p Policy, n int) float64 {
	if n <= 0 {
		return 0
	}
	wins := 0
	for i := 0; i < n; i++ {
		if RunEpisode(env, p).Outcome == Success {
			wins++
		}
	}
	return float64(wins) / float64(n)
}

// SuccessRateCI returns the validated success rate together with its 95%
// Wilson score interval — the uncertainty band a Phase-1 record carries when
// it is validated over a finite number of domain-randomized episodes.
func SuccessRateCI(env *Env, p Policy, n int) (rate, lo, hi float64) {
	if n <= 0 {
		return 0, 0, 0
	}
	rate = SuccessRate(env, p, n)
	const z = 1.96
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (rate + z*z/(2*nf)) / denom
	half := z / denom * math.Sqrt(rate*(1-rate)/nf+z*z/(4*nf*nf))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return rate, lo, hi
}

// ExpertPolicy follows BFS shortest paths; it is an oracle used to validate
// that generated environments are solvable and to upper-bound success rates.
type ExpertPolicy struct {
	Env *Env
}

// Act returns the first move of the current shortest path to the goal, or a
// no-progress fallback when trapped (which ends the episode by collision or
// timeout).
func (e ExpertPolicy) Act(Observation) int {
	path := e.Env.ShortestPath(e.Env.Pos(), e.Env.Goal())
	if len(path) < 2 {
		return 0
	}
	step := Point{path[1].X - path[0].X, path[1].Y - path[0].Y}
	for i, d := range dirs {
		if d == step {
			return i
		}
	}
	return 0
}
