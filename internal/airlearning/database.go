package airlearning

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"autopilot/internal/policy"
)

// Record is one validated policy entry in the Air Learning database
// (paper §III-B): an identifier, the hyper-parameters used for training, and
// the success rate measured during validation.
type Record struct {
	ID          string       `json:"id"`
	Hyper       policy.Hyper `json:"hyper"`
	Scenario    Scenario     `json:"scenario"`
	SuccessRate float64      `json:"success_rate"`
	Params      int64        `json:"params"`
	TrainSteps  int          `json:"train_steps"`
}

// Database stores validated policies; Phase 2 reads success rates from it.
// It is safe for concurrent use.
type Database struct {
	mu      sync.RWMutex
	records map[string]Record
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{records: make(map[string]Record)}
}

// Key builds the canonical record ID for (hyper, scenario).
func Key(h policy.Hyper, s Scenario) string {
	return fmt.Sprintf("%s/%s", s, h)
}

// Put inserts or replaces a record, deriving its ID if empty.
func (d *Database) Put(r Record) {
	if r.ID == "" {
		r.ID = Key(r.Hyper, r.Scenario)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.records[r.ID] = r
}

// Get fetches the record for (hyper, scenario).
func (d *Database) Get(h policy.Hyper, s Scenario) (Record, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	r, ok := d.records[Key(h, s)]
	return r, ok
}

// Has reports whether a record exists for (hyper, scenario) — the check a
// resumed Phase-1 sweep uses to skip already-trained points.
func (d *Database) Has(h policy.Hyper, s Scenario) bool {
	_, ok := d.Get(h, s)
	return ok
}

// Len returns the number of records.
func (d *Database) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.records)
}

// All returns records sorted by ID for deterministic iteration.
func (d *Database) All() []Record {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Record, 0, len(d.records))
	for _, r := range d.records {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Best returns the highest-success record for a scenario, which Phase 3
// filters on before mapping designs to the F-1 model. Iteration runs over
// the ID-sorted record list and replaces the incumbent only on strictly
// higher success, so ties break toward the lexicographically smallest ID —
// the result is stable however concurrently the database was populated.
func (d *Database) Best(s Scenario) (Record, bool) {
	var best Record
	found := false
	for _, r := range d.All() {
		if r.Scenario != s {
			continue
		}
		if !found || r.SuccessRate > best.SuccessRate {
			best, found = r, true
		}
	}
	return best, found
}

// Save writes the database as JSON. It is an alias for Snapshot: every
// on-disk write is atomic.
func (d *Database) Save(path string) error { return d.Snapshot(path) }

// checkpointMagic prefixes every v2 snapshot. JSON payloads (arrays or
// objects) can never start with '#', so the first byte discriminates the
// checksummed v2 format from legacy plain-JSON checkpoints, which Load still
// accepts.
const checkpointMagic = "#autopilot-db v2 crc32="

// CorruptError reports a checkpoint that failed integrity validation —
// truncated JSON, a checksum mismatch from a bit flip, or unparseable
// records. Quarantined holds the path the damaged file was renamed to (empty
// if the rename itself failed).
type CorruptError struct {
	Path        string
	Quarantined string
	Err         error
}

func (e *CorruptError) Error() string {
	if e.Quarantined != "" {
		return fmt.Sprintf("airlearning: corrupt database %s (quarantined to %s): %v", e.Path, e.Quarantined, e.Err)
	}
	return fmt.Sprintf("airlearning: corrupt database %s: %v", e.Path, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// encodeCheckpoint renders records as a v2 checkpoint: a one-line checksum
// header followed by the JSON payload the header's CRC-32 covers.
func encodeCheckpoint(recs []Record) ([]byte, error) {
	payload, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("airlearning: marshal database: %w", err)
	}
	header := fmt.Sprintf("%s%08x\n", checkpointMagic, crc32.ChecksumIEEE(payload))
	return append([]byte(header), payload...), nil
}

// decodeCheckpoint parses either format: v2 (header + payload, checksum
// verified) or legacy plain JSON. The returned error describes the first
// integrity violation found.
func decodeCheckpoint(data []byte) ([]Record, error) {
	if bytes.HasPrefix(data, []byte(checkpointMagic)) {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("truncated checkpoint header")
		}
		sum, err := strconv.ParseUint(string(data[len(checkpointMagic):nl]), 16, 32)
		if err != nil {
			return nil, fmt.Errorf("malformed checkpoint header: %w", err)
		}
		payload := data[nl+1:]
		if got := crc32.ChecksumIEEE(payload); got != uint32(sum) {
			return nil, fmt.Errorf("checksum mismatch: header %08x, payload %08x", uint32(sum), got)
		}
		data = payload
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("parse records: %w", err)
	}
	return recs, nil
}

// Snapshot atomically writes the database as a checksummed v2 checkpoint:
// the records are marshalled under the read lock, prefixed with a CRC-32
// integrity header, written to a temporary file in the destination
// directory, and renamed over path. Concurrent snapshots (and writers
// inserting records mid-snapshot) therefore always leave a complete,
// verifiable checkpoint on disk — the property the Phase-1 training engine
// relies on when it checkpoints after every completed record.
func (d *Database) Snapshot(path string) error {
	data, err := encodeCheckpoint(d.All())
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("airlearning: snapshot database: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("airlearning: snapshot database: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("airlearning: snapshot database: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("airlearning: snapshot database: %w", err)
	}
	return nil
}

// Load reads a database previously written by Save/Snapshot, accepting both
// the checksummed v2 format and legacy plain-JSON checkpoints. A checkpoint
// that fails integrity validation (truncation, bit flip, unparseable
// records) is quarantined — renamed to path+".corrupt" so the damage is
// preserved for inspection but never re-read — and Load returns a
// *CorruptError; callers resume from an empty database.
func Load(path string) (*Database, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("airlearning: read database: %w", err)
	}
	recs, err := decodeCheckpoint(data)
	if err != nil {
		cerr := &CorruptError{Path: path, Err: err}
		quarantine := path + ".corrupt"
		if renameErr := os.Rename(path, quarantine); renameErr == nil {
			cerr.Quarantined = quarantine
		}
		return nil, cerr
	}
	db := NewDatabase()
	for _, r := range recs {
		db.Put(r)
	}
	return db, nil
}
