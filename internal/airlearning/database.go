package airlearning

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"autopilot/internal/policy"
)

// Record is one validated policy entry in the Air Learning database
// (paper §III-B): an identifier, the hyper-parameters used for training, and
// the success rate measured during validation.
type Record struct {
	ID          string       `json:"id"`
	Hyper       policy.Hyper `json:"hyper"`
	Scenario    Scenario     `json:"scenario"`
	SuccessRate float64      `json:"success_rate"`
	Params      int64        `json:"params"`
	TrainSteps  int          `json:"train_steps"`
}

// Database stores validated policies; Phase 2 reads success rates from it.
// It is safe for concurrent use.
type Database struct {
	mu      sync.RWMutex
	records map[string]Record
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{records: make(map[string]Record)}
}

// Key builds the canonical record ID for (hyper, scenario).
func Key(h policy.Hyper, s Scenario) string {
	return fmt.Sprintf("%s/%s", s, h)
}

// Put inserts or replaces a record, deriving its ID if empty.
func (d *Database) Put(r Record) {
	if r.ID == "" {
		r.ID = Key(r.Hyper, r.Scenario)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.records[r.ID] = r
}

// Get fetches the record for (hyper, scenario).
func (d *Database) Get(h policy.Hyper, s Scenario) (Record, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	r, ok := d.records[Key(h, s)]
	return r, ok
}

// Has reports whether a record exists for (hyper, scenario) — the check a
// resumed Phase-1 sweep uses to skip already-trained points.
func (d *Database) Has(h policy.Hyper, s Scenario) bool {
	_, ok := d.Get(h, s)
	return ok
}

// Len returns the number of records.
func (d *Database) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.records)
}

// All returns records sorted by ID for deterministic iteration.
func (d *Database) All() []Record {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Record, 0, len(d.records))
	for _, r := range d.records {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Best returns the highest-success record for a scenario, which Phase 3
// filters on before mapping designs to the F-1 model. Iteration runs over
// the ID-sorted record list and replaces the incumbent only on strictly
// higher success, so ties break toward the lexicographically smallest ID —
// the result is stable however concurrently the database was populated.
func (d *Database) Best(s Scenario) (Record, bool) {
	var best Record
	found := false
	for _, r := range d.All() {
		if r.Scenario != s {
			continue
		}
		if !found || r.SuccessRate > best.SuccessRate {
			best, found = r, true
		}
	}
	return best, found
}

// Save writes the database as JSON. It is an alias for Snapshot: every
// on-disk write is atomic.
func (d *Database) Save(path string) error { return d.Snapshot(path) }

// Snapshot atomically writes the database as JSON: the records are
// marshalled under the read lock, written to a temporary file in the
// destination directory, and renamed over path. Concurrent snapshots (and
// writers inserting records mid-snapshot) therefore always leave a complete,
// parseable checkpoint on disk — the property the Phase-1 training engine
// relies on when it checkpoints after every completed record.
func (d *Database) Snapshot(path string) error {
	data, err := json.MarshalIndent(d.All(), "", "  ")
	if err != nil {
		return fmt.Errorf("airlearning: marshal database: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("airlearning: snapshot database: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("airlearning: snapshot database: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("airlearning: snapshot database: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("airlearning: snapshot database: %w", err)
	}
	return nil
}

// Load reads a database previously written by Save.
func Load(path string) (*Database, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("airlearning: read database: %w", err)
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("airlearning: parse database: %w", err)
	}
	db := NewDatabase()
	for _, r := range recs {
		db.Put(r)
	}
	return db, nil
}
