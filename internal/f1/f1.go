// Package f1 implements the F-1 cyber-physical visual performance model
// (Krishnan et al., CAL '20 / ISPASS '22) that AutoPilot's Phase 3 uses: the
// relationship between a UAV's action throughput (the sensor→compute→control
// decision rate) and the maximum velocity at which it can fly safely.
//
// Two constraints bound the safe velocity:
//
//   - physics/safety: within the sensing range d the UAV must react (one
//     decision latency 1/f) and brake (v²/2a):  v/f + v²/(2a) ≤ d;
//   - obstacle density: in clutter the UAV needs a fresh decision at least
//     every Δ meters of travel:  v ≤ f·Δ, with Δ shrinking as obstacle
//     density grows.
//
// The curve rises along the f·Δ diagonal and flattens at the physics
// ceiling; the knee point — the minimum throughput that maximizes safe
// velocity — is where they intersect. Heavier compute payloads reduce the
// thrust-to-weight ratio, lowering a and hence the ceiling (Fig. 4).
package f1

import (
	"fmt"
	"math"

	"autopilot/internal/airlearning"
)

// Model is one F-1 curve family for a (sensing range, obstacle spacing)
// deployment context.
type Model struct {
	SenseRangeM      float64 // d: obstacle detection range of the RGB pipeline
	DecisionSpacingM float64 // Δ: travel budget per decision in this clutter
	MinCreepMS       float64 // v₀: crawl speed safe at any decision rate
	PipeStages       int     // sensor→compute→control pipeline depth in frames (0/1 = single stage)
}

// spacingK calibrates Δ = K/sqrt(density) so the nano-UAV knee in the dense
// scenario lands at the paper's ~46 Hz (Fig. 10b/11a); the Spark knee then
// falls at ~27 Hz from its own thrust-to-weight ratio.
const spacingK = 0.05293

// defaultSenseRange is the RGB obstacle-detection range in meters.
const defaultSenseRange = 2.5

// defaultCreep is the minimum crawl speed: even a slow decision pipeline can
// inch between obstacles.
const defaultCreep = 1.5

// ForScenario returns the F-1 model for a deployment scenario, deriving the
// decision spacing from the scenario's obstacle density.
func ForScenario(s airlearning.Scenario) Model {
	return Model{
		SenseRangeM:      defaultSenseRange,
		DecisionSpacingM: spacingK / math.Sqrt(s.ObstacleDensity()),
		MinCreepMS:       defaultCreep,
	}
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.SenseRangeM <= 0 || m.DecisionSpacingM <= 0 || m.MinCreepMS < 0 {
		return fmt.Errorf("f1: implausible model %+v", m)
	}
	return nil
}

// PhysicsVelocity returns the largest v satisfying v/f + v²/(2a) ≤ d: the
// solution of the stopping-distance constraint at decision latency 1/f.
func (m Model) PhysicsVelocity(throughputHz, accelMS2 float64) float64 {
	if throughputHz <= 0 || accelMS2 <= 0 {
		return 0
	}
	stages := m.PipeStages
	if stages < 1 {
		stages = 1
	}
	t := float64(stages) / throughputHz
	return accelMS2 * (-t + math.Sqrt(t*t+2*m.SenseRangeM/accelMS2))
}

// CeilingVelocity returns the physics asymptote sqrt(2·a·d): the best any
// throughput can achieve at this acceleration.
func (m Model) CeilingVelocity(accelMS2 float64) float64 {
	if accelMS2 <= 0 {
		return 0
	}
	return math.Sqrt(2 * accelMS2 * m.SenseRangeM)
}

// SafeVelocity returns V_safe at the given action throughput and maximum
// acceleration: min(f·Δ, physics).
func (m Model) SafeVelocity(throughputHz, accelMS2 float64) float64 {
	if throughputHz <= 0 || accelMS2 <= 0 {
		return 0
	}
	diag := m.MinCreepMS + throughputHz*m.DecisionSpacingM
	phys := m.PhysicsVelocity(throughputHz, accelMS2)
	return math.Min(diag, phys)
}

// KneePoint returns the minimum action throughput that maximizes safe
// velocity: the intersection of the f·Δ diagonal with the physics curve,
// found by bisection.
func (m Model) KneePoint(accelMS2 float64) float64 {
	if accelMS2 <= 0 {
		return 0
	}
	f := func(x float64) float64 {
		return m.MinCreepMS + x*m.DecisionSpacingM - m.PhysicsVelocity(x, accelMS2)
	}
	// The diagonal starts above the physics curve (the creep offset), dips
	// below it once latency stops mattering, and overtakes it again at the
	// knee. Scan geometrically for a point inside the dip, then bisect the
	// upper crossing.
	const hi = 1e5
	lo := -1.0
	for x := 0.5; x < hi; x *= 1.5 {
		if f(x) < 0 {
			lo = x
			break
		}
	}
	if lo < 0 {
		// No dip: clutter is so dense the diagonal binds everywhere. The
		// knee degenerates to the throughput where physics reaches ~99% of
		// its ceiling.
		target := 0.99 * m.CeilingVelocity(accelMS2)
		x := 0.5
		for x < hi && m.PhysicsVelocity(x, accelMS2) < target {
			x *= 1.01
		}
		return x
	}
	a, b := lo, hi
	for i := 0; i < 200; i++ {
		mid := 0.5 * (a + b)
		if f(mid) < 0 {
			a = mid
		} else {
			b = mid
		}
	}
	return 0.5 * (a + b)
}

// Provisioning classifies a design's action throughput against the knee.
type Provisioning int

// Provisioning classes (paper Fig. 4b: designs 'X', 'O', 'A').
const (
	UnderProvisioned Provisioning = iota
	Balanced
	OverProvisioned
)

// String names the provisioning class.
func (p Provisioning) String() string {
	switch p {
	case UnderProvisioned:
		return "under-provisioned"
	case Balanced:
		return "balanced"
	case OverProvisioned:
		return "over-provisioned"
	default:
		return fmt.Sprintf("Provisioning(%d)", int(p))
	}
}

// Classify labels a throughput relative to the knee: within [90%, 140%] of
// the knee counts as balanced.
func (m Model) Classify(throughputHz, accelMS2 float64) Provisioning {
	knee := m.KneePoint(accelMS2)
	switch {
	case throughputHz < 0.9*knee:
		return UnderProvisioned
	case throughputHz > 1.4*knee:
		return OverProvisioned
	default:
		return Balanced
	}
}

// Bound identifies which stage limits the pipeline (paper §III-C: the F-1
// model shows whether a UAV is sensor-, compute- or physics-bound).
type Bound int

// Pipeline bounds.
const (
	ComputeBound Bound = iota
	SensorBound
	PhysicsBound
)

// String names the bound.
func (b Bound) String() string {
	switch b {
	case ComputeBound:
		return "compute-bound"
	case SensorBound:
		return "sensor-bound"
	case PhysicsBound:
		return "physics-bound"
	default:
		return fmt.Sprintf("Bound(%d)", int(b))
	}
}

// EffectiveThroughput returns the pipeline's action throughput — the
// slowest of compute and sensor rates — and which stage binds. When the
// combined rate exceeds the knee, the platform physics is the limiter.
func (m Model) EffectiveThroughput(computeFPS, sensorFPS, accelMS2 float64) (float64, Bound) {
	f := math.Min(computeFPS, sensorFPS)
	knee := m.KneePoint(accelMS2)
	switch {
	case f >= knee:
		return f, PhysicsBound
	case sensorFPS < computeFPS:
		return f, SensorBound
	default:
		return f, ComputeBound
	}
}

// Point is one sample of the F-1 curve.
type Point struct {
	ThroughputHz float64
	VSafeMS      float64
}

// Curve samples the F-1 roofline for plotting, from ~0 to maxHz.
func (m Model) Curve(accelMS2, maxHz float64, n int) []Point {
	if n < 2 {
		n = 2
	}
	pts := make([]Point, n)
	for i := range pts {
		f := maxHz * float64(i+1) / float64(n)
		pts[i] = Point{ThroughputHz: f, VSafeMS: m.SafeVelocity(f, accelMS2)}
	}
	return pts
}
