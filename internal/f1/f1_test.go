package f1

import (
	"math"
	"testing"

	"autopilot/internal/airlearning"
	"autopilot/internal/thermal"
	"autopilot/internal/uav"
)

func denseModel(t *testing.T) Model {
	t.Helper()
	m := ForScenario(airlearning.DenseObstacle)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestForScenarioSpacingOrdering(t *testing.T) {
	low := ForScenario(airlearning.LowObstacle)
	med := ForScenario(airlearning.MediumObstacle)
	dense := ForScenario(airlearning.DenseObstacle)
	if !(dense.DecisionSpacingM < med.DecisionSpacingM && med.DecisionSpacingM < low.DecisionSpacingM) {
		t.Fatalf("spacing must shrink with clutter: %g %g %g",
			low.DecisionSpacingM, med.DecisionSpacingM, dense.DecisionSpacingM)
	}
}

func TestValidate(t *testing.T) {
	if err := (Model{}).Validate(); err == nil {
		t.Fatal("zero model must be invalid")
	}
	if err := (Model{SenseRangeM: 1, DecisionSpacingM: 0.1, MinCreepMS: -1}).Validate(); err == nil {
		t.Fatal("negative creep must be invalid")
	}
}

func TestPhysicsVelocityProperties(t *testing.T) {
	m := denseModel(t)
	// monotone in throughput, approaching the ceiling
	prev := 0.0
	for _, f := range []float64{1, 5, 20, 100, 1000} {
		v := m.PhysicsVelocity(f, 10)
		if v <= prev {
			t.Fatalf("physics velocity not increasing at %g Hz", f)
		}
		prev = v
	}
	ceil := m.CeilingVelocity(10)
	if prev > ceil {
		t.Fatalf("velocity %g exceeded ceiling %g", prev, ceil)
	}
	if v := m.PhysicsVelocity(1e7, 10); math.Abs(v-ceil) > 0.01*ceil {
		t.Fatalf("high-throughput velocity %g should approach ceiling %g", v, ceil)
	}
}

func TestPhysicsVelocitySatisfiesStoppingConstraint(t *testing.T) {
	m := denseModel(t)
	for _, f := range []float64{5, 20, 46, 200} {
		for _, a := range []float64{3, 10, 30} {
			v := m.PhysicsVelocity(f, a)
			slack := v/f + v*v/(2*a) - m.SenseRangeM
			if slack > 1e-9 {
				t.Fatalf("f=%g a=%g: constraint violated by %g", f, a, slack)
			}
			if slack < -1e-6 {
				t.Fatalf("f=%g a=%g: velocity not maximal (slack %g)", f, a, slack)
			}
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	m := denseModel(t)
	if m.PhysicsVelocity(0, 10) != 0 || m.PhysicsVelocity(10, 0) != 0 {
		t.Fatal("degenerate physics velocity must be zero")
	}
	if m.SafeVelocity(0, 10) != 0 || m.SafeVelocity(10, 0) != 0 {
		t.Fatal("degenerate safe velocity must be zero")
	}
	if m.CeilingVelocity(0) != 0 {
		t.Fatal("degenerate ceiling must be zero")
	}
	if m.KneePoint(0) != 0 {
		t.Fatal("degenerate knee must be zero")
	}
}

func TestSafeVelocityDiagonalThenCeiling(t *testing.T) {
	m := denseModel(t)
	a := 29.5 // nano with AP payload
	// far below the knee: diagonal binds
	low := m.SafeVelocity(10, a)
	wantLow := m.MinCreepMS + 10*m.DecisionSpacingM
	if math.Abs(low-wantLow) > 1e-9 {
		t.Fatalf("below knee: v = %g, want diagonal %g", low, wantLow)
	}
	// far above the knee: physics binds
	high := m.SafeVelocity(500, a)
	if math.Abs(high-m.PhysicsVelocity(500, a)) > 1e-9 {
		t.Fatal("above knee: physics must bind")
	}
	if high <= low {
		t.Fatal("velocity must grow from diagonal to ceiling")
	}
}

func nanoAccel() float64 {
	return uav.ZhangNano().MaxAccelMS2(thermal.Default().ComputeWeightGrams(0.7))
}

func sparkAccel() float64 {
	return uav.DJISpark().MaxAccelMS2(thermal.Default().ComputeWeightGrams(0.7))
}

func TestNanoKneeMatchesPaper46Hz(t *testing.T) {
	// paper Fig. 10b / §V-C: the nano knee point is ~46 Hz
	knee := denseModel(t).KneePoint(nanoAccel())
	if knee < 41 || knee > 51 {
		t.Fatalf("nano knee = %.1f Hz, want ~46", knee)
	}
}

func TestSparkKneeMatchesPaper27Hz(t *testing.T) {
	// paper §V-C / Fig. 11: the DJI Spark knee point is ~27 Hz
	knee := denseModel(t).KneePoint(sparkAccel())
	if knee < 23 || knee > 31 {
		t.Fatalf("Spark knee = %.1f Hz, want ~27", knee)
	}
}

func TestAgilityRaisesKnee(t *testing.T) {
	// paper Fig. 11: more agile UAVs need ~2× the compute throughput
	m := denseModel(t)
	nano, spark := m.KneePoint(nanoAccel()), m.KneePoint(sparkAccel())
	if nano <= spark {
		t.Fatalf("nano knee %.1f must exceed Spark knee %.1f", nano, spark)
	}
	if r := nano / spark; r < 1.4 || r > 2.4 {
		t.Fatalf("knee ratio %.2f, paper reports ~1.7 (46/27)", r)
	}
}

func TestPayloadWeightLowersCeiling(t *testing.T) {
	// paper Fig. 4a: heavier compute lowers the roofline
	m := denseModel(t)
	nano := uav.ZhangNano()
	light := m.CeilingVelocity(nano.MaxAccelMS2(24))
	heavy := m.CeilingVelocity(nano.MaxAccelMS2(65))
	if heavy >= light {
		t.Fatal("heavier payload must lower the velocity ceiling")
	}
}

func TestKneeVelocityNearCeiling(t *testing.T) {
	m := denseModel(t)
	a := nanoAccel()
	knee := m.KneePoint(a)
	if v := m.SafeVelocity(knee, a); v < 0.9*m.CeilingVelocity(a) {
		t.Fatalf("velocity at knee %.2f below 90%% of ceiling %.2f", v, m.CeilingVelocity(a))
	}
}

func TestClassify(t *testing.T) {
	m := denseModel(t)
	a := nanoAccel()
	knee := m.KneePoint(a)
	if got := m.Classify(0.4*knee, a); got != UnderProvisioned {
		t.Errorf("0.4·knee = %v", got)
	}
	if got := m.Classify(knee, a); got != Balanced {
		t.Errorf("knee = %v", got)
	}
	if got := m.Classify(3*knee, a); got != OverProvisioned {
		t.Errorf("3·knee = %v", got)
	}
}

func TestProvisioningAndBoundStrings(t *testing.T) {
	for _, p := range []Provisioning{UnderProvisioned, Balanced, OverProvisioned} {
		if p.String() == "" {
			t.Errorf("empty name for %d", int(p))
		}
	}
	for _, b := range []Bound{ComputeBound, SensorBound, PhysicsBound} {
		if b.String() == "" {
			t.Errorf("empty name for %d", int(b))
		}
	}
}

func TestEffectiveThroughput(t *testing.T) {
	m := denseModel(t)
	a := nanoAccel() // knee ≈ 46
	// LP-style design: compute is the limiter
	f, bound := m.EffectiveThroughput(18.4, 60, a)
	if f != 18.4 || bound != ComputeBound {
		t.Fatalf("LP: f=%g bound=%v", f, bound)
	}
	// 30 FPS sensor with fast compute: sensor binds
	f, bound = m.EffectiveThroughput(100, 30, a)
	if f != 30 || bound != SensorBound {
		t.Fatalf("sensor case: f=%g bound=%v", f, bound)
	}
	// both fast: physics binds
	f, bound = m.EffectiveThroughput(205, 60, a)
	if f != 60 || bound != PhysicsBound {
		t.Fatalf("HT case: f=%g bound=%v", f, bound)
	}
}

func TestCurveSamplesMonotoneThroughput(t *testing.T) {
	m := denseModel(t)
	pts := m.Curve(nanoAccel(), 100, 50)
	if len(pts) != 50 {
		t.Fatalf("len = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].ThroughputHz <= pts[i-1].ThroughputHz {
			t.Fatal("throughput samples must increase")
		}
		if pts[i].VSafeMS < pts[i-1].VSafeMS-1e-9 {
			t.Fatal("v_safe must be non-decreasing in throughput")
		}
	}
	if got := m.Curve(10, 50, 1); len(got) != 2 {
		t.Fatalf("minimum curve length = %d, want 2", len(got))
	}
}

func TestKneeDegenerateDenseClutter(t *testing.T) {
	// spacing so tiny the diagonal never dips below physics: the knee
	// falls back to ~99% of ceiling throughput and must stay positive
	m := Model{SenseRangeM: 2.5, DecisionSpacingM: 1e-9, MinCreepMS: 10}
	knee := m.KneePoint(10)
	if knee <= 0 {
		t.Fatalf("degenerate knee = %g", knee)
	}
}

func TestPipelineDepthLowersVelocity(t *testing.T) {
	shallow := denseModel(t)
	deep := shallow
	deep.PipeStages = 3
	a := 20.0
	for _, f := range []float64{10, 30, 60} {
		if deep.PhysicsVelocity(f, a) >= shallow.PhysicsVelocity(f, a) {
			t.Fatalf("3-stage pipeline must be slower at %g Hz", f)
		}
	}
	// ceilings are latency-free and must agree
	if deep.CeilingVelocity(a) != shallow.CeilingVelocity(a) {
		t.Fatal("pipeline depth must not change the physics ceiling")
	}
}

func TestPipelineDepthLowersKneeVelocity(t *testing.T) {
	// a deeper pipeline weakens the physics curve, so the diagonal overtakes
	// it earlier and the achievable velocity at the knee drops
	shallow := denseModel(t)
	deep := shallow
	deep.PipeStages = 4
	a := nanoAccel()
	vShallow := shallow.SafeVelocity(shallow.KneePoint(a), a)
	vDeep := deep.SafeVelocity(deep.KneePoint(a), a)
	if vDeep >= vShallow {
		t.Fatalf("knee velocity with 4-stage pipeline (%.2f) must be below single-stage (%.2f)", vDeep, vShallow)
	}
}
