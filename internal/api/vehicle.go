package api

import (
	"fmt"
	"strings"

	"autopilot/internal/catalog"
	"autopilot/internal/dse"
)

// This file is the contract surface of the component-catalog layer
// (internal/catalog): a versioned, JSON-serializable vehicle block on
// CoDesignRequest. A request without a vehicle block runs the legacy
// fixed-platform pipeline and hashes identically to pre-catalog requests; a
// request with one opens catalog components (airframe, battery, sensor) as
// categorical Phase-2 axes, turning the run into a SWaP-constrained
// full-vehicle co-design.

// VehicleVersion is the current vehicle-block schema version.
const VehicleVersion = 1

// Vehicle axis names accepted by ParseVehicleFlags.
const (
	VehicleAxisAirframe = "airframe"
	VehicleAxisBattery  = "battery"
	VehicleAxisSensor   = "sensor"
)

// VehicleSpec opens catalog components as search axes. Each list names the
// catalog entries the axis may choose from; an empty list leaves that
// component anchored (airframe from the request's UAV class, battery and
// sensor from the airframe's catalog defaults). Note a single-entry list is
// still a meaningful block — pinning a battery changes the objectives to the
// full-vehicle metrics even though nothing is searched on that axis — so
// only a block with every list empty normalizes away.
type VehicleSpec struct {
	Version   int      `json:"version,omitempty"`
	Airframes []string `json:"airframes,omitempty"`
	Batteries []string `json:"batteries,omitempty"`
	Sensors   []string `json:"sensors,omitempty"`
}

// VehicleError is the typed validation error for a malformed vehicle block.
type VehicleError struct {
	Axis   string
	Reason string
}

func (e *VehicleError) Error() string {
	if e.Axis == "" {
		return "api: vehicle: " + e.Reason
	}
	return fmt.Sprintf("api: vehicle axis %q: %s", e.Axis, e.Reason)
}

// normalizedVehicle canonicalizes a vehicle block: entry names are
// lowercased, deduped, and sorted, and a block that opens no axis at all
// normalizes to nil so it hashes identically to a legacy request.
func normalizedVehicle(v *VehicleSpec) *VehicleSpec {
	if v == nil {
		return nil
	}
	n := VehicleSpec{Version: v.Version}
	if n.Version == 0 {
		n.Version = VehicleVersion
	}
	n.Airframes = dedupeStrings(v.Airframes)
	n.Batteries = dedupeStrings(v.Batteries)
	n.Sensors = dedupeStrings(v.Sensors)
	if len(n.Airframes) == 0 && len(n.Batteries) == 0 && len(n.Sensors) == 0 &&
		n.Version == VehicleVersion {
		return nil
	}
	return &n
}

// validateVehicle checks a normalized vehicle block with typed
// *VehicleError values: the version must be current and every named
// component must exist in the catalog.
func validateVehicle(v *VehicleSpec) error {
	if v == nil {
		return nil
	}
	if v.Version != VehicleVersion {
		return &VehicleError{Reason: fmt.Sprintf("unsupported vehicle version %d (want %d)", v.Version, VehicleVersion)}
	}
	for _, a := range v.Airframes {
		if _, err := catalog.AirframeByName(a); err != nil {
			return &VehicleError{Axis: VehicleAxisAirframe,
				Reason: fmt.Sprintf("unknown airframe %q (want %s)", a, strings.Join(catalog.AirframeNames(), "|"))}
		}
	}
	for _, b := range v.Batteries {
		if _, err := catalog.BatteryByName(b); err != nil {
			return &VehicleError{Axis: VehicleAxisBattery,
				Reason: fmt.Sprintf("unknown battery %q (want %s)", b, strings.Join(catalog.BatteryNames(), "|"))}
		}
	}
	for _, s := range v.Sensors {
		if _, err := catalog.SensorByName(s); err != nil {
			return &VehicleError{Axis: VehicleAxisSensor,
				Reason: fmt.Sprintf("unknown sensor %q (want %s)", s, strings.Join(catalog.SensorNames(), "|"))}
		}
	}
	return nil
}

// baseAirframeFor anchors the loadout for a canonical UAV class when the
// airframe axis is not searched: the Table IV airframe of that class.
func baseAirframeFor(uavClass string) string {
	switch uavClass {
	case "mini":
		return "pelican"
	case "micro":
		return "spark"
	default:
		return "nano"
	}
}

// vehicleSpace applies a normalized vehicle block onto a dse search space.
func vehicleSpace(sp *dse.Space, v *VehicleSpec, uavClass string) {
	if v == nil {
		return
	}
	sp.Airframes = v.Airframes
	sp.Batteries = v.Batteries
	sp.Sensors = v.Sensors
	sp.BaseAirframe = baseAirframeFor(uavClass)
}

// openVehicleAxes names the axes a normalized vehicle block searches, in
// canonical order — what run manifests report as vehicle_axes.
func openVehicleAxes(v *VehicleSpec) string {
	if v == nil {
		return ""
	}
	var open []string
	if len(v.Airframes) > 0 {
		open = append(open, VehicleAxisAirframe)
	}
	if len(v.Batteries) > 0 {
		open = append(open, VehicleAxisBattery)
	}
	if len(v.Sensors) > 0 {
		open = append(open, VehicleAxisSensor)
	}
	return strings.Join(open, ",")
}

// ParseVehicleFlags assembles a vehicle block from the comma-separated
// -vehicle-axes flag: each named axis opens with the full catalog for that
// component. Empty returns nil (the legacy fixed-platform pipeline).
func ParseVehicleFlags(axes string) (*VehicleSpec, error) {
	s := strings.TrimSpace(axes)
	if s == "" {
		return nil, nil
	}
	var spec VehicleSpec
	for _, name := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case VehicleAxisAirframe:
			spec.Airframes = catalog.AirframeNames()
		case VehicleAxisBattery:
			spec.Batteries = catalog.BatteryNames()
		case VehicleAxisSensor:
			spec.Sensors = catalog.SensorNames()
		default:
			return nil, &VehicleError{Axis: strings.TrimSpace(name),
				Reason: "unknown vehicle axis (want airframe|battery|sensor)"}
		}
	}
	return &spec, nil
}
