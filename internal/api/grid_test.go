package api

import (
	"errors"
	"testing"
)

// TestGridNormalizeDefaults pins the documented defaults and that
// normalization never invents distribution: a nil grid block stays nil.
func TestGridNormalizeDefaults(t *testing.T) {
	if normalizedGrid(nil) != nil {
		t.Fatal("nil grid block gained defaults")
	}
	req := CoDesignRequest{Grid: &GridSpec{}}
	g := req.Normalized().Grid
	if g == nil {
		t.Fatal("empty grid block normalized away")
	}
	want := GridSpec{Version: 1, Workers: 3, BatchSize: 4, LeaseTTLMS: 10000, HeartbeatMS: 2500, MaxLeases: 2, MaxAttempts: 6}
	if *g != want {
		t.Errorf("defaults = %+v, want %+v", *g, want)
	}
	// Heartbeat default follows an explicit TTL.
	g = (CoDesignRequest{Grid: &GridSpec{LeaseTTLMS: 400}}).Normalized().Grid
	if g.HeartbeatMS != 100 {
		t.Errorf("HeartbeatMS = %d, want LeaseTTLMS/4 = 100", g.HeartbeatMS)
	}
	// Explicit values survive normalization.
	g = (CoDesignRequest{Grid: &GridSpec{Workers: 7, MaxLeases: 5}}).Normalized().Grid
	if g.Workers != 7 || g.MaxLeases != 5 {
		t.Errorf("explicit values rewritten: %+v", *g)
	}
}

// TestGridValidate pins the typed validation errors, field by field.
func TestGridValidate(t *testing.T) {
	ok := func(g GridSpec) CoDesignRequest { return CoDesignRequest{Grid: &g} }
	if err := ok(GridSpec{}).Validate(); err != nil {
		t.Fatalf("default grid block invalid: %v", err)
	}
	if err := (CoDesignRequest{}).Validate(); err != nil {
		t.Fatalf("no grid block invalid: %v", err)
	}
	cases := []struct {
		name  string
		g     GridSpec
		field string
	}{
		{"future version", GridSpec{Version: 2}, "version"},
		{"negative workers", GridSpec{Workers: -1}, "workers"},
		{"negative batch", GridSpec{BatchSize: -4}, "batch_size"},
		{"negative ttl", GridSpec{LeaseTTLMS: -1}, "lease_ttl_ms"},
		{"heartbeat past ttl", GridSpec{LeaseTTLMS: 100, HeartbeatMS: 100}, "heartbeat_ms"},
		{"too many leases", GridSpec{MaxLeases: 9}, "max_leases"},
		{"negative attempts", GridSpec{MaxAttempts: -2}, "max_attempts"},
	}
	for _, tc := range cases {
		err := ok(tc.g).Validate()
		var ge *GridError
		if !errors.As(err, &ge) {
			t.Errorf("%s: err = %v, want *GridError", tc.name, err)
			continue
		}
		if ge.Field != tc.field {
			t.Errorf("%s: field = %q, want %q (%v)", tc.name, ge.Field, tc.field, err)
		}
	}
}

// TestGridHashMasked pins cache identity: the grid block is execution
// topology, so requests differing only in grid (or its absence) must share a
// hash — distributed and single-process runs hit the same cache entry.
func TestGridHashMasked(t *testing.T) {
	base := CoDesignRequest{Scenario: "dense"}
	h := base.Hash()
	variants := []*GridSpec{
		{},
		{Workers: 5},
		{Workers: 11, BatchSize: 1, LeaseTTLMS: 50, HeartbeatMS: 10, MaxLeases: 8, MaxAttempts: 2},
	}
	for _, g := range variants {
		req := base
		req.Grid = g
		if got := req.Hash(); got != h {
			t.Errorf("grid %+v changed the request hash: %s != %s", *g, got, h)
		}
	}
	// The mask must not leak into a hash-visible field.
	other := base
	other.Scenario = "sparse"
	if other.Hash() == h {
		t.Error("scenario change did not change the hash; mask too broad")
	}
}
