// Package api is AutoPilot's typed public contract: the versioned request
// and response structs shared by the cmd/autopilotd job server, the three
// CLIs, and the tests. A CoDesignRequest names a co-design query the way the
// paper's §III-A task specification does — UAV class, deployment scenario,
// search budgets, fault posture — in plain JSON-serializable terms; this
// package owns the single translation from that contract onto the internal
// pipeline types (core.Spec, dse.Request, fault.Policy), so flag-level and
// HTTP-level validation cannot drift.
//
// Requests are content-addressed: Hash returns the sha256 of the normalized
// request with result-invariant fields (worker count) masked out, which is
// the key the server's process-wide result cache and on-disk result store
// use. Two requests with the same hash are guaranteed the same bitwise
// result by the pipeline's determinism contract.
package api

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"autopilot/internal/airlearning"
	"autopilot/internal/core"
	"autopilot/internal/dse"
	"autopilot/internal/fault"
	"autopilot/internal/policy"
	"autopilot/internal/power"
	"autopilot/internal/rl"
	"autopilot/internal/uav"
)

// Version is the current contract version. Requests with an empty version
// are normalized to it; unknown versions are rejected by Validate.
const Version = "v1"

// Constraints bound a co-design run: search budgets, parallelism, and the
// fault posture. The zero value means "server defaults" for every field.
type Constraints struct {
	// CandidatePool is the Phase-2 candidate pool size (default 2048).
	CandidatePool int `json:"candidate_pool,omitempty"`
	// BOIterations is the Phase-2 Bayesian-optimization budget (default 72).
	BOIterations int `json:"bo_iterations,omitempty"`
	// SensorFPS caps the sensor frame rate; 0 selects the platform maximum.
	SensorFPS float64 `json:"sensor_fps,omitempty"`
	// Workers bounds the evaluation/training worker pools; 0 selects all
	// CPUs. Results are bitwise identical at any worker count, so this field
	// is excluded from the request hash.
	Workers int `json:"workers,omitempty"`
	// Retries is the attempt budget per training job / evaluation; values
	// <= 1 mean a single attempt.
	Retries int `json:"retries,omitempty"`
	// JobTimeoutMS bounds each attempt in milliseconds; 0 means unbounded.
	JobTimeoutMS int64 `json:"job_timeout_ms,omitempty"`
	// FailureBudget is the fraction of jobs allowed to fail after retries
	// (0 = fail-fast).
	FailureBudget float64 `json:"failure_budget,omitempty"`
}

// TrainSpec switches Phase 1 from the calibrated surrogate to real RL
// training. Its presence on a request is the switch; the zero value trains
// with the CLI defaults.
type TrainSpec struct {
	// Algorithm is "dqn" (default) or "reinforce".
	Algorithm string `json:"algorithm,omitempty"`
	// Episodes is the RL budget per policy (default 150, the -train CLI
	// default); EvalEpisodes the validation rollouts (default 50).
	Episodes     int `json:"episodes,omitempty"`
	EvalEpisodes int `json:"eval_episodes,omitempty"`
	// Checkpoint makes the training sweep resumable via a database snapshot
	// file. Local paths only — the job server rejects requests that set it.
	Checkpoint string `json:"checkpoint,omitempty"`
}

// CoDesignRequest is one co-design query: run the three-phase pipeline for
// a UAV class and deployment scenario under the given constraints. The zero
// value normalizes to the default nano/dense query.
type CoDesignRequest struct {
	// Version is the contract version; empty means the current Version.
	Version string `json:"version,omitempty"`
	// UAVClass is "mini" (AscTec Pelican), "micro" (DJI Spark), or "nano"
	// (the Zhang et al. nano platform). Aliases "pelican" and "spark" are
	// accepted and normalized.
	UAVClass string `json:"uav,omitempty"`
	// Scenario is the deployment scenario: "low", "medium", or "dense".
	Scenario string `json:"scenario,omitempty"`
	// Seed is the Phase-2 random seed (default 1). Phase-1 training keeps
	// its own engine default so surrogate and trained runs stay comparable
	// with the historical CLI behavior.
	Seed        int64       `json:"seed,omitempty"`
	Constraints Constraints `json:"constraints"`
	// Train, when non-nil, runs Phase 1 with real RL training instead of the
	// surrogate.
	Train *TrainSpec `json:"train,omitempty"`
	// Space, when non-nil, overrides axes of the Phase-2 search space —
	// including the categorical algorithm axis that turns the run into an
	// algorithm–SoC co-search. nil (and any spelling of the default grid)
	// normalizes to the legacy Table II space, preserving legacy hashes.
	Space *SpaceSpec `json:"space,omitempty"`
	// Vehicle, when non-nil, opens catalog components (airframe, battery,
	// sensor) as Phase-2 vehicle axes, turning the run into a
	// SWaP-constrained full-vehicle co-design. nil (and a block that opens
	// no axis) normalizes to the legacy fixed-platform pipeline, preserving
	// legacy hashes.
	Vehicle *VehicleSpec `json:"vehicle,omitempty"`
	// Grid, when non-nil, shards the Phase-2 sweep across worker processes
	// through the internal/grid coordinator. Like Workers it is pure
	// execution topology — results are bitwise identical with or without it —
	// so it is masked out of the request hash.
	Grid *GridSpec `json:"grid,omitempty"`
}

// DefaultRequest returns the normalized default query: nano UAV, dense
// scenario, the default search budgets.
func DefaultRequest() CoDesignRequest {
	return CoDesignRequest{}.Normalized()
}

// ParseUAV resolves a UAV class name (or alias) to its platform.
func ParseUAV(s string) (uav.Platform, error) {
	switch strings.ToLower(s) {
	case "mini", "pelican":
		return uav.AscTecPelican(), nil
	case "micro", "spark":
		return uav.DJISpark(), nil
	case "nano":
		return uav.ZhangNano(), nil
	default:
		return uav.Platform{}, fmt.Errorf("unknown uav %q (want mini|micro|nano)", s)
	}
}

// ParseScenario resolves a deployment-scenario name.
func ParseScenario(s string) (airlearning.Scenario, error) {
	switch strings.ToLower(s) {
	case "low":
		return airlearning.LowObstacle, nil
	case "medium", "med":
		return airlearning.MediumObstacle, nil
	case "dense":
		return airlearning.DenseObstacle, nil
	default:
		return 0, fmt.Errorf("unknown scenario %q (want low|medium|dense)", s)
	}
}

// ParseAlgorithm resolves a Phase-1 training algorithm name.
func ParseAlgorithm(s string) (rl.Algorithm, error) {
	switch strings.ToLower(s) {
	case "", "dqn":
		return rl.AlgDQN, nil
	case "reinforce":
		return rl.AlgReinforce, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want dqn|reinforce)", s)
	}
}

// canonicalUAV maps accepted platform aliases to the canonical class name.
func canonicalUAV(s string) string {
	switch strings.ToLower(s) {
	case "pelican":
		return "mini"
	case "spark":
		return "micro"
	default:
		return strings.ToLower(s)
	}
}

// canonicalScenario maps accepted scenario aliases to the canonical name.
func canonicalScenario(s string) string {
	switch strings.ToLower(s) {
	case "med":
		return "medium"
	default:
		return strings.ToLower(s)
	}
}

// Normalized returns the request with every defaulted field made explicit
// and aliases canonicalized, so equivalent requests normalize to identical
// values (and therefore identical hashes). It does not validate; a request
// with an unknown UAV class normalizes to that same unknown class.
func (r CoDesignRequest) Normalized() CoDesignRequest {
	n := r
	if n.Version == "" {
		n.Version = Version
	}
	if n.UAVClass == "" {
		n.UAVClass = "nano"
	}
	n.UAVClass = canonicalUAV(n.UAVClass)
	if n.Scenario == "" {
		n.Scenario = "dense"
	}
	n.Scenario = canonicalScenario(n.Scenario)
	if n.Seed == 0 {
		n.Seed = 1
	}
	if n.Constraints.CandidatePool == 0 {
		n.Constraints.CandidatePool = 2048
	}
	if n.Constraints.BOIterations == 0 {
		n.Constraints.BOIterations = 72
	}
	if n.Constraints.Retries < 1 {
		n.Constraints.Retries = 1
	}
	if n.Train != nil {
		ts := *n.Train
		if ts.Algorithm == "" {
			ts.Algorithm = "dqn"
		}
		ts.Algorithm = strings.ToLower(ts.Algorithm)
		if ts.Episodes == 0 {
			ts.Episodes = 150
		}
		if ts.EvalEpisodes == 0 {
			ts.EvalEpisodes = rl.DefaultTrainConfig().EvalEpisodes
		}
		n.Train = &ts
	}
	n.Space = normalizedSpace(n.Space)
	n.Vehicle = normalizedVehicle(n.Vehicle)
	n.Grid = normalizedGrid(n.Grid)
	return n
}

// Validate checks the request against the contract — the one validation
// path shared by flag parsing and the HTTP surface.
func (r CoDesignRequest) Validate() error {
	n := r.Normalized()
	if n.Version != Version {
		return fmt.Errorf("api: unsupported version %q (want %q)", n.Version, Version)
	}
	if _, err := ParseUAV(n.UAVClass); err != nil {
		return fmt.Errorf("api: %w", err)
	}
	if _, err := ParseScenario(n.Scenario); err != nil {
		return fmt.Errorf("api: %w", err)
	}
	c := n.Constraints
	if c.CandidatePool < 2 {
		return fmt.Errorf("api: candidate pool %d too small (need >= 2)", c.CandidatePool)
	}
	if c.BOIterations < 1 {
		return fmt.Errorf("api: non-positive BO iteration budget %d", c.BOIterations)
	}
	if c.SensorFPS < 0 {
		return fmt.Errorf("api: negative sensor FPS %g", c.SensorFPS)
	}
	if c.JobTimeoutMS < 0 {
		return fmt.Errorf("api: negative job timeout %dms", c.JobTimeoutMS)
	}
	if c.FailureBudget < 0 || c.FailureBudget > 1 {
		return fmt.Errorf("api: failure budget %g outside [0,1]", c.FailureBudget)
	}
	if n.Train != nil {
		if _, err := ParseAlgorithm(n.Train.Algorithm); err != nil {
			return fmt.Errorf("api: %w", err)
		}
		if n.Train.Episodes < 1 || n.Train.EvalEpisodes < 1 {
			return fmt.Errorf("api: non-positive training budget (episodes %d, eval %d)",
				n.Train.Episodes, n.Train.EvalEpisodes)
		}
	}
	// Duplicate axes are checked on the raw block: normalization may fold
	// one duplicate into its default and hide the conflict.
	if r.Space != nil {
		seen := map[string]bool{}
		for _, a := range r.Space.Axes {
			name := strings.ToLower(strings.TrimSpace(a.Name))
			if seen[name] {
				return &SpaceError{Axis: name, Reason: "duplicate axis"}
			}
			seen[name] = true
		}
	}
	if err := validateSpace(n.Space, n.Train != nil); err != nil {
		return err
	}
	if err := validateVehicle(n.Vehicle); err != nil {
		return err
	}
	if err := validateGrid(n.Grid); err != nil {
		return err
	}
	return nil
}

// Hash returns the request's content address: the hex sha256 of its
// canonical JSON with result-invariant fields masked. Worker count never
// changes results (the pipeline is bitwise deterministic at any
// parallelism), so requests differing only in Workers share a hash — and a
// cache entry.
func (r CoDesignRequest) Hash() string {
	n := r.Normalized()
	n.Constraints.Workers = 0
	// The grid block only describes how the sweep is executed, never what it
	// computes; sharded and single-process runs share a cache entry.
	n.Grid = nil
	data, err := json.Marshal(n)
	if err != nil {
		// Marshaling a plain struct of scalars cannot fail; guard anyway.
		data = []byte(fmt.Sprintf("%+v", n))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// JobTimeout returns the per-attempt timeout as a duration.
func (c Constraints) JobTimeout() time.Duration {
	return time.Duration(c.JobTimeoutMS) * time.Millisecond
}

// RetryPolicy assembles the request's fault.Policy: the default backoff
// schedule clipped to the attempt budget and per-attempt timeout, or the
// zero (single-attempt) policy when neither is set — the exact flag-level
// semantics the CLIs have always had.
func (c Constraints) RetryPolicy() fault.Policy {
	if c.Retries <= 1 && c.JobTimeoutMS <= 0 {
		return fault.Policy{}
	}
	p := fault.DefaultPolicy()
	p.Attempts = c.Retries
	p.Timeout = c.JobTimeout()
	return p
}

// TrainHypers is the representative slice of the template family trained
// when a request asks for real Phase-1 training — small enough to keep
// trained runs tractable, spread enough to exercise the search space. This
// is the single definition the CLI and the server share.
func TrainHypers() []policy.Hyper {
	return []policy.Hyper{
		{Layers: 2, Filters: 32}, {Layers: 4, Filters: 48}, {Layers: 7, Filters: 48},
	}
}

// Spec translates the request into the orchestrator's specification — the
// one conversion cmd/autopilot and cmd/autopilotd share, so an HTTP job is
// bitwise identical to the same CLI run.
func (r CoDesignRequest) Spec() (core.Spec, error) {
	if err := r.Validate(); err != nil {
		return core.Spec{}, err
	}
	n := r.Normalized()
	plat, err := ParseUAV(n.UAVClass)
	if err != nil {
		return core.Spec{}, err
	}
	scen, err := ParseScenario(n.Scenario)
	if err != nil {
		return core.Spec{}, err
	}
	spec := core.DefaultSpec(plat, scen)
	spec.Space, err = r.SearchSpace()
	if err != nil {
		return core.Spec{}, err
	}
	spec.SensorFPS = n.Constraints.SensorFPS
	spec.Phase2.CandidatePool = n.Constraints.CandidatePool
	spec.Phase2.BO.Iterations = n.Constraints.BOIterations
	spec.Phase2.Seed = n.Seed
	spec.Phase2.BO.Seed = n.Seed
	spec.Workers = n.Constraints.Workers
	spec.Retries = n.Constraints.Retries
	spec.JobTimeout = n.Constraints.JobTimeout()
	spec.FailureBudget = n.Constraints.FailureBudget
	if n.Train != nil {
		alg, err := ParseAlgorithm(n.Train.Algorithm)
		if err != nil {
			return core.Spec{}, err
		}
		spec.Phase1Mode = core.Phase1Train
		spec.TrainCfg.Algorithm = alg
		spec.TrainCfg.Episodes = n.Train.Episodes
		spec.TrainCfg.EvalEpisodes = n.Train.EvalEpisodes
		spec.TrainCheckpoint = n.Train.Checkpoint
		spec.TrainHypers = TrainHypers()
	}
	return spec, nil
}

// Phase2Request translates the request into a standalone Phase-2 DSE
// request against db — the conversion cmd/dse runs on.
func (r CoDesignRequest) Phase2Request(db *airlearning.Database) (dse.Request, error) {
	if err := r.Validate(); err != nil {
		return dse.Request{}, err
	}
	n := r.Normalized()
	scen, err := ParseScenario(n.Scenario)
	if err != nil {
		return dse.Request{}, err
	}
	cfg := dse.DefaultConfig()
	cfg.CandidatePool = n.Constraints.CandidatePool
	cfg.BO.Iterations = n.Constraints.BOIterations
	cfg.Seed = n.Seed
	cfg.BO.Seed = n.Seed
	sp, err := r.SearchSpace()
	if err != nil {
		return dse.Request{}, err
	}
	return dse.Request{
		Space:         sp,
		DB:            db,
		Scenario:      scen,
		Power:         power.Default(),
		Config:        cfg,
		Workers:       n.Constraints.Workers,
		Retry:         n.Constraints.RetryPolicy(),
		JobTimeout:    n.Constraints.JobTimeout(),
		FailureBudget: n.Constraints.FailureBudget,
	}, nil
}

// ManifestConfig returns the resolved-configuration section of a run
// manifest for this request — the same keys, in the same meaning, whether
// the run was a CLI invocation or a server job, so the deterministic
// sections of their manifests compare equal.
func (r CoDesignRequest) ManifestConfig() map[string]any {
	n := r.Normalized()
	algorithms := ""
	if n.Space != nil {
		for _, a := range n.Space.Axes {
			if a.Name == AxisAlgorithm {
				algorithms = strings.Join(a.Choices, ",")
			}
		}
	}
	return map[string]any{
		"uav":            n.UAVClass,
		"scenario":       n.Scenario,
		"pool":           n.Constraints.CandidatePool,
		"bo_iters":       n.Constraints.BOIterations,
		"workers":        n.Constraints.Workers,
		"train":          n.Train != nil,
		"retries":        n.Constraints.Retries,
		"failure_budget": n.Constraints.FailureBudget,
		"algorithms":     algorithms,
		"vehicle_axes":   openVehicleAxes(n.Vehicle),
	}
}

// ManifestSeeds returns the named-seed section of a run manifest.
func (r CoDesignRequest) ManifestSeeds() map[string]int64 {
	return map[string]int64{"seed": r.Normalized().Seed}
}
