package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"autopilot/internal/catalog"
	"autopilot/internal/core"
	"autopilot/internal/obs"
)

// TestVehicleBlockNormalization: a vehicle block that opens no axis
// normalizes away entirely, so it hashes identically to a legacy request;
// any non-empty axis — even a single pinned entry — diverges the hash.
func TestVehicleBlockNormalization(t *testing.T) {
	legacy := CoDesignRequest{UAVClass: "nano", Scenario: "dense", Seed: 1}
	empty := legacy
	empty.Vehicle = &VehicleSpec{}
	if empty.Normalized().Vehicle != nil {
		t.Fatal("empty vehicle block did not normalize away")
	}
	if legacy.Hash() != empty.Hash() {
		t.Fatalf("empty vehicle block changed the hash:\n%s\n%s", legacy.Hash(), empty.Hash())
	}
	versioned := legacy
	versioned.Vehicle = &VehicleSpec{Version: VehicleVersion}
	if legacy.Hash() != versioned.Hash() {
		t.Fatal("versioned-but-empty vehicle block changed the hash")
	}

	pinned := legacy
	pinned.Vehicle = &VehicleSpec{Batteries: []string{"lipo-1s-500"}}
	if n := pinned.Normalized().Vehicle; n == nil {
		t.Fatal("single-battery block normalized away — a pinned battery still changes the objectives")
	}
	if legacy.Hash() == pinned.Hash() {
		t.Fatal("pinned-battery request hashes like a legacy request")
	}

	// Normalization dedupes, lowercases, and sorts entry names.
	messy := legacy
	messy.Vehicle = &VehicleSpec{Sensors: []string{"OV9755", " lowlight-vga ", "ov9755"}}
	n := messy.Normalized().Vehicle
	if n == nil || !reflect.DeepEqual(n.Sensors, []string{"lowlight-vga", "ov9755"}) {
		t.Fatalf("messy sensor list normalized to %+v", n)
	}
}

// TestVehicleValidationTyped: unknown entries and bad versions surface as
// typed *VehicleError values naming the offending axis.
func TestVehicleValidationTyped(t *testing.T) {
	req := CoDesignRequest{UAVClass: "nano", Scenario: "dense", Seed: 1,
		Vehicle: &VehicleSpec{Batteries: []string{"fusion-cell"}}}
	err := req.Validate()
	var verr *VehicleError
	if !errors.As(err, &verr) {
		t.Fatalf("untyped vehicle error: %v", err)
	}
	if verr.Axis != VehicleAxisBattery {
		t.Fatalf("error names axis %q, want %q", verr.Axis, VehicleAxisBattery)
	}
	req.Vehicle = &VehicleSpec{Version: 99, Batteries: []string{"lipo-1s-500"}}
	if !errors.As(req.Validate(), &verr) {
		t.Fatal("bad version not rejected with a typed error")
	}
}

// TestParseVehicleFlags: the -vehicle-axes CLI surface — empty means legacy,
// named axes open the full catalog, unknown names fail typed.
func TestParseVehicleFlags(t *testing.T) {
	if v, err := ParseVehicleFlags(""); v != nil || err != nil {
		t.Fatalf("empty flag = (%+v, %v), want (nil, nil)", v, err)
	}
	v, err := ParseVehicleFlags("battery, sensor")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Batteries, catalog.BatteryNames()) {
		t.Fatalf("batteries = %v, want full catalog", v.Batteries)
	}
	if !reflect.DeepEqual(v.Sensors, catalog.SensorNames()) {
		t.Fatalf("sensors = %v, want full catalog", v.Sensors)
	}
	if len(v.Airframes) != 0 {
		t.Fatalf("airframe axis opened unasked: %v", v.Airframes)
	}
	var verr *VehicleError
	if _, err := ParseVehicleFlags("battery,warp-drive"); !errors.As(err, &verr) {
		t.Fatalf("unknown axis error untyped: %v", err)
	}
}

// TestVehicleSearchSpace: the vehicle block lands on the dse space with the
// base airframe anchored by UAV class, and the manifest names the open axes.
func TestVehicleSearchSpace(t *testing.T) {
	req := CoDesignRequest{UAVClass: "micro", Scenario: "dense", Seed: 1,
		Vehicle: &VehicleSpec{Batteries: []string{"lipo-1s-500", "lipo-1s-250"}}}
	sp, err := req.SearchSpace()
	if err != nil {
		t.Fatal(err)
	}
	if !sp.HasVehicleAxes() {
		t.Fatal("space has no vehicle axes")
	}
	if !reflect.DeepEqual(sp.Batteries, []string{"lipo-1s-250", "lipo-1s-500"}) {
		t.Fatalf("batteries = %v", sp.Batteries)
	}
	if sp.BaseAirframe != "spark" {
		t.Fatalf("micro base airframe = %q, want spark", sp.BaseAirframe)
	}
	if got := req.ManifestConfig()["vehicle_axes"]; got != "battery" {
		t.Fatalf("manifest vehicle_axes = %v, want battery", got)
	}
	legacy := CoDesignRequest{UAVClass: "micro", Scenario: "dense", Seed: 1}
	if got := legacy.ManifestConfig()["vehicle_axes"]; got != "" {
		t.Fatalf("legacy manifest vehicle_axes = %v, want empty", got)
	}
}

// vehicleJSON is a full-vehicle co-design request over the wire — the shape
// the CI smoke step posts to autopilotd.
const vehicleJSON = `{
  "uav": "nano",
  "scenario": "dense",
  "seed": 1,
  "constraints": {"candidate_pool": 192, "bo_iterations": 6},
  "vehicle": {
    "version": 1,
    "batteries": ["lipo-1s-250", "lipo-1s-500", "lipo-1s-750"],
    "sensors": ["ov9755", "lowlight-vga", "gs-wvga-120"]
  }
}`

// TestVehicleGoldenCompat is the compatibility contract of the catalog
// layer: a vehicle run is byte-identical at workers=1 and workers=8, its
// hash and result diverge from the legacy request, the front holds at least
// two distinct loadouts, and every skip is a typed record — never a scored
// point. (TestLegacySpaceGolden separately pins that requests without the
// block are bitwise unchanged.)
func TestVehicleGoldenCompat(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline runs")
	}
	var legacy, vehicle CoDesignRequest
	if err := json.Unmarshal([]byte(legacyJSON), &legacy); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(vehicleJSON), &vehicle); err != nil {
		t.Fatal(err)
	}
	if legacy.Hash() == vehicle.Hash() {
		t.Fatal("vehicle request hashes like the legacy request")
	}

	var golden []byte
	var goldenRes Result
	for _, workers := range []int{1, 8} {
		req := vehicle
		req.Constraints.Workers = workers
		spec, err := req.Spec()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		res := NewResult(req, rep, obs.Manifest{
			Tool: "test", Status: "ok",
			Config: req.ManifestConfig(), Seeds: req.ManifestSeeds(),
		})
		res.Manifest.Config["workers"] = 0
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden, goldenRes = data, res
			continue
		}
		if !bytes.Equal(data, golden) {
			t.Fatalf("vehicle run at workers=%d is not bitwise-identical to workers=1", workers)
		}
	}

	loadouts := map[[3]string]bool{}
	for _, p := range goldenRes.Pareto {
		if p.Airframe == "" || p.Battery == "" || p.Sensor == "" {
			t.Fatalf("pareto point %+v missing loadout columns", p)
		}
		loadouts[[3]string{p.Airframe, p.Battery, p.Sensor}] = true
	}
	if len(loadouts) < 2 {
		t.Fatalf("front holds %d distinct loadouts, want >= 2", len(loadouts))
	}
	scored := map[string]bool{}
	for _, p := range goldenRes.Pareto {
		scored[p.Model+"|"+p.Hardware] = true
	}
	for _, sk := range goldenRes.Skips {
		if sk.Reason != "weight" && sk.Reason != "thrust" && sk.Reason != "power" {
			t.Fatalf("skip %s has unknown reason %q", sk.Design, sk.Reason)
		}
	}
	sum := goldenRes.Report.Selected
	if sum.Airframe == "" || sum.Battery == "" || sum.Sensor == "" || sum.TotalWeightG <= 0 {
		t.Fatalf("selected summary missing loadout columns: %+v", sum)
	}

	// The legacy request's summary must not carry the new columns.
	var legacySum core.SelectionSummary
	b, err := json.Marshal(legacySum)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("airframe")) {
		t.Fatal("zero SelectionSummary serializes loadout columns (omitempty broken)")
	}
}
