package api

import (
	"strings"
	"testing"
	"time"

	"autopilot/internal/airlearning"
	"autopilot/internal/core"
	"autopilot/internal/fault"
	"autopilot/internal/rl"
	"autopilot/internal/uav"
)

func TestParseUAV(t *testing.T) {
	cases := []struct {
		in    string
		class uav.Class
	}{
		{"mini", uav.Mini}, {"Pelican", uav.Mini},
		{"micro", uav.Micro}, {"spark", uav.Micro},
		{"NANO", uav.Nano},
	}
	for _, c := range cases {
		p, err := ParseUAV(c.in)
		if err != nil {
			t.Fatalf("ParseUAV(%q): %v", c.in, err)
		}
		if p.Class != c.class {
			t.Errorf("ParseUAV(%q).Class = %v, want %v", c.in, p.Class, c.class)
		}
	}
	if _, err := ParseUAV("blimp"); err == nil {
		t.Error("ParseUAV(blimp) did not fail")
	}
}

func TestParseScenario(t *testing.T) {
	cases := []struct {
		in   string
		want airlearning.Scenario
	}{
		{"low", airlearning.LowObstacle},
		{"medium", airlearning.MediumObstacle}, {"med", airlearning.MediumObstacle},
		{"DENSE", airlearning.DenseObstacle},
	}
	for _, c := range cases {
		s, err := ParseScenario(c.in)
		if err != nil {
			t.Fatalf("ParseScenario(%q): %v", c.in, err)
		}
		if s != c.want {
			t.Errorf("ParseScenario(%q) = %v, want %v", c.in, s, c.want)
		}
	}
	if _, err := ParseScenario("urban"); err == nil {
		t.Error("ParseScenario(urban) did not fail")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for in, want := range map[string]rl.Algorithm{"": rl.AlgDQN, "dqn": rl.AlgDQN, "REINFORCE": rl.AlgReinforce} {
		got, err := ParseAlgorithm(in)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseAlgorithm("ppo"); err == nil {
		t.Error("ParseAlgorithm(ppo) did not fail")
	}
}

func TestNormalizedDefaults(t *testing.T) {
	n := DefaultRequest()
	if n.Version != Version || n.UAVClass != "nano" || n.Scenario != "dense" || n.Seed != 1 {
		t.Fatalf("defaults: %+v", n)
	}
	if n.Constraints.CandidatePool != 2048 || n.Constraints.BOIterations != 72 || n.Constraints.Retries != 1 {
		t.Fatalf("constraint defaults: %+v", n.Constraints)
	}
	if n.Train != nil {
		t.Fatal("default request must not train")
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("default request invalid: %v", err)
	}
}

func TestNormalizedCanonicalizesAliases(t *testing.T) {
	n := CoDesignRequest{UAVClass: "Pelican", Scenario: "MED"}.Normalized()
	if n.UAVClass != "mini" || n.Scenario != "medium" {
		t.Fatalf("aliases not canonicalized: uav=%q scenario=%q", n.UAVClass, n.Scenario)
	}
	ts := CoDesignRequest{Train: &TrainSpec{}}.Normalized().Train
	if ts.Algorithm != "dqn" || ts.Episodes != 150 || ts.EvalEpisodes != rl.DefaultTrainConfig().EvalEpisodes {
		t.Fatalf("train defaults: %+v", ts)
	}
}

func TestHashAliasAndWorkerInvariance(t *testing.T) {
	base := CoDesignRequest{UAVClass: "mini", Scenario: "medium"}
	alias := CoDesignRequest{UAVClass: "pelican", Scenario: "med"}
	if base.Hash() != alias.Hash() {
		t.Error("alias spelling changed the hash")
	}
	w8 := base
	w8.Constraints.Workers = 8
	if base.Hash() != w8.Hash() {
		t.Error("worker count changed the hash; results are worker-invariant")
	}
	seeded := base
	seeded.Seed = 2
	if base.Hash() == seeded.Hash() {
		t.Error("different seeds share a hash")
	}
	trained := base
	trained.Train = &TrainSpec{}
	if base.Hash() == trained.Hash() {
		t.Error("surrogate and trained requests share a hash")
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []struct {
		name string
		req  CoDesignRequest
	}{
		{"version", CoDesignRequest{Version: "v0"}},
		{"uav", CoDesignRequest{UAVClass: "blimp"}},
		{"scenario", CoDesignRequest{Scenario: "urban"}},
		{"pool", CoDesignRequest{Constraints: Constraints{CandidatePool: 1}}},
		{"bo", CoDesignRequest{Constraints: Constraints{BOIterations: -1}}},
		{"fps", CoDesignRequest{Constraints: Constraints{SensorFPS: -30}}},
		{"timeout", CoDesignRequest{Constraints: Constraints{JobTimeoutMS: -5}}},
		{"budget", CoDesignRequest{Constraints: Constraints{FailureBudget: 1.5}}},
		{"algorithm", CoDesignRequest{Train: &TrainSpec{Algorithm: "ppo"}}},
		{"episodes", CoDesignRequest{Train: &TrainSpec{Episodes: -1}}},
	}
	for _, c := range bad {
		if err := c.req.Validate(); err == nil {
			t.Errorf("%s: invalid request accepted", c.name)
		}
	}
}

// TestSpecMatchesCLIWiring pins the contract the server's bitwise-identity
// guarantee rests on: api.Spec() produces exactly the Spec cmd/autopilot
// builds from equivalent flags — including the subtlety that -seed feeds
// Phase 2 only, never the Phase-1 training config.
func TestSpecMatchesCLIWiring(t *testing.T) {
	req := CoDesignRequest{
		UAVClass: "nano", Scenario: "dense", Seed: 7,
		Constraints: Constraints{CandidatePool: 512, BOIterations: 9, SensorFPS: 45, Workers: 3},
	}
	spec, err := req.Spec()
	if err != nil {
		t.Fatal(err)
	}
	want := core.DefaultSpec(uav.ZhangNano(), airlearning.DenseObstacle)
	want.SensorFPS = 45
	want.Phase2.CandidatePool = 512
	want.Phase2.BO.Iterations = 9
	want.Phase2.Seed = 7
	want.Phase2.BO.Seed = 7
	want.Workers = 3
	want.Retries = 1

	if spec.Platform.Name != want.Platform.Name || spec.Scenario != want.Scenario {
		t.Fatalf("platform/scenario: %s/%v", spec.Platform.Name, spec.Scenario)
	}
	if spec.Phase2 != want.Phase2 {
		t.Fatalf("Phase2 = %+v, want %+v", spec.Phase2, want.Phase2)
	}
	if spec.SensorFPS != want.SensorFPS || spec.Workers != want.Workers || spec.Retries != want.Retries {
		t.Fatalf("spec knobs: %+v", spec)
	}
	if spec.TrainCfg != want.TrainCfg {
		t.Fatalf("surrogate run must keep the default TrainCfg; got %+v", spec.TrainCfg)
	}
	if spec.Phase1Mode != want.Phase1Mode || spec.TrainHypers != nil {
		t.Fatal("surrogate run must not enable training")
	}

	// Trained run: episodes override only, hypers from the shared slice.
	treq := req
	treq.Train = &TrainSpec{Episodes: 40}
	tspec, err := treq.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if tspec.Phase1Mode != core.Phase1Train {
		t.Fatal("train spec did not enable Phase1Train")
	}
	wcfg := rl.DefaultTrainConfig()
	wcfg.Episodes = 40
	if tspec.TrainCfg != wcfg {
		t.Fatalf("TrainCfg = %+v, want %+v (seed must stay the engine default)", tspec.TrainCfg, wcfg)
	}
	if len(tspec.TrainHypers) != len(TrainHypers()) {
		t.Fatalf("TrainHypers = %v", tspec.TrainHypers)
	}
}

func TestRetryPolicy(t *testing.T) {
	if p := (Constraints{Retries: 1}).RetryPolicy(); p.Attempts != 0 || p.Timeout != 0 || p.BaseDelay != 0 {
		t.Fatalf("single attempt, no timeout must be the zero policy; got %+v", p)
	}
	p := Constraints{Retries: 3, JobTimeoutMS: 1500}.RetryPolicy()
	if p.Attempts != 3 || p.Timeout != 1500*time.Millisecond {
		t.Fatalf("policy = %+v", p)
	}
	if p.BaseDelay != fault.DefaultPolicy().BaseDelay {
		t.Fatal("retry policy must keep the default backoff schedule")
	}
}

func TestPhase2RequestMatchesCLIWiring(t *testing.T) {
	db := airlearning.NewDatabase()
	airlearning.PopulateSurrogate(db)
	req := CoDesignRequest{Scenario: "med", Seed: 5, Constraints: Constraints{CandidatePool: 256, BOIterations: 6, Workers: 2}}
	p2, err := req.Phase2Request(db)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Scenario != airlearning.MediumObstacle || p2.DB != db || p2.Workers != 2 {
		t.Fatalf("request = %+v", p2)
	}
	if p2.Config.CandidatePool != 256 || p2.Config.BO.Iterations != 6 || p2.Config.Seed != 5 || p2.Config.BO.Seed != 5 {
		t.Fatalf("config = %+v", p2.Config)
	}
}

func TestManifestSections(t *testing.T) {
	req := CoDesignRequest{UAVClass: "spark", Seed: 3, Constraints: Constraints{Workers: 4}}
	cfg := req.ManifestConfig()
	for _, k := range []string{"uav", "scenario", "pool", "bo_iters", "workers", "train", "retries", "failure_budget"} {
		if _, ok := cfg[k]; !ok {
			t.Errorf("manifest config missing key %q", k)
		}
	}
	if cfg["uav"] != "micro" {
		t.Errorf("manifest uav = %v, want canonical micro", cfg["uav"])
	}
	if seeds := req.ManifestSeeds(); seeds["seed"] != 3 {
		t.Errorf("manifest seeds = %v", seeds)
	}
}

func TestValidateErrorMentionsField(t *testing.T) {
	err := CoDesignRequest{UAVClass: "blimp"}.Validate()
	if err == nil || !strings.Contains(err.Error(), "blimp") {
		t.Fatalf("err = %v", err)
	}
}
