package api

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"autopilot/internal/core"
	"autopilot/internal/obs"
)

// legacyJSON is a pre-space-layer wire request: the 4-axis Table II grid
// implied, no space block — exactly what existing clients send.
const legacyJSON = `{
  "uav": "nano",
  "scenario": "dense",
  "seed": 1,
  "constraints": {"candidate_pool": 192, "bo_iterations": 6}
}`

// explicitJSON spells the same search space out axis by axis, including the
// algorithm axis pinned to the legacy DQN calibration.
const explicitJSON = `{
  "uav": "nano",
  "scenario": "dense",
  "seed": 1,
  "constraints": {"candidate_pool": 192, "bo_iterations": 6},
  "space": {
    "version": 1,
    "axes": [
      {"name": "algorithm", "choices": ["dqn"]},
      {"name": "layers", "values": [2, 3, 4, 5, 6, 7, 8, 9, 10]},
      {"name": "filters", "values": [32, 48, 64]},
      {"name": "pe_rows", "values": [8, 16, 32, 64, 128, 256, 512, 1024]},
      {"name": "pe_cols", "values": [8, 16, 32, 64, 128, 256, 512, 1024]},
      {"name": "sram_kb", "values": [32, 64, 128, 256, 512, 1024, 2048, 4096]}
    ]
  }
}`

// TestLegacySpaceGolden is the compatibility contract of the parameter-space
// layer: a legacy request and its explicit-space spelling share a content
// hash and produce byte-identical results, at workers=1 and workers=8. This
// is what lets old and new clients share the server's result cache.
func TestLegacySpaceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline runs")
	}
	var legacy, explicit CoDesignRequest
	if err := json.Unmarshal([]byte(legacyJSON), &legacy); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(explicitJSON), &explicit); err != nil {
		t.Fatal(err)
	}
	if legacy.Hash() != explicit.Hash() {
		t.Fatalf("hash mismatch:\nlegacy   %s\nexplicit %s", legacy.Hash(), explicit.Hash())
	}
	if explicit.Normalized().Space != nil {
		t.Fatal("explicit default space did not normalize away")
	}

	var golden []byte
	for _, workers := range []int{1, 8} {
		for name, req := range map[string]CoDesignRequest{"legacy": legacy, "explicit": explicit} {
			req.Constraints.Workers = workers
			spec, err := req.Spec()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := core.Run(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			res := NewResult(req, rep, obs.Manifest{
				Tool: "test", Status: "ok",
				Config: req.ManifestConfig(), Seeds: req.ManifestSeeds(),
			})
			// The manifest records the worker count as run metadata; it is
			// masked from the hash and not part of the deterministic payload.
			res.Manifest.Config["workers"] = 0
			data, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if golden == nil {
				golden = data
				continue
			}
			if !bytes.Equal(data, golden) {
				t.Fatalf("%s at workers=%d is not bitwise-identical to the golden run:\n got %s\nwant %s",
					name, workers, data, golden)
			}
		}
	}
}
