package api

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"autopilot/internal/dse"
)

// TestSpaceNormalization pins the canonicalization rules: values are deduped
// and sorted, axes ordered canonically, default-equal axes dropped, and an
// explicit spelling of the default grid normalizes to no space block at all.
func TestSpaceNormalization(t *testing.T) {
	r := CoDesignRequest{Space: &SpaceSpec{Axes: []AxisSpec{
		{Name: "Layers", Values: []int{7, 2, 4, 2}},
		{Name: "algorithm", Choices: []string{"REINFORCE", "dqn", "dqn"}},
	}}}
	n := r.Normalized()
	if n.Space == nil || len(n.Space.Axes) != 2 {
		t.Fatalf("normalized space = %+v", n.Space)
	}
	if n.Space.Version != SpaceVersion {
		t.Fatalf("version = %d", n.Space.Version)
	}
	if n.Space.Axes[0].Name != AxisAlgorithm || !reflect.DeepEqual(n.Space.Axes[0].Choices, []string{"dqn", "reinforce"}) {
		t.Fatalf("algorithm axis = %+v", n.Space.Axes[0])
	}
	if n.Space.Axes[1].Name != AxisLayers || !reflect.DeepEqual(n.Space.Axes[1].Values, []int{2, 4, 7}) {
		t.Fatalf("layers axis = %+v", n.Space.Axes[1])
	}

	// Explicit default grid → no space block.
	def := dse.DefaultSpace()
	full := CoDesignRequest{Space: &SpaceSpec{Axes: []AxisSpec{
		{Name: "layers", Values: def.Layers},
		{Name: "filters", Values: def.Filters},
		{Name: "pe_rows", Values: def.PERows},
		{Name: "pe_cols", Values: def.PECols},
		{Name: "sram_kb", Values: def.SRAMKB},
		{Name: "algorithm", Choices: []string{"dqn"}},
	}}}
	if got := full.Normalized().Space; got != nil {
		t.Fatalf("default-grid space block survived normalization: %+v", got)
	}
}

// TestSpaceHashEquivalence pins the contract the cache depends on: a legacy
// request and its explicit-space spelling share a hash, while a genuinely
// different space changes it.
func TestSpaceHashEquivalence(t *testing.T) {
	legacy := CoDesignRequest{UAVClass: "nano", Scenario: "dense"}
	def := dse.DefaultSpace()
	explicit := legacy
	explicit.Space = &SpaceSpec{Axes: []AxisSpec{
		{Name: "layers", Values: def.Layers},
		{Name: "sram_kb", Values: def.SRAMKB},
	}}
	if legacy.Hash() != explicit.Hash() {
		t.Fatal("explicit default space changed the request hash")
	}
	co := legacy
	co.Space = &SpaceSpec{Axes: []AxisSpec{
		{Name: "algorithm", Choices: []string{"dqn", "reinforce"}},
	}}
	if co.Hash() == legacy.Hash() {
		t.Fatal("algorithm co-search did not change the request hash")
	}
	// Dedup/sort means permuted spellings share a hash.
	co2 := legacy
	co2.Space = &SpaceSpec{Axes: []AxisSpec{
		{Name: "algorithm", Choices: []string{"reinforce", "dqn", "reinforce"}},
	}}
	if co.Hash() != co2.Hash() {
		t.Fatal("permuted algorithm spelling changed the hash")
	}
}

// TestSpaceValidation pins the typed rejection of malformed space blocks.
func TestSpaceValidation(t *testing.T) {
	cases := []struct {
		name string
		s    *SpaceSpec
	}{
		{"unknown axis", &SpaceSpec{Axes: []AxisSpec{{Name: "voltage", Values: []int{1}}}}},
		{"unnamed axis", &SpaceSpec{Axes: []AxisSpec{{Values: []int{1}}}}},
		{"duplicate axis", &SpaceSpec{Axes: []AxisSpec{
			{Name: "layers", Values: []int{2}}, {Name: "layers", Values: []int{4}}}}},
		{"empty axis", &SpaceSpec{Axes: []AxisSpec{{Name: "layers"}}}},
		{"choices on numeric axis", &SpaceSpec{Axes: []AxisSpec{{Name: "layers", Choices: []string{"2"}}}}},
		{"values on algorithm axis", &SpaceSpec{Axes: []AxisSpec{{Name: "algorithm", Values: []int{1}}}}},
		{"unknown algorithm", &SpaceSpec{Axes: []AxisSpec{{Name: "algorithm", Choices: []string{"ppo"}}}}},
		{"layers outside family", &SpaceSpec{Axes: []AxisSpec{{Name: "layers", Values: []int{50}}}}},
		{"filters outside family", &SpaceSpec{Axes: []AxisSpec{{Name: "filters", Values: []int{33}}}}},
		{"non-positive hw value", &SpaceSpec{Axes: []AxisSpec{{Name: "pe_rows", Values: []int{0}}}}},
		{"bad version", &SpaceSpec{Version: 9, Axes: []AxisSpec{{Name: "layers", Values: []int{2}}}}},
	}
	for _, c := range cases {
		req := CoDesignRequest{Space: c.s}
		err := req.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		var se *SpaceError
		if !errors.As(err, &se) {
			t.Errorf("%s: error %T is not *SpaceError: %v", c.name, err, err)
		}
	}

	// Duplicate axes must be rejected even when one spelling equals the
	// default grid (normalization would otherwise fold it away).
	dup := CoDesignRequest{Space: &SpaceSpec{Axes: []AxisSpec{
		{Name: "layers", Values: dse.DefaultSpace().Layers},
		{Name: "layers", Values: []int{2, 4}},
	}}}
	var se *SpaceError
	if err := dup.Validate(); !errors.As(err, &se) {
		t.Fatalf("default-equal duplicate axis not rejected: %v", err)
	}
}

// TestSpaceTrainConflict: real Phase-1 training trains one algorithm, so an
// algorithm search axis alongside a train block must be rejected.
func TestSpaceTrainConflict(t *testing.T) {
	req := CoDesignRequest{
		Train: &TrainSpec{},
		Space: &SpaceSpec{Axes: []AxisSpec{{Name: "algorithm", Choices: []string{"dqn", "reinforce"}}}},
	}
	var se *SpaceError
	if err := req.Validate(); !errors.As(err, &se) {
		t.Fatalf("train + algorithm axis not rejected: %v", err)
	}
	// A train block with the algorithm axis pinned to dqn is the legacy
	// combination and stays valid.
	ok := CoDesignRequest{
		Train: &TrainSpec{},
		Space: &SpaceSpec{Axes: []AxisSpec{{Name: "algorithm", Choices: []string{"dqn"}}}},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("pinned-dqn train request rejected: %v", err)
	}
}

// TestSearchSpaceTranslation pins the wire→dse.Space mapping.
func TestSearchSpaceTranslation(t *testing.T) {
	req := CoDesignRequest{Space: &SpaceSpec{Axes: []AxisSpec{
		{Name: "algorithm", Choices: []string{"reinforce", "dqn"}},
		{Name: "layers", Values: []int{4, 2}},
		{Name: "pe_rows", Values: []int{8, 16}},
	}}}
	sp, err := req.SearchSpace()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp.Algorithms, []string{"dqn", "reinforce"}) {
		t.Fatalf("algorithms = %v", sp.Algorithms)
	}
	if !reflect.DeepEqual(sp.Layers, []int{2, 4}) || !reflect.DeepEqual(sp.PERows, []int{8, 16}) {
		t.Fatalf("layers = %v, pe_rows = %v", sp.Layers, sp.PERows)
	}
	def := dse.DefaultSpace()
	if !reflect.DeepEqual(sp.Filters, def.Filters) || !reflect.DeepEqual(sp.SRAMKB, def.SRAMKB) {
		t.Fatal("unnamed axes lost their Table II defaults")
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}

	// Legacy request → exactly the default space.
	sp, err = CoDesignRequest{}.SearchSpace()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp, def) {
		t.Fatal("legacy request does not search the default space")
	}
}

// TestSpaceJSONRoundTrip: the wire form survives marshal/unmarshal with the
// same normalized meaning — what the job server relies on.
func TestSpaceJSONRoundTrip(t *testing.T) {
	req := CoDesignRequest{Scenario: "dense", Space: &SpaceSpec{Axes: []AxisSpec{
		{Name: "algorithm", Choices: []string{"dqn", "reinforce"}},
		{Name: "layers", Values: []int{2, 4, 7}},
	}}}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back CoDesignRequest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Hash() != req.Hash() {
		t.Fatal("hash changed across JSON round trip")
	}
}

// TestParseSpaceFlags pins the CLI flag → space block assembly.
func TestParseSpaceFlags(t *testing.T) {
	s, err := ParseSpaceFlags("", nil)
	if err != nil || s != nil {
		t.Fatalf("empty flags: %+v, %v", s, err)
	}
	s, err = ParseSpaceFlags("dqn,reinforce", []string{"layers=2,4", "pe_rows=8,16,32"})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Axes) != 3 || s.Axes[0].Name != AxisAlgorithm || len(s.Axes[1].Values) != 2 {
		t.Fatalf("parsed = %+v", s)
	}
	if _, err := ParseSpaceFlags("", []string{"layers"}); err == nil {
		t.Fatal("missing '=' accepted")
	}
	if _, err := ParseSpaceFlags("", []string{"layers=two"}); err == nil {
		t.Fatal("non-numeric value accepted")
	}
}
