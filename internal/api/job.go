package api

import (
	"time"

	"autopilot/internal/core"
	"autopilot/internal/dse"
	"autopilot/internal/obs"
)

// JobState is the lifecycle of a server-side co-design job.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Job is the server's view of one submitted request: identity, lifecycle,
// and — once terminal — the result or error. It is the body of both the
// POST /v1/jobs acknowledgement and the GET /v1/jobs/{id} status response.
type Job struct {
	ID          string          `json:"id"`
	State       JobState        `json:"state"`
	Tenant      string          `json:"tenant,omitempty"`
	RequestHash string          `json:"request_hash"`
	Request     CoDesignRequest `json:"request"`
	// CacheHit marks a job answered from the shared result store without a
	// pipeline run.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Submitted/Started/Finished are wall-clock lifecycle stamps; they are
	// job metadata, not part of the deterministic result.
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	Result    *Result    `json:"result,omitempty"`
}

// ParetoPoint is one Phase-2 Pareto-front design in wire form. The loadout
// columns appear only for full-vehicle co-design runs, so legacy results
// stay byte-identical.
type ParetoPoint struct {
	Model          string  `json:"model"`
	Algorithm      string  `json:"algorithm,omitempty"`
	Hardware       string  `json:"hardware"`
	SuccessRate    float64 `json:"success_rate"`
	FPS            float64 `json:"fps"`
	RuntimeSec     float64 `json:"runtime_sec"`
	SoCPowerW      float64 `json:"soc_w"`
	EfficiencyFPSW float64 `json:"fps_per_w"`

	Airframe     string  `json:"airframe,omitempty"`
	Battery      string  `json:"battery,omitempty"`
	Sensor       string  `json:"sensor,omitempty"`
	TotalWeightG float64 `json:"total_weight_g,omitempty"`
	Missions     float64 `json:"missions,omitempty"`
}

// SkipRecord is one infeasible-loadout skip in wire form: a typed answer
// about the design space, never a scored point.
type SkipRecord struct {
	Design   string `json:"design"`
	Airframe string `json:"airframe"`
	Battery  string `json:"battery"`
	Sensor   string `json:"sensor"`
	Reason   string `json:"reason"` // weight | thrust | power
	Detail   string `json:"detail,omitempty"`
}

// Result is the deterministic payload of a completed co-design job: the
// pipeline report digest, the Phase-2 Pareto front, and the run manifest.
// Every field is a pure function of the request (hash), so two jobs with
// equal RequestHash carry byte-identical marshaled Results.
type Result struct {
	Version     string             `json:"version"`
	RequestHash string             `json:"request_hash"`
	Report      core.ReportSummary `json:"report"`
	Pareto      []ParetoPoint      `json:"pareto"`
	// Skips lists designs whose loadout failed the catalog feasibility
	// check (full-vehicle runs only; absent on legacy results).
	Skips    []SkipRecord `json:"skips,omitempty"`
	Manifest obs.Manifest `json:"manifest"`
}

// ParetoFront converts a Phase-2 front to wire form.
func ParetoFront(front []dse.Evaluated) []ParetoPoint {
	out := make([]ParetoPoint, 0, len(front))
	for _, e := range front {
		p := ParetoPoint{
			Model:          e.Design.Hyper.String(),
			Algorithm:      e.Design.Algo,
			Hardware:       e.Design.HW.String(),
			SuccessRate:    e.SuccessRate,
			FPS:            e.FPS,
			RuntimeSec:     e.RuntimeSec,
			SoCPowerW:      e.SoCPowerW,
			EfficiencyFPSW: e.EfficiencyFPSW(),
		}
		if v := e.Design.Vehicle; v != (dse.VehicleRef{}) {
			p.Airframe, p.Battery, p.Sensor = v.Airframe, v.Battery, v.Sensor
			p.TotalWeightG = e.Vehicle.TotalWeightG
			p.Missions = e.Vehicle.Missions
		}
		out = append(out, p)
	}
	return out
}

// SkipRecords converts Phase-2 infeasible-loadout skips to wire form.
func SkipRecords(skips []dse.Skip) []SkipRecord {
	if len(skips) == 0 {
		return nil
	}
	out := make([]SkipRecord, 0, len(skips))
	for _, s := range skips {
		out = append(out, SkipRecord{
			Design:   s.Design,
			Airframe: s.Loadout.Airframe,
			Battery:  s.Loadout.Battery,
			Sensor:   s.Loadout.Sensor,
			Reason:   s.Reason,
			Detail:   s.Detail,
		})
	}
	return out
}

// NewResult assembles the wire result for a completed pipeline run. The
// manifest's timing fields are the caller's concern; its deterministic
// sections (Config, Seeds) must come from the same request via
// ManifestConfig/ManifestSeeds for the cross-surface identity guarantee.
func NewResult(req CoDesignRequest, rep *core.Report, man obs.Manifest) Result {
	return Result{
		Version:     Version,
		RequestHash: req.Hash(),
		Report:      rep.Summary(),
		Pareto:      ParetoFront(rep.Phase2.Pareto()),
		Skips:       SkipRecords(rep.Phase2.Skips),
		Manifest:    man,
	}
}
