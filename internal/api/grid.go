package api

import "fmt"

// This file is the contract surface of the distributed-execution layer
// (internal/grid): a versioned, JSON-serializable description of how a
// request's Phase-2 sweep is sharded across worker processes. Like the worker
// count, the grid block is pure execution topology — the pipeline guarantees
// bitwise-identical results at any worker count, lease schedule, or kill
// pattern — so the block is masked out of the request hash and two requests
// differing only in their grid blocks share a cache entry.

// GridVersion is the current grid-description schema version.
const GridVersion = 1

// GridSpec configures distributed sweep execution: how many workers the
// coordinator expects, how jobs are batched into leases, and the lease
// timing that drives fault recovery. The zero value of every field selects
// the documented default.
type GridSpec struct {
	// Version is the schema version; 0 normalizes to GridVersion.
	Version int `json:"version,omitempty"`
	// Workers is the number of worker processes the sweep is sharded across
	// (default 3). It bounds nothing on the coordinator — extra workers are
	// welcome, missing workers just slow the sweep — but CLIs use it to size
	// the fleet they spawn.
	Workers int `json:"workers,omitempty"`
	// BatchSize is the number of jobs granted per lease call (default 4).
	BatchSize int `json:"batch_size,omitempty"`
	// LeaseTTLMS is the lease deadline in milliseconds (default 10000): a
	// worker that neither completes nor heartbeats a job within the TTL loses
	// it, and the coordinator re-issues it with the next attempt seed.
	LeaseTTLMS int64 `json:"lease_ttl_ms,omitempty"`
	// HeartbeatMS is the worker heartbeat period in milliseconds (default
	// LeaseTTLMS/4). Each heartbeat renews every lease the worker holds.
	HeartbeatMS int64 `json:"heartbeat_ms,omitempty"`
	// MaxLeases caps concurrent leases per job (default 2): once the pending
	// queue drains, idle workers steal duplicate leases on the slowest
	// outstanding jobs up to this cap; the first valid delivery wins.
	MaxLeases int `json:"max_leases,omitempty"`
	// MaxAttempts caps lease re-issues per job (default 6) before the
	// coordinator declares the job failed.
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// GridError is the typed validation error for a malformed grid block.
type GridError struct {
	Field  string
	Reason string
}

func (e *GridError) Error() string {
	if e.Field == "" {
		return "api: grid: " + e.Reason
	}
	return fmt.Sprintf("api: grid %s: %s", e.Field, e.Reason)
}

// normalizedGrid fills the documented defaults into a grid block. nil stays
// nil: a request without a grid block runs single-process, and normalization
// never invents distribution.
func normalizedGrid(g *GridSpec) *GridSpec {
	if g == nil {
		return nil
	}
	n := *g
	if n.Version == 0 {
		n.Version = GridVersion
	}
	if n.Workers == 0 {
		n.Workers = 3
	}
	if n.BatchSize == 0 {
		n.BatchSize = 4
	}
	if n.LeaseTTLMS == 0 {
		n.LeaseTTLMS = 10000
	}
	if n.HeartbeatMS == 0 {
		n.HeartbeatMS = n.LeaseTTLMS / 4
	}
	if n.MaxLeases == 0 {
		n.MaxLeases = 2
	}
	if n.MaxAttempts == 0 {
		n.MaxAttempts = 6
	}
	return &n
}

// validateGrid checks a normalized grid block.
func validateGrid(g *GridSpec) error {
	if g == nil {
		return nil
	}
	if g.Version != GridVersion {
		return &GridError{Field: "version", Reason: fmt.Sprintf("unsupported version %d (want %d)", g.Version, GridVersion)}
	}
	if g.Workers < 1 {
		return &GridError{Field: "workers", Reason: fmt.Sprintf("need >= 1, got %d", g.Workers)}
	}
	if g.BatchSize < 1 {
		return &GridError{Field: "batch_size", Reason: fmt.Sprintf("need >= 1, got %d", g.BatchSize)}
	}
	if g.LeaseTTLMS < 1 {
		return &GridError{Field: "lease_ttl_ms", Reason: fmt.Sprintf("need >= 1ms, got %dms", g.LeaseTTLMS)}
	}
	if g.HeartbeatMS < 1 {
		return &GridError{Field: "heartbeat_ms", Reason: fmt.Sprintf("need >= 1ms, got %dms", g.HeartbeatMS)}
	}
	if g.HeartbeatMS >= g.LeaseTTLMS {
		return &GridError{Field: "heartbeat_ms", Reason: fmt.Sprintf(
			"heartbeat %dms must beat the lease TTL %dms or every lease expires", g.HeartbeatMS, g.LeaseTTLMS)}
	}
	if g.MaxLeases < 1 || g.MaxLeases > 8 {
		return &GridError{Field: "max_leases", Reason: fmt.Sprintf("need 1..8, got %d", g.MaxLeases)}
	}
	if g.MaxAttempts < 1 {
		return &GridError{Field: "max_attempts", Reason: fmt.Sprintf("need >= 1, got %d", g.MaxAttempts)}
	}
	return nil
}
