package api

import (
	"fmt"
	"sort"
	"strings"

	"autopilot/internal/airlearning"
	"autopilot/internal/dse"
	"autopilot/internal/policy"
)

// This file is the contract surface of the parameter-space layer
// (internal/space): a versioned, JSON-serializable space description on
// CoDesignRequest. A request without a space block searches the paper's
// Table II grid exactly as before — legacy requests normalize to the
// equivalent axes and hash identically. A request with a space block
// overrides individual axes (including the categorical algorithm axis that
// turns the run into an algorithm–SoC co-search) while every unnamed axis
// keeps its Table II default.

// SpaceVersion is the current space-description schema version.
const SpaceVersion = 1

// Axis names accepted in a request's space block. The three scratchpads
// share one "sram_kb" axis at the contract level, mirroring dse.Space.
const (
	AxisAlgorithm = "algorithm"
	AxisLayers    = "layers"
	AxisFilters   = "filters"
	AxisPERows    = "pe_rows"
	AxisPECols    = "pe_cols"
	AxisSRAMKB    = "sram_kb"
)

// axisRank orders axes canonically for normalization; unknown names sort
// last (and are rejected by Validate).
func axisRank(name string) int {
	switch name {
	case AxisAlgorithm:
		return 0
	case AxisLayers:
		return 1
	case AxisFilters:
		return 2
	case AxisPERows:
		return 3
	case AxisPECols:
		return 4
	case AxisSRAMKB:
		return 5
	}
	return 6
}

// AxisSpec is one axis of an explicit search space: integer values for the
// numeric axes, string choices for the categorical ones. Exactly one of
// Values/Choices must be set, matching the axis kind.
type AxisSpec struct {
	Name    string   `json:"name"`
	Values  []int    `json:"values,omitempty"`
	Choices []string `json:"choices,omitempty"`
}

// SpaceSpec is the versioned space description of a request. Axes override
// the Table II defaults by name; unnamed axes keep their defaults.
type SpaceSpec struct {
	Version int        `json:"version,omitempty"`
	Axes    []AxisSpec `json:"axes,omitempty"`
}

// SpaceError is the typed validation error for a malformed space block.
type SpaceError struct {
	Axis   string
	Reason string
}

func (e *SpaceError) Error() string {
	if e.Axis == "" {
		return "api: space: " + e.Reason
	}
	return fmt.Sprintf("api: space axis %q: %s", e.Axis, e.Reason)
}

// defaultAxisValues returns the Table II default for a numeric axis.
func defaultAxisValues(name string) []int {
	def := dse.DefaultSpace()
	switch name {
	case AxisLayers:
		return def.Layers
	case AxisFilters:
		return def.Filters
	case AxisPERows:
		return def.PERows
	case AxisPECols:
		return def.PECols
	case AxisSRAMKB:
		return def.SRAMKB
	}
	return nil
}

// equalInts reports element-wise equality.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// normalizedSpace canonicalizes a space block: axis values are deduped and
// sorted (ascending for ints, lexicographic for choices), axes are put in
// canonical order, and axes equal to their Table II default — including an
// algorithm axis pinned to the legacy {dqn} — are dropped. A block with no
// surviving axes normalizes to nil, so an explicit spelling of the default
// grid hashes identically to a legacy request without a space block.
func normalizedSpace(s *SpaceSpec) *SpaceSpec {
	if s == nil {
		return nil
	}
	n := SpaceSpec{Version: s.Version}
	if n.Version == 0 {
		n.Version = SpaceVersion
	}
	for _, a := range s.Axes {
		a.Name = strings.ToLower(strings.TrimSpace(a.Name))
		a.Values = dedupeInts(a.Values)
		a.Choices = dedupeStrings(a.Choices)
		if a.Name == AxisAlgorithm && equalStrings(a.Choices, []string{airlearning.AlgorithmDQN}) {
			continue // the legacy fixed algorithm: not a search axis
		}
		if def := defaultAxisValues(a.Name); def != nil && len(a.Choices) == 0 && equalInts(a.Values, def) {
			continue
		}
		n.Axes = append(n.Axes, a)
	}
	sort.SliceStable(n.Axes, func(i, j int) bool {
		return axisRank(n.Axes[i].Name) < axisRank(n.Axes[j].Name)
	})
	if len(n.Axes) == 0 && n.Version == SpaceVersion {
		return nil
	}
	return &n
}

// dedupeInts sorts ascending and drops duplicates.
func dedupeInts(vs []int) []int {
	if len(vs) == 0 {
		return nil
	}
	out := append([]int(nil), vs...)
	sort.Ints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// dedupeStrings lowercases, sorts, and drops duplicates.
func dedupeStrings(vs []string) []string {
	if len(vs) == 0 {
		return nil
	}
	out := make([]string, 0, len(vs))
	for _, v := range vs {
		out = append(out, strings.ToLower(strings.TrimSpace(v)))
	}
	sort.Strings(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// equalStrings reports element-wise equality.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// intSet builds a membership set.
func intSet(vs []int) map[int]bool {
	m := make(map[int]bool, len(vs))
	for _, v := range vs {
		m[v] = true
	}
	return m
}

// validateSpace checks a normalized space block with typed *SpaceError
// values: axis names must be known and unique, every axis must be
// non-empty and of the right kind, model axes must stay within the trained
// template family, and hardware values must be positive.
func validateSpace(s *SpaceSpec, train bool) error {
	if s == nil {
		return nil
	}
	if s.Version != SpaceVersion {
		return &SpaceError{Reason: fmt.Sprintf("unsupported space version %d (want %d)", s.Version, SpaceVersion)}
	}
	seen := map[string]bool{}
	for _, a := range s.Axes {
		if a.Name == "" {
			return &SpaceError{Reason: "unnamed axis"}
		}
		if axisRank(a.Name) > 5 {
			return &SpaceError{Axis: a.Name, Reason: "unknown axis (want algorithm|layers|filters|pe_rows|pe_cols|sram_kb)"}
		}
		if seen[a.Name] {
			return &SpaceError{Axis: a.Name, Reason: "duplicate axis"}
		}
		seen[a.Name] = true
		if a.Name == AxisAlgorithm {
			if len(a.Values) > 0 {
				return &SpaceError{Axis: a.Name, Reason: "categorical axis takes choices, not values"}
			}
			if len(a.Choices) == 0 {
				return &SpaceError{Axis: a.Name, Reason: "empty axis"}
			}
			for _, c := range a.Choices {
				if !airlearning.KnownAlgorithm(c) || c == "" {
					return &SpaceError{Axis: a.Name, Reason: fmt.Sprintf("unknown algorithm %q (want dqn|reinforce)", c)}
				}
			}
			if train && (len(a.Choices) > 1 || a.Choices[0] != airlearning.AlgorithmDQN) {
				return &SpaceError{Axis: a.Name, Reason: "algorithm co-search requires surrogate Phase 1 (drop the train block)"}
			}
			continue
		}
		if len(a.Choices) > 0 {
			return &SpaceError{Axis: a.Name, Reason: "numeric axis takes values, not choices"}
		}
		if len(a.Values) == 0 {
			return &SpaceError{Axis: a.Name, Reason: "empty axis"}
		}
		switch a.Name {
		case AxisLayers:
			ok := intSet(policy.LayerChoices)
			for _, v := range a.Values {
				if !ok[v] {
					return &SpaceError{Axis: a.Name, Reason: fmt.Sprintf("value %d outside the trained template family %v", v, policy.LayerChoices)}
				}
			}
		case AxisFilters:
			ok := intSet(policy.FilterChoices)
			for _, v := range a.Values {
				if !ok[v] {
					return &SpaceError{Axis: a.Name, Reason: fmt.Sprintf("value %d outside the trained template family %v", v, policy.FilterChoices)}
				}
			}
		default:
			for _, v := range a.Values {
				if v <= 0 {
					return &SpaceError{Axis: a.Name, Reason: fmt.Sprintf("non-positive value %d", v)}
				}
			}
		}
	}
	return nil
}

// SearchSpace resolves the request's Phase-2 search space: the Table II
// default grid with every axis the space block names overridden — the one
// translation from the wire space description onto dse.Space.
func (r CoDesignRequest) SearchSpace() (dse.Space, error) {
	if err := r.Validate(); err != nil {
		return dse.Space{}, err
	}
	n := r.Normalized()
	sp := dse.DefaultSpace()
	vehicleSpace(&sp, n.Vehicle, n.UAVClass)
	if n.Space == nil {
		return sp, nil
	}
	for _, a := range n.Space.Axes {
		switch a.Name {
		case AxisAlgorithm:
			if len(a.Choices) > 1 || (len(a.Choices) == 1 && a.Choices[0] != airlearning.AlgorithmDQN) {
				sp.Algorithms = a.Choices
			}
		case AxisLayers:
			sp.Layers = a.Values
		case AxisFilters:
			sp.Filters = a.Values
		case AxisPERows:
			sp.PERows = a.Values
		case AxisPECols:
			sp.PECols = a.Values
		case AxisSRAMKB:
			sp.SRAMKB = a.Values
		}
	}
	return sp, nil
}

// ParseSpaceFlags assembles a space block from CLI flag values: algorithms
// is the comma-separated -algorithms list, axes the repeated -axis
// "name=v1,v2,..." assignments. Both empty returns nil (the legacy grid).
func ParseSpaceFlags(algorithms string, axes []string) (*SpaceSpec, error) {
	var spec SpaceSpec
	if s := strings.TrimSpace(algorithms); s != "" {
		spec.Axes = append(spec.Axes, AxisSpec{Name: AxisAlgorithm, Choices: strings.Split(s, ",")})
	}
	for _, kv := range axes {
		name, vals, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, &SpaceError{Reason: fmt.Sprintf("malformed -axis %q (want name=v1,v2,...)", kv)}
		}
		name = strings.ToLower(strings.TrimSpace(name))
		if name == AxisAlgorithm {
			spec.Axes = append(spec.Axes, AxisSpec{Name: name, Choices: strings.Split(vals, ",")})
			continue
		}
		ax := AxisSpec{Name: name}
		for _, f := range strings.Split(vals, ",") {
			var v int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &v); err != nil {
				return nil, &SpaceError{Axis: name, Reason: fmt.Sprintf("bad value %q", f)}
			}
			ax.Values = append(ax.Values, v)
		}
		spec.Axes = append(spec.Axes, ax)
	}
	if len(spec.Axes) == 0 {
		return nil, nil
	}
	return &spec, nil
}
