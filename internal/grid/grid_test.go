package grid

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"autopilot/internal/airlearning"
	"autopilot/internal/api"
	"autopilot/internal/catalog"
	"autopilot/internal/dse"
	"autopilot/internal/fault"
	"autopilot/internal/obs"
)

// tinyRequest is a sweep small enough to run many times per test binary but
// large enough to exercise the init-batch fan-out and the sequential BO tail.
func tinyRequest() api.CoDesignRequest {
	return api.CoDesignRequest{
		Scenario: "dense",
		Constraints: api.Constraints{
			CandidatePool: 192,
			BOIterations:  6,
			Workers:       2,
		},
	}
}

func surrogateDB() *airlearning.Database {
	db := airlearning.NewDatabase()
	airlearning.PopulateSurrogate(db)
	return db
}

// render hex-dumps every result field the sweep's consumers read, so two
// renders comparing equal means bitwise-identical results.
func render(res *dse.Result) string {
	var b strings.Builder
	for _, e := range res.Evaluated {
		fmt.Fprintf(&b, "%s %x %x %x %x %x\n",
			e.Design, e.SuccessRate, e.FPS, e.RuntimeSec, e.SoCPowerW, e.AccelPowerW)
	}
	fmt.Fprintf(&b, "pareto %v picks %d %d %d\n", res.ParetoIdx, res.HT, res.LP, res.HE)
	for _, s := range res.Skips {
		fmt.Fprintf(&b, "skip %s %s\n", s.Design, s.Reason)
	}
	return b.String()
}

// runLocal executes the sweep single-process.
func runLocal(t *testing.T, req api.CoDesignRequest) *dse.Result {
	t.Helper()
	p2, err := req.Phase2Request(surrogateDB())
	if err != nil {
		t.Fatal(err)
	}
	res, err := dse.Execute(context.Background(), p2)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runGrid executes the sweep through a coordinator with n in-process workers
// customized by mutate (nil keeps defaults). Returns the result and the
// coordinator's metrics registry.
func runGrid(t *testing.T, req api.CoDesignRequest, cfg Config, n int, mutate func(i int, wc *WorkerConfig)) (*dse.Result, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Obs = &obs.Observer{Metrics: reg}
	coord := NewCoordinator(req, cfg)
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wc := WorkerConfig{URL: ts.URL, ID: fmt.Sprintf("w%d", i), DB: surrogateDB(), Poll: 5 * time.Millisecond}
		if mutate != nil {
			mutate(i, &wc)
		}
		wg.Add(1)
		go func(wc WorkerConfig) {
			defer wg.Done()
			if err := Run(ctx, wc); err != nil && ctx.Err() == nil {
				t.Errorf("worker %s: %v", wc.ID, err)
			}
		}(wc)
	}

	p2, err := req.Phase2Request(surrogateDB())
	if err != nil {
		t.Fatal(err)
	}
	p2.Delegate = coord.Evaluate
	res, err := dse.Execute(context.Background(), p2)
	coord.Close()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return res, reg
}

// TestGridBitwiseParity is the package's core guarantee: a sweep sharded
// over the grid — at any worker count — reconverges bitwise to the
// single-process run.
func TestGridBitwiseParity(t *testing.T) {
	req := tinyRequest()
	want := render(runLocal(t, req))
	for _, n := range []int{1, 3} {
		res, _ := runGrid(t, req, Config{}, n, nil)
		if got := render(res); got != want {
			t.Errorf("grid result at %d workers diverged from single-process run:\ngrid:\n%s\nlocal:\n%s", n, got, want)
		}
	}
}

// captureFirstJob drives the coordinator directly (same-package access) as a
// worker that leases the first available job and never delivers it — the
// deterministic stand-in for a worker that crashed (or stalled) mid-job.
func captureFirstJob(t *testing.T, c *Coordinator, worker string) Job {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if lr := c.lease(LeaseRequest{Worker: worker, Max: 1}); len(lr.Jobs) > 0 {
			return lr.Jobs[0]
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no job ever became leasable")
	return Job{}
}

// TestGridReclaimFromDeadWorker pins lease-based fault recovery: a worker
// that leases a job and dies without delivering (no heartbeat) loses it at
// the lease TTL, the coordinator re-issues it with the next attempt, and the
// sweep still converges bitwise to the single-process result.
func TestGridReclaimFromDeadWorker(t *testing.T) {
	req := tinyRequest()
	want := render(runLocal(t, req))
	// MaxLeases 1 disables work-stealing, so recovery must come from lease
	// expiry — the path under test.
	cfg := Config{LeaseTTL: 60 * time.Millisecond, MaxLeases: 1, MaxAttempts: 50}
	reg := obs.NewRegistry()
	cfg.Obs = &obs.Observer{Metrics: reg}
	coord := NewCoordinator(req, cfg)
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	p2, err := req.Phase2Request(surrogateDB())
	if err != nil {
		t.Fatal(err)
	}
	p2.Delegate = coord.Evaluate
	type out struct {
		res *dse.Result
		err error
	}
	resc := make(chan out, 1)
	go func() {
		res, err := dse.Execute(context.Background(), p2)
		resc <- out{res, err}
	}()

	// The dead worker grabs the sweep's first job before any healthy worker
	// exists, then goes silent.
	captureFirstJob(t, coord, "deadbeat")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		Run(ctx, WorkerConfig{URL: ts.URL, ID: "healthy", DB: surrogateDB(), Poll: 5 * time.Millisecond}) //nolint:errcheck
	}()

	o := <-resc
	coord.Close()
	cancel()
	wg.Wait()
	if o.err != nil {
		t.Fatal(o.err)
	}
	if got := render(o.res); got != want {
		t.Errorf("result with a dead worker diverged:\n%s\nwant:\n%s", got, want)
	}
	if v := reg.Counter("grid.lease.expired").Value(); v == 0 {
		t.Error("dead worker's lease never expired; reclaim path untested")
	}
}

// TestGridStealFromStraggler pins work-stealing: a live worker that leases a
// job, keeps heartbeating, but never finishes it is a straggler; past the
// steal threshold an idle worker gets a duplicate lease, its delivery wins,
// and the merged result is still bitwise identical.
func TestGridStealFromStraggler(t *testing.T) {
	req := tinyRequest()
	want := render(runLocal(t, req))
	cfg := Config{
		LeaseTTL:    10 * time.Second, // never expires: only stealing can recover
		StealAfter:  20 * time.Millisecond,
		MaxLeases:   2,
		MaxAttempts: 50,
	}
	reg := obs.NewRegistry()
	cfg.Obs = &obs.Observer{Metrics: reg}
	coord := NewCoordinator(req, cfg)
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	p2, err := req.Phase2Request(surrogateDB())
	if err != nil {
		t.Fatal(err)
	}
	p2.Delegate = coord.Evaluate
	type out struct {
		res *dse.Result
		err error
	}
	resc := make(chan out, 1)
	go func() {
		res, err := dse.Execute(context.Background(), p2)
		resc <- out{res, err}
	}()

	// The straggler grabs the first job and keeps renewing its lease without
	// ever delivering.
	stolen := captureFirstJob(t, coord, "straggler")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			coord.heartbeat(HeartbeatRequest{Worker: "straggler", Jobs: []int64{stolen.ID}})
			time.Sleep(5 * time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		Run(ctx, WorkerConfig{URL: ts.URL, ID: "thief", DB: surrogateDB(), Poll: 5 * time.Millisecond}) //nolint:errcheck
	}()

	o := <-resc
	coord.Close()
	cancel()
	wg.Wait()
	if o.err != nil {
		t.Fatal(o.err)
	}
	if got := render(o.res); got != want {
		t.Errorf("result with a straggler diverged:\n%s\nwant:\n%s", got, want)
	}
	if v := reg.Counter("grid.lease.stolen").Value(); v == 0 {
		t.Error("no lease was ever stolen; straggler path untested")
	}
}

// directGrant submits one design through Evaluate and returns its granted
// job, driving the coordinator synchronously (no HTTP, no workers).
func directGrant(t *testing.T, c *Coordinator, d dse.DesignPoint, worker string) (Job, chan struct{}, *dse.Evaluated, *error) {
	t.Helper()
	var (
		res  dse.Evaluated
		err  error
		done = make(chan struct{})
	)
	go func() {
		defer close(done)
		res, err = c.Evaluate(context.Background(), d)
	}()
	var lr LeaseResponse
	for i := 0; i < 200; i++ {
		lr = c.lease(LeaseRequest{Worker: worker, Max: 1})
		if len(lr.Jobs) > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(lr.Jobs) != 1 {
		t.Fatalf("no lease granted: %+v", lr)
	}
	return lr.Jobs[0], done, &res, &err
}

func testDesign() dse.DesignPoint {
	return dse.DefaultSpace().Sample(1, 1)[0]
}

// TestGridCRCReject pins delivery integrity: a payload whose checksum does
// not match is dropped (the job stays open for re-delivery), and the lease
// survives so the same worker can re-post the correct bytes.
func TestGridCRCReject(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCoordinator(tinyRequest(), Config{Obs: &obs.Observer{Metrics: reg}})
	jb, done, res, errp := directGrant(t, c, testDesign(), "w0")

	payload, _ := json.Marshal(dse.Evaluated{Design: jb.Design, SuccessRate: 0.5, FPS: 30})
	bad := c.result(ResultPost{Worker: "w0", Job: jb.ID, Attempt: jb.Attempt, CRC: Checksum(payload) + 1, Result: payload})
	if bad.Accepted {
		t.Error("corrupt payload was accepted")
	}
	if v := reg.Counter("grid.result.crc_error").Value(); v != 1 {
		t.Errorf("crc_error = %d, want 1", v)
	}
	select {
	case <-done:
		t.Fatal("job completed from a corrupt delivery")
	default:
	}

	good := c.result(ResultPost{Worker: "w0", Job: jb.ID, Attempt: jb.Attempt, CRC: Checksum(payload), Result: payload})
	if !good.Accepted || good.Duplicate {
		t.Errorf("valid re-delivery rejected: %+v", good)
	}
	<-done
	if *errp != nil {
		t.Fatal(*errp)
	}
	if res.FPS != 30 {
		t.Errorf("FPS = %v, want 30", res.FPS)
	}
}

// TestGridDuplicateDelivery pins at-least-once semantics: re-posting a
// completed job's result is acknowledged (so the sender stops retrying) but
// discarded, and counted through the memo-backed delivery cache.
func TestGridDuplicateDelivery(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCoordinator(tinyRequest(), Config{Obs: &obs.Observer{Metrics: reg}})
	jb, done, _, _ := directGrant(t, c, testDesign(), "w0")

	payload, _ := json.Marshal(dse.Evaluated{Design: jb.Design, SuccessRate: 0.5})
	post := ResultPost{Worker: "w0", Job: jb.ID, Attempt: jb.Attempt, CRC: Checksum(payload), Result: payload}
	if r := c.result(post); !r.Accepted || r.Duplicate {
		t.Fatalf("first delivery: %+v", r)
	}
	<-done
	if r := c.result(post); !r.Accepted || !r.Duplicate {
		t.Errorf("second delivery not flagged duplicate: %+v", r)
	}
	if v := reg.Counter("grid.result.duplicate").Value(); v != 1 {
		t.Errorf("duplicate counter = %d, want 1", v)
	}
}

// TestGridStaleRejected pins attempt arbitration: a delivery tagged with an
// attempt rank that was never leased to its sender is rejected outright.
func TestGridStaleRejected(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCoordinator(tinyRequest(), Config{Obs: &obs.Observer{Metrics: reg}})
	jb, done, _, _ := directGrant(t, c, testDesign(), "w0")

	payload, _ := json.Marshal(dse.Evaluated{Design: jb.Design})
	stale := c.result(ResultPost{Worker: "w0", Job: jb.ID, Attempt: jb.Attempt + 7, CRC: Checksum(payload), Result: payload})
	if stale.Accepted || !stale.Stale {
		t.Errorf("never-issued attempt accepted: %+v", stale)
	}
	wrongWorker := c.result(ResultPost{Worker: "impostor", Job: jb.ID, Attempt: jb.Attempt, CRC: Checksum(payload), Result: payload})
	if wrongWorker.Accepted || !wrongWorker.Stale {
		t.Errorf("impostor delivery accepted: %+v", wrongWorker)
	}
	if v := reg.Counter("grid.result.stale").Value(); v != 2 {
		t.Errorf("stale counter = %d, want 2", v)
	}
	c.result(ResultPost{Worker: "w0", Job: jb.ID, Attempt: jb.Attempt, CRC: Checksum(payload), Result: payload})
	<-done
}

// TestGridErrorRoundTrip pins typed-error reconstruction: an infeasibility
// verdict and its retry bookkeeping survive the wire, so the coordinator-side
// sweep classifies the design exactly as a local evaluation would.
func TestGridErrorRoundTrip(t *testing.T) {
	c := NewCoordinator(tinyRequest(), Config{})
	jb, done, _, errp := directGrant(t, c, testDesign(), "w0")

	orig := &fault.RetryError{Attempts: 3, Last: &catalog.InfeasibleError{
		Loadout: "f250/lipo-2s/mono-vga", Reason: catalog.ReasonThrust, Detail: "needs 1.3x, has 1.1x",
	}}
	r := c.result(ResultPost{Worker: "w0", Job: jb.ID, Attempt: jb.Attempt, Error: encodeError(orig)})
	if !r.Accepted {
		t.Fatalf("error delivery rejected: %+v", r)
	}
	<-done
	err := *errp
	if err == nil {
		t.Fatal("reconstructed evaluation returned nil error")
	}
	var ie *catalog.InfeasibleError
	if !errors.As(err, &ie) {
		t.Fatalf("reconstructed error %v is not a *catalog.InfeasibleError", err)
	}
	if ie.Loadout != "f250/lipo-2s/mono-vga" || ie.Reason != catalog.ReasonThrust || ie.Detail != "needs 1.3x, has 1.1x" {
		t.Errorf("verdict fields lost: %+v", ie)
	}
	if got := fault.AttemptsOf(err); got != 3 {
		t.Errorf("AttemptsOf = %d, want 3", got)
	}
}

// TestGridExhaustedAttempts pins the failure backstop: a job nobody ever
// completes fails after MaxAttempts lease issues instead of hanging the
// sweep forever.
func TestGridExhaustedAttempts(t *testing.T) {
	c := NewCoordinator(tinyRequest(), Config{LeaseTTL: 10 * time.Millisecond, MaxAttempts: 2})
	_, done, _, errp := directGrant(t, c, testDesign(), "w0")
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-done:
			if *errp == nil || !strings.Contains((*errp).Error(), "exhausted") {
				t.Fatalf("err = %v, want lease-exhaustion error", *errp)
			}
			return
		case <-deadline:
			t.Fatal("job never failed after exhausting attempts")
		default:
			time.Sleep(5 * time.Millisecond)
			c.lease(LeaseRequest{Worker: "w0", Max: 1}) // drive reclaim + re-grant
		}
	}
}

// TestGridJobSeedPlacementIndependence pins the seed-derivation contract:
// a job's chaos seed depends on the design identity and sweep seed only.
func TestGridJobSeedPlacementIndependence(t *testing.T) {
	d := testDesign()
	if JobSeed(d.String(), 1) != JobSeed(d.String(), 1) {
		t.Error("JobSeed is not a pure function")
	}
	if JobSeed(d.String(), 1) == JobSeed(d.String(), 2) {
		t.Error("JobSeed ignores the sweep seed")
	}
	other := dse.DefaultSpace().Sample(2, 1)[1]
	if JobSeed(d.String(), 1) == JobSeed(other.String(), 1) {
		t.Error("JobSeed ignores the design identity")
	}
}
