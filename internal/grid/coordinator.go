package grid

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"autopilot/internal/api"
	"autopilot/internal/dse"
	"autopilot/internal/fault"
	"autopilot/internal/memo"
	"autopilot/internal/obs"
)

// Config tunes the coordinator's lease machinery. The zero value selects the
// documented defaults (api.GridSpec's normalization).
type Config struct {
	// BatchSize caps jobs granted per lease call (default 4).
	BatchSize int
	// LeaseTTL is how long a worker may hold a job without completing or
	// heartbeating it before the lease expires (default 10s).
	LeaseTTL time.Duration
	// MaxLeases caps concurrent leases per job — the work-stealing width
	// (default 2).
	MaxLeases int
	// StealAfter is how long a job's newest lease must be outstanding before
	// an idle worker may steal a duplicate lease on it (default LeaseTTL/4).
	// Without it, idle workers would re-evaluate every in-flight job the
	// moment the pending queue drains; with it, stealing targets genuine
	// stragglers only.
	StealAfter time.Duration
	// MaxAttempts caps lease issues per job before it is declared failed
	// (default 6).
	MaxAttempts int
	// Obs, when non-nil, receives the lease/steal/reclaim counters and
	// per-job spans.
	Obs *obs.Observer
}

// withDefaults resolves the zero fields.
func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 4
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.MaxLeases <= 0 {
		c.MaxLeases = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 6
	}
	if c.StealAfter <= 0 {
		c.StealAfter = c.LeaseTTL / 4
	}
	return c
}

// ConfigFromSpec translates a normalized api.GridSpec into a Config.
func ConfigFromSpec(g *api.GridSpec) Config {
	if g == nil {
		return Config{}.withDefaults()
	}
	return Config{
		BatchSize:   g.BatchSize,
		LeaseTTL:    time.Duration(g.LeaseTTLMS) * time.Millisecond,
		MaxLeases:   g.MaxLeases,
		MaxAttempts: g.MaxAttempts,
	}.withDefaults()
}

// lease is one outstanding grant of a job attempt to a worker.
type lease struct {
	worker   string
	granted  time.Time
	deadline time.Time
}

// job is one design evaluation owned by the coordinator.
type job struct {
	id     int64
	design dse.DesignPoint
	seed   int64 // identity-derived JobSeed
	next   int   // next attempt index to issue
	queued bool  // on the pending queue
	leases map[int]lease
	issued map[int]string // every attempt ever granted -> worker

	completed bool
	res       dse.Evaluated
	err       error
	done      chan struct{}
	sp        *obs.Span
}

// workerState is the coordinator's per-worker bookkeeping: trace lane,
// telemetry sequencing, and attribution counters for the fleet endpoint and
// the run manifest.
type workerState struct {
	pid      int // merged-trace lane (2, 3, ... — coordinator is 1)
	lastSeen time.Time
	accepted int64
	steals   int64
	reclaims int64
	busy     time.Duration // sum over accepted results of delivery - grant
	spanSeq  int64         // highest ingested span sequence number
}

// Coordinator owns a sweep's job table and serves the grid wire protocol.
// It plugs into the search engine as an evaluation delegate (dse
// Request.Delegate = c.Evaluate): the optimizer loop stays single-process
// and consumes results in its usual order, so sharding is invisible to it.
type Coordinator struct {
	cfg Config
	req api.CoDesignRequest

	mu          sync.Mutex
	jobs        map[int64]*job
	pending     []int64 // FIFO, submission order
	nextID      int64
	closed      bool
	lastReclaim time.Time
	workers     map[string]*workerState

	delivered *memo.Store[int64, uint32]
	fleet     *obs.Fleet

	cJobs, cJobsDone, cJobsFailed, cExhausted *obs.Counter
	cGranted, cExpired, cStolen, cRenewed     *obs.Counter
	cAccepted, cDuplicate, cStale, cCRCError  *obs.Counter
	cMergeSkipped                             *obs.Counter
}

// NewCoordinator builds a coordinator for one sweep of the given (normalized)
// request.
func NewCoordinator(req api.CoDesignRequest, cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	counters := memo.NewCounters()
	if cfg.Obs != nil && cfg.Obs.Metrics != nil {
		counters = memo.RegistryCounters(cfg.Obs.Metrics, "grid.delivered")
	}
	o := cfg.Obs
	c := &Coordinator{
		cfg:       cfg,
		req:       req.Normalized(),
		jobs:      make(map[int64]*job),
		workers:   make(map[string]*workerState),
		delivered: memo.New[int64, uint32](1<<14, counters),
		fleet:     obs.NewFleet(),

		cJobs:       o.Counter("grid.jobs.submitted"),
		cJobsDone:   o.Counter("grid.jobs.completed"),
		cJobsFailed: o.Counter("grid.jobs.failed"),
		cExhausted:  o.Counter("grid.jobs.exhausted"),
		cGranted:    o.Counter("grid.lease.granted"),
		cExpired:    o.Counter("grid.lease.expired"),
		cStolen:     o.Counter("grid.lease.stolen"),
		cRenewed:    o.Counter("grid.lease.renewed"),
		cAccepted:   o.Counter("grid.result.accepted"),
		cDuplicate:  o.Counter("grid.result.duplicate"),
		cStale:      o.Counter("grid.result.stale"),
		cCRCError:   o.Counter("grid.result.crc_error"),

		cMergeSkipped: o.Counter("grid.fleet.merge_skipped"),
	}
	c.tracer().SetProcessName(obs.LocalPID, "coordinator")
	return c
}

// tracer returns the coordinator's tracer; nil when tracing is off (every
// tracer method no-ops on nil).
func (c *Coordinator) tracer() *obs.Tracer {
	if c.cfg.Obs == nil {
		return nil
	}
	return c.cfg.Obs.Trace
}

// telemetryOn reports whether this coordinator ingests telemetry attachments
// — advertised in hello so untelemetered sweeps ship (and allocate) nothing.
func (c *Coordinator) telemetryOn() bool {
	return c.cfg.Obs != nil && (c.cfg.Obs.Trace != nil || c.cfg.Obs.Metrics != nil)
}

// workerStateLocked returns (creating on first sight) the worker's state.
// First sight assigns the worker the next free trace pid lane and names it
// in the merged trace; callers that represent a real contact from the worker
// update lastSeen themselves. Callers hold c.mu.
func (c *Coordinator) workerStateLocked(id string) *workerState {
	ws := c.workers[id]
	if ws == nil {
		ws = &workerState{pid: obs.LocalPID + 1 + len(c.workers)}
		c.workers[id] = ws
		c.tracer().SetProcessName(ws.pid, "worker "+id)
	}
	return ws
}

// ingestLocked merges one RPC's telemetry attachment: spans above the
// worker's acknowledged sequence go to the tracer on the worker's pid lane,
// and the metrics snapshot (latest sequence wins) replaces the worker's
// entry in the fleet registry, counting — not dropping — any instrument
// whose histogram layout disagrees. Returns the new span acknowledgment.
// Callers hold c.mu.
func (c *Coordinator) ingestLocked(ws *workerState, worker string, t *TelemetryAttachment) int64 {
	if t == nil {
		return ws.spanSeq
	}
	var fresh []obs.WireSpan
	for _, s := range t.Spans {
		if s.Seq > ws.spanSeq {
			ws.spanSeq = s.Seq
			fresh = append(fresh, s)
		}
	}
	c.tracer().Ingest(ws.pid, fresh...)
	if t.Metrics != nil && t.MetricsSeq > 0 {
		skipped := c.fleet.Update(worker, t.MetricsSeq, *t.Metrics)
		c.cMergeSkipped.Add(int64(len(skipped)))
	}
	return ws.spanSeq
}

// Evaluate is the sweep's evaluation delegate: it turns one design into a
// leased job and blocks until some worker's delivery completes it (or the
// context is cancelled — the job stays in the table so a late delivery is
// still absorbed rather than erroring on the worker).
func (c *Coordinator) Evaluate(ctx context.Context, d dse.DesignPoint) (dse.Evaluated, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return dse.Evaluated{}, fmt.Errorf("grid: coordinator closed")
	}
	id := c.nextID
	c.nextID++
	j := &job{
		id:     id,
		design: d,
		seed:   JobSeed(d.String(), c.req.Seed),
		queued: true,
		leases: make(map[int]lease),
		issued: make(map[int]string),
		done:   make(chan struct{}),
		sp:     obs.StartJob(ctx, fmt.Sprintf("grid job %d", id), "grid"),
	}
	c.jobs[id] = j
	c.pending = append(c.pending, id)
	c.cJobs.Inc()
	c.mu.Unlock()

	select {
	case <-j.done:
		return j.res, j.err
	case <-ctx.Done():
		return dse.Evaluated{}, fmt.Errorf("grid: evaluation abandoned: %w", ctx.Err())
	}
}

// Close ends the sweep: outstanding jobs fail, and every subsequent lease or
// heartbeat tells its worker to exit.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, j := range c.jobs {
		if !j.completed {
			c.completeLocked(j, dse.Evaluated{}, fmt.Errorf("grid: coordinator closed"))
		}
	}
}

// completeLocked finishes a job exactly once. Callers hold c.mu.
func (c *Coordinator) completeLocked(j *job, res dse.Evaluated, err error) {
	if j.completed {
		return
	}
	j.completed = true
	j.res, j.err = res, err
	j.leases = nil
	if err != nil {
		c.cJobsFailed.Inc()
	} else {
		c.cJobsDone.Inc()
	}
	j.sp.End()
	close(j.done)
}

// reclaimLocked expires stale leases and re-queues (or fails) their jobs.
// Reclamation is lazy — it runs at the head of every lease and heartbeat
// call — so the coordinator needs no background ticker. Callers hold c.mu.
func (c *Coordinator) reclaimLocked(now time.Time) {
	// The scan is O(all jobs); gate it to once per LeaseTTL/4 so hot paths
	// (lease grants, result merges) stay O(1) amortized. A lease is then
	// reclaimed at most TTL/4 late, which the TTL already budgets for.
	if now.Sub(c.lastReclaim) < c.cfg.LeaseTTL/4 {
		return
	}
	c.lastReclaim = now
	for _, j := range c.jobs {
		if j.completed {
			continue
		}
		for a, l := range j.leases {
			if now.After(l.deadline) {
				delete(j.leases, a)
				c.cExpired.Inc()
				ws := c.workerStateLocked(l.worker)
				ws.reclaims++
				// The holder died (or went silent) without shipping the
				// evaluation span, so the merged trace would show nothing on
				// its lane for this attempt. Close the orphan explicitly with
				// a typed annotation — the trace stays well-formed because
				// only completed spans ever enter it.
				c.tracer().Ingest(ws.pid, obs.WireSpan{
					Name: fmt.Sprintf("orphan job %d", j.id), Cat: "grid", TID: j.id,
					StartUnixNano: l.granted.UnixNano(),
					DurNanos:      now.Sub(l.granted).Nanoseconds(),
					Parent:        j.sp.Context(),
					Args: map[string]string{
						"reason":  "lease-expired",
						"worker":  l.worker,
						"attempt": fmt.Sprintf("%d", a),
					},
				})
			}
		}
		if len(j.leases) == 0 && !j.queued {
			if j.next >= c.cfg.MaxAttempts {
				c.cExhausted.Inc()
				c.completeLocked(j, dse.Evaluated{}, fmt.Errorf(
					"grid: job %d (%s) exhausted %d lease attempts", j.id, j.design, j.next))
				continue
			}
			j.queued = true
			c.pending = append(c.pending, j.id)
		}
	}
}

// grantLocked issues the job's next attempt to a worker. Callers hold c.mu.
func (c *Coordinator) grantLocked(j *job, worker string, now time.Time) Job {
	a := j.next
	j.next++
	j.leases[a] = lease{worker: worker, granted: now, deadline: now.Add(c.cfg.LeaseTTL)}
	j.issued[a] = worker
	c.cGranted.Inc()
	return Job{
		ID:      j.id,
		Design:  j.design,
		Seed:    fault.AttemptSeed(j.seed, a),
		Attempt: a,
		LeaseMS: c.cfg.LeaseTTL.Milliseconds(),
		Parent:  j.sp.Context(),
	}
}

// lease grants up to req.Max pending jobs; with the queue empty it steals
// duplicate leases on the slowest outstanding jobs (oldest submission first,
// capped at MaxLeases per job) so stragglers never serialize the tail of the
// sweep.
func (c *Coordinator) lease(req LeaseRequest) LeaseResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked(now)
	ws := c.workerStateLocked(req.Worker)
	ws.lastSeen = now
	ack := c.ingestLocked(ws, req.Worker, req.Telemetry)
	if c.closed {
		return LeaseResponse{Done: true, SpanAck: ack}
	}
	max := req.Max
	if max <= 0 || max > c.cfg.BatchSize {
		max = c.cfg.BatchSize
	}
	var jobs []Job
	for len(jobs) < max && len(c.pending) > 0 {
		id := c.pending[0]
		c.pending = c.pending[1:]
		j := c.jobs[id]
		j.queued = false
		if j.completed {
			continue
		}
		jobs = append(jobs, c.grantLocked(j, req.Worker, now))
	}
	if len(jobs) == 0 {
		for _, j := range c.outstandingLocked() {
			if len(jobs) >= max {
				break
			}
			if len(j.leases) >= c.cfg.MaxLeases || j.next >= c.cfg.MaxAttempts {
				continue
			}
			// Only straggling jobs are worth duplicating: every active lease
			// must have been outstanding past the steal threshold, and never
			// on this worker (re-granting a job to the worker already running
			// it buys nothing).
			eligible := true
			for _, l := range j.leases {
				if l.worker == req.Worker || now.Sub(l.granted) < c.cfg.StealAfter {
					eligible = false
					break
				}
			}
			if !eligible {
				continue
			}
			jobs = append(jobs, c.grantLocked(j, req.Worker, now))
			c.cStolen.Inc()
			ws.steals++
		}
	}
	if len(jobs) == 0 {
		return LeaseResponse{WaitMS: 50, SpanAck: ack}
	}
	return LeaseResponse{Jobs: jobs, SpanAck: ack}
}

// outstandingLocked returns incomplete, unqueued, currently-leased jobs in
// submission order — the steal scan order (oldest grant = slowest job first).
// Callers hold c.mu.
func (c *Coordinator) outstandingLocked() []*job {
	var out []*job
	for _, j := range c.jobs {
		if !j.completed && !j.queued && len(j.leases) > 0 {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].id < out[k].id })
	return out
}

// heartbeat renews every lease the worker still holds and reports the jobs
// it no longer does (reclaimed, stolen-and-finished, or unknown) so the
// worker can stop burning cycles on them.
func (c *Coordinator) heartbeat(req HeartbeatRequest) HeartbeatResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked(now)
	ws := c.workerStateLocked(req.Worker)
	ws.lastSeen = now
	resp := HeartbeatResponse{Done: c.closed, SpanAck: c.ingestLocked(ws, req.Worker, req.Telemetry)}
	for _, id := range req.Jobs {
		j := c.jobs[id]
		if j == nil || j.completed {
			resp.Drop = append(resp.Drop, id)
			continue
		}
		renewed := false
		for a, l := range j.leases {
			if l.worker == req.Worker {
				// Renewal moves the deadline but not the grant time: a slow
				// worker that keeps heartbeating is still a straggler the
				// steal scan may duplicate.
				j.leases[a] = lease{worker: l.worker, granted: l.granted, deadline: now.Add(c.cfg.LeaseTTL)}
				renewed = true
				c.cRenewed.Inc()
			}
		}
		if !renewed {
			resp.Drop = append(resp.Drop, id)
		}
	}
	return resp
}

// result arbitrates one delivery: reject attempts that were never leased to
// the sender (stale re-deliveries), absorb duplicates of an already-completed
// job through the delivery cache, CRC-check the payload, and complete the
// job on first valid delivery — which is what makes duplicate leases (steals)
// and at-least-once posting safe.
func (c *Coordinator) result(p ResultPost) ResultResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	// Telemetry ingests before arbitration: a stale or duplicate delivery is
	// still a live worker shipping real spans and metrics.
	ws := c.workerStateLocked(p.Worker)
	ws.lastSeen = now
	ack := c.ingestLocked(ws, p.Worker, p.Telemetry)
	j := c.jobs[p.Job]
	if j == nil {
		c.cStale.Inc()
		return ResultResponse{Stale: true, Done: c.closed, SpanAck: ack}
	}
	if w, ok := j.issued[p.Attempt]; !ok || w != p.Worker {
		c.cStale.Inc()
		return ResultResponse{Stale: true, Done: c.closed, SpanAck: ack}
	}
	if _, dup := c.delivered.Get(p.Job); dup || j.completed {
		c.cDuplicate.Inc()
		return ResultResponse{Accepted: true, Duplicate: true, Done: c.closed, SpanAck: ack}
	}
	if p.Error != nil {
		c.delivered.Put(p.Job, 0)
		c.cAccepted.Inc()
		c.attributeLocked(ws, j, p.Attempt, now)
		c.completeLocked(j, dse.Evaluated{}, p.Error.reconstruct())
		return ResultResponse{Accepted: true, Done: c.closed, SpanAck: ack}
	}
	if Checksum(p.Result) != p.CRC {
		// A corrupt payload is dropped, not fatal: the lease stays
		// outstanding, so the job is re-delivered or reclaimed like any
		// other lost attempt.
		c.cCRCError.Inc()
		return ResultResponse{Done: c.closed, SpanAck: ack}
	}
	var e dse.Evaluated
	if err := json.Unmarshal(p.Result, &e); err != nil {
		c.cCRCError.Inc()
		return ResultResponse{Done: c.closed, SpanAck: ack}
	}
	c.delivered.Put(p.Job, p.CRC)
	c.cAccepted.Inc()
	c.attributeLocked(ws, j, p.Attempt, now)
	c.completeLocked(j, e, nil)
	return ResultResponse{Accepted: true, Done: c.closed, SpanAck: ack}
}

// attributeLocked credits an accepted delivery to its worker: one job, plus
// coordinator-clock wall time from the winning attempt's lease grant to
// delivery. Callers hold c.mu.
func (c *Coordinator) attributeLocked(ws *workerState, j *job, attempt int, now time.Time) {
	ws.accepted++
	if l, ok := j.leases[attempt]; ok {
		ws.busy += now.Sub(l.granted)
	}
}

// fleetStatus snapshots the coordinator's view of the fleet for the
// /grid/v1/fleet endpoint.
func (c *Coordinator) fleetStatus() FleetResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	resp := FleetResponse{
		Workers:       []FleetWorkerStatus{},
		JobsSubmitted: c.cJobs.Value(),
		JobsCompleted: c.cJobsDone.Value(),
		JobsFailed:    c.cJobsFailed.Value(),
		JobsExhausted: c.cExhausted.Value(),
		Pending:       len(c.pending),
		MergeSkipped:  c.fleet.Skipped(),
	}
	active := map[string]int{}
	oldest := map[string]time.Time{}
	for _, j := range c.jobs {
		if j.completed {
			continue
		}
		for _, l := range j.leases {
			active[l.worker]++
			if t, ok := oldest[l.worker]; !ok || l.granted.Before(t) {
				oldest[l.worker] = l.granted
			}
		}
	}
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ws := c.workers[id]
		st := FleetWorkerStatus{
			ID: id, PID: ws.pid,
			LastSeenMS:   now.Sub(ws.lastSeen).Milliseconds(),
			Jobs:         ws.accepted,
			Steals:       ws.steals,
			Reclaims:     ws.reclaims,
			ActiveLeases: active[id],
			BusySec:      ws.busy.Seconds(),
		}
		if t, ok := oldest[id]; ok {
			st.OldestLeaseMS = now.Sub(t).Milliseconds()
		}
		if snap, _, ok := c.fleet.Worker(id); ok {
			st.Metrics = snap
		}
		resp.Workers = append(resp.Workers, st)
	}
	return resp
}

// Fleet exposes the coordinator's federated worker-metrics registry — what
// a serving process merges into its Prometheus exposition.
func (c *Coordinator) Fleet() *obs.Fleet { return c.fleet }

// Manifest summarizes the sweep's grid topology for the run manifest: totals
// plus the per-worker attribution table, sorted by worker id.
func (c *Coordinator) Manifest() *obs.GridManifest {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := &obs.GridManifest{
		JobsSubmitted: c.cJobs.Value(),
		JobsCompleted: c.cJobsDone.Value(),
		JobsFailed:    c.cJobsFailed.Value(),
		JobsExhausted: c.cExhausted.Value(),
		MergeSkipped:  c.fleet.Skipped(),
	}
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ws := c.workers[id]
		m.Workers = append(m.Workers, obs.GridWorkerManifest{
			ID: id, PID: ws.pid,
			Jobs:     ws.accepted,
			Steals:   ws.steals,
			Reclaims: ws.reclaims,
			BusySec:  ws.busy.Seconds(),
		})
	}
	return m
}

// Handler serves the grid wire protocol.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathHello, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, http.StatusOK, HelloResponse{
			Version: ProtocolVersion, Request: c.req,
			NowUnixNano: time.Now().UnixNano(), Telemetry: c.telemetryOn(),
		})
	})
	mux.HandleFunc(PathFleet, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, http.StatusOK, c.fleetStatus())
	})
	mux.Handle(PathLease, postJSON(func(req LeaseRequest) LeaseResponse { return c.lease(req) }))
	mux.Handle(PathHeartbeat, postJSON(func(req HeartbeatRequest) HeartbeatResponse { return c.heartbeat(req) }))
	mux.Handle(PathResult, postJSON(func(req ResultPost) ResultResponse { return c.result(req) }))
	return mux
}

// postJSON adapts a typed request/response function to an HTTP endpoint.
func postJSON[Req, Resp any](fn func(Req) Resp) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var req Req
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, fn(req))
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone; nothing to do
}
