// Package grid shards a Phase-2 design-space sweep across worker processes
// with lease-based fault recovery. A coordinator owns the job table: every
// uncached design evaluation the search engine requests becomes a job, jobs
// are granted to workers in short-lived leases (renewed by heartbeat,
// reclaimed and re-issued on expiry), stragglers are handled by work-stealing
// duplicate leases, and deliveries are CRC-checked and deduplicated before
// the coordinator hands the result back to the (single-process) optimizer
// loop.
//
// The determinism argument: a design evaluation is a pure function of the
// design point, so where (or how many times) it runs cannot change its value.
// Attempt indices re-key only the fault-injection surfaces — retry seeds via
// fault.AttemptSeed, RPC chaos keys via the identity-derived JobSeed — and
// the network fault classes corrupt delivery, never payloads. The optimizer
// itself runs only on the coordinator, consuming results in exactly the order
// a local run would, so the merged frontier is bitwise identical to the
// single-process run at any worker count, kill schedule, or network-chaos
// seed.
package grid

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"

	"autopilot/internal/api"
	"autopilot/internal/catalog"
	"autopilot/internal/dse"
	"autopilot/internal/fault"
	"autopilot/internal/obs"
)

// ProtocolVersion is the coordinator/worker wire-protocol version; a worker
// refuses to join a coordinator speaking a different one. Version 2 added
// fleet telemetry: span contexts on leases, telemetry attachments with
// sequence-acked span shipping, and the /grid/v1/fleet endpoint.
const ProtocolVersion = 2

// Wire paths under the coordinator's mux.
const (
	PathHello     = "/grid/v1/hello"
	PathLease     = "/grid/v1/lease"
	PathHeartbeat = "/grid/v1/heartbeat"
	PathResult    = "/grid/v1/result"
	PathFleet     = "/grid/v1/fleet"
)

// HelloResponse is the coordinator's self-description: the protocol version
// and the normalized co-design request, from which a worker rebuilds the
// exact evaluator a local run would have used. NowUnixNano is the
// coordinator's wall clock at response time — workers derive a clock offset
// from it so the spans they ship are stamped on the coordinator's clock —
// and Telemetry tells workers whether the coordinator ingests telemetry
// attachments at all (when false, workers buffer and ship nothing, keeping
// the no-op path allocation-free).
type HelloResponse struct {
	Version     int                 `json:"version"`
	Request     api.CoDesignRequest `json:"request"`
	NowUnixNano int64               `json:"now_unix_nano,omitempty"`
	Telemetry   bool                `json:"telemetry,omitempty"`
}

// TelemetryAttachment piggybacks fleet telemetry on the RPCs workers already
// send — no extra requests, so RPC chaos keys and golden output are
// untouched. Spans are the worker's entire unacknowledged buffer (the
// receiver deduplicates by Seq and acknowledges, so at-least-once delivery
// cannot double-ingest); Metrics is a full cumulative registry snapshot
// ordered by MetricsSeq (latest wins, so duplicated or reordered heartbeats
// cannot double-count).
type TelemetryAttachment struct {
	Spans      []obs.WireSpan `json:"spans,omitempty"`
	MetricsSeq int64          `json:"metrics_seq,omitempty"`
	Metrics    *obs.Snapshot  `json:"metrics,omitempty"`
}

// LeaseRequest asks for up to Max jobs on behalf of a worker.
type LeaseRequest struct {
	Worker    string               `json:"worker"`
	Max       int                  `json:"max,omitempty"`
	Telemetry *TelemetryAttachment `json:"telemetry,omitempty"`
}

// Job is one leased design evaluation. Seed is the attempt-keyed chaos seed
// (fault.AttemptSeed over the identity-derived JobSeed), so a re-issued lease
// draws fresh fault decisions while staying placement-independent.
type Job struct {
	ID      int64           `json:"id"`
	Design  dse.DesignPoint `json:"design"`
	Seed    int64           `json:"seed"`
	Attempt int             `json:"attempt"`
	LeaseMS int64           `json:"lease_ms"`
	// Parent is the coordinator-side span this evaluation belongs to, so the
	// worker's spans nest under it in the merged trace. Zero when untraced.
	Parent obs.SpanContext `json:"parent,omitempty"`
}

// LeaseResponse grants jobs, or — when none are available — tells the worker
// how long to back off before asking again. Done means the sweep is over and
// the worker should exit. SpanAck acknowledges every shipped span with
// Seq <= SpanAck so the worker can prune its buffer.
type LeaseResponse struct {
	Jobs    []Job `json:"jobs,omitempty"`
	Done    bool  `json:"done,omitempty"`
	WaitMS  int64 `json:"wait_ms,omitempty"`
	SpanAck int64 `json:"span_ack,omitempty"`
}

// HeartbeatRequest renews every lease the worker holds on the listed jobs.
type HeartbeatRequest struct {
	Worker    string               `json:"worker"`
	Jobs      []int64              `json:"jobs,omitempty"`
	Telemetry *TelemetryAttachment `json:"telemetry,omitempty"`
}

// HeartbeatResponse reports leases the worker no longer holds (reclaimed or
// completed elsewhere — the worker should stop working on them) and whether
// the sweep is over.
type HeartbeatResponse struct {
	Done    bool    `json:"done,omitempty"`
	Drop    []int64 `json:"drop,omitempty"`
	SpanAck int64   `json:"span_ack,omitempty"`
}

// WireInfeasible carries a typed catalog.InfeasibleError verdict across the
// wire, so the coordinator-side sweep records the design as a skip (a
// legitimate search answer), not a failure.
type WireInfeasible struct {
	Loadout string `json:"loadout"`
	Reason  string `json:"reason"`
	Detail  string `json:"detail,omitempty"`
}

// WireError is the wire form of a failed evaluation.
type WireError struct {
	Attempts   int             `json:"attempts,omitempty"`
	Message    string          `json:"message"`
	Infeasible *WireInfeasible `json:"infeasible,omitempty"`
}

// ResultPost delivers one attempt's outcome. Exactly one of Result/Error is
// set; CRC covers the Result payload bytes.
type ResultPost struct {
	Worker    string               `json:"worker"`
	Job       int64                `json:"job"`
	Attempt   int                  `json:"attempt"`
	CRC       uint32               `json:"crc,omitempty"`
	Result    json.RawMessage      `json:"result,omitempty"`
	Error     *WireError           `json:"error,omitempty"`
	Telemetry *TelemetryAttachment `json:"telemetry,omitempty"`
}

// ResultResponse acknowledges a delivery. Duplicate means the job was already
// completed (the delivery was discarded but the worker should not retry);
// Stale means the (job, attempt, worker) triple never held a lease and the
// delivery was rejected.
type ResultResponse struct {
	Accepted  bool  `json:"accepted,omitempty"`
	Duplicate bool  `json:"duplicate,omitempty"`
	Stale     bool  `json:"stale,omitempty"`
	Done      bool  `json:"done,omitempty"`
	SpanAck   int64 `json:"span_ack,omitempty"`
}

// FleetWorkerStatus is one worker's row in the fleet health report.
type FleetWorkerStatus struct {
	ID string `json:"id"`
	// PID is the worker's lane in the merged Chrome trace.
	PID int `json:"pid"`
	// LastSeenMS is milliseconds since the worker's last RPC.
	LastSeenMS int64 `json:"last_seen_ms"`
	// Jobs counts accepted result deliveries; Steals counts duplicate leases
	// this worker took on stragglers; Reclaims counts this worker's leases
	// that expired.
	Jobs     int64 `json:"jobs"`
	Steals   int64 `json:"steals,omitempty"`
	Reclaims int64 `json:"reclaims,omitempty"`
	// ActiveLeases and OldestLeaseMS describe the worker's current holdings.
	ActiveLeases  int   `json:"active_leases,omitempty"`
	OldestLeaseMS int64 `json:"oldest_lease_ms,omitempty"`
	// BusySec is coordinator-clock wall time attributed to accepted results.
	BusySec float64 `json:"busy_sec"`
	// Metrics is the worker's latest federated registry snapshot (includes
	// its estimate-latency histograms).
	Metrics obs.Snapshot `json:"metrics,omitempty"`
}

// FleetResponse is the coordinator's /grid/v1/fleet health report.
type FleetResponse struct {
	Workers       []FleetWorkerStatus `json:"workers"`
	JobsSubmitted int64               `json:"jobs_submitted"`
	JobsCompleted int64               `json:"jobs_completed"`
	JobsFailed    int64               `json:"jobs_failed"`
	JobsExhausted int64               `json:"jobs_exhausted"`
	Pending       int                 `json:"pending"`
	// MergeSkipped counts worker metric instruments dropped from federation
	// for histogram-layout mismatch (see obs.Fleet).
	MergeSkipped int64 `json:"merge_skipped,omitempty"`
}

// JobSeed derives a job's chaos-seed base from its identity (the design's
// canonical rendering) and the sweep seed — never from its submission slot or
// placement — so every fault decision downstream of it is identical whichever
// worker draws the job and wherever the sweep was sharded.
func JobSeed(design string, sweep int64) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", sweep, design)
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Checksum is the delivery checksum over a result payload's bytes.
func Checksum(payload []byte) uint32 {
	return crc32.ChecksumIEEE(payload)
}

// encodeError lowers an evaluation failure to the wire, peeling retry
// bookkeeping into Attempts and a typed infeasibility verdict into
// Infeasible so both survive the round trip.
func encodeError(err error) *WireError {
	we := &WireError{Attempts: fault.AttemptsOf(err), Message: err.Error()}
	var re *fault.RetryError
	if errors.As(err, &re) && re.Last != nil {
		we.Message = re.Last.Error()
	}
	var ie *catalog.InfeasibleError
	if errors.As(err, &ie) {
		we.Infeasible = &WireInfeasible{Loadout: ie.Loadout, Reason: string(ie.Reason), Detail: ie.Detail}
	}
	return we
}

// reconstruct rebuilds the typed error an evaluation would have produced
// locally: infeasibility verdicts come back as *catalog.InfeasibleError (so
// the sweep's skip classification still fires through errors.As) and
// multi-attempt failures come back wrapped in *fault.RetryError (so attempt
// accounting survives).
func (we *WireError) reconstruct() error {
	var err error
	if we.Infeasible != nil {
		err = &catalog.InfeasibleError{
			Loadout: we.Infeasible.Loadout,
			Reason:  catalog.InfeasibleReason(we.Infeasible.Reason),
			Detail:  we.Infeasible.Detail,
		}
	} else {
		err = errors.New(we.Message)
	}
	if we.Attempts > 1 {
		err = &fault.RetryError{Attempts: we.Attempts, Last: err}
	}
	return err
}
