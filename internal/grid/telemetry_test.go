package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"autopilot/internal/dse"
	"autopilot/internal/fault"
	"autopilot/internal/obs"
)

// tEvent mirrors one Chrome trace_event object for assertions.
type tEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args"`
}

// exportTrace round-trips a tracer through its JSON export.
func exportTrace(t *testing.T, tr *obs.Tracer) []tEvent {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []tEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	return file.TraceEvents
}

// checkTraceWellFormed pins the merged-trace invariants any run must keep:
// only complete ("X") and metadata ("M") events, non-negative timestamps and
// durations, and process names declared for every non-local pid in use.
func checkTraceWellFormed(t *testing.T, evs []tEvent) map[int]string {
	t.Helper()
	procs := map[int]string{}
	for _, e := range evs {
		switch e.Ph {
		case "M":
			procs[e.PID] = e.Args["name"]
		case "X":
			if e.TS < 0 || e.Dur < 0 {
				t.Errorf("event %q has negative time: ts=%v dur=%v", e.Name, e.TS, e.Dur)
			}
		default:
			t.Errorf("event %q has phase %q, want X or M", e.Name, e.Ph)
		}
	}
	for _, e := range evs {
		if e.Ph == "X" && e.PID != obs.LocalPID {
			if _, ok := procs[e.PID]; !ok {
				t.Errorf("event %q on pid %d, which has no process_name", e.Name, e.PID)
			}
		}
	}
	return procs
}

// runGridTraced runs the sweep through a coordinator with full telemetry
// (tracer + metrics) and n chaos-wrapped workers that each carry their own
// metrics registry, returning everything the assertions need. The returned
// fleet response was captured after all workers flushed but while the server
// was still up.
func runGridTraced(t *testing.T, chaos bool, n int) (*dse.Result, *Coordinator, *obs.Tracer, FleetResponse) {
	t.Helper()
	r := tinyRequest()
	tr := obs.NewTracer()
	cfg := Config{LeaseTTL: 2 * time.Second, MaxAttempts: 50,
		Obs: &obs.Observer{Metrics: obs.NewRegistry(), Trace: tr}}
	coord := NewCoordinator(r, cfg)
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wc := WorkerConfig{
			URL: ts.URL, ID: fmt.Sprintf("w%d", i), DB: surrogateDB(),
			Poll: 5 * time.Millisecond,
			Obs:  &obs.Observer{Metrics: obs.NewRegistry()},
		}
		if chaos {
			// Dropped and duplicated RPCs exercise exactly the faults the
			// seq-acked span shipping and latest-wins snapshots must absorb.
			wc.Net = &fault.Injector{
				Seed: 2000 + int64(i), DropRate: 0.15, DupRate: 0.10,
				StaleRate: 0.10, DelayRate: 0.05, Delay: 2 * time.Millisecond,
			}
			wc.Heartbeat = 20 * time.Millisecond // many heartbeats to tamper with
		}
		wg.Add(1)
		go func(wc WorkerConfig) {
			defer wg.Done()
			if err := Run(ctx, wc); err != nil && ctx.Err() == nil {
				t.Errorf("worker %s: %v", wc.ID, err)
			}
		}(wc)
	}

	p2, err := r.Phase2Request(surrogateDB())
	if err != nil {
		t.Fatal(err)
	}
	p2.Delegate = coord.Evaluate
	p2.Obs = cfg.Obs // as cmd/dse wires it: job spans parent the workers' spans
	res, err := dse.Execute(context.Background(), p2)
	coord.Close()
	wg.Wait() // workers flush their final telemetry before the server closes
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + PathFleet)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fleet FleetResponse
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		t.Fatalf("fleet endpoint: %v", err)
	}
	return res, coord, tr, fleet
}

// TestGridTelemetryBitwiseParity is the tentpole's golden-neutrality pin:
// with cross-process tracing and metrics federation fully on, a 3-worker grid
// sweep still reconverges bitwise to the uninstrumented single-process run.
func TestGridTelemetryBitwiseParity(t *testing.T) {
	want := render(runLocal(t, tinyRequest()))
	res, _, _, _ := runGridTraced(t, false, 3)
	if got := render(res); got != want {
		t.Errorf("telemetry changed the frontier:\n%s\nwant:\n%s", got, want)
	}
}

// TestGridMergedTraceUnderChaos pins trace well-formedness when the RPCs
// carrying telemetry are dropped, duplicated, delayed and stale-replayed: the
// merged export stays valid, every worker that did jobs has its own named pid
// lane with at least one evaluation span, and seq-deduplication keeps
// re-delivered span batches from double-rendering.
func TestGridMergedTraceUnderChaos(t *testing.T) {
	want := render(runLocal(t, tinyRequest()))
	res, coord, tr, _ := runGridTraced(t, true, 3)
	if got := render(res); got != want {
		t.Errorf("chaos + telemetry changed the frontier:\n%s\nwant:\n%s", got, want)
	}

	evs := exportTrace(t, tr)
	procs := checkTraceWellFormed(t, evs)
	if procs[obs.LocalPID] != "coordinator" {
		t.Errorf("local pid named %q, want coordinator", procs[obs.LocalPID])
	}

	spansPerPID := map[int]int{}
	dups := map[string]int{}
	for _, e := range evs {
		if e.Ph != "X" {
			continue
		}
		spansPerPID[e.PID]++
		if e.PID != obs.LocalPID {
			dups[fmt.Sprintf("%d/%s/%v", e.PID, e.Name, e.TS)]++
		}
	}
	for key, n := range dups {
		if n > 1 {
			t.Errorf("span %s rendered %d times; duplicated delivery leaked past seq dedup", key, n)
		}
	}

	// Every worker the coordinator attributed jobs to must own a trace lane
	// with at least one shipped evaluation span.
	m := coord.Manifest()
	if len(m.Workers) == 0 {
		t.Fatal("manifest names no workers")
	}
	for _, w := range m.Workers {
		if w.Jobs == 0 {
			continue
		}
		if procs[w.PID] != "worker "+w.ID {
			t.Errorf("worker %s pid %d lane named %q", w.ID, w.PID, procs[w.PID])
		}
		if spansPerPID[w.PID] == 0 {
			t.Errorf("worker %s (pid %d, %d jobs) shipped no spans", w.ID, w.PID, w.Jobs)
		}
	}
}

// TestGridOrphanSpanOnReclaim pins the killed-worker story: a worker that
// leases a job and dies silently can never ship its span, so the coordinator
// closes the hole itself — a synthesized, completed span on the dead worker's
// lane annotated with the reclaim reason. The trace stays well-formed because
// only completed spans ever enter it.
func TestGridOrphanSpanOnReclaim(t *testing.T) {
	req := tinyRequest()
	tr := obs.NewTracer()
	cfg := Config{LeaseTTL: 60 * time.Millisecond, MaxLeases: 1, MaxAttempts: 50,
		Obs: &obs.Observer{Metrics: obs.NewRegistry(), Trace: tr}}
	coord := NewCoordinator(req, cfg)
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	p2, err := req.Phase2Request(surrogateDB())
	if err != nil {
		t.Fatal(err)
	}
	p2.Delegate = coord.Evaluate
	p2.Obs = cfg.Obs
	type out struct {
		res *dse.Result
		err error
	}
	resc := make(chan out, 1)
	go func() {
		res, err := dse.Execute(context.Background(), p2)
		resc <- out{res, err}
	}()

	// The victim leases the first job and is never heard from again — the
	// in-test stand-in for SIGKILL.
	captureFirstJob(t, coord, "victim")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		Run(ctx, WorkerConfig{URL: ts.URL, ID: "healthy", DB: surrogateDB(), Poll: 5 * time.Millisecond}) //nolint:errcheck
	}()

	o := <-resc
	coord.Close()
	cancel()
	wg.Wait()
	if o.err != nil {
		t.Fatal(o.err)
	}

	evs := exportTrace(t, tr)
	procs := checkTraceWellFormed(t, evs)
	var orphan *tEvent
	for i, e := range evs {
		if e.Ph == "X" && strings.HasPrefix(e.Name, "orphan job ") {
			orphan = &evs[i]
			break
		}
	}
	if orphan == nil {
		t.Fatal("no orphan span for the dead worker's reclaimed lease")
	}
	if orphan.Args["reason"] != "lease-expired" || orphan.Args["worker"] != "victim" {
		t.Errorf("orphan annotations = %v", orphan.Args)
	}
	if procs[orphan.PID] != "worker victim" {
		t.Errorf("orphan on lane %q, want the dead worker's", procs[orphan.PID])
	}
	if orphan.Args["parent_span"] == "" {
		t.Error("orphan span lost its parent job span")
	}
}

// TestGridFleetEndpoint pins /grid/v1/fleet: after a sweep every worker shows
// up with its job attribution, the totals reconcile, and the final flushed
// metrics snapshots are queryable per worker.
func TestGridFleetEndpoint(t *testing.T) {
	_, coord, _, fleet := runGridTraced(t, false, 3)

	if fleet.JobsCompleted == 0 || fleet.JobsSubmitted != fleet.JobsCompleted {
		t.Errorf("submitted=%d completed=%d, want equal and non-zero", fleet.JobsSubmitted, fleet.JobsCompleted)
	}
	if fleet.Pending != 0 {
		t.Errorf("pending = %d after Close", fleet.Pending)
	}
	if len(fleet.Workers) != 3 {
		t.Fatalf("fleet reports %d workers, want 3: %+v", len(fleet.Workers), fleet.Workers)
	}
	var attributed int64
	seen := map[string]bool{}
	withMetrics := 0
	for _, w := range fleet.Workers {
		seen[w.ID] = true
		attributed += w.Jobs
		if w.LastSeenMS < 0 {
			t.Errorf("worker %s last seen %dms ago", w.ID, w.LastSeenMS)
		}
		if w.ActiveLeases != 0 {
			t.Errorf("worker %s still holds %d leases after the sweep", w.ID, w.ActiveLeases)
		}
		if len(w.Metrics.Counters) > 0 || len(w.Metrics.Histograms) > 0 {
			withMetrics++
		}
	}
	for _, id := range []string{"w0", "w1", "w2"} {
		if !seen[id] {
			t.Errorf("worker %s missing from fleet: %+v", id, fleet.Workers)
		}
	}
	if attributed != fleet.JobsCompleted {
		t.Errorf("per-worker jobs sum to %d, completed = %d", attributed, fleet.JobsCompleted)
	}
	if withMetrics == 0 {
		t.Error("no worker's flushed metrics snapshot reached the fleet")
	}

	// The grid manifest mirrors the same attribution for -manifest output.
	m := coord.Manifest()
	if m.JobsCompleted != fleet.JobsCompleted {
		t.Errorf("manifest completed = %d, fleet = %d", m.JobsCompleted, fleet.JobsCompleted)
	}
	var mJobs int64
	for _, w := range m.Workers {
		mJobs += w.Jobs
		if w.Jobs > 0 && w.BusySec <= 0 {
			t.Errorf("worker %s did %d jobs in %v busy-seconds", w.ID, w.Jobs, w.BusySec)
		}
	}
	if mJobs != m.JobsCompleted {
		t.Errorf("manifest jobs sum to %d, completed = %d", mJobs, m.JobsCompleted)
	}
}
