package grid

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"autopilot/internal/dse"
	"autopilot/internal/fault"
	"autopilot/internal/obs"
)

// TestGridNetworkChaosParity pins the headline robustness claim: with every
// worker RPC routed through a chaos injector that drops, delays, duplicates
// and stale-replays deliveries, the merged frontier is still bitwise
// identical to the single-process run. Network faults corrupt delivery, never
// payloads, so the at-least-once transport plus coordinator-side arbitration
// (stale rejection, dedup, CRC) must erase them completely.
func TestGridNetworkChaosParity(t *testing.T) {
	req := tinyRequest()
	want := render(runLocal(t, req))

	// Aggressive rates: roughly one in three RPCs is tampered with.
	chaos := func(seed int64) *fault.Injector {
		return &fault.Injector{
			Seed:      seed,
			DropRate:  0.15,
			DupRate:   0.10,
			StaleRate: 0.10,
			DelayRate: 0.05,
			Delay:     2 * time.Millisecond,
		}
	}

	cfg := Config{LeaseTTL: 2 * time.Second, MaxAttempts: 50}
	reg := obs.NewRegistry()
	cfg.Obs = &obs.Observer{Metrics: reg}
	coord := NewCoordinator(req, cfg)
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			Run(ctx, WorkerConfig{ //nolint:errcheck
				URL:  ts.URL,
				ID:   string(rune('a' + n)),
				DB:   surrogateDB(),
				Poll: 5 * time.Millisecond,
				Net:  chaos(1000 + n),
			})
		}(int64(i))
	}

	p2, err := req.Phase2Request(surrogateDB())
	if err != nil {
		t.Fatal(err)
	}
	p2.Delegate = coord.Evaluate
	res, err := dse.Execute(context.Background(), p2)
	coord.Close()
	cancel()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := render(res); got != want {
		t.Errorf("network chaos changed the result:\n%s\nwant:\n%s", got, want)
	}
	// The chaos must have actually fired: at least one delivery-side defence
	// should have seen traffic, otherwise the rates above silently rotted.
	defended := reg.Counter("grid.result.duplicate").Value() +
		reg.Counter("grid.result.stale").Value() +
		reg.Counter("grid.lease.expired").Value() +
		reg.Counter("grid.lease.stolen").Value()
	if defended == 0 {
		t.Error("no duplicate/stale/expired/stolen events; chaos injector appears inert")
	}
}
