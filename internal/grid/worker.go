package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"autopilot/internal/airlearning"
	"autopilot/internal/dse"
	"autopilot/internal/fault"
	"autopilot/internal/obs"
)

// WorkerConfig configures one grid worker.
type WorkerConfig struct {
	// URL is the coordinator base URL (e.g. "http://127.0.0.1:7070").
	URL string
	// ID names the worker in leases and metrics; it must be unique per
	// coordinator (two workers sharing an ID would steal each other's
	// deliveries).
	ID string
	// DB is the Phase-1 policy database evaluations score against; nil
	// builds the built-in surrogate, which is what every worker must use
	// unless the coordinator process shares its database in-process.
	DB *airlearning.Database
	// Batch is the lease request size; 0 accepts the coordinator's default.
	Batch int
	// Parallel bounds concurrent evaluations per worker (default 1).
	Parallel int
	// Heartbeat is the lease-renewal period; 0 uses the coordinator's grid
	// block (or 2s).
	Heartbeat time.Duration
	// Poll is the idle backoff between empty lease calls (default 100ms).
	Poll time.Duration
	// Net injects network faults (drop/delay/dup/stale) into this worker's
	// RPCs; nil injects nothing. Delivery chaos never alters payloads, so
	// results stay bitwise identical under it.
	Net *fault.Injector
	// Backend injects evaluation faults (panic/error/NaN/delay) into this
	// worker's backend, exactly as a local sweep's -chaos flags would.
	Backend *fault.Injector
	// Obs, when non-nil, instruments the worker's evaluator.
	Obs *obs.Observer
	// Client is the HTTP client; nil uses a 30s-timeout default.
	Client *http.Client
}

// gridWorker is the running state behind Run.
type gridWorker struct {
	cfg    WorkerConfig
	client *http.Client
	ev     *dse.Evaluator
	done   atomic.Bool

	// buf holds completed evaluation spans awaiting shipment; nil when the
	// coordinator's hello declared telemetry off, so untelemetered sweeps
	// record and allocate nothing.
	buf    *obs.SpanBuffer
	telSeq atomic.Int64 // metrics snapshot sequence (latest wins)

	mu   sync.Mutex
	held map[int64]bool
}

// Run joins the coordinator at cfg.URL and evaluates leased jobs until the
// sweep completes (returns nil), the context is cancelled, or the
// coordinator stays unreachable past the failure budget. It is the whole
// worker: cmd/gridworker is a flag parser around this call, and cmd/dse's
// -grid-workers mode runs it on goroutines.
func Run(ctx context.Context, cfg WorkerConfig) error {
	if cfg.ID == "" {
		cfg.ID = "worker"
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 1
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 100 * time.Millisecond
	}
	w := &gridWorker{cfg: cfg, client: cfg.Client, held: make(map[int64]bool)}
	if w.client == nil {
		w.client = &http.Client{Timeout: 30 * time.Second}
	}

	hello, err := w.hello(ctx)
	if err != nil {
		return err
	}
	if hello.Version != ProtocolVersion {
		return fmt.Errorf("grid: worker %s: coordinator speaks protocol %d, want %d",
			cfg.ID, hello.Version, ProtocolVersion)
	}
	if hello.Telemetry {
		// Spans ship stamped on the coordinator's clock: the offset between
		// the two wall clocks is learned here (one-shot, RTT ignored — trace
		// alignment needs milliseconds, not microseconds).
		w.buf = obs.NewSpanBuffer(hello.NowUnixNano - time.Now().UnixNano())
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
		if g := hello.Request.Grid; g != nil && g.HeartbeatMS > 0 {
			cfg.Heartbeat = time.Duration(g.HeartbeatMS) * time.Millisecond
		}
		w.cfg.Heartbeat = cfg.Heartbeat
	}

	db := cfg.DB
	if db == nil {
		db = airlearning.NewDatabase()
		airlearning.PopulateSurrogate(db)
	}
	p2, err := hello.Request.Phase2Request(db)
	if err != nil {
		return fmt.Errorf("grid: worker %s: rebuild request: %w", cfg.ID, err)
	}
	p2.Injector = cfg.Backend
	p2.Obs = cfg.Obs
	w.ev = p2.NewEvaluator()

	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	go w.heartbeatLoop(hbCtx)

	err = w.leaseLoop(ctx)
	hbCancel()
	if err == nil {
		w.flushTelemetry()
	}
	return err
}

// flushTelemetry makes one best-effort final shipment of buffered spans and
// the closing metrics snapshot when the sweep ends cleanly. It bypasses the
// chaos injector: the sweep's results are already delivered, so this RPC is
// outside the deterministic surface and should not consume chaos decisions.
func (w *gridWorker) flushTelemetry() {
	t := w.attachment(true)
	if t == nil {
		return
	}
	var hr HeartbeatResponse
	if err := w.post(PathHeartbeat, HeartbeatRequest{Worker: w.cfg.ID, Telemetry: t}, &hr); err == nil {
		w.buf.Ack(hr.SpanAck)
	}
}

// attachment assembles the telemetry to piggyback on an outgoing RPC: the
// whole unacknowledged span buffer, plus (when withMetrics — the periodic
// heartbeat path) a sequenced cumulative snapshot of the worker's registry.
// Returns nil when there is nothing to ship, so untelemetered workers add
// zero bytes to every request.
func (w *gridWorker) attachment(withMetrics bool) *TelemetryAttachment {
	if w.buf == nil {
		return nil
	}
	t := &TelemetryAttachment{Spans: w.buf.Pending()}
	if withMetrics && w.cfg.Obs != nil && w.cfg.Obs.Metrics != nil {
		snap := w.cfg.Obs.Metrics.Snapshot()
		t.Metrics, t.MetricsSeq = &snap, w.telSeq.Add(1)
	}
	if t.Metrics == nil && len(t.Spans) == 0 {
		return nil
	}
	return t
}

// hello fetches the coordinator's self-description, waiting out the window
// where the worker process started before the coordinator began listening.
func (w *gridWorker) hello(ctx context.Context) (HelloResponse, error) {
	var hr HelloResponse
	var last error
	for i := 0; i < 100; i++ {
		if err := ctx.Err(); err != nil {
			return hr, fmt.Errorf("grid: worker %s: hello: %w", w.cfg.ID, err)
		}
		resp, err := w.client.Get(w.cfg.URL + PathHello)
		if err == nil {
			body, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				if jerr := json.Unmarshal(body, &hr); jerr == nil {
					return hr, nil
				} else {
					last = jerr
				}
			} else {
				last = fmt.Errorf("status %d", resp.StatusCode)
			}
		} else {
			last = err
		}
		sleepCtx(ctx, 100*time.Millisecond)
	}
	return hr, fmt.Errorf("grid: worker %s: coordinator %s never answered hello: %v", w.cfg.ID, w.cfg.URL, last)
}

// leaseLoop is the worker's main loop: lease a batch, evaluate it (bounded by
// Parallel), deliver, repeat.
func (w *gridWorker) leaseLoop(ctx context.Context) error {
	var seq, failures int
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if w.done.Load() {
			return nil
		}
		var lr LeaseResponse
		key := fmt.Sprintf("lease|%s#%d", w.cfg.ID, seq)
		seq++
		req := LeaseRequest{Worker: w.cfg.ID, Max: w.cfg.Batch, Telemetry: w.attachment(false)}
		err := w.cfg.Net.RPC(key, func() error {
			return w.post(PathLease, req, &lr)
		})
		if err != nil {
			failures++
			if failures >= 25 {
				return fmt.Errorf("grid: worker %s: coordinator unreachable: %w", w.cfg.ID, err)
			}
			sleepCtx(ctx, w.cfg.Poll)
			continue
		}
		failures = 0
		w.buf.Ack(lr.SpanAck)
		if lr.Done {
			return nil
		}
		if len(lr.Jobs) == 0 {
			wait := time.Duration(lr.WaitMS) * time.Millisecond
			if wait <= 0 {
				wait = w.cfg.Poll
			}
			sleepCtx(ctx, wait)
			continue
		}
		sem := make(chan struct{}, w.cfg.Parallel)
		var wg sync.WaitGroup
		for _, jb := range lr.Jobs {
			wg.Add(1)
			sem <- struct{}{}
			go func(jb Job) {
				defer wg.Done()
				defer func() { <-sem }()
				w.runJob(ctx, jb)
			}(jb)
		}
		wg.Wait()
	}
}

// runJob evaluates one leased job and delivers its outcome. The attempt index
// feeds the evaluator's chaos keys (via EvaluateAttempt), so a re-issued
// lease draws fresh injected faults while a clean evaluation stays bitwise
// identical to the local engine's.
func (w *gridWorker) runJob(ctx context.Context, jb Job) {
	w.mu.Lock()
	w.held[jb.ID] = true
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.held, jb.ID)
		w.mu.Unlock()
	}()

	// The evaluation span lands on this worker's pid lane in the merged
	// trace, parented to the coordinator's job span; tid = job id keeps one
	// job's attempts on one row. It ships only after End — a worker killed
	// mid-evaluation leaks nothing malformed, and the coordinator closes the
	// orphan with a lease-expired annotation instead.
	sp := w.buf.Start(fmt.Sprintf("eval job %d", jb.ID), "grid", jb.ID, jb.Parent).
		Arg("worker", w.cfg.ID).
		Arg("attempt", fmt.Sprintf("%d", jb.Attempt))
	e, err := w.ev.EvaluateAttempt(ctx, jb.Design, jb.Attempt)
	if ctx.Err() != nil {
		// A cancelled evaluation is this worker dying, not an answer; leave
		// the lease to expire and be re-issued elsewhere.
		return
	}
	if err != nil {
		sp.Arg("outcome", "error")
	} else {
		sp.Arg("outcome", "ok")
	}
	sp.End()
	post := ResultPost{Worker: w.cfg.ID, Job: jb.ID, Attempt: jb.Attempt}
	if err != nil {
		post.Error = encodeError(err)
	} else {
		raw, merr := json.Marshal(e)
		if merr != nil {
			post.Error = encodeError(merr)
		} else {
			post.Result = raw
			post.CRC = Checksum(raw)
		}
	}
	w.deliver(ctx, jb, post)
}

// deliver posts a result at-least-once: transport faults (including injected
// drops) retry under a small deterministic backoff budget, duplicate
// deliveries are absorbed coordinator-side, and an injected stale decision
// forges a re-delivery tagged with the previous attempt rank to exercise the
// coordinator's arbitration.
func (w *gridWorker) deliver(ctx context.Context, jb Job, post ResultPost) {
	// The just-completed evaluation span rides the delivery itself; re-sent
	// deliveries re-ship the same sequence numbers, which the coordinator
	// deduplicates before acknowledging.
	post.Telemetry = w.attachment(false)
	var rr ResultResponse
	p := fault.Policy{Attempts: 6, BaseDelay: 20 * time.Millisecond, MaxDelay: 500 * time.Millisecond}
	err := fault.Retry(ctx, p, func(ctx context.Context, attempt int) error {
		key := fmt.Sprintf("result|%016x#%d", uint64(jb.Seed), attempt)
		return w.cfg.Net.RPC(key, func() error { return w.post(PathResult, post, &rr) })
	})
	if err != nil {
		return // lease expires; the coordinator re-issues the job
	}
	w.buf.Ack(rr.SpanAck)
	if rr.Done {
		w.done.Store(true)
	}
	if jb.Attempt > 0 && w.cfg.Net.StaleRPC(fmt.Sprintf("stale|%016x", uint64(jb.Seed))) {
		stale := post
		stale.Attempt = jb.Attempt - 1
		var junk ResultResponse
		_ = w.post(PathResult, stale, &junk)
	}
}

// heartbeatLoop renews the worker's leases until the context ends.
func (w *gridWorker) heartbeatLoop(ctx context.Context) {
	t := time.NewTicker(w.cfg.Heartbeat)
	defer t.Stop()
	var seq int
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		w.mu.Lock()
		ids := make([]int64, 0, len(w.held))
		for id := range w.held {
			ids = append(ids, id)
		}
		w.mu.Unlock()
		var hr HeartbeatResponse
		key := fmt.Sprintf("heartbeat|%s#%d", w.cfg.ID, seq)
		seq++
		req := HeartbeatRequest{Worker: w.cfg.ID, Jobs: ids, Telemetry: w.attachment(true)}
		if err := w.cfg.Net.RPC(key, func() error {
			return w.post(PathHeartbeat, req, &hr)
		}); err != nil {
			continue // missed heartbeats are exactly what lease TTLs absorb
		}
		w.buf.Ack(hr.SpanAck)
		if hr.Done {
			w.done.Store(true)
		}
	}
}

// post sends one JSON request and decodes the JSON response.
func (w *gridWorker) post(path string, req, resp any) error {
	data, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := w.client.Post(w.cfg.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		return err
	}
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("grid: %s: status %d: %s", path, r.StatusCode, bytes.TrimSpace(body))
	}
	if resp == nil {
		return nil
	}
	return json.Unmarshal(body, resp)
}

// sleepCtx sleeps d or until the context ends.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
