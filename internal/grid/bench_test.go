package grid

import (
	"encoding/json"
	"fmt"
	"testing"

	"autopilot/internal/dse"
)

// benchJobs enqueues n jobs directly (mirroring Evaluate's bookkeeping
// without a waiting goroutine per job — completion just closes j.done) so
// benchmarks can scale b.N without goroutine-per-job setup cost.
func benchJobs(c *Coordinator, n int) []Job {
	designs := dse.DefaultSpace().Sample(64, 7)
	c.mu.Lock()
	for i := 0; i < n; i++ {
		id := c.nextID
		c.nextID++
		d := designs[i%len(designs)]
		c.jobs[id] = &job{
			id:     id,
			design: d,
			seed:   JobSeed(fmt.Sprintf("%s#%d", d.String(), i), c.req.Seed),
			queued: true,
			leases: make(map[int]lease),
			issued: make(map[int]string),
			done:   make(chan struct{}),
		}
		c.pending = append(c.pending, id)
	}
	c.mu.Unlock()
	jobs := make([]Job, 0, n)
	for len(jobs) < n {
		lr := c.lease(LeaseRequest{Worker: "w0", Max: 256})
		if len(lr.Jobs) == 0 {
			break
		}
		jobs = append(jobs, lr.Jobs...)
	}
	return jobs
}

// BenchmarkLeaseGrant measures one lease call granting one job from a deep
// pending queue — the coordinator's hot path while workers poll.
func BenchmarkLeaseGrant(b *testing.B) {
	c := NewCoordinator(tinyRequest(), Config{})
	benchJobs(c, b.N)
	// Put every job back on the pending queue so the timed loop only grants.
	c.mu.Lock()
	c.pending = c.pending[:0]
	for id := int64(0); id < int64(b.N); id++ {
		j := c.jobs[id]
		j.queued = true
		j.leases = make(map[int]lease)
		c.pending = append(c.pending, id)
	}
	c.mu.Unlock()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if lr := c.lease(LeaseRequest{Worker: "w1", Max: 1}); len(lr.Jobs) != 1 {
			b.Fatalf("lease %d granted %d jobs", i, len(lr.Jobs))
		}
	}
}

// BenchmarkResultMerge measures one result delivery end to end: stale and
// duplicate arbitration, CRC verification, payload decode and job
// completion.
func BenchmarkResultMerge(b *testing.B) {
	c := NewCoordinator(tinyRequest(), Config{})
	jobs := benchJobs(c, b.N)
	posts := make([]ResultPost, len(jobs))
	for i, jb := range jobs {
		payload, err := json.Marshal(dse.Evaluated{Design: jb.Design, SuccessRate: 0.5, FPS: 30})
		if err != nil {
			b.Fatal(err)
		}
		posts[i] = ResultPost{Worker: "w0", Job: jb.ID, Attempt: jb.Attempt, CRC: Checksum(payload), Result: payload}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rr := c.result(posts[i]); !rr.Accepted || rr.Duplicate {
			b.Fatalf("delivery %d: %+v", i, rr)
		}
	}
}
