// Package memo is the process-wide content-addressed result store behind
// AutoPilot's duplicate-heavy workloads. It promotes the in-process
// (backend, design) singleflight cache that internal/dse grew in PR 1/2 into
// a reusable seam: any layer that computes a pure function of a hashable key
// — a design-point cost estimate, a whole co-design job keyed by its
// canonical request hash — can share one Store so a million duplicate
// requests cost one evaluation.
//
// A Store combines three mechanisms:
//
//   - memoization with LRU eviction: completed values are kept up to a
//     capacity bound and the least-recently-used entry is evicted first, so
//     long-lived servers hold their working set without unbounded growth;
//   - singleflight deduplication: concurrent calls for the same uncached key
//     elect one leader to compute while the rest wait on its in-flight
//     result, so each key computes exactly once even under racing traffic;
//   - hit/miss/dedup/eviction counters: obs.Counter instruments (nil-safe,
//     standalone or registry-bound) make cache effectiveness observable.
//
// Values must be pure functions of their key for the dedup to be sound; the
// Store never caches errors, so a failed computation is retried by the next
// caller.
package memo

import (
	"context"
	"fmt"
	"sync"

	"autopilot/internal/obs"
)

// Counters are the store's instruments. Any field may be nil (obs counters
// no-op on nil); NewCounters returns a standalone set for callers that track
// stats without a metrics registry.
type Counters struct {
	// Hits counts calls served from the completed-value cache, including
	// waiters that received a deduplicated in-flight result.
	Hits *obs.Counter
	// Misses counts calls that had to compute: exactly the number of times
	// the underlying function ran (leaders only).
	Misses *obs.Counter
	// Dedups counts waiters that piggybacked on another caller's in-flight
	// computation instead of starting their own.
	Dedups *obs.Counter
	// Evictions counts completed values dropped by the LRU bound.
	Evictions *obs.Counter
}

// NewCounters returns a fully populated standalone counter set.
func NewCounters() Counters {
	return Counters{
		Hits: obs.NewCounter(), Misses: obs.NewCounter(),
		Dedups: obs.NewCounter(), Evictions: obs.NewCounter(),
	}
}

// RegistryCounters resolves the store's counters from a registry under the
// given metric prefix: <prefix>.hits, .misses, .dedup, .evictions. A nil
// registry yields all-nil (no-op) counters.
func RegistryCounters(r *obs.Registry, prefix string) Counters {
	return Counters{
		Hits:      r.Counter(prefix + ".hits"),
		Misses:    r.Counter(prefix + ".misses"),
		Dedups:    r.Counter(prefix + ".dedup"),
		Evictions: r.Counter(prefix + ".evictions"),
	}
}

// entry is one completed value on the LRU list.
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// flight is one in-progress computation; waiters block on done and read the
// result the leader stored.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Store is a concurrency-safe memoization store with singleflight dedup and
// LRU eviction. The zero value is not usable; construct with New.
type Store[K comparable, V any] struct {
	capacity int // >0 LRU-bounded, 0 unbounded, <0 caching disabled
	counters Counters

	mu         sync.Mutex
	entries    map[K]*entry[K, V]
	head, tail *entry[K, V] // LRU list; head is most recently used
	flights    map[K]*flight[V]
}

// New returns a store holding at most capacity completed values. A capacity
// of 0 means unbounded; a negative capacity disables caching entirely (every
// call computes, which also disables dedup — callers opting out of caching
// expect every invocation to run).
func New[K comparable, V any](capacity int, counters Counters) *Store[K, V] {
	return &Store[K, V]{
		capacity: capacity,
		counters: counters,
		entries:  map[K]*entry[K, V]{},
		flights:  map[K]*flight[V]{},
	}
}

// Len returns the number of completed values currently held.
func (s *Store[K, V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns the hit and miss counts so far.
func (s *Store[K, V]) Stats() (hits, misses int64) {
	return s.counters.Hits.Value(), s.counters.Misses.Value()
}

// unlink removes e from the LRU list.
func (s *Store[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (s *Store[K, V]) pushFront(e *entry[K, V]) {
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// lookup returns the cached value for k, refreshing its recency. The caller
// holds s.mu.
func (s *Store[K, V]) lookup(k K) (V, bool) {
	e, ok := s.entries[k]
	if !ok {
		var zero V
		return zero, false
	}
	if s.head != e {
		s.unlink(e)
		s.pushFront(e)
	}
	return e.val, true
}

// insert stores v under k, evicting the least-recently-used entry when the
// capacity bound is exceeded. The caller holds s.mu.
func (s *Store[K, V]) insert(k K, v V) {
	if s.capacity < 0 {
		return
	}
	if e, ok := s.entries[k]; ok {
		e.val = v
		if s.head != e {
			s.unlink(e)
			s.pushFront(e)
		}
		return
	}
	e := &entry[K, V]{key: k, val: v}
	s.entries[k] = e
	s.pushFront(e)
	if s.capacity > 0 && len(s.entries) > s.capacity {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.key)
		s.counters.Evictions.Inc()
	}
}

// Get returns the cached value for k, counting a hit when present. It never
// blocks on in-flight computations.
func (s *Store[K, V]) Get(k K) (V, bool) {
	s.mu.Lock()
	v, ok := s.lookup(k)
	s.mu.Unlock()
	if ok {
		s.counters.Hits.Inc()
	}
	return v, ok
}

// Put stores a completed value directly — the warm-start path (reloading a
// persisted result set) — without touching the hit/miss counters.
func (s *Store[K, V]) Put(k K, v V) {
	s.mu.Lock()
	s.insert(k, v)
	s.mu.Unlock()
}

// Do returns the value for k, computing it with fn on a miss. Concurrent
// calls for the same uncached key are deduplicated: one leader (counted as
// the miss) runs fn while the rest wait on its in-flight result (counted as
// hits), so misses equals the number of computations actually performed.
// Errors are returned to the leader and every waiter but never cached — the
// next call retries. The boolean reports whether the value came from the
// cache or another caller's computation (false exactly when this call ran
// fn). A cancelled ctx abandons only the wait; the leader's computation
// (driven by the leader's own context) continues for the callers still
// waiting on it.
func (s *Store[K, V]) Do(ctx context.Context, k K, fn func() (V, error)) (V, bool, error) {
	if s.capacity < 0 {
		s.counters.Misses.Inc()
		v, err := fn()
		return v, false, err
	}
	s.mu.Lock()
	if v, ok := s.lookup(k); ok {
		s.mu.Unlock()
		s.counters.Hits.Inc()
		return v, true, nil
	}
	if f, ok := s.flights[k]; ok {
		s.mu.Unlock()
		s.counters.Dedups.Inc()
		var zero V
		select {
		case <-f.done:
		case <-ctx.Done():
			return zero, false, fmt.Errorf("memo: wait cancelled: %w", ctx.Err())
		}
		if f.err != nil {
			return zero, false, f.err
		}
		s.counters.Hits.Inc()
		return f.val, true, nil
	}
	f := &flight[V]{done: make(chan struct{})}
	s.flights[k] = f
	s.mu.Unlock()

	s.counters.Misses.Inc()
	f.val, f.err = fn()
	s.mu.Lock()
	if f.err == nil {
		// Store before retiring the flight, so a racing caller finds the key
		// either cached or in flight — never absent mid-handoff.
		s.insert(k, f.val)
	}
	delete(s.flights, k)
	s.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}
