package memo

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoMemoizes(t *testing.T) {
	s := New[string, int](0, NewCounters())
	calls := 0
	fn := func() (int, error) { calls++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, cached, err := s.Do(context.Background(), "k", fn)
		if err != nil || v != 42 {
			t.Fatalf("Do = %d, %v", v, err)
		}
		if cached != (i > 0) {
			t.Fatalf("call %d cached = %v", i, cached)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if hits, misses := s.Stats(); hits != 2 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", hits, misses)
	}
}

func TestErrorsNeverCached(t *testing.T) {
	s := New[string, int](0, NewCounters())
	boom := errors.New("boom")
	calls := 0
	fail := func() (int, error) { calls++; return 0, boom }
	if _, _, err := s.Do(context.Background(), "k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := s.Do(context.Background(), "k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Fatalf("failed fn ran %d times, want 2 (errors must not cache)", calls)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after failures, want 0", s.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewCounters()
	s := New[int, int](2, c)
	id := func(v int) func() (int, error) { return func() (int, error) { return v, nil } }
	s.Do(context.Background(), 1, id(1))
	s.Do(context.Background(), 2, id(2))
	s.Do(context.Background(), 1, id(1)) // refresh 1: now 2 is LRU
	s.Do(context.Background(), 3, id(3)) // evicts 2
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if _, ok := s.Get(2); ok {
		t.Fatal("key 2 survived eviction")
	}
	if _, ok := s.Get(1); !ok {
		t.Fatal("recently used key 1 was evicted")
	}
	if _, ok := s.Get(3); !ok {
		t.Fatal("newest key 3 missing")
	}
	if ev := c.Evictions.Value(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	// An evicted key recomputes.
	calls := 0
	s.Do(context.Background(), 2, func() (int, error) { calls++; return 2, nil })
	if calls != 1 {
		t.Fatal("evicted key did not recompute")
	}
}

func TestDisabledCapacityAlwaysComputes(t *testing.T) {
	s := New[string, int](-1, NewCounters())
	calls := 0
	for i := 0; i < 3; i++ {
		s.Do(context.Background(), "k", func() (int, error) { calls++; return 7, nil })
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times with caching disabled, want 3", calls)
	}
	if hits, misses := s.Stats(); hits != 0 || misses != 3 {
		t.Fatalf("hits/misses = %d/%d, want 0/3", hits, misses)
	}
}

func TestSingleflightDedup(t *testing.T) {
	c := NewCounters()
	s := New[string, int](0, c)
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	vals := make([]int, n)
	errs := make([]error, n)
	// The leader goes first and parks inside fn so the flight is provably
	// open before any waiter calls Do.
	wg.Add(1)
	go func() {
		defer wg.Done()
		vals[0], _, errs[0] = s.Do(context.Background(), "k", func() (int, error) {
			calls.Add(1)
			close(started)
			<-release
			return 99, nil
		})
	}()
	<-started
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], _, errs[i] = s.Do(context.Background(), "k", func() (int, error) {
				calls.Add(1)
				return 99, nil
			})
		}(i)
	}
	// Dedups increments before a waiter blocks on the flight, so once it
	// reaches n-1 every waiter has joined; only then release the leader.
	for c.Dedups.Value() < n-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	for i := range vals {
		if errs[i] != nil || vals[i] != 99 {
			t.Fatalf("goroutine %d: %d, %v", i, vals[i], errs[i])
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	hits, misses := s.Stats()
	if misses != 1 || hits != n-1 {
		t.Fatalf("hits/misses = %d/%d, want %d/1", hits, misses, n-1)
	}
	if c.Dedups.Value() != n-1 {
		t.Fatalf("dedups = %d, want %d", c.Dedups.Value(), n-1)
	}
}

func TestWaitCancellation(t *testing.T) {
	s := New[string, int](0, NewCounters())
	started := make(chan struct{})
	release := make(chan struct{})
	go s.Do(context.Background(), "k", func() (int, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := s.Do(ctx, "k", func() (int, error) { return 2, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
	// The leader's result still lands for later callers.
	v, _, err := s.Do(context.Background(), "k", func() (int, error) { return 3, nil })
	if err != nil || v != 1 {
		t.Fatalf("post-cancel Do = %d, %v; want leader's 1", v, err)
	}
}

func TestPutWarmStart(t *testing.T) {
	c := NewCounters()
	s := New[string, string](4, c)
	s.Put("k", "warm")
	if misses := c.Misses.Value(); misses != 0 {
		t.Fatalf("Put counted %d misses", misses)
	}
	v, cached, err := s.Do(context.Background(), "k", func() (string, error) {
		return "", errors.New("must not run")
	})
	if err != nil || !cached || v != "warm" {
		t.Fatalf("Do after Put = %q, cached=%v, err=%v", v, cached, err)
	}
}

func TestRegistryCounters(t *testing.T) {
	// Nil registry: all counters nil, everything no-ops without panicking.
	s := New[int, int](1, RegistryCounters(nil, "x"))
	if _, _, err := s.Do(context.Background(), 1, func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if hits, misses := s.Stats(); hits != 0 || misses != 0 {
		t.Fatal("nil counters must read zero")
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	s := New[int, int](8, NewCounters())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := i % 16
				v, _, err := s.Do(context.Background(), k, func() (int, error) { return k * 10, nil })
				if err != nil || v != k*10 {
					panic(fmt.Sprintf("k=%d v=%d err=%v", k, v, err))
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() > 8 {
		t.Fatalf("Len = %d exceeds capacity 8", s.Len())
	}
}
