package fault

import (
	"autopilot/internal/airlearning"
	"autopilot/internal/hw"
)

// This file holds the concrete injection wrappers for the pipeline's fault
// surfaces: hardware cost-model backends (Phase-2 evaluations) and
// environment resets (Phase-1 rollouts). Training-job injection lives in
// internal/train, which threads the injector around whole jobs.

// injectedBackend applies an injector's decision for one key around a real
// hw.Backend.
type injectedBackend struct {
	in  *Injector
	key string
	b   hw.Backend
}

// Name identifies the wrapped backend family unchanged, so memoization-cache
// keys are unaffected by injection.
func (f injectedBackend) Name() string { return f.b.Name() }

// Estimate runs the wrapped backend under the key's fault decision: panics
// and injected errors surface like real simulator crashes, delays stall the
// estimate, and a NaN hit poisons the FPS — which the dse evaluator's
// CheckFinite guardrail must then catch.
func (f injectedBackend) Estimate(w hw.Workload) (hw.Estimate, error) {
	var est hw.Estimate
	err := f.in.Invoke(f.key, func() error {
		var e error
		est, e = f.b.Estimate(w)
		return e
	})
	if err != nil {
		return hw.Estimate{}, err
	}
	est.FPS = f.in.Value(f.key, est.FPS)
	return est, nil
}

// Backend wraps a hardware cost-model backend with the injector's decision
// for key. A nil injector returns b untouched.
func (in *Injector) Backend(key string, b hw.Backend) hw.Backend {
	if in == nil {
		return b
	}
	return injectedBackend{in: in, key: key, b: b}
}

// Reset performs an environment reset under the key's fault decision —
// injected panics and errors surface exactly like a real unsolvable-layout
// failure from airlearning.(*Env).TryReset.
func (in *Injector) Reset(key string, env *airlearning.Env) (airlearning.Observation, error) {
	if in == nil {
		return env.TryReset()
	}
	var obs airlearning.Observation
	err := in.Invoke(key, func() error {
		var e error
		obs, e = env.TryReset()
		return e
	})
	return obs, err
}
