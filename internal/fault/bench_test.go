package fault

import (
	"context"
	"testing"
)

// The work simulated here is deliberately non-trivial (a short floating-point
// loop) so the benchmark compares Retry's wrapping cost against a realistic
// job body rather than an empty function. Against real training jobs —
// milliseconds to seconds each — the measured per-call overhead (one deferred
// recover plus a context check) is far below the 1% budget the design doc
// promises for the happy path.
func work(n int) float64 {
	s := 1.0
	for i := 0; i < n; i++ {
		s += s * 1e-9
	}
	return s
}

var benchSink float64

func BenchmarkDirectCall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = work(1000)
	}
}

func BenchmarkRetryHappyPath(b *testing.B) {
	ctx := context.Background()
	p := Policy{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Retry(ctx, p, func(context.Context, int) error {
			benchSink = work(1000)
			return nil
		})
	}
}

func BenchmarkRetryHappyPathDefaultPolicy(b *testing.B) {
	ctx := context.Background()
	p := DefaultPolicy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Retry(ctx, p, func(context.Context, int) error {
			benchSink = work(1000)
			return nil
		})
	}
}
