package fault

import (
	"context"
	"errors"
	"fmt"
	"time"

	"autopilot/internal/obs"
)

// Policy parameterizes Retry. The zero value means a single attempt with no
// timeout — wrapping a job in Retry with a zero Policy is behaviorally
// identical to calling it directly (plus panic isolation).
type Policy struct {
	// Attempts is the total attempt budget; values <= 1 mean one attempt.
	Attempts int
	// BaseDelay is the backoff after the first failed attempt; it doubles
	// per attempt, capped at MaxDelay. Zero disables backoff sleeps.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff; <= 0 means uncapped.
	MaxDelay time.Duration
	// Timeout bounds each individual attempt; 0 means no per-attempt bound.
	Timeout time.Duration
	// Retryable decides whether an error is worth another attempt; nil
	// retries everything except context cancellation.
	Retryable func(error) bool
}

// DefaultPolicy returns a modest budget for transient simulator faults:
// three attempts with 10ms..1s capped exponential backoff.
func DefaultPolicy() Policy {
	return Policy{Attempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second}
}

// attempts resolves the attempt budget.
func (p Policy) attempts() int {
	if p.Attempts <= 1 {
		return 1
	}
	return p.Attempts
}

// Backoff returns the deterministic sleep before retry attempt a (1-based
// over failures: Backoff(1) follows the first failure). The schedule is
// capped exponential with no jitter — retry timing, like everything else in
// the pipeline, must not depend on randomness drawn outside the seeds.
func (p Policy) Backoff(attempt int) time.Duration {
	if p.BaseDelay <= 0 || attempt <= 0 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		return p.MaxDelay
	}
	return d
}

// RetryError reports that a job exhausted its attempt budget (or hit a
// non-retryable error). Last is the final attempt's error.
type RetryError struct {
	Attempts int
	Last     error
}

// Error renders the exhausted budget.
func (e *RetryError) Error() string {
	return fmt.Sprintf("fault: failed after %d attempt(s): %v", e.Attempts, e.Last)
}

// Unwrap exposes the final attempt's error to errors.Is/As.
func (e *RetryError) Unwrap() error { return e.Last }

// AttemptSeed derives the seed for retry attempt `attempt` of a job whose
// first attempt uses base. Attempt 0 returns base unchanged — the default
// no-retry path is bitwise identical to pre-fault-layer code — and later
// attempts mix the attempt index in through a splitmix64 finalizer, so a
// retried job explores a fresh but fully reproducible random stream:
// the same (base, attempt) pair always yields the same seed, whichever
// worker executes the retry.
func AttemptSeed(base int64, attempt int) int64 {
	if attempt <= 0 {
		return base
	}
	z := uint64(base) + uint64(attempt)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// retryable resolves the policy's classifier. The default retries everything
// except context cancellation; a *TimeoutError is retryable even though it
// wraps context.DeadlineExceeded, because a per-attempt deadline (unlike the
// caller's own) is exactly the transient fault the budget exists for.
func (p Policy) retryable(err error) bool {
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	var te *TimeoutError
	if errors.As(err, &te) {
		return true
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// NonRetryable returns a copy of the policy that never retries errors
// matched by match, deferring to the original classifier otherwise. Use it to
// declare a class of errors (e.g. a typed infeasibility verdict) a definitive
// answer rather than a transient fault.
func (p Policy) NonRetryable(match func(error) bool) Policy {
	out := p
	out.Retryable = func(err error) bool {
		if match(err) {
			return false
		}
		return p.retryable(err)
	}
	return out
}

// Retry runs fn with panic isolation under the policy: up to Attempts tries,
// each bounded by Timeout, separated by the deterministic capped-exponential
// backoff. fn receives the attempt index (0-based) so it can re-derive its
// seeds via AttemptSeed, keeping retries reproducible across worker counts.
//
// A nil return from any attempt succeeds. A panic becomes a *PanicError and
// is retried like any other error. An attempt that exceeds Timeout fails
// with a *TimeoutError (retryable). When the budget is exhausted — or the
// policy declares an error non-retryable — Retry returns a *RetryError
// wrapping the last cause. Cancellation of ctx aborts immediately with an
// error satisfying errors.Is(err, ctx.Err()).
func Retry(ctx context.Context, p Policy, fn func(ctx context.Context, attempt int) error) error {
	o := obs.FromContext(ctx)
	attempts := p.attempts()
	var last error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("fault: retry cancelled: %w", err)
		}
		if a > 0 {
			o.Counter("fault.retries").Inc()
		}
		actx, cancel := ctx, context.CancelFunc(nil)
		if p.Timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.Timeout)
		}
		err := Call(func() error { return fn(actx, a) })
		if cancel != nil {
			// Convert a per-attempt deadline expiry (parent still live) into
			// the typed, retryable timeout.
			if err != nil && errors.Is(actx.Err(), context.DeadlineExceeded) && ctx.Err() == nil {
				err = &TimeoutError{Err: err}
			}
			cancel()
		}
		if err == nil {
			return nil
		}
		last = err
		if o != nil {
			switch Classify(err) {
			case KindPanic:
				o.Counter("fault.panics").Inc()
			case KindTimeout:
				o.Counter("fault.timeouts").Inc()
			case KindNumerical:
				o.Counter("fault.numerical").Inc()
			}
		}
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			return fmt.Errorf("fault: retry cancelled: %w", err)
		}
		if a == attempts-1 || !p.retryable(err) {
			return &RetryError{Attempts: a + 1, Last: err}
		}
		if d := p.Backoff(a + 1); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				// A caller deadline (or cancellation) arriving mid-backoff is
				// terminal: return immediately — never sleep out the rest of
				// the schedule — and wrap in *RetryError so the attempt count
				// spent so far survives (AttemptsOf, failure records). The
				// cause chain keeps both the context error (errors.Is on
				// Canceled/DeadlineExceeded still holds) and the last
				// attempt's error for the report.
				return &RetryError{Attempts: a + 1, Last: fmt.Errorf(
					"fault: retry cancelled during backoff (last attempt: %v): %w", last, ctx.Err())}
			case <-t.C:
			}
		}
	}
	return &RetryError{Attempts: attempts, Last: last}
}

// AttemptsOf extracts the attempt count a job's terminal error carries; an
// error without retry bookkeeping counts as one attempt.
func AttemptsOf(err error) int {
	var re *RetryError
	if errors.As(err, &re) {
		return re.Attempts
	}
	return 1
}
