package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"autopilot/internal/obs"
)

// ErrInjected is the sentinel cause of every injector-produced error; chaos
// tests assert on it with errors.Is.
var ErrInjected = errors.New("fault: injected")

// Injection is the fault an Injector decided to apply to one job key.
type Injection int

// Injection decisions, in precedence order (a key draws once; the stacked
// rate thresholds pick at most one fault).
const (
	InjectNone Injection = iota
	InjectPanic
	InjectError
	InjectNaN
	InjectDelay

	// Network fault classes, drawn per RPC key by distributed-execution
	// transports (internal/grid, hw.RemoteBackend). They corrupt delivery,
	// never payloads, so surviving results stay bitwise-comparable.

	// InjectDrop loses the RPC: the request is never delivered and the
	// caller sees a transport error.
	InjectDrop
	// InjectDup delivers the RPC twice, exercising receiver-side
	// deduplication.
	InjectDup
	// InjectStale re-delivers the payload tagged with an earlier attempt
	// rank alongside the real delivery, exercising attempt arbitration.
	InjectStale
)

// String names the injection.
func (i Injection) String() string {
	switch i {
	case InjectNone:
		return "none"
	case InjectPanic:
		return "panic"
	case InjectError:
		return "error"
	case InjectNaN:
		return "nan"
	case InjectDelay:
		return "delay"
	case InjectDrop:
		return "drop"
	case InjectDup:
		return "dup"
	case InjectStale:
		return "stale"
	default:
		return fmt.Sprintf("Injection(%d)", int(i))
	}
}

// Injector deterministically injects faults into jobs for chaos testing:
// whether a given job key draws a panic, an error, a NaN poison, or a delay
// is a pure function of (Seed, key), never of scheduling — so an injected
// sweep fails the same jobs at workers=1 and workers=8, and the surviving
// results stay bitwise comparable. Include the retry attempt in the key
// (e.g. "job#1") when a fault should clear on retry.
//
// A nil *Injector is valid and injects nothing, so call sites can thread an
// optional injector without nil checks.
type Injector struct {
	// Seed drives every decision.
	Seed int64
	// PanicRate, ErrorRate, NaNRate and DelayRate are stacked probabilities
	// in [0,1]; their sum is the total fault rate.
	PanicRate, ErrorRate, NaNRate, DelayRate float64
	// DropRate, DupRate and StaleRate stack after the job-fault rates and
	// drive the network fault classes RPC transports consult (drop, delayed
	// delivery shares DelayRate, duplicate delivery, stale-attempt
	// re-delivery). Zero rates leave every legacy (Seed, key) decision
	// bitwise unchanged.
	DropRate, DupRate, StaleRate float64
	// Delay is slept on InjectDelay hits before the wrapped work runs.
	Delay time.Duration
	// Metrics, when non-nil, counts applied injections under
	// "fault.injected.<kind>" so chaos runs report their fault pressure.
	Metrics *obs.Registry
}

// count records one applied injection on the injector's registry; decisions
// stay a pure function of (Seed, key) — only the bookkeeping is counted.
func (in *Injector) count(inj Injection) {
	if in == nil || in.Metrics == nil || inj == InjectNone {
		return
	}
	in.Metrics.Counter("fault.injected." + inj.String()).Inc()
}

// uniform maps (Seed, key) to a uniform draw in [0,1) via FNV-1a with a
// splitmix64 finalizer.
func (in *Injector) uniform(key string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", in.Seed, key)
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Decide returns the (deterministic) fault for a job key.
func (in *Injector) Decide(key string) Injection {
	if in == nil {
		return InjectNone
	}
	u := in.uniform(key)
	for _, c := range []struct {
		rate float64
		inj  Injection
	}{
		{in.PanicRate, InjectPanic},
		{in.ErrorRate, InjectError},
		{in.NaNRate, InjectNaN},
		{in.DelayRate, InjectDelay},
		// Network classes stack strictly after the legacy job classes, so
		// enabling them never re-rolls an existing chaos suite's decisions.
		{in.DropRate, InjectDrop},
		{in.DupRate, InjectDup},
		{in.StaleRate, InjectStale},
	} {
		if u < c.rate {
			return c.inj
		}
		u -= c.rate
	}
	return InjectNone
}

// RPC runs one remote call under the key's network-fault decision: InjectDrop
// fails the call with a wrapped ErrInjected before send is invoked (the
// request is "lost on the wire"), InjectDelay sleeps Delay first, InjectDup
// invokes send twice (both deliveries must be idempotent at the receiver;
// the second result is discarded), and every other decision — including the
// job-fault classes, which belong to job keys, not RPC keys — passes through
// untouched. InjectStale is reported to the caller via StaleRPC, because only
// the transport knows how to forge a stale-attempt re-delivery.
func (in *Injector) RPC(key string, send func() error) error {
	inj := in.Decide(key)
	switch inj {
	case InjectDrop:
		in.count(inj)
		return fmt.Errorf("%w rpc drop (%s)", ErrInjected, key)
	case InjectDelay:
		in.count(inj)
		time.Sleep(in.Delay)
	case InjectDup:
		in.count(inj)
		if err := send(); err != nil {
			return err
		}
	}
	return send()
}

// StaleRPC reports whether the key draws a stale-attempt re-delivery; the
// transport is responsible for forging the extra delivery (the decision is
// counted here so chaos runs report their stale pressure).
func (in *Injector) StaleRPC(key string) bool {
	if in.Decide(key) != InjectStale {
		return false
	}
	in.count(InjectStale)
	return true
}

// Invoke runs fn under the key's injection decision: InjectPanic panics
// before fn runs, InjectError returns a wrapped ErrInjected, InjectDelay
// sleeps Delay then runs fn, and InjectNone/InjectNaN run fn untouched
// (NaN poisoning applies to values, via Value). Panics escape Invoke —
// isolation is the caller's (Retry's / pool's) job, exactly as with a real
// crashing worker.
func (in *Injector) Invoke(key string, fn func() error) error {
	inj := in.Decide(key)
	in.count(inj)
	switch inj {
	case InjectPanic:
		panic(fmt.Sprintf("fault: injected panic (%s)", key))
	case InjectError:
		return fmt.Errorf("%w error (%s)", ErrInjected, key)
	case InjectDelay:
		time.Sleep(in.Delay)
	}
	return fn()
}

// Value poisons v with NaN when the key drew InjectNaN, and returns it
// untouched otherwise — the hook numerical guardrails are tested through.
func (in *Injector) Value(key string, v float64) float64 {
	if in.Decide(key) == InjectNaN {
		in.count(InjectNaN)
		return math.NaN()
	}
	return v
}
