// Package fault is AutoPilot's fault-tolerance layer. The three-phase
// pipeline is a long-running search — thousands of training jobs and
// design-point evaluations fan out through internal/pool over hours of
// simulator and accelerator-model time — and without this layer a single
// panicking worker, NaN-poisoned loss, or truncated checkpoint discards all
// completed work. The package provides the four primitives the execution
// stack (pool, train, dse) threads through:
//
//   - panic isolation: Call converts a panic into a typed *PanicError
//     carrying the recovered value and stack, so a crashing job becomes an
//     ordinary error instead of a process death;
//   - deterministic retry: Retry re-runs a job under a Policy (attempt
//     budget, capped exponential backoff, per-attempt timeout), handing each
//     attempt its index so seeds can be re-derived reproducibly
//     (AttemptSeed);
//   - numerical guardrails: CheckFinite converts silent NaN/Inf poison in
//     losses, gradients, and objectives into retryable typed errors;
//   - failure records: a Failure captures the job identity, attempt count,
//     and classified cause of a terminally failed job, so sweeps degrade
//     gracefully — they complete with a failure report instead of aborting.
//
// Everything here is deterministic: backoff schedules, attempt-derived
// seeds, and the Injector's fault decisions depend only on seeds and job
// identities, never on wall-clock time or scheduling, preserving the
// pipeline's bitwise workers=1 vs workers=N contract.
package fault

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"strings"

	"autopilot/internal/obs"
)

// Kind classifies a failure cause — the taxonomy failure reports and retry
// decisions are built on.
type Kind int

// Failure kinds.
const (
	// KindError is an ordinary error return.
	KindError Kind = iota
	// KindPanic is a recovered worker panic.
	KindPanic
	// KindNumerical is a NaN/Inf guardrail trip.
	KindNumerical
	// KindTimeout is a per-job timeout expiry.
	KindTimeout
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindNumerical:
		return "numerical"
	case KindTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// PanicError is a worker panic converted into an error: the recovered value,
// the goroutine stack at the point of the panic, and the batch index of the
// item whose job crashed (-1 when unknown).
type PanicError struct {
	Value any
	Stack []byte
	Index int
}

// Error renders the panic value; the stack is preserved separately so logs
// can include it without every wrapped message exploding.
func (e *PanicError) Error() string {
	return fmt.Sprintf("fault: panic: %v", e.Value)
}

// Unwrap exposes a panic value that was itself an error.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Call runs fn with panic isolation: a panic inside fn is recovered and
// returned as a *PanicError instead of unwinding the caller.
func Call(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack(), Index: -1}
		}
	}()
	return fn()
}

// NumericalError reports a non-finite value caught by CheckFinite.
type NumericalError struct {
	Label string  // what was being checked ("validated success rate", ...)
	Index int     // position within the checked values
	Value float64 // the offending NaN or ±Inf
}

// Error renders the guardrail trip.
func (e *NumericalError) Error() string {
	return fmt.Sprintf("fault: non-finite %s (value %d is %v)", e.Label, e.Index, e.Value)
}

// CheckFinite returns a *NumericalError for the first NaN or ±Inf among
// vals, converting silent numerical poison into a typed, retryable error.
func CheckFinite(label string, vals ...float64) error {
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &NumericalError{Label: label, Index: i, Value: v}
		}
	}
	return nil
}

// TimeoutError reports that one attempt of a job exceeded its time budget.
type TimeoutError struct {
	Job string
	Err error // the underlying context error
}

// Error renders the timeout.
func (e *TimeoutError) Error() string {
	if e.Job == "" {
		return "fault: job timed out"
	}
	return fmt.Sprintf("fault: job %s timed out", e.Job)
}

// Unwrap exposes the underlying context error.
func (e *TimeoutError) Unwrap() error { return e.Err }

// Classify maps an error onto the failure taxonomy.
func Classify(err error) Kind {
	var pe *PanicError
	var ne *NumericalError
	var te *TimeoutError
	switch {
	case errors.As(err, &ne):
		return KindNumerical
	case errors.As(err, &pe):
		return KindPanic
	case errors.As(err, &te):
		return KindTimeout
	default:
		return KindError
	}
}

// Failure is the record a degraded sweep keeps for one terminally failed
// job: its identity, how many attempts were spent, and the classified cause.
// The cause is stored rendered so records serialize cleanly into reports and
// checkpoints.
type Failure struct {
	Job      string `json:"job"`
	Attempts int    `json:"attempts"`
	Kind     Kind   `json:"kind"`
	Cause    string `json:"cause"`
}

// NewFailure builds the failure record for a job's terminal error,
// unwrapping retry bookkeeping to find the attempt count and root cause.
func NewFailure(job string, err error) Failure {
	f := Failure{Job: job, Attempts: 1}
	var re *RetryError
	if errors.As(err, &re) {
		f.Attempts = re.Attempts
		err = re.Last
	}
	f.Kind = Classify(err)
	if err != nil {
		f.Cause = err.Error()
	}
	return f
}

// String renders one failure record.
func (f Failure) String() string {
	return fmt.Sprintf("%s: %s after %d attempt(s): %s", f.Job, f.Kind, f.Attempts, f.Cause)
}

// Records converts failure records into the obs manifest representation, so
// CLIs can fold a degraded sweep's failure summary into the run manifest.
func Records(failures []Failure) []obs.FailureRecord {
	if len(failures) == 0 {
		return nil
	}
	out := make([]obs.FailureRecord, len(failures))
	for i, f := range failures {
		out[i] = obs.FailureRecord{Job: f.Job, Kind: f.Kind.String(), Attempts: f.Attempts, Cause: f.Cause}
	}
	return out
}

// Summarize renders a compact multi-line failure report, grouped by kind,
// for CLI output. It returns "" when there are no failures.
func Summarize(failures []Failure) string {
	if len(failures) == 0 {
		return ""
	}
	byKind := map[Kind]int{}
	for _, f := range failures {
		byKind[f.Kind]++
	}
	kinds := make([]Kind, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%d job(s) failed (", len(failures))
	for i, k := range kinds {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d %s", byKind[k], k)
	}
	b.WriteString("):")
	for _, f := range failures {
		fmt.Fprintf(&b, "\n  %s", f)
	}
	return b.String()
}
