package fault

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

func TestCallRecoversPanic(t *testing.T) {
	err := Call(func() error { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = {Value:%v stack:%d bytes}", pe.Value, len(pe.Stack))
	}
	if err := Call(func() error { return nil }); err != nil {
		t.Fatalf("clean call: %v", err)
	}
}

func TestCheckFinite(t *testing.T) {
	if err := CheckFinite("ok", 0, 1.5, -3); err != nil {
		t.Fatalf("finite values: %v", err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		err := CheckFinite("loss", 1, bad)
		var ne *NumericalError
		if !errors.As(err, &ne) {
			t.Fatalf("CheckFinite(%g) = %v, want *NumericalError", bad, err)
		}
		if ne.Index != 1 || ne.Label != "loss" {
			t.Fatalf("NumericalError = %+v", ne)
		}
	}
}

func TestClassifyPrecedence(t *testing.T) {
	cases := []struct {
		err  error
		want Kind
	}{
		{errors.New("plain"), KindError},
		{fmt.Errorf("wrap: %w", &PanicError{Value: "x"}), KindPanic},
		{fmt.Errorf("wrap: %w", &NumericalError{Label: "y"}), KindNumerical},
		{fmt.Errorf("wrap: %w", &TimeoutError{Err: errors.New("slow")}), KindTimeout},
		{&RetryError{Attempts: 2, Last: &PanicError{Value: "x"}}, KindPanic},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestAttemptSeed(t *testing.T) {
	if AttemptSeed(42, 0) != 42 {
		t.Fatal("attempt 0 must return the base seed unchanged")
	}
	if AttemptSeed(42, -1) != 42 {
		t.Fatal("negative attempts must return the base seed unchanged")
	}
	s1, s2 := AttemptSeed(42, 1), AttemptSeed(42, 2)
	if s1 == 42 || s2 == 42 || s1 == s2 {
		t.Fatalf("retry seeds not perturbed: %d, %d", s1, s2)
	}
	if AttemptSeed(42, 1) != s1 {
		t.Fatal("AttemptSeed is not deterministic")
	}
}

func TestBackoffSchedule(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 45 * time.Millisecond}
	want := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 45 * time.Millisecond, 45 * time.Millisecond}
	for a, w := range want {
		if got := p.Backoff(a); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", a, got, w)
		}
	}
	if (Policy{}).Backoff(3) != 0 {
		t.Error("zero policy must not sleep")
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	attempts := []int{}
	err := Retry(context.Background(), Policy{Attempts: 3}, func(_ context.Context, a int) error {
		attempts = append(attempts, a)
		if a < 2 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(attempts) != "[0 1 2]" {
		t.Fatalf("attempts = %v", attempts)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Policy{Attempts: 3}, func(_ context.Context, _ int) error {
		calls++
		return errors.New("always")
	})
	var re *RetryError
	if !errors.As(err, &re) || re.Attempts != 3 || calls != 3 {
		t.Fatalf("err = %v (calls %d), want *RetryError after 3 attempts", err, calls)
	}
}

func TestRetryZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	err := Retry(context.Background(), Policy{}, func(_ context.Context, _ int) error {
		calls++
		return boom
	})
	if calls != 1 {
		t.Fatalf("zero policy made %d attempts", calls)
	}
	if !errors.Is(err, boom) || AttemptsOf(err) != 1 {
		t.Fatalf("err = %v", err)
	}
}

func TestRetryNonRetryable(t *testing.T) {
	fatal := errors.New("fatal")
	calls := 0
	err := Retry(context.Background(), Policy{
		Attempts:  5,
		Retryable: func(err error) bool { return !errors.Is(err, fatal) },
	}, func(_ context.Context, _ int) error {
		calls++
		return fatal
	})
	if calls != 1 || !errors.Is(err, fatal) {
		t.Fatalf("non-retryable error retried: calls=%d err=%v", calls, err)
	}
}

func TestRetryIsolatesPanics(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Policy{Attempts: 2}, func(_ context.Context, _ int) error {
		calls++
		if calls == 1 {
			panic("first attempt crashes")
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("panic not retried: calls=%d err=%v", calls, err)
	}
}

func TestRetryCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retry(ctx, Policy{Attempts: 3}, func(_ context.Context, _ int) error {
		t.Fatal("fn must not run on a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestRetryPerAttemptTimeout(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Policy{Attempts: 2, Timeout: 5 * time.Millisecond},
		func(ctx context.Context, _ int) error {
			calls++
			<-ctx.Done()
			return ctx.Err()
		})
	var re *RetryError
	if !errors.As(err, &re) || calls != 2 {
		t.Fatalf("err = %v (calls %d), want exhausted retries", err, calls)
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError cause", err)
	}
	if Classify(err) != KindTimeout {
		t.Fatalf("Classify = %v, want timeout", Classify(err))
	}
}

func TestInjectorDeterministicAndDistributed(t *testing.T) {
	in := &Injector{Seed: 7, PanicRate: 0.05, ErrorRate: 0.05, NaNRate: 0.05}
	counts := map[Injection]int{}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("job%d", i)
		d := in.Decide(key)
		if d != in.Decide(key) {
			t.Fatalf("key %q: decision not deterministic", key)
		}
		counts[d]++
	}
	for _, inj := range []Injection{InjectPanic, InjectError, InjectNaN} {
		// 5% of 2000 = 100 expected; accept a generous band.
		if n := counts[inj]; n < 40 || n > 200 {
			t.Errorf("%v hit %d of 2000 keys, want ~100", inj, n)
		}
	}
	other := &Injector{Seed: 8, PanicRate: 0.05, ErrorRate: 0.05, NaNRate: 0.05}
	same := 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("job%d", i)
		if in.Decide(key) == other.Decide(key) {
			same++
		}
	}
	if same == 2000 {
		t.Error("different seeds produced identical decisions")
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	if in.Decide("x") != InjectNone {
		t.Fatal("nil injector must decide InjectNone")
	}
	if err := in.Invoke("x", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if v := in.Value("x", 1.5); v != 1.5 {
		t.Fatal("nil injector must pass values through")
	}
}

func TestInjectorInvoke(t *testing.T) {
	in := &Injector{Seed: 1, ErrorRate: 1}
	err := in.Invoke("any", func() error {
		t.Fatal("fn must not run on an injected error")
		return nil
	})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}

	in = &Injector{Seed: 1, PanicRate: 1}
	err = Call(func() error { return in.Invoke("any", func() error { return nil }) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want escaped panic captured by Call", err)
	}

	in = &Injector{Seed: 1, NaNRate: 1}
	if !math.IsNaN(in.Value("any", 3.0)) {
		t.Fatal("NaN injection did not poison the value")
	}
	if err := in.Invoke("any", func() error { return nil }); err != nil {
		t.Fatalf("NaN decision must not fail Invoke: %v", err)
	}
}

func TestFailureRecordsAndSummary(t *testing.T) {
	failures := []Failure{
		NewFailure("job-a", &RetryError{Attempts: 3, Last: &PanicError{Value: "x"}}),
		NewFailure("job-b", errors.New("plain")),
		NewFailure("job-c", fmt.Errorf("dse: %w", &NumericalError{Label: "fps", Value: math.NaN()})),
	}
	if failures[0].Attempts != 3 || failures[0].Kind != KindPanic {
		t.Fatalf("failure[0] = %+v", failures[0])
	}
	if failures[1].Attempts != 1 || failures[1].Kind != KindError {
		t.Fatalf("failure[1] = %+v", failures[1])
	}
	if failures[2].Kind != KindNumerical {
		t.Fatalf("failure[2] = %+v", failures[2])
	}
	sum := Summarize(failures)
	for _, want := range []string{"job-a", "job-b", "job-c", "panic", "numerical"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	if Summarize(nil) != "" {
		t.Error("empty failure set must summarize to the empty string")
	}
}
