package fault

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestRetryBackoffCancelReturnsImmediately pins the backoff-vs-context fix:
// a deadline expiring during a backoff sleep must abort the sleep at once —
// not run out the full schedule — and come back as a *RetryError carrying
// the attempts actually spent, with the context error still visible to
// errors.Is.
func TestRetryBackoffCancelReturnsImmediately(t *testing.T) {
	p := Policy{Attempts: 5, BaseDelay: 10 * time.Second} // schedule far beyond any test budget
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()

	calls := 0
	start := time.Now()
	err := Retry(ctx, p, func(context.Context, int) error {
		calls++
		return fmt.Errorf("transient")
	})
	elapsed := time.Since(start)

	if elapsed > 2*time.Second {
		t.Fatalf("retry slept out the backoff: returned after %v", elapsed)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (deadline hit during first backoff)", calls)
	}
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RetryError", err)
	}
	if re.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", re.Attempts)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
	if AttemptsOf(err) != 1 {
		t.Errorf("AttemptsOf = %d, want 1", AttemptsOf(err))
	}
}

// TestInjectorNetworkClassesStackAfterLegacy pins injection-surface
// compatibility: enabling the network fault classes must not re-roll any
// decision an existing (Seed, key) chaos suite already made — legacy rates
// keep their exact outcomes, and the new classes only claim keys that were
// previously InjectNone.
func TestInjectorNetworkClassesStackAfterLegacy(t *testing.T) {
	legacy := &Injector{Seed: 11, PanicRate: 0.05, ErrorRate: 0.05, NaNRate: 0.05, DelayRate: 0.05}
	stacked := &Injector{Seed: 11, PanicRate: 0.05, ErrorRate: 0.05, NaNRate: 0.05, DelayRate: 0.05,
		DropRate: 0.1, DupRate: 0.1, StaleRate: 0.1}

	counts := map[Injection]int{}
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("rpc%d", i)
		was, now := legacy.Decide(key), stacked.Decide(key)
		counts[now]++
		if was != InjectNone && now != was {
			t.Fatalf("key %q: legacy decision %v re-rolled to %v", key, was, now)
		}
		if was == InjectNone && !(now == InjectNone || now == InjectDrop || now == InjectDup || now == InjectStale) {
			t.Fatalf("key %q: network rates promoted a None key to job class %v", key, now)
		}
	}
	for _, inj := range []Injection{InjectDrop, InjectDup, InjectStale} {
		if counts[inj] == 0 {
			t.Errorf("no %v decisions in 4000 keys at 10%% rate", inj)
		}
	}
}

// TestInjectorRPC pins the transport hooks: drop fails before send, dup
// invokes send twice, delay sleeps then sends once, and a clean key passes
// through exactly once. Nil injectors are inert.
func TestInjectorRPC(t *testing.T) {
	var nilIn *Injector
	sends := 0
	if err := nilIn.RPC("any", func() error { sends++; return nil }); err != nil || sends != 1 {
		t.Fatalf("nil injector: err=%v sends=%d", err, sends)
	}
	if nilIn.StaleRPC("any") {
		t.Fatal("nil injector drew a stale delivery")
	}

	// With DropRate 1 every key drops; send must never run.
	drop := &Injector{Seed: 3, DropRate: 1}
	sends = 0
	err := drop.RPC("k", func() error { sends++; return nil })
	if !errors.Is(err, ErrInjected) || sends != 0 {
		t.Fatalf("drop: err=%v sends=%d, want ErrInjected and 0 sends", err, sends)
	}

	dup := &Injector{Seed: 3, DupRate: 1}
	sends = 0
	if err := dup.RPC("k", func() error { sends++; return nil }); err != nil || sends != 2 {
		t.Fatalf("dup: err=%v sends=%d, want nil and 2 sends", err, sends)
	}
	// A failing first delivery short-circuits the duplicate.
	sends = 0
	wantErr := fmt.Errorf("boom")
	if err := dup.RPC("k", func() error { sends++; return wantErr }); !errors.Is(err, wantErr) || sends != 1 {
		t.Fatalf("dup-fail: err=%v sends=%d, want boom and 1 send", err, sends)
	}

	stale := &Injector{Seed: 3, StaleRate: 1}
	if !stale.StaleRPC("k") {
		t.Fatal("StaleRate 1 did not draw a stale delivery")
	}
	sends = 0
	if err := stale.RPC("k", func() error { sends++; return nil }); err != nil || sends != 1 {
		t.Fatalf("stale passes RPC through: err=%v sends=%d", err, sends)
	}
}
