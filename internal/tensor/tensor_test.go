package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Len() != 6 {
		t.Fatalf("Len = %d, want 6", x.Len())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %g, want 0", i, v)
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive dimension")
		}
	}()
	New(2, 0)
}

func TestFromSliceAndAtSet(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := x.At(1, 2); got != 6 {
		t.Fatalf("At(1,2) = %g, want 6", got)
	}
	x.Set(9, 0, 1)
	if got := x.At(0, 1); got != 9 {
		t.Fatalf("At(0,1) = %g, want 9", got)
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Set(7, 2)
	if x.At(1, 0) != 7 {
		t.Fatal("reshape must share underlying data")
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.Reshape(3)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("clone must not share data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := Add(a, b); !Equal(got, FromSlice([]float64{5, 7, 9}, 3), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); !Equal(got, FromSlice([]float64{3, 3, 3}, 3), 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := Mul(a, b); !Equal(got, FromSlice([]float64{4, 10, 18}, 3), 0) {
		t.Errorf("Mul = %v", got)
	}
	if got := Scale(2, a); !Equal(got, FromSlice([]float64{2, 4, 6}, 3), 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
}

func TestAxpyInPlace(t *testing.T) {
	a := FromSlice([]float64{1, 1}, 2)
	b := FromSlice([]float64{2, 3}, 2)
	a.AxpyInPlace(0.5, b)
	if !Equal(a, FromSlice([]float64{2, 2.5}, 2), 1e-12) {
		t.Fatalf("Axpy = %v", a)
	}
}

func TestSumMaxArgMax(t *testing.T) {
	a := FromSlice([]float64{3, -1, 7, 2}, 4)
	if a.Sum() != 11 {
		t.Errorf("Sum = %g", a.Sum())
	}
	v, i := a.Max()
	if v != 7 || i != 2 {
		t.Errorf("Max = %g at %d", v, i)
	}
	if a.ArgMax() != 2 {
		t.Errorf("ArgMax = %d", a.ArgMax())
	}
}

func TestNorm2(t *testing.T) {
	a := FromSlice([]float64{3, 4}, 2)
	if math.Abs(a.Norm2()-5) > 1e-12 {
		t.Fatalf("Norm2 = %g, want 5", a.Norm2())
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !Equal(got, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	got := Transpose(a)
	want := FromSlice([]float64{1, 4, 2, 5, 3, 6}, 3, 2)
	if !Equal(got, want, 0) {
		t.Fatalf("Transpose = %v", got)
	}
}

func TestTransposeInvolution(t *testing.T) {
	g := NewRNG(1)
	f := func(seed uint8) bool {
		m, n := 1+int(seed%7), 1+int(seed/7%9)
		a := g.Randn(1, m, n)
		return Equal(Transpose(Transpose(a)), a, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulIdentityProperty(t *testing.T) {
	g := NewRNG(2)
	f := func(seed uint8) bool {
		n := 1 + int(seed%8)
		a := g.Randn(1, n, n)
		id := New(n, n)
		for i := 0; i < n; i++ {
			id.Set(1, i, i)
		}
		return Equal(MatMul(a, id), a, 1e-9) && Equal(MatMul(id, a), a, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulDistributesOverAdd(t *testing.T) {
	g := NewRNG(3)
	f := func(seed uint8) bool {
		m, k, n := 1+int(seed%4), 1+int(seed/4%4), 1+int(seed/16%4)
		a := g.Randn(1, m, k)
		b := g.Randn(1, k, n)
		c := g.Randn(1, k, n)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApply(t *testing.T) {
	a := FromSlice([]float64{1, -2}, 2)
	got := Apply(a, math.Abs)
	if !Equal(got, FromSlice([]float64{1, 2}, 2), 0) {
		t.Fatalf("Apply = %v", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42).Randn(1, 5)
	b := NewRNG(42).Randn(1, 5)
	if !Equal(a, b, 0) {
		t.Fatal("same seed must produce identical tensors")
	}
	c := NewRNG(43).Randn(1, 5)
	if Equal(a, c, 0) {
		t.Fatal("different seeds should produce different tensors")
	}
}

func TestRNGUniformRange(t *testing.T) {
	u := NewRNG(7).Uniform(-2, 3, 1000)
	for _, v := range u.Data() {
		if v < -2 || v >= 3 {
			t.Fatalf("uniform sample %g out of [-2,3)", v)
		}
	}
}

func TestFillZero(t *testing.T) {
	a := New(3)
	a.Fill(2.5)
	if a.Sum() != 7.5 {
		t.Fatalf("Fill: sum = %g", a.Sum())
	}
	a.Zero()
	if a.Sum() != 0 {
		t.Fatalf("Zero: sum = %g", a.Sum())
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if Equal(New(2, 3), New(3, 2), 1) {
		t.Fatal("different shapes must not compare equal")
	}
	if Equal(New(2), New(2, 1), 1) {
		t.Fatal("different ranks must not compare equal")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	if s := FromSlice([]float64{1, 2}, 2).String(); s == "" {
		t.Fatal("empty String()")
	}
	if s := New(100).String(); s == "" {
		t.Fatal("empty String() for large tensor")
	}
}
