package tensor

import (
	"testing"
	"testing/quick"
)

func TestConvDimsOutput(t *testing.T) {
	d := ConvDims{InC: 3, InH: 32, InW: 32, OutC: 8, K: 3, Stride: 2, Pad: 1}
	if d.OutH() != 16 || d.OutW() != 16 {
		t.Fatalf("out = %dx%d, want 16x16", d.OutH(), d.OutW())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestConvDimsValidateErrors(t *testing.T) {
	cases := []ConvDims{
		{InC: 0, InH: 8, InW: 8, OutC: 1, K: 3, Stride: 1},
		{InC: 1, InH: 2, InW: 2, OutC: 1, K: 5, Stride: 1}, // kernel larger than input
		{InC: 1, InH: 8, InW: 8, OutC: 1, K: 3, Stride: 0},
		{InC: 1, InH: 8, InW: 8, OutC: 1, K: 3, Stride: 1, Pad: -1},
	}
	for i, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d (%+v): expected error", i, d)
		}
	}
}

func TestConvDimsMACs(t *testing.T) {
	d := ConvDims{InC: 2, InH: 4, InW: 4, OutC: 3, K: 3, Stride: 1, Pad: 1}
	// 3 out channels * 4*4 output * 2 in channels * 9 kernel = 864
	if got := d.MACs(); got != 864 {
		t.Fatalf("MACs = %d, want 864", got)
	}
}

// Reference direct convolution for cross-checking im2col+matmul.
func convDirect(in, w *Tensor, d ConvDims) *Tensor {
	oh, ow := d.OutH(), d.OutW()
	out := New(d.OutC, oh, ow)
	for oc := 0; oc < d.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := 0.0
				for ic := 0; ic < d.InC; ic++ {
					for ky := 0; ky < d.K; ky++ {
						iy := oy*d.Stride + ky - d.Pad
						if iy < 0 || iy >= d.InH {
							continue
						}
						for kx := 0; kx < d.K; kx++ {
							ix := ox*d.Stride + kx - d.Pad
							if ix < 0 || ix >= d.InW {
								continue
							}
							sum += in.At(ic, iy, ix) * w.At(oc, ic, ky, kx)
						}
					}
				}
				out.Set(sum, oc, oy, ox)
			}
		}
	}
	return out
}

func TestIm2colMatchesDirectConv(t *testing.T) {
	g := NewRNG(11)
	geoms := []ConvDims{
		{InC: 1, InH: 5, InW: 5, OutC: 2, K: 3, Stride: 1, Pad: 0},
		{InC: 3, InH: 8, InW: 8, OutC: 4, K: 3, Stride: 2, Pad: 1},
		{InC: 2, InH: 7, InW: 9, OutC: 3, K: 5, Stride: 2, Pad: 2},
		{InC: 4, InH: 6, InW: 6, OutC: 1, K: 1, Stride: 1, Pad: 0},
	}
	for _, d := range geoms {
		in := g.Randn(1, d.InC, d.InH, d.InW)
		w := g.Randn(1, d.OutC, d.InC, d.K, d.K)
		cols := Im2col(in, d)
		wm := w.Reshape(d.OutC, d.InC*d.K*d.K)
		got := MatMul(wm, cols).Reshape(d.OutC, d.OutH(), d.OutW())
		want := convDirect(in, w, d)
		if !Equal(got, want, 1e-9) {
			t.Fatalf("geom %+v: im2col conv != direct conv", d)
		}
	}
}

func TestCol2imAdjointProperty(t *testing.T) {
	// <Im2col(x), y> == <x, Col2im(y)> for all x, y — the defining property
	// of an adjoint pair, which the conv backward pass relies on.
	g := NewRNG(12)
	d := ConvDims{InC: 2, InH: 6, InW: 6, OutC: 3, K: 3, Stride: 2, Pad: 1}
	f := func(seed uint8) bool {
		_ = seed
		x := g.Randn(1, d.InC, d.InH, d.InW)
		y := g.Randn(1, d.InC*d.K*d.K, d.OutH()*d.OutW())
		lhs := Dot(Im2col(x, d).Reshape(y.Len()), y.Reshape(y.Len()))
		rhs := Dot(x.Reshape(x.Len()), Col2im(y, d).Reshape(x.Len()))
		return absf(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestIm2colWrongLenPanics(t *testing.T) {
	d := ConvDims{InC: 1, InH: 4, InW: 4, OutC: 1, K: 3, Stride: 1, Pad: 0}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Im2col(New(5), d)
}

func TestCol2imWrongLenPanics(t *testing.T) {
	d := ConvDims{InC: 1, InH: 4, InW: 4, OutC: 1, K: 3, Stride: 1, Pad: 0}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Col2im(New(5), d)
}
