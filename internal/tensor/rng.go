package tensor

import "math/rand"

// RNG is a deterministic random source for reproducible experiments.
// It wraps math/rand with convenience constructors for tensors.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG with the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Randn returns a tensor with i.i.d. N(0, std²) entries.
func (g *RNG) Randn(std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = g.r.NormFloat64() * std
	}
	return t
}

// Uniform returns a tensor with i.i.d. U[lo, hi) entries.
func (g *RNG) Uniform(lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*g.r.Float64()
	}
	return t
}
