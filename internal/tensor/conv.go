package tensor

import "fmt"

// ConvDims describes the geometry of a 2-D convolution with square kernels.
type ConvDims struct {
	InC, InH, InW int // input channels, height, width
	OutC          int // output channels (number of filters)
	K             int // kernel size (K×K)
	Stride        int
	Pad           int
}

// OutH returns the output height for the convolution geometry.
func (d ConvDims) OutH() int { return (d.InH+2*d.Pad-d.K)/d.Stride + 1 }

// OutW returns the output width for the convolution geometry.
func (d ConvDims) OutW() int { return (d.InW+2*d.Pad-d.K)/d.Stride + 1 }

// Validate reports whether the geometry produces a non-empty output.
func (d ConvDims) Validate() error {
	if d.InC <= 0 || d.InH <= 0 || d.InW <= 0 || d.OutC <= 0 || d.K <= 0 || d.Stride <= 0 || d.Pad < 0 {
		return fmt.Errorf("tensor: invalid conv dims %+v", d)
	}
	if d.OutH() <= 0 || d.OutW() <= 0 {
		return fmt.Errorf("tensor: conv dims %+v produce empty output %dx%d", d, d.OutH(), d.OutW())
	}
	return nil
}

// MACs returns the number of multiply-accumulate operations for one inference
// of the convolution. This is what the systolic-array simulator and the
// policy complexity analysis consume.
func (d ConvDims) MACs() int64 {
	return int64(d.OutC) * int64(d.OutH()) * int64(d.OutW()) * int64(d.InC) * int64(d.K) * int64(d.K)
}

// Im2col unrolls input (InC×InH×InW, flattened row-major) into a matrix of
// shape (InC*K*K) × (OutH*OutW) so convolution becomes a matrix product
// weights(OutC × InC*K*K) · cols.
func Im2col(in *Tensor, d ConvDims) *Tensor {
	if in.Len() != d.InC*d.InH*d.InW {
		panic(fmt.Sprintf("tensor: Im2col input len %d, want %d", in.Len(), d.InC*d.InH*d.InW))
	}
	oh, ow := d.OutH(), d.OutW()
	rows := d.InC * d.K * d.K
	cols := oh * ow
	out := New(rows, cols)
	for c := 0; c < d.InC; c++ {
		for ky := 0; ky < d.K; ky++ {
			for kx := 0; kx < d.K; kx++ {
				row := (c*d.K+ky)*d.K + kx
				for oy := 0; oy < oh; oy++ {
					iy := oy*d.Stride + ky - d.Pad
					if iy < 0 || iy >= d.InH {
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*d.Stride + kx - d.Pad
						if ix < 0 || ix >= d.InW {
							continue
						}
						out.data[row*cols+oy*ow+ox] = in.data[(c*d.InH+iy)*d.InW+ix]
					}
				}
			}
		}
	}
	return out
}

// Col2im scatters a (InC*K*K) × (OutH*OutW) gradient matrix back onto the
// input layout, accumulating overlapping contributions. It is the adjoint of
// Im2col and is used by the convolution backward pass.
func Col2im(cols *Tensor, d ConvDims) *Tensor {
	oh, ow := d.OutH(), d.OutW()
	rows := d.InC * d.K * d.K
	ncols := oh * ow
	if cols.Len() != rows*ncols {
		panic(fmt.Sprintf("tensor: Col2im input len %d, want %d", cols.Len(), rows*ncols))
	}
	out := New(d.InC, d.InH, d.InW)
	for c := 0; c < d.InC; c++ {
		for ky := 0; ky < d.K; ky++ {
			for kx := 0; kx < d.K; kx++ {
				row := (c*d.K+ky)*d.K + kx
				for oy := 0; oy < oh; oy++ {
					iy := oy*d.Stride + ky - d.Pad
					if iy < 0 || iy >= d.InH {
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*d.Stride + kx - d.Pad
						if ix < 0 || ix >= d.InW {
							continue
						}
						out.data[(c*d.InH+iy)*d.InW+ix] += cols.data[row*ncols+oy*ow+ox]
					}
				}
			}
		}
	}
	return out
}
