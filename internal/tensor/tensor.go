// Package tensor provides the minimal dense float64 tensor math used by the
// neural-network and reinforcement-learning substrates. It is deliberately
// small: shapes, element access, matrix multiplication, and the im2col
// transform needed for 2-D convolutions. Everything is deterministic given a
// seeded RNG so experiments are reproducible.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major float64 tensor.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape.
// A tensor with no dimensions is a scalar holding one element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float64, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); callers must not alias it unless they intend to.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v requires %d elements, got %d", shape, n, len(data)))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not be modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage in row-major order.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of t with a new shape covering the same elements.
// The underlying data is shared.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}
}

func (t *Tensor) index(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.index(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.index(idx)] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// AddInPlace adds o element-wise into t.
func (t *Tensor) AddInPlace(o *Tensor) {
	mustSameLen(t, o, "AddInPlace")
	for i, v := range o.data {
		t.data[i] += v
	}
}

// SubInPlace subtracts o element-wise from t.
func (t *Tensor) SubInPlace(o *Tensor) {
	mustSameLen(t, o, "SubInPlace")
	for i, v := range o.data {
		t.data[i] -= v
	}
}

// ScaleInPlace multiplies every element by a.
func (t *Tensor) ScaleInPlace(a float64) {
	for i := range t.data {
		t.data[i] *= a
	}
}

// AxpyInPlace computes t += a*o element-wise.
func (t *Tensor) AxpyInPlace(a float64, o *Tensor) {
	mustSameLen(t, o, "AxpyInPlace")
	for i, v := range o.data {
		t.data[i] += a * v
	}
}

// Add returns t + o element-wise.
func Add(t, o *Tensor) *Tensor {
	mustSameLen(t, o, "Add")
	r := t.Clone()
	r.AddInPlace(o)
	return r
}

// Sub returns t - o element-wise.
func Sub(t, o *Tensor) *Tensor {
	mustSameLen(t, o, "Sub")
	r := t.Clone()
	r.SubInPlace(o)
	return r
}

// Mul returns the element-wise (Hadamard) product of t and o.
func Mul(t, o *Tensor) *Tensor {
	mustSameLen(t, o, "Mul")
	r := t.Clone()
	for i, v := range o.data {
		r.data[i] *= v
	}
	return r
}

// Scale returns a*t.
func Scale(a float64, t *Tensor) *Tensor {
	r := t.Clone()
	r.ScaleInPlace(a)
	return r
}

// Apply returns a new tensor with f applied to every element.
func Apply(t *Tensor, f func(float64) float64) *Tensor {
	r := New(t.shape...)
	for i, v := range t.data {
		r.data[i] = f(v)
	}
	return r
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Max returns the maximum element and its flat index.
func (t *Tensor) Max() (float64, int) {
	best, arg := math.Inf(-1), -1
	for i, v := range t.data {
		if v > best {
			best, arg = v, i
		}
	}
	return best, arg
}

// Dot returns the inner product of two equal-length tensors.
func Dot(a, b *Tensor) float64 {
	mustSameLen(a, b, "Dot")
	s := 0.0
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MatMul returns the matrix product of a (m×k) and b (k×n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims mismatch %d vs %d", k, k2))
	}
	out := New(m, n)
	// ikj loop order: streams through b rows, cache friendly.
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// ConcatCols concatenates rank-2 tensors with equal row counts side by side
// into one (rows, Σcols) matrix. MatMul against the result prices every
// constituent in a single pass, and each output column is bitwise identical
// to multiplying the constituent alone — the property the batched network
// forward relies on.
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatCols of nothing")
	}
	rows := ts[0].shape[0]
	cols := 0
	for _, t := range ts {
		if t.Rank() != 2 {
			panic("tensor: ConcatCols requires rank-2 tensors")
		}
		if t.shape[0] != rows {
			panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", t.shape[0], rows))
		}
		cols += t.shape[1]
	}
	out := New(rows, cols)
	off := 0
	for _, t := range ts {
		w := t.shape[1]
		for r := 0; r < rows; r++ {
			copy(out.data[r*cols+off:r*cols+off+w], t.data[r*w:(r+1)*w])
		}
		off += w
	}
	return out
}

// SplitCols slices a rank-2 tensor into column blocks of the given widths
// (which must sum to the column count), undoing ConcatCols. Each block is a
// fresh tensor.
func SplitCols(t *Tensor, widths ...int) []*Tensor {
	if t.Rank() != 2 {
		panic("tensor: SplitCols requires a rank-2 tensor")
	}
	rows, cols := t.shape[0], t.shape[1]
	total := 0
	for _, w := range widths {
		total += w
	}
	if total != cols {
		panic(fmt.Sprintf("tensor: SplitCols widths sum to %d, want %d", total, cols))
	}
	out := make([]*Tensor, len(widths))
	off := 0
	for i, w := range widths {
		b := New(rows, w)
		for r := 0; r < rows; r++ {
			copy(b.data[r*w:(r+1)*w], t.data[r*cols+off:r*cols+off+w])
		}
		out[i] = b
		off += w
	}
	return out
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose requires a rank-2 tensor")
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// ArgMax returns the flat index of the maximum element.
func (t *Tensor) ArgMax() int {
	_, i := t.Max()
	return i
}

// Equal reports whether two tensors have identical shape and elements within tol.
func Equal(a, b *Tensor, tol float64) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small tensors for debugging.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g ... %g]", t.data[0], t.data[1], t.data[len(t.data)-1])
	}
	return b.String()
}

func mustSameLen(a, b *Tensor, op string) {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: %s length mismatch %v vs %v", op, a.shape, b.shape))
	}
}
