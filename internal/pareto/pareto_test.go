package pareto

import (
	"math"
	"testing"
	"testing/quick"

	"autopilot/internal/tensor"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict improvement
		{[]float64{1, 1}, []float64{1, 2}, true},
		{[]float64{2, 2}, []float64{1, 1}, false},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDominatesDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dominates([]float64{1}, []float64{1, 2})
}

func TestWeaklyDominates(t *testing.T) {
	if !WeaklyDominates([]float64{1, 1}, []float64{1, 1}) {
		t.Error("equal points weakly dominate each other")
	}
	if WeaklyDominates([]float64{2, 1}, []float64{1, 1}) {
		t.Error("worse point must not weakly dominate")
	}
}

func TestNonDominatedSimpleFront(t *testing.T) {
	pts := [][]float64{
		{1, 5}, // front
		{3, 3}, // front
		{5, 1}, // front
		{4, 4}, // dominated by (3,3)
		{6, 6}, // dominated
	}
	idx := NonDominated(pts)
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 1 || idx[2] != 2 {
		t.Fatalf("NonDominated = %v", idx)
	}
}

func TestNonDominatedAntisymmetry(t *testing.T) {
	g := tensor.NewRNG(1)
	f := func(seed uint8) bool {
		_ = seed
		n := 2 + g.Intn(10)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{g.Float64(), g.Float64(), g.Float64()}
		}
		// no point on the returned front may dominate another front point
		idx := NonDominated(pts)
		for _, i := range idx {
			for _, j := range idx {
				if i != j && Dominates(pts[i], pts[j]) {
					return false
				}
			}
		}
		// every excluded point must be dominated by someone
		inFront := map[int]bool{}
		for _, i := range idx {
			inFront[i] = true
		}
		for i := range pts {
			if inFront[i] {
				continue
			}
			dominated := false
			for j := range pts {
				if i != j && Dominates(pts[j], pts[i]) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHypervolume1D(t *testing.T) {
	hv := Hypervolume([][]float64{{2}, {5}}, []float64{10})
	if math.Abs(hv-8) > 1e-12 {
		t.Fatalf("hv = %g, want 8", hv)
	}
}

func TestHypervolume2DKnown(t *testing.T) {
	// front (1,3), (2,2), (3,1), ref (4,4):
	// boxes: (4-1)(4-3)=3 plus (4-2)(3-2)=2 plus (4-3)(2-1)=1 → 6
	pts := [][]float64{{1, 3}, {2, 2}, {3, 1}}
	hv := Hypervolume(pts, []float64{4, 4})
	if math.Abs(hv-6) > 1e-12 {
		t.Fatalf("hv = %g, want 6", hv)
	}
}

func TestHypervolume3DKnown(t *testing.T) {
	// two non-overlapping unit cubes at (0,0,0) and ref (2,2,2):
	// single point (1,1,1) → volume 1; point (0,0,0) → volume 8
	if hv := Hypervolume([][]float64{{1, 1, 1}}, []float64{2, 2, 2}); math.Abs(hv-1) > 1e-12 {
		t.Fatalf("hv = %g, want 1", hv)
	}
	if hv := Hypervolume([][]float64{{0, 0, 0}}, []float64{2, 2, 2}); math.Abs(hv-8) > 1e-12 {
		t.Fatalf("hv = %g, want 8", hv)
	}
	// overlapping pair: (0,1,1) and (1,0,1), ref (2,2,2)
	// inclusive volumes 2·1·1=2 each, intersection (1,1,1)-box = 1·1·1=1 → union 3
	hv := Hypervolume([][]float64{{0, 1, 1}, {1, 0, 1}}, []float64{2, 2, 2})
	if math.Abs(hv-3) > 1e-12 {
		t.Fatalf("hv = %g, want 3", hv)
	}
}

func TestHypervolumeDominatedPointNoEffect(t *testing.T) {
	pts := [][]float64{{1, 3}, {3, 1}}
	ref := []float64{4, 4}
	base := Hypervolume(pts, ref)
	with := Hypervolume(append(pts, []float64{3.5, 3.5}), ref)
	if math.Abs(base-with) > 1e-12 {
		t.Fatalf("dominated point changed hv: %g vs %g", base, with)
	}
}

func TestHypervolumePointOutsideRefIgnored(t *testing.T) {
	pts := [][]float64{{1, 1}}
	ref := []float64{2, 2}
	base := Hypervolume(pts, ref)
	with := Hypervolume(append(pts, []float64{5, 0.5}), ref)
	if with < base {
		t.Fatalf("hv decreased: %g -> %g", base, with)
	}
}

func TestHypervolumeMonotoneUnderAddition(t *testing.T) {
	g := tensor.NewRNG(2)
	ref := []float64{1, 1, 1}
	f := func(seed uint8) bool {
		_ = seed
		n := 1 + g.Intn(8)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{g.Float64(), g.Float64(), g.Float64()}
		}
		base := Hypervolume(pts, ref)
		extra := []float64{g.Float64(), g.Float64(), g.Float64()}
		with := Hypervolume(append(pts, extra), ref)
		return with >= base-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHypervolumeBoundedByRefBox(t *testing.T) {
	g := tensor.NewRNG(3)
	ref := []float64{1, 1}
	f := func(seed uint8) bool {
		_ = seed
		n := 1 + g.Intn(10)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{g.Float64(), g.Float64()}
		}
		hv := Hypervolume(pts, ref)
		return hv >= 0 && hv <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestContribution(t *testing.T) {
	pts := [][]float64{{1, 3}, {3, 1}}
	ref := []float64{4, 4}
	// (2,2) adds the box [2,3]×[2,3] → 1
	c := Contribution(pts, []float64{2, 2}, ref)
	if math.Abs(c-1) > 1e-12 {
		t.Fatalf("contribution = %g, want 1", c)
	}
	// a dominated point contributes nothing
	if c := Contribution(pts, []float64{3.9, 3.9}, ref); math.Abs(c) > 1e-12 {
		t.Fatalf("dominated contribution = %g, want 0", c)
	}
}

func TestContributionDoesNotMutateInput(t *testing.T) {
	pts := [][]float64{{1, 3}, {3, 1}}
	Contribution(pts, []float64{2, 2}, []float64{4, 4})
	if len(pts) != 2 {
		t.Fatal("input slice length changed")
	}
}

func TestFilterEmpty(t *testing.T) {
	if got := Filter(nil); len(got) != 0 {
		t.Fatalf("Filter(nil) = %v", got)
	}
	if hv := Hypervolume(nil, []float64{1, 1}); hv != 0 {
		t.Fatalf("empty hv = %g", hv)
	}
}
