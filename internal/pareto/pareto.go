// Package pareto provides multi-objective dominance utilities and exact
// hypervolume computation (the WFG algorithm), which the SMS-EGO acquisition
// function in the Bayesian optimizer maximizes. All objectives are
// minimized; callers negate objectives they want to maximize (e.g. task
// success rate).
package pareto

import "fmt"

// Dominates reports whether a Pareto-dominates b under minimization:
// a is no worse in every objective and strictly better in at least one.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		panic(fmt.Sprintf("pareto: dimension mismatch %d vs %d", len(a), len(b)))
	}
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// WeaklyDominates reports whether a is no worse than b in every objective.
func WeaklyDominates(a, b []float64) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// NonDominated returns the indices of the non-dominated points, preserving
// input order. Duplicate points are all kept.
func NonDominated(points [][]float64) []int {
	var keep []int
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			keep = append(keep, i)
		}
	}
	return keep
}

// Filter returns the non-dominated subset of points.
func Filter(points [][]float64) [][]float64 {
	idx := NonDominated(points)
	out := make([][]float64, 0, len(idx))
	for _, i := range idx {
		out = append(out, points[i])
	}
	return out
}

// Hypervolume returns the volume of objective space dominated by the point
// set and bounded by the reference point (which must be weakly worse than
// every point in every objective). Points outside the reference box
// contribute only their clipped part; fully dominated points contribute
// nothing extra.
func Hypervolume(points [][]float64, ref []float64) float64 {
	var clipped [][]float64
	for _, p := range points {
		if len(p) != len(ref) {
			panic(fmt.Sprintf("pareto: point dim %d vs ref dim %d", len(p), len(ref)))
		}
		inside := true
		for i := range p {
			if p[i] >= ref[i] {
				inside = false
				break
			}
		}
		if inside {
			clipped = append(clipped, p)
		}
	}
	front := Filter(clipped)
	return wfg(front, ref)
}

// wfg implements the WFG exact hypervolume recursion.
func wfg(front [][]float64, ref []float64) float64 {
	total := 0.0
	for i, p := range front {
		total += exclusive(p, front[i+1:], ref)
	}
	return total
}

// exclusive returns the volume dominated by p and by none of rest.
func exclusive(p []float64, rest [][]float64, ref []float64) float64 {
	return inclusive(p, ref) - wfg(Filter(limitSet(rest, p)), ref)
}

// inclusive returns the box volume between p and ref.
func inclusive(p []float64, ref []float64) float64 {
	v := 1.0
	for i := range p {
		v *= ref[i] - p[i]
	}
	return v
}

// limitSet projects every point of s onto the region dominated by p.
func limitSet(s [][]float64, p []float64) [][]float64 {
	out := make([][]float64, len(s))
	for i, q := range s {
		m := make([]float64, len(q))
		for j := range q {
			if q[j] > p[j] {
				m[j] = q[j]
			} else {
				m[j] = p[j]
			}
		}
		out[i] = m
	}
	return out
}

// Contribution returns the increase in hypervolume from adding point p to
// the set — the quantity SMS-EGO maximizes.
func Contribution(points [][]float64, p []float64, ref []float64) float64 {
	base := Hypervolume(points, ref)
	with := Hypervolume(append(append([][]float64{}, points...), p), ref)
	return with - base
}
