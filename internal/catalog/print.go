package catalog

import (
	"fmt"
	"io"
)

// WriteTable renders the full component catalog for terminals — what the
// CLIs print for -catalog.
func WriteTable(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("airframes:\n")
	p("  %-10s %-18s %-5s %8s %8s %10s %10s %s\n",
		"name", "label", "class", "frame g", "thrust N", "payload g", "other W", "defaults")
	for _, a := range Airframes() {
		p("  %-10s %-18s %-5s %8.0f %8.2f %10.0f %10.2f %s+%s\n",
			a.Name, a.Label, a.Class, a.FrameWeightG, a.MaxThrustN,
			a.MaxPayloadG, a.OtherPowerW, a.DefaultBattery, a.DefaultSensor)
	}
	p("batteries:\n")
	p("  %-14s %-18s %8s %6s %8s %10s %10s\n",
		"name", "label", "mAh", "V", "g", "energy J", "max W")
	for _, b := range Batteries() {
		p("  %-14s %-18s %8.0f %6.1f %8.0f %10.0f %10.0f\n",
			b.Name, b.Label, b.CapacitymAh, b.VoltageV, b.WeightG, b.EnergyJ(), b.MaxDischargeW)
	}
	p("sensors:\n")
	p("  %-14s %-20s %8s %6s %s\n", "name", "label", "mW", "g", "modes")
	for _, s := range Sensors() {
		p("  %-14s %-20s %8.0f %6.1f ", s.Name, s.Label, 1000*s.PowerW, s.WeightG)
		for i, m := range s.Modes {
			if i > 0 {
				p(", ")
			}
			p("%dx%d@%.0f", m.Width, m.Height, m.FPS)
		}
		p("\n")
	}
	p("boards:\n")
	p("  %-14s %-14s %8s %6s %10s %10s\n", "name", "label", "W", "g", "GB/s", "pinned FPS")
	for _, b := range Boards() {
		p("  %-14s %-14s %8.3f %6.0f %10.2f %10.0f\n",
			b.Name, b.Label, b.PowerW, b.WeightG, b.SustainedGBps, b.PinnedFPS)
	}
	return err
}
