// Package catalog is the typed component catalog the full-vehicle co-design
// layer searches over: real batteries, camera sensors, compute boards, and
// airframes, each validated on its own terms, composed into a Loadout with a
// single SWaP feasibility check (structural payload budget, thrust-to-weight
// floor, battery discharge limit). It is the base vehicle layer — internal/uav
// platforms, internal/mission's energy model, and the dse vehicle axes are all
// thin views over these entries, so the weight, thrust, and battery-energy
// arithmetic lives in exactly one place.
package catalog

import (
	"fmt"
	"sort"
)

// Gravity is standard gravitational acceleration (m/s²).
const Gravity = 9.81

// ThrustMarginFloor is the minimum thrust-to-weight ratio for control
// authority: a loadout must hover with at least 15% thrust margin.
const ThrustMarginFloor = 1.15

// LiftOK reports whether thrustN can lift massKg with the thrust-to-weight
// floor — the one lift inequality uav.Platform.CanLift and the Loadout
// feasibility check share.
func LiftOK(thrustN, massKg float64) bool {
	return thrustN >= ThrustMarginFloor*massKg*Gravity
}

// Battery is one LiPo pack. EnergyJ is the single battery-energy conversion
// every consumer (uav.Platform.BatteryJ, the mission model) routes through.
type Battery struct {
	Name          string // catalog key, e.g. "lipo-3s-6250"
	Label         string // display name
	CapacitymAh   float64
	VoltageV      float64
	WeightG       float64
	MaxDischargeW float64 // continuous discharge limit; 0 = unlimited
}

// EnergyJ returns the rated pack energy in joules.
func (b Battery) EnergyJ() float64 {
	return b.CapacitymAh / 1000 * b.VoltageV * 3600
}

// Validate checks the pack definition.
func (b Battery) Validate() error {
	if b.Name == "" || b.CapacitymAh <= 0 || b.VoltageV <= 0 || b.WeightG <= 0 {
		return fmt.Errorf("catalog: implausible battery %+v", b)
	}
	if b.MaxDischargeW < 0 {
		return fmt.Errorf("catalog: negative discharge limit on battery %s", b.Name)
	}
	return nil
}

// SensorMode is one (resolution, frame-rate) operating point.
type SensorMode struct {
	Width, Height int
	FPS           float64
}

// PixelRate returns pixels per second in the mode.
func (m SensorMode) PixelRate() float64 {
	return float64(m.Width) * float64(m.Height) * m.FPS
}

// Sensor is an onboard camera.
type Sensor struct {
	Name    string
	Label   string
	PowerW  float64
	WeightG float64
	Modes   []SensorMode
}

// MaxFPS returns the fastest mode's frame rate.
func (s Sensor) MaxFPS() float64 {
	best := 0.0
	for _, m := range s.Modes {
		if m.FPS > best {
			best = m.FPS
		}
	}
	return best
}

// Validate checks the sensor definition.
func (s Sensor) Validate() error {
	if s.Name == "" || s.PowerW <= 0 || s.WeightG <= 0 || len(s.Modes) == 0 {
		return fmt.Errorf("catalog: implausible sensor %+v", s)
	}
	for _, m := range s.Modes {
		if m.Width <= 0 || m.Height <= 0 || m.FPS <= 0 {
			return fmt.Errorf("catalog: sensor %s has implausible mode %+v", s.Name, m)
		}
	}
	return nil
}

// ComputeBoard is a fixed compute platform flown as-is. Throughput on a
// model is characterized by a sustained weight-streaming bandwidth unless the
// board's published FPS is pinned (PULP-DroNet).
type ComputeBoard struct {
	Name            string
	Label           string
	PowerW          float64
	WeightG         float64
	SustainedGBps   float64
	PinnedFPS       float64
	NeedsActiveCool bool
}

// FPSFor returns the achievable inference rate for a model with the given
// weight footprint in bytes. This holds the shared degenerate-model guard:
// a non-positive footprint yields 0 FPS, never +Inf.
func (b ComputeBoard) FPSFor(modelWeightBytes int64) float64 {
	if b.PinnedFPS > 0 {
		return b.PinnedFPS
	}
	if modelWeightBytes <= 0 {
		return 0
	}
	return b.SustainedGBps * 1e9 / float64(modelWeightBytes)
}

// Validate checks the board definition — the single validation boards and
// uav.ComputeBaseline views share.
func (b ComputeBoard) Validate() error {
	if b.PowerW <= 0 || b.WeightG <= 0 || (b.SustainedGBps <= 0 && b.PinnedFPS <= 0) {
		return fmt.Errorf("catalog: implausible board %+v", b)
	}
	return nil
}

// Airframe is a bare vehicle: frame, rotors, motors, and flight controller,
// without the battery and sensor (those are separate catalog picks).
type Airframe struct {
	Name            string
	Label           string
	Class           string // "mini", "micro", or "nano"
	FrameWeightG    float64
	MaxThrustN      float64
	RotorDiscAreaM2 float64
	OtherPowerW     float64 // ESC, radio, and other electronics
	ControllerHz    float64
	SensorFPS       []float64 // sensor frame rates the flight stack supports
	MaxPayloadG     float64   // structural payload budget beyond the base loadout
	DefaultBattery  string
	DefaultSensor   string
}

// Validate checks the airframe definition.
func (a Airframe) Validate() error {
	if a.Name == "" || a.FrameWeightG <= 0 || a.MaxThrustN <= 0 ||
		a.RotorDiscAreaM2 <= 0 || len(a.SensorFPS) == 0 {
		return fmt.Errorf("catalog: implausible airframe %+v", a)
	}
	switch a.Class {
	case "mini", "micro", "nano":
	default:
		return fmt.Errorf("catalog: airframe %s has unknown class %q", a.Name, a.Class)
	}
	if a.DefaultBattery == "" || a.DefaultSensor == "" {
		return fmt.Errorf("catalog: airframe %s missing default battery/sensor", a.Name)
	}
	return nil
}

// InfeasibleReason classifies why a loadout cannot fly.
type InfeasibleReason string

// Feasibility failure classes.
const (
	ReasonWeight InfeasibleReason = "weight" // payload over the structural budget
	ReasonThrust InfeasibleReason = "thrust" // under the thrust-to-weight floor
	ReasonPower  InfeasibleReason = "power"  // draw over the battery discharge limit
)

// InfeasibleError is the typed verdict of a failed feasibility check. Sweeps
// treat it as a skip, not a failure: an infeasible loadout is a legitimate
// answer about the design space, not a fault.
type InfeasibleError struct {
	Loadout string
	Reason  InfeasibleReason
	Detail  string
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("catalog: infeasible loadout %s: %s (%s)", e.Loadout, e.Reason, e.Detail)
}

// Loadout composes one airframe, battery, and sensor into a flyable vehicle.
type Loadout struct {
	Airframe Airframe
	Battery  Battery
	Sensor   Sensor
}

// String renders the loadout as its catalog keys.
func (l Loadout) String() string {
	return l.Airframe.Name + "/" + l.Battery.Name + "/" + l.Sensor.Name
}

// BaseWeightG returns the loadout weight before the compute payload.
func (l Loadout) BaseWeightG() float64 {
	return l.Airframe.FrameWeightG + l.Battery.WeightG + l.Sensor.WeightG
}

// TotalMassKg returns the all-up mass with a compute payload in grams.
func (l Loadout) TotalMassKg(payloadG float64) float64 {
	return (l.BaseWeightG() + payloadG) / 1000
}

// MaxAccelMS2 returns the maximum lateral acceleration with the payload,
// from the thrust-to-weight ratio: a = g·(T/(m·g) − 1). Zero means the
// loadout cannot carry the payload.
func (l Loadout) MaxAccelMS2(payloadG float64) float64 {
	m := l.TotalMassKg(payloadG)
	a := Gravity * (l.Airframe.MaxThrustN/(m*Gravity) - 1)
	if a < 0 {
		return 0
	}
	return a
}

// FeasibleWeight checks the structural payload budget and the
// thrust-to-weight floor for a compute payload.
func (l Loadout) FeasibleWeight(payloadG float64) error {
	if l.Airframe.MaxPayloadG > 0 && payloadG > l.Airframe.MaxPayloadG {
		return &InfeasibleError{Loadout: l.String(), Reason: ReasonWeight,
			Detail: fmt.Sprintf("payload %.0f g over the %.0f g budget", payloadG, l.Airframe.MaxPayloadG)}
	}
	if !LiftOK(l.Airframe.MaxThrustN, l.TotalMassKg(payloadG)) {
		return &InfeasibleError{Loadout: l.String(), Reason: ReasonThrust,
			Detail: fmt.Sprintf("%.1f N thrust under the %.0f%% margin at %.0f g all-up",
				l.Airframe.MaxThrustN, (ThrustMarginFloor-1)*100, l.BaseWeightG()+payloadG)}
	}
	return nil
}

// Feasible is the single full feasibility check: the structural payload
// budget, the thrust-to-weight floor, and the battery discharge limit
// against the total electrical draw.
func (l Loadout) Feasible(payloadG, drawW float64) error {
	if err := l.FeasibleWeight(payloadG); err != nil {
		return err
	}
	if l.Battery.MaxDischargeW > 0 && drawW > l.Battery.MaxDischargeW {
		return &InfeasibleError{Loadout: l.String(), Reason: ReasonPower,
			Detail: fmt.Sprintf("%.1f W draw over the %.0f W discharge limit", drawW, l.Battery.MaxDischargeW)}
	}
	return nil
}

// Validate checks every component and that the bare loadout can lift itself.
func (l Loadout) Validate() error {
	if err := l.Airframe.Validate(); err != nil {
		return err
	}
	if err := l.Battery.Validate(); err != nil {
		return err
	}
	if err := l.Sensor.Validate(); err != nil {
		return err
	}
	return nil
}

// batteries is the catalog of LiPo packs, keyed by name. The three default
// packs reproduce the Table IV platform batteries bitwise: capacity, voltage,
// and a weight that sums with the airframe and sensor to the legacy base
// weight exactly (integer grams, so float64 addition is exact).
var batteries = map[string]Battery{
	"lipo-1s-250":   {Name: "lipo-1s-250", Label: "1S 250 mAh LiPo", CapacitymAh: 250, VoltageV: 3.7, WeightG: 6, MaxDischargeW: 14},
	"lipo-1s-500":   {Name: "lipo-1s-500", Label: "1S 500 mAh LiPo", CapacitymAh: 500, VoltageV: 3.7, WeightG: 10, MaxDischargeW: 80},
	"lipo-1s-750":   {Name: "lipo-1s-750", Label: "1S 750 mAh LiPo", CapacitymAh: 750, VoltageV: 3.7, WeightG: 15, MaxDischargeW: 85},
	"lipo-2s-1100":  {Name: "lipo-2s-1100", Label: "2S 1100 mAh LiPo", CapacitymAh: 1100, VoltageV: 7.4, WeightG: 55, MaxDischargeW: 120},
	"lipo-3s-1480":  {Name: "lipo-3s-1480", Label: "3S 1480 mAh LiPo", CapacitymAh: 1480, VoltageV: 11.4, WeightG: 90, MaxDischargeW: 220},
	"lipo-3s-2300":  {Name: "lipo-3s-2300", Label: "3S 2300 mAh LiPo", CapacitymAh: 2300, VoltageV: 11.1, WeightG: 160, MaxDischargeW: 280},
	"lipo-3s-6250":  {Name: "lipo-3s-6250", Label: "3S 6250 mAh LiPo", CapacitymAh: 6250, VoltageV: 11.1, WeightG: 470, MaxDischargeW: 650},
	"lipo-6s-10000": {Name: "lipo-6s-10000", Label: "6S 10000 mAh LiPo", CapacitymAh: 10000, VoltageV: 22.2, WeightG: 1300, MaxDischargeW: 1800},
}

// sensors is the catalog of cameras. "ov9755" is the paper's Table III
// sensor; the others trade frame rate against power.
var sensors = map[string]Sensor{
	"ov9755": {Name: "ov9755", Label: "OV9755", PowerW: 0.100, WeightG: 1.0,
		Modes: []SensorMode{
			{Width: 1280, Height: 720, FPS: 30},
			{Width: 1280, Height: 720, FPS: 60},
			{Width: 640, Height: 480, FPS: 90},
		}},
	"lowlight-vga": {Name: "lowlight-vga", Label: "Low-light VGA", PowerW: 0.055, WeightG: 0.8,
		Modes: []SensorMode{
			{Width: 640, Height: 480, FPS: 30},
			{Width: 640, Height: 480, FPS: 45},
		}},
	"gs-wvga-120": {Name: "gs-wvga-120", Label: "Global-shutter WVGA", PowerW: 0.240, WeightG: 2.5,
		Modes: []SensorMode{
			{Width: 752, Height: 480, FPS: 60},
			{Width: 752, Height: 480, FPS: 120},
		}},
}

// boards is the catalog of fixed compute platforms — the baseline boards the
// paper compares against (uav.ComputeBaseline is a view over these entries).
var boards = map[string]ComputeBoard{
	"jetson-tx2":  {Name: "jetson-tx2", Label: "Jetson TX2", PowerW: 12, WeightG: 185, SustainedGBps: 3.0, NeedsActiveCool: true},
	"xavier-nx":   {Name: "xavier-nx", Label: "Xavier NX", PowerW: 15, WeightG: 150, SustainedGBps: 4.5, NeedsActiveCool: true},
	"pulp-dronet": {Name: "pulp-dronet", Label: "PULP-DroNet", PowerW: 0.064, WeightG: 5, PinnedFPS: 6},
	"intel-ncs":   {Name: "intel-ncs", Label: "Intel NCS", PowerW: 1.2, WeightG: 30, SustainedGBps: 0.45},
}

// airframes is the catalog of bare vehicles. The frame weights are chosen so
// frame + default battery + default sensor reproduces the Table IV base
// weights exactly (1650 / 300 / 50 g).
var airframes = map[string]Airframe{
	"pelican": {Name: "pelican", Label: "AscTec Pelican", Class: "mini",
		FrameWeightG: 1179, MaxThrustN: 32.4, RotorDiscAreaM2: 0.203,
		OtherPowerW: 2.0, ControllerHz: 1000, SensorFPS: []float64{30, 60},
		MaxPayloadG: 1500, DefaultBattery: "lipo-3s-6250", DefaultSensor: "ov9755"},
	"spark": {Name: "spark", Label: "DJI Spark", Class: "micro",
		FrameWeightG: 209, MaxThrustN: 7.05, RotorDiscAreaM2: 0.0182,
		OtherPowerW: 0.8, ControllerHz: 1000, SensorFPS: []float64{30, 60},
		MaxPayloadG: 400, DefaultBattery: "lipo-3s-1480", DefaultSensor: "ov9755"},
	"quadx-250": {Name: "quadx-250", Label: "250-class racer", Class: "micro",
		FrameWeightG: 95, MaxThrustN: 9.8, RotorDiscAreaM2: 0.019,
		OtherPowerW: 0.5, ControllerHz: 1000, SensorFPS: []float64{30, 60},
		MaxPayloadG: 300, DefaultBattery: "lipo-3s-1480", DefaultSensor: "ov9755"},
	"nano": {Name: "nano", Label: "Zhang et al. nano", Class: "nano",
		FrameWeightG: 39, MaxThrustN: 2.9, RotorDiscAreaM2: 0.00665,
		OtherPowerW: 0.15, ControllerHz: 1000, SensorFPS: []float64{30, 60},
		MaxPayloadG: 250, DefaultBattery: "lipo-1s-500", DefaultSensor: "ov9755"},
}

// sortedKeys returns map keys sorted, so every listing is deterministic.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// BatteryNames lists the catalog battery keys, sorted.
func BatteryNames() []string { return sortedKeys(batteries) }

// SensorNames lists the catalog sensor keys, sorted.
func SensorNames() []string { return sortedKeys(sensors) }

// BoardNames lists the catalog board keys, sorted.
func BoardNames() []string { return sortedKeys(boards) }

// AirframeNames lists the catalog airframe keys, sorted.
func AirframeNames() []string { return sortedKeys(airframes) }

// BatteryByName resolves a battery catalog key.
func BatteryByName(name string) (Battery, error) {
	b, ok := batteries[name]
	if !ok {
		return Battery{}, fmt.Errorf("catalog: unknown battery %q (have %v)", name, BatteryNames())
	}
	return b, nil
}

// SensorByName resolves a sensor catalog key.
func SensorByName(name string) (Sensor, error) {
	s, ok := sensors[name]
	if !ok {
		return Sensor{}, fmt.Errorf("catalog: unknown sensor %q (have %v)", name, SensorNames())
	}
	return s, nil
}

// BoardByName resolves a board catalog key.
func BoardByName(name string) (ComputeBoard, error) {
	b, ok := boards[name]
	if !ok {
		return ComputeBoard{}, fmt.Errorf("catalog: unknown board %q (have %v)", name, BoardNames())
	}
	return b, nil
}

// AirframeByName resolves an airframe catalog key.
func AirframeByName(name string) (Airframe, error) {
	a, ok := airframes[name]
	if !ok {
		return Airframe{}, fmt.Errorf("catalog: unknown airframe %q (have %v)", name, AirframeNames())
	}
	return a, nil
}

// Batteries returns every catalog battery in name order.
func Batteries() []Battery {
	out := make([]Battery, 0, len(batteries))
	for _, k := range BatteryNames() {
		out = append(out, batteries[k])
	}
	return out
}

// Sensors returns every catalog sensor in name order.
func Sensors() []Sensor {
	out := make([]Sensor, 0, len(sensors))
	for _, k := range SensorNames() {
		out = append(out, sensors[k])
	}
	return out
}

// Boards returns every catalog board in name order.
func Boards() []ComputeBoard {
	out := make([]ComputeBoard, 0, len(boards))
	for _, k := range BoardNames() {
		out = append(out, boards[k])
	}
	return out
}

// Airframes returns every catalog airframe in name order.
func Airframes() []Airframe {
	out := make([]Airframe, 0, len(airframes))
	for _, k := range AirframeNames() {
		out = append(out, airframes[k])
	}
	return out
}

// BuildLoadout composes a loadout from catalog keys. Empty battery/sensor
// names select the airframe's defaults.
func BuildLoadout(airframe, battery, sensor string) (Loadout, error) {
	a, err := AirframeByName(airframe)
	if err != nil {
		return Loadout{}, err
	}
	if battery == "" {
		battery = a.DefaultBattery
	}
	if sensor == "" {
		sensor = a.DefaultSensor
	}
	b, err := BatteryByName(battery)
	if err != nil {
		return Loadout{}, err
	}
	s, err := SensorByName(sensor)
	if err != nil {
		return Loadout{}, err
	}
	return Loadout{Airframe: a, Battery: b, Sensor: s}, nil
}

// DefaultLoadout returns an airframe with its default battery and sensor —
// for the three Table IV airframes, exactly the legacy uav.Platform.
func DefaultLoadout(airframe string) (Loadout, error) {
	return BuildLoadout(airframe, "", "")
}
