package catalog

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestEveryEntryValidates: the shipped catalog must be internally consistent —
// every entry passes its own Validate, and every airframe's default
// battery/sensor resolves.
func TestEveryEntryValidates(t *testing.T) {
	for _, b := range Batteries() {
		if err := b.Validate(); err != nil {
			t.Errorf("battery %s: %v", b.Name, err)
		}
	}
	for _, s := range Sensors() {
		if err := s.Validate(); err != nil {
			t.Errorf("sensor %s: %v", s.Name, err)
		}
	}
	for _, b := range Boards() {
		if err := b.Validate(); err != nil {
			t.Errorf("board %s: %v", b.Name, err)
		}
	}
	for _, a := range Airframes() {
		if err := a.Validate(); err != nil {
			t.Errorf("airframe %s: %v", a.Name, err)
		}
		lo, err := DefaultLoadout(a.Name)
		if err != nil {
			t.Errorf("airframe %s default loadout: %v", a.Name, err)
			continue
		}
		if err := lo.Validate(); err != nil {
			t.Errorf("default loadout %s: %v", lo, err)
		}
		// A bare default loadout (no compute payload) must fly.
		if err := lo.FeasibleWeight(0); err != nil {
			t.Errorf("default loadout %s cannot lift itself: %v", lo, err)
		}
	}
}

// TestDefaultLoadoutWeightsMatchTableIV: frame + default battery + default
// sensor must reproduce the legacy Table IV base weights exactly. Integer
// gram components sum without rounding in float64, so equality is ==.
func TestDefaultLoadoutWeightsMatchTableIV(t *testing.T) {
	for name, want := range map[string]float64{"pelican": 1650, "spark": 300, "nano": 50} {
		lo, err := DefaultLoadout(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := lo.BaseWeightG(); got != want {
			t.Errorf("%s base weight = %v g, want %v g", name, got, want)
		}
	}
}

// TestBatteryEnergyExpression pins EnergyJ to the exact legacy arithmetic
// (mAh/1000 * V * 3600, in that order), bitwise.
func TestBatteryEnergyExpression(t *testing.T) {
	for _, b := range Batteries() {
		want := b.CapacitymAh / 1000 * b.VoltageV * 3600
		if got := b.EnergyJ(); got != want {
			t.Errorf("%s EnergyJ = %x, want %x", b.Name, got, want)
		}
	}
}

// TestFPSForGuard: the shared degenerate-model guard — zero or negative
// weight footprints yield 0 FPS, never +Inf; pinned boards ignore the
// footprint entirely.
func TestFPSForGuard(t *testing.T) {
	tx2, err := BoardByName("jetson-tx2")
	if err != nil {
		t.Fatal(err)
	}
	for _, bytes := range []int64{0, -1} {
		if got := tx2.FPSFor(bytes); got != 0 || math.IsInf(got, 1) {
			t.Errorf("FPSFor(%d) = %v, want 0", bytes, got)
		}
	}
	if got := tx2.FPSFor(3e9); got != 1.0 {
		t.Errorf("FPSFor(3e9) = %v, want 1", got)
	}
	dronet, err := BoardByName("pulp-dronet")
	if err != nil {
		t.Fatal(err)
	}
	for _, bytes := range []int64{0, 1 << 20} {
		if got := dronet.FPSFor(bytes); got != 6 {
			t.Errorf("pinned FPSFor(%d) = %v, want 6", bytes, got)
		}
	}
}

// TestFeasibilityReasons drives each clause of the single feasibility check
// and asserts the typed reason survives errors.As.
func TestFeasibilityReasons(t *testing.T) {
	nano, err := DefaultLoadout("nano")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		loadout  func() Loadout
		payloadG float64
		drawW    float64
		reason   InfeasibleReason
	}{
		{"over-payload-budget", func() Loadout { return nano }, 251, 1, ReasonWeight},
		{"under-thrust", func() Loadout {
			lo, err := BuildLoadout("nano", "lipo-6s-10000", "")
			if err != nil {
				t.Fatal(err)
			}
			return lo
		}, 10, 1, ReasonThrust},
		{"over-discharge", func() Loadout {
			lo, err := BuildLoadout("nano", "lipo-1s-250", "")
			if err != nil {
				t.Fatal(err)
			}
			return lo
		}, 10, 15, ReasonPower},
	}
	for _, c := range cases {
		err := c.loadout().Feasible(c.payloadG, c.drawW)
		if err == nil {
			t.Errorf("%s: feasible, want %s", c.name, c.reason)
			continue
		}
		var inf *InfeasibleError
		if !errors.As(err, &inf) {
			t.Errorf("%s: untyped error %v", c.name, err)
			continue
		}
		if inf.Reason != c.reason {
			t.Errorf("%s: reason %s, want %s", c.name, inf.Reason, c.reason)
		}
	}
	if err := nano.Feasible(100, 10); err != nil {
		t.Errorf("nano +100 g at 10 W should fly: %v", err)
	}
}

// TestMaxAccelNeverNegative: past the lift limit the acceleration clamps to
// zero instead of going negative.
func TestMaxAccelNeverNegative(t *testing.T) {
	nano, err := DefaultLoadout("nano")
	if err != nil {
		t.Fatal(err)
	}
	if a := nano.MaxAccelMS2(1e6); a != 0 {
		t.Errorf("MaxAccelMS2(1e6 g) = %v, want 0", a)
	}
	if a := nano.MaxAccelMS2(0); a <= 0 {
		t.Errorf("bare nano MaxAccelMS2 = %v, want > 0", a)
	}
}

// TestBuildLoadoutDefaultsAndErrors: empty component names select the
// airframe defaults; unknown names fail with the catalog's listing error.
func TestBuildLoadoutDefaultsAndErrors(t *testing.T) {
	lo, err := BuildLoadout("spark", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if lo.Battery.Name != "lipo-3s-1480" || lo.Sensor.Name != "ov9755" {
		t.Errorf("spark defaults = %s, want spark/lipo-3s-1480/ov9755", lo)
	}
	for _, bad := range [][3]string{
		{"hexacopter", "", ""},
		{"nano", "lipo-9s", ""},
		{"nano", "", "lidar"},
	} {
		if _, err := BuildLoadout(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("BuildLoadout(%q, %q, %q) succeeded, want error", bad[0], bad[1], bad[2])
		} else if !strings.Contains(err.Error(), "unknown") {
			t.Errorf("BuildLoadout(%q, %q, %q): %v, want an unknown-entry error", bad[0], bad[1], bad[2], err)
		}
	}
}

// TestListingsSortedAndComplete: name listings are sorted (deterministic
// axis encodings depend on it) and round-trip through the ByName lookups.
func TestListingsSortedAndComplete(t *testing.T) {
	checkSorted := func(label string, names []string) {
		for i := 1; i < len(names); i++ {
			if names[i-1] >= names[i] {
				t.Errorf("%s names not strictly sorted: %v", label, names)
				return
			}
		}
	}
	checkSorted("battery", BatteryNames())
	checkSorted("sensor", SensorNames())
	checkSorted("board", BoardNames())
	checkSorted("airframe", AirframeNames())
	for _, n := range BatteryNames() {
		if _, err := BatteryByName(n); err != nil {
			t.Error(err)
		}
	}
	for _, n := range AirframeNames() {
		if _, err := AirframeByName(n); err != nil {
			t.Error(err)
		}
	}
}
