package catalog

import "testing"

// BenchmarkBuildLoadout measures full catalog composition (three map
// lookups + default resolution) — the inner loop of vehicle-axis decoding.
func BenchmarkBuildLoadout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BuildLoadout("nano", "lipo-1s-500", "ov9755"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnumerateLoadouts measures a full catalog enumeration: every
// airframe × battery × sensor combination composed and weighed.
func BenchmarkEnumerateLoadouts(b *testing.B) {
	airframes, bats, sens := AirframeNames(), BatteryNames(), SensorNames()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, a := range airframes {
			for _, bat := range bats {
				for _, s := range sens {
					lo, err := BuildLoadout(a, bat, s)
					if err != nil {
						b.Fatal(err)
					}
					sink += lo.BaseWeightG()
				}
			}
		}
	}
	_ = sink
}

// BenchmarkFeasible measures the full SWaP feasibility filter on a feasible
// loadout (all three clauses evaluated).
func BenchmarkFeasible(b *testing.B) {
	lo, err := DefaultLoadout("nano")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := lo.Feasible(30, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeasibleInfeasible measures the filter's rejection path,
// including the typed-error allocation.
func BenchmarkFeasibleInfeasible(b *testing.B) {
	lo, err := BuildLoadout("nano", "lipo-1s-250", "")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := lo.Feasible(30, 20); err == nil {
			b.Fatal("want infeasible")
		}
	}
}
