// Package server implements the co-design job service behind cmd/autopilotd:
// a long-lived, multi-tenant HTTP surface over the three-phase AutoPilot
// pipeline, speaking the typed contract in internal/api.
//
// Jobs are queued FIFO and executed by a small worker pool; every submission
// runs under a per-tenant live-job quota, and completed results live in a
// process-wide content-addressed store keyed by the request's canonical hash
// (internal/memo: LRU + singleflight), so resubmitting a request — by any
// tenant — is answered from cache without re-running the pipeline. Because
// the pipeline is bitwise deterministic, serving from cache is
// indistinguishable from re-running.
//
// Endpoints:
//
//	POST   /v1/jobs             submit an api.CoDesignRequest; 202 + api.Job
//	GET    /v1/jobs/{id}        job status; api.Result once done
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events NDJSON stream of the job's pipeline events
//	GET    /healthz             liveness probe
//	GET    /debug/...           obs.DebugMux: live metrics, expvar, pprof
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"autopilot/internal/api"
	"autopilot/internal/core"
	"autopilot/internal/fault"
	"autopilot/internal/memo"
	"autopilot/internal/obs"
)

// Config sizes the service. The zero value is a sensible single-node setup.
type Config struct {
	// Queue caps jobs waiting for a worker (default 64). A full queue
	// rejects submissions with 503.
	Queue int
	// JobWorkers is the number of jobs executing concurrently (default 2).
	// Each job additionally parallelizes internally per its request's
	// Workers constraint.
	JobWorkers int
	// TenantQuota caps one tenant's live (queued or running) jobs
	// (default 4). Submissions beyond it get 429.
	TenantQuota int
	// CacheCap bounds the shared result store in entries: >0 LRU-evicts,
	// 0 is unbounded, <0 disables caching.
	CacheCap int
	// StateDir, when set, persists every computed result as
	// <hash>.json and warm-loads them into the cache on startup.
	StateDir string
	// Metrics is the server-wide registry behind /debug/metrics; nil
	// allocates a fresh one.
	Metrics *obs.Registry
	// Pipeline executes one co-design run; nil means core.Run. A seam for
	// tests and for future remote execution backends.
	Pipeline func(ctx context.Context, spec core.Spec) (*core.Report, error)
}

// Server is the job service. Create with New, expose via Handler, stop with
// Close.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	store *memo.Store[string, api.Result]
	mux   *http.ServeMux

	cSubmitted, cDone, cFailed, cCancelled *obs.Counter
	cRejectQuota, cRejectQueue             *obs.Counter

	mu       sync.Mutex
	jobs     map[string]*job
	live     map[string]int // tenant -> queued+running jobs
	seq      int
	closed   bool
	draining bool

	queue chan *job
	wg    sync.WaitGroup
}

// job is the server-side job record; api.Job is its wire snapshot.
type job struct {
	id     string
	tenant string
	req    api.CoDesignRequest
	hash   string

	ctx    context.Context
	cancel context.CancelFunc
	events *eventLog

	mu        sync.Mutex
	state     api.JobState
	cacheHit  bool
	errText   string
	result    *api.Result
	submitted time.Time
	started   *time.Time
	finished  *time.Time
}

// New builds the service, warm-loading any persisted results from
// cfg.StateDir, and starts its workers.
func New(cfg Config) (*Server, error) {
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 2
	}
	if cfg.TenantQuota <= 0 {
		cfg.TenantQuota = 4
	}
	if cfg.Pipeline == nil {
		cfg.Pipeline = core.Run
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:          cfg,
		reg:          reg,
		store:        memo.New[string, api.Result](cfg.CacheCap, memo.RegistryCounters(reg, "server.cache")),
		jobs:         map[string]*job{},
		live:         map[string]int{},
		queue:        make(chan *job, cfg.Queue),
		cSubmitted:   reg.Counter("server.jobs.submitted"),
		cDone:        reg.Counter("server.jobs.done"),
		cFailed:      reg.Counter("server.jobs.failed"),
		cCancelled:   reg.Counter("server.jobs.cancelled"),
		cRejectQuota: reg.Counter("server.jobs.rejected.quota"),
		cRejectQueue: reg.Counter("server.jobs.rejected.queue"),
	}
	if cfg.StateDir != "" {
		if err := s.loadState(); err != nil {
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		draining := s.draining || s.closed
		s.mu.Unlock()
		if draining {
			// Load balancers stop routing here while in-flight jobs drain.
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	s.mux.Handle("/debug/", obs.DebugMux(reg))
	for i := 0; i < cfg.JobWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops intake, cancels every live job, and waits for the workers.
// Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, jb := range s.jobs {
		jb.cancel()
	}
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// Drain performs a graceful shutdown: intake stops immediately (submissions
// are refused with 503 while draining), queued and running jobs get until ctx
// expires to complete — their results landing in the cache and the state dir
// exactly as in normal operation — and whatever is still running afterwards
// is cancelled via Close. Returns nil when every job finished inside the
// deadline, and ctx.Err() when the deadline cut live jobs off. Idempotent
// with Close in either order.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	var err error
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
wait:
	for {
		s.mu.Lock()
		n := 0
		for _, v := range s.live {
			n += v
		}
		s.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break wait
		case <-t.C:
		}
	}
	s.Close()
	return err
}

// CacheStats reports the shared result store's hit/miss counters.
func (s *Server) CacheStats() (hits, misses int64) { return s.store.Stats() }

// --- persistence ---

func (s *Server) statePath(hash string) string {
	return filepath.Join(s.cfg.StateDir, hash+".json")
}

// loadState warm-starts the result store from previously persisted results.
// Files that fail to decode are skipped, not fatal: a corrupt entry costs a
// recomputation, never availability.
func (s *Server) loadState() error {
	if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
		return fmt.Errorf("server: state dir: %w", err)
	}
	entries, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		return fmt.Errorf("server: state dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.cfg.StateDir, name))
		if err != nil {
			continue
		}
		var res api.Result
		if json.Unmarshal(data, &res) != nil || res.RequestHash == "" {
			continue
		}
		if res.RequestHash != strings.TrimSuffix(name, ".json") {
			continue // content-address mismatch: treat as corrupt
		}
		s.store.Put(res.RequestHash, res)
	}
	return nil
}

// saveState persists one computed result; errors are recorded as a metric
// but do not fail the job — persistence is an optimization.
func (s *Server) saveState(res api.Result) {
	data, err := json.Marshal(res)
	if err == nil {
		err = os.WriteFile(s.statePath(res.RequestHash), data, 0o644)
	}
	if err != nil {
		s.reg.Counter("server.state.write_errors").Inc()
	}
}

// --- HTTP handlers ---

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}) //nolint:errcheck
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// tenant resolves the caller's tenant from the X-Tenant header; anonymous
// callers share one bucket.
func tenant(r *http.Request) string {
	if t := strings.TrimSpace(r.Header.Get("X-Tenant")); t != "" {
		return t
	}
	return "anonymous"
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.CoDesignRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed request: %v", err)
		return
	}
	if err := req.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Train != nil && req.Train.Checkpoint != "" {
		httpError(w, http.StatusBadRequest, "train.checkpoint is a local-path option; not accepted over HTTP")
		return
	}
	req = req.Normalized()
	tn := tenant(r)

	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	if s.live[tn] >= s.cfg.TenantQuota {
		s.mu.Unlock()
		s.cRejectQuota.Inc()
		httpError(w, http.StatusTooManyRequests, "tenant %q has %d live jobs (quota %d)", tn, s.cfg.TenantQuota, s.cfg.TenantQuota)
		return
	}
	s.seq++
	ctx, cancel := context.WithCancel(context.Background())
	jb := &job{
		id:        fmt.Sprintf("job-%d", s.seq),
		tenant:    tn,
		req:       req,
		hash:      req.Hash(),
		ctx:       ctx,
		cancel:    cancel,
		events:    newEventLog(),
		state:     api.JobQueued,
		submitted: time.Now(),
	}
	select {
	case s.queue <- jb:
	default:
		s.mu.Unlock()
		cancel()
		s.cRejectQueue.Inc()
		httpError(w, http.StatusServiceUnavailable, "job queue full (%d pending)", s.cfg.Queue)
		return
	}
	s.jobs[jb.id] = jb
	s.live[tn]++
	s.mu.Unlock()

	s.cSubmitted.Inc()
	jb.events.add(obs.Event{Cat: "job", Name: "queued"})
	writeJSON(w, http.StatusAccepted, jb.snapshot())
}

func (s *Server) lookup(r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb, ok := s.jobs[r.PathValue("id")]
	return jb, ok
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, jb.snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	jb.cancel()
	writeJSON(w, http.StatusOK, jb.snapshot())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := 0; ; i++ {
		ev, ok := jb.events.wait(r.Context(), i)
		if !ok {
			return
		}
		if err := enc.Encode(ev); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// --- execution ---

func (s *Server) worker() {
	defer s.wg.Done()
	for jb := range s.queue {
		s.runJob(jb)
	}
}

func (s *Server) runJob(jb *job) {
	if jb.ctx.Err() != nil { // cancelled while queued
		s.finish(jb, api.JobCancelled, nil, false, jb.ctx.Err())
		return
	}
	now := time.Now()
	jb.mu.Lock()
	jb.state = api.JobRunning
	jb.started = &now
	jb.mu.Unlock()
	jb.events.add(obs.Event{Cat: "job", Name: "running"})

	res, fromCache, err := s.store.Do(jb.ctx, jb.hash, func() (api.Result, error) {
		return s.execute(jb)
	})
	switch {
	case err == nil:
		s.finish(jb, api.JobDone, &res, fromCache, nil)
	case errors.Is(err, context.Canceled):
		s.finish(jb, api.JobCancelled, nil, false, err)
	default:
		s.finish(jb, api.JobFailed, nil, false, err)
	}
}

// finish moves the job to a terminal state, releases its tenant slot, and
// closes the event stream.
func (s *Server) finish(jb *job, state api.JobState, res *api.Result, fromCache bool, err error) {
	now := time.Now()
	jb.mu.Lock()
	jb.state = state
	jb.finished = &now
	jb.cacheHit = fromCache
	jb.result = res
	if err != nil {
		jb.errText = err.Error()
	}
	jb.mu.Unlock()
	jb.cancel() // release the context's resources in every path

	s.mu.Lock()
	if s.live[jb.tenant]--; s.live[jb.tenant] <= 0 {
		delete(s.live, jb.tenant)
	}
	s.mu.Unlock()

	switch state {
	case api.JobDone:
		s.cDone.Inc()
	case api.JobCancelled:
		s.cCancelled.Inc()
	default:
		s.cFailed.Inc()
	}
	jb.events.add(obs.Event{Cat: "job", Name: string(state)})
	jb.events.close()
}

// execute runs the pipeline for a job that missed the cache. The result's
// manifest carries only the deterministic sections (config, seeds, failure
// summary) — never wall-clock or metric snapshots — so a Result is a pure
// function of the request and cache replays are byte-identical.
func (s *Server) execute(jb *job) (api.Result, error) {
	spec, err := jb.req.Spec()
	if err != nil {
		return api.Result{}, err
	}
	spec.Obs = &obs.Observer{Metrics: s.reg, Events: obs.EventFunc(jb.events.add)}
	rep, err := s.cfg.Pipeline(jb.ctx, spec)
	if err != nil {
		return api.Result{}, err
	}
	man := obs.Manifest{
		Tool:   "autopilotd",
		Status: "ok",
		Config: jb.req.ManifestConfig(),
		Seeds:  jb.req.ManifestSeeds(),
	}
	if rep.Phase1 != nil {
		man.Failures = append(man.Failures, fault.Records(rep.Phase1.Failures)...)
		if rep.Phase1.CheckpointQuarantined != "" {
			man.Events = append(man.Events, obs.RunEvent{Kind: "checkpoint-quarantined", Detail: rep.Phase1.CheckpointQuarantined})
		}
	}
	man.Failures = append(man.Failures, fault.Records(rep.Phase2.Failures)...)
	res := api.NewResult(jb.req, rep, man)
	if s.cfg.StateDir != "" {
		s.saveState(res)
	}
	return res, nil
}

// snapshot renders the job in wire form.
func (jb *job) snapshot() api.Job {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	return api.Job{
		ID:          jb.id,
		State:       jb.state,
		Tenant:      jb.tenant,
		RequestHash: jb.hash,
		Request:     jb.req,
		CacheHit:    jb.cacheHit,
		Submitted:   jb.submitted,
		Started:     jb.started,
		Finished:    jb.finished,
		Error:       jb.errText,
		Result:      jb.result,
	}
}

// --- event streaming ---

// JobEvent is one NDJSON line of a job's event stream.
type JobEvent struct {
	Seq     int    `json:"seq"`
	Cat     string `json:"cat"`
	Name    string `json:"name"`
	Payload any    `json:"payload,omitempty"`
}

// eventLog is an append-only broadcast log: the pipeline appends, any number
// of stream readers replay from an index and then follow.
type eventLog struct {
	mu     sync.Mutex
	wake   chan struct{} // closed and replaced on every append/close
	events []JobEvent
	done   bool
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

func (l *eventLog) add(e obs.Event) {
	var payload any
	if e.Payload != nil {
		if _, err := json.Marshal(e.Payload); err == nil {
			payload = e.Payload
		} else {
			payload = fmt.Sprint(e.Payload)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.events = append(l.events, JobEvent{Seq: len(l.events), Cat: e.Cat, Name: e.Name, Payload: payload})
	close(l.wake)
	l.wake = make(chan struct{})
}

func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.done = true
	close(l.wake)
	l.wake = make(chan struct{})
}

// wait returns event i, blocking until it exists. ok is false once the log
// is closed and drained, or the reader's context ends.
func (l *eventLog) wait(ctx context.Context, i int) (JobEvent, bool) {
	for {
		l.mu.Lock()
		if i < len(l.events) {
			ev := l.events[i]
			l.mu.Unlock()
			return ev, true
		}
		if l.done {
			l.mu.Unlock()
			return JobEvent{}, false
		}
		wake := l.wake
		l.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return JobEvent{}, false
		}
	}
}
