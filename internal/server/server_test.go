package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"autopilot/internal/api"
	"autopilot/internal/core"
	"autopilot/internal/obs"
)

// tinyRequest is a real but fast co-design query (~tens of ms): the full
// surrogate pipeline over a reduced Phase-2 budget.
func tinyRequest() api.CoDesignRequest {
	return api.CoDesignRequest{
		Constraints: api.Constraints{CandidatePool: 192, BOIterations: 6, Workers: 2},
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return svc, ts
}

func submit(t *testing.T, ts *httptest.Server, req api.CoDesignRequest, tenant string) (api.Job, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		hr.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jb api.Job
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&jb); err != nil {
			t.Fatal(err)
		}
	}
	return jb, resp.StatusCode
}

func getJob(t *testing.T, ts *httptest.Server, id string) api.Job {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var jb api.Job
	if err := json.NewDecoder(resp.Body).Decode(&jb); err != nil {
		t.Fatal(err)
	}
	return jb
}

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, ts *httptest.Server, id string) api.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		jb := getJob(t, ts, id)
		if jb.State.Terminal() {
			return jb
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, jb.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitState polls until the job reaches the given (possibly non-terminal)
// state.
func waitState(t *testing.T, ts *httptest.Server, id string, want api.JobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		jb := getJob(t, ts, id)
		if jb.State == want {
			return
		}
		if jb.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %s, want %s", id, jb.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// blockingPipeline returns a Pipeline seam that parks every job until its
// context is cancelled — deterministic fuel for quota/queue/cancel tests.
func blockingPipeline(started chan<- string) func(context.Context, core.Spec) (*core.Report, error) {
	return func(ctx context.Context, spec core.Spec) (*core.Report, error) {
		if started != nil {
			started <- spec.Platform.Name
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}
}

// TestJobBitwiseMatchesDirectRun pins the tentpole guarantee: a job
// submitted over HTTP yields byte-for-byte the report, Pareto front, and
// deterministic manifest sections of the same request run in-process (the
// path cmd/autopilot takes).
func TestJobBitwiseMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := tinyRequest()
	jb, code := submit(t, ts, req, "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	jb = waitJob(t, ts, jb.ID)
	if jb.State != api.JobDone || jb.Result == nil {
		t.Fatalf("job = %+v", jb)
	}

	spec, err := req.Spec()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := api.NewResult(req, rep, obs.Manifest{
		Tool:   "autopilotd",
		Status: "ok",
		Config: req.ManifestConfig(),
		Seeds:  req.ManifestSeeds(),
	})

	gotReport, _ := json.Marshal(jb.Result.Report)
	wantReport, _ := json.Marshal(want.Report)
	if !bytes.Equal(gotReport, wantReport) {
		t.Errorf("report over HTTP differs from direct run:\n got %s\nwant %s", gotReport, wantReport)
	}
	gotPareto, _ := json.Marshal(jb.Result.Pareto)
	wantPareto, _ := json.Marshal(want.Pareto)
	if !bytes.Equal(gotPareto, wantPareto) {
		t.Errorf("pareto front over HTTP differs from direct run:\n got %s\nwant %s", gotPareto, wantPareto)
	}
	gotMan, _ := json.Marshal(jb.Result.Manifest)
	wantMan, _ := json.Marshal(want.Manifest)
	if !bytes.Equal(gotMan, wantMan) {
		t.Errorf("manifest over HTTP differs from direct run:\n got %s\nwant %s", gotMan, wantMan)
	}
	if jb.Result.RequestHash != req.Hash() {
		t.Errorf("request hash %q, want %q", jb.Result.RequestHash, req.Hash())
	}
	if len(jb.Result.Pareto) == 0 {
		t.Error("empty pareto front")
	}
}

// TestDuplicateSubmissionServedFromCache pins the shared result store: an
// identical second submission — different tenant, different worker count —
// is a cache hit carrying a byte-identical result.
func TestDuplicateSubmissionServedFromCache(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	first, code := submit(t, ts, tinyRequest(), "alice")
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	first = waitJob(t, ts, first.ID)
	if first.State != api.JobDone || first.CacheHit {
		t.Fatalf("first job: state %s cacheHit %v", first.State, first.CacheHit)
	}

	again := tinyRequest()
	again.Constraints.Workers = 7 // worker count must not split the cache
	second, _ := submit(t, ts, again, "bob")
	second = waitJob(t, ts, second.ID)
	if second.State != api.JobDone || !second.CacheHit {
		t.Fatalf("second job: state %s cacheHit %v", second.State, second.CacheHit)
	}
	a, _ := json.Marshal(first.Result)
	b, _ := json.Marshal(second.Result)
	if !bytes.Equal(a, b) {
		t.Error("cached result differs from computed result")
	}
	if hits, misses := svc.CacheStats(); hits < 1 || misses != 1 {
		t.Errorf("cache stats hits=%d misses=%d, want >=1 hit and exactly 1 miss", hits, misses)
	}

	// The hit is observable over the wire, where operators will look for it.
	resp, err := http.Get(ts.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.cache.hits"] < 1 {
		t.Errorf("/debug/metrics server.cache.hits = %d", snap.Counters["server.cache.hits"])
	}
}

// TestTenantQuota pins per-tenant admission control: a tenant at its live
// quota gets 429 while other tenants still get through.
func TestTenantQuota(t *testing.T) {
	started := make(chan string, 8)
	_, ts := newTestServer(t, Config{TenantQuota: 1, JobWorkers: 1, Pipeline: blockingPipeline(started)})

	jb, code := submit(t, ts, tinyRequest(), "alice")
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	if _, code := submit(t, ts, tinyRequest(), "alice"); code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", code)
	}
	other := tinyRequest()
	other.Seed = 2
	jb2, code := submit(t, ts, other, "bob")
	if code != http.StatusAccepted {
		t.Fatalf("other-tenant submit: status %d, want 202", code)
	}

	// Cancel both; alice's slot must free up for a resubmission.
	for _, id := range []string{jb.ID, jb2.ID} {
		hr, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+id, nil)
		if _, err := http.DefaultClient.Do(hr); err != nil {
			t.Fatal(err)
		}
		waitJob(t, ts, id)
	}
	if _, code := submit(t, ts, tinyRequest(), "alice"); code != http.StatusAccepted {
		t.Fatalf("post-cancel submit: status %d, want 202", code)
	}
}

// TestQueueFull pins backpressure: with the worker pinned and the queue
// full, further submissions get 503.
func TestQueueFull(t *testing.T) {
	started := make(chan string, 8)
	svc, ts := newTestServer(t, Config{Queue: 1, JobWorkers: 1, TenantQuota: 100, Pipeline: blockingPipeline(started)})

	running, code := submit(t, ts, tinyRequest(), "a")
	if code != http.StatusAccepted {
		t.Fatalf("submit 1: status %d", code)
	}
	<-started // worker is now parked inside the job
	q := tinyRequest()
	q.Seed = 2
	if _, code := submit(t, ts, q, "b"); code != http.StatusAccepted {
		t.Fatalf("submit 2 (fills queue): status %d", code)
	}
	q.Seed = 3
	if _, code := submit(t, ts, q, "c"); code != http.StatusServiceUnavailable {
		t.Fatalf("submit 3: status %d, want 503", code)
	}
	if svc.reg.Counter("server.jobs.rejected.queue").Value() != 1 {
		t.Error("queue rejection not counted")
	}
	_ = running
}

// TestCancellation pins DELETE: a running job transitions to cancelled and
// its worker is released.
func TestCancellation(t *testing.T) {
	started := make(chan string, 1)
	_, ts := newTestServer(t, Config{JobWorkers: 1, Pipeline: blockingPipeline(started)})
	jb, _ := submit(t, ts, tinyRequest(), "")
	<-started
	waitState(t, ts, jb.ID, api.JobRunning)

	hr, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+jb.ID, nil)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	jb = waitJob(t, ts, jb.ID)
	if jb.State != api.JobCancelled {
		t.Fatalf("state after DELETE = %s, want cancelled", jb.State)
	}
	if jb.Result != nil {
		t.Error("cancelled job carries a result")
	}

	// The worker must be free again: a real follow-up job would run, and a
	// cancelled run must not have poisoned the cache.
	next := tinyRequest()
	next.Seed = 5
	nj, code := submit(t, ts, next, "")
	if code != http.StatusAccepted {
		t.Fatalf("post-cancel submit: status %d", code)
	}
	<-started
	waitState(t, ts, nj.ID, api.JobRunning)
}

// TestEventsStream pins the NDJSON event surface: lifecycle transitions
// arrive in order and the stream terminates once the job is done.
func TestEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	jb, _ := submit(t, ts, tinyRequest(), "")
	jb = waitJob(t, ts, jb.ID)
	if jb.State != api.JobDone {
		t.Fatalf("job state %s", jb.State)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + jb.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("content type %q", ct)
	}
	var names []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Cat == "job" {
			names = append(names, ev.Name)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := []string{"queued", "running", "done"}
	if len(names) != len(want) {
		t.Fatalf("lifecycle events %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("lifecycle events %v, want %v", names, want)
		}
	}
}

// TestStatePersistence pins -state-dir: results computed by one server
// instance are warm-loaded by the next, which answers without recomputing.
func TestStatePersistence(t *testing.T) {
	dir := t.TempDir()
	// A corrupt stray file must be skipped, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "bogus.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	svc1, ts1 := newTestServer(t, Config{StateDir: dir})
	jb, _ := submit(t, ts1, tinyRequest(), "")
	jb = waitJob(t, ts1, jb.ID)
	if jb.State != api.JobDone {
		t.Fatalf("job state %s", jb.State)
	}
	if _, err := os.Stat(filepath.Join(dir, jb.RequestHash+".json")); err != nil {
		t.Fatalf("result not persisted: %v", err)
	}
	ts1.Close()
	svc1.Close()

	svc2, ts2 := newTestServer(t, Config{StateDir: dir})
	jb2, _ := submit(t, ts2, tinyRequest(), "")
	jb2 = waitJob(t, ts2, jb2.ID)
	if jb2.State != api.JobDone || !jb2.CacheHit {
		t.Fatalf("restarted server: state %s cacheHit %v", jb2.State, jb2.CacheHit)
	}
	if hits, misses := svc2.CacheStats(); hits != 1 || misses != 0 {
		t.Errorf("restarted server cache stats hits=%d misses=%d, want 1/0", hits, misses)
	}
	a, _ := json.Marshal(jb.Result)
	b, _ := json.Marshal(jb2.Result)
	if !bytes.Equal(a, b) {
		t.Error("persisted result differs from computed result")
	}
}

// TestSubmitValidation pins the 400 surface.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := map[string]string{
		"malformed JSON":   "{",
		"unknown field":    `{"uav":"nano","bogus":1}`,
		"unknown uav":      `{"uav":"blimp"}`,
		"unknown scenario": `{"scenario":"urban"}`,
		"local checkpoint": `{"train":{"checkpoint":"/tmp/x.json"}}`,
	}
	for name, body := range cases {
		if code := post(body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestHealthz keeps the probe honest.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// TestEventsFollowLiveJob checks a reader attached before completion
// receives events as they happen and sees the stream close.
func TestEventsFollowLiveJob(t *testing.T) {
	started := make(chan string, 1)
	_, ts := newTestServer(t, Config{Pipeline: blockingPipeline(started)})
	jb, _ := submit(t, ts, tinyRequest(), "")
	<-started

	resp, err := http.Get(ts.URL + "/v1/jobs/" + jb.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	read := make(chan string, 16)
	go func() {
		defer close(read)
		for sc.Scan() {
			var ev JobEvent
			if json.Unmarshal(sc.Bytes(), &ev) == nil && ev.Cat == "job" {
				read <- ev.Name
			}
		}
	}()
	expect := func(want string) {
		select {
		case got := <-read:
			if got != want {
				t.Fatalf("event %q, want %q", got, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %q", want)
		}
	}
	expect("queued")
	expect("running")

	hr, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+jb.ID, nil)
	if dresp, err := http.DefaultClient.Do(hr); err == nil {
		dresp.Body.Close()
	}
	expect("cancelled")
	if _, more := <-read; more {
		t.Fatal("stream did not terminate after the job finished")
	}
}
