package server

import (
	"bufio"
	"context"
	"net/http"
	"runtime"
	"testing"
	"time"

	"autopilot/internal/core"
	"autopilot/internal/dse"
)

// gatedPipeline parks each job until release is closed, then succeeds with an
// empty report — fuel for drain tests that need a job to finish on cue.
func gatedPipeline(started chan<- string, release <-chan struct{}) func(context.Context, core.Spec) (*core.Report, error) {
	return func(ctx context.Context, spec core.Spec) (*core.Report, error) {
		if started != nil {
			started <- spec.Platform.Name
		}
		select {
		case <-release:
			return &core.Report{Phase2: &dse.Result{}}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TestDrainRefusesNewJobsAndCompletesRunning pins graceful shutdown: once
// Drain starts, submissions and health checks turn 503 while the running job
// keeps executing; when it finishes, Drain returns cleanly and the job's
// terminal state is done, not cancelled.
func TestDrainRefusesNewJobsAndCompletesRunning(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	svc, ts := newTestServer(t, Config{JobWorkers: 1, Pipeline: gatedPipeline(started, release)})

	jb, code := submit(t, ts, tinyRequest(), "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	<-started // the job is on a worker, parked on the gate

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- svc.Drain(ctx)
	}()

	// Drain flips the refusal flag before it starts waiting; poll until both
	// surfaces report draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, code := submit(t, ts, tinyRequest(), ""); code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions never turned 503 during drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %d, want 503", resp.StatusCode)
	}

	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a job still running", err)
	default:
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v, want nil after the job finished", err)
	}
	if got := getJob(t, ts, jb.ID); got.State != "done" {
		t.Errorf("job state after drain = %s, want done", got.State)
	}
}

// TestDrainDeadlineCancelsStragglers pins the drain budget: a job that never
// finishes makes Drain return the context error at its deadline, and the
// server still ends up closed with the job cancelled.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	started := make(chan string, 1)
	svc, ts := newTestServer(t, Config{JobWorkers: 1, Pipeline: blockingPipeline(started)})

	jb, code := submit(t, ts, tinyRequest(), "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := svc.Drain(ctx); err == nil {
		t.Fatal("Drain = nil, want deadline error with a stuck job")
	}
	if got := waitJob(t, ts, jb.ID); got.State != "cancelled" {
		t.Errorf("stuck job state = %s, want cancelled", got.State)
	}
}

// TestEventsClientDisconnectReleasesStream pins the NDJSON stream's cleanup:
// a client that goes away mid-stream (job still running, log still open) must
// unblock the server-side handler promptly — no goroutine parked on the event
// log per dead subscriber.
func TestEventsClientDisconnectReleasesStream(t *testing.T) {
	started := make(chan string, 1)
	_, ts := newTestServer(t, Config{JobWorkers: 1, Pipeline: blockingPipeline(started)})

	jb, code := submit(t, ts, tinyRequest(), "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	<-started
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	const streams = 8
	for i := 0; i < streams; i++ {
		req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+jb.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events: status %d", resp.StatusCode)
		}
		// Read one event so the stream is demonstrably established and
		// parked in eventLog.wait before we hang up.
		if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		defer resp.Body.Close()
	}
	if n := runtime.NumGoroutine(); n < base+streams {
		t.Logf("only %d goroutines over base %d before disconnect", n-base, base)
	}

	cancel() // every subscriber hangs up mid-stream

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+1 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after disconnect: %d > base %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
