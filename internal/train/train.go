// Package train is the unified Phase-1 training engine: one seam between
// AutoPilot's orchestrator and the reinforcement-learning algorithms that
// populate the Air Learning policy database (paper §III-A — the multi-day RL
// sweep over the E2E template family). It mirrors the shape of internal/hw:
// an Algorithm interface consumes Transitions from a Collector that runs
// batched, worker-pooled rollouts, and an Engine drives the whole sweep.
//
// The engine guarantees:
//
//   - cancellation: the caller's context is honored between training
//     episodes and inside batched evaluation rollouts, so an interrupted
//     sweep returns promptly with an error wrapping ctx.Err();
//   - bitwise determinism at any worker count: per-run seeds derive from the
//     hyper-parameter identity (JobSeed), per-episode evaluation seeds derive
//     from the episode index, and frozen-policy evaluation uses the pure
//     batched network forward — a sweep at workers=8 produces the same
//     database, bit for bit, as workers=1;
//   - resumability: with a checkpoint path configured, the database is
//     snapshotted atomically after every completed (hyper, scenario) record
//     and a restarted sweep skips points the checkpoint already holds;
//   - observability: per-run progress (episodes done, env steps, validated
//     success rate, wall time) streams through a pluggable Sink.
//
// The concrete algorithms (DQN, REINFORCE) live in internal/rl and plug in
// behind the Algorithm interface via a Factory; this package never imports
// them.
package train

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"autopilot/internal/airlearning"
	"autopilot/internal/policy"
	"autopilot/internal/pool"
)

// Algorithm is one reinforcement-learning method stepped by the engine's
// episode loop. The engine rolls the behavior policy (Act) through the
// environment, streams every Transition into Observe — where value-based
// methods update on their own schedule — and fires EndEpisode at each
// episode boundary, where Monte-Carlo methods apply their update. Policy
// returns the frozen deployment policy the collector validates; it should
// implement airlearning.BatchPolicy so evaluation rollouts can batch and
// parallelize.
type Algorithm interface {
	// Name identifies the method ("dqn", "reinforce") for progress reports.
	Name() string
	// Act selects the behavior-policy (exploration) action.
	Act(obs airlearning.Observation) int
	// Observe consumes one transition; the algorithm may update immediately,
	// on a schedule, or not at all.
	Observe(t airlearning.Transition)
	// EndEpisode marks an episode boundary with its result.
	EndEpisode(res airlearning.EpisodeResult)
	// Policy returns the current greedy deployment policy.
	Policy() airlearning.Policy
}

// Factory builds a fresh Algorithm for one (hyper, seed) training run. It
// must be deterministic in its arguments alone so a sweep reproduces the
// same agents whichever worker constructs them.
type Factory func(h policy.Hyper, seed int64) (Algorithm, error)

// Config parameterizes the engine.
type Config struct {
	// Episodes is the training budget per policy; EvalEpisodes the number of
	// domain-randomized validation rollouts. Both must be positive.
	Episodes     int
	EvalEpisodes int

	// Seed is the base seed. Train uses it directly; Sweep derives each
	// run's seed from it via JobSeed so results are identical at any worker
	// count.
	Seed int64

	// Workers bounds the sweep and evaluation worker pools; <= 0 selects
	// runtime.NumCPU(). The worker count never changes results.
	Workers int

	// EvalBatch is the number of evaluation episodes stepped in lockstep
	// through the batched network forward; <= 0 selects DefaultEvalBatch.
	EvalBatch int

	// Checkpoint is the database snapshot path. When non-empty, Sweep
	// resumes from an existing snapshot (skipping already-trained points)
	// and atomically re-snapshots after every completed record. Empty
	// disables checkpointing.
	Checkpoint string

	// ProgressEvery reports training progress to the sink every N completed
	// episodes; <= 0 reports only run completion.
	ProgressEvery int
}

// Validate checks the training budgets.
func (c Config) Validate() error {
	if c.Episodes <= 0 || c.EvalEpisodes <= 0 {
		return fmt.Errorf("train: non-positive training budget (episodes %d, eval %d)",
			c.Episodes, c.EvalEpisodes)
	}
	return nil
}

// evalSeedOffset separates a run's evaluation environments from its training
// environment, preserving the historical rl.TrainPolicy assignment
// (train seed s, eval seed s+1000).
const evalSeedOffset = 1000

// JobSeed derives the per-policy training seed from the hyper-parameter
// identity, never from sweep position, so Phase-1 results are identical
// whichever worker (or submission order) trains a policy. For the full
// Table II family the derived seeds coincide with the historical sequential
// assignment (base, base+1, ...), keeping surrogate-calibration runs
// reproducible across versions.
func JobSeed(base int64, h policy.Hyper) int64 {
	filterIdx := 0
	for i, f := range policy.FilterChoices {
		if f == h.Filters {
			filterIdx = i
			break
		}
	}
	return base + int64((h.Layers-2)*len(policy.FilterChoices)+filterIdx)
}

// Engine drives Phase-1 training runs: a Factory supplies the algorithm, the
// engine owns the episode loop, cancellation, batched evaluation,
// checkpointing, and progress reporting.
type Engine struct {
	factory Factory
	cfg     Config

	mu   sync.Mutex // serializes sink reports across sweep workers
	sink Sink
}

// Option customizes an Engine.
type Option func(*Engine)

// WithSink routes progress reports to s. The engine serializes calls, so
// sinks need no locking of their own.
func WithSink(s Sink) Option {
	return func(e *Engine) { e.sink = s }
}

// New returns an engine that builds algorithms with factory under cfg.
func New(factory Factory, cfg Config, opts ...Option) *Engine {
	e := &Engine{factory: factory, cfg: cfg}
	for _, o := range opts {
		o(e)
	}
	return e
}

func (e *Engine) report(p Progress) {
	if e.sink == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sink.Report(p)
}

// Train runs one (hyper, scenario) training run with the config's base seed
// — the single-policy entry point (cmd/trainsim, the deprecated
// rl.TrainPolicy shim). Cancellation is checked between episodes and inside
// the evaluation rollouts.
func (e *Engine) Train(ctx context.Context, h policy.Hyper, s airlearning.Scenario) (airlearning.Record, airlearning.Policy, error) {
	return e.train(ctx, h, s, e.cfg.Seed)
}

// train is one training run at an explicit seed.
func (e *Engine) train(ctx context.Context, h policy.Hyper, s airlearning.Scenario, seed int64) (airlearning.Record, airlearning.Policy, error) {
	if err := e.cfg.Validate(); err != nil {
		return airlearning.Record{}, nil, err
	}
	alg, err := e.factory(h, seed)
	if err != nil {
		return airlearning.Record{}, nil, err
	}
	env := airlearning.NewEnv(s, seed)
	start := time.Now()
	prog := Progress{Hyper: h, Scenario: s, Algorithm: alg.Name(), Episodes: e.cfg.Episodes}
	steps := 0
	for ep := 0; ep < e.cfg.Episodes; ep++ {
		if err := ctx.Err(); err != nil {
			return airlearning.Record{}, nil, fmt.Errorf("train: cancelled: %w", err)
		}
		res := RunTrainingEpisode(env, alg)
		steps += res.Steps
		if e.cfg.ProgressEvery > 0 && (ep+1)%e.cfg.ProgressEvery == 0 {
			prog.Episode, prog.Steps, prog.Return, prog.Elapsed = ep+1, steps, res.Return, time.Since(start)
			e.report(prog)
		}
	}

	pol := alg.Policy()
	col := Collector{
		Scenario: s,
		Seed:     seed + evalSeedOffset,
		Workers:  e.cfg.Workers,
		Batch:    e.cfg.EvalBatch,
	}
	rate, err := col.SuccessRate(ctx, pol, e.cfg.EvalEpisodes)
	if err != nil {
		return airlearning.Record{}, nil, err
	}
	params := int64(0)
	if n, err := policy.Build(h, policy.DefaultTemplate()); err == nil {
		params = n.Params()
	}
	rec := airlearning.Record{
		Hyper:       h,
		Scenario:    s,
		SuccessRate: rate,
		Params:      params,
		TrainSteps:  steps,
	}
	prog.Episode, prog.Steps, prog.SuccessRate = e.cfg.Episodes, steps, rate
	prog.Elapsed, prog.Done = time.Since(start), true
	e.report(prog)
	return rec, pol, nil
}

// Sweep trains every hyper on the scenario, fanning runs out over the
// config's worker pool with identity-derived seeds, and fills db with the
// validated records. With a checkpoint configured it first resumes from any
// existing snapshot (already-trained points are skipped) and re-snapshots
// the database after each completed record, so an interrupted sweep restarts
// where it left off and converges to the same database as an uninterrupted
// run.
func (e *Engine) Sweep(ctx context.Context, hypers []policy.Hyper, s airlearning.Scenario, db *airlearning.Database) error {
	if err := e.cfg.Validate(); err != nil {
		return err
	}
	if e.cfg.Checkpoint != "" {
		prev, err := airlearning.Load(e.cfg.Checkpoint)
		switch {
		case err == nil:
			for _, r := range prev.All() {
				db.Put(r)
			}
		case errors.Is(err, os.ErrNotExist):
			// fresh run: nothing to resume
		default:
			return fmt.Errorf("train: resume checkpoint: %w", err)
		}
	}
	var todo []policy.Hyper
	for _, h := range hypers {
		if !db.Has(h, s) {
			todo = append(todo, h)
		}
	}
	return pool.ForEach(ctx, e.cfg.Workers, todo, func(ctx context.Context, h policy.Hyper) error {
		rec, _, err := e.train(ctx, h, s, JobSeed(e.cfg.Seed, h))
		if err != nil {
			return err
		}
		db.Put(rec)
		if e.cfg.Checkpoint != "" {
			if err := db.Snapshot(e.cfg.Checkpoint); err != nil {
				return err
			}
		}
		return nil
	})
}
