// Package train is the unified Phase-1 training engine: one seam between
// AutoPilot's orchestrator and the reinforcement-learning algorithms that
// populate the Air Learning policy database (paper §III-A — the multi-day RL
// sweep over the E2E template family). It mirrors the shape of internal/hw:
// an Algorithm interface consumes Transitions from a Collector that runs
// batched, worker-pooled rollouts, and an Engine drives the whole sweep.
//
// The engine guarantees:
//
//   - cancellation: the caller's context is honored between training
//     episodes and inside batched evaluation rollouts, so an interrupted
//     sweep returns promptly with an error wrapping ctx.Err();
//   - bitwise determinism at any worker count: per-run seeds derive from the
//     hyper-parameter identity (JobSeed), per-episode evaluation seeds derive
//     from the episode index, and frozen-policy evaluation uses the pure
//     batched network forward — a sweep at workers=8 produces the same
//     database, bit for bit, as workers=1;
//   - resumability: with a checkpoint path configured, the database is
//     snapshotted atomically after every completed (hyper, scenario) record
//     and a restarted sweep skips points the checkpoint already holds;
//   - observability: per-run progress (episodes done, env steps, validated
//     success rate, wall time) streams through the internal/obs event
//     stream (Cat "train", Name "progress"); legacy Sinks ride on it as
//     adapters, and with Config.Obs set the engine also records episode,
//     step, and per-run latency instruments plus per-run trace spans.
//
// The concrete algorithms (DQN, REINFORCE) live in internal/rl and plug in
// behind the Algorithm interface via a Factory; this package never imports
// them.
package train

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"autopilot/internal/airlearning"
	"autopilot/internal/fault"
	"autopilot/internal/obs"
	"autopilot/internal/policy"
	"autopilot/internal/pool"
)

// Algorithm is one reinforcement-learning method stepped by the engine's
// episode loop. The engine rolls the behavior policy (Act) through the
// environment, streams every Transition into Observe — where value-based
// methods update on their own schedule — and fires EndEpisode at each
// episode boundary, where Monte-Carlo methods apply their update. Policy
// returns the frozen deployment policy the collector validates; it should
// implement airlearning.BatchPolicy so evaluation rollouts can batch and
// parallelize.
type Algorithm interface {
	// Name identifies the method ("dqn", "reinforce") for progress reports.
	Name() string
	// Act selects the behavior-policy (exploration) action.
	Act(obs airlearning.Observation) int
	// Observe consumes one transition; the algorithm may update immediately,
	// on a schedule, or not at all.
	Observe(t airlearning.Transition)
	// EndEpisode marks an episode boundary with its result.
	EndEpisode(res airlearning.EpisodeResult)
	// Policy returns the current greedy deployment policy.
	Policy() airlearning.Policy
}

// Factory builds a fresh Algorithm for one (hyper, seed) training run. It
// must be deterministic in its arguments alone so a sweep reproduces the
// same agents whichever worker constructs them.
type Factory func(h policy.Hyper, seed int64) (Algorithm, error)

// Config parameterizes the engine.
type Config struct {
	// Episodes is the training budget per policy; EvalEpisodes the number of
	// domain-randomized validation rollouts. Both must be positive.
	Episodes     int
	EvalEpisodes int

	// Seed is the base seed. Train uses it directly; Sweep derives each
	// run's seed from it via JobSeed so results are identical at any worker
	// count.
	Seed int64

	// Workers bounds the sweep and evaluation worker pools; <= 0 selects
	// runtime.NumCPU(). The worker count never changes results.
	Workers int

	// EvalBatch is the number of evaluation episodes stepped in lockstep
	// through the batched network forward; <= 0 selects DefaultEvalBatch.
	EvalBatch int

	// Checkpoint is the database snapshot path. When non-empty, Sweep
	// resumes from an existing snapshot (skipping already-trained points)
	// and atomically re-snapshots after every completed record. Empty
	// disables checkpointing.
	Checkpoint string

	// ProgressEvery reports training progress to the sink every N completed
	// episodes; <= 0 reports only run completion.
	ProgressEvery int

	// Retry is the per-job retry policy for sweep training runs. The zero
	// value performs a single attempt (no retries, behaviorally identical to
	// the pre-retry engine). Retried attempts perturb the job's seed via
	// fault.AttemptSeed — attempt 0 always uses the unperturbed JobSeed —
	// so a job that succeeds first try is bitwise unchanged, and a retried
	// job is deterministic in (hyper, scenario, attempt).
	Retry fault.Policy

	// FailureBudget is the fraction of sweep jobs allowed to fail (after
	// retries) before the sweep itself errors. 0 preserves the historical
	// fail-fast semantics: the first job error aborts the sweep. A budget of
	// 0.25 lets a sweep complete — with the failures reported in its
	// SweepReport — as long as at least 75% of the attempted jobs produced
	// validated records.
	FailureBudget float64

	// Injector, when non-nil, deterministically injects faults into sweep
	// training jobs for chaos testing. Jobs are keyed "record-key#attempt",
	// so whether a job draws a fault is a pure function of its identity (and
	// retry attempt), never of worker count or scheduling.
	Injector *fault.Injector

	// Obs, when non-nil, instruments the engine: episode/step counters and
	// per-run latency land in its registry, training runs and evaluation
	// become trace spans, and progress reports are mirrored onto its event
	// stream (Cat "train", Name "progress", Payload Progress). Nil disables
	// all instrumentation at zero cost — results are bitwise identical
	// either way.
	Obs *obs.Observer
}

// Validate checks the training budgets.
func (c Config) Validate() error {
	if c.Episodes <= 0 || c.EvalEpisodes <= 0 {
		return fmt.Errorf("train: non-positive training budget (episodes %d, eval %d)",
			c.Episodes, c.EvalEpisodes)
	}
	return nil
}

// evalSeedOffset separates a run's evaluation environments from its training
// environment, preserving the historical rl.TrainPolicy assignment
// (train seed s, eval seed s+1000).
const evalSeedOffset = 1000

// JobSeed derives the per-policy training seed from the hyper-parameter
// identity, never from sweep position, so Phase-1 results are identical
// whichever worker (or submission order) trains a policy. For the full
// Table II family the derived seeds coincide with the historical sequential
// assignment (base, base+1, ...), keeping surrogate-calibration runs
// reproducible across versions.
func JobSeed(base int64, h policy.Hyper) int64 {
	filterIdx := 0
	for i, f := range policy.FilterChoices {
		if f == h.Filters {
			filterIdx = i
			break
		}
	}
	return base + int64((h.Layers-2)*len(policy.FilterChoices)+filterIdx)
}

// Engine drives Phase-1 training runs: a Factory supplies the algorithm, the
// engine owns the episode loop, cancellation, batched evaluation,
// checkpointing, and progress reporting.
type Engine struct {
	factory Factory
	cfg     Config

	mu     sync.Mutex // serializes event emission across sweep workers
	events obs.EventSink

	// Instruments, resolved once in New so the episode loop touches no maps.
	// All are nil when Config.Obs is nil — every method on them no-ops.
	cEpisodes *obs.Counter   // train.episodes: training episodes completed
	cSteps    *obs.Counter   // train.env_steps: training env steps taken
	cRuns     *obs.Counter   // train.runs: (hyper, scenario) runs validated
	hRunSec   *obs.Histogram // train.run_seconds: per-run wall time
}

// New returns an engine that builds algorithms with factory under cfg.
// Progress flows through the obs event stream (Config.Obs.Events); legacy
// Sinks attach by adapting over it with SinkEvents.
func New(factory Factory, cfg Config) *Engine {
	e := &Engine{factory: factory, cfg: cfg}
	if cfg.Obs != nil {
		e.events = cfg.Obs.Events
		e.cEpisodes = cfg.Obs.Counter("train.episodes")
		e.cSteps = cfg.Obs.Counter("train.env_steps")
		e.cRuns = cfg.Obs.Counter("train.runs")
		e.hRunSec = cfg.Obs.Histogram("train.run_seconds", obs.ExpBuckets(0.001, 4, 12))
	}
	return e
}

func (e *Engine) report(p Progress) {
	if e.events == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.events.Emit(obs.Event{Cat: "train", Name: "progress", Payload: p})
}

// Train runs one (hyper, scenario) training run with the config's base seed
// — the single-policy entry point (cmd/trainsim, rl.Engine). Cancellation is
// checked between episodes and inside the evaluation rollouts.
func (e *Engine) Train(ctx context.Context, h policy.Hyper, s airlearning.Scenario) (airlearning.Record, airlearning.Policy, error) {
	return e.train(obs.NewContext(ctx, e.cfg.Obs), h, s, e.cfg.Seed)
}

// train is one training run at an explicit seed.
func (e *Engine) train(ctx context.Context, h policy.Hyper, s airlearning.Scenario, seed int64) (airlearning.Record, airlearning.Policy, error) {
	if err := e.cfg.Validate(); err != nil {
		return airlearning.Record{}, nil, err
	}
	alg, err := e.factory(h, seed)
	if err != nil {
		return airlearning.Record{}, nil, err
	}
	// One span per training run, forked onto its own trace lane so concurrent
	// sweep jobs render side by side. The name is only built when tracing is
	// live, keeping the disabled path allocation-free.
	var sp *obs.Span
	if obs.Tracing(ctx) {
		sp = obs.StartJob(ctx, "train "+airlearning.Key(h, s), "train")
		ctx = obs.ContextWithSpan(ctx, sp)
	}
	defer sp.End()
	env := airlearning.NewEnv(s, seed)
	start := time.Now()
	prog := Progress{Hyper: h, Scenario: s, Algorithm: alg.Name(), Episodes: e.cfg.Episodes}
	steps := 0
	for ep := 0; ep < e.cfg.Episodes; ep++ {
		if err := ctx.Err(); err != nil {
			return airlearning.Record{}, nil, fmt.Errorf("train: cancelled: %w", err)
		}
		res := RunTrainingEpisode(env, alg)
		if err := fault.CheckFinite("episode return", res.Return); err != nil {
			return airlearning.Record{}, nil, fmt.Errorf("train: %s on %s episode %d: %w", alg.Name(), s, ep, err)
		}
		steps += res.Steps
		e.cEpisodes.Inc()
		e.cSteps.Add(int64(res.Steps))
		if e.cfg.ProgressEvery > 0 && (ep+1)%e.cfg.ProgressEvery == 0 {
			prog.Episode, prog.Steps, prog.Return, prog.Elapsed = ep+1, steps, res.Return, time.Since(start)
			e.report(prog)
		}
	}

	pol := alg.Policy()
	col := Collector{
		Scenario: s,
		Seed:     seed + evalSeedOffset,
		Workers:  e.cfg.Workers,
		Batch:    e.cfg.EvalBatch,
		Obs:      e.cfg.Obs,
	}
	esp := obs.StartStep(ctx, "eval", "train")
	rate, err := col.SuccessRate(obs.ContextWithSpan(ctx, esp), pol, e.cfg.EvalEpisodes)
	esp.End()
	if err != nil {
		return airlearning.Record{}, nil, err
	}
	if err := fault.CheckFinite("validated success rate", rate); err != nil {
		return airlearning.Record{}, nil, fmt.Errorf("train: %s on %s: %w", alg.Name(), s, err)
	}
	params := int64(0)
	if n, err := policy.Build(h, policy.DefaultTemplate()); err == nil {
		params = n.Params()
	}
	rec := airlearning.Record{
		Hyper:       h,
		Scenario:    s,
		SuccessRate: rate,
		Params:      params,
		TrainSteps:  steps,
	}
	prog.Episode, prog.Steps, prog.SuccessRate = e.cfg.Episodes, steps, rate
	prog.Elapsed, prog.Done = time.Since(start), true
	e.cRuns.Inc()
	e.hRunSec.Observe(prog.Elapsed.Seconds())
	e.report(prog)
	return rec, pol, nil
}

// SweepReport summarizes a completed sweep: how many records were trained
// this run, how many the checkpoint already held, which jobs failed after
// exhausting their retries (in deterministic hyper order), and whether a
// corrupt checkpoint had to be quarantined before starting.
type SweepReport struct {
	// Trained is the number of records produced by this run.
	Trained int
	// Skipped is the number of points the resumed checkpoint already held.
	Skipped int
	// Failures records every job that failed after retries, in the hypers'
	// submission order — identical at any worker count.
	Failures []fault.Failure
	// CheckpointQuarantined is the path a corrupt checkpoint was renamed to
	// (empty when the checkpoint was absent or valid).
	CheckpointQuarantined string
}

// trainJob runs one sweep job under the engine's retry policy and fault
// injector. Attempt 0 uses the unperturbed identity-derived seed; retries
// re-derive it with fault.AttemptSeed so every attempt is deterministic in
// (hyper, scenario, attempt) alone.
func (e *Engine) trainJob(ctx context.Context, h policy.Hyper, s airlearning.Scenario) (airlearning.Record, error) {
	base := JobSeed(e.cfg.Seed, h)
	key := airlearning.Key(h, s)
	var rec airlearning.Record
	err := fault.Retry(ctx, e.cfg.Retry, func(ctx context.Context, attempt int) error {
		jobKey := fmt.Sprintf("%s#%d", key, attempt)
		return e.cfg.Injector.Invoke(jobKey, func() error {
			r, _, err := e.train(ctx, h, s, fault.AttemptSeed(base, attempt))
			if err != nil {
				return err
			}
			r.SuccessRate = e.cfg.Injector.Value(jobKey, r.SuccessRate)
			if err := fault.CheckFinite("validated success rate", r.SuccessRate); err != nil {
				return err
			}
			rec = r
			return nil
		})
	})
	return rec, err
}

// Sweep trains every hyper on the scenario, fanning runs out over the
// config's worker pool with identity-derived seeds, and fills db with the
// validated records. With a checkpoint configured it first resumes from any
// existing snapshot (already-trained points are skipped) and re-snapshots
// the database after each completed record, so an interrupted sweep restarts
// where it left off and converges to the same database as an uninterrupted
// run. A corrupt checkpoint is quarantined (renamed aside by the loader) and
// the sweep restarts from scratch, reporting the quarantine path.
//
// Each job runs under the config's retry policy with panic isolation; with a
// zero FailureBudget the first exhausted job aborts the sweep (fail-fast),
// while a positive budget lets the sweep complete — failures recorded in the
// report — as long as the failed fraction stays within budget.
func (e *Engine) Sweep(ctx context.Context, hypers []policy.Hyper, s airlearning.Scenario, db *airlearning.Database) (*SweepReport, error) {
	if err := e.cfg.Validate(); err != nil {
		return nil, err
	}
	ctx = obs.NewContext(ctx, e.cfg.Obs)
	sp := obs.StartStep(ctx, "sweep "+s.String(), "train")
	defer sp.End()
	ctx = obs.ContextWithSpan(ctx, sp)
	report := &SweepReport{}
	if e.cfg.Checkpoint != "" {
		prev, err := airlearning.Load(e.cfg.Checkpoint)
		var corrupt *airlearning.CorruptError
		switch {
		case err == nil:
			for _, r := range prev.All() {
				db.Put(r)
			}
		case errors.Is(err, os.ErrNotExist):
			// fresh run: nothing to resume
		case errors.As(err, &corrupt):
			// Damaged checkpoint: the loader already quarantined it; note
			// where and restart from scratch.
			report.CheckpointQuarantined = corrupt.Quarantined
			e.cfg.Obs.Emit(obs.Event{Cat: "checkpoint", Name: "quarantined", Payload: corrupt.Quarantined})
		default:
			return nil, fmt.Errorf("train: resume checkpoint: %w", err)
		}
	}
	var todo []policy.Hyper
	for _, h := range hypers {
		if !db.Has(h, s) {
			todo = append(todo, h)
		}
	}
	report.Skipped = len(hypers) - len(todo)
	e.cfg.Obs.Counter("train.jobs.skipped").Add(int64(report.Skipped))

	run := func(ctx context.Context, h policy.Hyper) error {
		rec, err := e.trainJob(ctx, h, s)
		if err != nil {
			return err
		}
		db.Put(rec)
		if e.cfg.Checkpoint != "" {
			if err := db.Snapshot(e.cfg.Checkpoint); err != nil {
				return err
			}
		}
		return nil
	}

	if e.cfg.FailureBudget <= 0 {
		// Historical fail-fast semantics: the first exhausted job cancels
		// the batch.
		if err := pool.ForEach(ctx, e.cfg.Workers, todo, run); err != nil {
			return nil, err
		}
		report.Trained = len(todo)
		e.cfg.Obs.Counter("train.jobs.trained").Add(int64(report.Trained))
		return report, nil
	}

	// Graceful degradation: isolate per-job failures, then check the budget.
	_, errs, err := pool.MapEach(ctx, e.cfg.Workers, todo, func(ctx context.Context, h policy.Hyper) (struct{}, error) {
		return struct{}{}, run(ctx, h)
	})
	if err != nil {
		return nil, err
	}
	for i, jerr := range errs {
		if jerr == nil {
			report.Trained++
			continue
		}
		report.Failures = append(report.Failures, fault.NewFailure(airlearning.Key(todo[i], s), jerr))
	}
	e.cfg.Obs.Counter("train.jobs.trained").Add(int64(report.Trained))
	e.cfg.Obs.Counter("train.jobs.failed").Add(int64(len(report.Failures)))
	if n := len(todo); n > 0 {
		if frac := float64(len(report.Failures)) / float64(n); frac > e.cfg.FailureBudget {
			return report, fmt.Errorf("train: %d/%d sweep jobs failed (%.0f%% > budget %.0f%%)\n%s",
				len(report.Failures), n, frac*100, e.cfg.FailureBudget*100, fault.Summarize(report.Failures))
		}
	}
	return report, nil
}
