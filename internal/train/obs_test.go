package train_test

import (
	"context"
	"testing"

	"autopilot/internal/airlearning"
	"autopilot/internal/obs"
	"autopilot/internal/policy"
	"autopilot/internal/rl"
	"autopilot/internal/train"
)

// sweepRecords runs a tiny real training sweep and returns the resulting
// records, optionally with a full observer (metrics + tracer + events)
// attached.
func sweepRecords(t *testing.T, workers int, o *obs.Observer) []airlearning.Record {
	t.Helper()
	hypers := []policy.Hyper{{Layers: 2, Filters: 32}, {Layers: 3, Filters: 32}}
	cfg := rl.TrainConfig{Algorithm: rl.AlgDQN, Episodes: 40, EvalEpisodes: 10, Seed: 1}
	db := airlearning.NewDatabase()
	eng := train.New(rl.Factory(cfg), train.Config{
		Episodes:     cfg.Episodes,
		EvalEpisodes: cfg.EvalEpisodes,
		Seed:         cfg.Seed,
		Workers:      workers,
		Obs:          o,
	})
	if _, err := eng.Sweep(context.Background(), hypers, airlearning.LowObstacle, db); err != nil {
		t.Fatal(err)
	}
	out := make([]airlearning.Record, 0, len(hypers))
	for _, h := range hypers {
		rec, ok := db.Get(h, airlearning.LowObstacle)
		if !ok {
			t.Fatalf("no record for %s", h)
		}
		out = append(out, rec)
	}
	return out
}

// TestObsBitwiseNeutral pins the observability contract for Phase 1:
// attaching the full observer changes no trained bit — success rates and env
// step counts are identical with obs on and off, at any worker count.
func TestObsBitwiseNeutral(t *testing.T) {
	for _, workers := range []int{1, 8} {
		plain := sweepRecords(t, workers, nil)
		o := &obs.Observer{
			Metrics: obs.NewRegistry(),
			Trace:   obs.NewTracer(),
			Events:  obs.EventFunc(func(obs.Event) {}),
		}
		instr := sweepRecords(t, workers, o)
		for i := range plain {
			if plain[i].SuccessRate != instr[i].SuccessRate {
				t.Errorf("workers=%d %s: success rate %x with obs off, %x with obs on",
					workers, plain[i].Hyper, plain[i].SuccessRate, instr[i].SuccessRate)
			}
			if plain[i].TrainSteps != instr[i].TrainSteps {
				t.Errorf("workers=%d %s: %d env steps with obs off, %d with obs on",
					workers, plain[i].Hyper, plain[i].TrainSteps, instr[i].TrainSteps)
			}
		}
	}
}

// TestObsSweepTelemetry checks the instruments a sweep is expected to leave
// behind: episode/step/run counters, per-run job spans, and the sweep span.
func TestObsSweepTelemetry(t *testing.T) {
	o := &obs.Observer{Metrics: obs.NewRegistry(), Trace: obs.NewTracer()}
	recs := sweepRecords(t, 2, o)
	r := o.Metrics
	if got := r.Counter("train.runs").Value(); got != int64(len(recs)) {
		t.Errorf("train.runs = %d, want %d", got, len(recs))
	}
	if got := r.Counter("train.jobs.trained").Value(); got != int64(len(recs)) {
		t.Errorf("train.jobs.trained = %d, want %d", got, len(recs))
	}
	var steps int64
	for _, rec := range recs {
		steps += int64(rec.TrainSteps)
	}
	if got := r.Counter("train.env_steps").Value(); got != steps {
		t.Errorf("train.env_steps = %d, want %d (sum of record TrainSteps)", got, steps)
	}
	if r.Counter("train.episodes").Value() == 0 || r.Counter("train.eval.episodes").Value() == 0 {
		t.Error("episode counters not incremented")
	}
	if r.Counter("nn.forward_batch.calls").Value() == 0 {
		t.Error("nn.forward_batch.calls not incremented")
	}
	if got := len(o.Trace.Durations("train")); got < len(recs) {
		t.Errorf("completed %d train-category spans, want >= %d (one job span per run)", got, len(recs))
	}
}

// TestSinkEventsAdapter pins satellite (a): legacy Sinks now ride the obs
// event stream through the SinkEvents adapter, and the engine emits the same
// Progress payloads it used to deliver directly.
func TestSinkEventsAdapter(t *testing.T) {
	var direct []train.Progress
	sink := train.SinkFunc(func(p train.Progress) { direct = append(direct, p) })
	adapter := train.SinkEvents(sink)
	if train.SinkEvents(nil) != nil {
		t.Fatal("SinkEvents(nil) not nil")
	}
	adapter.Emit(obs.Event{Cat: "train", Name: "progress", Payload: train.Progress{Episode: 3}})
	adapter.Emit(obs.Event{Cat: "checkpoint", Name: "quarantined", Payload: "db"}) // wrong payload type: dropped
	if len(direct) != 1 || direct[0].Episode != 3 {
		t.Fatalf("adapter delivered %+v", direct)
	}

	// End to end: a legacy sink adapted over the event stream and a raw
	// observer event sink both see the engine's progress events.
	var viaSink, viaEvents int
	o := &obs.Observer{Events: obs.MultiSink(
		obs.EventFunc(func(e obs.Event) {
			if e.Cat == "train" && e.Name == "progress" {
				if _, ok := e.Payload.(train.Progress); !ok {
					t.Errorf("progress payload has type %T", e.Payload)
				}
				viaEvents++
			}
		}),
		train.SinkEvents(train.SinkFunc(func(train.Progress) { viaSink++ })),
	)}
	cfg := rl.TrainConfig{Algorithm: rl.AlgDQN, Episodes: 20, EvalEpisodes: 5, Seed: 1}
	eng := train.New(rl.Factory(cfg), train.Config{
		Episodes:     cfg.Episodes,
		EvalEpisodes: cfg.EvalEpisodes,
		Seed:         cfg.Seed,
		Obs:          o,
	})
	if _, _, err := eng.Train(context.Background(), policy.Hyper{Layers: 2, Filters: 32}, airlearning.LowObstacle); err != nil {
		t.Fatal(err)
	}
	if viaSink == 0 || viaSink != viaEvents {
		t.Fatalf("sink saw %d progress reports, event stream saw %d", viaSink, viaEvents)
	}
}
