package train

import (
	"fmt"
	"io"
	"time"

	"autopilot/internal/airlearning"
	"autopilot/internal/obs"
	"autopilot/internal/policy"
)

// Progress is one training-run status report: emitted every
// Config.ProgressEvery episodes while a run trains, and once more with Done
// set when its record has been validated.
type Progress struct {
	Hyper     policy.Hyper
	Scenario  airlearning.Scenario
	Algorithm string

	Episode  int // training episodes completed
	Episodes int // training budget
	Steps    int // cumulative env steps

	Return      float64       // return of the last completed episode
	SuccessRate float64       // validated success rate; meaningful when Done
	Elapsed     time.Duration // wall time since the run started

	Done bool
}

// Sink receives progress reports. The engine serializes Report calls across
// its sweep workers, so implementations need no locking of their own.
type Sink interface {
	Report(Progress)
}

// SinkFunc adapts a plain function to the Sink interface.
type SinkFunc func(Progress)

// Report calls f.
func (f SinkFunc) Report(p Progress) { f(p) }

// SinkEvents adapts a legacy Sink over the obs event stream: the returned
// sink forwards every train/progress event's Progress payload to s and
// ignores everything else. This is how the engine keeps WithSink consumers
// (cmd/trainsim's writer sink) working unchanged now that progress is an
// obs.Event. A nil Sink yields a nil EventSink.
func SinkEvents(s Sink) obs.EventSink {
	if s == nil {
		return nil
	}
	return obs.EventFunc(func(e obs.Event) {
		if p, ok := e.Payload.(Progress); ok {
			s.Report(p)
		}
	})
}

// writerSink prints one line per report.
type writerSink struct{ w io.Writer }

// NewWriterSink returns a sink that renders each report as one line on w —
// what cmd/trainsim wires to stdout.
func NewWriterSink(w io.Writer) Sink { return writerSink{w: w} }

// Report renders p.
func (s writerSink) Report(p Progress) {
	if p.Done {
		fmt.Fprintf(s.w, "%s/%s [%s] done: %d episodes, %d env steps, %.0f%% success (%.1fs)\n",
			p.Hyper, p.Scenario, p.Algorithm, p.Episode, p.Steps, 100*p.SuccessRate, p.Elapsed.Seconds())
		return
	}
	fmt.Fprintf(s.w, "%s/%s [%s] episode %d/%d: return %.2f, %d env steps (%.1fs)\n",
		p.Hyper, p.Scenario, p.Algorithm, p.Episode, p.Episodes, p.Return, p.Steps, p.Elapsed.Seconds())
}
