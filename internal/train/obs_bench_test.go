package train_test

import (
	"context"
	"testing"

	"autopilot/internal/airlearning"
	"autopilot/internal/obs"
	"autopilot/internal/train"
)

// benchPolicy is a cheap batched policy so the benchmark measures the
// rollout loop (and its instrumentation), not network arithmetic.
type benchPolicy struct{}

func (benchPolicy) Act(o airlearning.Observation) int { return 0 }

func (benchPolicy) ActBatch(os []airlearning.Observation) []int {
	return make([]int, len(os))
}

// benchCollect drives the Collector's lockstep rollout path — the hot path
// every instrument in this package rides on.
func benchCollect(b *testing.B, o *obs.Observer) {
	c := train.Collector{
		Scenario: airlearning.LowObstacle,
		Seed:     1,
		Workers:  1,
		Obs:      o,
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Collect(ctx, benchPolicy{}, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectUninstrumented vs BenchmarkCollectInstrumented pins the
// observability overhead budget on the rollout path: the instrumented run
// must stay within ~2% of the uninstrumented one (compare with benchstat).
//
//	go test ./internal/train -bench Collect -benchmem
func BenchmarkCollectUninstrumented(b *testing.B) {
	benchCollect(b, nil)
}

func BenchmarkCollectInstrumented(b *testing.B) {
	benchCollect(b, &obs.Observer{Metrics: obs.NewRegistry()})
}
