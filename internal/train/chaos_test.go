// Chaos tests drive the sweep through the deterministic fault injector and
// pin the degradation contract: the injected failure set is an exact,
// precomputable function of the injector seed, the surviving records are
// bitwise identical at any worker count, and retries clear attempt-keyed
// faults.
package train_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"autopilot/internal/airlearning"
	"autopilot/internal/fault"
	"autopilot/internal/policy"
	"autopilot/internal/train"
)

// chaosHypers is a slice of the family large enough for a ~30% fault rate to
// hit a proper subset of jobs.
var chaosHypers = policy.AllHypers()[:12]

// expectedChaosFailures mirrors trainJob's single-attempt injection points:
// a job fails terminally when its attempt-0 key draws a panic, an error, or
// a NaN poison (delays and clean draws succeed).
func expectedChaosFailures(in *fault.Injector, hypers []policy.Hyper, s airlearning.Scenario) map[string]fault.Kind {
	want := map[string]fault.Kind{}
	for _, h := range hypers {
		key := airlearning.Key(h, s)
		switch in.Decide(key + "#0") {
		case fault.InjectPanic:
			want[key] = fault.KindPanic
		case fault.InjectError:
			want[key] = fault.KindError
		case fault.InjectNaN:
			want[key] = fault.KindNumerical
		}
	}
	return want
}

// TestSweepChaosDeterministicDegradation injects a seeded fault mix into a
// sweep with an open failure budget and checks the failure report matches
// the precomputed injection set exactly while the surviving records stay
// bitwise identical across worker counts and to a clean run.
func TestSweepChaosDeterministicDegradation(t *testing.T) {
	scen := airlearning.LowObstacle
	in := &fault.Injector{Seed: 5, PanicRate: 0.1, ErrorRate: 0.1, NaNRate: 0.1}
	want := expectedChaosFailures(in, chaosHypers, scen)
	if len(want) == 0 || len(want) == len(chaosHypers) {
		t.Fatalf("injector hits %d of %d jobs, want a proper subset (retune seed/rates)", len(want), len(chaosHypers))
	}

	run := func(workers int) (*airlearning.Database, []fault.Failure) {
		t.Helper()
		cfg := testConfig(workers)
		cfg.FailureBudget = 1
		cfg.Injector = in
		db := airlearning.NewDatabase()
		rep, err := train.New(testFactory(), cfg).Sweep(context.Background(), chaosHypers, scen, db)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Trained+len(rep.Failures) != len(chaosHypers) {
			t.Fatalf("workers=%d: %d trained + %d failed != %d jobs", workers, rep.Trained, len(rep.Failures), len(chaosHypers))
		}
		return db, rep.Failures
	}

	db1, fails1 := run(1)
	db8, fails8 := run(8)

	if !reflect.DeepEqual(fails1, fails8) {
		t.Fatalf("failure reports differ across worker counts:\n%v\n%v", fails1, fails8)
	}
	got := map[string]fault.Kind{}
	for _, f := range fails1 {
		got[f.Job] = f.Kind
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("failure set = %v, want the injected set %v", got, want)
	}
	if !reflect.DeepEqual(db1.All(), db8.All()) {
		t.Fatalf("surviving records differ across worker counts:\n%+v\n%+v", db1.All(), db8.All())
	}

	// Survivors must be bitwise identical to an injection-free sweep's
	// records for the same hypers: faults are isolated, not contagious.
	clean := airlearning.NewDatabase()
	if _, err := train.New(testFactory(), testConfig(4)).Sweep(context.Background(), chaosHypers, scen, clean); err != nil {
		t.Fatal(err)
	}
	for _, r := range db1.All() {
		cr, ok := clean.Get(r.Hyper, r.Scenario)
		if !ok {
			t.Fatalf("survivor %s missing from clean sweep", airlearning.Key(r.Hyper, r.Scenario))
		}
		if !reflect.DeepEqual(r, cr) {
			t.Fatalf("survivor %s differs from clean run:\n%+v\n%+v", airlearning.Key(r.Hyper, r.Scenario), r, cr)
		}
	}
}

// TestSweepRetryClearsInjectedFault finds a seed whose fault clears on the
// second attempt (injection keys include the attempt index) and checks that
// a two-attempt budget turns the would-be failure into a success, even under
// fail-fast semantics.
func TestSweepRetryClearsInjectedFault(t *testing.T) {
	scen := airlearning.LowObstacle
	h := chaosHypers[0]
	key := airlearning.Key(h, scen)
	in := &fault.Injector{ErrorRate: 0.4}
	found := false
	for seed := int64(0); seed < 200; seed++ {
		in.Seed = seed
		if in.Decide(key+"#0") == fault.InjectError && in.Decide(key+"#1") == fault.InjectNone {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no seed with a fault at attempt 0 that clears at attempt 1")
	}

	// One attempt: the injected error is terminal and fail-fast aborts.
	cfg := testConfig(1)
	cfg.Injector = in
	db := airlearning.NewDatabase()
	if _, err := train.New(testFactory(), cfg).Sweep(context.Background(), []policy.Hyper{h}, scen, db); err == nil {
		t.Fatal("single-attempt sweep succeeded despite the injected fault")
	}

	// Two attempts: the retry's attempt-1 key draws clean and the job lands.
	cfg.Retry = fault.Policy{Attempts: 2}
	db = airlearning.NewDatabase()
	rep, err := train.New(testFactory(), cfg).Sweep(context.Background(), []policy.Hyper{h}, scen, db)
	if err != nil {
		t.Fatalf("retry did not clear the injected fault: %v", err)
	}
	if rep.Trained != 1 || db.Len() != 1 {
		t.Fatalf("trained %d records, db holds %d, want 1", rep.Trained, db.Len())
	}

	// The retried result is itself deterministic.
	db2 := airlearning.NewDatabase()
	if _, err := train.New(testFactory(), cfg).Sweep(context.Background(), []policy.Hyper{h}, scen, db2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(db.All(), db2.All()) {
		t.Fatal("retried sweep is not reproducible")
	}
}

// TestSweepFailureBudgetExceeded checks that a blown budget still returns
// the failure report alongside the error.
func TestSweepFailureBudgetExceeded(t *testing.T) {
	cfg := testConfig(2)
	cfg.FailureBudget = 0.25
	cfg.Injector = &fault.Injector{Seed: 1, ErrorRate: 1}
	db := airlearning.NewDatabase()
	rep, err := train.New(testFactory(), cfg).Sweep(context.Background(), chaosHypers[:4], airlearning.LowObstacle, db)
	if err == nil {
		t.Fatal("sweep succeeded with every job failing and a 25% budget")
	}
	if rep == nil || len(rep.Failures) != 4 {
		t.Fatalf("report = %+v, want all 4 failures recorded", rep)
	}
	for i, f := range rep.Failures {
		wantJob := airlearning.Key(chaosHypers[i], airlearning.LowObstacle)
		if f.Job != wantJob || f.Kind != fault.KindError {
			t.Fatalf("failure[%d] = %+v, want %s/error", i, f, wantJob)
		}
	}
	if msg := fmt.Sprint(err); msg == "" {
		t.Fatal("budget error must render")
	}
}
