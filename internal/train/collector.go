package train

import (
	"context"
	"fmt"

	"autopilot/internal/airlearning"
	"autopilot/internal/obs"
	"autopilot/internal/pool"
)

// RunTrainingEpisode rolls the algorithm's behavior policy through one
// episode, streaming every transition into the algorithm as it happens, and
// fires the episode-boundary hook — the single training-episode loop both
// the engine and the rl package's direct Train helpers share.
func RunTrainingEpisode(env *airlearning.Env, alg Algorithm) airlearning.EpisodeResult {
	obs := env.Reset()
	var res airlearning.EpisodeResult
	for {
		a := alg.Act(obs)
		next, reward, done := env.Step(a)
		alg.Observe(airlearning.Transition{Obs: obs, Action: a, Reward: reward, Next: next, Done: done})
		res.Return += reward
		res.Steps++
		obs = next
		if done {
			res.Outcome = env.OutcomeNow()
			break
		}
	}
	alg.EndEpisode(res)
	return res
}

// DefaultEvalBatch is the number of evaluation episodes a worker steps in
// lockstep through the batched network forward.
const DefaultEvalBatch = 8

// Collector runs frozen-policy validation rollouts: episodes fan out over a
// bounded worker pool in batches, and within a batch the live environments
// are stepped in lockstep so a BatchPolicy prices every action selection in
// one batched forward. Episode i always runs on its own environment seeded
// Seed+i, so results are bitwise identical whatever the worker count or
// batch size — and independent of every other episode.
type Collector struct {
	Scenario airlearning.Scenario
	// Seed is the base evaluation seed; episode i uses Seed+int64(i).
	Seed int64
	// Workers bounds the rollout pool; <= 0 selects runtime.NumCPU().
	Workers int
	// Batch is the lockstep width; <= 0 selects DefaultEvalBatch.
	Batch int
	// Obs, when non-nil, counts evaluation episodes, env steps, and batched
	// network forwards on its registry. Nil collects with zero overhead.
	Obs *obs.Observer
}

// collectMetrics are the collector's instruments, resolved once per Collect
// so the lockstep loop touches no registry maps. All nil when Obs is nil.
type collectMetrics struct {
	episodes *obs.Counter // train.eval.episodes: validation episodes finished
	steps    *obs.Counter // train.eval.env_steps: validation env steps
	forwards *obs.Counter // nn.forward_batch.calls: batched network forwards
	inputs   *obs.Counter // nn.forward_batch.inputs: observations per forward, summed
}

// Collect rolls the policy through n domain-randomized episodes and returns
// the per-episode results in episode order. Cancellation is honored between
// lockstep steps; the returned error wraps ctx.Err().
func (c Collector) Collect(ctx context.Context, p airlearning.Policy, n int) ([]airlearning.EpisodeResult, error) {
	if n <= 0 {
		return nil, nil
	}
	batch := c.Batch
	if batch <= 0 {
		batch = DefaultEvalBatch
	}
	type chunk struct{ start, n int }
	var chunks []chunk
	for s := 0; s < n; s += batch {
		size := batch
		if s+size > n {
			size = n - s
		}
		chunks = append(chunks, chunk{start: s, n: size})
	}
	var m collectMetrics
	if c.Obs != nil {
		m = collectMetrics{
			episodes: c.Obs.Counter("train.eval.episodes"),
			steps:    c.Obs.Counter("train.eval.env_steps"),
			forwards: c.Obs.Counter("nn.forward_batch.calls"),
			inputs:   c.Obs.Counter("nn.forward_batch.inputs"),
		}
	}
	ctx = obs.NewContext(ctx, c.Obs)
	outs, err := pool.Map(ctx, c.Workers, chunks, func(ctx context.Context, ch chunk) ([]airlearning.EpisodeResult, error) {
		return c.runChunk(ctx, p, m, ch.start, ch.n)
	})
	if err != nil {
		return nil, err
	}
	results := make([]airlearning.EpisodeResult, 0, n)
	for _, out := range outs {
		results = append(results, out...)
	}
	return results, nil
}

// runChunk rolls episodes [start, start+n) in lockstep. Environments that
// terminate drop out of the batch; the rest keep stepping until all are done.
func (c Collector) runChunk(ctx context.Context, p airlearning.Policy, m collectMetrics, start, n int) ([]airlearning.EpisodeResult, error) {
	envs := make([]*airlearning.Env, n)
	obs := make([]airlearning.Observation, n)
	results := make([]airlearning.EpisodeResult, n)
	for i := range envs {
		envs[i] = airlearning.NewEnv(c.Scenario, c.Seed+int64(start+i))
		obs[i] = envs[i].Reset()
	}
	bp, batched := p.(airlearning.BatchPolicy)
	live := make([]int, n)
	for i := range live {
		live[i] = i
	}
	liveObs := make([]airlearning.Observation, 0, n)
	for len(live) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("train: evaluation cancelled: %w", err)
		}
		var acts []int
		if batched {
			liveObs = liveObs[:0]
			for _, i := range live {
				liveObs = append(liveObs, obs[i])
			}
			acts = bp.ActBatch(liveObs)
			m.forwards.Inc()
			m.inputs.Add(int64(len(liveObs)))
		} else {
			acts = make([]int, len(live))
			for k, i := range live {
				acts[k] = p.Act(obs[i])
			}
		}
		m.steps.Add(int64(len(live)))
		next := live[:0]
		for k, i := range live {
			o, reward, done := envs[i].Step(acts[k])
			results[i].Return += reward
			results[i].Steps++
			obs[i] = o
			if done {
				results[i].Outcome = envs[i].OutcomeNow()
				m.episodes.Inc()
				continue
			}
			next = append(next, i)
		}
		live = next
	}
	return results, nil
}

// SuccessRate validates a policy over n domain-randomized episodes and
// returns the fraction that reach the goal — the metric Phase 1 stores in
// the Air Learning database. It is the batched, cancellable counterpart of
// airlearning.SuccessRate.
func (c Collector) SuccessRate(ctx context.Context, p airlearning.Policy, n int) (float64, error) {
	if n <= 0 {
		return 0, nil
	}
	results, err := c.Collect(ctx, p, n)
	if err != nil {
		return 0, err
	}
	wins := 0
	for _, r := range results {
		if r.Outcome == airlearning.Success {
			wins++
		}
	}
	return float64(wins) / float64(n), nil
}
