// Engine tests exercise the full Phase-1 training seam — cancellation,
// worker-count-invariant determinism, checkpoint resume, and progress
// reporting — from an external package so the real rl algorithms can plug in
// through their Factory.
package train_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"autopilot/internal/airlearning"
	"autopilot/internal/obs"
	"autopilot/internal/policy"
	"autopilot/internal/rl"
	"autopilot/internal/tensor"
	"autopilot/internal/train"
)

// testHypers is a small slice of the template family that keeps real
// training runs fast.
var testHypers = []policy.Hyper{
	{Layers: 2, Filters: 32},
	{Layers: 4, Filters: 48},
	{Layers: 7, Filters: 48},
}

func testConfig(workers int) train.Config {
	return train.Config{Episodes: 4, EvalEpisodes: 3, Seed: 1, Workers: workers}
}

func testFactory() train.Factory {
	return rl.Factory(rl.TrainConfig{Algorithm: rl.AlgDQN, Episodes: 4, EvalEpisodes: 3, Seed: 1})
}

func TestConfigValidate(t *testing.T) {
	if err := (train.Config{Episodes: 1, EvalEpisodes: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (train.Config{Episodes: 0, EvalEpisodes: 1}).Validate(); err == nil {
		t.Fatal("want error for zero episodes")
	}
	if err := (train.Config{Episodes: 1, EvalEpisodes: 0}).Validate(); err == nil {
		t.Fatal("want error for zero eval episodes")
	}
}

// TestJobSeedMatchesSequentialAssignment pins the determinism contract's
// seed derivation: over the full Table II family in canonical order, the
// identity-derived seeds coincide with the historical sequential assignment
// base, base+1, ...
func TestJobSeedMatchesSequentialAssignment(t *testing.T) {
	const base = int64(42)
	for i, h := range policy.AllHypers() {
		if got, want := train.JobSeed(base, h), base+int64(i); got != want {
			t.Fatalf("JobSeed(%d, %s) = %d, want %d", base, h, got, want)
		}
	}
}

// sinkObserver adapts a legacy progress sink onto an Observer's event stream
// — the supported way to watch training after the WithSink option's removal.
func sinkObserver(s train.Sink) *obs.Observer {
	return &obs.Observer{Events: train.SinkEvents(s)}
}

func sweep(t *testing.T, cfg train.Config) *airlearning.Database {
	t.Helper()
	db := airlearning.NewDatabase()
	eng := train.New(testFactory(), cfg)
	if _, err := eng.Sweep(context.Background(), testHypers, airlearning.LowObstacle, db); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestSweepDeterministicAcrossWorkerCounts is the engine's core guarantee:
// the database a sweep produces is bitwise identical at any worker count.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	one := sweep(t, testConfig(1))
	eight := sweep(t, testConfig(8))
	if !reflect.DeepEqual(one.All(), eight.All()) {
		t.Fatalf("workers=1 and workers=8 databases differ:\n%+v\n%+v", one.All(), eight.All())
	}
}

// TestSweepResumeMatchesUninterrupted interrupts a sweep after its first
// completed record, then resumes from the checkpoint and checks the final
// database is bitwise identical to an uninterrupted run.
func TestSweepResumeMatchesUninterrupted(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "phase1.json")

	// Interrupted run: cancel as soon as the first record completes.
	ctx, cancel := context.WithCancel(context.Background())
	cfg := testConfig(1)
	cfg.Checkpoint = ckpt
	icfg := cfg
	icfg.Obs = sinkObserver(train.SinkFunc(func(p train.Progress) {
		if p.Done {
			cancel()
		}
	}))
	interrupted := train.New(testFactory(), icfg)
	db1 := airlearning.NewDatabase()
	_, err := interrupted.Sweep(ctx, testHypers, airlearning.LowObstacle, db1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep err = %v, want context.Canceled", err)
	}
	partial, err := airlearning.Load(ckpt)
	if err != nil {
		t.Fatalf("no checkpoint after interruption: %v", err)
	}
	if n := partial.Len(); n == 0 || n >= len(testHypers) {
		t.Fatalf("checkpoint holds %d records, want partial progress", n)
	}

	// Resume with a fresh engine against the same checkpoint.
	resumed := airlearning.NewDatabase()
	rep, err := train.New(testFactory(), cfg).Sweep(context.Background(), testHypers, airlearning.LowObstacle, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped == 0 {
		t.Fatal("resumed sweep reports no skipped records")
	}

	uninterrupted := sweep(t, testConfig(1))
	if !reflect.DeepEqual(resumed.All(), uninterrupted.All()) {
		t.Fatalf("resumed database differs from uninterrupted run:\n%+v\n%+v",
			resumed.All(), uninterrupted.All())
	}
	// The checkpoint itself must also have converged to the full database.
	final, err := airlearning.Load(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(final.All(), uninterrupted.All()) {
		t.Fatal("final checkpoint differs from uninterrupted database")
	}
}

// TestSweepSkipsRecordsAlreadyInDatabase: points the database already holds
// must not be retrained.
func TestSweepSkipsRecordsAlreadyInDatabase(t *testing.T) {
	var mu sync.Mutex
	built := map[string]int{}
	counting := func(h policy.Hyper, seed int64) (train.Algorithm, error) {
		mu.Lock()
		built[h.String()]++
		mu.Unlock()
		return testFactory()(h, seed)
	}
	db := airlearning.NewDatabase()
	db.Put(airlearning.Record{Hyper: testHypers[0], Scenario: airlearning.LowObstacle, SuccessRate: 0.5})
	eng := train.New(counting, testConfig(2))
	if _, err := eng.Sweep(context.Background(), testHypers, airlearning.LowObstacle, db); err != nil {
		t.Fatal(err)
	}
	if built[testHypers[0].String()] != 0 {
		t.Fatal("retrained a point the database already holds")
	}
	for _, h := range testHypers[1:] {
		if built[h.String()] != 1 {
			t.Fatalf("hyper %s trained %d times, want 1", h, built[h.String()])
		}
	}
}

func TestTrainCancelledBetweenEpisodes(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := train.Config{Episodes: 1_000_000, EvalEpisodes: 3, Seed: 1, Workers: 1, ProgressEvery: 1}
	cfg.Obs = sinkObserver(train.SinkFunc(func(p train.Progress) {
		if p.Episode >= 2 {
			cancel() // mid-run: training loop must notice before the budget ends
		}
	}))
	eng := train.New(testFactory(), cfg)
	_, _, err := eng.Train(ctx, testHypers[0], airlearning.LowObstacle)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestProgressSinkReports(t *testing.T) {
	var got []train.Progress
	cfg := testConfig(1)
	cfg.ProgressEvery = 1
	cfg.Obs = sinkObserver(train.SinkFunc(func(p train.Progress) {
		got = append(got, p)
	}))
	eng := train.New(testFactory(), cfg)
	rec, _, err := eng.Train(context.Background(), testHypers[0], airlearning.LowObstacle)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != cfg.Episodes+1 {
		t.Fatalf("%d reports, want %d per-episode + 1 done", len(got), cfg.Episodes+1)
	}
	for i, p := range got[:cfg.Episodes] {
		if p.Done || p.Episode != i+1 || p.Episodes != cfg.Episodes {
			t.Fatalf("report %d = %+v", i, p)
		}
		if p.Algorithm != "dqn" {
			t.Fatalf("report algorithm = %q", p.Algorithm)
		}
	}
	final := got[cfg.Episodes]
	if !final.Done || final.SuccessRate != rec.SuccessRate || final.Steps != rec.TrainSteps {
		t.Fatalf("final report %+v vs record %+v", final, rec)
	}
}

// frozenPolicy builds an untrained deployment policy — deterministic, pure,
// and batch-capable — for collector tests.
func frozenPolicy(t *testing.T) airlearning.Policy {
	t.Helper()
	net, err := policy.NewTrainable(policy.Hyper{Layers: 3, Filters: 32}, policy.DefaultTrainable(), tensor.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	return rl.GreedyPolicy{Net: net}
}

// TestCollectorInvariantToBatchAndWorkers: the per-episode results must be
// identical whatever the lockstep width or worker count.
func TestCollectorInvariantToBatchAndWorkers(t *testing.T) {
	pol := frozenPolicy(t)
	const n = 10
	base := train.Collector{Scenario: airlearning.LowObstacle, Seed: 2001, Workers: 1, Batch: 1}
	want, err := base.Collect(context.Background(), pol, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != n {
		t.Fatalf("%d results, want %d", len(want), n)
	}
	for _, c := range []train.Collector{
		{Scenario: airlearning.LowObstacle, Seed: 2001, Workers: 1, Batch: 4},
		{Scenario: airlearning.LowObstacle, Seed: 2001, Workers: 4, Batch: 3},
		{Scenario: airlearning.LowObstacle, Seed: 2001, Workers: 8, Batch: 8},
	} {
		got, err := c.Collect(context.Background(), pol, n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d batch=%d results differ:\n%+v\n%+v", c.Workers, c.Batch, got, want)
		}
	}
}

func TestCollectorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := train.Collector{Scenario: airlearning.LowObstacle, Seed: 1, Workers: 2}
	if _, err := c.Collect(ctx, frozenPolicy(t), 64); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCollectorEmpty(t *testing.T) {
	c := train.Collector{Scenario: airlearning.LowObstacle, Seed: 1}
	res, err := c.Collect(context.Background(), frozenPolicy(t), 0)
	if err != nil || res != nil {
		t.Fatalf("Collect(0) = %v, %v", res, err)
	}
	rate, err := c.SuccessRate(context.Background(), frozenPolicy(t), 0)
	if err != nil || rate != 0 {
		t.Fatalf("SuccessRate(0) = %v, %v", rate, err)
	}
}

func TestEngineRejectsBadBudget(t *testing.T) {
	eng := train.New(testFactory(), train.Config{})
	if _, _, err := eng.Train(context.Background(), testHypers[0], airlearning.LowObstacle); err == nil {
		t.Fatal("want budget error")
	}
	if _, err := eng.Sweep(context.Background(), testHypers, airlearning.LowObstacle, airlearning.NewDatabase()); err == nil {
		t.Fatal("want budget error")
	}
}

// TestSweepQuarantinesCorruptCheckpoint: a damaged checkpoint must not kill
// the sweep — it is renamed aside (preserving the evidence), reported, and
// the sweep restarts from scratch, converging bitwise to an uninterrupted
// run.
func TestSweepQuarantinesCorruptCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(ckpt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1)
	cfg.Checkpoint = ckpt
	db := airlearning.NewDatabase()
	rep, err := train.New(testFactory(), cfg).Sweep(context.Background(), testHypers, airlearning.LowObstacle, db)
	if err != nil {
		t.Fatalf("sweep with corrupt checkpoint: %v", err)
	}
	if want := ckpt + ".corrupt"; rep.CheckpointQuarantined != want {
		t.Fatalf("quarantine path %q, want %q", rep.CheckpointQuarantined, want)
	}
	if data, err := os.ReadFile(ckpt + ".corrupt"); err != nil || string(data) != "{not json" {
		t.Fatalf("quarantined file = %q, %v; want original corrupt bytes", data, err)
	}
	if !reflect.DeepEqual(db.All(), sweep(t, testConfig(1)).All()) {
		t.Fatal("post-quarantine sweep differs from clean run")
	}
	// The rewritten checkpoint must now be valid and complete.
	final, err := airlearning.Load(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(final.All(), db.All()) {
		t.Fatal("rewritten checkpoint differs from swept database")
	}
}

// TestSweepResumeFromTruncatedCheckpoint bit-flips and truncates a valid
// snapshot mid-payload: Load must detect the damage via the checksum,
// quarantine it, and the re-run sweep must converge bitwise to the
// uninterrupted database.
func TestSweepResumeFromTruncatedCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "phase1.json")
	cfg := testConfig(1)
	cfg.Checkpoint = ckpt
	want := airlearning.NewDatabase()
	if _, err := train.New(testFactory(), cfg).Sweep(context.Background(), testHypers, airlearning.LowObstacle, want); err != nil {
		t.Fatal(err)
	}

	damage := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)*2/3] },
		"bitflip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		},
	}
	for name, fn := range damage {
		t.Run(name, func(t *testing.T) {
			good, err := os.ReadFile(ckpt)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			bad := filepath.Join(dir, "phase1.json")
			if err := os.WriteFile(bad, fn(good), 0o644); err != nil {
				t.Fatal(err)
			}
			cfg := testConfig(1)
			cfg.Checkpoint = bad
			db := airlearning.NewDatabase()
			rep, err := train.New(testFactory(), cfg).Sweep(context.Background(), testHypers, airlearning.LowObstacle, db)
			if err != nil {
				t.Fatalf("sweep over %s checkpoint: %v", name, err)
			}
			if rep.CheckpointQuarantined != bad+".corrupt" {
				t.Fatalf("quarantine path %q", rep.CheckpointQuarantined)
			}
			if !reflect.DeepEqual(db.All(), want.All()) {
				t.Fatalf("%s recovery diverged from uninterrupted run", name)
			}
		})
	}
}
