package train_test

import (
	"context"
	"strconv"
	"testing"

	"autopilot/internal/airlearning"
	"autopilot/internal/policy"
	"autopilot/internal/rl"
	"autopilot/internal/train"
)

// gx parses an exact hex-float literal captured from a reference run of the
// training engine (PR 3), in the style of internal/dse/golden_test.go.
func gx(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad golden literal %q: %v", s, err)
	}
	return v
}

// goldenPhase1 pins a small real Phase1Train database: two template points
// trained with DQN for 60 episodes on the low-obstacle scenario. Equality is
// bitwise (==, not a tolerance) and must hold at every worker count — the
// engine's determinism contract says training arithmetic depends only on the
// (hyper, seed) identity, never on scheduling.
var goldenPhase1 = []struct {
	hyper policy.Hyper
	succ  string
	steps int
}{
	{hyper: policy.Hyper{Layers: 2, Filters: 32}, succ: "0x1.999999999999ap-04", steps: 766},
	{hyper: policy.Hyper{Layers: 3, Filters: 32}, succ: "0x0p+00", steps: 893},
}

func TestPhase1TrainGoldenDatabase(t *testing.T) {
	hypers := make([]policy.Hyper, len(goldenPhase1))
	for i, g := range goldenPhase1 {
		hypers[i] = g.hyper
	}
	cfg := rl.TrainConfig{Algorithm: rl.AlgDQN, Episodes: 60, EvalEpisodes: 20, Seed: 1}
	for _, workers := range []int{1, 8} {
		db := airlearning.NewDatabase()
		eng := train.New(rl.Factory(cfg), train.Config{
			Episodes:     cfg.Episodes,
			EvalEpisodes: cfg.EvalEpisodes,
			Seed:         cfg.Seed,
			Workers:      workers,
		})
		if _, err := eng.Sweep(context.Background(), hypers, airlearning.LowObstacle, db); err != nil {
			t.Fatal(err)
		}
		for _, g := range goldenPhase1 {
			rec, ok := db.Get(g.hyper, airlearning.LowObstacle)
			if !ok {
				t.Fatalf("workers=%d: no record for %s", workers, g.hyper)
			}
			if want := gx(t, g.succ); rec.SuccessRate != want {
				t.Errorf("workers=%d %s: success rate %x, want %s", workers, g.hyper, rec.SuccessRate, g.succ)
			}
			if rec.TrainSteps != g.steps {
				t.Errorf("workers=%d %s: %d env steps, want %d", workers, g.hyper, rec.TrainSteps, g.steps)
			}
		}
	}
}
