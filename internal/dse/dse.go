// Package dse implements AutoPilot's Phase 2 (paper §III-B): domain-agnostic
// multi-objective design-space exploration over the joint space of E2E model
// hyper-parameters (Table II: layers, filters) and accelerator hardware
// parameters (PE array shape, scratchpad sizes). Each candidate is scored on
// three objectives — task success rate (from the Air Learning database),
// SoC power, and inference runtime — and explored with SMS-EGO Bayesian
// optimization. The output is a set of evaluated designs, their Pareto
// front, and the conventional-DSE picks (HT/LP/HE) that Phase 3 compares
// against.
package dse

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"autopilot/internal/airlearning"
	"autopilot/internal/bayesopt"
	"autopilot/internal/catalog"
	"autopilot/internal/fault"
	"autopilot/internal/hw"
	"autopilot/internal/memo"
	"autopilot/internal/obs"
	"autopilot/internal/pareto"
	"autopilot/internal/policy"
	"autopilot/internal/pool"
	"autopilot/internal/power"
	"autopilot/internal/space"
	"autopilot/internal/systolic"
)

// Space is the Table II search space plus the fixed system parameters. It is
// a thin, domain-typed view over the generic space.Space parameter layer:
// ParamSpace materializes the axis list, and Sample/Enumerate/Features/
// ChoiceDims all delegate to it, so the sampling, enumeration order, and
// feature arithmetic are exactly the generic layer's (bitwise-identical to
// the historical hard-coded grid on the legacy axis list).
type Space struct {
	Layers  []int
	Filters []int
	PERows  []int
	PECols  []int
	SRAMKB  []int // choices shared by the ifmap/filter/ofmap scratchpads

	// Algorithms optionally adds the training algorithm as a categorical
	// co-search axis (AutoSoC direction): each design point then carries the
	// algorithm its policy is trained with, and success rates are adjusted
	// per algorithm via airlearning.AlgorithmSuccess. Empty means the legacy
	// fixed-algorithm (DQN-calibrated) space.
	Algorithms []string

	// Airframes, Batteries, and Sensors optionally add catalog components as
	// categorical vehicle axes (SWaP co-search): each design point then
	// carries a fully-resolved loadout reference, evaluation extends to the
	// full-vehicle mission metrics, and infeasible loadouts surface as typed
	// skips. All empty means the legacy SoC-only space; an axis left empty
	// while another is set falls back to BaseAirframe (or its defaults).
	Airframes []string
	Batteries []string
	Sensors   []string
	// BaseAirframe anchors the loadout when the airframe axis is not
	// searched; empty means "nano".
	BaseAirframe string

	Dataflow systolic.Dataflow
	FreqMHz  float64
	Template policy.TemplateConfig
}

// Canonical axis names of the Table II space.
const (
	AxisAlgorithm  = "algorithm"
	AxisLayers     = "layers"
	AxisFilters    = "filters"
	AxisPERows     = "pe_rows"
	AxisPECols     = "pe_cols"
	AxisSRAMIfmap  = "sram_ifmap_kb"
	AxisSRAMFilter = "sram_filter_kb"
	AxisSRAMOfmap  = "sram_ofmap_kb"
	AxisAirframe   = "airframe"
	AxisBattery    = "battery"
	AxisSensor     = "sensor"
)

// HasVehicleAxes reports whether the space searches any catalog vehicle axis.
func (s Space) HasVehicleAxes() bool {
	return len(s.Airframes) > 0 || len(s.Batteries) > 0 || len(s.Sensors) > 0
}

// baseAirframe resolves the anchor airframe for loadouts when the airframe
// axis is not searched.
func (s Space) baseAirframe() string {
	if s.BaseAirframe != "" {
		return s.BaseAirframe
	}
	return "nano"
}

// ParamSpace materializes the generic parameter space backing this Table II
// view: the optional algorithm axis first, then the model axes, then the
// hardware axes with the feature scales the GP kernels were calibrated on
// (linear over the Table II model range, log2 over the power-of-two
// hardware ranges).
func (s Space) ParamSpace() space.Space {
	axes := make([]space.Axis, 0, 11)
	if len(s.Algorithms) > 0 {
		axes = append(axes, space.CatAxis(AxisAlgorithm, s.Algorithms...))
	}
	axes = append(axes,
		space.Axis{Name: AxisLayers, Kind: space.KindInt, Ints: s.Layers, Lo: 2, Hi: 10},
		space.Axis{Name: AxisFilters, Kind: space.KindInt, Ints: s.Filters, Lo: 32, Hi: 64},
		space.Axis{Name: AxisPERows, Kind: space.KindInt, Ints: s.PERows, Scale: space.ScaleLog2, Lo: 3, Hi: 10},
		space.Axis{Name: AxisPECols, Kind: space.KindInt, Ints: s.PECols, Scale: space.ScaleLog2, Lo: 3, Hi: 10},
		space.Axis{Name: AxisSRAMIfmap, Kind: space.KindInt, Ints: s.SRAMKB, Scale: space.ScaleLog2, Lo: 5, Hi: 12},
		space.Axis{Name: AxisSRAMFilter, Kind: space.KindInt, Ints: s.SRAMKB, Scale: space.ScaleLog2, Lo: 5, Hi: 12},
		space.Axis{Name: AxisSRAMOfmap, Kind: space.KindInt, Ints: s.SRAMKB, Scale: space.ScaleLog2, Lo: 5, Hi: 12},
	)
	// Vehicle axes go strictly after the legacy axes: on a space without
	// them the axis list — and with it the sampling RNG draw order, the
	// enumeration order, and the feature layout — is exactly the legacy one.
	if len(s.Airframes) > 0 {
		axes = append(axes, space.CatAxis(AxisAirframe, s.Airframes...))
	}
	if len(s.Batteries) > 0 {
		axes = append(axes, space.CatAxis(AxisBattery, s.Batteries...))
	}
	if len(s.Sensors) > 0 {
		axes = append(axes, space.CatAxis(AxisSensor, s.Sensors...))
	}
	return space.New(axes...)
}

// FromPoint materializes the design point a generic-space point selects.
func (s Space) FromPoint(p space.Point) (DesignPoint, error) {
	ps := s.ParamSpace()
	if !ps.Contains(p) {
		return DesignPoint{}, fmt.Errorf("dse: point %v outside space", []int(p))
	}
	algo := ""
	if len(s.Algorithms) > 0 {
		algo = s.Algorithms[p[0]]
		p = p[1:]
	}
	d := s.design(
		s.Layers[p[0]], s.Filters[p[1]],
		s.PERows[p[2]], s.PECols[p[3]],
		s.SRAMKB[p[4]], s.SRAMKB[p[5]], s.SRAMKB[p[6]],
	)
	d.Algo = algo
	if s.HasVehicleAxes() {
		v, err := s.vehicleFromTail(p[7:])
		if err != nil {
			return DesignPoint{}, err
		}
		d.Vehicle = v
	}
	return d, nil
}

// vehicleFromTail resolves the trailing vehicle-axis indexes into a fully
// concrete loadout reference: unsearched axes fall back to the base airframe
// and its catalog defaults, so every design point with vehicle axes names a
// complete (airframe, battery, sensor) triple.
func (s Space) vehicleFromTail(tail []int) (VehicleRef, error) {
	v := VehicleRef{Airframe: s.baseAirframe()}
	i := 0
	if len(s.Airframes) > 0 {
		v.Airframe = s.Airframes[tail[i]]
		i++
	}
	a, err := catalog.AirframeByName(v.Airframe)
	if err != nil {
		return VehicleRef{}, fmt.Errorf("dse: %w", err)
	}
	v.Battery, v.Sensor = a.DefaultBattery, a.DefaultSensor
	if len(s.Batteries) > 0 {
		v.Battery = s.Batteries[tail[i]]
		i++
	}
	if len(s.Sensors) > 0 {
		v.Sensor = s.Sensors[tail[i]]
	}
	return v, nil
}

// DefaultSpace returns the paper's Table II space.
func DefaultSpace() Space {
	return Space{
		Layers:   policy.LayerChoices,
		Filters:  policy.FilterChoices,
		PERows:   []int{8, 16, 32, 64, 128, 256, 512, 1024},
		PECols:   []int{8, 16, 32, 64, 128, 256, 512, 1024},
		SRAMKB:   []int{32, 64, 128, 256, 512, 1024, 2048, 4096},
		Dataflow: systolic.OutputStationary,
		FreqMHz:  500,
		Template: policy.DefaultTemplate(),
	}
}

// Size returns the number of joint design points in the space.
func (s Space) Size() int64 {
	return s.ParamSpace().Size()
}

// Validate checks the space definition.
func (s Space) Validate() error {
	if len(s.Layers) == 0 || len(s.Filters) == 0 || len(s.PERows) == 0 ||
		len(s.PECols) == 0 || len(s.SRAMKB) == 0 {
		return fmt.Errorf("dse: empty dimension in space")
	}
	if err := s.ParamSpace().Validate(); err != nil {
		return fmt.Errorf("dse: %w", err)
	}
	for _, a := range s.Algorithms {
		if !airlearning.KnownAlgorithm(a) {
			return fmt.Errorf("dse: unknown algorithm %q", a)
		}
	}
	for _, a := range s.Airframes {
		if _, err := catalog.AirframeByName(a); err != nil {
			return fmt.Errorf("dse: %w", err)
		}
	}
	for _, b := range s.Batteries {
		if _, err := catalog.BatteryByName(b); err != nil {
			return fmt.Errorf("dse: %w", err)
		}
	}
	for _, sn := range s.Sensors {
		if _, err := catalog.SensorByName(sn); err != nil {
			return fmt.Errorf("dse: %w", err)
		}
	}
	if s.HasVehicleAxes() {
		if _, err := catalog.AirframeByName(s.baseAirframe()); err != nil {
			return fmt.Errorf("dse: base airframe: %w", err)
		}
	}
	if s.FreqMHz <= 0 {
		return fmt.Errorf("dse: non-positive frequency")
	}
	return nil
}

// Bandwidth returns the DRAM bandwidth provisioned for an array size: larger
// accelerators ship with wider memory interfaces, from a 0.8 GB/s LPDDR
// floor up to a 12 GB/s ceiling.
func Bandwidth(pes int) float64 {
	bw := 0.8 + 4.5e-5*float64(pes)
	return math.Min(bw, 12.0)
}

// DesignPoint is one joint (model, accelerator) candidate — plus, when the
// space co-searches training algorithms, the algorithm the policy is
// trained with (empty means the legacy fixed-DQN calibration), and, when it
// co-searches vehicle axes, the fully-resolved loadout reference (the zero
// VehicleRef means the legacy SoC-only evaluation). All fields are
// comparable, so the point keys the memoization cache directly.
type DesignPoint struct {
	Hyper   policy.Hyper
	HW      systolic.Config
	Algo    string
	Vehicle VehicleRef
}

// String renders the design compactly; the algorithm and loadout tags appear
// only for co-search points so legacy renderings are byte-stable.
func (d DesignPoint) String() string {
	base := fmt.Sprintf("%s on %s", d.Hyper, d.HW)
	if d.Algo != "" {
		base = fmt.Sprintf("%s/%s on %s", d.Hyper, d.Algo, d.HW)
	}
	if d.Vehicle != (VehicleRef{}) {
		return base + " @ " + d.Vehicle.String()
	}
	return base
}

// design constructs the systolic config for raw choice values.
func (s Space) design(layers, filters, rows, cols, ifKB, fKB, ofKB int) DesignPoint {
	hw := systolic.Config{
		Rows: rows, Cols: cols,
		IfmapKB: ifKB, FilterKB: fKB, OfmapKB: ofKB,
		Dataflow: s.Dataflow, FreqMHz: s.FreqMHz,
		BandwidthGBps: Bandwidth(rows * cols),
	}
	return DesignPoint{Hyper: policy.Hyper{Layers: layers, Filters: filters}, HW: hw}
}

// Sample draws n distinct design points uniformly from the space, always
// including the space's corner designs (smallest and largest accelerator for
// each model extreme — per algorithm when co-searching) so the optimizer
// sees the full dynamic range. Sampling delegates to the generic parameter
// space; on the legacy axis list the draw sequence is bitwise-identical to
// the historical hard-coded sampler.
func (s Space) Sample(n int, seed int64) []DesignPoint {
	pts := s.ParamSpace().Sample(n, seed)
	out := make([]DesignPoint, len(pts))
	for i, p := range pts {
		d, err := s.FromPoint(p)
		if err != nil {
			panic(err) // points come from the space's own sampler: impossible
		}
		out[i] = d
	}
	return out
}

// SampleForModel draws n design points with the model hyper-parameters
// pinned — used when Phase 3 needs the accelerator space for the
// highest-success model.
func (s Space) SampleForModel(h policy.Hyper, n int, seed int64) []DesignPoint {
	pinned := s
	pinned.Layers = []int{h.Layers}
	pinned.Filters = []int{h.Filters}
	return pinned.Sample(n, seed)
}

// Features encodes a design point as a normalized vector for the GP models:
// one dimension per axis of the parameter space, in axis order, using each
// axis's feature transform. On the legacy axis list this reproduces the
// historical 7-dim vector bit for bit; the algorithm axis (when present)
// contributes its categorical feature as an extra leading dimension.
func (s Space) Features(d DesignPoint) []float64 {
	ps := s.ParamSpace()
	raw := map[string]float64{
		AxisLayers:     float64(d.Hyper.Layers),
		AxisFilters:    float64(d.Hyper.Filters),
		AxisPERows:     float64(d.HW.Rows),
		AxisPECols:     float64(d.HW.Cols),
		AxisSRAMIfmap:  float64(d.HW.IfmapKB),
		AxisSRAMFilter: float64(d.HW.FilterKB),
		AxisSRAMOfmap:  float64(d.HW.OfmapKB),
	}
	out := make([]float64, len(ps.Axes))
	for i, a := range ps.Axes {
		if a.Kind == space.KindCat {
			switch a.Name {
			case AxisAirframe:
				out[i] = a.CatFeature(d.Vehicle.Airframe)
			case AxisBattery:
				out[i] = a.CatFeature(d.Vehicle.Battery)
			case AxisSensor:
				out[i] = a.CatFeature(d.Vehicle.Sensor)
			default:
				out[i] = a.CatFeature(d.Algo)
			}
			continue
		}
		out[i] = a.Normalize(raw[a.Name])
	}
	return out
}

// Evaluated is one scored design point. Designs carrying vehicle axes also
// hold the full-vehicle metrics in Vehicle (zero otherwise).
type Evaluated struct {
	Design      DesignPoint
	SuccessRate float64
	FPS         float64
	RuntimeSec  float64
	SoCPowerW   float64
	AccelPowerW float64
	Breakdown   power.Breakdown
	Vehicle     VehicleEval
}

// Objectives returns the minimization vector: the legacy
// [−success, power, runtime] for SoC-only designs, and
// [−success, total vehicle power, −missions] when the design carries a
// loadout — the SWaP-level trade the vehicle co-search ranks by.
func (e Evaluated) Objectives() []float64 {
	if e.Vehicle.Loadout != (VehicleRef{}) {
		return []float64{-e.SuccessRate, e.Vehicle.TotalPowerW, -e.Vehicle.Missions}
	}
	return []float64{-e.SuccessRate, e.SoCPowerW, e.RuntimeSec}
}

// EfficiencyFPSW returns compute efficiency in FPS per watt of SoC power.
func (e Evaluated) EfficiencyFPSW() float64 {
	if e.SoCPowerW <= 0 {
		return 0
	}
	return e.FPS / e.SoCPowerW
}

// BackendFactory builds the hardware cost-model backend scoring one design
// point. The default factory wraps the design's systolic configuration with
// the evaluator's power model; swapping it retargets Phase 2 at a different
// accelerator template without touching the search machinery.
type BackendFactory func(DesignPoint) hw.Backend

// evalKey keys the memoization cache on backend identity plus design, so
// one evaluator can score the same design on different backends without
// collisions.
type evalKey struct {
	backend string
	design  DesignPoint
}

// Evaluator scores design points through a hw.Backend. It is safe for
// concurrent use: built networks are shared per model, evaluations are
// memoized in a shared memo.Store keyed by (backend, DesignPoint), and
// goroutines racing on the same uncached design are deduplicated
// singleflight-style so each design simulates exactly once.
type Evaluator struct {
	db       *airlearning.Database
	scen     airlearning.Scenario
	model    power.Model
	tmpl     policy.TemplateConfig
	workers  int
	cacheCap int

	backendID string
	backend   BackendFactory

	retry    fault.Policy
	injector *fault.Injector
	vp       VehicleParams // mission/thermal context for vehicle-axis designs

	// delegate, when non-nil, replaces the local uncached evaluation with a
	// remote one (the grid coordinator's lease pool). Memoization, dedup and
	// skip/failure accounting stay coordinator-side; retries, chaos
	// injection and the actual cost-model run happen wherever the delegate
	// executes.
	delegate func(ctx context.Context, d DesignPoint) (Evaluated, error)

	o     *obs.Observer
	instr func(hw.Backend) hw.Backend // estimate-latency wrapper; nil when obs off

	netMu sync.Mutex
	nets  map[policy.Hyper]*policy.Network

	// store memoizes settled evaluations with LRU eviction and singleflight
	// dedup — the same seam cmd/autopilotd uses process-wide for whole-job
	// results. With an observer its counters are the registry's
	// dse.cache.{hits,misses,dedup,evictions}; without one they are
	// standalone so CacheStats (and Result.CacheHits/Misses) keep working
	// either way.
	store *memo.Store[evalKey, Evaluated]

	cFailures *obs.Counter // dse.eval.failures; nil when obs off
}

// Option configures an Evaluator.
type Option func(*Evaluator)

// WithWorkers bounds the EvaluateAll worker pool; n <= 0 selects
// runtime.NumCPU().
func WithWorkers(n int) Option {
	return func(ev *Evaluator) { ev.workers = n }
}

// WithCache bounds the memoization cache to at most size entries with
// least-recently-used eviction; 0 means unbounded, negative disables caching
// entirely.
func WithCache(size int) Option {
	return func(ev *Evaluator) { ev.cacheCap = size }
}

// WithTemplate sets the E2E model template networks are built from. The
// default is policy.DefaultTemplate().
func WithTemplate(t policy.TemplateConfig) Option {
	return func(ev *Evaluator) { ev.tmpl = t }
}

// WithBackend replaces the hardware cost-model backend designs are scored
// on. The id names the backend family and keys the memoization cache, so
// estimates from different backends never collide. The default is the
// systolic-array template ("systolic") with the evaluator's power model.
func WithBackend(id string, factory BackendFactory) Option {
	return func(ev *Evaluator) { ev.backendID, ev.backend = id, factory }
}

// WithRetry sets the per-design retry policy. The zero policy (the default)
// performs a single attempt, bitwise identical to the pre-retry evaluator.
// Retried attempts re-key the fault surfaces by attempt index, so an
// injected (or genuinely transient) fault that clears on retry still yields
// the deterministic estimate.
func WithRetry(p fault.Policy) Option {
	return func(ev *Evaluator) { ev.retry = p }
}

// WithJobTimeout bounds each evaluation attempt; it composes with WithRetry
// (a timed-out attempt is retryable). Zero means unbounded.
func WithJobTimeout(d time.Duration) Option {
	return func(ev *Evaluator) { ev.retry.Timeout = d }
}

// WithInjector threads a deterministic chaos injector into every backend
// call, keyed by (backend, design, attempt). nil (the default) injects
// nothing.
func WithInjector(in *fault.Injector) Option {
	return func(ev *Evaluator) { ev.injector = in }
}

// WithDelegate routes every uncached evaluation through fn instead of the
// local backend — the hook distributed sweeps (internal/grid) plug the
// coordinator's lease pool into. The evaluator still memoizes and
// singleflight-dedups around fn, so duplicate designs cost one remote job,
// and still classifies returned errors (typed infeasibility verdicts become
// skips exactly as locally). nil restores local evaluation.
func WithDelegate(fn func(ctx context.Context, d DesignPoint) (Evaluated, error)) Option {
	return func(ev *Evaluator) { ev.delegate = fn }
}

// WithObs instruments the evaluator: cache hits/misses/singleflight dedups
// land on the observer's registry (dse.cache.*), every backend estimate is
// timed into hw.estimate_seconds, and terminal evaluation failures are
// counted. nil (the default) disables instrumentation at zero cost; scores
// are bitwise identical either way.
func WithObs(o *obs.Observer) Option {
	return func(ev *Evaluator) { ev.o = o }
}

// NewEvaluator builds a concurrency-safe evaluator over a success-rate
// database for one deployment scenario:
//
//	ev := dse.NewEvaluator(db, scen, pm, dse.WithWorkers(8), dse.WithCache(1<<16))
func NewEvaluator(db *airlearning.Database, scen airlearning.Scenario, pm power.Model, opts ...Option) *Evaluator {
	ev := &Evaluator{
		db: db, scen: scen, model: pm,
		tmpl: policy.DefaultTemplate(),
		nets: map[policy.Hyper]*policy.Network{},
	}
	ev.backendID = "systolic"
	ev.backend = func(d DesignPoint) hw.Backend {
		return hw.SystolicBackend{Config: d.HW, Power: ev.model}
	}
	for _, opt := range opts {
		opt(ev)
	}
	if ev.vp == (VehicleParams{}) {
		ev.vp = DefaultVehicleParams()
	}
	counters := memo.NewCounters()
	if ev.o != nil {
		counters = memo.Counters{
			Hits:      ev.o.Counter("dse.cache.hits"),
			Misses:    ev.o.Counter("dse.cache.misses"),
			Dedups:    ev.o.Counter("dse.cache.dedup"),
			Evictions: ev.o.Counter("dse.cache.evictions"),
		}
		ev.cFailures = ev.o.Counter("dse.eval.failures")
		sec := ev.o.Histogram("hw.estimate_seconds", obs.LatencyBuckets)
		calls := ev.o.Counter("hw.estimate.calls")
		errs := ev.o.Counter("hw.estimate.errors")
		ev.instr = func(b hw.Backend) hw.Backend { return hw.Instrument(b, sec, calls, errs) }
	}
	ev.store = memo.New[evalKey, Evaluated](ev.cacheCap, counters)
	return ev
}

// Workers returns the resolved worker-pool size.
func (ev *Evaluator) Workers() int { return pool.Workers(ev.workers) }

// CacheStats reports memoization cache hits and misses so far.
func (ev *Evaluator) CacheStats() (hits, misses int64) {
	return ev.store.Stats()
}

// network returns the shared deployment network for a model, building it on
// first use.
func (ev *Evaluator) network(h policy.Hyper) (*policy.Network, error) {
	ev.netMu.Lock()
	defer ev.netMu.Unlock()
	if net, ok := ev.nets[h]; ok {
		return net, nil
	}
	net, err := policy.Build(h, ev.tmpl)
	if err != nil {
		return nil, fmt.Errorf("dse: build %v: %w", h, err)
	}
	ev.nets[h] = net
	return net, nil
}

// FromEstimate converts a hardware cost-model estimate into a scored design
// point — the single translation between the hw layer and Phase-2 scoring.
func FromEstimate(d DesignPoint, success float64, est hw.Estimate) Evaluated {
	return Evaluated{
		Design:      d,
		SuccessRate: success,
		FPS:         est.FPS,
		RuntimeSec:  est.RuntimeSec,
		SoCPowerW:   est.SoCPowerW,
		AccelPowerW: est.AccelPowerW,
		Breakdown:   est.Breakdown,
	}
}

// evaluate scores one design on the evaluator's backend, bypassing the
// cache. Estimation is a pure function of the design, so results are
// bit-identical regardless of which goroutine computed them. The attempt
// index re-keys the chaos injector so injected faults clear (or persist)
// deterministically across retries; estimates are guarded against
// non-finite fields before they can reach the optimizer's models.
func (ev *Evaluator) evaluate(d DesignPoint, attempt int) (Evaluated, error) {
	net, err := ev.network(d.Hyper)
	if err != nil {
		return Evaluated{}, err
	}
	backend := ev.backend(d)
	if ev.injector != nil {
		backend = ev.injector.Backend(fmt.Sprintf("%s|%s#%d", ev.backendID, d, attempt), backend)
	}
	if ev.instr != nil {
		// Instrument outermost so injected faults count in the estimate
		// error/latency telemetry like real backend failures.
		backend = ev.instr(backend)
	}
	est, err := backend.Estimate(hw.NetworkWorkload(d.Hyper.String(), net))
	if err != nil {
		return Evaluated{}, fmt.Errorf("dse: estimate %v: %w", d, err)
	}
	success := 0.0
	if rec, ok := ev.db.Get(d.Hyper, ev.scen); ok {
		success = rec.SuccessRate
	}
	// Adjust the DQN-calibrated base rate for the design's training
	// algorithm; the empty (legacy) tag and "dqn" are the identity.
	success = airlearning.AlgorithmSuccess(d.Algo, d.Hyper, success)
	e := FromEstimate(d, success, est)
	if err := fault.CheckFinite("estimate",
		e.FPS, e.RuntimeSec, e.SoCPowerW, e.AccelPowerW, e.SuccessRate); err != nil {
		return Evaluated{}, fmt.Errorf("dse: %v: %w", d, err)
	}
	if d.Vehicle != (VehicleRef{}) {
		return ev.vehicleFinish(d, e)
	}
	return e, nil
}

// evaluateRetry runs the uncached evaluation under the evaluator's retry
// policy with panic isolation. The zero policy performs exactly one attempt.
// base offsets every attempt index — a job re-issued under grid lease
// attempt n evaluates attempts n, n+1, ... so its fault surfaces (injector
// keys, fault.AttemptSeed derivations) are re-keyed instead of
// deterministically re-hitting the fault that killed the previous lease.
// base 0 is bitwise the pre-grid behavior.
func (ev *Evaluator) evaluateRetry(ctx context.Context, d DesignPoint, base int) (Evaluated, error) {
	policy := ev.retry
	if d.Vehicle != (VehicleRef{}) {
		// A typed infeasibility verdict is a definitive answer about the
		// loadout, not a transient fault: never burn retry attempts on it.
		policy = policy.NonRetryable(isInfeasible)
	}
	var e Evaluated
	err := fault.Retry(ctx, policy, func(_ context.Context, attempt int) error {
		var aerr error
		e, aerr = ev.evaluate(d, base+attempt)
		return aerr
	})
	if err != nil {
		return Evaluated{}, err
	}
	return e, nil
}

// compute performs one uncached evaluation — locally under the retry policy,
// or through the remote delegate when one is installed — and keeps the
// terminal-failure accounting identical either way (skips are answers, not
// faults; only real failures count).
func (ev *Evaluator) compute(ctx context.Context, d DesignPoint, base int) (Evaluated, error) {
	var e Evaluated
	var err error
	if ev.delegate != nil {
		e, err = ev.delegate(ctx, d)
	} else {
		e, err = ev.evaluateRetry(ctx, d, base)
	}
	if err != nil {
		if !isInfeasible(err) {
			ev.cFailures.Inc()
		}
		return Evaluated{}, err
	}
	return e, nil
}

// Evaluate scores one design point, consulting the memoization cache first.
// It is EvaluateContext without cancellation.
func (ev *Evaluator) Evaluate(d DesignPoint) (Evaluated, error) {
	return ev.EvaluateContext(context.Background(), d)
}

// EvaluateContext scores one design point, consulting the memoization cache
// first. Concurrent calls for the same uncached design are deduplicated: one
// goroutine (the leader, counted as the miss) runs the backend — under the
// evaluator's retry policy, so only settled successes are ever cached —
// while the rest wait on its in-flight result (counted as hits), so misses
// equals the number of designs actually simulated.
func (ev *Evaluator) EvaluateContext(ctx context.Context, d DesignPoint) (Evaluated, error) {
	return ev.EvaluateAttempt(ctx, d, 0)
}

// EvaluateAttempt scores one design point with its attempt indices offset by
// base — the entry point grid workers run re-issued leases through, so lease
// attempt n re-keys the design's fault surfaces deterministically. base 0 is
// exactly EvaluateContext. The memoization cache is shared across bases: a
// settled success from an earlier lease answers a re-lease for free, and
// errors are never cached, so a re-lease after a faulted attempt genuinely
// re-evaluates.
func (ev *Evaluator) EvaluateAttempt(ctx context.Context, d DesignPoint, base int) (Evaluated, error) {
	e, _, err := ev.store.Do(ctx, evalKey{backend: ev.backendID, design: d}, func() (Evaluated, error) {
		return ev.compute(ctx, d, base)
	})
	return e, err
}

// EvaluateAll scores a batch of design points on the evaluator's bounded
// worker pool and returns them in submission order. Cancellation drains the
// pool and returns an error wrapping ctx.Err().
func (ev *Evaluator) EvaluateAll(ctx context.Context, ds []DesignPoint) ([]Evaluated, error) {
	return pool.Map(ctx, ev.workers, ds, func(ctx context.Context, d DesignPoint) (Evaluated, error) {
		return ev.EvaluateContext(ctx, d)
	})
}

// EvaluateEach scores a batch like EvaluateAll but isolates per-design
// failures instead of failing fast: results and errors are index-aligned
// with ds, and only context cancellation returns a terminal error. This is
// the entry point graceful-degradation sweeps build on.
func (ev *Evaluator) EvaluateEach(ctx context.Context, ds []DesignPoint) ([]Evaluated, []error, error) {
	return pool.MapEach(ctx, ev.workers, ds, func(ctx context.Context, d DesignPoint) (Evaluated, error) {
		return ev.EvaluateContext(ctx, d)
	})
}

// Config controls a Phase-2 run.
type Config struct {
	CandidatePool int // design points sampled from the space
	BO            bayesopt.Config
	Seed          int64
	// ProbeCorners seeds the run with a deterministic sweep of accelerator
	// sizes for the scenario's highest-success model (the domain-knowledge
	// seeding §III-A describes), guaranteeing the evaluated set spans the
	// full power/performance range the paper's Fig. 3b and Fig. 7 show.
	ProbeCorners bool
}

// DefaultConfig returns a laptop-scale Phase-2 budget.
func DefaultConfig() Config {
	bo := bayesopt.DefaultConfig()
	bo.InitSamples = 24
	bo.Iterations = 72
	return Config{CandidatePool: 2048, BO: bo, Seed: 1, ProbeCorners: true}
}

// ProbeDesigns returns the deterministic accelerator sweep for one model:
// square arrays from the smallest to the largest Table II size crossed with
// three scratchpad sizes.
func (s Space) ProbeDesigns(h policy.Hyper) []DesignPoint {
	var out []DesignPoint
	srams := []int{s.SRAMKB[0], s.SRAMKB[len(s.SRAMKB)/2], s.SRAMKB[len(s.SRAMKB)-1]}
	for _, side := range s.PERows {
		for _, kb := range srams {
			out = append(out, s.design(h.Layers, h.Filters, side, side, kb, kb, kb))
		}
	}
	return out
}

// probeVehicleRef anchors probe designs inside a vehicle-axis space: the
// first choice of each searched axis (axis lists are normalized, so this is
// deterministic), defaults from the base airframe otherwise.
func (s Space) probeVehicleRef() (VehicleRef, error) {
	v := VehicleRef{Airframe: s.baseAirframe()}
	if len(s.Airframes) > 0 {
		v.Airframe = s.Airframes[0]
	}
	a, err := catalog.AirframeByName(v.Airframe)
	if err != nil {
		return VehicleRef{}, fmt.Errorf("dse: %w", err)
	}
	v.Battery, v.Sensor = a.DefaultBattery, a.DefaultSensor
	if len(s.Batteries) > 0 {
		v.Battery = s.Batteries[0]
	}
	if len(s.Sensors) > 0 {
		v.Sensor = s.Sensors[0]
	}
	return v, nil
}

// probeSweep returns the deterministic probe designs for the run: the
// legacy single sweep for the database's best model, or — when the space
// co-searches training algorithms — one sweep per algorithm anchored at
// that algorithm's best model, so every algorithm's power/performance range
// is represented in the evaluated set. In a vehicle-axis space every probe
// carries the anchor loadout, so probe objectives live in the same
// (success, vehicle power, missions) space as the searched designs.
func probeSweep(space Space, db *airlearning.Database, scen airlearning.Scenario) []DesignPoint {
	var out []DesignPoint
	if len(space.Algorithms) == 0 {
		if best, ok := db.Best(scen); ok {
			out = space.ProbeDesigns(best.Hyper)
		}
	} else {
		for _, alg := range space.Algorithms {
			h, _, ok := airlearning.BestHyperFor(db, scen, alg)
			if !ok {
				continue
			}
			for _, d := range space.ProbeDesigns(h) {
				d.Algo = alg
				out = append(out, d)
			}
		}
	}
	if space.HasVehicleAxes() && len(out) > 0 {
		v, err := space.probeVehicleRef()
		if err != nil {
			return nil
		}
		for i := range out {
			out[i].Vehicle = v
		}
	}
	return out
}

// Result is the Phase-2 output.
type Result struct {
	Scenario  airlearning.Scenario
	Evaluated []Evaluated
	ParetoIdx []int // indices into Evaluated on the 3-objective front

	// Conventional-DSE selections (paper §V-B): highest throughput, lowest
	// power, highest efficiency — all restricted to designs running a
	// top-success model.
	HT, LP, HE int

	// CacheHits and CacheMisses report the run's evaluator memoization
	// stats; misses equals the number of cost-model simulations performed.
	CacheHits, CacheMisses int64

	// Failures records every design whose evaluation failed after retries,
	// in deterministic record order — populated only when the request ran
	// with a positive FailureBudget (fail-fast runs abort on first error
	// instead). Failed designs appear nowhere in Evaluated; Pareto
	// extraction and the optimizer's models are built from survivors only.
	Failures []fault.Failure

	// Skips records every design whose loadout failed the catalog
	// feasibility check, in deterministic record order. A skip is a typed
	// answer about the design space — "this loadout cannot fly this
	// accelerator" — not a fault: skipped designs are never scored, never
	// retried, never in Failures, and don't count against failure budgets.
	Skips []Skip
}

// Pareto returns the Pareto-front designs.
func (r *Result) Pareto() []Evaluated {
	out := make([]Evaluated, 0, len(r.ParetoIdx))
	for _, i := range r.ParetoIdx {
		out = append(out, r.Evaluated[i])
	}
	return out
}

// TopSuccess returns the indices of evaluated designs whose success rate is
// within eps of the best — the filter Phase 3 applies before the F-1 step.
func (r *Result) TopSuccess(eps float64) []int {
	best := 0.0
	for _, e := range r.Evaluated {
		if e.SuccessRate > best {
			best = e.SuccessRate
		}
	}
	var out []int
	for i, e := range r.Evaluated {
		if e.SuccessRate >= best-eps {
			out = append(out, i)
		}
	}
	return out
}

// finishResult applies the shared Phase-2 post-processing: probe-corner
// seeding (evaluated concurrently on the worker pool, re-assembled in sweep
// order), Pareto-front extraction, and conventional-DSE labeling. With a
// positive failure budget the probe sweep degrades gracefully — failed
// probes are recorded in res.Failures and dropped — instead of aborting.
func finishResult(ctx context.Context, res *Result, req Request, ev *Evaluator) (*Result, error) {
	space, db, scen, cfg := req.Space, req.DB, req.Scenario, req.Config
	if cfg.ProbeCorners {
		if sweep := probeSweep(space, db, scen); len(sweep) > 0 {
			seen := map[string]bool{}
			for _, e := range res.Evaluated {
				seen[e.Design.String()] = true
			}
			for _, s := range res.Skips {
				seen[s.Design] = true
			}
			var probes []DesignPoint
			for _, d := range sweep {
				if !seen[d.String()] {
					probes = append(probes, d)
				}
			}
			if req.FailureBudget > 0 || space.HasVehicleAxes() {
				// Per-design isolation: infeasible probe loadouts become
				// typed skips; real failures degrade under a budget and stay
				// fatal without one.
				es, errs, err := ev.EvaluateEach(ctx, probes)
				if err != nil {
					return nil, err
				}
				for i, e := range es {
					if errs[i] != nil {
						if sk, ok := asSkip(probes[i], errs[i]); ok {
							res.Skips = append(res.Skips, sk)
							continue
						}
						if req.FailureBudget > 0 {
							res.Failures = append(res.Failures, fault.NewFailure("probe "+probes[i].String(), errs[i]))
							continue
						}
						return nil, errs[i]
					}
					res.Evaluated = append(res.Evaluated, e)
				}
			} else {
				es, err := ev.EvaluateAll(ctx, probes)
				if err != nil {
					return nil, err
				}
				res.Evaluated = append(res.Evaluated, es...)
			}
		}
	}
	objs := make([][]float64, len(res.Evaluated))
	for i, e := range res.Evaluated {
		objs[i] = e.Objectives()
	}
	res.ParetoIdx = pareto.NonDominated(objs)
	res.labelConventional()
	res.CacheHits, res.CacheMisses = ev.CacheStats()
	return res, nil
}

// labelConventional picks HT/LP/HE among top-success designs.
func (r *Result) labelConventional() {
	top := r.TopSuccess(0.02)
	if len(top) == 0 {
		r.HT, r.LP, r.HE = -1, -1, -1
		return
	}
	r.HT, r.LP, r.HE = top[0], top[0], top[0]
	for _, i := range top {
		e := r.Evaluated[i]
		if e.FPS > r.Evaluated[r.HT].FPS {
			r.HT = i
		}
		if e.SoCPowerW < r.Evaluated[r.LP].SoCPowerW {
			r.LP = i
		}
		if e.EfficiencyFPSW() > r.Evaluated[r.HE].EfficiencyFPSW() {
			r.HE = i
		}
	}
}
